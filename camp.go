// Package camp is a cost-adaptive in-memory cache library for Go,
// implementing the CAMP eviction policy from Ghandeharizadeh, Irani, Lam and
// Yap, "CAMP: A Cost Adaptive Multi-queue Eviction Policy for Key-Value
// Stores" (ACM/IFIP/USENIX Middleware 2014).
//
// CAMP approximates Greedy-Dual-Size (GDS) with LRU-queue efficiency: it
// considers each key-value pair's size and cost in addition to recency, so a
// cache shared by workloads with very different recomputation costs (e.g.
// cheap database lookups next to hour-long ML aggregates) keeps the memory
// where it earns the most. Unlike statically partitioned pools, CAMP needs
// no human tuning and adapts as workloads shift.
//
// The Cache type stores values and is safe for concurrent use:
//
//	c, err := camp.New(64 << 20) // 64 MiB, CAMP policy, precision 5
//	if err != nil { ... }
//	c.Set("user:42", profileBytes, lookupMicros /* cost */)
//	if v, ok := c.Get("user:42"); ok { ... }
//
// Caches snapshot and warm-start exactly: WriteSnapshot/SaveSnapshot emit
// every entry in eviction order with its exact priority state (snapshot
// format v2), so a cache restored with WithSnapshotFile or LoadSnapshot
// reproduces the saved eviction schedule byte-for-byte — costs, cross-queue
// priority offsets and CAMP's learned ratio scale included — even when the
// snapshot was taken in the middle of eviction churn.
//
// For simulation or embedding into an existing store, the metadata-only
// Policy constructors (NewCAMPPolicy, NewLRUPolicy, NewGDSPolicy,
// NewPooledLRUPolicy) expose the eviction algorithms directly; these are not
// thread-safe and track only key/size/cost.
package camp

import (
	"camp/internal/cache"
	"camp/internal/core"
	"camp/internal/rounding"
)

// Entry describes a cached pair's metadata (key, size, cost).
type Entry = cache.Entry

// Stats counts policy operations (hits, misses, evictions, ...).
type Stats = cache.Stats

// EvictFunc observes evictions.
type EvictFunc = cache.EvictFunc

// Policy is a metadata-only eviction policy. Implementations returned by
// this package are not safe for concurrent use; Cache adds locking and
// sharding on top.
type Policy = cache.Policy

// PoolSpec configures one pool of a pooled-LRU policy.
type PoolSpec = cache.PoolSpec

// DefaultPrecision is the ratio-rounding precision used across the paper's
// evaluation (5 significant bits).
const DefaultPrecision = core.DefaultPrecision

// PrecisionInf disables ratio rounding entirely; eviction decisions then
// match GDS on integerized ratios.
const PrecisionInf = rounding.PrecisionInf

// NewCAMPPolicy returns the CAMP eviction policy with the given byte
// capacity and rounding precision (use DefaultPrecision unless tuning).
func NewCAMPPolicy(capacity int64, precision uint) Policy {
	return core.NewCamp(capacity, core.WithPrecision(precision))
}

// NewLRUPolicy returns a plain least-recently-used policy.
func NewLRUPolicy(capacity int64) Policy {
	return cache.NewLRU(capacity)
}

// NewGDSPolicy returns the exact Greedy-Dual-Size policy (a full item heap;
// slower than CAMP, identical goal).
func NewGDSPolicy(capacity int64) Policy {
	return core.NewGDS(capacity)
}

// NewPooledLRUPolicy returns the statically partitioned multi-pool LRU
// described in §3 of the paper. Items are routed to pools by cost range and
// each pool evicts independently.
func NewPooledLRUPolicy(capacity int64, pools []PoolSpec) (Policy, error) {
	return cache.NewPooled(capacity, pools)
}
