package camp

import (
	"fmt"

	"camp/internal/cache"
	"camp/internal/core"
)

// PolicyKind selects the eviction algorithm backing a Cache.
type PolicyKind int

// Supported eviction policies.
const (
	// CAMP is the paper's cost-adaptive multi-queue policy (default).
	CAMP PolicyKind = iota + 1
	// LRU evicts by recency only.
	LRU
	// GDS is the exact Greedy-Dual-Size algorithm.
	GDS
	// ARC is the byte-weighted Adaptive Replacement Cache (§5 related
	// work; recency/frequency adaptive, cost-oblivious).
	ARC
	// TwoQ is the full 2Q policy (§5 related work).
	TwoQ
	// LFU evicts the least frequently used item.
	LFU
	// GDWheel approximates GDS with hierarchical timing wheels (§5
	// related work).
	GDWheel
)

// String returns the policy's short name.
func (k PolicyKind) String() string {
	switch k {
	case CAMP:
		return "camp"
	case LRU:
		return "lru"
	case GDS:
		return "gds"
	case ARC:
		return "arc"
	case TwoQ:
		return "2q"
	case LFU:
		return "lfu"
	case GDWheel:
		return "gdwheel"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

type config struct {
	kind         PolicyKind
	precision    uint
	shards       int
	overhead     int64
	defaultCost  int64
	admission    uint8
	onEvict      func(Entry)
	pools        []PoolSpec
	snapshotPath string
}

// Option configures New.
type Option interface {
	apply(*config) error
}

type optionFunc func(*config) error

func (f optionFunc) apply(c *config) error { return f(c) }

// WithPolicy selects the eviction algorithm (default CAMP).
func WithPolicy(kind PolicyKind) Option {
	return optionFunc(func(c *config) error {
		switch kind {
		case CAMP, LRU, GDS, ARC, TwoQ, LFU, GDWheel:
			c.kind = kind
			return nil
		default:
			return fmt.Errorf("camp: unknown policy kind %d", kind)
		}
	})
}

// WithAdmission wraps the policy in a frequency-sketch admission filter
// (the paper's §6 future-work extension): a brand-new key may displace
// resident data only after it has been requested at least minFrequency
// times.
func WithAdmission(minFrequency uint8) Option {
	return optionFunc(func(c *config) error {
		if minFrequency < 1 {
			return fmt.Errorf("camp: admission frequency must be at least 1")
		}
		c.admission = minFrequency
		return nil
	})
}

// WithPooledPolicy selects the statically partitioned pooled-LRU policy with
// the given pool layout (mainly useful for comparisons against CAMP).
func WithPooledPolicy(pools []PoolSpec) Option {
	return optionFunc(func(c *config) error {
		if len(pools) == 0 {
			return fmt.Errorf("camp: pooled policy needs at least one pool")
		}
		c.pools = append([]PoolSpec(nil), pools...)
		c.kind = 0 // marked pooled via c.pools
		return nil
	})
}

// WithPrecision sets CAMP's ratio-rounding precision in significant bits
// (default DefaultPrecision; PrecisionInf disables rounding). It only
// affects the CAMP policy.
func WithPrecision(p uint) Option {
	return optionFunc(func(c *config) error {
		c.precision = p
		return nil
	})
}

// WithShards splits the cache into n independently locked shards; keys are
// hash-partitioned across them (§4.1 of the paper suggests exactly this for
// vertical scaling). n must be a power of two between 1 and 4096.
func WithShards(n int) Option {
	return optionFunc(func(c *config) error {
		if n < 1 || n > 4096 || n&(n-1) != 0 {
			return fmt.Errorf("camp: shard count %d must be a power of two in [1, 4096]", n)
		}
		c.shards = n
		return nil
	})
}

// WithEntryOverhead adds n bytes of bookkeeping to every entry's charged
// size, mirroring per-item metadata in production KVSs (default 0).
func WithEntryOverhead(n int64) Option {
	return optionFunc(func(c *config) error {
		if n < 0 {
			return fmt.Errorf("camp: negative entry overhead %d", n)
		}
		c.overhead = n
		return nil
	})
}

// WithDefaultCost sets the cost charged when Set is called with cost 0
// (default 1, so cost-oblivious callers degrade to size-aware caching).
func WithDefaultCost(cost int64) Option {
	return optionFunc(func(c *config) error {
		if cost < 0 {
			return fmt.Errorf("camp: negative default cost %d", cost)
		}
		c.defaultCost = cost
		return nil
	})
}

// WithSnapshotFile warm-starts the cache from the snapshot at path (written
// by SaveSnapshot) when the file exists, re-admitting entries through the
// eviction policy so CAMP's queues are rebuilt with their original costs. A
// missing file is a normal cold start. Call SaveSnapshot on shutdown to
// persist the working set for the next run.
func WithSnapshotFile(path string) Option {
	return optionFunc(func(c *config) error {
		if path == "" {
			return fmt.Errorf("camp: empty snapshot path")
		}
		c.snapshotPath = path
		return nil
	})
}

// WithEvictionHook installs a callback invoked whenever the policy evicts an
// entry. The hook runs while the affected shard's lock is held: it must be
// fast and must not call back into the Cache.
func WithEvictionHook(fn func(Entry)) Option {
	return optionFunc(func(c *config) error {
		c.onEvict = fn
		return nil
	})
}

func (c *config) buildPolicy(capacity int64) (cache.Policy, error) {
	p, err := c.buildBase(capacity)
	if err != nil {
		return nil, err
	}
	if c.admission > 0 {
		p = cache.NewAdmission(p, cache.WithMinFrequency(c.admission))
	}
	return p, nil
}

func (c *config) buildBase(capacity int64) (cache.Policy, error) {
	if c.pools != nil {
		return cache.NewPooled(capacity, c.pools)
	}
	switch c.kind {
	case LRU:
		return cache.NewLRU(capacity), nil
	case GDS:
		return core.NewGDS(capacity), nil
	case ARC:
		return cache.NewARC(capacity), nil
	case TwoQ:
		return cache.NewTwoQ(capacity), nil
	case LFU:
		return cache.NewLFU(capacity), nil
	case GDWheel:
		return cache.NewGDWheel(capacity), nil
	case CAMP:
		return core.NewCamp(capacity, core.WithPrecision(c.precision)), nil
	default:
		return nil, fmt.Errorf("camp: no policy configured")
	}
}
