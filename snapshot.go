package camp

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"camp/internal/persist"
)

// WriteSnapshot serializes every cached entry — key, value, charged size and
// recomputation cost — to w in the internal/persist snapshot format. Shards
// are locked one at a time, so concurrent writers may land between shards;
// the result is a consistent warm-start image, not a point-in-time fence.
func (c *Cache) WriteSnapshot(w io.Writer) error {
	sw, err := persist.NewSnapshotWriter(w)
	if err != nil {
		return err
	}
	if err := c.emitEntries(sw.Write); err != nil {
		return err
	}
	return sw.Flush()
}

// emitEntries streams every cached entry to write, one shard at a time.
func (c *Cache) emitEntries(write func(persist.Op) error) error {
	for _, s := range c.shards {
		s.mu.Lock()
		for key, value := range s.values {
			meta, ok := s.policy.Peek(key)
			if !ok {
				continue
			}
			if err := write(persist.Op{
				Key:   key,
				Value: value,
				Size:  meta.Size,
				Cost:  meta.Cost,
			}); err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// SaveSnapshot atomically writes a snapshot to the path configured with
// WithSnapshotFile (temp file, fsync, rename). It returns the number of
// entries written.
func (c *Cache) SaveSnapshot() (int, error) {
	if c.snapPath == "" {
		return 0, errors.New("camp: no snapshot path configured (use WithSnapshotFile)")
	}
	return c.SaveSnapshotTo(c.snapPath)
}

// SaveSnapshotTo is SaveSnapshot with an explicit destination path.
func (c *Cache) SaveSnapshotTo(path string) (int, error) {
	return persist.WriteSnapshotFile(path, c.emitEntries)
}

// LoadSnapshot reads a snapshot stream and re-admits its entries through the
// configured eviction policy, rebuilding queue/heap state with the original
// costs. It returns how many entries the policy admitted. A corrupt or
// newer-versioned snapshot is refused with an error and no further entries
// are applied.
func (c *Cache) LoadSnapshot(r io.Reader) (int, error) {
	admitted := 0
	_, err := persist.ReadSnapshot(r, func(op persist.Op) error {
		if c.SetSized(op.Key, op.Value, op.Size, op.Cost) {
			admitted++
		}
		return nil
	})
	return admitted, err
}

// loadSnapshotFile warm-starts the cache from path at construction time. A
// missing file is a cold start, not an error.
func (c *Cache) loadSnapshotFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("camp: open snapshot: %w", err)
	}
	defer f.Close()
	if _, err := c.LoadSnapshot(f); err != nil {
		return fmt.Errorf("camp: snapshot %s: %w", path, err)
	}
	return nil
}
