package camp

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"camp/internal/cache"
	"camp/internal/persist"
)

// WriteSnapshot serializes every cached entry — key, value, charged size and
// recomputation cost — to w in the internal/persist snapshot format (v2).
// Entries are written in eviction order, and for the priority policies
// (CAMP, GDS) each record carries the entry's exact priority offset, so a
// warm start reproduces the live eviction schedule exactly — cross-queue,
// even after eviction churn. Shards are locked one at a time, so concurrent
// writers may land between shards; the result is a consistent warm-start
// image, not a point-in-time fence.
func (c *Cache) WriteSnapshot(w io.Writer) error {
	sw, err := persist.NewSnapshotWriter(w)
	if err != nil {
		return err
	}
	if err := c.emitEntries(sw.Write); err != nil {
		return err
	}
	return sw.Flush()
}

// emitEntries streams every cached entry to write, one shard at a time, each
// shard in eviction order (next victim first) with priority offsets when the
// policy exports them.
func (c *Cache) emitEntries(write func(persist.Op) error) error {
	for _, s := range c.shards {
		s.mu.Lock()
		err := s.emitLocked(write)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// emitLocked writes one shard's entries. The caller holds s.mu.
func (s *shard) emitLocked(write func(persist.Op) error) error {
	var err error
	emit := func(e Entry, prio, class uint64, kind persist.Kind) bool {
		err = write(persist.Op{
			Kind:     kind,
			Key:      e.Key,
			Value:    s.values[e.Key],
			Size:     e.Size,
			Cost:     e.Cost,
			Priority: prio,
			Class:    class,
		})
		return err == nil
	}
	switch p := s.policy.(type) {
	case cache.PriorityOrdered:
		// The adaptive scale first, so a replay buckets later Sets with
		// the live workload's learned state.
		if ps, ok := s.policy.(cache.PriorityScaled); ok {
			if err := write(persist.Op{Kind: persist.KindScale, Scale: ps.PriorityScale()}); err != nil {
				return err
			}
		}
		p.VisitEvictionPriority(func(e Entry, prio, class uint64) bool {
			return emit(e, prio, class, persist.KindSetPrio)
		})
	case cache.EvictionOrdered:
		p.VisitEvictionOrder(func(e Entry) bool {
			return emit(e, 0, 0, persist.KindSet)
		})
	default:
		// No enumerable order; map order still round-trips every entry.
		for key, value := range s.values {
			meta, ok := s.policy.Peek(key)
			if !ok {
				continue
			}
			if err = write(persist.Op{Key: key, Value: value, Size: meta.Size, Cost: meta.Cost}); err != nil {
				return err
			}
		}
	}
	return err
}

// SaveSnapshot atomically writes a snapshot to the path configured with
// WithSnapshotFile (temp file, fsync, rename). It returns the number of
// entries written.
func (c *Cache) SaveSnapshot() (int, error) {
	if c.snapPath == "" {
		return 0, errors.New("camp: no snapshot path configured (use WithSnapshotFile)")
	}
	return c.SaveSnapshotTo(c.snapPath)
}

// SaveSnapshotTo is SaveSnapshot with an explicit destination path.
func (c *Cache) SaveSnapshotTo(path string) (int, error) {
	return persist.WriteSnapshotFile(path, c.emitEntries)
}

// LoadSnapshot reads a snapshot stream and re-admits its entries through the
// configured eviction policy, rebuilding queue/heap state with the original
// costs — and, from a v2 snapshot into a priority policy, the original
// priority offsets, so the restored eviction schedule matches the saved one
// exactly. It returns how many entries the policy admitted. A corrupt or
// newer-versioned snapshot is refused with an error and no further entries
// are applied.
func (c *Cache) LoadSnapshot(r io.Reader) (int, error) {
	admitted := 0
	_, err := persist.ReadSnapshot(r, func(op persist.Op) error {
		switch op.Kind {
		case persist.KindPosition:
			return nil // server-side replication bookkeeping; not an entry
		case persist.KindScale:
			// Shard routing is seeded per process, so the scale cannot be
			// re-aimed at the shard that wrote it; it only widens, so
			// every shard absorbing every scale record is safe (and exact
			// for the single-shard default).
			for _, s := range c.shards {
				s.mu.Lock()
				if ps, ok := s.policy.(cache.PriorityScaled); ok {
					ps.RestorePriorityScale(op.Scale)
				}
				s.mu.Unlock()
			}
			return nil
		}
		if c.setFromSnapshot(op) {
			admitted++
		}
		return nil
	})
	return admitted, err
}

// setFromSnapshot is SetSized with the snapshot's recorded priority pinned
// when both the record and the policy carry one.
func (c *Cache) setFromSnapshot(op persist.Op) bool {
	cost := op.Cost
	if cost <= 0 {
		cost = c.defCost
	}
	s := c.shardFor(op.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	var ok bool
	if po, isPrio := s.policy.(cache.PriorityOrdered); isPrio && op.Kind == persist.KindSetPrio {
		ok = po.SetWithPriority(op.Key, op.Size, cost, op.Priority, op.Class)
	} else {
		ok = s.policy.Set(op.Key, op.Size, cost)
	}
	if !ok {
		// The policy may have dropped a previous version of the entry on a
		// failed re-admit; keep the value map in sync (as SetSized does).
		if !s.policy.Contains(op.Key) {
			delete(s.values, op.Key)
		}
		return false
	}
	s.values[op.Key] = op.Value
	return true
}

// loadSnapshotFile warm-starts the cache from path at construction time. A
// missing file is a cold start, not an error.
func (c *Cache) loadSnapshotFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("camp: open snapshot: %w", err)
	}
	defer f.Close()
	if _, err := c.LoadSnapshot(f); err != nil {
		return fmt.Errorf("camp: snapshot %s: %w", path, err)
	}
	return nil
}
