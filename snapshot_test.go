package camp

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"camp/internal/cache"
)

func TestCacheSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.camp")
	c1, err := New(1<<20, WithSnapshotFile(path), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if !c1.Set(key, []byte(fmt.Sprintf("value-%03d", i)), int64(100+i)) {
			t.Fatalf("set %s rejected", key)
		}
	}
	n, err := c1.SaveSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("snapshot wrote %d entries, want 100", n)
	}

	// A fresh cache warm-starts from the file, costs intact.
	c2, err := New(1<<20, WithSnapshotFile(path), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 100 {
		t.Fatalf("warm start restored %d entries, want 100", c2.Len())
	}
	v, ok := c2.Get("key-042")
	if !ok || string(v) != "value-042" {
		t.Fatalf("key-042 after warm start: %q, %v", v, ok)
	}
	e, ok := c2.Peek("key-042")
	if !ok || e.Cost != 142 {
		t.Fatalf("key-042 cost after warm start: %+v, want cost 142", e)
	}
}

func TestCacheSnapshotMissingFileIsColdStart(t *testing.T) {
	c, err := New(1<<20, WithSnapshotFile(filepath.Join(t.TempDir(), "nope.camp")))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("cold start has %d entries", c.Len())
	}
}

func TestCacheSnapshotRefusesCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.camp")
	c1, err := New(1<<20, WithSnapshotFile(path))
	if err != nil {
		t.Fatal(err)
	}
	c1.Set("a", []byte("alpha"), 5)
	if _, err := c1.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(1<<20, WithSnapshotFile(path)); err == nil {
		t.Fatal("a corrupt snapshot must refuse to load")
	}
}

func TestCacheWriteLoadSnapshotStream(t *testing.T) {
	c1, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c1.Set(fmt.Sprintf("k%d", i), []byte("v"), int64(i+1))
	}
	var buf bytes.Buffer
	if err := c1.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c2.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || c2.Len() != 10 {
		t.Fatalf("loaded %d entries into a cache of %d, want 10/10", n, c2.Len())
	}
}

// TestCacheSnapshotSmallerCapacity: re-admission goes through the policy, so
// shrinking the cache between save and load keeps the invariants (no
// over-capacity load) instead of failing.
func TestCacheSnapshotSmallerCapacity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.camp")
	c1, err := New(1<<20, WithSnapshotFile(path))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		c1.Set(fmt.Sprintf("key-%03d", i), make([]byte, 1024), 10)
	}
	if _, err := c1.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	small, err := New(16<<10, WithSnapshotFile(path))
	if err != nil {
		t.Fatal(err)
	}
	if small.Used() > small.Capacity() {
		t.Fatalf("warm start overfilled the cache: %d > %d", small.Used(), small.Capacity())
	}
	if small.Len() == 0 {
		t.Fatal("warm start admitted nothing")
	}
}

func TestSaveSnapshotWithoutPath(t *testing.T) {
	c, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveSnapshot(); err == nil {
		t.Fatal("SaveSnapshot without WithSnapshotFile must error")
	}
}

// TestSetSizedRejectedReadmitKeepsSync is the regression test for the
// silent-drop path in SetSized: when a resident key's re-admit is rejected
// (the policy drops the old version and refuses the new one), the value map
// must drop the stale bytes too, for every policy kind.
func TestSetSizedRejectedReadmitKeepsSync(t *testing.T) {
	for _, kind := range []PolicyKind{CAMP, LRU, GDS, ARC, TwoQ, LFU, GDWheel} {
		t.Run(kind.String(), func(t *testing.T) {
			c, err := New(1<<10, WithPolicy(kind))
			if err != nil {
				t.Fatal(err)
			}
			if !c.SetSized("victim", []byte("old-bytes"), 100, 5) {
				t.Fatal("initial admit failed")
			}
			// Re-admit with a size over capacity: the policy rejects the
			// update. Policies differ on whether the old version survives
			// (ARC/2Q keep it, CAMP/GDS/LRU drop it mid-update); either
			// way the value map must agree with the policy exactly.
			if c.SetSized("victim", []byte("new-bytes"), 4<<10, 5) {
				t.Fatal("over-capacity re-admit should be rejected")
			}
			if c.Contains("victim") {
				// The policy kept the old version: the old value and old
				// metadata must still be served together.
				v, ok := c.Get("victim")
				if !ok || string(v) != "old-bytes" {
					t.Fatalf("kept entry serves %q, %v; want the old bytes", v, ok)
				}
				if e, ok := c.Peek("victim"); !ok || e.Size != 100 {
					t.Fatalf("kept entry has metadata %+v, want the old size 100", e)
				}
			} else {
				// The policy dropped the old version mid-update: the value
				// map must not leak the stale bytes.
				if v, ok := c.Get("victim"); ok {
					t.Fatalf("stale value served after rejected re-admit: %q", v)
				}
				for _, s := range c.shards {
					s.mu.Lock()
					_, leaked := s.values["victim"]
					s.mu.Unlock()
					if leaked {
						t.Fatal("value map leaked the dropped entry")
					}
				}
			}
			if got := c.Stats().Rejected; got == 0 {
				t.Fatal("rejected re-admit must count in Stats().Rejected")
			}
			// The cache must keep working for that key afterwards.
			if !c.SetSized("victim", []byte("fresh"), 100, 5) {
				t.Fatal("fresh admit after rejection failed")
			}
			if v, ok := c.Get("victim"); !ok || string(v) != "fresh" {
				t.Fatalf("post-rejection set: %q, %v", v, ok)
			}
		})
	}
}

// TestCacheSnapshotMidChurnExactOrder pins the v2 exactness claim at the
// library surface: a single-shard cache driven through eviction churn (so
// CAMP's priority offsets are non-uniform), snapshotted mid-churn, and
// reloaded into a fresh cache must present the identical eviction schedule —
// the restored policy drains in exactly the saved order — and the identical
// future behavior on a shared suffix of operations.
func TestCacheSnapshotMidChurnExactOrder(t *testing.T) {
	for _, kind := range []PolicyKind{CAMP, GDS, LRU} {
		t.Run(kind.String(), func(t *testing.T) {
			mk := func() *Cache {
				c, err := New(24<<10, WithPolicy(kind))
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			c1 := mk()
			costs := []int64{1, 1, 40, 40, 900, 20000}
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("key-%03d", (i*7)%500)
				if i%4 == 0 {
					c1.Get(key)
				} else {
					c1.Set(key, make([]byte, 80), costs[(i*13)%len(costs)])
				}
			}
			if c1.Stats().Evictions == 0 {
				t.Fatal("no evictions — the mid-churn property is vacuous")
			}
			var buf bytes.Buffer
			if err := c1.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			c2 := mk()
			if _, err := c2.LoadSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			if c2.Len() != c1.Len() {
				t.Fatalf("restored %d entries, want %d", c2.Len(), c1.Len())
			}
			order := func(c *Cache) []string {
				s := c.shards[0]
				s.mu.Lock()
				defer s.mu.Unlock()
				var keys []string
				s.policy.(cache.EvictionOrdered).VisitEvictionOrder(func(e Entry) bool {
					keys = append(keys, e.Key)
					return true
				})
				return keys
			}
			want, got := order(c1), order(c2)
			if len(want) != len(got) {
				t.Fatalf("restored order has %d entries, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("eviction order diverges at %d/%d: restored %q, saved %q",
						i, len(want), got[i], want[i])
				}
			}
		})
	}
}
