// Package proto holds the low-level memcached-text-protocol helpers shared
// by the server (internal/kvserver) and client (internal/kvclient) hot
// paths: a zero-copy line reader, an in-place tokenizer, and integer parsers
// that work directly on []byte. Everything hands out slices into reusable
// buffers and allocates nothing on the steady state — the building blocks of
// the zero-allocation request loop.
//
// Terminators are strict: a line ends with '\n' preceded by at most one
// optional '\r'. Unlike a TrimRight("\r\n"), extra '\r' bytes are preserved
// in the returned line, so "foo\r\r\n" yields "foo\r" — callers see the
// malformation instead of silently accepting it.
package proto

import (
	"bufio"
	"errors"
)

// MaxLineBytes is the default cap a LineReader places on one protocol line.
// Command lines are short (the longest realistic one is a wide multiget);
// anything beyond this is a confused or malicious peer, and the reader
// reports ErrLineTooLong rather than buffering without bound.
const MaxLineBytes = 8192

// ErrLineTooLong reports a protocol line exceeding the reader's limit.
var ErrLineTooLong = errors.New("proto: line too long")

// LineReader reads '\n'-terminated lines from a bufio.Reader without
// allocating: lines that fit the bufio buffer are returned as slices into
// it, and longer ones accumulate into a spill buffer that is reused across
// calls.
type LineReader struct {
	r     *bufio.Reader
	max   int
	spill []byte
}

// NewLineReader wraps r with the default MaxLineBytes limit.
func NewLineReader(r *bufio.Reader) *LineReader {
	return &LineReader{r: r, max: MaxLineBytes}
}

// NewLineReaderSize wraps r with an explicit line-length limit (0 means
// MaxLineBytes).
func NewLineReaderSize(r *bufio.Reader, max int) *LineReader {
	if max <= 0 {
		max = MaxLineBytes
	}
	return &LineReader{r: r, max: max}
}

// Reset points the reader at a new source, keeping the spill buffer.
func (lr *LineReader) Reset(r *bufio.Reader) { lr.r = r }

// ReadLine returns the next line without its terminator. The final '\n' and
// at most one '\r' immediately before it are stripped; any other '\r' bytes
// stay in the line. The returned slice is valid only until the next read on
// the underlying bufio.Reader (including the next ReadLine) and must not be
// retained. io.EOF mid-line discards the partial line, as bufio.ReadString
// would report it. An over-limit line is discarded through its '\n' —
// constant memory, stream realigned on line framing — and reported as
// ErrLineTooLong, so the caller can reply before deciding the connection's
// fate.
func (lr *LineReader) ReadLine() ([]byte, error) {
	frag, err := lr.r.ReadSlice('\n')
	if err == nil {
		// Fast path: the whole line fit the bufio buffer.
		if len(frag) > lr.max {
			return nil, ErrLineTooLong
		}
		return trimTerminator(frag), nil
	}
	spill := lr.spill[:0]
	for {
		spill = append(spill, frag...)
		if len(spill) > lr.max {
			lr.spill = spill[:0]
			return nil, lr.skipLine()
		}
		if err == nil {
			lr.spill = spill[:0] // keep capacity for the next long line
			return trimTerminator(spill), nil
		}
		if err != bufio.ErrBufferFull {
			lr.spill = spill[:0]
			return nil, err
		}
		frag, err = lr.r.ReadSlice('\n')
	}
}

// skipLine discards input through the next '\n' and returns ErrLineTooLong,
// or the read error that interrupted the discard.
func (lr *LineReader) skipLine() error {
	for {
		_, err := lr.r.ReadSlice('\n')
		switch err {
		case bufio.ErrBufferFull:
			continue
		case nil:
			return ErrLineTooLong
		default:
			return err
		}
	}
}

// trimTerminator strips the trailing '\n' and exactly one optional '\r'
// before it. The input always ends in '\n'.
func trimTerminator(b []byte) []byte {
	b = b[:len(b)-1]
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// Tokenize splits line on runs of spaces into dst (reused; pass dst[:0] of a
// per-connection scratch to avoid allocating). The tokens alias line. The
// protocol separates fields with spaces only — tabs and stray '\r' bytes are
// token content, so malformed input surfaces as unknown commands or
// unparsable numbers rather than being silently accepted.
func Tokenize(line []byte, dst [][]byte) [][]byte {
	for i := 0; i < len(line); {
		if line[i] == ' ' {
			i++
			continue
		}
		j := i + 1
		for j < len(line) && line[j] != ' ' {
			j++
		}
		dst = append(dst, line[i:j])
		i = j
	}
	return dst
}

// ParseUint parses a base-10 unsigned integer from b, rejecting empty input,
// signs, non-digits and overflow.
func ParseUint(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (1<<64-1-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// ParseUint32 is ParseUint range-checked to 32 bits (protocol flags).
func ParseUint32(b []byte) (uint32, bool) {
	n, ok := ParseUint(b)
	if !ok || n > 1<<32-1 {
		return 0, false
	}
	return uint32(n), true
}

// ParseInt parses a base-10 signed integer from b with an optional leading
// '-', rejecting empty input, non-digits and overflow.
func ParseInt(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		b = b[1:]
	}
	n, ok := ParseUint(b)
	if !ok {
		return 0, false
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		return -int64(n), true
	}
	if n > 1<<63-1 {
		return 0, false
	}
	return int64(n), true
}
