package proto

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

func lines(t *testing.T, input string, bufSize int) ([]string, error) {
	t.Helper()
	lr := NewLineReader(bufio.NewReaderSize(strings.NewReader(input), bufSize))
	var out []string
	for {
		line, err := lr.ReadLine()
		if err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, string(line))
	}
}

func TestReadLineTerminators(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"foo\r\n", []string{"foo"}},
		{"foo\n", []string{"foo"}},
		{"\r\n", []string{""}},
		{"\n", []string{""}},
		// Exactly one '\r' is stripped: extra ones are line content.
		{"foo\r\r\n", []string{"foo\r"}},
		{"foo\r\r\r\n", []string{"foo\r\r"}},
		// Interior '\r' is preserved.
		{"foo\rbar\n", []string{"foo\rbar"}},
		{"a\r\nb\nc\r\n", []string{"a", "b", "c"}},
	} {
		got, err := lines(t, tc.in, 32)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%q: lines = %q, want %q", tc.in, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%q: line %d = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestReadLineSpillsPastBufferSize(t *testing.T) {
	long := strings.Repeat("x", 200)
	got, err := lines(t, long+"\r\nshort\r\n"+long+"\n", 16)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{long, "short", long}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReadLineTooLong(t *testing.T) {
	// The over-limit line is discarded through its '\n', so the reader is
	// realigned on the next line — in both the spill path (line larger than
	// the bufio buffer) and the fast path (line fits the buffer).
	for _, bufSize := range []int{16, 4096} {
		in := strings.Repeat("x", 100) + "\nnext\r\n"
		lr := NewLineReaderSize(bufio.NewReaderSize(strings.NewReader(in), bufSize), 50)
		if _, err := lr.ReadLine(); err != ErrLineTooLong {
			t.Fatalf("bufSize %d: err = %v, want ErrLineTooLong", bufSize, err)
		}
		line, err := lr.ReadLine()
		if err != nil || string(line) != "next" {
			t.Fatalf("bufSize %d: line after too-long = %q, %v, want \"next\"", bufSize, line, err)
		}
	}
}

func TestReadLineEOFMidLine(t *testing.T) {
	lr := NewLineReader(bufio.NewReader(strings.NewReader("partial")))
	if _, err := lr.ReadLine(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestReadLineZeroAlloc(t *testing.T) {
	input := strings.Repeat("get some-key another-key\r\n", 64)
	src := strings.NewReader(input)
	r := bufio.NewReader(src)
	lr := NewLineReader(r)
	var toks [][]byte
	allocs := testing.AllocsPerRun(20, func() {
		src.Reset(input)
		r.Reset(src)
		for {
			line, err := lr.ReadLine()
			if err != nil {
				break
			}
			toks = Tokenize(line, toks[:0])
			if len(toks) != 3 {
				t.Fatalf("tokens = %d", len(toks))
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("read+tokenize loop allocates %v/run, want 0", allocs)
	}
}

func TestTokenize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{"get k", []string{"get", "k"}},
		{"  set   key  0 0  5 ", []string{"set", "key", "0", "0", "5"}},
		// Tabs and '\r' are content, not separators.
		{"get\tk", []string{"get\tk"}},
		{"get k\r", []string{"get", "k\r"}},
	} {
		got := Tokenize([]byte(tc.in), nil)
		if len(got) != len(tc.want) {
			t.Fatalf("%q: tokens = %q, want %q", tc.in, got, tc.want)
		}
		for i := range got {
			if !bytes.Equal(got[i], []byte(tc.want[i])) {
				t.Fatalf("%q: token %d = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestParseUint(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"42", 42, true},
		{"18446744073709551615", 1<<64 - 1, true},
		{"18446744073709551616", 0, false}, // overflow
		{"99999999999999999999", 0, false},
		{"", 0, false},
		{"-1", 0, false},
		{"+1", 0, false},
		{"1x", 0, false},
		{" 1", 0, false},
	} {
		got, ok := ParseUint([]byte(tc.in))
		if ok != tc.ok || got != tc.want {
			t.Fatalf("ParseUint(%q) = %d, %v; want %d, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestParseInt(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"-0", 0, true},
		{"123", 123, true},
		{"-123", -123, true},
		{"9223372036854775807", 1<<63 - 1, true},
		{"9223372036854775808", 0, false},
		{"-9223372036854775808", -1 << 63, true},
		{"-9223372036854775809", 0, false},
		{"", 0, false},
		{"-", 0, false},
		{"--1", 0, false},
		{"12.5", 0, false},
	} {
		got, ok := ParseInt([]byte(tc.in))
		if ok != tc.ok || got != tc.want {
			t.Fatalf("ParseInt(%q) = %d, %v; want %d, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestParseUint32(t *testing.T) {
	if v, ok := ParseUint32([]byte("4294967295")); !ok || v != 1<<32-1 {
		t.Fatalf("ParseUint32(max) = %d, %v", v, ok)
	}
	if _, ok := ParseUint32([]byte("4294967296")); ok {
		t.Fatal("ParseUint32 should reject 2^32")
	}
}
