package kvclient

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
)

// fakeServer answers each received line with a canned response.
func fakeServer(t *testing.T, respond func(line string, w *bufio.Writer)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					respond(strings.TrimRight(line, "\r\n"), w)
					if w.Flush() != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to a closed port should fail")
	}
}

func TestProtocolErrors(t *testing.T) {
	addr := fakeServer(t, func(line string, w *bufio.Writer) {
		switch {
		case strings.HasPrefix(line, "get"):
			w.WriteString("GARBAGE\r\n")
		case strings.HasPrefix(line, "delete"):
			w.WriteString("WAT\r\n")
		case strings.HasPrefix(line, "stats"):
			w.WriteString("NOT STATS LINE EXTRA WORDS\r\n")
		case strings.HasPrefix(line, "version"):
			w.WriteString("NOPE\r\n")
		case strings.HasPrefix(line, "flush_all"):
			w.WriteString("NO\r\n")
		default:
			w.WriteString("ERROR\r\n")
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Get("k"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Get err = %v, want ErrProtocol", err)
	}
	if _, err := c.Delete("k"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Delete err = %v, want ErrProtocol", err)
	}
	if _, err := c.Stats(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Stats err = %v, want ErrProtocol", err)
	}
	if _, err := c.Version(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Version err = %v, want ErrProtocol", err)
	}
	if err := c.FlushAll(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("FlushAll err = %v, want ErrProtocol", err)
	}
}

func TestServerErrorOnSet(t *testing.T) {
	addr := fakeServer(t, func(line string, w *bufio.Writer) {
		if strings.HasPrefix(line, "set") {
			w.WriteString("SERVER_ERROR out of memory storing object\r\n")
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Set("k", []byte("v"), 0, 0, 1)
	if !errors.Is(err, ErrServer) {
		t.Fatalf("Set err = %v, want ErrServer", err)
	}
}

func TestMultiGetRequiresKeys(t *testing.T) {
	addr := fakeServer(t, func(string, *bufio.Writer) {})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.MultiGet(); err == nil {
		t.Fatal("MultiGet with no keys should error")
	}
}

func TestBadValueLength(t *testing.T) {
	addr := fakeServer(t, func(line string, w *bufio.Writer) {
		if strings.HasPrefix(line, "get") {
			w.WriteString("VALUE k 0 notanumber\r\n")
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Get("k"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestMissingCRLFAfterValue(t *testing.T) {
	addr := fakeServer(t, func(line string, w *bufio.Writer) {
		if strings.HasPrefix(line, "get") {
			// Value bytes not followed by CRLF but by junk.
			w.WriteString("VALUE k 0 2\r\nvvXX\r\nEND\r\n")
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Get("k"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestMultiGetFuncBorrowedSlices(t *testing.T) {
	addr := fakeServer(t, func(line string, w *bufio.Writer) {
		if strings.HasPrefix(line, "get") {
			w.WriteString("VALUE a 7 2\r\nv1\r\nVALUE b 0 3\r\nv22\r\nEND\r\n")
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	type hit struct {
		key, value string
		flags      uint32
	}
	var hits []hit
	err = c.MultiGetFunc(func(key, value []byte, flags uint32) {
		// The slices are only valid during the callback; copy.
		hits = append(hits, hit{string(key), string(value), flags})
	}, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	want := []hit{{"a", "v1", 7}, {"b", "v22", 0}}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hit %d = %v, want %v", i, hits[i], want[i])
		}
	}
}

func TestSetNoreplyPipelines(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	addr := fakeServer(t, func(line string, w *bufio.Writer) {
		mu.Lock()
		lines = append(lines, line)
		mu.Unlock()
		// noreply sets get no response; only version answers.
		if line == "version" {
			w.WriteString("VERSION fake\r\n")
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetNoreply("a", []byte("v1"), 7, 0, 42); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNoreply("b", []byte("v2"), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// A synchronous command after pipelined noreply sets proves the stream
	// stayed in sync: the next reply read belongs to version, not a set.
	v, err := c.Version()
	if err != nil || v != "fake" {
		t.Fatalf("Version after noreply pipeline = %q, %v", v, err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"set a 7 0 2 42 noreply", "v1", "set b 0 0 2 noreply", "v2", "version"}
	if len(lines) != len(want) {
		t.Fatalf("server saw %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}
