// Parsed accessors for the server's observability commands: "stats
// latency", "stats shards" and the slowlog.
package kvclient

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"time"

	"camp/internal/proto"
)

// LatencyStats is one verb's latency summary from "stats latency". The
// quantiles are log-bucket upper bounds (conservative: never below the true
// value by more than one power-of-two bucket).
type LatencyStats struct {
	Count         uint64
	Sum           time.Duration
	Avg           time.Duration
	P50, P95, P99 time.Duration
}

// StatsLatency fetches per-verb latency summaries, keyed by verb ("get",
// "set", ..., "other"). Every verb the server tracks is always present,
// with zero values before any traffic. Admin commands route to the primary
// connection, as Stats does.
func (c *Client) StatsLatency() (map[string]LatencyStats, error) {
	lines, err := c.statLines("stats latency\r\n")
	if err != nil {
		return nil, err
	}
	out := make(map[string]LatencyStats)
	for k, v := range lines {
		// Keys are <verb>_<field>: the verb never contains '_', so the
		// first underscore splits it.
		verb, field, ok := strings.Cut(k, "_")
		if !ok {
			continue
		}
		n, perr := strconv.ParseUint(v, 10, 64)
		if perr != nil {
			return nil, fmt.Errorf("%w: bad stats latency value %s=%q", ErrProtocol, k, v)
		}
		ls := out[verb]
		us := time.Duration(n) * time.Microsecond
		switch field {
		case "count":
			ls.Count = n
		case "sum_us":
			ls.Sum = us
		case "avg_us":
			ls.Avg = us
		case "p50_us":
			ls.P50 = us
		case "p95_us":
			ls.P95 = us
		case "p99_us":
			ls.P99 = us
		default:
			continue
		}
		out[verb] = ls
	}
	return out, nil
}

// ShardStats is one shard's occupancy and pressure summary from
// "stats shards". The journal fields are zero on servers without
// persistence.
type ShardStats struct {
	Items            int64
	Bytes            int64
	Evictions        uint64
	RejectedSets     uint64
	ExpiredReclaimed uint64
	IQMissTable      int64
	// Ops and P99 are the shard's request-latency histogram; LockHolds and
	// LockP99 sample the mutation path's lock-hold time.
	Ops       uint64
	P99       time.Duration
	LockHolds uint64
	LockP99   time.Duration
	// JournalGen/JournalBytes/Compactions mirror the shard's persist
	// manager (zero without persistence).
	JournalGen   uint64
	JournalBytes int64
	Compactions  uint64
	// The arena fields mirror the packed-segment engine and are only
	// emitted by servers running -mode arena (zero otherwise).
	ArenaLiveBytes      int64
	ArenaDeadBytes      int64
	ArenaHeldBytes      int64
	ArenaSegments       int64
	ArenaCompactions    uint64
	ArenaRelocatedBytes uint64
}

// StatsShards fetches per-shard stats, indexed by shard.
func (c *Client) StatsShards() ([]ShardStats, error) {
	lines, err := c.statLines("stats shards\r\n")
	if err != nil {
		return nil, err
	}
	var out []ShardStats
	for i := 0; ; i++ {
		prefix := fmt.Sprintf("shard%d_", i)
		if _, ok := lines[prefix+"items"]; !ok {
			return out, nil
		}
		u := func(field string) uint64 {
			v, _ := strconv.ParseUint(lines[prefix+field], 10, 64)
			return v
		}
		si := func(field string) int64 {
			v, _ := strconv.ParseInt(lines[prefix+field], 10, 64)
			return v
		}
		out = append(out, ShardStats{
			Items:            si("items"),
			Bytes:            si("bytes"),
			Evictions:        u("evictions"),
			RejectedSets:     u("rejected_sets"),
			ExpiredReclaimed: u("expired_reclaimed"),
			IQMissTable:      si("iq_miss_table"),
			Ops:              u("ops"),
			P99:              time.Duration(u("p99_us")) * time.Microsecond,
			LockHolds:        u("lock_holds"),
			LockP99:          time.Duration(u("lock_p99_us")) * time.Microsecond,
			JournalGen:       u("journal_gen"),
			JournalBytes:     si("journal_bytes"),
			Compactions:      u("compactions"),

			ArenaLiveBytes:      si("arena_live_bytes"),
			ArenaDeadBytes:      si("arena_dead_bytes"),
			ArenaHeldBytes:      si("arena_held_bytes"),
			ArenaSegments:       si("arena_segments"),
			ArenaCompactions:    u("arena_compactions"),
			ArenaRelocatedBytes: u("arena_relocated_bytes"),
		})
	}
}

// SlowlogEntry is one recorded slow command from "slowlog get".
type SlowlogEntry struct {
	// ID increments per recorded entry for the server's lifetime; a reset
	// does not rewind it.
	ID       uint64
	Time     time.Time
	Duration time.Duration
	Verb     string
	// Key is the command's key, truncated server-side to 64 bytes; empty
	// for keyless commands.
	Key string
}

// Slowlog fetches the retained slow commands, newest first.
func (c *Client) Slowlog() ([]SlowlogEntry, error) {
	if _, err := c.w.WriteString("slowlog get\r\n"); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var out []SlowlogEntry
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if string(line) == "END" {
			return out, nil
		}
		if bytes.HasPrefix(line, clientErrorPrefix) || bytes.HasPrefix(line, serverErrorPrefix) {
			return nil, fmt.Errorf("%w: %s", ErrServer, line)
		}
		c.tok = proto.Tokenize(line, c.tok[:0])
		toks := c.tok
		if len(toks) != 6 || string(toks[0]) != "SLOWLOG" {
			return nil, fmt.Errorf("%w: unexpected slowlog line %q", ErrProtocol, line)
		}
		id, okID := proto.ParseUint(toks[1])
		unix, okUnix := proto.ParseInt(toks[2])
		durUS, okDur := proto.ParseInt(toks[3])
		if !okID || !okUnix || !okDur {
			return nil, fmt.Errorf("%w: bad slowlog line %q", ErrProtocol, line)
		}
		key := string(toks[5])
		if key == "-" {
			key = "" // the server's stand-in for a keyless command
		}
		out = append(out, SlowlogEntry{
			ID:       id,
			Time:     time.Unix(unix, 0),
			Duration: time.Duration(durUS) * time.Microsecond,
			Verb:     string(toks[4]),
			Key:      key,
		})
	}
}

// SlowlogReset discards the retained slow commands.
func (c *Client) SlowlogReset() error {
	return c.okCmd("slowlog reset\r\n")
}

// SlowlogSetThreshold sets the slowlog threshold at runtime. The server
// takes whole milliseconds; d is rounded down.
func (c *Client) SlowlogSetThreshold(d time.Duration) error {
	return c.okCmd("slowlog threshold " + strconv.FormatInt(d.Milliseconds(), 10) + "\r\n")
}

// okCmd sends one command line and expects OK.
func (c *Client) okCmd(cmd string) error {
	if _, err := c.w.WriteString(cmd); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if string(line) != "OK" {
		return fmt.Errorf("%w: unexpected response %q", ErrProtocol, line)
	}
	return nil
}
