// Package kvclient is a minimal memcached-text-protocol client for the
// kvserver package, standing in for the Whalin Java client the paper's §4
// experiment drives its IQ Twemcache deployment with.
package kvclient

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is a single-connection KVS client. It is not safe for concurrent
// use; open one client per goroutine.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// ErrServer wraps SERVER_ERROR responses.
var ErrServer = errors.New("kvclient: server error")

// ErrProtocol reports an unparsable response.
var ErrProtocol = errors.New("kvclient: protocol error")

// Dial connects to a kvserver at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("kvclient: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	fmt.Fprint(c.w, "quit\r\n")
	c.w.Flush()
	return c.conn.Close()
}

// Get fetches one key; ok is false on a miss.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	vals, err := c.MultiGet(key)
	if err != nil {
		return nil, false, err
	}
	v, ok := vals[key]
	return v, ok, nil
}

// MultiGet fetches several keys in one round trip, returning the hits.
func (c *Client) MultiGet(keys ...string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return nil, errors.New("kvclient: MultiGet needs at least one key")
	}
	if _, err := fmt.Fprintf(c.w, "get %s\r\n", strings.Join(keys, " ")); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "VALUE" {
			return nil, fmt.Errorf("%w: unexpected line %q", ErrProtocol, line)
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: bad length in %q", ErrProtocol, line)
		}
		value := make([]byte, n)
		if _, err := io.ReadFull(c.r, value); err != nil {
			return nil, err
		}
		if crlf, err := c.readLine(); err != nil {
			return nil, err
		} else if crlf != "" {
			return nil, fmt.Errorf("%w: missing CRLF after value", ErrProtocol)
		}
		out[fields[1]] = value
	}
}

// Set stores a value. ttl is in seconds (0 = no expiry). cost of 0 lets the
// server derive the cost from the IQ miss-to-set latency.
func (c *Client) Set(key string, value []byte, flags uint32, ttl int64, cost int64) error {
	if cost > 0 {
		fmt.Fprintf(c.w, "set %s %d %d %d %d\r\n", key, flags, ttl, len(value), cost)
	} else {
		fmt.Fprintf(c.w, "set %s %d %d %d\r\n", key, flags, ttl, len(value))
	}
	c.w.Write(value)
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	switch {
	case line == "STORED":
		return nil
	case strings.HasPrefix(line, "SERVER_ERROR"):
		return fmt.Errorf("%w: %s", ErrServer, line)
	default:
		return fmt.Errorf("%w: unexpected set response %q", ErrProtocol, line)
	}
}

// SetNoreply stores a value with the noreply flag: the server sends no
// response, so many sets can be pipelined into one buffered write. The
// command sits in the client buffer until Flush (or a synchronous call's
// flush) pushes it out; write errors surface here or there.
func (c *Client) SetNoreply(key string, value []byte, flags uint32, ttl int64, cost int64) error {
	if cost > 0 {
		fmt.Fprintf(c.w, "set %s %d %d %d %d noreply\r\n", key, flags, ttl, len(value), cost)
	} else {
		fmt.Fprintf(c.w, "set %s %d %d %d noreply\r\n", key, flags, ttl, len(value))
	}
	c.w.Write(value)
	_, err := c.w.WriteString("\r\n")
	return err
}

// Flush pushes buffered noreply commands to the server.
func (c *Client) Flush() error { return c.w.Flush() }

// Add stores a value only if the key is absent; ok reports whether it was
// stored.
func (c *Client) Add(key string, value []byte, flags uint32, ttl, cost int64) (bool, error) {
	return c.storeCmd("add", key, value, flags, ttl, cost)
}

// Replace stores a value only if the key is present.
func (c *Client) Replace(key string, value []byte, flags uint32, ttl, cost int64) (bool, error) {
	return c.storeCmd("replace", key, value, flags, ttl, cost)
}

// Append concatenates data after an existing value.
func (c *Client) Append(key string, value []byte) (bool, error) {
	return c.storeCmd("append", key, value, 0, 0, 0)
}

// Prepend concatenates data before an existing value.
func (c *Client) Prepend(key string, value []byte) (bool, error) {
	return c.storeCmd("prepend", key, value, 0, 0, 0)
}

func (c *Client) storeCmd(cmd, key string, value []byte, flags uint32, ttl, cost int64) (bool, error) {
	if cost > 0 {
		fmt.Fprintf(c.w, "%s %s %d %d %d %d\r\n", cmd, key, flags, ttl, len(value), cost)
	} else {
		fmt.Fprintf(c.w, "%s %s %d %d %d\r\n", cmd, key, flags, ttl, len(value))
	}
	c.w.Write(value)
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case line == "STORED":
		return true, nil
	case line == "NOT_STORED":
		return false, nil
	case strings.HasPrefix(line, "SERVER_ERROR"):
		return false, fmt.Errorf("%w: %s", ErrServer, line)
	default:
		return false, fmt.Errorf("%w: unexpected %s response %q", ErrProtocol, cmd, line)
	}
}

// Incr adds delta to a numeric value, returning the new value; ok is false
// when the key is absent.
func (c *Client) Incr(key string, delta uint64) (value uint64, ok bool, err error) {
	return c.arith("incr", key, delta)
}

// Decr subtracts delta from a numeric value (clamping at zero), returning
// the new value; ok is false when the key is absent.
func (c *Client) Decr(key string, delta uint64) (value uint64, ok bool, err error) {
	return c.arith("decr", key, delta)
}

func (c *Client) arith(cmd, key string, delta uint64) (uint64, bool, error) {
	fmt.Fprintf(c.w, "%s %s %d\r\n", cmd, key, delta)
	if err := c.w.Flush(); err != nil {
		return 0, false, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, false, err
	}
	switch {
	case line == "NOT_FOUND":
		return 0, false, nil
	case strings.HasPrefix(line, "CLIENT_ERROR"), strings.HasPrefix(line, "SERVER_ERROR"):
		return 0, false, fmt.Errorf("%w: %s", ErrServer, line)
	}
	v, perr := strconv.ParseUint(line, 10, 64)
	if perr != nil {
		return 0, false, fmt.Errorf("%w: unexpected %s response %q", ErrProtocol, cmd, line)
	}
	return v, true, nil
}

// Touch updates a key's expiry; ok is false when the key is absent.
func (c *Client) Touch(key string, ttl int64) (bool, error) {
	fmt.Fprintf(c.w, "touch %s %d\r\n", key, ttl)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch line {
	case "TOUCHED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	default:
		return false, fmt.Errorf("%w: unexpected touch response %q", ErrProtocol, line)
	}
}

// Delete removes a key, reporting whether it existed.
func (c *Client) Delete(key string) (bool, error) {
	fmt.Fprintf(c.w, "delete %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch line {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	default:
		return false, fmt.Errorf("%w: unexpected delete response %q", ErrProtocol, line)
	}
}

// Stats fetches the server's STAT lines as a map.
func (c *Client) Stats() (map[string]string, error) {
	fmt.Fprint(c.w, "stats\r\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "STAT" {
			return nil, fmt.Errorf("%w: unexpected stats line %q", ErrProtocol, line)
		}
		out[fields[1]] = fields[2]
	}
}

// Debug returns the server-side metadata line for a key.
func (c *Client) Debug(key string) (string, bool, error) {
	fmt.Fprintf(c.w, "debug %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return "", false, err
	}
	line, err := c.readLine()
	if err != nil {
		return "", false, err
	}
	if line == "NOT_FOUND" {
		return "", false, nil
	}
	if !strings.HasPrefix(line, "DEBUG ") {
		return "", false, fmt.Errorf("%w: unexpected debug response %q", ErrProtocol, line)
	}
	return line, true, nil
}

// FlushAll empties the server.
func (c *Client) FlushAll() error {
	fmt.Fprint(c.w, "flush_all\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "OK" {
		return fmt.Errorf("%w: unexpected flush response %q", ErrProtocol, line)
	}
	return nil
}

// Version returns the server version banner.
func (c *Client) Version() (string, error) {
	fmt.Fprint(c.w, "version\r\n")
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(line, "VERSION ") {
		return "", fmt.Errorf("%w: unexpected version response %q", ErrProtocol, line)
	}
	return strings.TrimPrefix(line, "VERSION "), nil
}

func (c *Client) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}
