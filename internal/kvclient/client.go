// Package kvclient is a minimal memcached-text-protocol client for the
// kvserver package, standing in for the Whalin Java client the paper's §4
// experiment drives its IQ Twemcache deployment with.
//
// The hot paths share internal/proto's zero-copy line reader, tokenizer and
// []byte integer parsers with the server: commands are built by appending
// into a reusable buffer instead of fmt.Fprintf, and responses parse without
// per-line string allocation. MultiGetFunc exposes the allocation-free read
// path directly by lending out the client's scratch buffers.
package kvclient

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"

	"camp/internal/proto"
)

// Client is a single-connection KVS client. It is not safe for concurrent
// use; open one client per goroutine.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	lr   *proto.LineReader
	w    *bufio.Writer

	// Reusable scratch: outgoing command lines, response tokens, and the
	// key/value copies MultiGetFunc lends to its callback.
	cmd []byte
	tok [][]byte
	key []byte
	val []byte

	// replica, when non-nil, is a second connection reads are routed to
	// (see DialWithReplica). Writes and admin commands stay on the primary
	// connection; ReplicaStatus/ReplicaPromote target the replica.
	replica *Client
}

// ErrServer wraps SERVER_ERROR responses.
var ErrServer = errors.New("kvclient: server error")

// ErrOverQuota reports a request shed by the server's per-tenant request
// quota ("SERVER_ERROR tenant over quota"); it wraps ErrServer, so existing
// errors.Is(err, ErrServer) checks keep matching. Retry after backing off.
var ErrOverQuota = fmt.Errorf("%w: tenant over quota", ErrServer)

// ErrProtocol reports an unparsable response.
var ErrProtocol = errors.New("kvclient: protocol error")

// Dial connects to a kvserver at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("kvclient: dial %s: %w", addr, err)
	}
	r := bufio.NewReader(conn)
	return &Client{
		conn: conn,
		r:    r,
		lr:   proto.NewLineReader(r),
		w:    bufio.NewWriter(conn),
	}, nil
}

// DialWithTenant connects to a kvserver and scopes the connection to the
// named tenant ("default" restores the namespace legacy clients use).
func DialWithTenant(addr, tenant string) (*Client, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := c.Tenant(tenant); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Tenant switches this connection (and the attached replica connection, if
// any) to the named tenant. The scope is per connection and sticks until the
// next Tenant call; a bare FlushAll after this clears only this tenant.
func (c *Client) Tenant(name string) error {
	if c.replica != nil {
		if err := c.replica.Tenant(name); err != nil {
			return err
		}
	}
	if err := c.writeLineCmd("tenant", name); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	want := "TENANT " + name
	if string(line) != want {
		return fmt.Errorf("%w: unexpected tenant response %q", ErrServer, line)
	}
	return nil
}

// DialWithReplica connects to a primary and one of its replicas, returning a
// client that serves reads (Get, MultiGet, MultiGetFunc) from the replica
// while everything else — writes, stats, admin — goes to the primary. The
// replication stream is asynchronous, so replica reads may briefly trail an
// acknowledged write.
func DialWithReplica(primaryAddr, replicaAddr string) (*Client, error) {
	p, err := Dial(primaryAddr)
	if err != nil {
		return nil, err
	}
	r, err := Dial(replicaAddr)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.replica = r
	return p, nil
}

// readConn returns the connection reads and replica admin commands use: the
// replica when one is attached, else this client itself.
func (c *Client) readConn() *Client {
	if c.replica != nil {
		return c.replica
	}
	return c
}

// Close tears down the connection (and the replica connection, if any).
func (c *Client) Close() error {
	if c.replica != nil {
		c.replica.Close()
	}
	c.w.WriteString("quit\r\n")
	c.w.Flush()
	return c.conn.Close()
}

// readLine returns the next response line, borrowed from the read buffer:
// it is only valid until the next read.
func (c *Client) readLine() ([]byte, error) {
	return c.lr.ReadLine()
}

// Get fetches one key; ok is false on a miss.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	vals, err := c.MultiGet(key)
	if err != nil {
		return nil, false, err
	}
	v, ok := vals[key]
	return v, ok, nil
}

// MultiGet fetches several keys in one round trip, returning the hits.
func (c *Client) MultiGet(keys ...string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	err := c.MultiGetFunc(func(key, value []byte, flags uint32) {
		out[string(key)] = append([]byte(nil), value...)
	}, keys...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MultiGetFunc fetches several keys in one round trip and calls fn once per
// hit, in server-reply order. The key and value slices are borrowed from the
// client's reusable buffers: they are valid only during the callback and
// must be copied to be retained. This is the allocation-free read path —
// MultiGet is this plus a map and copies.
func (c *Client) MultiGetFunc(fn func(key, value []byte, flags uint32), keys ...string) error {
	if len(keys) == 0 {
		return errors.New("kvclient: MultiGet needs at least one key")
	}
	if c.replica != nil {
		return c.replica.MultiGetFunc(fn, keys...)
	}
	cmd := append(c.cmd[:0], "get"...)
	for _, k := range keys {
		cmd = append(cmd, ' ')
		cmd = append(cmd, k...)
	}
	cmd = append(cmd, '\r', '\n')
	c.cmd = cmd
	if _, err := c.w.Write(cmd); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for {
		line, err := c.readLine()
		if err != nil {
			return err
		}
		if string(line) == "END" {
			return nil
		}
		c.tok = proto.Tokenize(line, c.tok[:0])
		toks := c.tok
		if len(toks) != 4 || string(toks[0]) != "VALUE" {
			return fmt.Errorf("%w: unexpected line %q", ErrProtocol, line)
		}
		flags, okFlags := proto.ParseUint32(toks[2])
		n, okLen := proto.ParseInt(toks[3])
		if !okFlags || !okLen || n < 0 {
			return fmt.Errorf("%w: bad length in %q", ErrProtocol, line)
		}
		// The tokens alias the read buffer; copy the key out before the
		// value read below invalidates it.
		c.key = append(c.key[:0], toks[1]...)
		if int64(cap(c.val)) < n {
			c.val = make([]byte, n)
		}
		value := c.val[:n]
		if _, err := io.ReadFull(c.r, value); err != nil {
			return err
		}
		if crlf, err := c.readLine(); err != nil {
			return err
		} else if len(crlf) != 0 {
			return fmt.Errorf("%w: missing CRLF after value", ErrProtocol)
		}
		fn(c.key, value, flags)
		// Don't let one huge value pin its buffer for the client's
		// lifetime (the server caps its pooled scratch the same way).
		if cap(c.val) > maxValScratch {
			c.val = nil
		}
	}
}

// maxValScratch caps the reusable value buffer MultiGetFunc keeps between
// calls.
const maxValScratch = 64 << 10

var crlf = []byte("\r\n")

// writeStore sends "<cmd> <key> <flags> <ttl> <bytes>[ <cost>][ noreply]\r\n<value>\r\n".
// Only the header goes through the command scratch; the value is written
// directly, so no copy is made and the scratch never grows past header
// size.
func (c *Client) writeStore(cmd, key string, value []byte, flags uint32, ttl, cost int64, noreply bool) error {
	buf := append(c.cmd[:0], cmd...)
	buf = append(buf, ' ')
	buf = append(buf, key...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, uint64(flags), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, ttl, 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(len(value)), 10)
	if cost > 0 {
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, cost, 10)
	}
	if noreply {
		buf = append(buf, " noreply"...)
	}
	buf = append(buf, '\r', '\n')
	c.cmd = buf
	if _, err := c.w.Write(buf); err != nil {
		return err
	}
	if _, err := c.w.Write(value); err != nil {
		return err
	}
	_, err := c.w.Write(crlf)
	return err
}

// writeLineCmd sends "<verb> <key>[ <extra>...]\r\n" and flushes — the
// shape every synchronous single-key command shares.
func (c *Client) writeLineCmd(verb, key string, extra ...string) error {
	buf := append(c.cmd[:0], verb...)
	buf = append(buf, ' ')
	buf = append(buf, key...)
	for _, e := range extra {
		buf = append(buf, ' ')
		buf = append(buf, e...)
	}
	buf = append(buf, '\r', '\n')
	c.cmd = buf
	if _, err := c.w.Write(buf); err != nil {
		return err
	}
	return c.w.Flush()
}

// Set stores a value. ttl is in seconds (0 = no expiry). cost of 0 lets the
// server derive the cost from the IQ miss-to-set latency.
func (c *Client) Set(key string, value []byte, flags uint32, ttl int64, cost int64) error {
	if err := c.writeStore("set", key, value, flags, ttl, cost, false); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	switch {
	case string(line) == "STORED":
		return nil
	case bytes.Equal(line, overQuotaLine):
		return ErrOverQuota
	case bytes.HasPrefix(line, serverErrorPrefix):
		return fmt.Errorf("%w: %s", ErrServer, line)
	default:
		return fmt.Errorf("%w: unexpected set response %q", ErrProtocol, line)
	}
}

// SetNoreply stores a value with the noreply flag: the server sends no
// response, so many sets can be pipelined into one buffered write. The
// command sits in the client buffer until Flush (or a synchronous call's
// flush) pushes it out; write errors surface here or there.
func (c *Client) SetNoreply(key string, value []byte, flags uint32, ttl int64, cost int64) error {
	return c.writeStore("set", key, value, flags, ttl, cost, true)
}

// Flush pushes buffered noreply commands to the server.
func (c *Client) Flush() error { return c.w.Flush() }

// Add stores a value only if the key is absent; ok reports whether it was
// stored.
func (c *Client) Add(key string, value []byte, flags uint32, ttl, cost int64) (bool, error) {
	return c.storeCmd("add", key, value, flags, ttl, cost)
}

// Replace stores a value only if the key is present.
func (c *Client) Replace(key string, value []byte, flags uint32, ttl, cost int64) (bool, error) {
	return c.storeCmd("replace", key, value, flags, ttl, cost)
}

// Append concatenates data after an existing value.
func (c *Client) Append(key string, value []byte) (bool, error) {
	return c.storeCmd("append", key, value, 0, 0, 0)
}

// Prepend concatenates data before an existing value.
func (c *Client) Prepend(key string, value []byte) (bool, error) {
	return c.storeCmd("prepend", key, value, 0, 0, 0)
}

var serverErrorPrefix = []byte("SERVER_ERROR")
var clientErrorPrefix = []byte("CLIENT_ERROR")
var overQuotaLine = []byte("SERVER_ERROR tenant over quota")

func (c *Client) storeCmd(cmd, key string, value []byte, flags uint32, ttl, cost int64) (bool, error) {
	if err := c.writeStore(cmd, key, value, flags, ttl, cost, false); err != nil {
		return false, err
	}
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case string(line) == "STORED":
		return true, nil
	case string(line) == "NOT_STORED":
		return false, nil
	case bytes.Equal(line, overQuotaLine):
		return false, ErrOverQuota
	case bytes.HasPrefix(line, serverErrorPrefix):
		return false, fmt.Errorf("%w: %s", ErrServer, line)
	default:
		return false, fmt.Errorf("%w: unexpected %s response %q", ErrProtocol, cmd, line)
	}
}

// Incr adds delta to a numeric value, returning the new value; ok is false
// when the key is absent.
func (c *Client) Incr(key string, delta uint64) (value uint64, ok bool, err error) {
	return c.arith("incr", key, delta)
}

// Decr subtracts delta from a numeric value (clamping at zero), returning
// the new value; ok is false when the key is absent.
func (c *Client) Decr(key string, delta uint64) (value uint64, ok bool, err error) {
	return c.arith("decr", key, delta)
}

func (c *Client) arith(cmd, key string, delta uint64) (uint64, bool, error) {
	if err := c.writeLineCmd(cmd, key, strconv.FormatUint(delta, 10)); err != nil {
		return 0, false, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, false, err
	}
	switch {
	case string(line) == "NOT_FOUND":
		return 0, false, nil
	case bytes.HasPrefix(line, clientErrorPrefix), bytes.HasPrefix(line, serverErrorPrefix):
		return 0, false, fmt.Errorf("%w: %s", ErrServer, line)
	}
	v, ok := proto.ParseUint(line)
	if !ok {
		return 0, false, fmt.Errorf("%w: unexpected %s response %q", ErrProtocol, cmd, line)
	}
	return v, true, nil
}

// Touch updates a key's expiry; ok is false when the key is absent.
func (c *Client) Touch(key string, ttl int64) (bool, error) {
	if err := c.writeLineCmd("touch", key, strconv.FormatInt(ttl, 10)); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch string(line) {
	case "TOUCHED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	default:
		return false, fmt.Errorf("%w: unexpected touch response %q", ErrProtocol, line)
	}
}

// Delete removes a key, reporting whether it existed.
func (c *Client) Delete(key string) (bool, error) {
	if err := c.writeLineCmd("delete", key); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch string(line) {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	default:
		return false, fmt.Errorf("%w: unexpected delete response %q", ErrProtocol, line)
	}
}

// Stats fetches the server's STAT lines as a map.
func (c *Client) Stats() (map[string]string, error) {
	return c.statLines("stats\r\n")
}

// StatsTenants fetches the per-tenant accounting ("stats tenants":
// tenant:<name>:<field> lines) as a map.
func (c *Client) StatsTenants() (map[string]string, error) {
	return c.statLines("stats tenants\r\n")
}

// statLines sends one command and collects its STAT lines until END.
func (c *Client) statLines(cmd string) (map[string]string, error) {
	if _, err := c.w.WriteString(cmd); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if string(line) == "END" {
			return out, nil
		}
		if bytes.HasPrefix(line, clientErrorPrefix) || bytes.HasPrefix(line, serverErrorPrefix) {
			return nil, fmt.Errorf("%w: %s", ErrServer, line)
		}
		c.tok = proto.Tokenize(line, c.tok[:0])
		toks := c.tok
		if len(toks) != 3 || string(toks[0]) != "STAT" {
			return nil, fmt.Errorf("%w: unexpected stats line %q", ErrProtocol, line)
		}
		out[string(toks[1])] = string(toks[2])
	}
}

// ReplicaStatus fetches the replication state ("replica status" STAT lines:
// role, primary address, per-shard positions) from the replica connection
// when one is attached, else from the server this client talks to.
func (c *Client) ReplicaStatus() (map[string]string, error) {
	return c.readConn().statLines("replica status\r\n")
}

// ReplicaShardStatus is one shard's parsed replication state from
// ReplicaStatus.
type ReplicaShardStatus struct {
	// Connected reports whether the shard's stream is live.
	Connected bool
	// Gen/Offset/RunID are the in-memory stream position (the primary
	// journal generation, byte offset, and run the position is scoped to).
	Gen    uint64
	Offset int64
	RunID  uint64
	// Durable reports whether a position is persisted in the follower's
	// journal — the restart-resume guarantee: with it, a restart reconnects
	// with CONTINUE instead of a full resync. DurableGen/DurableOffset are
	// the persisted position.
	Durable       bool
	DurableGen    uint64
	DurableOffset int64
	// FullSyncs, Reconnects and AppliedOps count this session's bootstrap
	// resyncs, stream reconnects and applied mutations.
	FullSyncs  uint64
	Reconnects uint64
	AppliedOps uint64
}

// ReplicaShards parses ReplicaStatus into per-shard structs, indexed by
// shard. Unknown or missing fields parse as zero, so older servers degrade
// gracefully.
func (c *Client) ReplicaShards() ([]ReplicaShardStatus, error) {
	stats, err := c.ReplicaStatus()
	if err != nil {
		return nil, err
	}
	var out []ReplicaShardStatus
	for i := 0; ; i++ {
		prefix := fmt.Sprintf("shard%d_", i)
		if _, ok := stats[prefix+"connected"]; !ok {
			return out, nil
		}
		u := func(field string) uint64 {
			v, _ := strconv.ParseUint(stats[prefix+field], 10, 64)
			return v
		}
		s := ReplicaShardStatus{
			Connected:  stats[prefix+"connected"] == "1",
			Gen:        u("gen"),
			RunID:      u("run_id"),
			Durable:    stats[prefix+"durable"] == "1",
			DurableGen: u("durable_gen"),
			FullSyncs:  u("full_syncs"),
			Reconnects: u("reconnects"),
			AppliedOps: u("applied_ops"),
		}
		s.Offset, _ = strconv.ParseInt(stats[prefix+"offset"], 10, 64)
		s.DurableOffset, _ = strconv.ParseInt(stats[prefix+"durable_offset"], 10, 64)
		out = append(out, s)
	}
}

// ReplicaPromote promotes the replica (the replica connection when attached,
// else the server this client talks to) to primary: replication stops and
// the server starts accepting writes.
func (c *Client) ReplicaPromote() error {
	t := c.readConn()
	if _, err := t.w.WriteString("replica promote\r\n"); err != nil {
		return err
	}
	if err := t.w.Flush(); err != nil {
		return err
	}
	line, err := t.readLine()
	if err != nil {
		return err
	}
	if string(line) != "OK" {
		return fmt.Errorf("%w: promote failed: %s", ErrServer, line)
	}
	return nil
}

// Debug returns the server-side metadata line for a key.
func (c *Client) Debug(key string) (string, bool, error) {
	if err := c.writeLineCmd("debug", key); err != nil {
		return "", false, err
	}
	line, err := c.readLine()
	if err != nil {
		return "", false, err
	}
	if string(line) == "NOT_FOUND" {
		return "", false, nil
	}
	if !bytes.HasPrefix(line, []byte("DEBUG ")) {
		return "", false, fmt.Errorf("%w: unexpected debug response %q", ErrProtocol, line)
	}
	return string(line), true, nil
}

// FlushAll empties the connection's current tenant (every tenant's data, on
// a connection that never switched off the default tenant-scoping rules —
// see FlushAllTenants for the unconditional form).
func (c *Client) FlushAll() error {
	return c.flushCmd("flush_all\r\n")
}

// FlushAllTenants empties the whole server — every tenant's entries — via
// the explicit "flush_all all" admin form.
func (c *Client) FlushAllTenants() error {
	return c.flushCmd("flush_all all\r\n")
}

func (c *Client) flushCmd(cmd string) error {
	if _, err := c.w.WriteString(cmd); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if string(line) != "OK" {
		return fmt.Errorf("%w: unexpected flush response %q", ErrProtocol, line)
	}
	return nil
}

// Version returns the server version banner.
func (c *Client) Version() (string, error) {
	if _, err := c.w.WriteString("version\r\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	if !bytes.HasPrefix(line, []byte("VERSION ")) {
		return "", fmt.Errorf("%w: unexpected version response %q", ErrProtocol, line)
	}
	return string(line[len("VERSION "):]), nil
}
