package cache

import "camp/internal/ilist"

// ARC is a byte-weighted adaptation of Megiddo and Modha's Adaptive
// Replacement Cache (FAST'03), one of the recency/frequency-adaptive
// policies §5 contrasts CAMP against. ARC balances a recency list (T1) and
// a frequency list (T2) using ghost lists (B1, B2) of recently evicted keys
// to learn the workload's mix; like LRU — and unlike CAMP — it is oblivious
// to per-item cost.
//
// The classic algorithm assumes uniform page sizes; this adaptation
// measures list lengths and the adaptation target p in bytes, the standard
// generalization for variable-sized items.
type ARC struct {
	capacity int64
	p        int64 // adaptation target for T1, in bytes

	t1, t2, b1, b2 *arcList
	entries        map[string]*arcEntry

	stats   Stats
	onEvict EvictFunc
}

type arcWhere int

const (
	inT1 arcWhere = iota + 1
	inT2
	inB1
	inB2
)

type arcEntry struct {
	key   string
	size  int64
	cost  int64
	where arcWhere
	node  *ilist.Node[*arcEntry]
}

type arcList struct {
	list  *ilist.List[*arcEntry]
	bytes int64
}

func newArcList() *arcList { return &arcList{list: ilist.New[*arcEntry]()} }

func (l *arcList) pushMRU(e *arcEntry) {
	e.node = &ilist.Node[*arcEntry]{Value: e}
	l.list.PushBackNode(e.node)
	l.bytes += e.size
}

func (l *arcList) remove(e *arcEntry) {
	l.list.Remove(e.node)
	l.bytes -= e.size
	e.node = nil
}

func (l *arcList) lru() *arcEntry {
	n := l.list.Front()
	if n == nil {
		return nil
	}
	return n.Value
}

var _ Policy = (*ARC)(nil)
var _ Evicter = (*ARC)(nil)

// NewARC returns a byte-weighted ARC policy.
func NewARC(capacity int64) *ARC {
	if capacity < 0 {
		capacity = 0
	}
	return &ARC{
		capacity: capacity,
		t1:       newArcList(),
		t2:       newArcList(),
		b1:       newArcList(),
		b2:       newArcList(),
		entries:  make(map[string]*arcEntry),
	}
}

// Name implements Policy.
func (a *ARC) Name() string { return "arc" }

// Get implements Policy.
func (a *ARC) Get(key string) bool {
	e, ok := a.entries[key]
	if !ok || (e.where != inT1 && e.where != inT2) {
		a.stats.Misses++
		return false
	}
	// Case I: hit in T1 or T2 promotes to T2 MRU.
	a.listOf(e.where).remove(e)
	e.where = inT2
	a.t2.pushMRU(e)
	a.stats.Hits++
	return true
}

// Set implements Policy.
func (a *ARC) Set(key string, size, cost int64) bool {
	if size < 0 {
		size = 0
	}
	if size > a.capacity {
		a.dropIfGhost(key)
		a.stats.Rejected++
		return false
	}
	e, ok := a.entries[key]
	switch {
	case ok && (e.where == inT1 || e.where == inT2):
		// Resident update: adjust size in place and promote.
		a.listOf(e.where).remove(e)
		e.size, e.cost = size, cost
		e.where = inT2
		for a.residentBytes()+size > a.capacity {
			if !a.replace(false) {
				delete(a.entries, key)
				a.stats.Rejected++
				return false
			}
		}
		a.t2.pushMRU(e)
		a.stats.Updates++
		return true
	case ok && e.where == inB1:
		// Case II: ghost hit in B1 -> grow the recency target.
		a.p = minInt64(a.capacity, a.p+maxInt64(e.size, a.b2.bytes/maxInt64(a.b1.bytes, 1)*e.size))
		a.b1.remove(e)
		e.size, e.cost = size, cost
		for a.residentBytes()+size > a.capacity {
			if !a.replace(false) {
				delete(a.entries, key)
				a.stats.Rejected++
				return false
			}
		}
		e.where = inT2
		a.t2.pushMRU(e)
		a.stats.Sets++
		return true
	case ok && e.where == inB2:
		// Case III: ghost hit in B2 -> grow the frequency target.
		a.p = maxInt64(0, a.p-maxInt64(e.size, a.b1.bytes/maxInt64(a.b2.bytes, 1)*e.size))
		a.b2.remove(e)
		e.size, e.cost = size, cost
		for a.residentBytes()+size > a.capacity {
			if !a.replace(true) {
				delete(a.entries, key)
				a.stats.Rejected++
				return false
			}
		}
		e.where = inT2
		a.t2.pushMRU(e)
		a.stats.Sets++
		return true
	default:
		// Case IV: brand-new key.
		if a.t1.bytes+a.b1.bytes >= a.capacity {
			if a.t1.bytes < a.capacity {
				a.dropGhostLRU(a.b1, inB1)
			} else if lru := a.t1.lru(); lru != nil {
				// B1 is empty and T1 fills the cache: evict
				// T1's LRU outright.
				a.evict(lru, false)
			}
		} else if total := a.residentBytes() + a.b1.bytes + a.b2.bytes; total >= a.capacity {
			if total >= 2*a.capacity {
				a.dropGhostLRU(a.b2, inB2)
			}
		}
		for a.residentBytes()+size > a.capacity {
			if !a.replace(false) {
				a.stats.Rejected++
				return false
			}
		}
		ne := &arcEntry{key: key, size: size, cost: cost, where: inT1}
		a.entries[key] = ne
		a.t1.pushMRU(ne)
		a.stats.Sets++
		return true
	}
}

// replace implements ARC's REPLACE: evict from T1 if it exceeds the target
// (or ties it on a B2 ghost hit), else from T2. The victim's key moves to
// the corresponding ghost list.
func (a *ARC) replace(b2Hit bool) bool {
	t1LRU := a.t1.lru()
	if t1LRU != nil && (a.t1.bytes > a.p || (b2Hit && a.t1.bytes >= a.p)) {
		a.evict(t1LRU, true)
		return true
	}
	if t2LRU := a.t2.lru(); t2LRU != nil {
		a.evict(t2LRU, true)
		return true
	}
	if t1LRU != nil {
		a.evict(t1LRU, true)
		return true
	}
	return false
}

// evict removes a resident entry; when ghost is true the key is remembered
// in the matching ghost list.
func (a *ARC) evict(e *arcEntry, ghost bool) {
	a.stats.Evictions++
	a.stats.EvictedBytes += uint64(e.size)
	ev := Entry{Key: e.key, Size: e.size, Cost: e.cost}
	from := e.where
	a.listOf(from).remove(e)
	if ghost {
		if from == inT1 {
			e.where = inB1
			a.b1.pushMRU(e)
		} else {
			e.where = inB2
			a.b2.pushMRU(e)
		}
	} else {
		delete(a.entries, e.key)
	}
	if a.onEvict != nil {
		a.onEvict(ev)
	}
}

// EvictOne implements Evicter.
func (a *ARC) EvictOne() (Entry, bool) {
	var victim *arcEntry
	if a.t1.bytes > a.p {
		victim = a.t1.lru()
	}
	if victim == nil {
		victim = a.t2.lru()
	}
	if victim == nil {
		victim = a.t1.lru()
	}
	if victim == nil {
		return Entry{}, false
	}
	e := Entry{Key: victim.key, Size: victim.size, Cost: victim.cost}
	a.evict(victim, true)
	return e, true
}

func (a *ARC) dropGhostLRU(l *arcList, where arcWhere) {
	if lru := l.lru(); lru != nil && lru.where == where {
		l.remove(lru)
		delete(a.entries, lru.key)
	}
}

func (a *ARC) dropIfGhost(key string) {
	if e, ok := a.entries[key]; ok {
		if e.where == inB1 || e.where == inB2 {
			a.listOf(e.where).remove(e)
			delete(a.entries, key)
		}
	}
}

// Delete implements Policy.
func (a *ARC) Delete(key string) bool {
	e, ok := a.entries[key]
	if !ok {
		return false
	}
	resident := e.where == inT1 || e.where == inT2
	a.listOf(e.where).remove(e)
	delete(a.entries, key)
	return resident
}

// Contains implements Policy.
func (a *ARC) Contains(key string) bool {
	e, ok := a.entries[key]
	return ok && (e.where == inT1 || e.where == inT2)
}

// Peek implements Policy.
func (a *ARC) Peek(key string) (Entry, bool) {
	e, ok := a.entries[key]
	if !ok || (e.where != inT1 && e.where != inT2) {
		return Entry{}, false
	}
	return Entry{Key: e.key, Size: e.size, Cost: e.cost}, true
}

// Len implements Policy (resident items only).
func (a *ARC) Len() int {
	return a.t1.list.Len() + a.t2.list.Len()
}

// Used implements Policy.
func (a *ARC) Used() int64 { return a.residentBytes() }

// Capacity implements Policy.
func (a *ARC) Capacity() int64 { return a.capacity }

// Stats implements Policy.
func (a *ARC) Stats() Stats { return a.stats }

// SetEvictFunc implements Policy.
func (a *ARC) SetEvictFunc(fn EvictFunc) { a.onEvict = fn }

// Target returns the current byte target for T1, for tests.
func (a *ARC) Target() int64 { return a.p }

func (a *ARC) residentBytes() int64 { return a.t1.bytes + a.t2.bytes }

func (a *ARC) listOf(w arcWhere) *arcList {
	switch w {
	case inT1:
		return a.t1
	case inT2:
		return a.t2
	case inB1:
		return a.b1
	default:
		return a.b2
	}
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
