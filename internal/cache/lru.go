package cache

import "camp/internal/ilist"

// LRU is the classic least-recently-used policy over variable-sized items:
// a single recency queue, evicting from the front (least recently used)
// until the incoming item fits. It ignores cost entirely, which is exactly
// the weakness CAMP addresses.
type LRU struct {
	capacity int64
	used     int64
	items    map[string]*ilist.Node[*lruEntry]
	queue    *ilist.List[*lruEntry]
	stats    Stats
	onEvict  EvictFunc
}

type lruEntry struct {
	key  string
	size int64
	cost int64
}

var (
	_ Policy       = (*LRU)(nil)
	_ VictimPeeker = (*LRU)(nil)
)

// NewLRU returns an LRU policy with the given byte capacity.
func NewLRU(capacity int64) *LRU {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU{
		capacity: capacity,
		items:    make(map[string]*ilist.Node[*lruEntry]),
		queue:    ilist.New[*lruEntry](),
	}
}

// Name implements Policy.
func (c *LRU) Name() string { return "lru" }

// Get implements Policy.
func (c *LRU) Get(key string) bool {
	n, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return false
	}
	c.queue.MoveToBack(n)
	c.stats.Hits++
	return true
}

// Set implements Policy.
func (c *LRU) Set(key string, size, cost int64) bool {
	if size < 0 {
		size = 0
	}
	if n, ok := c.items[key]; ok {
		delta := size - n.Value.size
		if delta > 0 && !c.makeRoomExcept(delta, key) {
			// Cannot grow the entry; drop it instead of keeping a
			// stale size.
			c.removeNode(n)
			c.stats.Rejected++
			return false
		}
		c.used += delta
		n.Value.size = size
		n.Value.cost = cost
		c.queue.MoveToBack(n)
		c.stats.Updates++
		return true
	}
	if size > c.capacity {
		c.stats.Rejected++
		return false
	}
	if !c.makeRoomExcept(size, "") {
		c.stats.Rejected++
		return false
	}
	e := &lruEntry{key: key, size: size, cost: cost}
	c.items[key] = c.queue.PushBack(e)
	c.used += size
	c.stats.Sets++
	return true
}

// Delete implements Policy.
func (c *LRU) Delete(key string) bool {
	n, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeNode(n)
	return true
}

// Contains implements Policy.
func (c *LRU) Contains(key string) bool {
	_, ok := c.items[key]
	return ok
}

// Peek implements Policy.
func (c *LRU) Peek(key string) (Entry, bool) {
	n, ok := c.items[key]
	if !ok {
		return Entry{}, false
	}
	return Entry{Key: n.Value.key, Size: n.Value.size, Cost: n.Value.cost}, true
}

// Len implements Policy.
func (c *LRU) Len() int { return len(c.items) }

// Used implements Policy.
func (c *LRU) Used() int64 { return c.used }

// Capacity implements Policy.
func (c *LRU) Capacity() int64 { return c.capacity }

// Stats implements Policy.
func (c *LRU) Stats() Stats { return c.stats }

// SetEvictFunc implements Policy.
func (c *LRU) SetEvictFunc(fn EvictFunc) { c.onEvict = fn }

// EvictOne implements Evicter: it evicts the least recently used item.
func (c *LRU) EvictOne() (Entry, bool) {
	n := c.queue.Front()
	if n == nil {
		return Entry{}, false
	}
	e := Entry{Key: n.Value.key, Size: n.Value.size, Cost: n.Value.cost}
	c.evictNode(n)
	return e, true
}

// VisitEvictionOrder implements EvictionOrdered: the recency queue is the
// eviction order, least recently used first.
func (c *LRU) VisitEvictionOrder(visit func(Entry) bool) {
	for n := c.queue.Front(); n != nil; n = n.Next() {
		e := n.Value
		if !visit(Entry{Key: e.key, Size: e.size, Cost: e.cost}) {
			return
		}
	}
}

// PeekVictim implements VictimPeeker: the least recently used item, with
// urgency 0 — LRU has no notion of one victim being worth more than another.
func (c *LRU) PeekVictim() (Entry, float64, bool) {
	n := c.queue.Front()
	if n == nil {
		return Entry{}, 0, false
	}
	return Entry{Key: n.Value.key, Size: n.Value.size, Cost: n.Value.cost}, 0, true
}

// Victim returns the key next in line for eviction, for tests.
func (c *LRU) Victim() (string, bool) {
	if n := c.queue.Front(); n != nil {
		return n.Value.key, true
	}
	return "", false
}

// Keys returns resident keys from least to most recently used, for tests.
func (c *LRU) Keys() []string {
	out := make([]string, 0, len(c.items))
	for n := c.queue.Front(); n != nil; n = n.Next() {
		out = append(out, n.Value.key)
	}
	return out
}

// makeRoomExcept evicts least-recently-used items until need bytes fit,
// never evicting skip (used when growing an existing entry).
func (c *LRU) makeRoomExcept(need int64, skip string) bool {
	for c.used+need > c.capacity {
		n := c.queue.Front()
		if n == nil {
			return false
		}
		if n.Value.key == skip {
			// skip is the only remaining entry; it cannot make
			// room for itself.
			if c.queue.Len() == 1 {
				return false
			}
			n = n.Next()
			if n == nil {
				return false
			}
		}
		c.evictNode(n)
	}
	return true
}

func (c *LRU) evictNode(n *ilist.Node[*lruEntry]) {
	e := n.Value
	c.removeNode(n)
	c.stats.Evictions++
	c.stats.EvictedBytes += uint64(e.size)
	if c.onEvict != nil {
		c.onEvict(Entry{Key: e.key, Size: e.size, Cost: e.cost})
	}
}

func (c *LRU) removeNode(n *ilist.Node[*lruEntry]) {
	c.queue.Remove(n)
	delete(c.items, n.Value.key)
	c.used -= n.Value.size
}
