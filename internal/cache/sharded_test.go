package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestShardedValidation(t *testing.T) {
	mk := func(c int64) Policy { return NewLRU(c) }
	for _, n := range []int{0, 3, 8192} {
		if _, err := NewSharded(100, n, mk); err == nil {
			t.Fatalf("shards=%d should error", n)
		}
	}
}

func TestShardedBasic(t *testing.T) {
	s, err := NewSharded(1000, 4, func(c int64) Policy { return NewLRU(c) })
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "sharded-lru" {
		t.Fatalf("Name = %s", s.Name())
	}
	if s.Capacity() != 1000 {
		t.Fatalf("Capacity = %d (shares must sum)", s.Capacity())
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		if !s.Set(key, 4, 1) {
			t.Fatalf("Set %s failed", key)
		}
	}
	if s.Len() != 50 || s.Used() != 200 {
		t.Fatalf("Len=%d Used=%d", s.Len(), s.Used())
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		if !s.Get(key) || !s.Contains(key) {
			t.Fatalf("lost key %s", key)
		}
		if e, ok := s.Peek(key); !ok || e.Size != 4 {
			t.Fatalf("Peek %s = %+v", key, e)
		}
	}
	if !s.Delete("k0") || s.Delete("k0") {
		t.Fatal("Delete semantics broken")
	}
	st := s.Stats()
	if st.Hits != 50 || st.Sets != 50 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShardedEvictionCallback(t *testing.T) {
	s, err := NewSharded(64, 2, func(c int64) Policy { return NewLRU(c) })
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var evictions int
	s.SetEvictFunc(func(Entry) {
		mu.Lock()
		evictions++
		mu.Unlock()
	})
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("k%d", i), 8, 1)
	}
	mu.Lock()
	defer mu.Unlock()
	if evictions == 0 {
		t.Fatal("expected evictions")
	}
}

// TestShardedConcurrent validates the locking under -race.
func TestShardedConcurrent(t *testing.T) {
	s, err := NewSharded(4096, 8, func(c int64) Policy { return NewCampLike(c) })
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 5000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(300))
				switch rng.Intn(4) {
				case 0:
					s.Set(key, int64(rng.Intn(30)+1), int64(rng.Intn(100)))
				case 1:
					s.Delete(key)
				default:
					s.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Used() > s.Capacity() {
		t.Fatal("over capacity")
	}
}

// NewCampLike avoids an import cycle: internal/cache cannot import
// internal/core, so concurrency is exercised with LRU here; the public camp
// package covers CAMP under concurrency.
func NewCampLike(c int64) Policy { return NewLRU(c) }
