package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestTwoQBasic(t *testing.T) {
	q := NewTwoQ(100)
	if q.Get("x") {
		t.Fatal("empty cache should miss")
	}
	if !q.Set("x", 10, 1) {
		t.Fatal("Set failed")
	}
	if !q.Get("x") || !q.Contains("x") {
		t.Fatal("expected hit")
	}
	if q.Name() != "2q" || q.Used() != 10 || q.Len() != 1 {
		t.Fatal("accessors broken")
	}
	if !q.Delete("x") || q.Delete("x") {
		t.Fatal("Delete semantics broken")
	}
}

// TestTwoQGhostPromotion: an item evicted from probation and re-requested
// is promoted to the protected main queue.
func TestTwoQGhostPromotion(t *testing.T) {
	q := NewTwoQ(100) // kin=25, kout=50
	q.Set("victim", 10, 1)
	// Push victim out of A1in with more probation traffic.
	for i := 0; i < 12; i++ {
		q.Set(fmt.Sprintf("fill%d", i), 10, 1)
	}
	if q.Contains("victim") {
		t.Fatal("victim should have left probation")
	}
	// Re-insert: this is a ghost hit, landing in Am.
	q.Set("victim", 10, 1)
	if !q.Contains("victim") {
		t.Fatal("ghost promotion failed")
	}
	// Am members survive probation churn.
	for i := 0; i < 12; i++ {
		q.Set(fmt.Sprintf("fill2-%d", i), 10, 1)
	}
	if !q.Contains("victim") {
		t.Fatal("protected item should survive probation churn")
	}
}

// TestTwoQScanResistance: one-pass scans never enter the main queue, so a
// hot set in Am survives them. Am membership requires a ghost promotion:
// insert, get demoted under pressure, then be re-requested.
func TestTwoQScanResistance(t *testing.T) {
	q := NewTwoQ(400) // kin=100, kout=200
	for _, k := range []string{"h1", "h2", "h3"} {
		q.Set(k, 10, 1)
	}
	// Enough probation pressure to demote h1..h3 into the ghost queue.
	for i := 0; i < 40; i++ {
		q.Set(fmt.Sprintf("x%d", i), 10, 1)
	}
	for _, k := range []string{"h1", "h2", "h3"} {
		if q.Contains(k) {
			t.Fatalf("%s should have been demoted to the ghost queue", k)
		}
		q.Set(k, 10, 1) // ghost hit -> Am
		if !q.Contains(k) {
			t.Fatalf("%s should have been promoted", k)
		}
	}
	// A long one-pass scan churns only the probation queue.
	for i := 0; i < 200; i++ {
		q.Set(fmt.Sprintf("scan%d", i), 10, 1)
	}
	for _, k := range []string{"h1", "h2", "h3"} {
		if !q.Contains(k) {
			t.Fatalf("hot key %s lost to a scan", k)
		}
	}
}

func TestTwoQRejectAndUpdate(t *testing.T) {
	q := NewTwoQ(50)
	if q.Set("big", 60, 1) {
		t.Fatal("too-large item must be rejected")
	}
	q.Set("a", 10, 1)
	if !q.Set("a", 20, 2) {
		t.Fatal("update failed")
	}
	e, _ := q.Peek("a")
	if e.Size != 20 || e.Cost != 2 {
		t.Fatalf("Peek = %+v", e)
	}
	if q.Stats().Updates != 1 {
		t.Fatalf("Updates = %d", q.Stats().Updates)
	}
}

func TestTwoQEvictOne(t *testing.T) {
	q := NewTwoQ(30)
	q.Set("a", 10, 1)
	if _, ok := q.EvictOne(); !ok {
		t.Fatal("EvictOne should evict")
	}
	if q.Len() != 0 {
		t.Fatal("cache should be empty")
	}
	if _, ok := q.EvictOne(); ok {
		t.Fatal("EvictOne on empty cache should fail")
	}
}

func TestTwoQAccounting(t *testing.T) {
	q := NewTwoQ(500)
	rng := rand.New(rand.NewSource(5))
	var evictedBytes uint64
	q.SetEvictFunc(func(e Entry) { evictedBytes += uint64(e.Size) })
	for op := 0; op < 40000; op++ {
		key := fmt.Sprintf("k%d", rng.Intn(80))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			q.Get(key)
		case 6, 7, 8:
			q.Set(key, int64(rng.Intn(60)+1), int64(rng.Intn(100)))
		default:
			q.Delete(key)
		}
		if q.Used() > q.Capacity() {
			t.Fatalf("op %d: over capacity", op)
		}
	}
	if q.Stats().EvictedBytes != evictedBytes {
		t.Fatalf("callback saw %d evicted bytes, stats %d", evictedBytes, q.Stats().EvictedBytes)
	}
}
