package cache

import (
	"fmt"
	"testing"
)

func TestPooledConstructionErrors(t *testing.T) {
	tests := []struct {
		name  string
		specs []PoolSpec
	}{
		{name: "no pools", specs: nil},
		{name: "zero weight", specs: []PoolSpec{{Name: "a", Weight: 0}}},
		{name: "negative weight", specs: []PoolSpec{{Name: "a", Weight: -1}}},
		{name: "empty range", specs: []PoolSpec{{Name: "a", MinCost: 10, MaxCost: 10, Weight: 1}}},
		{name: "inverted range", specs: []PoolSpec{{Name: "a", MinCost: 10, MaxCost: 5, Weight: 1}}},
		{
			name: "overlap",
			specs: []PoolSpec{
				{Name: "a", MinCost: 0, MaxCost: 100, Weight: 1},
				{Name: "b", MinCost: 50, MaxCost: 200, Weight: 1},
			},
		},
		{
			name: "unbounded first overlaps",
			specs: []PoolSpec{
				{Name: "a", MinCost: 0, MaxCost: 0, Weight: 1},
				{Name: "b", MinCost: 50, MaxCost: 200, Weight: 1},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewPooled(1000, tt.specs); err == nil {
				t.Fatal("expected construction error")
			}
		})
	}
}

func TestPooledCapacitySplit(t *testing.T) {
	p, err := NewPooledByCostValues(10101, []int64{1, 100, 10000}, false)
	if err != nil {
		t.Fatal(err)
	}
	pools := p.Pools()
	if len(pools) != 3 {
		t.Fatalf("got %d pools, want 3", len(pools))
	}
	var total int64
	for _, pi := range pools {
		total += pi.Capacity
	}
	if total != 10101 {
		t.Fatalf("pool capacities sum to %d, want full capacity 10101", total)
	}
	// Cost-proportional: the expensive pool gets ~99% of memory (§3.1).
	if frac := float64(pools[2].Capacity) / 10101; frac < 0.98 {
		t.Fatalf("expensive pool has %.2f of memory, want ~0.99", frac)
	}
}

func TestPooledUniformSplit(t *testing.T) {
	p, err := NewPooledByCostValues(3000, []int64{1, 100, 10000}, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, pi := range p.Pools() {
		if pi.Capacity != 1000 {
			t.Fatalf("pool %d capacity = %d, want 1000", i, pi.Capacity)
		}
	}
}

func TestPooledRouting(t *testing.T) {
	p, err := NewPooledByCostValues(3000, []int64{1, 100, 10000}, true)
	if err != nil {
		t.Fatal(err)
	}
	type route struct {
		cost int64
		pool int
	}
	routes := []route{
		{cost: 0, pool: 0},   // below all -> cheapest
		{cost: 1, pool: 0},   // exact
		{cost: 50, pool: 0},  // gap -> pool below
		{cost: 100, pool: 1}, // exact
		{cost: 9999, pool: 1},
		{cost: 10000, pool: 2},
		{cost: 1 << 40, pool: 2}, // unbounded top
	}
	for i, r := range routes {
		key := fmt.Sprintf("k%d", i)
		if !p.Set(key, 10, r.cost) {
			t.Fatalf("Set(%s cost=%d) failed", key, r.cost)
		}
	}
	pools := p.Pools()
	wantItems := []int{3, 2, 2}
	for i, w := range wantItems {
		if pools[i].Items != w {
			t.Fatalf("pool %d has %d items, want %d", i, pools[i].Items, w)
		}
	}
}

// TestPooledIsolation shows the defining property of pooling: churn in the
// cheap pool cannot evict expensive items (and vice versa).
func TestPooledIsolation(t *testing.T) {
	p, err := NewPooledByCostValues(2000, []int64{1, 10000}, true)
	if err != nil {
		t.Fatal(err)
	}
	p.Set("gold", 500, 10000)
	// Flood the cheap pool far beyond its 1000-byte share.
	for i := 0; i < 100; i++ {
		p.Set(fmt.Sprintf("cheap%d", i), 100, 1)
	}
	if !p.Contains("gold") {
		t.Fatal("cheap churn must not evict items in the expensive pool")
	}
	// The cheap pool holds at most its own share.
	if used := p.Pools()[0].Used; used > 1000 {
		t.Fatalf("cheap pool used %d bytes, exceeding its 1000-byte share", used)
	}
}

// TestPooledCannotRebalance shows the §1 limitation CAMP removes: when the
// workload shifts entirely to cheap items, the expensive pool's memory is
// stranded.
func TestPooledCannotRebalance(t *testing.T) {
	p, err := NewPooledByCostValues(2000, []int64{1, 10000}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Workload now consists only of cheap items.
	for i := 0; i < 50; i++ {
		p.Set(fmt.Sprintf("c%d", i), 100, 1)
	}
	if p.Used() > 1000 {
		t.Fatalf("pooled policy used %d bytes; the expensive pool's 1000 bytes should be stranded", p.Used())
	}
	if p.Len() != 10 { // 1000 bytes / 100 each
		t.Fatalf("Len = %d, want 10", p.Len())
	}
}

func TestPooledCostChangeMovesPools(t *testing.T) {
	p, err := NewPooledByCostValues(2000, []int64{1, 10000}, true)
	if err != nil {
		t.Fatal(err)
	}
	p.Set("k", 100, 1)
	if p.Pools()[0].Items != 1 {
		t.Fatal("k should start in the cheap pool")
	}
	p.Set("k", 100, 10000)
	pools := p.Pools()
	if pools[0].Items != 0 || pools[1].Items != 1 {
		t.Fatalf("k should have moved pools: %+v", pools)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
}

func TestPooledGetDeletePeek(t *testing.T) {
	p, err := NewPooledByRanges(3000, []int64{1, 100, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if p.Get("nope") {
		t.Fatal("miss expected")
	}
	p.Set("a", 10, 500)
	if !p.Get("a") {
		t.Fatal("hit expected")
	}
	e, ok := p.Peek("a")
	if !ok || e.Cost != 500 || e.Size != 10 {
		t.Fatalf("Peek = %+v", e)
	}
	if !p.Delete("a") || p.Delete("a") {
		t.Fatal("Delete semantics broken")
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Sets != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPooledEvictionCallbackAndStats(t *testing.T) {
	p, err := NewPooledByCostValues(200, []int64{1, 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	var evicted []string
	p.SetEvictFunc(func(e Entry) { evicted = append(evicted, e.Key) })
	p.Set("a", 100, 1) // fills the cheap pool (100 bytes)
	p.Set("b", 100, 1) // evicts a
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted %v, want [a]", evicted)
	}
	if p.Stats().Evictions != 1 || p.Stats().EvictedBytes != 100 {
		t.Fatalf("stats = %+v", p.Stats())
	}
	if p.Contains("a") {
		t.Fatal("a must be gone from the outer index too")
	}
}

func TestPooledRejectTooLargeForPool(t *testing.T) {
	p, err := NewPooledByCostValues(200, []int64{1, 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	// 150 bytes exceeds the cheap pool's 100-byte share even though the
	// total capacity is 200.
	if p.Set("big", 150, 1) {
		t.Fatal("item larger than its pool must be rejected")
	}
	if p.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", p.Stats().Rejected)
	}
}

func TestPooledByRangesWeights(t *testing.T) {
	p, err := NewPooledByRanges(10101, []int64{1, 100, 10000})
	if err != nil {
		t.Fatal(err)
	}
	pools := p.Pools()
	// Weights 1 : 100 : 10000 over capacity 10101.
	if pools[0].Capacity != 1 || pools[1].Capacity != 100 {
		t.Fatalf("range pool capacities = %d,%d want 1,100", pools[0].Capacity, pools[1].Capacity)
	}
	if pools[2].Capacity != 10000 {
		t.Fatalf("top pool capacity = %d, want 10000", pools[2].Capacity)
	}
}
