package cache

// TwoQ is the full version of Johnson and Shasha's 2Q (VLDB'94), another
// recency/frequency-balancing policy from §5's related work. New items
// enter a FIFO probation queue (A1in); items evicted from probation are
// remembered in a ghost queue (A1out); a reference while in the ghost queue
// promotes the item to the protected LRU main queue (Am). Like LRU and ARC
// it ignores cost.
type TwoQ struct {
	capacity int64
	kin      int64 // byte budget for A1in (default capacity/4)
	kout     int64 // byte budget for A1out ghosts (default capacity/2)

	a1in, am, a1out *arcList // reuse the byte-counting list helper
	entries         map[string]*twoqEntryRef

	stats   Stats
	onEvict EvictFunc
}

type twoqWhere int

const (
	inA1in twoqWhere = iota + 1
	inAm
	inA1out
)

type twoqEntryRef struct {
	entry *arcEntry
	where twoqWhere
}

var _ Policy = (*TwoQ)(nil)
var _ Evicter = (*TwoQ)(nil)

// NewTwoQ returns a 2Q policy with the standard 25%/50% queue tuning.
func NewTwoQ(capacity int64) *TwoQ {
	if capacity < 0 {
		capacity = 0
	}
	return &TwoQ{
		capacity: capacity,
		kin:      capacity / 4,
		kout:     capacity / 2,
		a1in:     newArcList(),
		am:       newArcList(),
		a1out:    newArcList(),
		entries:  make(map[string]*twoqEntryRef),
	}
}

// Name implements Policy.
func (q *TwoQ) Name() string { return "2q" }

// Get implements Policy.
func (q *TwoQ) Get(key string) bool {
	r, ok := q.entries[key]
	if !ok || r.where == inA1out {
		q.stats.Misses++
		return false
	}
	switch r.where {
	case inAm:
		q.am.list.MoveToBack(r.entry.node)
	case inA1in:
		// 2Q leaves probation items in place on a hit; promotion
		// happens only via the ghost queue.
	}
	q.stats.Hits++
	return true
}

// Set implements Policy.
func (q *TwoQ) Set(key string, size, cost int64) bool {
	if size < 0 {
		size = 0
	}
	if size > q.capacity {
		q.stats.Rejected++
		return false
	}
	if r, ok := q.entries[key]; ok {
		switch r.where {
		case inA1out:
			// Ghost hit: promote into Am.
			q.a1out.remove(r.entry)
			r.entry.size, r.entry.cost = size, cost
			if !q.makeRoom(size) {
				delete(q.entries, key)
				q.stats.Rejected++
				return false
			}
			r.where = inAm
			q.am.pushMRU(r.entry)
			q.stats.Sets++
			return true
		default:
			// Resident update.
			q.listFor(r.where).remove(r.entry)
			r.entry.size, r.entry.cost = size, cost
			if !q.makeRoom(size) {
				delete(q.entries, key)
				q.stats.Rejected++
				return false
			}
			q.listFor(r.where).pushMRU(r.entry)
			q.stats.Updates++
			return true
		}
	}
	if !q.makeRoom(size) {
		q.stats.Rejected++
		return false
	}
	e := &arcEntry{key: key, size: size, cost: cost}
	q.entries[key] = &twoqEntryRef{entry: e, where: inA1in}
	q.a1in.pushMRU(e)
	q.stats.Sets++
	return true
}

// makeRoom evicts per the 2Q "reclaimfor" rule until size bytes fit.
func (q *TwoQ) makeRoom(size int64) bool {
	for q.a1in.bytes+q.am.bytes+size > q.capacity {
		if !q.reclaim() {
			return false
		}
	}
	return true
}

func (q *TwoQ) reclaim() bool {
	// If A1in exceeds its share, demote its FIFO head to the ghost list;
	// otherwise evict the main queue's LRU.
	if q.a1in.bytes > q.kin || q.am.list.Len() == 0 {
		head := q.a1in.lru()
		if head == nil {
			return false
		}
		q.evictResident(head, inA1in, true)
		return true
	}
	lru := q.am.lru()
	if lru == nil {
		return false
	}
	q.evictResident(lru, inAm, false)
	return true
}

// evictResident removes a resident entry; A1in victims are remembered in
// the ghost queue.
func (q *TwoQ) evictResident(e *arcEntry, from twoqWhere, ghost bool) {
	q.listFor(from).remove(e)
	q.stats.Evictions++
	q.stats.EvictedBytes += uint64(e.size)
	ev := Entry{Key: e.key, Size: e.size, Cost: e.cost}
	if ghost {
		q.entries[e.key].where = inA1out
		q.a1out.pushMRU(e)
		for q.a1out.bytes > q.kout {
			old := q.a1out.lru()
			if old == nil {
				break
			}
			q.a1out.remove(old)
			delete(q.entries, old.key)
		}
	} else {
		delete(q.entries, e.key)
	}
	if q.onEvict != nil {
		q.onEvict(ev)
	}
}

// EvictOne implements Evicter.
func (q *TwoQ) EvictOne() (Entry, bool) {
	var victim *arcEntry
	if q.a1in.bytes > q.kin || q.am.list.Len() == 0 {
		victim = q.a1in.lru()
	}
	if victim == nil {
		victim = q.am.lru()
	}
	if victim == nil {
		victim = q.a1in.lru()
	}
	if victim == nil {
		return Entry{}, false
	}
	e := Entry{Key: victim.key, Size: victim.size, Cost: victim.cost}
	r := q.entries[victim.key]
	q.evictResident(victim, r.where, r.where == inA1in)
	return e, true
}

// Delete implements Policy.
func (q *TwoQ) Delete(key string) bool {
	r, ok := q.entries[key]
	if !ok {
		return false
	}
	q.listFor(r.where).remove(r.entry)
	delete(q.entries, key)
	return r.where != inA1out
}

// Contains implements Policy.
func (q *TwoQ) Contains(key string) bool {
	r, ok := q.entries[key]
	return ok && r.where != inA1out
}

// Peek implements Policy.
func (q *TwoQ) Peek(key string) (Entry, bool) {
	r, ok := q.entries[key]
	if !ok || r.where == inA1out {
		return Entry{}, false
	}
	return Entry{Key: r.entry.key, Size: r.entry.size, Cost: r.entry.cost}, true
}

// Len implements Policy (resident items only).
func (q *TwoQ) Len() int { return q.a1in.list.Len() + q.am.list.Len() }

// Used implements Policy.
func (q *TwoQ) Used() int64 { return q.a1in.bytes + q.am.bytes }

// Capacity implements Policy.
func (q *TwoQ) Capacity() int64 { return q.capacity }

// Stats implements Policy.
func (q *TwoQ) Stats() Stats { return q.stats }

// SetEvictFunc implements Policy.
func (q *TwoQ) SetEvictFunc(fn EvictFunc) { q.onEvict = fn }

func (q *TwoQ) listFor(w twoqWhere) *arcList {
	switch w {
	case inA1in:
		return q.a1in
	case inAm:
		return q.am
	default:
		return q.a1out
	}
}
