package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestLFUBasic(t *testing.T) {
	c := NewLFU(100)
	if c.Get("x") {
		t.Fatal("empty cache should miss")
	}
	c.Set("x", 10, 1)
	if !c.Get("x") {
		t.Fatal("expected hit")
	}
	if c.Name() != "lfu" || c.Used() != 10 || c.Len() != 1 || c.Capacity() != 100 {
		t.Fatal("accessors broken")
	}
	if !c.Delete("x") || c.Delete("x") {
		t.Fatal("Delete semantics broken")
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := NewLFU(30)
	c.Set("often", 10, 1)
	c.Set("rare", 10, 1)
	c.Set("mid", 10, 1)
	for i := 0; i < 5; i++ {
		c.Get("often")
	}
	c.Get("mid")
	var evicted []string
	c.SetEvictFunc(func(e Entry) { evicted = append(evicted, e.Key) })
	c.Set("new", 10, 1)
	if len(evicted) != 1 || evicted[0] != "rare" {
		t.Fatalf("evicted %v, want [rare]", evicted)
	}
	c.Set("new2", 10, 1) // new has freq 1, mid has 2 -> evict new
	if len(evicted) != 2 || evicted[1] != "new" {
		t.Fatalf("evicted %v, want [rare new]", evicted)
	}
}

func TestLFUTieBreaksByRecency(t *testing.T) {
	c := NewLFU(20)
	c.Set("a", 10, 1)
	c.Set("b", 10, 1) // both freq 1; a older
	var evicted []string
	c.SetEvictFunc(func(e Entry) { evicted = append(evicted, e.Key) })
	c.Set("c", 10, 1)
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted %v, want [a]", evicted)
	}
}

func TestLFUUpdateAndReject(t *testing.T) {
	c := NewLFU(50)
	if c.Set("big", 60, 1) {
		t.Fatal("too-large item must be rejected")
	}
	c.Set("a", 10, 1)
	if !c.Set("a", 30, 9) {
		t.Fatal("update failed")
	}
	e, _ := c.Peek("a")
	if e.Size != 30 || e.Cost != 9 {
		t.Fatalf("Peek = %+v", e)
	}
	if c.Set("a", 60, 9) {
		t.Fatal("oversized grow must fail")
	}
	if c.Contains("a") {
		t.Fatal("entry must drop on failed grow")
	}
}

func TestLFUStress(t *testing.T) {
	c := NewLFU(500)
	rng := rand.New(rand.NewSource(6))
	for op := 0; op < 30000; op++ {
		key := fmt.Sprintf("k%d", rng.Intn(70))
		if rng.Intn(2) == 0 {
			c.Get(key)
		} else {
			c.Set(key, int64(rng.Intn(50)+1), 1)
		}
		if c.Used() > c.Capacity() {
			t.Fatalf("op %d: over capacity", op)
		}
	}
}
