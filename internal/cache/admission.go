package cache

import "hash/maphash"

// Admission gates inserts into an inner policy with a frequency sketch,
// prototyping the §6 future-work direction: "admission control policies in
// conjunction with CAMP ... should enhance the performance of CAMP by not
// inserting unpopular key-value pairs that are evicted before their next
// request."
//
// Every Get (hit or miss) bumps the key's estimated frequency in a small
// count-min sketch with periodic halving (TinyLFU-style aging). A brand-new
// key is admitted only when the cache has free room or the key has been
// seen at least MinFrequency times; updates to resident keys always pass
// through. One-hit wonders therefore never displace resident items.
type Admission struct {
	inner   Policy
	sketch  *freqSketch
	minHits uint8
	stats   Stats
}

var _ Policy = (*Admission)(nil)

// AdmissionOption configures NewAdmission.
type AdmissionOption func(*Admission)

// WithMinFrequency sets the admission threshold (default 2: a key must be
// requested at least twice before it may displace resident data).
func WithMinFrequency(n uint8) AdmissionOption {
	return func(a *Admission) {
		if n < 1 {
			n = 1
		}
		a.minHits = n
	}
}

// NewAdmission wraps inner with a frequency-based admission filter.
func NewAdmission(inner Policy, opts ...AdmissionOption) *Admission {
	a := &Admission{
		inner:   inner,
		sketch:  newFreqSketch(1 << 14),
		minHits: 2,
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Name implements Policy.
func (a *Admission) Name() string { return a.inner.Name() + "+admit" }

// Get implements Policy.
func (a *Admission) Get(key string) bool {
	a.sketch.bump(key)
	return a.inner.Get(key)
}

// Set implements Policy.
func (a *Admission) Set(key string, size, cost int64) bool {
	if !a.inner.Contains(key) && a.inner.Used()+size > a.inner.Capacity() {
		if a.sketch.estimate(key) < a.minHits {
			a.stats.Rejected++
			return false
		}
	}
	return a.inner.Set(key, size, cost)
}

// Delete implements Policy.
func (a *Admission) Delete(key string) bool { return a.inner.Delete(key) }

// Contains implements Policy.
func (a *Admission) Contains(key string) bool { return a.inner.Contains(key) }

// Peek implements Policy.
func (a *Admission) Peek(key string) (Entry, bool) { return a.inner.Peek(key) }

// Len implements Policy.
func (a *Admission) Len() int { return a.inner.Len() }

// Used implements Policy.
func (a *Admission) Used() int64 { return a.inner.Used() }

// Capacity implements Policy.
func (a *Admission) Capacity() int64 { return a.inner.Capacity() }

// Stats implements Policy: the inner policy's counters plus this filter's
// rejections.
func (a *Admission) Stats() Stats {
	st := a.inner.Stats()
	st.Rejected += a.stats.Rejected
	return st
}

// SetEvictFunc implements Policy.
func (a *Admission) SetEvictFunc(fn EvictFunc) { a.inner.SetEvictFunc(fn) }

// freqSketch is a 4-row count-min sketch of 4-bit counters with periodic
// halving, sized for ~width distinct hot keys.
type freqSketch struct {
	rows  [4][]uint8
	seeds [4]maphash.Seed
	mask  uint64
	ops   int
	reset int
}

func newFreqSketch(width int) *freqSketch {
	if width&(width-1) != 0 {
		panic("cache: sketch width must be a power of two")
	}
	s := &freqSketch{mask: uint64(width - 1), reset: width * 8}
	for i := range s.rows {
		s.rows[i] = make([]uint8, width)
		s.seeds[i] = maphash.MakeSeed()
	}
	return s
}

func (s *freqSketch) bump(key string) {
	for i := range s.rows {
		idx := maphash.String(s.seeds[i], key) & s.mask
		if s.rows[i][idx] < 15 {
			s.rows[i][idx]++
		}
	}
	s.ops++
	if s.ops >= s.reset {
		s.halve()
		s.ops = 0
	}
}

func (s *freqSketch) estimate(key string) uint8 {
	min := uint8(255)
	for i := range s.rows {
		idx := maphash.String(s.seeds[i], key) & s.mask
		if c := s.rows[i][idx]; c < min {
			min = c
		}
	}
	return min
}

// halve ages every counter so stale popularity decays.
func (s *freqSketch) halve() {
	for i := range s.rows {
		for j := range s.rows[i] {
			s.rows[i][j] >>= 1
		}
	}
}
