package cache

import (
	"fmt"
	"testing"
)

func TestAdmissionOneHitWondersBlocked(t *testing.T) {
	inner := NewLRU(100)
	a := NewAdmission(inner)
	// Warm the cache to full with popular keys.
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("hot%d", i)
		a.Get(key) // record frequency
		a.Get(key)
		if !a.Set(key, 10, 1) {
			t.Fatalf("popular key %s should be admitted", key)
		}
	}
	if a.Used() != 100 {
		t.Fatalf("Used = %d, want 100", a.Used())
	}
	// A never-seen key must not displace residents.
	a.Get("wonder") // one access only
	if a.Set("wonder", 10, 1) {
		t.Fatal("one-hit wonder should be rejected while the cache is full")
	}
	for i := 0; i < 10; i++ {
		if !a.Contains(fmt.Sprintf("hot%d", i)) {
			t.Fatal("resident keys must be untouched by rejected inserts")
		}
	}
	if a.Stats().Rejected == 0 {
		t.Fatal("rejections must be counted")
	}
}

func TestAdmissionFrequentKeyAdmitted(t *testing.T) {
	a := NewAdmission(NewLRU(100))
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("hot%d", i)
		a.Get(key)
		a.Get(key)
		a.Set(key, 10, 1)
	}
	// The newcomer is requested repeatedly: admit on the later try.
	a.Get("rising")
	a.Get("rising")
	if !a.Set("rising", 10, 1) {
		t.Fatal("twice-seen key should pass the default threshold")
	}
	if !a.Contains("rising") {
		t.Fatal("admitted key should be resident")
	}
}

func TestAdmissionFreeSpaceAlwaysAdmits(t *testing.T) {
	a := NewAdmission(NewLRU(100))
	// Cache empty: even unseen keys are admitted.
	if !a.Set("new", 10, 1) {
		t.Fatal("inserts into free space must not be filtered")
	}
}

func TestAdmissionUpdatesPassThrough(t *testing.T) {
	a := NewAdmission(NewLRU(100))
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("hot%d", i)
		a.Get(key)
		a.Get(key)
		a.Set(key, 10, 1)
	}
	// hot0 is resident; an update (even growing) is not an admission.
	if !a.Set("hot0", 15, 2) {
		t.Fatal("updates to resident keys must bypass the filter")
	}
}

func TestAdmissionMinFrequencyOption(t *testing.T) {
	a := NewAdmission(NewLRU(20), WithMinFrequency(4))
	a.Set("a", 10, 1)
	a.Set("b", 10, 1) // full
	a.Get("c")
	a.Get("c")
	a.Get("c") // 3 accesses < 4
	if a.Set("c", 10, 1) {
		t.Fatal("threshold 4 should reject a thrice-seen key")
	}
	a.Get("c")
	if !a.Set("c", 10, 1) {
		t.Fatal("fourth access should clear the threshold")
	}
	if a.Name() != "lru+admit" {
		t.Fatalf("Name = %s", a.Name())
	}
}

func TestFreqSketchAging(t *testing.T) {
	s := newFreqSketch(64)
	for i := 0; i < 10; i++ {
		s.bump("k")
	}
	if s.estimate("k") < 8 {
		t.Fatalf("estimate = %d, want >= 8", s.estimate("k"))
	}
	before := s.estimate("k")
	s.halve()
	after := s.estimate("k")
	if after != before/2 {
		t.Fatalf("halve: %d -> %d", before, after)
	}
	// Unknown keys estimate low (may collide, so allow small values).
	if s.estimate("never-seen-key-xyz") > 4 {
		t.Fatalf("unseen key estimate too high: %d", s.estimate("never-seen-key-xyz"))
	}
}

func TestFreqSketchWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two width should panic")
		}
	}()
	newFreqSketch(100)
}

// TestAdmissionImprovesScanWorkload shows the §6 hypothesis: with a scan-
// heavy workload, admission control keeps the hot set resident and lifts
// the hit rate.
func TestAdmissionImprovesScanWorkload(t *testing.T) {
	run := func(p Policy) float64 {
		var hits, total int
		for round := 0; round < 60; round++ {
			// Hot set.
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("hot%d", i)
				total++
				if p.Get(key) {
					hits++
				} else {
					p.Set(key, 10, 1)
				}
			}
			// One-pass scan of unique keys.
			for i := 0; i < 30; i++ {
				key := fmt.Sprintf("scan-%d-%d", round, i)
				total++
				if p.Get(key) {
					hits++
				} else {
					p.Set(key, 10, 1)
				}
			}
		}
		return float64(hits) / float64(total)
	}
	plain := run(NewLRU(150))
	admitted := run(NewAdmission(NewLRU(150)))
	if admitted <= plain {
		t.Fatalf("admission hit rate %.3f should beat plain %.3f on scans", admitted, plain)
	}
}
