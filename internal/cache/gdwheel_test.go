package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestGDWheelBasic(t *testing.T) {
	g := NewGDWheel(100)
	if g.Get("x") {
		t.Fatal("empty cache should miss")
	}
	g.Set("x", 10, 5)
	if !g.Get("x") || !g.Contains("x") {
		t.Fatal("expected hit")
	}
	e, ok := g.Peek("x")
	if !ok || e.Size != 10 || e.Cost != 5 {
		t.Fatalf("Peek = %+v", e)
	}
	if g.Name() != "gdwheel" || g.Used() != 10 || g.Len() != 1 {
		t.Fatal("accessors broken")
	}
	if !g.Delete("x") || g.Delete("x") {
		t.Fatal("Delete semantics broken")
	}
}

// TestGDWheelCostAware: like GDS/CAMP, the wheel keeps high cost-to-size
// items over cheap ones.
func TestGDWheelCostAware(t *testing.T) {
	g := NewGDWheel(30)
	var evicted []string
	g.SetEvictFunc(func(e Entry) { evicted = append(evicted, e.Key) })
	g.Set("cheap", 10, 1)
	g.Set("dear", 10, 5000)
	g.Set("mid", 10, 100)
	g.Set("new", 10, 100)
	if len(evicted) != 1 || evicted[0] != "cheap" {
		t.Fatalf("evicted %v, want [cheap]", evicted)
	}
	if !g.Contains("dear") {
		t.Fatal("expensive item must survive")
	}
}

// TestGDWheelAging: the clock advances with evictions, so stale expensive
// items are eventually displaced (no permanent cache pollution).
func TestGDWheelAging(t *testing.T) {
	g := NewGDWheel(10)
	g.Set("gold", 1, 3000)
	for i := 0; i < 200000 && g.Contains("gold"); i++ {
		g.Set(fmt.Sprintf("c%d", i), 1, 1)
	}
	if g.Contains("gold") {
		t.Fatal("aged expensive item should eventually fall out of the wheel")
	}
}

// TestGDWheelMigration pushes priorities beyond one wheel level so outer
// slots must migrate inward.
func TestGDWheelMigration(t *testing.T) {
	g := NewGDWheel(100)
	// Offsets spanning level 0 (d < 256), level 1 (d < 65536) and level 2.
	g.Set("l0", 10, 100)      // d = 100
	g.Set("l1", 10, 5000)     // d = 5000
	g.Set("l2", 10, 10000000) // d clamps into the outer wheel
	g.Set("l1b", 10, 60000)   // d = 60000
	var evicted []string
	g.SetEvictFunc(func(e Entry) { evicted = append(evicted, e.Key) })
	// Evict everything; order should be non-decreasing in ratio.
	for {
		if _, ok := g.EvictOne(); !ok {
			break
		}
	}
	want := []string{"l0", "l1", "l1b", "l2"}
	if len(evicted) != len(want) {
		t.Fatalf("evicted %v", evicted)
	}
	for i := range want {
		if evicted[i] != want[i] {
			t.Fatalf("eviction order %v, want %v", evicted, want)
		}
	}
	if g.Len() != 0 || g.Used() != 0 {
		t.Fatal("wheel should be empty")
	}
}

func TestGDWheelClockMonotone(t *testing.T) {
	g := NewGDWheel(200)
	rng := rand.New(rand.NewSource(12))
	costs := []int64{1, 100, 10000}
	prev := g.Clock()
	for op := 0; op < 30000; op++ {
		key := fmt.Sprintf("k%d", rng.Intn(60))
		if rng.Intn(2) == 0 {
			g.Get(key)
		} else {
			g.Set(key, int64(rng.Intn(20)+1), costs[rng.Intn(3)])
		}
		if c := g.Clock(); c < prev {
			t.Fatalf("op %d: clock went backwards %d -> %d", op, prev, c)
		} else {
			prev = c
		}
		if g.Used() > g.Capacity() {
			t.Fatalf("op %d: over capacity", op)
		}
	}
}

// TestGDWheelTracksGDSQuality compares GD-Wheel's cost-miss ratio against
// GDS-style behavior via CAMP: they should be in the same ballpark on a
// skewed trace (the wheel is an approximation, not a different policy).
func TestGDWheelTracksGDSQuality(t *testing.T) {
	run := func(p Policy) float64 {
		rng := rand.New(rand.NewSource(33))
		costs := []int64{1, 100, 10000}
		type meta struct {
			size, cost int64
		}
		metas := map[string]meta{}
		seen := map[string]bool{}
		var missCost, totalCost int64
		for i := 0; i < 60000; i++ {
			var key string
			if rng.Float64() < 0.7 {
				key = fmt.Sprintf("h%d", rng.Intn(60))
			} else {
				key = fmt.Sprintf("c%d", rng.Intn(240))
			}
			m, ok := metas[key]
			if !ok {
				m = meta{size: int64(rng.Intn(90) + 10), cost: costs[rng.Intn(3)]}
				metas[key] = m
			}
			hit := p.Get(key)
			if !hit {
				p.Set(key, m.size, m.cost)
			}
			if seen[key] {
				totalCost += m.cost
				if !hit {
					missCost += m.cost
				}
			}
			seen[key] = true
		}
		return float64(missCost) / float64(totalCost)
	}
	wheel := run(NewGDWheel(4000))
	lru := run(NewLRU(4000))
	if wheel >= lru {
		t.Fatalf("GD-Wheel cost-miss %.4f should beat LRU %.4f", wheel, lru)
	}
}

func TestGDWheelRejectTooLarge(t *testing.T) {
	g := NewGDWheel(10)
	if g.Set("big", 11, 1) {
		t.Fatal("too-large item must be rejected")
	}
	if g.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d", g.Stats().Rejected)
	}
}
