// Package cache defines the eviction-policy contract shared by every
// replacement algorithm in this repository, along with the baseline policies
// the CAMP paper evaluates against (LRU and Pooled LRU, §3) and the
// related-work policies discussed in §5 (ARC, 2Q, LFU, GD-Wheel).
//
// Policies manage metadata only — key, size and cost — against a fixed byte
// capacity. Storing actual values is layered on top (see the root camp
// package), which keeps the policies directly usable by the trace-driven
// simulator without materializing values.
package cache

import "errors"

// Entry describes a cached key-value pair's metadata.
type Entry struct {
	// Key identifies the key-value pair.
	Key string
	// Size is the pair's footprint in bytes.
	Size int64
	// Cost is the price paid to recompute the pair on a miss (e.g. the
	// query or computation time), in arbitrary non-negative units.
	Cost int64
}

// EvictFunc observes evictions. It must not call back into the policy.
type EvictFunc func(Entry)

// ErrTooLarge is reported (via Set returning false) when a single item
// exceeds the policy's capacity; exposed for tests and diagnostics.
var ErrTooLarge = errors.New("cache: item larger than capacity")

// Policy is an online eviction policy managing a fixed budget of bytes.
//
// Implementations are not safe for concurrent use; wrap them in a Sharded or
// guard them with a mutex (the root camp package does this).
type Policy interface {
	// Name returns a short identifier such as "lru" or "camp".
	Name() string

	// Get looks up key. A hit refreshes the key's recency/priority state
	// and returns true; a miss returns false. Both outcomes are counted
	// in Stats.
	Get(key string) bool

	// Set inserts key with the given size and cost, evicting items as
	// needed, or updates the existing entry in place (refreshing its
	// priority). It returns false when the item cannot be admitted
	// (size exceeds capacity or the policy's admission rules reject it).
	Set(key string, size, cost int64) bool

	// Delete removes key, reporting whether it was resident. Deletions
	// do not invoke the eviction callback.
	Delete(key string) bool

	// Contains reports residency without updating any policy state.
	Contains(key string) bool

	// Peek returns the resident entry's metadata without side effects.
	Peek(key string) (Entry, bool)

	// Len returns the number of resident items.
	Len() int

	// Used returns the total bytes occupied by resident items.
	Used() int64

	// Capacity returns the byte budget.
	Capacity() int64

	// Stats returns operation counters accumulated so far.
	Stats() Stats

	// SetEvictFunc installs a callback invoked for every eviction
	// (not for explicit Delete calls). Passing nil removes it.
	SetEvictFunc(fn EvictFunc)
}

// Stats counts policy operations. Cost accounting of misses is the
// simulator's job (it knows about cold requests); policies count only their
// own mechanics.
type Stats struct {
	// Hits is the number of Get calls that found the key.
	Hits uint64
	// Misses is the number of Get calls that did not find the key.
	Misses uint64
	// Sets is the number of Set calls that inserted a new key.
	Sets uint64
	// Updates is the number of Set calls that refreshed an existing key.
	Updates uint64
	// Evictions is the number of items removed to make room.
	Evictions uint64
	// EvictedBytes is the total size of evicted items.
	EvictedBytes uint64
	// Rejected is the number of Set calls refused admission.
	Rejected uint64
}

// Evicter is implemented by policies that can evict a single victim on
// demand, letting an external memory manager (slab or buddy allocator, §5)
// drive evictions when placement fails.
type Evicter interface {
	// EvictOne removes the policy's preferred victim, firing the
	// eviction callback, and returns it; ok is false when empty.
	EvictOne() (Entry, bool)
}

// HeapVisitor is implemented by policies whose internal priority structure
// records visited heap nodes (CAMP and GDS); it powers Figure 4.
type HeapVisitor interface {
	// HeapVisits returns the cumulative number of heap nodes visited.
	HeapVisits() uint64
	// ResetHeapVisits zeroes the counter.
	ResetHeapVisits()
}

// EvictionOrdered is implemented by policies that can enumerate resident
// entries in the order the policy would evict them — the next victim first —
// without mutating any state. Snapshots written in this order rebuild the
// policy's internal queues in their original order on a warm start, where a
// map-order snapshot scrambled them. For the priority policies (CAMP, GDS)
// order alone makes the restored schedule exact only while the live offsets
// are uniform (no evictions had raised L); restoring the offsets themselves
// is PriorityOrdered's job, and makes mid-churn snapshots exact too.
type EvictionOrdered interface {
	// VisitEvictionOrder calls visit for each resident entry in eviction
	// order, stopping early if visit returns false.
	VisitEvictionOrder(visit func(Entry) bool)
}

// PriorityOrdered extends EvictionOrdered for policies whose eviction
// schedule depends on per-entry priority state beyond recency (CAMP and
// GDS): visitation additionally exposes each entry's priority offset — its
// priority H minus the policy's global offset L — and its priority class —
// CAMP's rounded integer cost-to-size ratio, i.e. the queue the entry lives
// in — both encoded as opaque uint64s the same policy knows how to decode.
// SetWithPriority re-inserts an entry pinned to exactly that (offset,
// class). A snapshot that records both and is replayed in visitation order
// reproduces the live cross-queue eviction schedule exactly, even
// mid-churn, where re-deriving priorities from costs only restores
// within-queue order.
//
// The class must be pinned, not re-derived, because CAMP's ratio
// integerization is adaptive (rounding.Converter learns its scale from the
// sizes it has seen): a fresh policy re-deriving classes mid-restore would
// assign entries to different queues than the live cache did. Offsets are
// relative to L so they survive the restore into a fresh policy (where L
// restarts at zero) and stay meaningful after later churn raises it. An
// offset that would violate the policy's invariants (decoded from a corrupt
// or foreign snapshot) is clamped to the nearest valid priority rather than
// trusted.
type PriorityOrdered interface {
	EvictionOrdered
	// VisitEvictionPriority is VisitEvictionOrder with each entry's
	// encoded priority offset and class.
	VisitEvictionPriority(visit func(e Entry, prio, class uint64) bool)
	// SetWithPriority inserts key like Set but pins its priority to
	// L + the decoded offset, in the given class, instead of deriving
	// both from cost alone. Callers replaying a snapshot must insert in
	// visitation order.
	SetWithPriority(key string, size, cost int64, prio, class uint64) bool
}

// PriorityScaled is implemented by priority policies whose priority
// derivation carries adaptive scalar state beyond the per-entry offsets:
// CAMP's ratio integerizer learns its scale (the largest size ever seen)
// from the whole workload, including entries long since evicted. Snapshots
// persist the scale so a restored policy buckets future inserts exactly as
// the live one would have, instead of re-learning the scale from the
// resident working set alone.
type PriorityScaled interface {
	// PriorityScale returns the opaque adaptive scale word.
	PriorityScale() uint64
	// RestorePriorityScale re-installs a saved scale word. It only ever
	// widens the scale (the live scale is monotonic), so replaying it is
	// idempotent and safe in any order relative to the entries.
	RestorePriorityScale(scale uint64)
}

// VictimPeeker is implemented by policies that can name their next eviction
// victim — and how much that victim is still worth — without mutating any
// state. The urgency is the victim's priority offset above the policy's
// global floor (H − L for CAMP and GDS: the marginal cost-per-byte value the
// policy would give up by evicting it; always 0 for LRU, which values all
// victims equally). A multi-tenant arbiter compares urgencies across tenant
// policies and takes memory from the tenant whose next victim is worth the
// least, Memshare-style.
type VictimPeeker interface {
	// PeekVictim returns the entry EvictOne would remove next and its
	// urgency; ok is false when the policy is empty.
	PeekVictim() (e Entry, urgency float64, ok bool)
}

// QueueCounter is implemented by policies organized as multiple queues
// (CAMP); it powers Figures 5b and 8c.
type QueueCounter interface {
	// QueueCount returns the current number of non-empty queues.
	QueueCount() int
	// MaxQueueCount returns the high-water mark of non-empty queues.
	MaxQueueCount() int
}
