// Package cache defines the eviction-policy contract shared by every
// replacement algorithm in this repository, along with the baseline policies
// the CAMP paper evaluates against (LRU and Pooled LRU, §3) and the
// related-work policies discussed in §5 (ARC, 2Q, LFU, GD-Wheel).
//
// Policies manage metadata only — key, size and cost — against a fixed byte
// capacity. Storing actual values is layered on top (see the root camp
// package), which keeps the policies directly usable by the trace-driven
// simulator without materializing values.
package cache

import "errors"

// Entry describes a cached key-value pair's metadata.
type Entry struct {
	// Key identifies the key-value pair.
	Key string
	// Size is the pair's footprint in bytes.
	Size int64
	// Cost is the price paid to recompute the pair on a miss (e.g. the
	// query or computation time), in arbitrary non-negative units.
	Cost int64
}

// EvictFunc observes evictions. It must not call back into the policy.
type EvictFunc func(Entry)

// ErrTooLarge is reported (via Set returning false) when a single item
// exceeds the policy's capacity; exposed for tests and diagnostics.
var ErrTooLarge = errors.New("cache: item larger than capacity")

// Policy is an online eviction policy managing a fixed budget of bytes.
//
// Implementations are not safe for concurrent use; wrap them in a Sharded or
// guard them with a mutex (the root camp package does this).
type Policy interface {
	// Name returns a short identifier such as "lru" or "camp".
	Name() string

	// Get looks up key. A hit refreshes the key's recency/priority state
	// and returns true; a miss returns false. Both outcomes are counted
	// in Stats.
	Get(key string) bool

	// Set inserts key with the given size and cost, evicting items as
	// needed, or updates the existing entry in place (refreshing its
	// priority). It returns false when the item cannot be admitted
	// (size exceeds capacity or the policy's admission rules reject it).
	Set(key string, size, cost int64) bool

	// Delete removes key, reporting whether it was resident. Deletions
	// do not invoke the eviction callback.
	Delete(key string) bool

	// Contains reports residency without updating any policy state.
	Contains(key string) bool

	// Peek returns the resident entry's metadata without side effects.
	Peek(key string) (Entry, bool)

	// Len returns the number of resident items.
	Len() int

	// Used returns the total bytes occupied by resident items.
	Used() int64

	// Capacity returns the byte budget.
	Capacity() int64

	// Stats returns operation counters accumulated so far.
	Stats() Stats

	// SetEvictFunc installs a callback invoked for every eviction
	// (not for explicit Delete calls). Passing nil removes it.
	SetEvictFunc(fn EvictFunc)
}

// Stats counts policy operations. Cost accounting of misses is the
// simulator's job (it knows about cold requests); policies count only their
// own mechanics.
type Stats struct {
	// Hits is the number of Get calls that found the key.
	Hits uint64
	// Misses is the number of Get calls that did not find the key.
	Misses uint64
	// Sets is the number of Set calls that inserted a new key.
	Sets uint64
	// Updates is the number of Set calls that refreshed an existing key.
	Updates uint64
	// Evictions is the number of items removed to make room.
	Evictions uint64
	// EvictedBytes is the total size of evicted items.
	EvictedBytes uint64
	// Rejected is the number of Set calls refused admission.
	Rejected uint64
}

// Evicter is implemented by policies that can evict a single victim on
// demand, letting an external memory manager (slab or buddy allocator, §5)
// drive evictions when placement fails.
type Evicter interface {
	// EvictOne removes the policy's preferred victim, firing the
	// eviction callback, and returns it; ok is false when empty.
	EvictOne() (Entry, bool)
}

// HeapVisitor is implemented by policies whose internal priority structure
// records visited heap nodes (CAMP and GDS); it powers Figure 4.
type HeapVisitor interface {
	// HeapVisits returns the cumulative number of heap nodes visited.
	HeapVisits() uint64
	// ResetHeapVisits zeroes the counter.
	ResetHeapVisits()
}

// EvictionOrdered is implemented by policies that can enumerate resident
// entries in the order the policy would evict them — the next victim first —
// without mutating any state. Snapshots written in this order rebuild the
// policy's internal queues in their original order on a warm start, where a
// map-order snapshot scrambled them. For the priority policies (CAMP, GDS)
// the restored schedule is exact when the live offsets are uniform (no
// evictions had raised L); after churn, within-queue recency is still exact
// but cross-queue offsets collapse to the re-derived priorities — a far
// smaller error than random order, not zero. Journal replay remains exact.
type EvictionOrdered interface {
	// VisitEvictionOrder calls visit for each resident entry in eviction
	// order, stopping early if visit returns false.
	VisitEvictionOrder(visit func(Entry) bool)
}

// QueueCounter is implemented by policies organized as multiple queues
// (CAMP); it powers Figures 5b and 8c.
type QueueCounter interface {
	// QueueCount returns the current number of non-empty queues.
	QueueCount() int
	// MaxQueueCount returns the high-water mark of non-empty queues.
	MaxQueueCount() int
}
