package cache

import "camp/internal/nheap"

// LFU evicts the least frequently used item, breaking ties by recency. It
// rounds out the §5 baseline set: pure frequency, no recency adaptation, no
// cost or size awareness beyond byte accounting.
type LFU struct {
	capacity int64
	used     int64
	items    map[string]*lfuEntry
	heap     *nheap.Heap[*lfuEntry]
	tick     uint64
	stats    Stats
	onEvict  EvictFunc
}

type lfuEntry struct {
	key     string
	size    int64
	cost    int64
	freq    uint64
	touched uint64 // recency tie-break
	heapIdx int
}

var _ Policy = (*LFU)(nil)
var _ Evicter = (*LFU)(nil)

// NewLFU returns an LFU policy with the given byte capacity.
func NewLFU(capacity int64) *LFU {
	if capacity < 0 {
		capacity = 0
	}
	return &LFU{
		capacity: capacity,
		items:    make(map[string]*lfuEntry),
		heap: nheap.New(
			func(a, b *lfuEntry) bool {
				if a.freq != b.freq {
					return a.freq < b.freq
				}
				return a.touched < b.touched
			},
			nheap.WithIndexTracking(func(e *lfuEntry, i int) { e.heapIdx = i }),
		),
	}
}

// Name implements Policy.
func (c *LFU) Name() string { return "lfu" }

// Get implements Policy.
func (c *LFU) Get(key string) bool {
	e, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return false
	}
	c.touch(e)
	c.stats.Hits++
	return true
}

func (c *LFU) touch(e *lfuEntry) {
	e.freq++
	c.tick++
	e.touched = c.tick
	c.heap.Fix(e.heapIdx)
}

// Set implements Policy.
func (c *LFU) Set(key string, size, cost int64) bool {
	if size < 0 {
		size = 0
	}
	if e, ok := c.items[key]; ok {
		// Detach first so eviction can never pick the entry itself.
		c.remove(e)
		if size > c.capacity || !c.makeRoom(size) {
			c.stats.Rejected++
			return false
		}
		e.size, e.cost = size, cost
		e.freq++
		c.tick++
		e.touched = c.tick
		e.heapIdx = -1
		c.heap.Push(e)
		c.items[key] = e
		c.used += size
		c.stats.Updates++
		return true
	}
	if size > c.capacity || !c.makeRoom(size) {
		c.stats.Rejected++
		return false
	}
	c.tick++
	e := &lfuEntry{key: key, size: size, cost: cost, freq: 1, touched: c.tick, heapIdx: -1}
	c.heap.Push(e)
	c.items[key] = e
	c.used += size
	c.stats.Sets++
	return true
}

func (c *LFU) makeRoom(need int64) bool {
	for c.used+need > c.capacity {
		if _, ok := c.EvictOne(); !ok {
			return false
		}
	}
	return true
}

// EvictOne implements Evicter.
func (c *LFU) EvictOne() (Entry, bool) {
	if c.heap.Len() == 0 {
		return Entry{}, false
	}
	victim := c.heap.Pop()
	delete(c.items, victim.key)
	c.used -= victim.size
	victim.heapIdx = -1
	c.stats.Evictions++
	c.stats.EvictedBytes += uint64(victim.size)
	e := Entry{Key: victim.key, Size: victim.size, Cost: victim.cost}
	if c.onEvict != nil {
		c.onEvict(e)
	}
	return e, true
}

// Delete implements Policy.
func (c *LFU) Delete(key string) bool {
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.remove(e)
	return true
}

func (c *LFU) remove(e *lfuEntry) {
	c.heap.Remove(e.heapIdx)
	delete(c.items, e.key)
	c.used -= e.size
}

// Contains implements Policy.
func (c *LFU) Contains(key string) bool {
	_, ok := c.items[key]
	return ok
}

// Peek implements Policy.
func (c *LFU) Peek(key string) (Entry, bool) {
	e, ok := c.items[key]
	if !ok {
		return Entry{}, false
	}
	return Entry{Key: e.key, Size: e.size, Cost: e.cost}, true
}

// Len implements Policy.
func (c *LFU) Len() int { return len(c.items) }

// Used implements Policy.
func (c *LFU) Used() int64 { return c.used }

// Capacity implements Policy.
func (c *LFU) Capacity() int64 { return c.capacity }

// Stats implements Policy.
func (c *LFU) Stats() Stats { return c.stats }

// SetEvictFunc implements Policy.
func (c *LFU) SetEvictFunc(fn EvictFunc) { c.onEvict = fn }
