package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

func newTL(l1Cap, l2Cap int64, opts ...TwoLevelOption) *TwoLevel {
	return NewTwoLevel(NewLRU(l1Cap), NewLRU(l2Cap), opts...)
}

func TestTwoLevelDemotion(t *testing.T) {
	tl := newTL(20, 100)
	tl.Set("a", 10, 1)
	tl.Set("b", 10, 1)
	tl.Set("c", 10, 1) // a demotes to L2
	if !tl.Contains("a") {
		t.Fatal("a should survive in L2 after L1 eviction")
	}
	if tl.l1.Contains("a") {
		t.Fatal("a should have left L1")
	}
	if !tl.l2.Contains("a") {
		t.Fatal("a should be resident in L2")
	}
	if tl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tl.Len())
	}
}

func TestTwoLevelPromotion(t *testing.T) {
	tl := newTL(20, 100)
	tl.Set("a", 10, 1)
	tl.Set("b", 10, 1)
	tl.Set("c", 10, 1) // a -> L2
	if !tl.Get("a") {
		t.Fatal("expected an L2 hit")
	}
	if tl.L2Hits() != 1 {
		t.Fatalf("L2Hits = %d, want 1", tl.L2Hits())
	}
	if !tl.l1.Contains("a") {
		t.Fatal("a should have been promoted to L1")
	}
	if tl.l2.Contains("a") {
		t.Fatal("a should have left L2 after promotion")
	}
	// The promotion demoted an L1 victim into L2.
	if tl.l2.Len() != 1 {
		t.Fatalf("L2 should hold the demoted victim, len=%d", tl.l2.Len())
	}
}

func TestTwoLevelNoPromotion(t *testing.T) {
	tl := newTL(20, 100, WithPromotion(false))
	tl.Set("a", 10, 1)
	tl.Set("b", 10, 1)
	tl.Set("c", 10, 1)
	if !tl.Get("a") {
		t.Fatal("expected an L2 hit")
	}
	if tl.l1.Contains("a") {
		t.Fatal("promotion disabled: a should stay in L2")
	}
}

func TestTwoLevelEvictionLeavesHierarchy(t *testing.T) {
	tl := newTL(10, 20)
	var gone []string
	tl.SetEvictFunc(func(e Entry) { gone = append(gone, e.Key) })
	tl.Set("a", 10, 1)
	tl.Set("b", 10, 1) // a -> L2
	tl.Set("c", 10, 1) // b -> L2
	tl.Set("d", 10, 1) // c -> L2, L2 over budget -> a leaves entirely
	if len(gone) != 1 || gone[0] != "a" {
		t.Fatalf("gone = %v, want [a]", gone)
	}
	if tl.Contains("a") {
		t.Fatal("a should have left both levels")
	}
	if tl.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", tl.Stats().Evictions)
	}
}

func TestTwoLevelHugeItemGoesToL2(t *testing.T) {
	tl := newTL(10, 100)
	if !tl.Set("big", 50, 1) {
		t.Fatal("item too large for L1 should land in L2")
	}
	if tl.l1.Contains("big") || !tl.l2.Contains("big") {
		t.Fatal("big should live in L2 only")
	}
	if tl.Set("huge", 500, 1) {
		t.Fatal("item too large for both levels must be rejected")
	}
	if tl.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d", tl.Stats().Rejected)
	}
}

func TestTwoLevelCostAwareL2(t *testing.T) {
	// CAMP-like L2 semantics with LFU as a stand-in is overkill here;
	// use two LRUs and verify the §6 narrative with cost carried through
	// demotion.
	tl := newTL(20, 40)
	tl.Set("gold", 10, 99999)
	tl.Set("x", 10, 1)
	tl.Set("y", 10, 1) // gold -> L2, with its cost intact
	e, ok := tl.l2.Peek("gold")
	if !ok || e.Cost != 99999 {
		t.Fatalf("demoted entry lost metadata: %+v %v", e, ok)
	}
}

func TestTwoLevelDeleteAndName(t *testing.T) {
	tl := newTL(20, 40)
	tl.Set("a", 10, 1)
	tl.Set("b", 10, 1)
	tl.Set("c", 10, 1) // a -> L2
	if !tl.Delete("a") || tl.Delete("a") {
		t.Fatal("Delete should remove from L2")
	}
	if !tl.Delete("c") {
		t.Fatal("Delete should remove from L1")
	}
	if tl.Name() != "lru/lru" {
		t.Fatalf("Name = %s", tl.Name())
	}
	if tl.Capacity() != 60 {
		t.Fatalf("Capacity = %d", tl.Capacity())
	}
}

func TestTwoLevelStress(t *testing.T) {
	tl := newTL(300, 900)
	rng := rand.New(rand.NewSource(44))
	for op := 0; op < 30000; op++ {
		key := fmt.Sprintf("k%d", rng.Intn(100))
		switch rng.Intn(4) {
		case 0:
			tl.Set(key, int64(rng.Intn(40)+1), int64(rng.Intn(1000)))
		case 1:
			tl.Delete(key)
		default:
			tl.Get(key)
		}
		if tl.l1.Used() > tl.l1.Capacity() || tl.l2.Used() > tl.l2.Capacity() {
			t.Fatalf("op %d: a level exceeded its capacity", op)
		}
		// No key may be resident in both levels.
		if op%500 == 0 {
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("k%d", i)
				if tl.l1.Contains(k) && tl.l2.Contains(k) {
					t.Fatalf("op %d: %s resident in both levels", op, k)
				}
			}
		}
	}
}

// TestTwoLevelHitRateBeatsSingleL1: the hierarchy turns some L1 misses into
// L2 hits, by construction.
func TestTwoLevelHitRateBeatsSingleL1(t *testing.T) {
	run := func(p Policy) (hits, total int) {
		rng := rand.New(rand.NewSource(10))
		for i := 0; i < 40000; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(200))
			total++
			if p.Get(key) {
				hits++
			} else {
				p.Set(key, 10, 1)
			}
		}
		return hits, total
	}
	single := NewLRU(500)
	sh, _ := run(single)
	tl := newTL(500, 1000)
	th, _ := run(tl)
	if th <= sh {
		t.Fatalf("two-level hits %d should exceed single-level %d", th, sh)
	}
}
