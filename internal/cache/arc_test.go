package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestARCBasic(t *testing.T) {
	a := NewARC(100)
	if a.Get("x") {
		t.Fatal("empty cache should miss")
	}
	if !a.Set("x", 10, 1) {
		t.Fatal("Set failed")
	}
	if !a.Get("x") || !a.Contains("x") {
		t.Fatal("expected hit")
	}
	e, ok := a.Peek("x")
	if !ok || e.Size != 10 {
		t.Fatalf("Peek = %+v, %v", e, ok)
	}
	if a.Name() != "arc" || a.Capacity() != 100 || a.Used() != 10 || a.Len() != 1 {
		t.Fatal("accessors broken")
	}
	if !a.Delete("x") || a.Delete("x") {
		t.Fatal("Delete semantics broken")
	}
}

// TestARCPromotesFrequent: a second access moves an item from T1 to T2, so
// a scan of new keys cannot displace it as easily.
func TestARCPromotesFrequent(t *testing.T) {
	a := NewARC(100)
	a.Set("hot", 10, 1)
	a.Get("hot") // now in T2
	// Fill with scan traffic.
	for i := 0; i < 30; i++ {
		a.Set(fmt.Sprintf("scan%d", i), 10, 1)
	}
	if !a.Contains("hot") {
		t.Fatal("frequent item should survive a one-pass scan")
	}
}

// TestARCGhostAdaptation: hits on B1 ghosts grow the recency target.
// Ghosts only form via REPLACE, which requires T2 to hold some bytes (with
// an empty B1 and T1 filling the cache, Case IV discards T1's LRU outright).
func TestARCGhostAdaptation(t *testing.T) {
	a := NewARC(60)
	a.Set("f1", 10, 1)
	a.Get("f1") // promote to T2 so T1 can no longer fill the cache
	for i := 0; i < 8; i++ {
		a.Set(fmt.Sprintf("k%d", i), 10, 1)
	}
	// k2 is the most recent REPLACE victim and thus the surviving B1
	// ghost (older ghosts were trimmed as |T1|+|B1| reached capacity).
	if a.Contains("k2") {
		t.Fatal("k2 should have been evicted")
	}
	p0 := a.Target()
	a.Set("k2", 10, 1) // B1 ghost hit
	if a.Target() <= p0 {
		t.Fatalf("B1 ghost hit should raise the target: %d -> %d", p0, a.Target())
	}
}

func TestARCRejectTooLarge(t *testing.T) {
	a := NewARC(50)
	if a.Set("big", 60, 1) {
		t.Fatal("too-large item must be rejected")
	}
	if a.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d", a.Stats().Rejected)
	}
}

func TestARCEvictOne(t *testing.T) {
	a := NewARC(30)
	a.Set("a", 10, 1)
	a.Set("b", 10, 1)
	e, ok := a.EvictOne()
	if !ok || e.Key == "" {
		t.Fatal("EvictOne should return a victim")
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d after EvictOne", a.Len())
	}
	a.EvictOne()
	if _, ok := a.EvictOne(); ok {
		t.Fatal("EvictOne on empty cache should fail")
	}
}

// TestARCAccounting fuzzes ARC and checks byte accounting and capacity.
func TestARCAccounting(t *testing.T) {
	a := NewARC(500)
	rng := rand.New(rand.NewSource(21))
	for op := 0; op < 40000; op++ {
		key := fmt.Sprintf("k%d", rng.Intn(80))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			a.Get(key)
		case 6, 7, 8:
			a.Set(key, int64(rng.Intn(60)+1), int64(rng.Intn(100)))
		default:
			a.Delete(key)
		}
		if a.Used() > a.Capacity() {
			t.Fatalf("op %d: over capacity: %d > %d", op, a.Used(), a.Capacity())
		}
		// Spot-check the byte accounting against residents.
		if op%1000 == 0 {
			var total int64
			count := 0
			for i := 0; i < 80; i++ {
				if e, ok := a.Peek(fmt.Sprintf("k%d", i)); ok {
					total += e.Size
					count++
				}
			}
			if total != a.Used() || count != a.Len() {
				t.Fatalf("op %d: accounting drift: used %d vs %d, len %d vs %d",
					op, a.Used(), total, a.Len(), count)
			}
		}
	}
}

// TestARCBeatsLRUOnScans: the classic ARC win — a hot set established in
// the frequency list survives long one-pass scans that wipe out LRU.
func TestARCBeatsLRUOnScans(t *testing.T) {
	const capacity = 100 * 10
	hitRate := func(p Policy) float64 {
		// Establish the hot set with two passes (ARC promotes the
		// second access into T2).
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("hot%d", i)
				if !p.Get(key) {
					p.Set(key, 10, 1)
				}
			}
		}
		var hits, total int
		scan := 0
		for round := 0; round < 30; round++ {
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("hot%d", i)
				total++
				if p.Get(key) {
					hits++
				} else {
					p.Set(key, 10, 1)
				}
			}
			// A one-pass scan of 200 unique keys (2x capacity).
			for i := 0; i < 200; i++ {
				scan++
				key := fmt.Sprintf("scan%d", scan)
				total++
				if p.Get(key) {
					hits++
				} else {
					p.Set(key, 10, 1)
				}
			}
		}
		return float64(hits) / float64(total)
	}
	arc := hitRate(NewARC(capacity))
	lru := hitRate(NewLRU(capacity))
	if arc <= lru {
		t.Fatalf("ARC hit rate %.3f should beat LRU %.3f on scan-heavy mix", arc, lru)
	}
}
