package cache

import (
	"fmt"
	"hash/maphash"
	"sync"
)

// Sharded makes any Policy safe for concurrent use by hash-partitioning
// keys across independently locked shards — the §4.1 vertical-scaling
// recipe ("CAMP may represent each LRU queue as multiple physical queues
// and hash partition keys across these"). Capacity is split evenly across
// shards, so per-shard eviction decisions are local; with a reasonable
// shard count the quality loss is negligible while lock contention drops
// by the shard factor.
type Sharded struct {
	shards []shardedSlot
	seed   maphash.Seed
	mask   uint64
	name   string
}

type shardedSlot struct {
	mu     sync.Mutex
	policy Policy
}

var _ Policy = (*Sharded)(nil)

// NewSharded builds a Sharded policy with n shards (a power of two), using
// mk to construct each shard's inner policy with its share of capacity.
func NewSharded(capacity int64, n int, mk func(capacity int64) Policy) (*Sharded, error) {
	if n < 1 || n > 4096 || n&(n-1) != 0 {
		return nil, fmt.Errorf("cache: shard count %d must be a power of two in [1, 4096]", n)
	}
	s := &Sharded{
		shards: make([]shardedSlot, n),
		seed:   maphash.MakeSeed(),
		mask:   uint64(n - 1),
	}
	per := capacity / int64(n)
	rem := capacity % int64(n)
	for i := range s.shards {
		c := per
		if i == 0 {
			c += rem
		}
		s.shards[i].policy = mk(c)
	}
	s.name = "sharded-" + s.shards[0].policy.Name()
	return s, nil
}

func (s *Sharded) shardFor(key string) *shardedSlot {
	if len(s.shards) == 1 {
		return &s.shards[0]
	}
	return &s.shards[maphash.String(s.seed, key)&s.mask]
}

// Name implements Policy.
func (s *Sharded) Name() string { return s.name }

// Get implements Policy.
func (s *Sharded) Get(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.policy.Get(key)
}

// Set implements Policy.
func (s *Sharded) Set(key string, size, cost int64) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.policy.Set(key, size, cost)
}

// Delete implements Policy.
func (s *Sharded) Delete(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.policy.Delete(key)
}

// Contains implements Policy.
func (s *Sharded) Contains(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.policy.Contains(key)
}

// Peek implements Policy.
func (s *Sharded) Peek(key string) (Entry, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.policy.Peek(key)
}

// Len implements Policy.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += s.shards[i].policy.Len()
		s.shards[i].mu.Unlock()
	}
	return n
}

// Used implements Policy.
func (s *Sharded) Used() int64 {
	var u int64
	for i := range s.shards {
		s.shards[i].mu.Lock()
		u += s.shards[i].policy.Used()
		s.shards[i].mu.Unlock()
	}
	return u
}

// Capacity implements Policy.
func (s *Sharded) Capacity() int64 {
	var c int64
	for i := range s.shards {
		c += s.shards[i].policy.Capacity()
	}
	return c
}

// Stats implements Policy.
func (s *Sharded) Stats() Stats {
	var out Stats
	for i := range s.shards {
		s.shards[i].mu.Lock()
		st := s.shards[i].policy.Stats()
		s.shards[i].mu.Unlock()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Sets += st.Sets
		out.Updates += st.Updates
		out.Evictions += st.Evictions
		out.EvictedBytes += st.EvictedBytes
		out.Rejected += st.Rejected
	}
	return out
}

// SetEvictFunc implements Policy. The callback may fire concurrently from
// different shards; it must be safe for concurrent use.
func (s *Sharded) SetEvictFunc(fn EvictFunc) {
	for i := range s.shards {
		s.shards[i].mu.Lock()
		s.shards[i].policy.SetEvictFunc(fn)
		s.shards[i].mu.Unlock()
	}
}
