package cache

import (
	"camp/internal/ilist"
	"camp/internal/rounding"
)

// GDWheel approximates Greedy-Dual-Size with hierarchical timing wheels,
// after Li and Cox's GD-Wheel (§5 related work). Priorities H = T + d (T
// the global clock, d the integerized cost-to-size ratio) are binned into
// wheel slots: level l groups priorities at granularity W^l, so — as the
// CAMP paper points out — GD-Wheel rounds the *overall priority*, not the
// ratio, and must migrate slots from outer wheels to inner ones as the
// clock advances. It is implemented here as the paper's foil: CAMP achieves
// the same O(1) flavor without migrations and with a provable bound.
type GDWheel struct {
	capacity int64
	used     int64

	slots   [][]*ilist.List[*gdwEntry] // [level][slot]
	counts  []int                      // non-empty slot count per level
	t       uint64                     // global clock (the GDS "L")
	conv    rounding.Converter
	items   map[string]*gdwEntry
	stats   Stats
	onEvict EvictFunc
}

// gdwWheelWidth is the number of slots per wheel level.
const gdwWheelWidth = 256

// gdwLevels is the number of wheel levels; offsets beyond W^3 clamp into
// the outermost wheel.
const gdwLevels = 3

type gdwEntry struct {
	key   string
	size  int64
	cost  int64
	h     uint64
	level int
	slot  int
	node  *ilist.Node[*gdwEntry]
}

var _ Policy = (*GDWheel)(nil)
var _ Evicter = (*GDWheel)(nil)

// NewGDWheel returns a GD-Wheel policy with the given byte capacity.
func NewGDWheel(capacity int64) *GDWheel {
	if capacity < 0 {
		capacity = 0
	}
	g := &GDWheel{
		capacity: capacity,
		slots:    make([][]*ilist.List[*gdwEntry], gdwLevels),
		counts:   make([]int, gdwLevels),
		items:    make(map[string]*gdwEntry),
	}
	for l := range g.slots {
		g.slots[l] = make([]*ilist.List[*gdwEntry], gdwWheelWidth)
		for s := range g.slots[l] {
			g.slots[l][s] = ilist.New[*gdwEntry]()
		}
	}
	return g
}

// Name implements Policy.
func (g *GDWheel) Name() string { return "gdwheel" }

// Clock returns the wheel clock (GDS's L analog), for tests.
func (g *GDWheel) Clock() uint64 { return g.t }

// span returns W^(l+1), the priority range covered by level l.
func span(level int) uint64 {
	s := uint64(gdwWheelWidth)
	for i := 0; i < level; i++ {
		s *= gdwWheelWidth
	}
	return s
}

// granularity returns W^l, the slot width of level l.
func granularity(level int) uint64 {
	gr := uint64(1)
	for i := 0; i < level; i++ {
		gr *= gdwWheelWidth
	}
	return gr
}

// base returns the start of level l's current window.
func (g *GDWheel) base(level int) uint64 {
	sp := span(level)
	return g.t / sp * sp
}

// place links e into the wheel slot covering its priority.
func (g *GDWheel) place(e *gdwEntry) {
	d := e.h - g.t
	level := 0
	for level < gdwLevels-1 && e.h >= g.base(level)+span(level) {
		level++
	}
	if d >= span(gdwLevels-1) {
		// Clamp far-future priorities into the outermost window.
		e.h = g.base(gdwLevels-1) + span(gdwLevels-1) - 1
	}
	gr := granularity(level)
	slot := int(e.h / gr % gdwWheelWidth)
	e.level, e.slot = level, slot
	lst := g.slots[level][slot]
	if lst.Len() == 0 {
		g.counts[level]++
	}
	e.node = &ilist.Node[*gdwEntry]{Value: e}
	lst.PushBackNode(e.node)
}

// unlink removes e from its slot.
func (g *GDWheel) unlink(e *gdwEntry) {
	lst := g.slots[e.level][e.slot]
	lst.Remove(e.node)
	if lst.Len() == 0 {
		g.counts[e.level]--
	}
	e.node = nil
}

// Get implements Policy.
func (g *GDWheel) Get(key string) bool {
	e, ok := g.items[key]
	if !ok {
		g.stats.Misses++
		return false
	}
	g.unlink(e)
	e.h = g.t + g.ratio(e.cost, e.size)
	g.place(e)
	g.stats.Hits++
	return true
}

func (g *GDWheel) ratio(cost, size int64) uint64 {
	d := g.conv.IntRatio(cost, size)
	if d == 0 {
		return 0
	}
	return d
}

// Set implements Policy.
func (g *GDWheel) Set(key string, size, cost int64) bool {
	if size < 0 {
		size = 0
	}
	if e, ok := g.items[key]; ok {
		g.unlink(e)
		delete(g.items, key)
		g.used -= e.size
		if !g.admit(key, size, cost) {
			g.stats.Rejected++
			return false
		}
		g.stats.Updates++
		return true
	}
	if !g.admit(key, size, cost) {
		g.stats.Rejected++
		return false
	}
	g.stats.Sets++
	return true
}

func (g *GDWheel) admit(key string, size, cost int64) bool {
	if size > g.capacity {
		return false
	}
	for g.used+size > g.capacity {
		if _, ok := g.EvictOne(); !ok {
			return false
		}
	}
	e := &gdwEntry{key: key, size: size, cost: cost, h: g.t + g.ratio(cost, size)}
	g.place(e)
	g.items[key] = e
	g.used += size
	return true
}

// EvictOne implements Evicter: advance the hand to the next non-empty
// level-0 slot (migrating outer wheels inward as windows are crossed) and
// evict that slot's FIFO head.
func (g *GDWheel) EvictOne() (Entry, bool) {
	if len(g.items) == 0 {
		return Entry{}, false
	}
	e := g.popMin()
	if e == nil {
		return Entry{}, false
	}
	delete(g.items, e.key)
	g.used -= e.size
	g.stats.Evictions++
	g.stats.EvictedBytes += uint64(e.size)
	out := Entry{Key: e.key, Size: e.size, Cost: e.cost}
	if g.onEvict != nil {
		g.onEvict(out)
	}
	return out, true
}

// popMin finds the approximately-minimum-priority entry.
func (g *GDWheel) popMin() *gdwEntry {
	for attempts := 0; attempts < gdwWheelWidth*gdwLevels+2; attempts++ {
		// Scan the level-0 window from the hand forward.
		if g.counts[0] > 0 {
			start := int(g.t % gdwWheelWidth)
			for s := start; s < gdwWheelWidth; s++ {
				lst := g.slots[0][s]
				if lst.Len() == 0 {
					continue
				}
				e := lst.Front().Value
				g.unlink(e)
				// The hand advances to the evicted slot.
				g.t = g.base(0) + uint64(s)
				return e
			}
		}
		// Level 0 exhausted for this window: pull the next non-empty
		// outer slot's window down.
		if !g.migrate() {
			return nil
		}
	}
	return nil
}

// migrate advances the clock to the next outer-wheel slot holding items and
// redistributes that slot into the inner wheels — GD-Wheel's migration step.
func (g *GDWheel) migrate() bool {
	for level := 1; level < gdwLevels; level++ {
		if g.counts[level] == 0 {
			continue
		}
		gr := granularity(level)
		start := int(g.t / gr % gdwWheelWidth)
		for s := start; s < gdwWheelWidth; s++ {
			lst := g.slots[level][s]
			if lst.Len() == 0 {
				continue
			}
			// Jump the clock to this slot's window start and
			// re-place its items; they land in inner levels.
			winBase := g.base(level) + uint64(s)*gr
			if winBase > g.t {
				g.t = winBase
			}
			var moved []*gdwEntry
			for lst.Len() > 0 {
				e := lst.Front().Value
				g.unlink(e)
				moved = append(moved, e)
			}
			for _, e := range moved {
				if e.h < g.t {
					e.h = g.t // stale clamp; preserves order approximately
				}
				g.place(e)
			}
			return true
		}
		// The remainder of this level's window is empty; fall
		// through to the next outer level.
	}
	// All outer windows exhausted: wrap every level's window forward.
	// Items must exist somewhere (the caller checked), so advance to the
	// smallest priority directly.
	var min *gdwEntry
	for _, e := range g.items {
		if min == nil || e.h < min.h {
			min = e
		}
	}
	if min == nil {
		return false
	}
	// Rebuild the wheels around the new clock.
	g.t = min.h
	all := make([]*gdwEntry, 0, len(g.items))
	for _, e := range g.items {
		g.unlink(e)
		all = append(all, e)
	}
	for l := range g.counts {
		g.counts[l] = 0
	}
	for _, e := range all {
		if e.h < g.t {
			e.h = g.t
		}
		g.place(e)
	}
	return true
}

// Delete implements Policy.
func (g *GDWheel) Delete(key string) bool {
	e, ok := g.items[key]
	if !ok {
		return false
	}
	g.unlink(e)
	delete(g.items, key)
	g.used -= e.size
	return true
}

// Contains implements Policy.
func (g *GDWheel) Contains(key string) bool {
	_, ok := g.items[key]
	return ok
}

// Peek implements Policy.
func (g *GDWheel) Peek(key string) (Entry, bool) {
	e, ok := g.items[key]
	if !ok {
		return Entry{}, false
	}
	return Entry{Key: e.key, Size: e.size, Cost: e.cost}, true
}

// Len implements Policy.
func (g *GDWheel) Len() int { return len(g.items) }

// Used implements Policy.
func (g *GDWheel) Used() int64 { return g.used }

// Capacity implements Policy.
func (g *GDWheel) Capacity() int64 { return g.capacity }

// Stats implements Policy.
func (g *GDWheel) Stats() Stats { return g.stats }

// SetEvictFunc implements Policy.
func (g *GDWheel) SetEvictFunc(fn EvictFunc) { g.onEvict = fn }
