package cache

import (
	"fmt"
	"sort"
)

// PoolSpec describes one memory pool of a PooledLRU: items whose cost lies
// in [MinCost, MaxCost) are assigned to the pool, and the pool receives a
// share of the total capacity proportional to Weight.
//
// This models the human-partitioned alternative of §3 and [Nishtala et al.,
// NSDI'13]: an expert groups key-value pairs with similar costs and assigns
// each group a dedicated LRU pool.
type PoolSpec struct {
	// Name labels the pool in diagnostics.
	Name string
	// MinCost is the inclusive lower bound of costs routed to this pool.
	MinCost int64
	// MaxCost is the exclusive upper bound; 0 means unbounded.
	MaxCost int64
	// Weight is the pool's share of capacity, relative to the sum of all
	// weights. Must be > 0.
	Weight float64
}

// PooledLRU statically partitions memory into per-cost-group pools, each an
// independent LRU. Unlike CAMP, pool sizes never adapt: an item can evict
// only within its own pool.
type PooledLRU struct {
	capacity  int64
	specs     []PoolSpec
	pools     []*LRU
	keyToPool map[string]int
	stats     Stats
	onEvict   EvictFunc
}

var _ Policy = (*PooledLRU)(nil)

// NewPooled creates a PooledLRU with the given capacity split across pools
// according to their weights. Pool cost ranges must not overlap; costs that
// match no pool are routed to the pool with the closest range.
func NewPooled(capacity int64, specs []PoolSpec) (*PooledLRU, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cache: pooled policy needs at least one pool")
	}
	var totalWeight float64
	for i, s := range specs {
		if s.Weight <= 0 {
			return nil, fmt.Errorf("cache: pool %d (%s) has non-positive weight %v", i, s.Name, s.Weight)
		}
		if s.MaxCost != 0 && s.MaxCost <= s.MinCost {
			return nil, fmt.Errorf("cache: pool %d (%s) has empty range [%d,%d)", i, s.Name, s.MinCost, s.MaxCost)
		}
		totalWeight += s.Weight
	}
	ordered := append([]PoolSpec(nil), specs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].MinCost < ordered[j].MinCost })
	for i := 1; i < len(ordered); i++ {
		prev := ordered[i-1]
		if prev.MaxCost == 0 || ordered[i].MinCost < prev.MaxCost {
			return nil, fmt.Errorf("cache: pools %q and %q overlap", prev.Name, ordered[i].Name)
		}
	}
	p := &PooledLRU{
		capacity:  capacity,
		specs:     ordered,
		pools:     make([]*LRU, len(ordered)),
		keyToPool: make(map[string]int),
	}
	assigned := int64(0)
	for i, s := range ordered {
		share := int64(float64(capacity) * s.Weight / totalWeight)
		if i == len(ordered)-1 {
			share = capacity - assigned // give rounding remainder to the last pool
		}
		assigned += share
		lru := NewLRU(share)
		lru.SetEvictFunc(func(e Entry) {
			delete(p.keyToPool, e.Key)
			p.stats.Evictions++
			p.stats.EvictedBytes += uint64(e.Size)
			if p.onEvict != nil {
				p.onEvict(e)
			}
		})
		p.pools[i] = lru
	}
	return p, nil
}

// NewPooledByCostValues builds one pool per distinct cost value, as in the
// paper's {1, 100, 10K} experiment. Weights are the cost values themselves
// ("memory assigned proportional to cost"), or uniform when uniform is true.
func NewPooledByCostValues(capacity int64, costs []int64, uniform bool) (*PooledLRU, error) {
	if len(costs) == 0 {
		return nil, fmt.Errorf("cache: no cost values given")
	}
	sorted := append([]int64(nil), costs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	specs := make([]PoolSpec, len(sorted))
	for i, c := range sorted {
		max := int64(0)
		if i+1 < len(sorted) {
			max = sorted[i+1]
		}
		w := float64(c)
		if uniform {
			w = 1
		}
		if w <= 0 {
			w = 1
		}
		min := c
		if i == 0 {
			min = 0 // sweep anything cheaper into the cheapest pool
		}
		specs[i] = PoolSpec{
			Name:    fmt.Sprintf("cost-%d", c),
			MinCost: min,
			MaxCost: max,
			Weight:  w,
		}
	}
	return NewPooled(capacity, specs)
}

// NewPooledByRanges builds pools over half-open cost ranges with weights
// proportional to each range's floor (max(floor,1)), the §3.2 setup for
// continuous costs: [1,100), [100,10000), [10000,∞).
func NewPooledByRanges(capacity int64, bounds []int64) (*PooledLRU, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("cache: no range bounds given")
	}
	sorted := append([]int64(nil), bounds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	specs := make([]PoolSpec, len(sorted))
	for i, lo := range sorted {
		hi := int64(0)
		if i+1 < len(sorted) {
			hi = sorted[i+1]
		}
		w := float64(lo)
		if w < 1 {
			w = 1
		}
		min := lo
		if i == 0 {
			min = 0
		}
		specs[i] = PoolSpec{
			Name:    fmt.Sprintf("range-%d", lo),
			MinCost: min,
			MaxCost: hi,
			Weight:  w,
		}
	}
	return NewPooled(capacity, specs)
}

// Name implements Policy.
func (p *PooledLRU) Name() string { return "pooled-lru" }

// Get implements Policy.
func (p *PooledLRU) Get(key string) bool {
	idx, ok := p.keyToPool[key]
	if !ok {
		p.stats.Misses++
		return false
	}
	if !p.pools[idx].Get(key) {
		// keyToPool and pool contents are kept in sync; reaching here
		// would be a bug.
		p.stats.Misses++
		return false
	}
	p.stats.Hits++
	return true
}

// Set implements Policy.
func (p *PooledLRU) Set(key string, size, cost int64) bool {
	idx := p.poolFor(cost)
	if old, ok := p.keyToPool[key]; ok && old != idx {
		p.pools[old].Delete(key)
		delete(p.keyToPool, key)
	}
	existed := p.pools[idx].Contains(key)
	if !p.pools[idx].Set(key, size, cost) {
		p.stats.Rejected++
		if existed {
			// Inner LRU dropped the entry on a failed grow.
			delete(p.keyToPool, key)
		}
		return false
	}
	p.keyToPool[key] = idx
	if existed {
		p.stats.Updates++
	} else {
		p.stats.Sets++
	}
	return true
}

// Delete implements Policy.
func (p *PooledLRU) Delete(key string) bool {
	idx, ok := p.keyToPool[key]
	if !ok {
		return false
	}
	delete(p.keyToPool, key)
	return p.pools[idx].Delete(key)
}

// Contains implements Policy.
func (p *PooledLRU) Contains(key string) bool {
	_, ok := p.keyToPool[key]
	return ok
}

// Peek implements Policy.
func (p *PooledLRU) Peek(key string) (Entry, bool) {
	idx, ok := p.keyToPool[key]
	if !ok {
		return Entry{}, false
	}
	return p.pools[idx].Peek(key)
}

// Len implements Policy.
func (p *PooledLRU) Len() int { return len(p.keyToPool) }

// Used implements Policy.
func (p *PooledLRU) Used() int64 {
	var u int64
	for _, pool := range p.pools {
		u += pool.Used()
	}
	return u
}

// Capacity implements Policy.
func (p *PooledLRU) Capacity() int64 { return p.capacity }

// Stats implements Policy.
func (p *PooledLRU) Stats() Stats { return p.stats }

// SetEvictFunc implements Policy.
func (p *PooledLRU) SetEvictFunc(fn EvictFunc) { p.onEvict = fn }

// PoolInfo reports one pool's configuration and occupancy.
type PoolInfo struct {
	Spec     PoolSpec
	Capacity int64
	Used     int64
	Items    int
}

// Pools returns per-pool diagnostics in cost order.
func (p *PooledLRU) Pools() []PoolInfo {
	out := make([]PoolInfo, len(p.pools))
	for i, pool := range p.pools {
		out[i] = PoolInfo{
			Spec:     p.specs[i],
			Capacity: pool.Capacity(),
			Used:     pool.Used(),
			Items:    pool.Len(),
		}
	}
	return out
}

func (p *PooledLRU) poolFor(cost int64) int {
	// Pools are sorted by MinCost. Pick the matching pool; costs falling
	// in a gap go to the pool below, costs below every pool to the first.
	idx := 0
	for i, s := range p.specs {
		if cost < s.MinCost {
			break
		}
		idx = i
		if s.MaxCost == 0 || cost < s.MaxCost {
			return i
		}
	}
	return idx
}
