package cache

// TwoLevel composes a small, fast L1 with a larger, slower L2, prototyping
// the paper's §6 future-work direction of a hierarchical cache (memory over
// SSD/disk) that persists costly items: L1 evictions are demoted into L2
// rather than discarded, and an L2 hit can promote the item back.
//
// TwoLevel implements Policy, so it drops into the simulator; L1Hits and
// L2Hits let callers weigh the two hit classes differently (an L2 "hit"
// would still pay an SSD read in a real deployment).
type TwoLevel struct {
	l1, l2  Policy
	promote bool

	l1Hits, l2Hits uint64
	stats          Stats
	onEvict        EvictFunc
}

var _ Policy = (*TwoLevel)(nil)

// TwoLevelOption configures NewTwoLevel.
type TwoLevelOption func(*TwoLevel)

// WithPromotion controls whether an L2 hit moves the item back into L1
// (default true).
func WithPromotion(on bool) TwoLevelOption {
	return func(t *TwoLevel) { t.promote = on }
}

// NewTwoLevel builds a hierarchical cache from two policies. Ownership of
// both policies passes to the TwoLevel; their eviction callbacks are
// replaced.
func NewTwoLevel(l1, l2 Policy, opts ...TwoLevelOption) *TwoLevel {
	t := &TwoLevel{l1: l1, l2: l2, promote: true}
	for _, o := range opts {
		o(t)
	}
	// L1 victims demote into L2 (the §6 "persist costly items" path).
	l1.SetEvictFunc(func(e Entry) {
		t.l2.Set(e.Key, e.Size, e.Cost)
	})
	// L2 victims leave the hierarchy.
	l2.SetEvictFunc(func(e Entry) {
		t.stats.Evictions++
		t.stats.EvictedBytes += uint64(e.Size)
		if t.onEvict != nil {
			t.onEvict(e)
		}
	})
	return t
}

// Name implements Policy.
func (t *TwoLevel) Name() string { return t.l1.Name() + "/" + t.l2.Name() }

// Get implements Policy. An L1 hit refreshes L1; an L2 hit optionally
// promotes the item to L1 (demoting an L1 victim into L2 in turn).
func (t *TwoLevel) Get(key string) bool {
	if t.l1.Get(key) {
		t.l1Hits++
		t.stats.Hits++
		return true
	}
	if !t.l2.Get(key) {
		t.stats.Misses++
		return false
	}
	t.l2Hits++
	t.stats.Hits++
	if t.promote {
		if e, ok := t.l2.Peek(key); ok {
			t.l2.Delete(key)
			if !t.l1.Set(e.Key, e.Size, e.Cost) {
				// Too large for L1: keep it in L2.
				t.l2.Set(e.Key, e.Size, e.Cost)
			}
		}
	}
	return true
}

// Set implements Policy: new data lands in L1; L1's evictions cascade into
// L2 via the demotion hook.
func (t *TwoLevel) Set(key string, size, cost int64) bool {
	// Avoid duplicates across levels.
	t.l2.Delete(key)
	if t.l1.Set(key, size, cost) {
		t.stats.Sets++
		return true
	}
	// Too large for L1 alone: try L2 directly (e.g. a huge object that
	// still fits the bigger level).
	if t.l2.Set(key, size, cost) {
		t.stats.Sets++
		return true
	}
	t.stats.Rejected++
	return false
}

// Delete implements Policy.
func (t *TwoLevel) Delete(key string) bool {
	a := t.l1.Delete(key)
	b := t.l2.Delete(key)
	return a || b
}

// Contains implements Policy.
func (t *TwoLevel) Contains(key string) bool {
	return t.l1.Contains(key) || t.l2.Contains(key)
}

// Peek implements Policy.
func (t *TwoLevel) Peek(key string) (Entry, bool) {
	if e, ok := t.l1.Peek(key); ok {
		return e, true
	}
	return t.l2.Peek(key)
}

// Len implements Policy.
func (t *TwoLevel) Len() int { return t.l1.Len() + t.l2.Len() }

// Used implements Policy.
func (t *TwoLevel) Used() int64 { return t.l1.Used() + t.l2.Used() }

// Capacity implements Policy.
func (t *TwoLevel) Capacity() int64 { return t.l1.Capacity() + t.l2.Capacity() }

// Stats implements Policy. Hits counts both levels; see L1Hits/L2Hits for
// the split. Evictions count only items leaving the hierarchy.
func (t *TwoLevel) Stats() Stats { return t.stats }

// L1Hits returns hits served by the first level.
func (t *TwoLevel) L1Hits() uint64 { return t.l1Hits }

// L2Hits returns hits served by the second level.
func (t *TwoLevel) L2Hits() uint64 { return t.l2Hits }

// SetEvictFunc implements Policy; the callback fires only when an item
// leaves both levels.
func (t *TwoLevel) SetEvictFunc(fn EvictFunc) { t.onEvict = fn }
