package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestLRUBasicHitMiss(t *testing.T) {
	c := NewLRU(100)
	if c.Get("a") {
		t.Fatal("empty cache should miss")
	}
	if !c.Set("a", 10, 1) {
		t.Fatal("Set should succeed")
	}
	if !c.Get("a") {
		t.Fatal("expected hit after Set")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Sets != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 set", s)
	}
	if c.Len() != 1 || c.Used() != 10 || c.Capacity() != 100 {
		t.Fatalf("Len=%d Used=%d Cap=%d", c.Len(), c.Used(), c.Capacity())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(30)
	c.Set("a", 10, 1)
	c.Set("b", 10, 1)
	c.Set("c", 10, 1)
	c.Get("a") // a is now most recent; b is LRU
	var evicted []string
	c.SetEvictFunc(func(e Entry) { evicted = append(evicted, e.Key) })
	c.Set("d", 15, 1) // needs 15 bytes -> evicts b then c
	if len(evicted) != 2 || evicted[0] != "b" || evicted[1] != "c" {
		t.Fatalf("evicted %v, want [b c]", evicted)
	}
	if !c.Contains("a") || !c.Contains("d") {
		t.Fatal("a and d should be resident")
	}
	if c.Used() != 25 {
		t.Fatalf("Used = %d, want 25", c.Used())
	}
}

func TestLRUIgnoresCost(t *testing.T) {
	c := NewLRU(20)
	c.Set("cheap", 10, 1)
	c.Set("gold", 10, 1000000)
	c.Get("cheap") // gold becomes LRU despite its cost
	c.Set("x", 10, 1)
	if c.Contains("gold") {
		t.Fatal("LRU must ignore cost and evict the least recently used")
	}
	if !c.Contains("cheap") {
		t.Fatal("cheap was recently used and should stay")
	}
}

func TestLRURejectTooLarge(t *testing.T) {
	c := NewLRU(10)
	if c.Set("big", 11, 1) {
		t.Fatal("item larger than capacity must be rejected")
	}
	if c.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", c.Stats().Rejected)
	}
	if c.Len() != 0 {
		t.Fatal("rejected item must not be resident")
	}
	// Exactly capacity fits.
	if !c.Set("fit", 10, 1) {
		t.Fatal("item of exactly capacity must fit")
	}
}

func TestLRUUpdateSizeAndCost(t *testing.T) {
	c := NewLRU(100)
	c.Set("a", 10, 1)
	if !c.Set("a", 40, 7) {
		t.Fatal("grow update should succeed")
	}
	e, ok := c.Peek("a")
	if !ok || e.Size != 40 || e.Cost != 7 {
		t.Fatalf("Peek = %+v, want size 40 cost 7", e)
	}
	if c.Used() != 40 {
		t.Fatalf("Used = %d, want 40", c.Used())
	}
	if !c.Set("a", 5, 7) {
		t.Fatal("shrink update should succeed")
	}
	if c.Used() != 5 {
		t.Fatalf("Used = %d, want 5", c.Used())
	}
	if c.Stats().Updates != 2 {
		t.Fatalf("Updates = %d, want 2", c.Stats().Updates)
	}
}

func TestLRUUpdateEvictsOthersNotSelf(t *testing.T) {
	c := NewLRU(30)
	c.Set("a", 10, 1)
	c.Set("b", 10, 1)
	c.Set("c", 10, 1)
	// Growing a to 20 requires evicting others (a itself is skipped even
	// though it is least recently used).
	if !c.Set("a", 20, 1) {
		t.Fatal("grow should succeed by evicting b")
	}
	if !c.Contains("a") {
		t.Fatal("a must survive its own grow")
	}
	if c.Contains("b") {
		t.Fatal("b should have been evicted to make room")
	}
	if c.Used() != 30 {
		t.Fatalf("Used = %d, want 30", c.Used())
	}
}

func TestLRUUpdateTooLargeDropsEntry(t *testing.T) {
	c := NewLRU(30)
	c.Set("a", 10, 1)
	if c.Set("a", 31, 1) {
		t.Fatal("grow beyond capacity must fail")
	}
	if c.Contains("a") {
		t.Fatal("entry must not remain with a stale size")
	}
	if c.Used() != 0 {
		t.Fatalf("Used = %d, want 0", c.Used())
	}
}

func TestLRUDelete(t *testing.T) {
	c := NewLRU(100)
	c.Set("a", 10, 1)
	var evicted int
	c.SetEvictFunc(func(Entry) { evicted++ })
	if !c.Delete("a") {
		t.Fatal("Delete of resident key should return true")
	}
	if c.Delete("a") {
		t.Fatal("Delete of absent key should return false")
	}
	if evicted != 0 {
		t.Fatal("Delete must not fire the eviction callback")
	}
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatalf("Len=%d Used=%d after delete", c.Len(), c.Used())
	}
}

func TestLRUVictimAndKeys(t *testing.T) {
	c := NewLRU(100)
	if _, ok := c.Victim(); ok {
		t.Fatal("empty cache has no victim")
	}
	c.Set("a", 1, 1)
	c.Set("b", 1, 1)
	c.Get("a")
	if v, _ := c.Victim(); v != "b" {
		t.Fatalf("victim = %q, want b", v)
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "b" || keys[1] != "a" {
		t.Fatalf("Keys = %v, want [b a]", keys)
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU(0)
	if c.Set("a", 1, 1) {
		t.Fatal("nothing fits in a zero-capacity cache")
	}
	if c.Set("z", 0, 1) != true {
		t.Fatal("zero-sized item fits anywhere")
	}
	neg := NewLRU(-5)
	if neg.Capacity() != 0 {
		t.Fatalf("negative capacity should clamp to 0, got %d", neg.Capacity())
	}
}

// lruModel is an O(n) reference implementation used to cross-check LRU.
type lruModel struct {
	capacity int64
	used     int64
	order    []string // least to most recently used
	entries  map[string]Entry
}

func newLRUModel(capacity int64) *lruModel {
	return &lruModel{capacity: capacity, entries: make(map[string]Entry)}
}

func (m *lruModel) touch(key string) {
	for i, k := range m.order {
		if k == key {
			m.order = append(append(m.order[:i], m.order[i+1:]...), key)
			return
		}
	}
}

func (m *lruModel) get(key string) bool {
	if _, ok := m.entries[key]; !ok {
		return false
	}
	m.touch(key)
	return true
}

func (m *lruModel) set(key string, size, cost int64) bool {
	if old, ok := m.entries[key]; ok {
		delta := size - old.Size
		if delta > 0 {
			if !m.makeRoom(delta, key) {
				m.remove(key)
				return false
			}
		}
		m.used += delta
		m.entries[key] = Entry{Key: key, Size: size, Cost: cost}
		m.touch(key)
		return true
	}
	if size > m.capacity || !m.makeRoom(size, "") {
		return false
	}
	m.entries[key] = Entry{Key: key, Size: size, Cost: cost}
	m.order = append(m.order, key)
	m.used += size
	return true
}

func (m *lruModel) makeRoom(need int64, skip string) bool {
	for m.used+need > m.capacity {
		victim := ""
		for _, k := range m.order {
			if k != skip {
				victim = k
				break
			}
		}
		if victim == "" {
			return false
		}
		m.remove(victim)
	}
	return true
}

func (m *lruModel) remove(key string) {
	e, ok := m.entries[key]
	if !ok {
		return
	}
	m.used -= e.Size
	delete(m.entries, key)
	for i, k := range m.order {
		if k == key {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// TestLRUMatchesModel runs a random workload against both the real LRU and
// the reference model and requires identical observable behavior.
func TestLRUMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	c := NewLRU(500)
	m := newLRUModel(500)
	for op := 0; op < 50000; op++ {
		key := fmt.Sprintf("k%d", rng.Intn(60))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			if got, want := c.Get(key), m.get(key); got != want {
				t.Fatalf("op %d: Get(%s) = %v, model %v", op, key, got, want)
			}
		case 5, 6, 7, 8:
			size := int64(rng.Intn(120) + 1)
			cost := int64(rng.Intn(100))
			if got, want := c.Set(key, size, cost), m.set(key, size, cost); got != want {
				t.Fatalf("op %d: Set(%s,%d) = %v, model %v", op, key, size, got, want)
			}
		default:
			cHas := c.Delete(key)
			_, mHas := m.entries[key]
			m.remove(key)
			if cHas != mHas {
				t.Fatalf("op %d: Delete(%s) = %v, model %v", op, key, cHas, mHas)
			}
		}
		if c.Used() != m.used {
			t.Fatalf("op %d: Used = %d, model %d", op, c.Used(), m.used)
		}
		if c.Len() != len(m.entries) {
			t.Fatalf("op %d: Len = %d, model %d", op, c.Len(), len(m.entries))
		}
	}
	// Final order check.
	keys := c.Keys()
	if len(keys) != len(m.order) {
		t.Fatalf("order length %d, model %d", len(keys), len(m.order))
	}
	for i := range keys {
		if keys[i] != m.order[i] {
			t.Fatalf("order[%d] = %s, model %s", i, keys[i], m.order[i])
		}
	}
}
