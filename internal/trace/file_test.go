package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTrace(t *testing.T) []Request {
	t.Helper()
	g := NewBGTrace(13, 50, 2000)
	reqs, err := Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestTextRoundTrip(t *testing.T) {
	reqs := sampleTrace(t)
	var buf bytes.Buffer
	n, err := WriteText(&buf, NewSliceSource(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(reqs)) {
		t.Fatalf("wrote %d rows, want %d", n, len(reqs))
	}
	got, err := Materialize(NewTextReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("read %d rows, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("row %d: %+v != %+v", i, got[i], reqs[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	reqs := sampleTrace(t)
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, NewSliceSource(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(reqs)) {
		t.Fatalf("wrote %d rows, want %d", n, len(reqs))
	}
	got, err := Materialize(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("read %d rows, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("row %d: %+v != %+v", i, got[i], reqs[i])
		}
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nk1,10,5\n   \nk2,20,7\n"
	got, err := Materialize(NewTextReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Key != "k1" || got[1].Cost != 7 {
		t.Fatalf("got %+v", got)
	}
}

func TestTextKeysWithCommas(t *testing.T) {
	in := "user,profile,42,10,5\n"
	got, err := Materialize(NewTextReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "user,profile,42" || got[0].Size != 10 || got[0].Cost != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestTextMalformed(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "no commas", in: "justakey\n"},
		{name: "one comma", in: "key,10\n"},
		{name: "bad size", in: "key,abc,5\n"},
		{name: "bad cost", in: "key,10,xyz\n"},
		{name: "negative size", in: "key,-1,5\n"},
		{name: "negative cost", in: "key,1,-5\n"},
		{name: "empty key", in: ",1,5\n"},
		{name: "whitespace key", in: " ,1,5\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Materialize(NewTextReader(strings.NewReader(tt.in)))
			if err == nil {
				t.Fatalf("expected parse error for %q", tt.in)
			}
		})
	}
}

// TestWriteTextRejectsUnrepresentableKeys: the line-oriented format cannot
// carry keys that would be trimmed, split, or read back as comments; the
// writer must refuse them rather than corrupt the stream.
func TestWriteTextRejectsUnrepresentableKeys(t *testing.T) {
	bad := []string{"", " padded", "padded ", "with\nnewline", "with\rcr", "#comment"}
	for _, key := range bad {
		var buf bytes.Buffer
		if _, err := WriteText(&buf, NewSliceSource([]Request{{Key: key, Size: 1, Cost: 1}})); err == nil {
			t.Errorf("WriteText accepted unrepresentable key %q", key)
		}
	}
	// The binary format carries all of them.
	for _, key := range bad[1:] { // empty keys stay invalid semantically
		var buf bytes.Buffer
		if _, err := WriteBinary(&buf, NewSliceSource([]Request{{Key: key, Size: 1, Cost: 1}})); err != nil {
			t.Errorf("WriteBinary rejected key %q: %v", key, err)
		}
		got, err := Materialize(NewBinaryReader(&buf))
		if err != nil || len(got) != 1 || got[0].Key != key {
			t.Errorf("binary round-trip of %q failed: %v %v", key, got, err)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	_, err := Materialize(NewBinaryReader(strings.NewReader("NOTATRACE")))
	if err == nil {
		t.Fatal("expected magic error")
	}
}

func TestBinaryTruncated(t *testing.T) {
	reqs := sampleTrace(t)[:10]
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, NewSliceSource(reqs)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	_, err := Materialize(NewBinaryReader(bytes.NewReader(raw[:len(raw)-3])))
	if err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, NewSliceSource(nil)); err != nil {
		t.Fatal(err)
	}
	got, err := Materialize(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d rows from empty trace", len(got))
	}
}
