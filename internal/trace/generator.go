package trace

import (
	"math"
	"math/rand"
	"strconv"
)

// SizeModel draws a key's size. It is invoked once per key with a
// deterministic per-key random stream, so sizes do not depend on reference
// order.
type SizeModel func(rng *rand.Rand) int64

// CostModel draws a key's cost given its size; like SizeModel it runs once
// per key on a deterministic stream.
type CostModel func(rng *rand.Rand, size int64) int64

// SizeConstant returns a model assigning every key the same size.
func SizeConstant(s int64) SizeModel {
	return func(*rand.Rand) int64 { return s }
}

// SizeUniform returns sizes uniform over [min, max].
func SizeUniform(min, max int64) SizeModel {
	return func(rng *rand.Rand) int64 {
		if max <= min {
			return min
		}
		return min + rng.Int63n(max-min+1)
	}
}

// SizeLogNormal returns sizes with a log-normal distribution around median,
// clamped to [1, clampMax]. BG's key-value pairs (member profiles, friend
// lists) have a heavy right tail that this models.
func SizeLogNormal(median float64, sigma float64, clampMax int64) SizeModel {
	return func(rng *rand.Rand) int64 {
		v := int64(math.Round(median * math.Exp(rng.NormFloat64()*sigma)))
		if v < 1 {
			v = 1
		}
		if clampMax > 0 && v > clampMax {
			v = clampMax
		}
		return v
	}
}

// CostConstant assigns every key the same cost (Figure 7's workload).
func CostConstant(c int64) CostModel {
	return func(*rand.Rand, int64) int64 { return c }
}

// CostChoice assigns one of the given costs with equal probability — the
// paper's synthetic {1, 100, 10K} model.
func CostChoice(costs ...int64) CostModel {
	return func(rng *rand.Rand, _ int64) int64 {
		return costs[rng.Intn(len(costs))]
	}
}

// CostUniform assigns costs uniform over [min, max] — the §3.2 equi-sized
// trace "with many more distinct cost values".
func CostUniform(min, max int64) CostModel {
	return func(rng *rand.Rand, _ int64) int64 {
		if max <= min {
			return min
		}
		return min + rng.Int63n(max-min+1)
	}
}

// CostRDBMS models the paper's measured alternative where cost is the time
// to recompute the pair with SQL queries: a per-key base latency plus a
// size-proportional transfer term, in microseconds.
func CostRDBMS(baseMicros, microsPerKB int64) CostModel {
	return func(rng *rand.Rand, size int64) int64 {
		base := baseMicros/2 + rng.Int63n(baseMicros+1)
		return base + size*microsPerKB/1024
	}
}

// Config parameterizes a Generator.
type Config struct {
	// Keys is the number of distinct keys.
	Keys int
	// Requests is the trace length.
	Requests int64
	// Seed makes the trace reproducible.
	Seed int64
	// Prefix namespaces keys (distinct prefixes make disjoint traces for
	// the §3.1 evolving-workload experiment).
	Prefix string
	// Dist selects key popularity; nil defaults to the 70/20 hotspot.
	Dist KeyDist
	// Size draws per-key sizes; nil defaults to SizeUniform(100, 1000).
	Size SizeModel
	// Cost draws per-key costs; nil defaults to CostChoice(1, 100, 10000).
	Cost CostModel
}

// Generator produces a deterministic request stream. Key metadata (size,
// cost) is a pure function of (Seed, key index), so the same configuration
// always describes the same key population regardless of reference order.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	dist    KeyDist
	metas   []meta
	haveTag []bool
	emitted int64
}

type meta struct {
	size int64
	cost int64
}

var _ Source = (*Generator)(nil)

// NewGenerator builds a Generator, applying defaults for nil fields.
func NewGenerator(cfg Config) *Generator {
	if cfg.Keys <= 0 {
		cfg.Keys = 1
	}
	if cfg.Dist == nil {
		cfg.Dist = NewHotspot(cfg.Keys)
	}
	if cfg.Size == nil {
		// BG's member profiles share a schema, so their sizes cluster
		// in a narrow band; wide size variation is a separate workload
		// (NewVariableSizeTrace / Figure 7).
		cfg.Size = SizeUniform(400, 600)
	}
	if cfg.Cost == nil {
		cfg.Cost = CostChoice(1, 100, 10000)
	}
	return &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		dist:    cfg.Dist,
		metas:   make([]meta, cfg.Keys),
		haveTag: make([]bool, cfg.Keys),
	}
}

// Next implements Source.
func (g *Generator) Next() (Request, bool) {
	if g.emitted >= g.cfg.Requests {
		return Request{}, false
	}
	g.emitted++
	idx := g.dist.SampleKey(g.rng)
	m := g.meta(idx)
	return Request{Key: g.Key(idx), Size: m.size, Cost: m.cost}, true
}

// Err implements Source.
func (g *Generator) Err() error { return nil }

// Key returns the name of key idx.
func (g *Generator) Key(idx int) string {
	return g.cfg.Prefix + "k" + strconv.Itoa(idx)
}

// UniqueBytes returns the total size of all keys in the key space. Note
// this covers the whole population; a short trace may reference fewer keys
// (use trace.UniqueBytes on a materialized trace for the exact figure).
func (g *Generator) UniqueBytes() int64 {
	var total int64
	for i := 0; i < g.cfg.Keys; i++ {
		total += g.meta(i).size
	}
	return total
}

// meta lazily materializes key idx's size and cost from a per-key
// deterministic stream.
func (g *Generator) meta(idx int) meta {
	if g.haveTag[idx] {
		return g.metas[idx]
	}
	krng := rand.New(rand.NewSource(int64(mix64(uint64(g.cfg.Seed), uint64(idx)))))
	size := g.cfg.Size(krng)
	if size < 1 {
		size = 1
	}
	cost := g.cfg.Cost(krng, size)
	if cost < 0 {
		cost = 0
	}
	g.metas[idx] = meta{size: size, cost: cost}
	g.haveTag[idx] = true
	return g.metas[idx]
}

// mix64 is a splitmix64-style hash combining the seed and key index into a
// per-key seed.
func mix64(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ---------------------------------------------------------------------------
// Paper workload presets
// ---------------------------------------------------------------------------

// NewBGTrace is the §3 default workload: 70/20 skew, sizes uniform in
// [100, 1000] bytes, synthetic per-key costs from {1, 100, 10K}.
func NewBGTrace(seed int64, keys int, requests int64) *Generator {
	return NewGenerator(Config{
		Keys:     keys,
		Requests: requests,
		Seed:     seed,
	})
}

// NewVariableSizeTrace is the §3.2 / Figure 7 workload: variable-sized
// key-value pairs (heavy-tailed) whose cost is identical.
func NewVariableSizeTrace(seed int64, keys int, requests int64) *Generator {
	return NewGenerator(Config{
		Keys:     keys,
		Requests: requests,
		Seed:     seed,
		Size:     SizeLogNormal(500, 1.0, 20000),
		Cost:     CostConstant(1),
	})
}

// NewEquiSizeTrace is the §3.2 / Figure 8 workload: equal-sized key-value
// pairs with continuously varying costs.
func NewEquiSizeTrace(seed int64, keys int, requests int64) *Generator {
	return NewGenerator(Config{
		Keys:     keys,
		Requests: requests,
		Seed:     seed,
		Size:     SizeConstant(500),
		Cost:     CostUniform(1, 100000),
	})
}

// NewEvolvingTraces builds n back-to-back traces with disjoint key spaces
// (§3.1): once the stream moves to trace i+1, no key of trace i is ever
// referenced again.
func NewEvolvingTraces(seed int64, n, keysEach int, requestsEach int64) []Source {
	out := make([]Source, n)
	for i := 0; i < n; i++ {
		out[i] = NewGenerator(Config{
			Keys:     keysEach,
			Requests: requestsEach,
			Seed:     seed + int64(i)*1_000_003,
			Prefix:   "tf" + strconv.Itoa(i+1) + "-",
		})
	}
	return out
}
