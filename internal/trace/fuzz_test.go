package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTextLine ensures the text parser never panics and that accepted
// lines round-trip.
func FuzzParseTextLine(f *testing.F) {
	f.Add("key,10,5")
	f.Add("user,profile,42,10,5")
	f.Add(",1,1")
	f.Add("key,-1,5")
	f.Add("key,999999999999999999999,5")
	f.Add("key,10")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		req, err := parseTextLine(line)
		if err != nil {
			return
		}
		if req.Key == "" || req.Size < 0 || req.Cost < 0 {
			t.Fatalf("parser accepted invalid request %+v from %q", req, line)
		}
		if strings.ContainsAny(req.Key, "\r\n") {
			t.Fatalf("parser accepted key with line breaks from %q", line)
		}
		// Round-trip: re-encode and re-parse.
		var buf bytes.Buffer
		if _, err := WriteText(&buf, NewSliceSource([]Request{req})); err != nil {
			t.Fatal(err)
		}
		got, err := Materialize(NewTextReader(&buf))
		if err != nil {
			t.Fatalf("round-trip parse failed for %+v: %v", req, err)
		}
		if len(got) != 1 || got[0] != req {
			t.Fatalf("round-trip mismatch: %+v vs %+v", got, req)
		}
	})
}

// FuzzBinaryReader ensures the binary reader never panics or over-allocates
// on corrupt input.
func FuzzBinaryReader(f *testing.F) {
	// Seed with a valid trace and some corruptions.
	var valid bytes.Buffer
	_, _ = WriteBinary(&valid, NewSliceSource([]Request{
		{Key: "alpha", Size: 10, Cost: 5},
		{Key: "beta", Size: 20, Cost: 1},
	}))
	f.Add(valid.Bytes())
	f.Add([]byte("CAMPTRC1"))
	f.Add([]byte("NOTMAGIC"))
	f.Add(valid.Bytes()[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBinaryReader(bytes.NewReader(data))
		count := 0
		for {
			req, ok := r.Next()
			if !ok {
				break
			}
			if req.Size < 0 || req.Cost < 0 {
				t.Fatalf("reader produced negative size/cost: %+v", req)
			}
			count++
			if count > 1<<20 {
				t.Fatal("reader produced implausibly many rows")
			}
		}
		_ = r.Err()
	})
}
