// Package trace generates and stores key-value reference traces modeled on
// the BG social-networking benchmark workloads used in §3 of the CAMP paper.
//
// A trace is a stream of requests; each request names a key together with
// the key's size and cost. Per the paper, a key's size and cost are fixed
// for the whole trace (assigned when the key is first minted), and the
// reference pattern is skewed so that roughly 70% of requests touch 20% of
// the keys. Several size/cost models reproduce the paper's workload
// variants: synthetic costs drawn from {1, 100, 10K} (§3), variable sizes
// with constant cost (§3.2, Figure 7), and equal sizes with continuously
// varying costs (§3.2, Figure 8).
package trace

import (
	"math"
	"math/rand"
)

// Request is one key-value reference in a trace.
type Request struct {
	// Key identifies the referenced key-value pair.
	Key string
	// Size is the pair's size in bytes (fixed per key).
	Size int64
	// Cost is the price to recompute the pair on a miss (fixed per key).
	Cost int64
}

// Source is a stream of requests. Implementations follow the bufio.Scanner
// pattern: Next returns false at the end of the stream or on error, and Err
// reports the error, if any, afterwards.
type Source interface {
	// Next returns the next request, or ok == false when exhausted.
	Next() (req Request, ok bool)
	// Err returns the first error encountered, or nil on clean EOF.
	Err() error
}

// SliceSource replays an in-memory request slice.
type SliceSource struct {
	reqs []Request
	pos  int
}

// NewSliceSource returns a Source over reqs. The slice is not copied.
func NewSliceSource(reqs []Request) *SliceSource { return &SliceSource{reqs: reqs} }

// Next implements Source.
func (s *SliceSource) Next() (Request, bool) {
	if s.pos >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.pos]
	s.pos++
	return r, true
}

// Err implements Source.
func (s *SliceSource) Err() error { return nil }

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Materialize drains src into a slice.
func Materialize(src Source) ([]Request, error) {
	var out []Request
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, src.Err()
}

// UniqueBytes returns the total size of the distinct keys in reqs — the
// denominator of the paper's "cache size ratio" (KVS memory divided by the
// total size of the unique objects in the trace).
func UniqueBytes(reqs []Request) int64 {
	seen := make(map[string]struct{}, len(reqs)/4+1)
	var total int64
	for _, r := range reqs {
		if _, ok := seen[r.Key]; ok {
			continue
		}
		seen[r.Key] = struct{}{}
		total += r.Size
	}
	return total
}

// Concat chains sources back to back, as in the §3.1 evolving-access-pattern
// experiment that replays ten disjoint trace files in sequence.
func Concat(sources ...Source) Source { return &concatSource{sources: sources} }

type concatSource struct {
	sources []Source
	idx     int
	err     error
}

func (c *concatSource) Next() (Request, bool) {
	for c.idx < len(c.sources) {
		r, ok := c.sources[c.idx].Next()
		if ok {
			return r, true
		}
		if err := c.sources[c.idx].Err(); err != nil {
			c.err = err
			return Request{}, false
		}
		c.idx++
	}
	return Request{}, false
}

func (c *concatSource) Err() error { return c.err }

// ---------------------------------------------------------------------------
// Key popularity distributions
// ---------------------------------------------------------------------------

// KeyDist samples key indices in [0, n).
type KeyDist interface {
	// SampleKey returns a key index using rng.
	SampleKey(rng *rand.Rand) int
	// NumKeys returns the key-space size n.
	NumKeys() int
}

// Hotspot is the paper's stated skew: a fraction HotAccess of requests is
// spread uniformly over the first HotFraction of the key space, the rest
// over the remaining keys. The defaults (0.7, 0.2) give "approximately 70%
// of requests referencing 20% of keys".
type Hotspot struct {
	N           int
	HotFraction float64 // fraction of keys that are hot (default 0.2)
	HotAccess   float64 // fraction of requests hitting hot keys (default 0.7)
}

// NewHotspot returns the paper's default 70/20 hotspot distribution.
func NewHotspot(n int) Hotspot { return Hotspot{N: n, HotFraction: 0.2, HotAccess: 0.7} }

// SampleKey implements KeyDist.
func (h Hotspot) SampleKey(rng *rand.Rand) int {
	hot := int(float64(h.N) * h.HotFraction)
	if hot < 1 {
		hot = 1
	}
	if hot > h.N {
		hot = h.N
	}
	if rng.Float64() < h.HotAccess {
		return rng.Intn(hot)
	}
	if h.N == hot {
		return rng.Intn(h.N)
	}
	return hot + rng.Intn(h.N-hot)
}

// NumKeys implements KeyDist.
func (h Hotspot) NumKeys() int { return h.N }

// Zipf samples key indices with probability proportional to 1/(i+1)^S using
// an inverse-CDF table. It supports any exponent S > 0 (math/rand's Zipf
// requires S > 1).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf distribution over n keys with exponent s.
func NewZipf(n int, s float64) *Zipf {
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// SampleKey implements KeyDist via binary search over the CDF.
func (z *Zipf) SampleKey(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// NumKeys implements KeyDist.
func (z *Zipf) NumKeys() int { return len(z.cdf) }

// Uniform spreads requests evenly over n keys.
type Uniform struct{ N int }

// SampleKey implements KeyDist.
func (u Uniform) SampleKey(rng *rand.Rand) int { return rng.Intn(u.N) }

// NumKeys implements KeyDist.
func (u Uniform) NumKeys() int { return u.N }
