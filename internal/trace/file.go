package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text trace format: one request per line, "key,size,cost" (the paper's
// "each row identifies a referenced key-value pair, its size, and cost").
// Lines starting with '#' and blank lines are ignored.

// validateTextKey rejects keys the line-oriented text format cannot
// represent faithfully: empty or whitespace-padded keys, keys with line
// breaks, and keys that would parse back as comments. The binary format
// carries arbitrary keys.
func validateTextKey(key string) error {
	switch {
	case key == "":
		return errors.New("empty key")
	case strings.TrimSpace(key) != key:
		return errors.New("key has leading or trailing whitespace")
	case strings.ContainsAny(key, "\r\n"):
		return errors.New("key contains line breaks")
	case strings.HasPrefix(key, "#"):
		return errors.New("key starts with the comment marker '#'")
	}
	return nil
}

// WriteText streams src to w in the text format. Keys the format cannot
// represent (see validateTextKey) are reported as errors; use the binary
// format for arbitrary keys.
func WriteText(w io.Writer, src Source) (n int64, err error) {
	bw := bufio.NewWriter(w)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if err := validateTextKey(r.Key); err != nil {
			return n, fmt.Errorf("request %d: %w", n, err)
		}
		if _, err := bw.WriteString(r.Key); err != nil {
			return n, err
		}
		if _, err := bw.WriteString("," + strconv.FormatInt(r.Size, 10) + "," + strconv.FormatInt(r.Cost, 10) + "\n"); err != nil {
			return n, err
		}
		n++
	}
	if err := src.Err(); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// TextReader reads the text trace format as a Source.
type TextReader struct {
	sc   *bufio.Scanner
	line int
	err  error
}

var _ Source = (*TextReader)(nil)

// NewTextReader wraps r in a streaming text-format Source.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &TextReader{sc: sc}
}

// Next implements Source.
func (t *TextReader) Next() (Request, bool) {
	if t.err != nil {
		return Request{}, false
	}
	for t.sc.Scan() {
		t.line++
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := parseTextLine(line)
		if err != nil {
			t.err = fmt.Errorf("line %d: %w", t.line, err)
			return Request{}, false
		}
		return req, true
	}
	t.err = t.sc.Err()
	return Request{}, false
}

// Err implements Source.
func (t *TextReader) Err() error { return t.err }

func parseTextLine(line string) (Request, error) {
	// Split from the right so keys may contain commas.
	j := strings.LastIndexByte(line, ',')
	if j < 0 {
		return Request{}, errors.New("expected key,size,cost")
	}
	i := strings.LastIndexByte(line[:j], ',')
	if i < 0 {
		return Request{}, errors.New("expected key,size,cost")
	}
	key := line[:i]
	if err := validateTextKey(key); err != nil {
		return Request{}, err
	}
	size, err := strconv.ParseInt(strings.TrimSpace(line[i+1:j]), 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("bad size: %w", err)
	}
	cost, err := strconv.ParseInt(strings.TrimSpace(line[j+1:]), 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("bad cost: %w", err)
	}
	if size < 0 || cost < 0 {
		return Request{}, errors.New("negative size or cost")
	}
	return Request{Key: key, Size: size, Cost: cost}, nil
}

// Binary trace format: magic "CAMPTRC1", then per request a uvarint key
// length, the key bytes, and uvarint size and cost. Compact and fast for
// multi-million-row traces.

var binaryMagic = []byte("CAMPTRC1")

// WriteBinary streams src to w in the binary format.
func WriteBinary(w io.Writer, src Source) (n int64, err error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic); err != nil {
		return 0, err
	}
	var buf [binary.MaxVarintLen64]byte
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		k := binary.PutUvarint(buf[:], uint64(len(r.Key)))
		if _, err := bw.Write(buf[:k]); err != nil {
			return n, err
		}
		if _, err := bw.WriteString(r.Key); err != nil {
			return n, err
		}
		k = binary.PutUvarint(buf[:], uint64(r.Size))
		if _, err := bw.Write(buf[:k]); err != nil {
			return n, err
		}
		k = binary.PutUvarint(buf[:], uint64(r.Cost))
		if _, err := bw.Write(buf[:k]); err != nil {
			return n, err
		}
		n++
	}
	if err := src.Err(); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// BinaryReader reads the binary trace format as a Source.
type BinaryReader struct {
	br      *bufio.Reader
	err     error
	started bool
}

var _ Source = (*BinaryReader)(nil)

// NewBinaryReader wraps r in a streaming binary-format Source.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{br: bufio.NewReader(r)}
}

// Next implements Source.
func (b *BinaryReader) Next() (Request, bool) {
	if b.err != nil {
		return Request{}, false
	}
	if !b.started {
		b.started = true
		magic := make([]byte, len(binaryMagic))
		if _, err := io.ReadFull(b.br, magic); err != nil {
			b.err = fmt.Errorf("read magic: %w", err)
			return Request{}, false
		}
		if string(magic) != string(binaryMagic) {
			b.err = errors.New("not a CAMP binary trace (bad magic)")
			return Request{}, false
		}
	}
	klen, err := binary.ReadUvarint(b.br)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			b.err = fmt.Errorf("read key length: %w", err)
		}
		return Request{}, false
	}
	const maxKeyLen = 1 << 20
	if klen > maxKeyLen {
		b.err = fmt.Errorf("key length %d exceeds limit", klen)
		return Request{}, false
	}
	key := make([]byte, klen)
	if _, err := io.ReadFull(b.br, key); err != nil {
		b.err = fmt.Errorf("read key: %w", err)
		return Request{}, false
	}
	size, err := binary.ReadUvarint(b.br)
	if err != nil {
		b.err = fmt.Errorf("read size: %w", err)
		return Request{}, false
	}
	cost, err := binary.ReadUvarint(b.br)
	if err != nil {
		b.err = fmt.Errorf("read cost: %w", err)
		return Request{}, false
	}
	return Request{Key: string(key), Size: int64(size), Cost: int64(cost)}, true
}

// Err implements Source.
func (b *BinaryReader) Err() error { return b.err }
