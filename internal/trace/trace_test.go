package trace

import (
	"math/rand"
	"testing"
)

func TestHotspotSkew(t *testing.T) {
	h := NewHotspot(1000)
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	hot := 0
	for i := 0; i < n; i++ {
		if h.SampleKey(rng) < 200 { // hot 20%
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.68 || frac > 0.72 {
		t.Fatalf("hot fraction = %.3f, want ~0.70", frac)
	}
}

func TestHotspotSmallN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4} {
		h := NewHotspot(n)
		for i := 0; i < 1000; i++ {
			k := h.SampleKey(rng)
			if k < 0 || k >= n {
				t.Fatalf("n=%d: sample %d out of range", n, k)
			}
		}
	}
}

func TestZipfMonotonePopularity(t *testing.T) {
	z := NewZipf(100, 0.9)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 100)
	for i := 0; i < 300000; i++ {
		counts[z.SampleKey(rng)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Fatalf("popularity not decreasing: c0=%d c10=%d c50=%d", counts[0], counts[10], counts[50])
	}
	// Key 0 should get roughly 1/H_n of the mass; just sanity-check > 3%.
	if counts[0] < 9000 {
		t.Fatalf("head key too unpopular: %d", counts[0])
	}
}

func TestUniformDist(t *testing.T) {
	u := Uniform{N: 10}
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[u.SampleKey(rng)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("key %d count %d, want ~10000", i, c)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []Request {
		g := NewBGTrace(42, 100, 5000)
		reqs, err := Materialize(g)
		if err != nil {
			t.Fatal(err)
		}
		return reqs
	}
	a, b := mk(), mk()
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("lengths %d, %d, want 5000", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must differ somewhere.
	g2 := NewBGTrace(43, 100, 5000)
	c, _ := Materialize(g2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestGeneratorStableMeta: a key's size and cost are fixed for the whole
// trace and independent of reference order.
func TestGeneratorStableMeta(t *testing.T) {
	g := NewBGTrace(7, 50, 20000)
	meta := make(map[string][2]int64)
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		if m, seen := meta[r.Key]; seen {
			if m[0] != r.Size || m[1] != r.Cost {
				t.Fatalf("key %s changed meta: %v -> %d/%d", r.Key, m, r.Size, r.Cost)
			}
		} else {
			meta[r.Key] = [2]int64{r.Size, r.Cost}
		}
	}
	// An independent generator with the same seed assigns the same metas
	// even though we query keys in a different order.
	g2 := NewGenerator(Config{Keys: 50, Requests: 1, Seed: 7})
	for i := 49; i >= 0; i-- {
		m := g2.meta(i)
		key := g2.Key(i)
		if got, ok := meta[key]; ok {
			if got[0] != m.size || got[1] != m.cost {
				t.Fatalf("key %s meta differs across generators: %v vs %d/%d", key, got, m.size, m.cost)
			}
		}
	}
}

func TestGeneratorCostChoice(t *testing.T) {
	g := NewBGTrace(11, 3000, 30000)
	reqs, _ := Materialize(g)
	counts := map[int64]int{}
	seen := map[string]bool{}
	for _, r := range reqs {
		if seen[r.Key] {
			continue
		}
		seen[r.Key] = true
		counts[r.Cost]++
	}
	if len(counts) != 3 {
		t.Fatalf("cost values = %v, want {1,100,10000}", counts)
	}
	total := counts[1] + counts[100] + counts[10000]
	for _, c := range []int64{1, 100, 10000} {
		frac := float64(counts[c]) / float64(total)
		if frac < 0.25 || frac > 0.42 {
			t.Fatalf("cost %d fraction %.3f, want ~1/3", c, frac)
		}
	}
}

func TestGeneratorUniqueBytes(t *testing.T) {
	g := NewBGTrace(5, 200, 100000)
	wantAll := g.UniqueBytes()
	reqs, _ := Materialize(g)
	got := UniqueBytes(reqs)
	// A long trace over 200 keys references essentially all of them.
	if got > wantAll {
		t.Fatalf("trace unique bytes %d exceeds population %d", got, wantAll)
	}
	if float64(got) < 0.95*float64(wantAll) {
		t.Fatalf("trace unique bytes %d too far below population %d", got, wantAll)
	}
}

func TestEvolvingTracesDisjoint(t *testing.T) {
	sources := NewEvolvingTraces(9, 3, 50, 1000)
	seen := make([]map[string]bool, 3)
	for i, src := range sources {
		seen[i] = make(map[string]bool)
		for {
			r, ok := src.Next()
			if !ok {
				break
			}
			seen[i][r.Key] = true
		}
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			for k := range seen[i] {
				if seen[j][k] {
					t.Fatalf("traces %d and %d share key %s", i, j, k)
				}
			}
		}
	}
}

func TestConcat(t *testing.T) {
	a := NewSliceSource([]Request{{Key: "a", Size: 1, Cost: 1}})
	b := NewSliceSource([]Request{{Key: "b", Size: 2, Cost: 2}, {Key: "c", Size: 3, Cost: 3}})
	src := Concat(a, b)
	reqs, err := Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 || reqs[0].Key != "a" || reqs[1].Key != "b" || reqs[2].Key != "c" {
		t.Fatalf("concat = %+v", reqs)
	}
}

func TestSizeCostModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if s := SizeConstant(42)(rng); s != 42 {
		t.Fatalf("SizeConstant = %d", s)
	}
	for i := 0; i < 1000; i++ {
		if s := SizeUniform(10, 20)(rng); s < 10 || s > 20 {
			t.Fatalf("SizeUniform out of range: %d", s)
		}
		if s := SizeLogNormal(500, 1, 2000)(rng); s < 1 || s > 2000 {
			t.Fatalf("SizeLogNormal out of range: %d", s)
		}
		if c := CostUniform(5, 9)(rng, 0); c < 5 || c > 9 {
			t.Fatalf("CostUniform out of range: %d", c)
		}
	}
	if c := CostConstant(7)(rng, 100); c != 7 {
		t.Fatalf("CostConstant = %d", c)
	}
	choice := CostChoice(1, 100)
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		seen[choice(rng, 0)] = true
	}
	if !seen[1] || !seen[100] || len(seen) != 2 {
		t.Fatalf("CostChoice values = %v", seen)
	}
	// RDBMS cost grows with size.
	rc := CostRDBMS(1000, 100)
	small := rc(rand.New(rand.NewSource(4)), 1024)
	large := rc(rand.New(rand.NewSource(4)), 1024*100)
	if large <= small {
		t.Fatalf("RDBMS cost should grow with size: %d vs %d", small, large)
	}
	// Degenerate ranges collapse to min.
	if s := SizeUniform(10, 10)(rng); s != 10 {
		t.Fatalf("degenerate SizeUniform = %d", s)
	}
	if c := CostUniform(3, 3)(rng, 0); c != 3 {
		t.Fatalf("degenerate CostUniform = %d", c)
	}
}

func TestPresets(t *testing.T) {
	vs := NewVariableSizeTrace(1, 500, 5000)
	reqs, _ := Materialize(vs)
	sizes := map[int64]bool{}
	for _, r := range reqs {
		if r.Cost != 1 {
			t.Fatalf("variable-size trace must have constant cost 1, got %d", r.Cost)
		}
		sizes[r.Size] = true
	}
	if len(sizes) < 50 {
		t.Fatalf("variable-size trace has only %d distinct sizes", len(sizes))
	}
	eq := NewEquiSizeTrace(1, 500, 5000)
	reqs, _ = Materialize(eq)
	costs := map[int64]bool{}
	for _, r := range reqs {
		if r.Size != 500 {
			t.Fatalf("equi-size trace must have size 500, got %d", r.Size)
		}
		costs[r.Cost] = true
	}
	if len(costs) < 50 {
		t.Fatalf("equi-size trace has only %d distinct costs", len(costs))
	}
}

func TestSliceSourceReset(t *testing.T) {
	s := NewSliceSource([]Request{{Key: "a"}, {Key: "b"}})
	s.Next()
	s.Next()
	if _, ok := s.Next(); ok {
		t.Fatal("source should be exhausted")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r.Key != "a" {
		t.Fatal("Reset should rewind")
	}
}
