package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowlogKeyCap is the most key bytes a slowlog entry retains; longer keys
// are truncated. A fixed-size copy keeps the record path allocation-free.
const SlowlogKeyCap = 64

// SlowlogSize is the ring capacity: the newest SlowlogSize slow commands
// are retained, older ones are overwritten.
const SlowlogSize = 128

// SlowEntry is one recorded slow command.
type SlowEntry struct {
	// ID increments per recorded entry for the server's lifetime (reset
	// does not rewind it), so a reader can tell new entries from ones it
	// has already seen.
	ID uint64
	// Unix is the command's start time in Unix seconds.
	Unix int64
	// Dur is the command's wall time.
	Dur time.Duration
	// Verb is the command verb ("get", "set", ...). It must be a constant
	// or otherwise retained string: the slowlog stores it as-is.
	Verb string

	key    [SlowlogKeyCap]byte
	keyLen uint8
}

// Key returns the (possibly truncated) key the command addressed.
func (e *SlowEntry) Key() string { return string(e.key[:e.keyLen]) }

// Slowlog is a fixed-capacity ring of the slowest recent commands. The hot
// path calls Slow (one atomic load and a compare) per command and Record
// only past the threshold, so steady-state traffic under the threshold
// costs one load and nothing else. The threshold is adjustable at runtime.
//
// The zero value has a zero threshold, which records every command; callers
// should SetThreshold before serving traffic.
type Slowlog struct {
	threshold atomic.Int64 // ns; < 0 disables recording entirely
	nextID    atomic.Uint64

	mu    sync.Mutex
	ring  [SlowlogSize]SlowEntry
	next  int // ring index the next entry lands in
	count int // live entries, <= SlowlogSize
}

// SetThreshold sets the duration at or above which commands are recorded.
// Zero records everything; negative disables the slowlog.
func (sl *Slowlog) SetThreshold(d time.Duration) { sl.threshold.Store(int64(d)) }

// Threshold returns the current threshold.
func (sl *Slowlog) Threshold() time.Duration { return time.Duration(sl.threshold.Load()) }

// Slow reports whether a command of duration d should be recorded. It is
// the hot-path gate: one atomic load, no allocation.
func (sl *Slowlog) Slow(d time.Duration) bool {
	t := sl.threshold.Load()
	return t >= 0 && int64(d) >= t
}

// Record adds one slow command. The key is copied (truncated to
// SlowlogKeyCap) into the ring entry, so the caller may reuse its buffer.
func (sl *Slowlog) Record(verb string, key []byte, d time.Duration, at time.Time) {
	id := sl.nextID.Add(1)
	if len(key) > SlowlogKeyCap {
		key = key[:SlowlogKeyCap]
	}
	sl.mu.Lock()
	e := &sl.ring[sl.next]
	e.ID = id
	e.Unix = at.Unix()
	e.Dur = d
	e.Verb = verb
	e.keyLen = uint8(copy(e.key[:], key))
	sl.next = (sl.next + 1) % SlowlogSize
	if sl.count < SlowlogSize {
		sl.count++
	}
	sl.mu.Unlock()
}

// Entries returns the retained entries, newest first.
func (sl *Slowlog) Entries() []SlowEntry {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	out := make([]SlowEntry, 0, sl.count)
	for i := 1; i <= sl.count; i++ {
		out = append(out, sl.ring[(sl.next-i+SlowlogSize)%SlowlogSize])
	}
	return out
}

// Len returns the number of retained entries.
func (sl *Slowlog) Len() int {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.count
}

// Reset discards all retained entries. IDs keep incrementing.
func (sl *Slowlog) Reset() {
	sl.mu.Lock()
	sl.next, sl.count = 0, 0
	sl.mu.Unlock()
}
