// Package metrics is the server's zero-allocation instrumentation layer:
// log-bucketed fixed-size latency histograms with atomic buckets, a
// ring-buffer slowlog, and a small registry that renders everything as
// Prometheus text exposition format.
//
// The recording paths (Histogram.Observe, Slowlog.Slow) are allocation-free
// and lock-free, so they can sit on the kvserver request loop without
// moving the alloc-gate budget: an observation is two atomic adds, and the
// slowlog's threshold check is one atomic load. Only scrapes — stats
// commands and /metrics — take locks or allocate, and they copy the atomic
// state out bucket by bucket, so a concurrent scrape can lag the counters
// but never observes a torn or negative value.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed histogram size. Bucket i counts observations with
// d <= BucketBound(i); the last bucket is the +Inf overflow. With a 256ns
// first bound and power-of-two growth the range runs to ~4.5 minutes, which
// covers everything a cache server can plausibly do to a request.
const NumBuckets = 32

// BucketBound returns bucket i's inclusive upper bound. The last bucket's
// bound is effectively +Inf; callers exporting cumulative buckets should
// render it that way.
func BucketBound(i int) time.Duration {
	return time.Duration(256) << uint(i)
}

// bucketIndex maps a duration to its bucket: 256ns log2 buckets, clamped at
// both ends.
func bucketIndex(d time.Duration) int {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// Observations at exactly a bound belong to that bucket (d <= bound), so
	// index on (ns-1)>>8: 256ns lands in bucket 0, 257ns in bucket 1.
	idx := bits.Len64(uint64(ns-1) >> 8)
	if ns == 0 {
		idx = 0
	}
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// Histogram is a fixed-size log-bucketed latency histogram. The zero value
// is ready to use; all methods are safe for concurrent use. Observe is two
// atomic adds: no allocation, no lock, no false sharing across histograms
// embedded in different shards.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64 // total observed nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
}

// Snapshot copies the histogram's atomic state out for reporting. Each
// bucket is read atomically, so concurrent Observes can make the copy lag
// but never tear it; Count is derived from the copied buckets, so it always
// equals their sum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     int64 // nanoseconds
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1) — a conservative estimate, never below the true
// value by more than one bucket's width. Zero observations yield 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// Mean returns the average observed duration, or 0 with no observations.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(uint64(s.Sum) / s.Count)
}
