package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{256, 0}, // exactly the first bound stays in bucket 0
		{257, 1}, // one past it moves up
		{512, 1}, // exactly bound(1)
		{513, 2},
		{-5, 0},
		{time.Hour, NumBuckets - 1}, // overflow clamps to the last bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's bound must index to that bucket (d <= bound(i)).
	for i := 0; i < NumBuckets-1; i++ {
		if got := bucketIndex(BucketBound(i)); got != i {
			t.Errorf("bucketIndex(BucketBound(%d)) = %d", i, got)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow ones: p50 must sit in the fast bucket's
	// range, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(200 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 > time.Microsecond {
		t.Errorf("p50 = %v, want within the fast bucket", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 100*time.Microsecond || p99 > time.Millisecond {
		t.Errorf("p99 = %v, want a bound covering 100µs", p99)
	}
	if s.Quantile(1) < p99 {
		t.Errorf("p100 %v < p99 %v", s.Quantile(1), p99)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Errorf("empty snapshot quantile/mean nonzero")
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	if m := h.Snapshot().Mean(); m != 2*time.Millisecond {
		t.Fatalf("mean = %v, want 2ms", m)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines while
// snapshotting: every snapshot's Count must equal the sum of its buckets
// (torn reads would break that identity), and the final totals must match.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, each = 8, 10000
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var sum uint64
			for _, b := range s.Buckets {
				sum += b
			}
			if sum != s.Count {
				t.Errorf("torn snapshot: count %d != bucket sum %d", s.Count, sum)
				return
			}
			if s.Sum < 0 {
				t.Errorf("negative sum %d", s.Sum)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	if s := h.Snapshot(); s.Count != goroutines*each {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*each)
	}
}

func TestSlowlogRing(t *testing.T) {
	var sl Slowlog
	sl.SetThreshold(time.Millisecond)
	if sl.Slow(time.Microsecond) {
		t.Fatal("sub-threshold duration reported slow")
	}
	if !sl.Slow(time.Millisecond) {
		t.Fatal("at-threshold duration not slow")
	}
	now := time.Unix(1700000000, 0)
	for i := 0; i < SlowlogSize+10; i++ {
		sl.Record("get", []byte("key"), time.Duration(i)*time.Millisecond, now)
	}
	if sl.Len() != SlowlogSize {
		t.Fatalf("len = %d, want %d", sl.Len(), SlowlogSize)
	}
	entries := sl.Entries()
	if len(entries) != SlowlogSize {
		t.Fatalf("entries = %d", len(entries))
	}
	// Newest first, oldest 10 overwritten.
	if entries[0].ID != SlowlogSize+10 {
		t.Errorf("newest ID = %d, want %d", entries[0].ID, SlowlogSize+10)
	}
	if entries[len(entries)-1].ID != 11 {
		t.Errorf("oldest ID = %d, want 11", entries[len(entries)-1].ID)
	}
	if entries[0].Verb != "get" || entries[0].Key() != "key" || entries[0].Unix != now.Unix() {
		t.Errorf("entry fields: %+v", entries[0])
	}
	sl.Reset()
	if sl.Len() != 0 || len(sl.Entries()) != 0 {
		t.Fatal("reset left entries")
	}
	// IDs keep incrementing across reset.
	sl.Record("set", []byte("k2"), time.Second, now)
	if e := sl.Entries(); e[0].ID != SlowlogSize+11 {
		t.Errorf("post-reset ID = %d, want %d", e[0].ID, SlowlogSize+11)
	}
}

func TestSlowlogKeyTruncation(t *testing.T) {
	var sl Slowlog
	long := strings.Repeat("k", SlowlogKeyCap+40)
	sl.Record("set", []byte(long), time.Second, time.Now())
	if got := sl.Entries()[0].Key(); got != long[:SlowlogKeyCap] {
		t.Fatalf("key = %q (%d bytes), want %d-byte prefix", got, len(got), SlowlogKeyCap)
	}
}

func TestSlowlogDisabled(t *testing.T) {
	var sl Slowlog
	sl.SetThreshold(-1)
	if sl.Slow(time.Hour) {
		t.Fatal("disabled slowlog reported slow")
	}
}

func TestRegistryText(t *testing.T) {
	var r Registry
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(10 * time.Millisecond)
	r.Register("test_ops_total", "ops by verb", TypeCounter, func(tw *TextWriter) {
		tw.Sample("", 42, "verb", "get")
		tw.Sample("", 7, "verb", `we"ird\`)
	})
	r.Register("test_items", "current items", TypeGauge, func(tw *TextWriter) {
		tw.Sample("", 3.5)
	})
	r.Register("test_latency_seconds", "latency", TypeHistogram, func(tw *TextWriter) {
		tw.Histogram(h.Snapshot(), "verb", "get")
	})
	r.Register("test_empty", "a family with no samples", TypeGauge, func(tw *TextWriter) {})

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	fams, err := ValidateText(text)
	if err != nil {
		t.Fatalf("output failed validation: %v\n%s", err, text)
	}
	if err := RequireFamilies(fams, "test_ops_total", "test_items", "test_latency_seconds", "test_empty"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`test_ops_total{verb="get"} 42`,
		`test_ops_total{verb="we\"ird\\"} 7`,
		"test_items 3.5",
		`test_latency_seconds_bucket{verb="get",le="+Inf"} 2`,
		`test_latency_seconds_count{verb="get"} 2`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Histogram buckets must be cumulative and end at the count.
	if !strings.Contains(text, "test_latency_seconds_sum") {
		t.Errorf("missing _sum")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	var r Registry
	r.Register("dup", "", TypeGauge, func(*TextWriter) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.Register("dup", "", TypeGauge, func(*TextWriter) {})
}

func TestValidateTextRejects(t *testing.T) {
	bad := []string{
		"no_family 1",                         // sample without TYPE
		"# TYPE x wat\nx 1",                   // unknown type
		"# TYPE x gauge\nx{a=\"b\" 1",         // unterminated labels
		"# TYPE x gauge\nx notanumber",        // bad value
		"# TYPE 9bad gauge\n",                 // bad name
		"# TYPE x gauge\n# TYPE x gauge\nx 1", // duplicate TYPE
		"# TYPE x histogram\nx_bucketextra 1", // bogus suffix
	}
	for _, text := range bad {
		if _, err := ValidateText(text); err == nil {
			t.Errorf("ValidateText accepted %q", text)
		}
	}
	good := "# HELP x help text\n# TYPE x histogram\nx_bucket{le=\"+Inf\"} 5\nx_sum 1.5\nx_count 5\n"
	if _, err := ValidateText(good); err != nil {
		t.Errorf("ValidateText rejected valid text: %v", err)
	}
}
