package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Prometheus metric family types.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Registry holds metric families and renders them as Prometheus text
// exposition format (version 0.0.4). Families are collected at scrape time
// through callbacks, so gauges always report live values and the registry
// itself holds no state to keep in sync.
type Registry struct {
	mu   sync.Mutex
	fams []family
}

type family struct {
	name, help, typ string
	collect         func(*TextWriter)
}

// Register adds a metric family. name must be a valid Prometheus metric
// name, typ one of TypeCounter/TypeGauge/TypeHistogram. collect is called
// once per scrape with a TextWriter scoped to the family; it may emit any
// number of samples (including none — the HELP/TYPE header is still
// written, so the family's presence is stable across scrapes).
func (r *Registry) Register(name, help, typ string, collect func(*TextWriter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.fams {
		if f.name == name {
			panic("metrics: duplicate family " + name)
		}
	}
	r.fams = append(r.fams, family{name: name, help: help, typ: typ, collect: collect})
}

// WriteText renders every family to w in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	tw := &TextWriter{}
	for _, f := range fams {
		tw.buf = append(tw.buf, "# HELP "...)
		tw.buf = append(tw.buf, f.name...)
		tw.buf = append(tw.buf, ' ')
		tw.buf = append(tw.buf, escapeHelp(f.help)...)
		tw.buf = append(tw.buf, '\n')
		tw.buf = append(tw.buf, "# TYPE "...)
		tw.buf = append(tw.buf, f.name...)
		tw.buf = append(tw.buf, ' ')
		tw.buf = append(tw.buf, f.typ...)
		tw.buf = append(tw.buf, '\n')
		tw.family = f.name
		f.collect(tw)
	}
	_, err := w.Write(tw.buf)
	return err
}

// TextWriter accumulates exposition-format sample lines for one family at a
// time. Collect callbacks receive it scoped to their family name.
type TextWriter struct {
	family string
	buf    []byte
}

// Sample emits one sample line: <family><suffix>{labels} <value>. labels
// are name/value pairs; suffix is "" for plain counters and gauges, or
// "_bucket"/"_sum"/"_count" for histogram series.
func (tw *TextWriter) Sample(suffix string, value float64, labels ...string) {
	if len(labels)%2 != 0 {
		panic("metrics: odd label list")
	}
	tw.buf = append(tw.buf, tw.family...)
	tw.buf = append(tw.buf, suffix...)
	if len(labels) > 0 {
		tw.buf = append(tw.buf, '{')
		for i := 0; i < len(labels); i += 2 {
			if i > 0 {
				tw.buf = append(tw.buf, ',')
			}
			tw.buf = append(tw.buf, labels[i]...)
			tw.buf = append(tw.buf, '=', '"')
			tw.buf = append(tw.buf, escapeLabel(labels[i+1])...)
			tw.buf = append(tw.buf, '"')
		}
		tw.buf = append(tw.buf, '}')
	}
	tw.buf = append(tw.buf, ' ')
	tw.buf = appendFloat(tw.buf, value)
	tw.buf = append(tw.buf, '\n')
}

// Histogram emits a snapshot as a full Prometheus histogram: cumulative
// _bucket series with le bounds in seconds, then _sum and _count.
func (tw *TextWriter) Histogram(snap HistogramSnapshot, labels ...string) {
	le := append(append([]string(nil), labels...), "le", "")
	var cum uint64
	for i := 0; i < NumBuckets-1; i++ {
		cum += snap.Buckets[i]
		le[len(le)-1] = formatSeconds(BucketBound(i).Seconds())
		tw.Sample("_bucket", float64(cum), le...)
	}
	le[len(le)-1] = "+Inf"
	tw.Sample("_bucket", float64(snap.Count), le...)
	tw.Sample("_sum", float64(snap.Sum)/1e9, labels...)
	tw.Sample("_count", float64(snap.Count), labels...)
}

func appendFloat(buf []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return strconv.AppendInt(buf, int64(v), 10)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// ValidateText parses Prometheus text exposition format strictly enough to
// catch malformed output: every sample line must parse, every sample must
// belong to a declared family (histogram samples via their _bucket/_sum/
// _count suffixes), and TYPE lines must name a known type. It returns the
// set of family names declared, for presence checks. CI's metrics-gate and
// the scrape stress test share it.
func ValidateText(text string) (families map[string]string, err error) {
	families = map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if parts[0] == "" || !validMetricName(parts[0]) {
				return nil, fmt.Errorf("line %d: bad HELP name %q", lineNo, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !validMetricName(parts[0]) {
				return nil, fmt.Errorf("line %d: bad TYPE line %q", lineNo, line)
			}
			switch parts[1] {
			case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, parts[1])
			}
			if _, dup := families[parts[0]]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, parts[0])
			}
			families[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		name, rest, perr := parseSampleName(line)
		if perr != nil {
			return nil, fmt.Errorf("line %d: %v (%q)", lineNo, perr, line)
		}
		fam := name
		if typ, ok := families[fam]; !ok || typ == TypeHistogram {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, found := strings.CutSuffix(name, suffix); found {
					if families[base] == TypeHistogram {
						fam = base
						break
					}
				}
			}
		}
		if _, ok := families[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no declared family", lineNo, name)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
			return nil, fmt.Errorf("line %d: bad sample line %q", lineNo, line)
		}
		if _, ferr := strconv.ParseFloat(fields[0], 64); ferr != nil &&
			fields[0] != "+Inf" && fields[0] != "-Inf" && fields[0] != "NaN" {
			return nil, fmt.Errorf("line %d: bad sample value %q", lineNo, fields[0])
		}
	}
	return families, nil
}

// RequireFamilies checks that every name in want was declared; missing
// names are reported sorted, in one error.
func RequireFamilies(families map[string]string, want ...string) error {
	var missing []string
	for _, w := range want {
		if _, ok := families[w]; !ok {
			missing = append(missing, w)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return fmt.Errorf("metrics: missing families: %s", strings.Join(missing, ", "))
}

// parseSampleName splits a sample line into its metric name and the rest
// after the optional label set.
func parseSampleName(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", "", fmt.Errorf("no metric name")
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("bad metric name %q", name)
	}
	if line[i] == ' ' {
		return name, line[i+1:], nil
	}
	// Scan the label block, honoring escapes inside quoted values.
	inQuote := false
	for j := i + 1; j < len(line); j++ {
		switch {
		case inQuote && line[j] == '\\':
			j++
		case line[j] == '"':
			inQuote = !inQuote
		case !inQuote && line[j] == '}':
			if j+1 >= len(line) || line[j+1] != ' ' {
				return "", "", fmt.Errorf("missing value after labels")
			}
			return name, line[j+2:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label set")
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}
