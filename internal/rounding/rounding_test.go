package rounding

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// TestRoundTable1 reproduces Table 1 of the paper: CAMP's rounding with
// binary precision 4.
func TestRoundTable1(t *testing.T) {
	tests := []struct {
		name string
		give uint64
		want uint64
	}{
		{name: "table1/101101011", give: 0b101101011, want: 0b101100000},
		{name: "table1/001010011", give: 0b001010011, want: 0b001010000},
		{name: "table1/000001010", give: 0b000001010, want: 0b000001010},
		{name: "table1/000000111", give: 0b000000111, want: 0b000000111},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Round(tt.give, 4); got != tt.want {
				t.Errorf("Round(%b, 4) = %b, want %b", tt.give, got, tt.want)
			}
		})
	}
}

func TestRoundEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		give uint64
		p    uint
		want uint64
	}{
		{name: "zero", give: 0, p: 4, want: 0},
		{name: "one", give: 1, p: 1, want: 1},
		{name: "p1 keeps top bit", give: 0b1111, p: 1, want: 0b1000},
		{name: "p2", give: 0b1111, p: 2, want: 0b1100},
		{name: "exact power stays", give: 1 << 40, p: 1, want: 1 << 40},
		{name: "inf precision", give: 123456789, p: PrecisionInf, want: 123456789},
		{name: "max uint64", give: ^uint64(0), p: 8, want: ^uint64(0) &^ ((1 << 56) - 1)},
		{name: "b equals p", give: 0b1011, p: 4, want: 0b1011},
		{name: "huge precision", give: 0b1011, p: 64, want: 0b1011},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Round(tt.give, tt.p); got != tt.want {
				t.Errorf("Round(%b, %d) = %b, want %b", tt.give, tt.p, got, tt.want)
			}
		})
	}
}

// TestRelativeErrorBound verifies Proposition 3's building block: for all x,
// Round(x,p) <= x <= (1+eps) * Round(x,p) with eps = 2^(-p+1).
func TestRelativeErrorBound(t *testing.T) {
	for p := uint(1); p <= 12; p++ {
		eps := Epsilon(p)
		f := func(x uint64) bool {
			if x == 0 {
				return Round(x, p) == 0
			}
			r := Round(x, p)
			if r > x {
				return false
			}
			return float64(x) <= (1+eps)*float64(r)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestRoundMonotone verifies rounding preserves order: x <= y implies
// Round(x) <= Round(y).
func TestRoundMonotone(t *testing.T) {
	for _, p := range []uint{1, 3, 5, 8} {
		f := func(a, b uint64) bool {
			x, y := a, b
			if x > y {
				x, y = y, x
			}
			return Round(x, p) <= Round(y, p)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestRoundIdempotent verifies Round(Round(x)) == Round(x).
func TestRoundIdempotent(t *testing.T) {
	for _, p := range []uint{1, 4, 9} {
		f := func(x uint64) bool { return Round(Round(x, p), p) == Round(x, p) }
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestDistinctValuesBound verifies Proposition 2 by enumeration: the number
// of distinct rounded values over 1..U never exceeds
// (ceil(log2(U+1)) - p + 1) * 2^p.
func TestDistinctValuesBound(t *testing.T) {
	for _, u := range []uint64{1, 2, 7, 100, 1023, 1024, 65535} {
		for p := uint(1); p <= 8; p++ {
			seen := make(map[uint64]struct{})
			for x := uint64(1); x <= u; x++ {
				seen[Round(x, p)] = struct{}{}
			}
			bound := DistinctValuesBound(u, p)
			if uint64(len(seen)) > bound {
				t.Errorf("U=%d p=%d: %d distinct values exceeds bound %d", u, p, len(seen), bound)
			}
		}
	}
}

func TestDistinctValuesBoundFormula(t *testing.T) {
	// ceil(log2(U+1)) = bits.Len64(U) for U >= 1.
	for _, u := range []uint64{1, 2, 3, 255, 256, 10000} {
		want := (uint64(bits.Len64(u)) - 3 + 1) << 3
		if uint64(bits.Len64(u)) < 3 {
			want = u
		}
		if got := DistinctValuesBound(u, 3); got != want {
			t.Errorf("DistinctValuesBound(%d, 3) = %d, want %d", u, got, want)
		}
	}
	if got := DistinctValuesBound(100, PrecisionInf); got != 100 {
		t.Errorf("DistinctValuesBound(100, inf) = %d, want 100", got)
	}
}

func TestEpsilon(t *testing.T) {
	tests := []struct {
		p    uint
		want float64
	}{
		{p: 1, want: 1},
		{p: 2, want: 0.5},
		{p: 5, want: 0.0625},
		{p: PrecisionInf, want: 0},
	}
	for _, tt := range tests {
		if got := Epsilon(tt.p); got != tt.want {
			t.Errorf("Epsilon(%d) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestConverterAdaptiveMax(t *testing.T) {
	var c Converter
	if c.MaxSize() != 0 {
		t.Fatal("zero Converter should have MaxSize 0")
	}
	// First item: size 100 becomes the max; ratio = cost/size*max = cost.
	if got := c.IntRatio(500, 100); got != 500 {
		t.Errorf("IntRatio(500,100) = %d, want 500", got)
	}
	if c.MaxSize() != 100 {
		t.Errorf("MaxSize = %d, want 100", c.MaxSize())
	}
	// Smaller item does not lower the max.
	if got := c.IntRatio(500, 50); got != 1000 {
		t.Errorf("IntRatio(500,50) = %d, want 1000", got)
	}
	// A larger item raises the max and scales future conversions.
	if got := c.IntRatio(500, 200); got != 500 {
		t.Errorf("IntRatio(500,200) = %d, want 500 (new max 200)", got)
	}
	if c.MaxSize() != 200 {
		t.Errorf("MaxSize = %d, want 200", c.MaxSize())
	}
	if got := c.IntRatio(500, 100); got != 1000 {
		t.Errorf("IntRatio(500,100) after max=200 = %d, want 1000", got)
	}
}

func TestConverterEdgeCases(t *testing.T) {
	var c Converter
	if got := c.IntRatio(0, 100); got != 0 {
		t.Errorf("zero cost should map to 0, got %d", got)
	}
	if got := c.IntRatio(-5, 100); got != 0 {
		t.Errorf("negative cost should map to 0, got %d", got)
	}
	// Tiny positive ratios clamp to 1, preserving "expensive > free".
	c2 := Converter{}
	c2.Observe(1)
	if got := c2.IntRatio(1, 1000000); got < 1 {
		t.Errorf("positive cost must map to >= 1, got %d", got)
	}
	// Zero/negative size clamps to size 1.
	var c3 Converter
	if got := c3.IntRatio(10, 0); got != 10 {
		t.Errorf("IntRatio(10,0) = %d, want 10 (size clamped to 1)", got)
	}
}

// TestConverterOrderPreserving checks that for a fixed max size, larger
// true ratios never map to smaller integers.
func TestConverterOrderPreserving(t *testing.T) {
	var c Converter
	c.Observe(1 << 20)
	f := func(c1, s1, c2, s2 uint32) bool {
		conv := c
		cost1, size1 := int64(c1%1e6)+1, int64(s1%1e4)+1
		cost2, size2 := int64(c2%1e6)+1, int64(s2%1e4)+1
		r1 := float64(cost1) / float64(size1)
		r2 := float64(cost2) / float64(size2)
		i1 := conv.IntRatio(cost1, size1)
		i2 := conv.IntRatio(cost2, size2)
		if r1 < r2 && i1 > i2 {
			return false
		}
		if r2 < r1 && i2 > i1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
