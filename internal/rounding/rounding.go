// Package rounding implements the integer rounding scheme CAMP uses to
// collapse cost-to-size ratios into a small number of buckets (§2 of the
// paper, after Matias, Sahinalp and Young, "Performance Evaluation of
// Approximate Priority Queues", DIMACS 1996).
//
// Given a positive integer x whose highest non-zero bit is at position b
// (1-based), rounding to precision p zeroes out the b-p low-order bits,
// preserving the p most significant bits starting at b. If b <= p the value
// is unchanged. Unlike truncating a fixed number of low bits, the amount of
// rounding is proportional to the value itself, so values of different
// orders of magnitude stay distinct (Table 1 of the paper).
//
// Fractional cost-to-size ratios are first converted to integers by
// multiplying by a lower-bound estimate of the inverse of the smallest
// possible ratio: 1 divided by the maximum key-value size observed so far.
// The Converter type tracks that maximum adaptively; a new maximum affects
// only future conversions, exactly as §2 prescribes.
package rounding

import (
	"math"
	"math/bits"
)

// PrecisionInf disables the significant-bit rounding stage. CAMP with
// PrecisionInf makes the same decisions as GDS on the integerized ratios
// (the "∞" series in Figure 5a).
const PrecisionInf = 0

// Round rounds x to p significant bits using the scheme above. p ==
// PrecisionInf returns x unchanged.
func Round(x uint64, p uint) uint64 {
	if p == PrecisionInf || x == 0 {
		return x
	}
	b := uint(bits.Len64(x)) // position of highest non-zero bit, 1-based
	if b <= p {
		return x
	}
	return x &^ ((1 << (b - p)) - 1)
}

// Epsilon returns the worst-case relative rounding error 2^(-p+1) from
// Proposition 3: for every x > 0, x <= (1+Epsilon(p))*Round(x, p).
func Epsilon(p uint) float64 {
	if p == PrecisionInf {
		return 0
	}
	return math.Pow(2, -float64(p)+1)
}

// DistinctValuesBound returns the Proposition 2 upper bound on the number of
// distinct rounded values when inputs range over 1..U:
// (ceil(log2(U+1)) - p + 1) * 2^p. For p == PrecisionInf it returns U.
func DistinctValuesBound(maxValue uint64, p uint) uint64 {
	if p == PrecisionInf {
		return maxValue
	}
	logU := uint64(bits.Len64(maxValue)) // == ceil(log2(U+1)) for U >= 1
	if uint64(p) >= logU {
		return maxValue // no rounding happens below 2^p
	}
	return (logU - uint64(p) + 1) << p
}

// Converter adaptively converts fractional cost/size ratios to integers.
// The zero value is ready to use. Converter is not safe for concurrent use;
// callers (the CAMP policy) serialize access.
type Converter struct {
	maxSize int64
}

// Observe records the size of a referenced key-value pair, updating the
// lower-bound estimate 1/maxSize of the smallest possible ratio.
func (c *Converter) Observe(size int64) {
	if size > c.maxSize {
		c.maxSize = size
	}
}

// MaxSize returns the largest size observed so far.
func (c *Converter) MaxSize() int64 { return c.maxSize }

// IntRatio converts cost/size to an integer by multiplying with the current
// maximum size and rounding to the nearest integer. A positive cost always
// maps to at least 1 so that expensive-but-huge items are never confused
// with free ones; a zero cost maps to 0. Sizes below 1 are clamped to 1.
func (c *Converter) IntRatio(cost, size int64) uint64 {
	if cost <= 0 {
		return 0
	}
	if size < 1 {
		size = 1
	}
	c.Observe(size)
	r := float64(cost) / float64(size) * float64(c.maxSize)
	v := math.Round(r)
	if v < 1 {
		return 1
	}
	if v >= math.MaxUint64/2 { // defensive: keep headroom for L growth
		return math.MaxUint64 / 2
	}
	return uint64(v)
}
