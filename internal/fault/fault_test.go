package fault

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := OS()
	path := filepath.Join(dir, "a.txt")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	next := filepath.Join(dir, "b.txt")
	if err := fs.Rename(path, next); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(next, 2); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(next); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorScheduledFault(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil, 1)
	// Third write fails once with ENOSPC, then the disk works again.
	inj.Fail(Rule{Op: OpWrite, Err: ErrNoSpace, After: 2, Count: 1})

	f, err := inj.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("third write: got %v, want ENOSPC", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("post-fault write: %v", err)
	}
	if got := inj.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestInjectorPathMatchAndHeal(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil, 1)
	inj.Fail(Rule{Op: OpSync, PathContains: "shard-001"})

	a, err := inj.OpenFile(filepath.Join(dir, "shard-000.aof"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := inj.OpenFile(filepath.Join(dir, "shard-001.aof"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Sync(); err != nil {
		t.Fatalf("unmatched shard sync: %v", err)
	}
	if err := b.Sync(); !errors.Is(err, ErrIO) {
		t.Fatalf("matched shard sync: got %v, want EIO", err)
	}
	inj.Heal()
	if err := b.Sync(); err != nil {
		t.Fatalf("post-heal sync: %v", err)
	}
}

func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil, 42)
	inj.Fail(Rule{Op: OpWrite, TornWrite: true, Count: 1})

	path := filepath.Join(dir, "torn")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrIO) {
		t.Fatalf("torn write err = %v, want EIO", err)
	}
	if n >= len(payload) {
		t.Fatalf("torn write n = %d, want < %d", n, len(payload))
	}
	f.Close()
	// The prefix really landed on disk.
	b, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(b) != n || string(b) != string(payload[:n]) {
		t.Fatalf("on-disk = %q (len %d), want prefix of len %d", b, len(b), n)
	}
}

func TestInjectorProbabilisticSeeded(t *testing.T) {
	fire := func(seed int64) int {
		inj := NewInjector(nil, seed)
		inj.Fail(Rule{Op: OpRemove, Prob: 0.5})
		count := 0
		for i := 0; i < 100; i++ {
			if err := inj.Remove("/nonexistent/never-touched"); err != nil {
				var pe *os.PathError
				if errors.As(err, &pe) && errors.Is(pe.Err, ErrIO) {
					count++
				}
			}
		}
		return count
	}
	a, b := fire(7), fire(7)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("p=0.5 fired %d/100 times; rule not probabilistic", a)
	}
}

func TestInjectorOpenFault(t *testing.T) {
	inj := NewInjector(nil, 1)
	inj.Fail(Rule{Op: OpOpen, PathContains: "journal"})
	if _, err := inj.OpenFile(filepath.Join(t.TempDir(), "journal-000001.aof"), os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, ErrIO) {
		t.Fatalf("open: got %v, want EIO", err)
	}
}

// echoServer accepts one connection at a time and echoes bytes back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, err := c.Write(buf[:n]); err != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestProxyForwardAndLatency(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	roundTrip := func() time.Duration {
		start := time.Now()
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Read(buf); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	roundTrip() // plain forwarding works
	p.SetLatency(50 * time.Millisecond)
	if d := roundTrip(); d < 80*time.Millisecond { // 2 hops × 50ms, some slack
		t.Fatalf("latency round trip took %v, want >= 80ms", d)
	}
}

func TestProxyBlackhole(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One-way partition upstream: our writes succeed but never arrive, so no
	// echo ever comes back.
	p.SetBlackhole(Up, true)
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatalf("write into blackhole should succeed locally: %v", err)
	}
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read got data through a blackholed link")
	}

	// Heal the partition: traffic flows again.
	p.SetBlackhole(Up, false)
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("post-heal read: %v", err)
	}
}

func TestProxyTruncate(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Allow 6 more bytes downstream, then cut: the echo of a 16-byte payload
	// arrives truncated and the connection dies.
	p.TruncateAfter(Down, 6)
	if _, err := c.Write([]byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 0, 16)
	buf := make([]byte, 16)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		n, err := c.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	if string(got) != "012345" {
		t.Fatalf("truncated stream = %q, want %q", got, "012345")
	}
}

func TestProxyDropAndRefuse(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}

	p.DropConns()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded on a dropped connection")
	}

	p.SetRefuse(true)
	c2, err := net.Dial("tcp", p.Addr())
	if err == nil {
		// Accept then immediate close: the first read must fail.
		c2.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c2.Read(buf); err == nil {
			t.Fatal("refused connection served data")
		}
		c2.Close()
	}
}
