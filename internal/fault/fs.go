// Package fault is the failure-injection seam for the persistence and
// replication stacks: a small VFS interface (FS/File) that internal/persist
// routes every file operation through, an Injector that implements it with
// scheduled or probabilistic I/O errors (EIO, ENOSPC, failing fsyncs, torn
// short-writes), and a TCP Proxy that degrades a replication link with
// latency, drops, one-way partitions and byte truncation.
//
// Production servers pay one interface indirection per file operation — the
// default FS is a zero-state passthrough to the os package — and in exchange
// every partial-failure mode a disk or network can produce becomes a unit
// test: the chaos harness drives a live primary/follower pair through fault
// schedules that no amount of kill -9 testing can reach.
package fault

import (
	"io"
	"os"
)

// File is the subset of *os.File the persistence layer uses. Injected
// implementations wrap a real file and make Write, Sync or Truncate fail on
// cue.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Stat returns the file's FileInfo.
	Stat() (os.FileInfo, error)
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate resizes the file.
	Truncate(size int64) error
}

// FS is the filesystem seam: every file operation internal/persist performs
// goes through one of these methods, so a single injected implementation
// controls the whole durability surface — journal appends, fsyncs, snapshot
// temp files, renames, directory syncs, segment reads.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open is os.Open (read-only).
	Open(name string) (File, error)
	// CreateTemp is os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile is os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename is os.Rename.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// Truncate is os.Truncate.
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory so renames and removals inside it survive
	// a crash.
	SyncDir(dir string) error
}

// OS returns the passthrough FS backed directly by the os package — the
// production default.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
