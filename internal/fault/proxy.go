package fault

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Direction selects which half of a proxied connection a network fault
// applies to. Up is client→target (for a replication link: follower→primary),
// Down is target→client.
type Direction uint8

const (
	Up Direction = 1 << iota
	Down
	Both Direction = Up | Down
)

// Proxy is a TCP fault proxy: it accepts on a local address and pipes each
// connection to a fixed target, optionally degrading the link. Faults are
// applied live to existing connections:
//
//   - SetLatency: delay every forwarded chunk (both directions)
//   - SetBlackhole: one-way partition — bytes in the chosen direction are
//     read and discarded, so the sender sees progress but the receiver sees
//     silence (the nastiest partition shape: neither side gets an error)
//   - TruncateAfter: forward n more bytes in a direction, then kill the
//     connection — a stream cut mid-frame
//   - DropConns: close every live connection now
//   - SetRefuse: refuse (immediately close) new connections
type Proxy struct {
	ln     net.Listener
	target string

	latency   atomic.Int64  // nanoseconds added per forwarded chunk
	blackhole atomic.Uint32 // Direction bitmask being discarded
	refuse    atomic.Bool   // close new conns on accept

	mu       sync.Mutex
	conns    map[net.Conn]struct{} // both halves of every live pipe
	truncate [2]truncBudget        // indexed by dirIndex
	closed   bool

	wg sync.WaitGroup
}

type truncBudget struct {
	armed     bool
	remaining int64
}

func dirIndex(d Direction) int {
	if d == Up {
		return 0
	}
	return 1
}

// NewProxy starts a proxy on addr (e.g. "127.0.0.1:0") forwarding to target.
func NewProxy(addr, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what a follower dials instead of
// the primary.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetLatency delays every forwarded chunk by d (0 disables).
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// SetBlackhole starts or stops discarding bytes flowing in dir. The sender's
// writes keep succeeding; the receiver just never hears anything again.
func (p *Proxy) SetBlackhole(dir Direction, on bool) {
	for {
		old := p.blackhole.Load()
		var next uint32
		if on {
			next = old | uint32(dir)
		} else {
			next = old &^ uint32(dir)
		}
		if p.blackhole.CompareAndSwap(old, next) {
			return
		}
	}
}

// TruncateAfter forwards n more bytes in dir, then closes every live
// connection: the receiver gets a clean prefix of the stream cut at an
// arbitrary byte boundary — usually mid-frame. A negative n disarms a
// budget that has not fired yet.
func (p *Proxy) TruncateAfter(dir Direction, n int64) {
	p.mu.Lock()
	p.truncate[dirIndex(dir)] = truncBudget{armed: n >= 0, remaining: n}
	p.mu.Unlock()
}

// SetRefuse makes the proxy close new connections immediately (a down
// primary), without disturbing established ones.
func (p *Proxy) SetRefuse(on bool) { p.refuse.Store(on) }

// DropConns closes every live proxied connection. New connections are still
// accepted (unless refusing).
func (p *Proxy) DropConns() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close shuts the proxy down: stops accepting, drops all connections, waits
// for the pipes to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.DropConns()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.refuse.Load() {
			c.Close()
			continue
		}
		t, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			t.Close()
			return
		}
		p.conns[c] = struct{}{}
		p.conns[t] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(c, t, Up)
		go p.pipe(t, c, Down)
	}
}

// pipe forwards src→dst applying the live fault settings for dir. Either
// side failing tears down both, so the pair dies together like a real TCP
// connection.
func (p *Proxy) pipe(src, dst net.Conn, dir Direction) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.mu.Lock()
		delete(p.conns, src)
		delete(p.conns, dst)
		p.mu.Unlock()
	}()
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := time.Duration(p.latency.Load()); d > 0 {
				time.Sleep(d)
			}
			chunk := buf[:n]
			if cut, kill := p.truncAllow(dir, int64(len(chunk))); kill {
				if cut > 0 {
					dst.Write(chunk[:cut])
				}
				// Kill the whole proxy's connections: the test wants the
				// stream to end here, not resume on a retry byte.
				p.DropConns()
				return
			}
			if p.blackhole.Load()&uint32(dir) != 0 {
				continue // read and discarded: one-way partition
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
		}
		if err != nil {
			return // EOF or error: deferred close tears down both halves
		}
	}
}

// truncAllow charges n bytes against dir's truncation budget. It returns the
// number of bytes still allowed through and whether the connection must be
// cut after forwarding them.
func (p *Proxy) truncAllow(dir Direction, n int64) (allow int64, kill bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tb := &p.truncate[dirIndex(dir)]
	if !tb.armed {
		return n, false
	}
	if n <= tb.remaining {
		tb.remaining -= n
		return n, false
	}
	allow = tb.remaining
	tb.armed = false
	tb.remaining = 0
	return allow, true
}
