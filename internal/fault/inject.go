package fault

import (
	"math/rand"
	"os"
	"strings"
	"sync"
	"syscall"
)

// Errors commonly injected. They are the real errno values, so production
// error handling (errors.Is, %w chains) sees exactly what a failing disk
// would produce.
var (
	// ErrIO is a generic I/O error (EIO): the disk or controller failed.
	ErrIO error = syscall.EIO
	// ErrNoSpace is ENOSPC: the filesystem filled up.
	ErrNoSpace error = syscall.ENOSPC
)

// FileOp classifies the filesystem operations rules can target.
type FileOp uint8

// Operation classes. OpOpen covers OpenFile, Open and CreateTemp; OpRead
// covers File.Read and ReadFile.
const (
	OpOpen FileOp = iota
	OpRead
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpSyncDir
	OpReadDir
	numOps
)

var opNames = [numOps]string{
	"open", "read", "write", "sync", "rename", "remove", "truncate", "syncdir", "readdir",
}

func (o FileOp) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// Rule schedules one fault. A rule matches calls of its Op whose path
// contains PathContains (empty matches everything); among matching calls it
// skips the first After, then fires — deterministically, or with probability
// Prob when set — at most Count times (0 = until healed).
type Rule struct {
	// Op is the operation class the rule targets.
	Op FileOp
	// PathContains restricts the rule to paths containing this substring
	// ("" = any path). Shard data dirs make this the natural way to fault
	// one shard: PathContains: "shard-001".
	PathContains string
	// Err is the error to inject (default ErrIO).
	Err error
	// After skips the first After matching calls before firing, so a fault
	// can be scheduled mid-workload ("the third fsync fails").
	After int
	// Count caps how many times the rule fires; 0 means every matching
	// call until Heal. Count: 1 is the fail-once-then-heal shape.
	Count int
	// Prob fires the rule probabilistically (0 or >= 1 means always). The
	// injector's seeded RNG makes probabilistic schedules reproducible.
	Prob float64
	// TornWrite, on an OpWrite rule, writes a random prefix of the buffer
	// through to the real file before failing — the torn short-write a
	// crash mid-write leaves behind, which is what recovery's torn-tail
	// truncation exists to handle.
	TornWrite bool
}

type activeRule struct {
	Rule
	seen  int // matching calls observed
	fired int // times this rule actually injected
}

// Injector is an FS that forwards to an inner FS but fails operations
// according to its rule set. All methods are safe for concurrent use; the
// zero rule set forwards everything untouched.
type Injector struct {
	inner FS

	mu       sync.Mutex
	rnd      *rand.Rand
	rules    []*activeRule
	injected uint64
}

// NewInjector wraps inner (nil = the real OS filesystem) with an empty rule
// set. seed makes probabilistic rules reproducible.
func NewInjector(inner FS, seed int64) *Injector {
	if inner == nil {
		inner = OS()
	}
	return &Injector{inner: inner, rnd: rand.New(rand.NewSource(seed))}
}

// Fail adds a rule. Rules are independent: the first one that decides to
// fire wins.
func (in *Injector) Fail(r Rule) {
	if r.Err == nil {
		r.Err = ErrIO
	}
	in.mu.Lock()
	in.rules = append(in.rules, &activeRule{Rule: r})
	in.mu.Unlock()
}

// Heal drops every rule: the disk works again.
func (in *Injector) Heal() {
	in.mu.Lock()
	in.rules = nil
	in.mu.Unlock()
}

// Injected reports how many operations have been failed so far.
func (in *Injector) Injected() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// check consults the rules for one operation. For OpWrite with n bytes
// pending it may return torn > 0: the caller must write the first torn bytes
// through before returning err.
func (in *Injector) check(op FileOp, path string, n int) (torn int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rnd.Float64() >= r.Prob {
			continue
		}
		r.fired++
		in.injected++
		if r.TornWrite && op == OpWrite && n > 0 {
			torn = in.rnd.Intn(n) // 0 <= torn < n: always short
		}
		return torn, r.Err
	}
	return 0, nil
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if _, err := in.check(OpOpen, name, 0); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: f, in: in, path: name}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if _, err := in.check(OpOpen, name, 0); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: f, in: in, path: name}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if _, err := in.check(OpOpen, dir, 0); err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: f, in: in, path: f.Name()}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if _, err := in.check(OpRead, name, 0); err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return in.inner.ReadFile(name)
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if _, err := in.check(OpReadDir, name, 0); err != nil {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: err}
	}
	return in.inner.ReadDir(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if _, err := in.check(OpRename, newpath, 0); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if _, err := in.check(OpRemove, name, 0); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return in.inner.Remove(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if _, err := in.check(OpTruncate, name, 0); err != nil {
		return &os.PathError{Op: "truncate", Path: name, Err: err}
	}
	return in.inner.Truncate(name, size)
}

func (in *Injector) SyncDir(dir string) error {
	if _, err := in.check(OpSyncDir, dir, 0); err != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	return in.inner.SyncDir(dir)
}

// injectFile routes Write/Sync/Truncate/Read through the injector's rules.
type injectFile struct {
	File
	in   *Injector
	path string
}

func (f *injectFile) Write(p []byte) (int, error) {
	torn, err := f.in.check(OpWrite, f.path, len(p))
	if err != nil {
		n := 0
		if torn > 0 {
			// The torn prefix really reaches the file: recovery has to deal
			// with a half-record on disk, not just a clean miss.
			n, _ = f.File.Write(p[:torn])
		}
		return n, &os.PathError{Op: "write", Path: f.path, Err: err}
	}
	return f.File.Write(p)
}

func (f *injectFile) Sync() error {
	if _, err := f.in.check(OpSync, f.path, 0); err != nil {
		return &os.PathError{Op: "sync", Path: f.path, Err: err}
	}
	return f.File.Sync()
}

func (f *injectFile) Truncate(size int64) error {
	if _, err := f.in.check(OpTruncate, f.path, 0); err != nil {
		return &os.PathError{Op: "truncate", Path: f.path, Err: err}
	}
	return f.File.Truncate(size)
}

func (f *injectFile) Read(p []byte) (int, error) {
	if _, err := f.in.check(OpRead, f.path, 0); err != nil {
		return 0, &os.PathError{Op: "read", Path: f.path, Err: err}
	}
	return f.File.Read(p)
}
