package ilist

import (
	"math/rand"
	"testing"
)

func collect[T any](l *List[T]) []T {
	var out []T
	for n := l.Front(); n != nil; n = n.Next() {
		out = append(out, n.Value)
	}
	return out
}

func collectReverse[T any](l *List[T]) []T {
	var out []T
	for n := l.Back(); n != nil; n = n.Prev() {
		out = append(out, n.Value)
	}
	return out
}

func wantOrder(t *testing.T, l *List[int], want []int) {
	t.Helper()
	got := collect(l)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d (got %v want %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	rev := collectReverse(l)
	for i := range want {
		if rev[len(rev)-1-i] != want[i] {
			t.Fatalf("reverse order = %v, want reverse of %v", rev, want)
		}
	}
	if l.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", l.Len(), len(want))
	}
}

func TestEmptyList(t *testing.T) {
	l := New[int]()
	if l.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", l.Len())
	}
	if l.Front() != nil {
		t.Fatal("Front() of empty list should be nil")
	}
	if l.Back() != nil {
		t.Fatal("Back() of empty list should be nil")
	}
}

func TestPushBackOrder(t *testing.T) {
	l := New[int]()
	for i := 1; i <= 5; i++ {
		l.PushBack(i)
	}
	wantOrder(t, l, []int{1, 2, 3, 4, 5})
}

func TestPushFrontOrder(t *testing.T) {
	l := New[int]()
	for i := 1; i <= 5; i++ {
		l.PushFront(i)
	}
	wantOrder(t, l, []int{5, 4, 3, 2, 1})
}

func TestRemoveMiddleFrontBack(t *testing.T) {
	l := New[int]()
	var nodes []*Node[int]
	for i := 1; i <= 5; i++ {
		nodes = append(nodes, l.PushBack(i))
	}
	if v := l.Remove(nodes[2]); v != 3 {
		t.Fatalf("Remove returned %d, want 3", v)
	}
	wantOrder(t, l, []int{1, 2, 4, 5})
	l.Remove(nodes[0])
	wantOrder(t, l, []int{2, 4, 5})
	l.Remove(nodes[4])
	wantOrder(t, l, []int{2, 4})
	l.Remove(nodes[1])
	l.Remove(nodes[3])
	wantOrder(t, l, nil)
}

func TestMoveToBack(t *testing.T) {
	l := New[int]()
	n1 := l.PushBack(1)
	l.PushBack(2)
	n3 := l.PushBack(3)
	l.MoveToBack(n1)
	wantOrder(t, l, []int{2, 3, 1})
	// Moving the back node is a no-op.
	l.MoveToBack(n1)
	wantOrder(t, l, []int{2, 3, 1})
	l.MoveToBack(n3)
	wantOrder(t, l, []int{2, 1, 3})
}

func TestMoveToFront(t *testing.T) {
	l := New[int]()
	l.PushBack(1)
	n2 := l.PushBack(2)
	n3 := l.PushBack(3)
	l.MoveToFront(n3)
	wantOrder(t, l, []int{3, 1, 2})
	l.MoveToFront(n3)
	wantOrder(t, l, []int{3, 1, 2})
	l.MoveToFront(n2)
	wantOrder(t, l, []int{2, 3, 1})
}

func TestInsertBeforeAfter(t *testing.T) {
	l := New[int]()
	n1 := l.PushBack(1)
	n3 := l.PushBack(3)
	l.InsertAfter(2, n1)
	wantOrder(t, l, []int{1, 2, 3})
	l.InsertBefore(0, n1)
	wantOrder(t, l, []int{0, 1, 2, 3})
	l.InsertAfter(4, n3)
	wantOrder(t, l, []int{0, 1, 2, 3, 4})
}

func TestNodeReuseAcrossLists(t *testing.T) {
	a := New[string]()
	b := New[string]()
	n := a.PushBack("x")
	if !a.Contains(n) {
		t.Fatal("a should contain n")
	}
	a.Remove(n)
	if a.Contains(n) {
		t.Fatal("a should not contain n after Remove")
	}
	b.PushBackNode(n)
	if !b.Contains(n) {
		t.Fatal("b should contain n after PushBackNode")
	}
	if got := collect(b); len(got) != 1 || got[0] != "x" {
		t.Fatalf("b = %v, want [x]", got)
	}
}

func TestPushFrontNode(t *testing.T) {
	l := New[int]()
	l.PushBack(2)
	n := &Node[int]{Value: 1}
	l.PushFrontNode(n)
	wantOrder(t, l, []int{1, 2})
}

func TestPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	l1 := New[int]()
	l2 := New[int]()
	n := l1.PushBack(1)
	mustPanic("Remove foreign", func() { l2.Remove(n) })
	mustPanic("MoveToBack foreign", func() { l2.MoveToBack(n) })
	mustPanic("MoveToFront foreign", func() { l2.MoveToFront(n) })
	mustPanic("double insert", func() { l2.PushBackNode(n) })
	mustPanic("double insert front", func() { l2.PushFrontNode(n) })
	m := l2.PushBack(9)
	mustPanic("InsertBefore foreign mark", func() { l1.InsertBefore(0, m) })
	mustPanic("InsertAfter foreign mark", func() { l1.InsertAfter(0, m) })
}

// TestRandomizedAgainstSlice cross-checks the list against a plain slice
// model under a random operation mix.
func TestRandomizedAgainstSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := New[int]()
	var model []int
	var nodes []*Node[int]

	removeAt := func(i int) {
		l.Remove(nodes[i])
		nodes = append(nodes[:i], nodes[i+1:]...)
		model = append(model[:i], model[i+1:]...)
	}

	for op := 0; op < 20000; op++ {
		switch r := rng.Intn(10); {
		case r < 4: // push back
			v := rng.Intn(1000)
			nodes = append(nodes, l.PushBack(v))
			model = append(model, v)
		case r < 6: // push front
			v := rng.Intn(1000)
			nodes = append([]*Node[int]{l.PushFront(v)}, nodes...)
			model = append([]int{v}, model...)
		case r < 8 && len(nodes) > 0: // remove random
			removeAt(rng.Intn(len(nodes)))
		case r < 9 && len(nodes) > 0: // move to back
			i := rng.Intn(len(nodes))
			n, v := nodes[i], model[i]
			l.MoveToBack(n)
			nodes = append(append(nodes[:i], nodes[i+1:]...), n)
			model = append(append(model[:i], model[i+1:]...), v)
		case len(nodes) > 0: // move to front
			i := rng.Intn(len(nodes))
			n, v := nodes[i], model[i]
			l.MoveToFront(n)
			nodes = append([]*Node[int]{n}, append(nodes[:i], nodes[i+1:]...)...)
			model = append([]int{v}, append(model[:i], model[i+1:]...)...)
		}
	}
	got := collect(l)
	if len(got) != len(model) {
		t.Fatalf("len mismatch: got %d want %d", len(got), len(model))
	}
	for i := range model {
		if got[i] != model[i] {
			t.Fatalf("mismatch at %d: got %d want %d", i, got[i], model[i])
		}
	}
}
