// Package ilist provides a typed, intrusive-style doubly linked list.
//
// It mirrors the semantics of container/list but is generic, avoiding the
// interface{} boxing cost on the cache hot path, and exposes only the
// operations the eviction policies need. The zero value of List is not
// usable; construct lists with New.
package ilist

// Node is an element of a List. A Node must not be inserted into more than
// one list, nor twice into the same list.
type Node[T any] struct {
	prev, next *Node[T]
	list       *List[T]

	// Value is the payload carried by this node.
	Value T
}

// Next returns the next list node or nil.
func (n *Node[T]) Next() *Node[T] {
	if p := n.next; n.list != nil && p != &n.list.root {
		return p
	}
	return nil
}

// Prev returns the previous list node or nil.
func (n *Node[T]) Prev() *Node[T] {
	if p := n.prev; n.list != nil && p != &n.list.root {
		return p
	}
	return nil
}

// List is a doubly linked list with a sentinel root node.
type List[T any] struct {
	root Node[T]
	len  int
}

// New returns an initialized, empty list.
func New[T any]() *List[T] {
	l := &List[T]{}
	l.root.next = &l.root
	l.root.prev = &l.root
	return l
}

// Len returns the number of elements in the list. O(1).
func (l *List[T]) Len() int { return l.len }

// Front returns the first node of the list or nil if the list is empty.
func (l *List[T]) Front() *Node[T] {
	if l.len == 0 {
		return nil
	}
	return l.root.next
}

// Back returns the last node of the list or nil if the list is empty.
func (l *List[T]) Back() *Node[T] {
	if l.len == 0 {
		return nil
	}
	return l.root.prev
}

// PushFront inserts a new node carrying v at the front and returns it.
func (l *List[T]) PushFront(v T) *Node[T] {
	n := &Node[T]{Value: v}
	l.insert(n, &l.root)
	return n
}

// PushBack inserts a new node carrying v at the back and returns it.
func (l *List[T]) PushBack(v T) *Node[T] {
	n := &Node[T]{Value: v}
	l.insert(n, l.root.prev)
	return n
}

// PushBackNode links an existing, detached node at the back of the list.
// This allows nodes to be reused across lists without reallocation.
func (l *List[T]) PushBackNode(n *Node[T]) {
	if n.list != nil {
		panic("ilist: PushBackNode of a node that is already in a list")
	}
	l.insert(n, l.root.prev)
}

// PushFrontNode links an existing, detached node at the front of the list.
func (l *List[T]) PushFrontNode(n *Node[T]) {
	if n.list != nil {
		panic("ilist: PushFrontNode of a node that is already in a list")
	}
	l.insert(n, &l.root)
}

// Remove unlinks n from the list and returns its value. The node may be
// reused afterwards. Remove panics if n is not in l.
func (l *List[T]) Remove(n *Node[T]) T {
	if n.list != l {
		panic("ilist: Remove of a node from a different list")
	}
	l.unlink(n)
	return n.Value
}

// MoveToBack moves n to the back of the list (most-recently-used position).
func (l *List[T]) MoveToBack(n *Node[T]) {
	if n.list != l {
		panic("ilist: MoveToBack of a node from a different list")
	}
	if l.root.prev == n {
		return
	}
	l.unlink(n)
	l.insert(n, l.root.prev)
}

// MoveToFront moves n to the front of the list.
func (l *List[T]) MoveToFront(n *Node[T]) {
	if n.list != l {
		panic("ilist: MoveToFront of a node from a different list")
	}
	if l.root.next == n {
		return
	}
	l.unlink(n)
	l.insert(n, &l.root)
}

// InsertBefore inserts a new node carrying v immediately before mark.
func (l *List[T]) InsertBefore(v T, mark *Node[T]) *Node[T] {
	if mark.list != l {
		panic("ilist: InsertBefore with a mark from a different list")
	}
	n := &Node[T]{Value: v}
	l.insert(n, mark.prev)
	return n
}

// InsertAfter inserts a new node carrying v immediately after mark.
func (l *List[T]) InsertAfter(v T, mark *Node[T]) *Node[T] {
	if mark.list != l {
		panic("ilist: InsertAfter with a mark from a different list")
	}
	n := &Node[T]{Value: v}
	l.insert(n, mark)
	return n
}

// Contains reports whether n is currently linked into l.
func (l *List[T]) Contains(n *Node[T]) bool { return n.list == l }

// insert links n after at.
func (l *List[T]) insert(n, at *Node[T]) {
	n.prev = at
	n.next = at.next
	n.prev.next = n
	n.next.prev = n
	n.list = l
	l.len++
}

// unlink removes n from its list.
func (l *List[T]) unlink(n *Node[T]) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev = nil
	n.next = nil
	n.list = nil
	l.len--
}
