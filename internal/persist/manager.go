package persist

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"camp/internal/fault"
)

// Fsync policies for the append-only log, mirroring Redis' appendfsync.
const (
	// FsyncAlways syncs after every append: no acknowledged mutation is
	// ever lost, at a syscall per op.
	FsyncAlways = "always"
	// FsyncEverySec groups syncs on a one-second timer: a crash loses at
	// most the last second of mutations. The default.
	FsyncEverySec = "everysec"
	// FsyncNo leaves syncing to the OS page cache.
	FsyncNo = "no"
)

// DefaultAOFLimit is the AOF size that triggers snapshot-then-truncate
// compaction when Options.AOFLimit is zero.
const DefaultAOFLimit = 64 << 20

// Options configures a Manager.
type Options struct {
	// Dir is the data directory; created if missing.
	Dir string
	// Fsync is one of FsyncAlways, FsyncEverySec or FsyncNo
	// (default FsyncEverySec).
	Fsync string
	// DisableAOF turns off journaling; durability then comes only from
	// explicit Compact calls (snapshot-interval or shutdown snapshots).
	DisableAOF bool
	// AOFLimit is the AOF byte size beyond which NeedsCompaction reports
	// true (default DefaultAOFLimit).
	AOFLimit int64
	// Logf, when non-nil, receives recovery warnings (torn-tail
	// truncation) and background sync errors.
	Logf func(format string, args ...any)
	// FS is the filesystem the manager performs every file operation
	// through (nil = the real OS). Tests inject a fault.Injector here to
	// make fsyncs fail, disks fill up, and writes tear.
	FS fault.FS
}

// RecoverStats summarizes what Open restored.
type RecoverStats struct {
	// Generation is the active snapshot/AOF generation after recovery.
	Generation uint64
	// SnapshotOps is the number of entries loaded from the snapshot.
	SnapshotOps int
	// ReplayedOps is the number of AOF records re-applied.
	ReplayedOps int
	// TruncatedBytes is how much of a torn AOF tail was discarded.
	TruncatedBytes int64
}

// Info is a point-in-time view of the manager for stats reporting.
type Info struct {
	Generation   uint64
	SnapshotGen  uint64
	AOFEnabled   bool
	AOFSize      int64
	Fsync        string
	Compactions  uint64
	AppendErrors uint64
}

// Manager owns one data directory: at most one live snapshot plus one AOF
// segment per generation. Compaction snapshots the live store into the next
// generation and truncates the journal by switching to a fresh segment.
//
// Manager methods are safe for concurrent use, but callers typically
// serialize Append/Compact behind their own store lock so the journal order
// matches the apply order.
type Manager struct {
	opts Options
	fs   fault.FS

	mu         sync.Mutex
	gen        uint64 // current AOF generation
	snapGen    uint64 // newest on-disk snapshot generation (0 = none)
	aof        fault.File
	aofLen     int64
	dirty      bool
	closed     bool
	compacting bool
	buf        []byte

	compactions  uint64
	appendErrors uint64

	// notify is closed and replaced on every append, generation switch and
	// close, waking blocked TailReaders; tailers holds the attached
	// replication readers so GC retains the generations they still need.
	notify  chan struct{}
	tailers map[*TailReader]struct{}

	// runID is a fresh random identity per Open. A replication position is
	// only meaningful against the journal run that produced it: a restart
	// may have truncated a torn tail, so byte offsets from the previous run
	// can point into different data. Followers echo the run ID and the
	// primary forces a full resync on mismatch (Redis's replication-ID
	// safeguard).
	runID uint64

	lock *DirLock
	stop chan struct{}
	wg   sync.WaitGroup
}

var (
	// ErrClosed reports an operation on a Manager after Close or Kill.
	ErrClosed     = errors.New("persist: manager is closed")
	errCompacting = errors.New("persist: compaction already in progress")
)

// Open scans dir, restores the newest valid snapshot and replays the AOF
// tail through apply, then opens the journal for appending. A torn final
// AOF record is truncated with a warning (like Redis' aof-load-truncated);
// a corrupt snapshot or mid-log corruption is refused with an error.
func Open(opts Options, apply func(Op) error) (*Manager, RecoverStats, error) {
	var stats RecoverStats
	switch opts.Fsync {
	case "":
		opts.Fsync = FsyncEverySec
	case FsyncAlways, FsyncEverySec, FsyncNo:
	default:
		return nil, stats, fmt.Errorf("persist: unknown fsync policy %q (want %s, %s or %s)",
			opts.Fsync, FsyncAlways, FsyncEverySec, FsyncNo)
	}
	if opts.AOFLimit <= 0 {
		opts.AOFLimit = DefaultAOFLimit
	}
	if opts.Dir == "" {
		return nil, stats, errors.New("persist: Options.Dir is required")
	}
	if opts.FS == nil {
		opts.FS = defaultFS
	}
	lock, err := LockDir(opts.Dir)
	if err != nil {
		return nil, stats, err
	}
	m := &Manager{
		opts:    opts,
		fs:      opts.FS,
		lock:    lock,
		stop:    make(chan struct{}),
		notify:  make(chan struct{}),
		tailers: make(map[*TailReader]struct{}),
		runID:   newRunID(),
	}

	gen, snapGen, stats, err := recoverDir(opts.FS, opts.Dir, opts.Logf, true, apply)
	if err != nil {
		lock.Release()
		return nil, stats, err
	}
	m.gen = gen
	m.snapGen = snapGen
	if m.gen == 0 {
		m.gen = 1
	}
	stats.Generation = m.gen
	// Keep everything from the newest snapshot onward: with off-lock
	// compaction a fresh AOF segment can exist before its snapshot lands,
	// so generations between snapGen and gen are still load-bearing.
	m.removeStaleLocked(m.snapGen)

	if !opts.DisableAOF {
		if err := m.openAOFLocked(m.gen); err != nil {
			lock.Release()
			return nil, stats, err
		}
		if opts.Fsync == FsyncEverySec {
			m.wg.Add(1)
			go m.syncLoop()
		}
	}
	return m, stats, nil
}

// RecoverDir reads the persistent state in dir without opening it for
// appending or taking its lock: the newest snapshot, then every subsequent
// AOF segment, in order, through apply. A torn final record is skipped (but
// not truncated — the files are left untouched). Callers use it to migrate a
// data directory between layouts; mutual exclusion is their problem.
func RecoverDir(dir string, logf func(format string, args ...any), apply func(Op) error) (RecoverStats, error) {
	gen, snapGen, stats, err := recoverDir(defaultFS, dir, logf, false, apply)
	_ = snapGen
	stats.Generation = gen
	return stats, err
}

// recoverDir restores dir's state through apply, returning the highest
// generation seen and the generation of the snapshot loaded (0 when none).
// With truncate set, a torn final AOF record is cut from the file, Redis
// aof-load-truncated style; otherwise it is only skipped.
func recoverDir(fs fault.FS, dir string, logf func(format string, args ...any), truncate bool, apply func(Op) error) (gen, snapGen uint64, stats RecoverStats, err error) {
	snapGens, aofGens, err := scanDir(fs, dir)
	if err != nil {
		return 0, 0, stats, err
	}
	if len(snapGens) > 0 {
		snapGen = snapGens[len(snapGens)-1]
		n, err := loadSnapshotFileFS(fs, filepath.Join(dir, snapName(snapGen)), apply)
		if err != nil {
			return 0, 0, stats, err
		}
		stats.SnapshotOps = n
	}
	gen = snapGen
	for i, g := range aofGens {
		if g < snapGen {
			continue // subsumed by the snapshot
		}
		last := i == len(aofGens)-1
		n, truncated, err := replayAOF(fs, filepath.Join(dir, aofName(g)), last, truncate, logf, apply)
		if err != nil {
			return 0, 0, stats, err
		}
		stats.ReplayedOps += n
		stats.TruncatedBytes += truncated
		if g > gen {
			gen = g
		}
	}
	return gen, snapGen, stats, nil
}

// HasState reports whether dir directly contains snapshot or AOF files
// (subdirectories are not considered). A missing dir simply has no state.
func HasState(dir string) (bool, error) {
	snaps, aofs, err := scanDir(defaultFS, dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	return len(snaps)+len(aofs) > 0, nil
}

// SnapshotPath returns the path of generation gen's snapshot inside dir,
// for callers staging a directory that a Manager will later Open.
func SnapshotPath(dir string, gen uint64) string {
	return filepath.Join(dir, snapName(gen))
}

// RemoveState deletes every snapshot and AOF file directly inside dir
// (subdirectories and other files are untouched). Layout migrations call it
// after the state has been re-staged elsewhere.
func RemoveState(dir string) error {
	snaps, aofs, err := scanDir(defaultFS, dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, g := range snaps {
		if err := os.Remove(filepath.Join(dir, snapName(g))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("persist: remove snapshot: %w", err)
		}
	}
	for _, g := range aofs {
		if err := os.Remove(filepath.Join(dir, aofName(g))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("persist: remove aof: %w", err)
		}
	}
	return nil
}

// SyncDir fsyncs a directory so renames and removals inside it survive a
// crash.
func SyncDir(dir string) error { return syncDir(dir) }

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.opts.Dir }

// Info returns current journal stats.
func (m *Manager) Info() Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Info{
		Generation:   m.gen,
		SnapshotGen:  m.snapGen,
		AOFEnabled:   !m.opts.DisableAOF,
		AOFSize:      m.aofLen,
		Fsync:        m.opts.Fsync,
		Compactions:  m.compactions,
		AppendErrors: m.appendErrors,
	}
}

// Append journals one mutation. With FsyncAlways the record is on disk when
// Append returns; otherwise it is in the OS page cache awaiting the next
// group sync. Append is a no-op when the AOF is disabled.
//
// The record goes straight to the file: every append must reach the OS
// anyway (for durability and size accounting), so a user-space buffer would
// only add a copy without ever batching.
func (m *Manager) Append(op Op) error {
	if m.opts.DisableAOF {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.aof == nil {
		// Reopening after a failed compaction; the next Compact heals it.
		m.appendErrors++
		return errors.New("persist: journal segment unavailable")
	}
	m.buf = AppendRecord(m.buf[:0], op)
	n, err := m.aof.Write(m.buf)
	m.aofLen += int64(n)
	if err != nil {
		m.appendErrors++
		return fmt.Errorf("persist: aof append: %w", err)
	}
	if m.opts.Fsync == FsyncAlways {
		if err := m.aof.Sync(); err != nil {
			m.appendErrors++
			return fmt.Errorf("persist: aof sync: %w", err)
		}
	} else {
		m.dirty = true
	}
	m.broadcastLocked()
	return nil
}

// broadcastLocked wakes every blocked TailReader: the journal grew, switched
// generations, or closed. With no tailers attached it is a no-op — a waiter
// can only hold m.notify after TailFrom registered it under this same mutex
// — so servers without followers pay no per-append channel churn. The
// caller holds m.mu.
func (m *Manager) broadcastLocked() {
	if len(m.tailers) == 0 {
		return
	}
	close(m.notify)
	m.notify = make(chan struct{})
}

// RunID identifies this journal run (this Open). Replication positions are
// scoped to it: a follower holding offsets from a previous run must resync.
func (m *Manager) RunID() uint64 { return m.runID }

// newRunID draws a non-zero random run identity (zero is the follower's
// "no position yet" sentinel).
func newRunID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// batchChunk is the encode-buffer threshold AppendBatch writes at.
const batchChunk = 256 << 10

// AppendBatch journals ops as one group: records are encoded into a few
// large writes and synced once under FsyncAlways, instead of a write (and
// sync) per op. This is the bulk path a replica's bootstrap re-journaling
// uses — per-record appends there would hold the caller's store lock across
// one fsync per entry.
func (m *Manager) AppendBatch(ops []Op) error {
	if m.opts.DisableAOF || len(ops) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.aof == nil {
		m.appendErrors++
		return errors.New("persist: journal segment unavailable")
	}
	buf := m.buf[:0]
	for i, op := range ops {
		buf = AppendRecord(buf, op)
		if len(buf) < batchChunk && i != len(ops)-1 {
			continue
		}
		n, err := m.aof.Write(buf)
		m.aofLen += int64(n)
		if err != nil {
			m.appendErrors++
			return fmt.Errorf("persist: aof append: %w", err)
		}
		buf = buf[:0]
	}
	if cap(buf) <= batchChunk {
		m.buf = buf[:0]
	} else {
		m.buf = nil // don't pin an outsized scratch past the batch
	}
	if m.opts.Fsync == FsyncAlways {
		if err := m.aof.Sync(); err != nil {
			m.appendErrors++
			return fmt.Errorf("persist: aof sync: %w", err)
		}
	} else {
		m.dirty = true
	}
	m.broadcastLocked()
	return nil
}

// NeedsCompaction reports whether the AOF has outgrown Options.AOFLimit, or
// is detached after a failed segment switch (compacting again reattaches
// it).
func (m *Manager) NeedsCompaction() bool {
	if m.opts.DisableAOF {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	return m.aof == nil || m.aofLen > m.opts.AOFLimit
}

// Compaction is an in-flight snapshot-then-truncate cycle started by
// BeginCompact. The journal has already moved to the new generation's
// segment; Commit serializes the snapshot that anchors it.
type Compaction struct {
	m    *Manager
	gen  uint64
	done bool
}

// BeginCompact retires the current journal segment — sync, close, open the
// next generation's segment — and returns a Compaction whose Commit writes
// the anchoring snapshot. The caller holds its store lock across BeginCompact
// (so the segment switch is consistent with the apply order) but calls
// Commit after releasing it: the expensive snapshot serialization then
// happens off the hot path, stalling nothing.
//
// Crash safety: between BeginCompact and Commit the newest snapshot is one
// generation behind the live segment, and recovery replays every AOF segment
// from that snapshot forward, so no acknowledged mutation is lost. A failure
// to open the fresh segment aborts cleanly, appends continuing on the old
// one.
func (m *Manager) BeginCompact() (*Compaction, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.compacting {
		return nil, errCompacting
	}
	// Settle the old segment first: a sync failure here aborts cleanly.
	if m.aof != nil {
		if err := m.aof.Sync(); err != nil {
			return nil, fmt.Errorf("persist: aof sync: %w", err)
		}
	}
	newGen := m.gen + 1
	if !m.opts.DisableAOF {
		old, oldLen := m.aof, m.aofLen
		m.aof = nil
		if err := m.openAOFLocked(newGen); err != nil {
			m.aof, m.aofLen = old, oldLen
			return nil, err
		}
		if old != nil {
			old.Close() // best-effort: already synced above
		}
	}
	m.gen = newGen
	m.compacting = true
	m.broadcastLocked()
	return &Compaction{m: m, gen: newGen}, nil
}

// Commit writes the snapshot for this compaction's generation (emit must
// call write once per live entry, reflecting the state at BeginCompact time)
// and garbage-collects superseded generations. Safe to call without any
// store lock held.
func (c *Compaction) Commit(emit func(write func(Op) error) error) error {
	if c.done {
		return errors.New("persist: compaction already committed")
	}
	c.done = true
	m := c.m
	_, werr := writeSnapshotFileFS(m.fs, filepath.Join(m.opts.Dir, snapName(c.gen)), emit)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compacting = false
	if werr != nil {
		return werr
	}
	m.snapGen = c.gen
	m.compactions++
	m.removeStaleLocked(c.gen)
	return syncDirFS(m.fs, m.opts.Dir)
}

// Compact runs BeginCompact and Commit back to back: a synchronous
// snapshot-then-truncate for callers that already hold their store lock and
// accept the stall (shutdown snapshots, tests).
func (m *Manager) Compact(emit func(write func(Op) error) error) error {
	c, err := m.BeginCompact()
	if err != nil {
		return err
	}
	return c.Commit(emit)
}

// Detach closes and drops the current journal segment handle without closing
// the manager: appends start failing fast ("journal segment unavailable")
// instead of hammering a broken disk, and NeedsCompaction reports true so the
// next compaction opens a fresh segment. A degraded shard calls this when the
// disk starts returning errors; the manager itself stays usable so the
// prober's healing compaction can reattach it.
func (m *Manager) Detach() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aof != nil {
		m.aof.Close() // best effort: the handle is already suspect
		m.aof = nil
		m.aofLen = 0
	}
}

// Probe tests whether the data directory can take durable writes again:
// create a scratch file, write, fsync, remove, all through the manager's FS
// so injected faults govern the verdict. The prober calls this before
// attempting a healing compaction — a cheap end-to-end disk check that
// exercises exactly the syscalls a journal append needs.
func (m *Manager) Probe() error {
	if m.opts.DisableAOF {
		return nil
	}
	m.mu.Lock()
	fs, dir := m.fs, m.opts.Dir
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrClosed
	}
	path := filepath.Join(dir, ".probe")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: probe open: %w", err)
	}
	if _, err := f.Write([]byte("camp-probe")); err != nil {
		f.Close()
		fs.Remove(path)
		return fmt.Errorf("persist: probe write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(path)
		return fmt.Errorf("persist: probe sync: %w", err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(path)
		return fmt.Errorf("persist: probe close: %w", err)
	}
	if err := fs.Remove(path); err != nil {
		return fmt.Errorf("persist: probe remove: %w", err)
	}
	return nil
}

// Close flushes and syncs the journal and stops the background sync loop.
// It is idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.broadcastLocked()
	m.mu.Unlock()
	close(m.stop)
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.lock.Release()
	if m.aof == nil {
		return nil
	}
	var first error
	if err := m.aof.Sync(); err != nil {
		first = err
	}
	if err := m.aof.Close(); err != nil && first == nil {
		first = err
	}
	m.aof = nil
	return first
}

// Kill releases the manager without flushing or syncing anything, simulating
// a crash for recovery tests and demos: whatever the fsync policy already
// put on disk is all a restart will see. Orderly shutdown is Close.
func (m *Manager) Kill() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.broadcastLocked()
	m.mu.Unlock()
	close(m.stop)
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aof != nil {
		m.aof.Close()
		m.aof = nil
	}
	// A real crash drops the flock with the process; simulate that too so a
	// recovering server can take the directory over.
	m.lock.Release()
}

func (m *Manager) syncLoop() {
	defer m.wg.Done()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.mu.Lock()
			if m.dirty && m.aof != nil {
				if err := m.aof.Sync(); err != nil {
					m.appendErrors++
					m.logf("persist: background aof sync: %v", err)
				} else {
					m.dirty = false
				}
			}
			m.mu.Unlock()
		}
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

func snapName(gen uint64) string { return fmt.Sprintf("snap-%08d.camp", gen) }
func aofName(gen uint64) string  { return fmt.Sprintf("aof-%08d.log", gen) }

func (m *Manager) snapPath(gen uint64) string {
	return filepath.Join(m.opts.Dir, snapName(gen))
}

func (m *Manager) aofPath(gen uint64) string {
	return filepath.Join(m.opts.Dir, aofName(gen))
}

// openAOFLocked opens (creating if needed) the segment for gen in append
// mode. A segment shorter than its header — a crash between creation and the
// header sync — is reset to a fresh header.
func (m *Manager) openAOFLocked(gen uint64) error {
	path := m.aofPath(gen)
	f, err := m.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: open aof: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: stat aof: %w", err)
	}
	size := st.Size()
	if size < fileHeaderLen {
		if size != 0 {
			if err := f.Truncate(0); err != nil {
				f.Close()
				return fmt.Errorf("persist: reset torn aof header: %w", err)
			}
		}
		if _, err := f.Write(appendFileHeader(nil, aofMagic, AOFVersion)); err != nil {
			f.Close()
			return fmt.Errorf("persist: write aof header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("persist: sync aof header: %w", err)
		}
		size = fileHeaderLen
	}
	m.aof = f
	m.aofLen = size
	return nil
}

// replayAOF re-applies one segment. Only the final segment may be torn: its
// damaged tail is dropped with a warning, and — with truncate set — cut from
// the file. Corruption anywhere else — a failed CRC or a tear in a non-final
// segment — refuses recovery.
func replayAOF(fs fault.FS, path string, last, truncate bool, logf func(format string, args ...any), apply func(Op) error) (ops int, truncated int64, err error) {
	warnf := func(format string, args ...any) {
		if logf != nil {
			logf(format, args...)
		}
	}
	cut := func(n int64) error {
		if !truncate {
			return nil
		}
		return fs.Truncate(path, n)
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("persist: read aof: %w", err)
	}
	name := filepath.Base(path)
	if len(data) < fileHeaderLen {
		// Torn before the header finished; nothing was journaled.
		if !last || len(data) == 0 {
			if len(data) == 0 {
				return 0, 0, nil
			}
			return 0, 0, fmt.Errorf("%w: aof %s header truncated", ErrCorruptRecord, name)
		}
		warnf("persist: aof %s: truncating torn %d-byte header", name, len(data))
		return 0, int64(len(data)), cut(0)
	}
	if _, err := checkFileHeader(data, aofMagic, AOFVersion, "aof"); err != nil {
		return 0, 0, fmt.Errorf("persist: aof %s: %w", name, err)
	}
	off := fileHeaderLen
	for off < len(data) {
		op, used, derr := DecodeRecord(data[off:])
		if derr != nil {
			if last && errors.Is(derr, ErrShortRecord) {
				// A torn final record: everything before off was
				// intact, so drop the tail and keep serving.
				tail := int64(len(data) - off)
				warnf("persist: aof %s: truncating torn final record (%d bytes) after %d ops",
					name, tail, ops)
				return ops, tail, cut(int64(off))
			}
			return ops, 0, fmt.Errorf("persist: aof %s: record %d: %w", name, ops, derr)
		}
		if err := apply(op); err != nil {
			return ops, 0, fmt.Errorf("persist: aof %s: apply record %d: %w", name, ops, err)
		}
		off += used
		ops++
	}
	return ops, 0, nil
}

// removeStaleLocked deletes snapshot and AOF files older than keepGen.
// Attached replication tails lower the floor: a follower mid-stream keeps its
// remaining segments alive so a compaction never forces it into a full
// resync.
func (m *Manager) removeStaleLocked(keepGen uint64) {
	for tr := range m.tailers {
		if tr.gen < keepGen {
			keepGen = tr.gen
		}
	}
	snaps, aofs, err := scanDir(m.fs, m.opts.Dir)
	if err != nil {
		return
	}
	for _, g := range snaps {
		if g < keepGen {
			m.fs.Remove(m.snapPath(g))
		}
	}
	for _, g := range aofs {
		if g < keepGen {
			m.fs.Remove(m.aofPath(g))
		}
	}
}

// scanDir lists snapshot and AOF generations present in dir, ascending.
func scanDir(fs fault.FS, dir string) (snaps, aofs []uint64, err error) {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: read dir: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		var g uint64
		switch name := e.Name(); {
		case parseGen(name, "snap-", ".camp", &g):
			snaps = append(snaps, g)
		case parseGen(name, "aof-", ".log", &g):
			aofs = append(aofs, g)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(aofs, func(i, j int) bool { return aofs[i] < aofs[j] })
	return snaps, aofs, nil
}

func parseGen(name, prefix, suffix string, out *uint64) bool {
	if len(name) != len(prefix)+8+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	var g uint64
	for _, c := range name[len(prefix) : len(name)-len(suffix)] {
		if c < '0' || c > '9' {
			return false
		}
		g = g*10 + uint64(c-'0')
	}
	if g == 0 {
		return false
	}
	*out = g
	return true
}
