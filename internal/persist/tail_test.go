package persist

import (
	"bufio"
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func setOp(key, val string) Op {
	return Op{Kind: KindSet, Key: key, Value: []byte(val), Size: int64(len(key) + len(val)), Cost: 1}
}

// nextRecord drives Next until a record (not a generation switch) arrives.
func nextRecord(t *testing.T, tr *TailReader, wait time.Duration) (Op, TailEvent) {
	t.Helper()
	for {
		ev, err := tr.Next(wait)
		if err != nil {
			t.Fatalf("tail next: %v", err)
		}
		if ev.Record == nil {
			continue
		}
		op, used, err := DecodeRecord(ev.Record)
		if err != nil || used != len(ev.Record) {
			t.Fatalf("tail produced undecodable record: %v (used %d of %d)", err, used, len(ev.Record))
		}
		return op, ev
	}
}

func TestTailReaderFollowsAppends(t *testing.T) {
	st := newMapStore()
	m, _ := openTest(t, t.TempDir(), Options{Fsync: FsyncNo}, st)
	defer m.Close()

	tr, err := m.TailFrom(1, SegmentHeaderLen)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if _, err := tr.Next(0); !errors.Is(err, ErrTailTimeout) {
		t.Fatalf("empty journal tail: %v, want ErrTailTimeout", err)
	}
	want := []Op{setOp("a", "1"), setOp("b", "2"), {Kind: KindDelete, Key: "a"}}
	for _, op := range want {
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, ev := nextRecord(t, tr, time.Second)
		if got.Kind != w.Kind || got.Key != w.Key || !bytes.Equal(got.Value, w.Value) {
			t.Fatalf("record %d: got %+v want %+v", i, got, w)
		}
		if ev.Gen != 1 {
			t.Fatalf("record %d in generation %d, want 1", i, ev.Gen)
		}
	}
	// A blocked tail wakes on the next append.
	done := make(chan Op, 1)
	go func() {
		op, _ := nextRecord(t, tr, 5*time.Second)
		done <- op
	}()
	time.Sleep(20 * time.Millisecond)
	if err := m.Append(setOp("late", "x")); err != nil {
		t.Fatal(err)
	}
	select {
	case op := <-done:
		if op.Key != "late" {
			t.Fatalf("woken tail read %q, want late", op.Key)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tail never woke on append")
	}
}

func TestTailReaderCrossesGenerations(t *testing.T) {
	st := newMapStore()
	m, _ := openTest(t, t.TempDir(), Options{Fsync: FsyncNo}, st)
	defer m.Close()

	for _, op := range []Op{setOp("a", "1"), setOp("b", "2")} {
		st.apply(op)
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := m.TailFrom(1, SegmentHeaderLen)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	nextRecord(t, tr, time.Second)
	nextRecord(t, tr, time.Second)

	if err := m.Compact(st.emit); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(setOp("c", "3")); err != nil {
		t.Fatal(err)
	}

	ev, err := tr.Next(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Record != nil || ev.Gen != 2 || ev.Off != SegmentHeaderLen {
		t.Fatalf("expected switch to generation 2, got %+v", ev)
	}
	op, ev := nextRecord(t, tr, time.Second)
	if op.Key != "c" || ev.Gen != 2 {
		t.Fatalf("post-switch record: %+v in gen %d", op, ev.Gen)
	}
	// The reader's position round-trips through TailFrom (a reconnect).
	tr2, err := m.TailFrom(ev.Gen, ev.Off)
	if err != nil {
		t.Fatalf("resume at %d/%d: %v", ev.Gen, ev.Off, err)
	}
	tr2.Close()
}

func TestTailRetentionAcrossCompaction(t *testing.T) {
	st := newMapStore()
	dir := t.TempDir()
	m, _ := openTest(t, dir, Options{Fsync: FsyncNo}, st)
	defer m.Close()

	op := setOp("k", "v")
	st.apply(op)
	if err := m.Append(op); err != nil {
		t.Fatal(err)
	}
	tr, err := m.TailFrom(1, SegmentHeaderLen)
	if err != nil {
		t.Fatal(err)
	}
	// Two compactions would normally GC generation 1; the attached tail
	// must hold it.
	for i := 0; i < 2; i++ {
		if err := m.Compact(st.emit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, aofName(1))); err != nil {
		t.Fatalf("generation 1 GC'd under an attached tail: %v", err)
	}
	tr.Close()
	if err := m.Compact(st.emit); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, aofName(1))); !os.IsNotExist(err) {
		t.Fatalf("generation 1 survived after the tail detached: %v", err)
	}
}

func TestTailFromRejectsBadPositions(t *testing.T) {
	st := newMapStore()
	m, _ := openTest(t, t.TempDir(), Options{Fsync: FsyncNo}, st)
	defer m.Close()
	if err := m.Append(setOp("k", "v")); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		gen  uint64
		off  int64
	}{
		{"zero generation", 0, 0},
		{"future generation", 9, SegmentHeaderLen},
		{"offset before header", 1, 3},
		{"offset past end", 1, 1 << 20},
	} {
		if _, err := m.TailFrom(tc.gen, tc.off); !errors.Is(err, ErrStalePosition) {
			t.Fatalf("%s: got %v, want ErrStalePosition", tc.name, err)
		}
	}
	// GC'd generation: compact twice so generation 1 is removed, then ask
	// for it.
	st.apply(setOp("k", "v"))
	for i := 0; i < 2; i++ {
		if err := m.Compact(st.emit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.TailFrom(1, SegmentHeaderLen); !errors.Is(err, ErrStalePosition) {
		t.Fatalf("GC'd generation: got %v, want ErrStalePosition", err)
	}
}

// TestFullSyncMatchesRecovery proves the bootstrap contract: applying the
// FullSync snapshot plus the tailed records reproduces exactly what local
// recovery of the same directory would.
func TestFullSyncMatchesRecovery(t *testing.T) {
	st := newMapStore()
	dir := t.TempDir()
	m, _ := openTest(t, dir, Options{Fsync: FsyncNo}, st)
	defer m.Close()

	journal := func(op Op) {
		st.apply(op)
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	journal(setOp("a", "1"))
	journal(setOp("b", "2"))
	if err := m.Compact(st.emit); err != nil {
		t.Fatal(err)
	}
	journal(setOp("c", "3"))
	journal(Op{Kind: KindDelete, Key: "a"})

	fs, err := m.FullSync()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.SnapGen != 2 || fs.Snapshot == nil || fs.SnapSize <= 0 {
		t.Fatalf("full sync source: %+v", fs)
	}
	got := newMapStore()
	if _, err := ReadSnapshot(bufio.NewReader(fs.Snapshot), got.apply); err != nil {
		t.Fatal(err)
	}
	for {
		ev, err := fs.Tail.Next(0)
		if errors.Is(err, ErrTailTimeout) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Record == nil {
			continue
		}
		op, _, err := DecodeRecord(ev.Record)
		if err != nil {
			t.Fatal(err)
		}
		got.apply(op)
	}
	if len(got.m) != len(st.m) {
		t.Fatalf("bootstrap produced %d keys, recovery state has %d", len(got.m), len(st.m))
	}
	for k, w := range st.m {
		g, ok := got.m[k]
		if !ok || !bytes.Equal(g.Value, w.Value) {
			t.Fatalf("key %q: bootstrap %+v, want %+v", k, g, w)
		}
	}
}
