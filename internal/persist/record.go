// Package persist adds durability and warm restart to the cost-aware KVS:
// a binary snapshot format that serializes live entries together with their
// CAMP metadata (the per-key recomputation cost is the expensive-to-relearn
// part), and an append-only log (AOF) that journals every mutation between
// snapshots. Recovery loads the newest valid snapshot, replays the AOF tail,
// and tolerates a torn final record the way Redis' aof-load-truncated does.
//
// The package is deliberately value-agnostic: callers describe mutations as
// Op records (key, value, flags, expiry, size, cost) and re-apply recovered
// Ops through whatever eviction policy they run, so CAMP's queues and heap
// are rebuilt with their original costs rather than reset to cold defaults.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// Kind discriminates journal records.
type Kind uint8

// Journal record kinds.
const (
	// KindSet stores or replaces a key with full metadata.
	KindSet Kind = 1
	// KindDelete removes a key.
	KindDelete Kind = 2
	// KindTouch updates a key's expiry without rewriting the value.
	KindTouch Kind = 3
	// KindFlush empties the store (memcached flush_all). With no key it
	// empties everything (the only form before multi-tenancy, so legacy
	// journals keep their meaning); with a key it empties only that
	// tenant's entries. Journaling it makes a flush durable even when the
	// snapshot-then-truncate that normally follows fails.
	KindFlush Kind = 4
	// KindSetPrio is KindSet plus the entry's eviction-priority offset
	// (policy priority H minus the global offset L, encoded by the policy).
	// Snapshot format v2 writes these so a warm start restores the live
	// cross-queue eviction schedule exactly, even mid-churn; stores whose
	// policy has no priority state keep writing plain KindSet.
	KindSetPrio Kind = 5
	// KindPosition records a replication position: the primary journal run,
	// generation and byte offset the follower had applied up to this point.
	// Followers append one atomically with each applied op (and snapshots
	// carry the latest one across compaction), so a restarted follower
	// resumes with CONTINUE instead of a full resync. It mutates no data.
	KindPosition Kind = 6
	// KindScale records a policy's adaptive priority scale (CAMP's ratio
	// integerizer state — the largest size ever observed). Snapshot v2
	// writes it ahead of the entries so a restored policy buckets future
	// inserts exactly as the live one would have; it is learned from the
	// whole workload, evicted entries included, so it cannot be re-derived
	// from the snapshot's entries.
	KindScale Kind = 7
	// KindTenant records a tenant's existence and reserved-byte quota (the
	// Key field holds the tenant name). Journaled when a tenant is created
	// or its reserve changes, and written ahead of the entries in snapshot
	// v2+, so warm restarts and FULLSYNC bootstraps restore tenant
	// ownership and quotas even for tenants with no resident keys.
	KindTenant Kind = 8
)

// Position is a replication position: a byte offset into one generation of
// one journal run. RunID scopes it — offsets are only meaningful against
// the journal run that produced them (see Manager.RunID).
type Position struct {
	RunID uint64
	Gen   uint64
	Off   int64
}

// Op is one durable mutation. Snapshots are sequences of KindSet Ops; the
// AOF additionally carries deletes and touches.
type Op struct {
	Kind  Kind
	Key   string
	Value []byte
	// Flags is the opaque client flags word (memcached semantics).
	Flags uint32
	// Expires is the absolute expiry as Unix nanoseconds; 0 means none.
	// Journaling absolute times keeps TTL semantics exact across restarts.
	Expires int64
	// Size is the charged size at the time the op was applied. Stores that
	// derive size from key/value/overhead may recompute it on recovery.
	Size int64
	// Cost is the CAMP recomputation cost — the state that took real
	// wall-clock time to learn and that recovery must not throw away.
	Cost int64
	// Priority and Class are the policy priority offset and priority class
	// (CAMP's queue id) carried by KindSetPrio records — opaque to this
	// package; the policy that exported them decodes them. Zero for every
	// other kind.
	Priority uint64
	Class    uint64
	// Pos is the replication position carried by KindPosition records;
	// zero for every other kind.
	Pos Position
	// Scale is the adaptive priority scale carried by KindScale records;
	// zero for every other kind.
	Scale uint64
	// Reserve is the tenant's reserved-byte quota carried by KindTenant
	// records (whose Key is the tenant name); zero for every other kind.
	Reserve int64
}

// ExpiresAt converts the Expires field to a time.Time (zero when unset).
func (op Op) ExpiresAt() time.Time {
	if op.Expires == 0 {
		return time.Time{}
	}
	return time.Unix(0, op.Expires)
}

// ExpiresFrom sets Expires from a time.Time (zero time means no expiry).
func ExpiresFrom(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// Wire limits. Records beyond these are rejected as corrupt rather than
// trusted, so a flipped length byte cannot drive a huge allocation.
const (
	// MaxKeyLen bounds the key length in a record.
	MaxKeyLen = 1 << 16
	// MaxValueLen bounds the value length in a record.
	MaxValueLen = 1 << 30
	// maxPayload bounds a whole record payload.
	maxPayload = MaxValueLen + MaxKeyLen + 64
)

// recordHeaderLen is the fixed prefix of every record: a uint32 payload
// length followed by a uint32 CRC32 (IEEE) of the payload.
const recordHeaderLen = 8

// Decoding errors.
var (
	// ErrShortRecord means the buffer ends mid-record — a torn write. AOF
	// recovery treats this as "truncate here and keep serving".
	ErrShortRecord = errors.New("persist: short record")
	// ErrCorruptRecord means the record is structurally invalid or fails
	// its checksum; the data cannot be trusted.
	ErrCorruptRecord = errors.New("persist: corrupt record")
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// AppendRecord appends the encoded record for op to dst and returns the
// extended slice. Layout: uint32 payload length, uint32 CRC32(payload),
// payload. The payload is op-kind-tagged and uses varints for all sizes.
func AppendRecord(dst []byte, op Op) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	dst = append(dst, byte(op.Kind))
	dst = binary.AppendUvarint(dst, uint64(len(op.Key)))
	dst = append(dst, op.Key...)
	switch op.Kind {
	case KindSet, KindSetPrio:
		dst = binary.AppendUvarint(dst, uint64(len(op.Value)))
		dst = append(dst, op.Value...)
		dst = binary.LittleEndian.AppendUint32(dst, op.Flags)
		dst = binary.AppendVarint(dst, op.Expires)
		dst = binary.AppendVarint(dst, op.Size)
		dst = binary.AppendVarint(dst, op.Cost)
		if op.Kind == KindSetPrio {
			dst = binary.AppendUvarint(dst, op.Priority)
			dst = binary.AppendUvarint(dst, op.Class)
		}
	case KindTouch:
		dst = binary.AppendVarint(dst, op.Expires)
	case KindPosition:
		dst = binary.AppendUvarint(dst, op.Pos.RunID)
		dst = binary.AppendUvarint(dst, op.Pos.Gen)
		dst = binary.AppendVarint(dst, op.Pos.Off)
	case KindScale:
		dst = binary.AppendUvarint(dst, op.Scale)
	case KindTenant:
		dst = binary.AppendVarint(dst, op.Reserve)
	case KindDelete, KindFlush:
		// Key only (empty for a global flush, a tenant name for a scoped
		// one).
	}
	payload := dst[start+recordHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// CheckRecord verifies the framing and checksum of the record at the front
// of b without decoding its payload, returning the record's total byte
// length. The CRC guarantees the payload is byte-identical to what
// AppendRecord produced, so forwarding paths (replication tails) can skip the
// structural decode the receiver performs anyway.
func CheckRecord(b []byte) (int, error) {
	if len(b) < recordHeaderLen {
		return 0, ErrShortRecord
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > maxPayload {
		return 0, fmt.Errorf("%w: payload length %d", ErrCorruptRecord, n)
	}
	if len(b) < recordHeaderLen+int(n) {
		return 0, ErrShortRecord
	}
	payload := b[recordHeaderLen : recordHeaderLen+int(n)]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(b[4:]); got != want {
		return 0, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorruptRecord, got, want)
	}
	return recordHeaderLen + int(n), nil
}

// DecodeRecord decodes one record from the front of b, returning the op and
// the number of bytes consumed. It returns ErrShortRecord when b ends before
// the record does (a torn tail) and ErrCorruptRecord when the checksum or
// structure is invalid.
func DecodeRecord(b []byte) (Op, int, error) {
	if len(b) < recordHeaderLen {
		return Op{}, 0, ErrShortRecord
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > maxPayload {
		return Op{}, 0, fmt.Errorf("%w: payload length %d", ErrCorruptRecord, n)
	}
	if len(b) < recordHeaderLen+int(n) {
		return Op{}, 0, ErrShortRecord
	}
	payload := b[recordHeaderLen : recordHeaderLen+int(n)]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(b[4:]); got != want {
		return Op{}, 0, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorruptRecord, got, want)
	}
	op, err := decodePayload(payload)
	if err != nil {
		return Op{}, 0, err
	}
	return op, recordHeaderLen + int(n), nil
}

func decodePayload(p []byte) (Op, error) {
	if len(p) == 0 {
		return Op{}, fmt.Errorf("%w: empty payload", ErrCorruptRecord)
	}
	op := Op{Kind: Kind(p[0])}
	p = p[1:]
	key, p, err := decodeBytes(p, MaxKeyLen, "key")
	if err != nil {
		return Op{}, err
	}
	// KindFlush is the one kind where the key is optional: empty means a
	// global flush (the only form legacy journals contain), non-empty names
	// the tenant being flushed.
	keyless := op.Kind == KindPosition || op.Kind == KindScale
	if len(key) == 0 && !keyless && op.Kind != KindFlush {
		return Op{}, fmt.Errorf("%w: empty key", ErrCorruptRecord)
	}
	if len(key) != 0 && keyless {
		return Op{}, fmt.Errorf("%w: kind %d record carries a key", ErrCorruptRecord, op.Kind)
	}
	op.Key = string(key)
	switch op.Kind {
	case KindSet, KindSetPrio:
		val, rest, err := decodeBytes(p, MaxValueLen, "value")
		if err != nil {
			return Op{}, err
		}
		p = rest
		op.Value = append([]byte(nil), val...)
		if len(p) < 4 {
			return Op{}, fmt.Errorf("%w: missing flags", ErrCorruptRecord)
		}
		op.Flags = binary.LittleEndian.Uint32(p)
		p = p[4:]
		if op.Expires, p, err = decodeVarint(p, "expires"); err != nil {
			return Op{}, err
		}
		if op.Size, p, err = decodeVarint(p, "size"); err != nil {
			return Op{}, err
		}
		if op.Cost, p, err = decodeVarint(p, "cost"); err != nil {
			return Op{}, err
		}
		if op.Size < 0 || op.Cost < 0 {
			return Op{}, fmt.Errorf("%w: negative size or cost", ErrCorruptRecord)
		}
		if op.Kind == KindSetPrio {
			if op.Priority, p, err = decodeUvarint(p, "priority"); err != nil {
				return Op{}, err
			}
			if op.Class, p, err = decodeUvarint(p, "priority class"); err != nil {
				return Op{}, err
			}
		}
	case KindDelete, KindFlush:
	case KindTouch:
		if op.Expires, p, err = decodeVarint(p, "expires"); err != nil {
			return Op{}, err
		}
	case KindPosition:
		if op.Pos.RunID, p, err = decodeUvarint(p, "run id"); err != nil {
			return Op{}, err
		}
		if op.Pos.Gen, p, err = decodeUvarint(p, "generation"); err != nil {
			return Op{}, err
		}
		if op.Pos.Off, p, err = decodeVarint(p, "offset"); err != nil {
			return Op{}, err
		}
		// A structurally valid position names a real run, a real
		// generation, and an offset at or past the segment header (run ID
		// zero is the follower's "no position" sentinel and is never
		// persisted).
		if op.Pos.RunID == 0 || op.Pos.Gen == 0 || op.Pos.Off < SegmentHeaderLen {
			return Op{}, fmt.Errorf("%w: invalid position %+v", ErrCorruptRecord, op.Pos)
		}
	case KindScale:
		if op.Scale, p, err = decodeUvarint(p, "scale"); err != nil {
			return Op{}, err
		}
	case KindTenant:
		if op.Reserve, p, err = decodeVarint(p, "reserve"); err != nil {
			return Op{}, err
		}
		if op.Reserve < 0 {
			return Op{}, fmt.Errorf("%w: negative tenant reserve", ErrCorruptRecord)
		}
	default:
		return Op{}, fmt.Errorf("%w: unknown op kind %d", ErrCorruptRecord, op.Kind)
	}
	if len(p) != 0 {
		return Op{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorruptRecord, len(p))
	}
	return op, nil
}

func decodeBytes(p []byte, limit uint64, what string) ([]byte, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || n > limit {
		return nil, nil, fmt.Errorf("%w: bad %s length", ErrCorruptRecord, what)
	}
	p = p[w:]
	if uint64(len(p)) < n {
		return nil, nil, fmt.Errorf("%w: %s overruns payload", ErrCorruptRecord, what)
	}
	return p[:n], p[n:], nil
}

func decodeVarint(p []byte, what string) (int64, []byte, error) {
	v, w := binary.Varint(p)
	if w <= 0 {
		return 0, nil, fmt.Errorf("%w: bad %s varint", ErrCorruptRecord, what)
	}
	return v, p[w:], nil
}

func decodeUvarint(p []byte, what string) (uint64, []byte, error) {
	v, w := binary.Uvarint(p)
	if w <= 0 {
		return 0, nil, fmt.Errorf("%w: bad %s uvarint", ErrCorruptRecord, what)
	}
	return v, p[w:], nil
}
