package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Replication stream frame kinds. After the text handshake (see
// internal/kvserver's replconf/sync grammar) the primary sends a binary frame
// stream: journal records exactly as they sit in the segment files,
// generation switches when compaction retires a segment, and pings so both
// ends can detect a dead peer while the journal is idle.
const (
	// FrameRecord carries one journal record, byte-identical to its on-disk
	// encoding (length, CRC, payload): the follower's offset accounting adds
	// the frame's Bytes to mirror the primary's file position.
	FrameRecord byte = 'R'
	// FrameGen announces that subsequent records belong to segment Gen,
	// starting at SegmentHeaderLen.
	FrameGen byte = 'G'
	// FramePing is a keepalive carrying nothing.
	FramePing byte = 'P'
	// FrameSkip advances the follower's offset by Bytes without carrying a
	// record. Only tenant-filtered feeds emit it (negotiated in the
	// handshake): the primary coalesces the bytes of records outside the
	// follower's tenant subset so the follower's position keeps mirroring the
	// primary's file position and a later CONTINUE resumes at a real record
	// boundary. Legacy/unfiltered streams never contain this frame.
	FrameSkip byte = 'S'
)

// Frame is one decoded replication stream frame. Op and Bytes are valid for
// FrameRecord; Bytes alone for FrameSkip; Gen for FrameGen.
type Frame struct {
	Kind  byte
	Op    Op
	Bytes int64
	Gen   uint64
}

// StreamWriter encodes replication frames onto a buffered writer. The caller
// owns flushing (batching frames per flush keeps the feed cheap).
type StreamWriter struct {
	w   *bufio.Writer
	buf [9]byte
}

// NewStreamWriter wraps w.
func NewStreamWriter(w *bufio.Writer) *StreamWriter {
	return &StreamWriter{w: w}
}

// Record writes a record frame. raw must be one complete encoded record (as
// returned by AppendRecord or a TailEvent).
func (sw *StreamWriter) Record(raw []byte) error {
	if err := sw.w.WriteByte(FrameRecord); err != nil {
		return err
	}
	_, err := sw.w.Write(raw)
	return err
}

// GenSwitch writes a generation-switch frame.
func (sw *StreamWriter) GenSwitch(gen uint64) error {
	sw.buf[0] = FrameGen
	binary.LittleEndian.PutUint64(sw.buf[1:], gen)
	_, err := sw.w.Write(sw.buf[:])
	return err
}

// Ping writes a keepalive frame.
func (sw *StreamWriter) Ping() error {
	return sw.w.WriteByte(FramePing)
}

// Skip writes a skip frame advancing the follower's offset by delta bytes.
func (sw *StreamWriter) Skip(delta int64) error {
	sw.buf[0] = FrameSkip
	binary.LittleEndian.PutUint64(sw.buf[1:], uint64(delta))
	_, err := sw.w.Write(sw.buf[:])
	return err
}

// Flush drains the underlying buffered writer.
func (sw *StreamWriter) Flush() error {
	return sw.w.Flush()
}

// StreamReader decodes replication frames from a buffered reader, validating
// every record's framing, checksum and payload structure before handing it to
// the caller — a malformed or truncated stream surfaces as ErrCorruptRecord
// (or an io error), never as a panic or a bad op applied downstream.
type StreamReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewStreamReader wraps r.
func NewStreamReader(r *bufio.Reader) *StreamReader {
	return &StreamReader{r: r}
}

// Next decodes one frame. io.EOF is returned only at a clean frame boundary;
// a stream ending mid-frame is io.ErrUnexpectedEOF.
func (sr *StreamReader) Next() (Frame, error) {
	kind, err := sr.r.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	switch kind {
	case FramePing:
		return Frame{Kind: FramePing}, nil
	case FrameGen:
		var b [8]byte
		if _, err := io.ReadFull(sr.r, b[:]); err != nil {
			return Frame{}, noEOF(err)
		}
		gen := binary.LittleEndian.Uint64(b[:])
		if gen == 0 {
			return Frame{}, fmt.Errorf("%w: generation-switch to 0", ErrCorruptRecord)
		}
		return Frame{Kind: FrameGen, Gen: gen}, nil
	case FrameSkip:
		var b [8]byte
		if _, err := io.ReadFull(sr.r, b[:]); err != nil {
			return Frame{}, noEOF(err)
		}
		delta := int64(binary.LittleEndian.Uint64(b[:]))
		if delta <= 0 {
			return Frame{}, fmt.Errorf("%w: skip frame delta %d", ErrCorruptRecord, delta)
		}
		return Frame{Kind: FrameSkip, Bytes: delta}, nil
	case FrameRecord:
		if cap(sr.buf) < recordHeaderLen {
			sr.buf = make([]byte, 0, 64<<10)
		}
		hdr := sr.buf[:recordHeaderLen]
		if _, err := io.ReadFull(sr.r, hdr); err != nil {
			return Frame{}, noEOF(err)
		}
		n := binary.LittleEndian.Uint32(hdr)
		if n == 0 || n > maxPayload {
			return Frame{}, fmt.Errorf("%w: record frame payload length %d", ErrCorruptRecord, n)
		}
		total := recordHeaderLen + int(n)
		if cap(sr.buf) < total {
			grown := make([]byte, 0, total)
			sr.buf = append(grown, hdr...)
		}
		rec := sr.buf[:total]
		if _, err := io.ReadFull(sr.r, rec[recordHeaderLen:]); err != nil {
			return Frame{}, noEOF(err)
		}
		op, used, err := DecodeRecord(rec)
		if err != nil {
			return Frame{}, err
		}
		if used != total {
			return Frame{}, fmt.Errorf("%w: record frame length mismatch", ErrCorruptRecord)
		}
		return Frame{Kind: FrameRecord, Op: op, Bytes: int64(total)}, nil
	default:
		return Frame{}, fmt.Errorf("%w: unknown frame kind 0x%02x", ErrCorruptRecord, kind)
	}
}

// noEOF converts a bare EOF inside a frame into ErrUnexpectedEOF so callers
// never mistake a torn frame for a clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
