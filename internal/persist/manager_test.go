package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mapStore is a trivial Op sink standing in for a real store.
type mapStore struct {
	m map[string]Op
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string]Op)} }

func (s *mapStore) apply(op Op) error {
	switch op.Kind {
	case KindSet:
		s.m[op.Key] = op
	case KindDelete:
		delete(s.m, op.Key)
	case KindTouch:
		it, ok := s.m[op.Key]
		if ok {
			it.Expires = op.Expires
			s.m[op.Key] = it
		}
	case KindFlush:
		clear(s.m)
	default:
		return fmt.Errorf("unknown kind %d", op.Kind)
	}
	return nil
}

func (s *mapStore) emit(write func(Op) error) error {
	for _, op := range s.m {
		if err := write(op); err != nil {
			return err
		}
	}
	return nil
}

func openTest(t *testing.T, dir string, opts Options, st *mapStore) (*Manager, RecoverStats) {
	t.Helper()
	opts.Dir = dir
	m, stats, err := Open(opts, st.apply)
	if err != nil {
		t.Fatal(err)
	}
	return m, stats
}

func TestManagerAppendRecover(t *testing.T) {
	for _, fsync := range []string{FsyncAlways, FsyncEverySec, FsyncNo} {
		t.Run(fsync, func(t *testing.T) {
			dir := t.TempDir()
			st := newMapStore()
			m, stats := openTest(t, dir, Options{Fsync: fsync}, st)
			if stats.SnapshotOps != 0 || stats.ReplayedOps != 0 || stats.Generation != 1 {
				t.Fatalf("fresh dir recovered %+v", stats)
			}
			ops := []Op{
				{Kind: KindSet, Key: "a", Value: []byte("1"), Flags: 3, Size: 10, Cost: 500},
				{Kind: KindSet, Key: "b", Value: []byte("2"), Size: 11, Cost: 9},
				{Kind: KindTouch, Key: "a", Expires: 42},
				{Kind: KindDelete, Key: "b"},
			}
			for _, op := range ops {
				if err := m.Append(op); err != nil {
					t.Fatal(err)
				}
				if err := st.apply(op); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}

			st2 := newMapStore()
			m2, stats := openTest(t, dir, Options{Fsync: fsync}, st2)
			defer m2.Close()
			if stats.ReplayedOps != len(ops) {
				t.Fatalf("replayed %d ops, want %d", stats.ReplayedOps, len(ops))
			}
			if len(st2.m) != 1 {
				t.Fatalf("recovered %d keys, want 1", len(st2.m))
			}
			got := st2.m["a"]
			if string(got.Value) != "1" || got.Flags != 3 || got.Cost != 500 || got.Expires != 42 {
				t.Fatalf("recovered op mismatch: %+v", got)
			}
		})
	}
}

// TestManagerHardStopFsyncAlways mimics a crash: the manager is abandoned
// without Close, and with FsyncAlways every acknowledged append must still
// be recoverable.
func TestManagerHardStopFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)
	for i := 0; i < 100; i++ {
		op := Op{Kind: KindSet, Key: fmt.Sprintf("k%03d", i), Value: []byte("v"), Size: 10, Cost: int64(i)}
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: Kill drops the journal without any final sync, as in a
	// SIGKILL (it also releases the dir flock, which a real process death
	// would release implicitly — within one test process it must be
	// explicit).
	m.Kill()
	st2 := newMapStore()
	m2, stats := openTest(t, dir, Options{}, st2)
	defer m2.Close()
	if stats.ReplayedOps != 100 || len(st2.m) != 100 {
		t.Fatalf("replayed %d ops into %d keys, want 100/100", stats.ReplayedOps, len(st2.m))
	}
}

// TestManagerTornTail is the acceptance case: a torn final AOF record is
// truncated with a warning and the intact prefix is served.
func TestManagerTornTail(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)
	for i := 0; i < 10; i++ {
		if err := m.Append(Op{Kind: KindSet, Key: fmt.Sprintf("k%d", i), Value: []byte("v"), Size: 10, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop a few bytes off the segment.
	path := filepath.Join(dir, "aof-00000001.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	var warned []string
	st2 := newMapStore()
	m2, stats := openTest(t, dir, Options{
		Logf: func(f string, a ...any) { warned = append(warned, fmt.Sprintf(f, a...)) },
	}, st2)
	if stats.ReplayedOps != 9 || stats.TruncatedBytes == 0 {
		t.Fatalf("torn tail: replayed %d ops, truncated %d bytes", stats.ReplayedOps, stats.TruncatedBytes)
	}
	if len(st2.m) != 9 {
		t.Fatalf("recovered %d keys, want 9", len(st2.m))
	}
	if len(warned) == 0 || !strings.Contains(warned[0], "torn") {
		t.Fatalf("expected a torn-tail warning, got %q", warned)
	}
	// The manager must keep serving: append after truncation, then a third
	// recovery sees a clean log.
	if err := m2.Append(Op{Kind: KindSet, Key: "post", Value: []byte("v"), Size: 10, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	st3 := newMapStore()
	m3, stats := openTest(t, dir, Options{}, st3)
	defer m3.Close()
	if stats.TruncatedBytes != 0 || stats.ReplayedOps != 10 {
		t.Fatalf("post-truncation recovery: %+v", stats)
	}
}

// TestManagerRefusesMidLogCorruption: a CRC failure that is not a torn tail
// cannot be silently skipped.
func TestManagerRefusesMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)
	for i := 0; i < 5; i++ {
		if err := m.Append(Op{Kind: KindSet, Key: fmt.Sprintf("key-%d", i), Value: []byte("value"), Size: 20, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "aof-00000001.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[fileHeaderLen+recordHeaderLen+2] ^= 0xff // corrupt the first record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir}, newMapStore().apply)
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("mid-log corruption: got %v, want ErrCorruptRecord", err)
	}
}

func TestManagerRefusesNewerAOFVersion(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)
	if err := m.Append(Op{Kind: KindSet, Key: "a", Value: []byte("v"), Size: 10, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "aof-00000001.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[8:], AOFVersion+1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}, newMapStore().apply); !errors.Is(err, ErrVersion) {
		t.Fatalf("newer aof version: got %v, want ErrVersion", err)
	}
}

// TestManagerCompaction checks snapshot-then-truncate: after Compact the old
// generation's files are gone, the AOF restarts near-empty, and recovery
// comes from the snapshot plus the new journal tail.
func TestManagerCompaction(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways, AOFLimit: 1}, st)
	for i := 0; i < 20; i++ {
		op := Op{Kind: KindSet, Key: fmt.Sprintf("k%02d", i), Value: []byte("vvvv"), Size: 15, Cost: int64(100 + i)}
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
		if err := st.apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if !m.NeedsCompaction() {
		t.Fatal("AOF over a 1-byte limit should need compaction")
	}
	if err := m.Compact(st.emit); err != nil {
		t.Fatal(err)
	}
	if m.Info().Generation != 2 {
		t.Fatalf("generation %d after compaction, want 2", m.Info().Generation)
	}
	for _, stale := range []string{"snap-00000001.camp", "aof-00000001.log"} {
		if _, err := os.Stat(filepath.Join(dir, stale)); !os.IsNotExist(err) {
			t.Fatalf("stale file %s survived compaction", stale)
		}
	}
	// Journal one post-compaction mutation, then recover from scratch.
	post := Op{Kind: KindDelete, Key: "k00"}
	if err := m.Append(post); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := newMapStore()
	m2, stats := openTest(t, dir, Options{}, st2)
	defer m2.Close()
	if stats.SnapshotOps != 20 || stats.ReplayedOps != 1 || stats.Generation != 2 {
		t.Fatalf("post-compaction recovery: %+v", stats)
	}
	if len(st2.m) != 19 {
		t.Fatalf("recovered %d keys, want 19", len(st2.m))
	}
	if got := st2.m["k05"].Cost; got != 105 {
		t.Fatalf("snapshot lost the learned cost: got %d want 105", got)
	}
}

// TestManagerSnapshotOnly covers DisableAOF: durability comes entirely from
// Compact calls; Append is a no-op.
func TestManagerSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{DisableAOF: true}, st)
	for i := 0; i < 5; i++ {
		op := Op{Kind: KindSet, Key: fmt.Sprintf("k%d", i), Value: []byte("v"), Size: 10, Cost: 7}
		if err := st.apply(op); err != nil {
			t.Fatal(err)
		}
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if m.NeedsCompaction() {
		t.Fatal("NeedsCompaction must be false with the AOF disabled")
	}
	if err := m.Compact(st.emit); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "aof-00000001.log")); !os.IsNotExist(err) {
		t.Fatal("snapshot-only mode created an AOF segment")
	}
	st2 := newMapStore()
	m2, stats := openTest(t, dir, Options{DisableAOF: true}, st2)
	defer m2.Close()
	if stats.SnapshotOps != 5 || len(st2.m) != 5 {
		t.Fatalf("snapshot-only recovery: %+v with %d keys", stats, len(st2.m))
	}
}

// TestManagerFlushRecord journals a KindFlush and checks replay empties the
// store before applying later ops.
func TestManagerFlushRecord(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)
	for _, op := range []Op{
		{Kind: KindSet, Key: "a", Value: []byte("1"), Size: 10, Cost: 1},
		{Kind: KindSet, Key: "b", Value: []byte("2"), Size: 10, Cost: 1},
		{Kind: KindFlush},
		{Kind: KindSet, Key: "c", Value: []byte("3"), Size: 10, Cost: 1},
	} {
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	m.Kill() // crash without flushing

	st2 := newMapStore()
	m2, stats := openTest(t, dir, Options{}, st2)
	defer m2.Close()
	if stats.ReplayedOps != 4 {
		t.Fatalf("replayed %d ops, want 4", stats.ReplayedOps)
	}
	if len(st2.m) != 1 {
		t.Fatalf("recovered %d keys after flush, want 1", len(st2.m))
	}
	if _, ok := st2.m["c"]; !ok {
		t.Fatal("post-flush set lost")
	}
}

func TestManagerBadOptions(t *testing.T) {
	if _, _, err := Open(Options{}, func(Op) error { return nil }); err == nil {
		t.Fatal("missing Dir must fail")
	}
	if _, _, err := Open(Options{Dir: t.TempDir(), Fsync: "sometimes"}, func(Op) error { return nil }); err == nil {
		t.Fatal("unknown fsync policy must fail")
	}
}

func TestManagerAppendAfterClose(t *testing.T) {
	m, _ := openTest(t, t.TempDir(), Options{}, newMapStore())
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(Op{Kind: KindSet, Key: "a", Size: 1, Cost: 1}); err == nil {
		t.Fatal("append after close must fail")
	}
	if err := m.Compact(func(func(Op) error) error { return nil }); err == nil {
		t.Fatal("compact after close must fail")
	}
}
