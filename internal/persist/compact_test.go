package persist

import (
	"os"
	"path/filepath"
	"testing"
)

// These tests pin the compaction commit points: a crash between any two
// fsync boundaries of the BeginCompact/Commit cycle must leave a directory
// recovery stitches back losslessly. The cycle's on-disk steps are
//
//	(1) BeginCompact: old segment synced+closed, new segment created with a
//	    synced header — crash here leaves snapshot N-1 + segments N-1 and N;
//	(2) Commit: snapshot serialized to a synced temp file — crash here
//	    additionally leaves a snap-*.tmp-* orphan;
//	(3) Commit: temp renamed over snap-N, directory synced, stale
//	    generations removed — a crash between rename and GC leaves the new
//	    snapshot plus already-subsumed segments.
//
// Until now only migration interruption (kvserver's layout swap) was pinned.

// checkRecovered reopens dir and asserts the recovered map matches want.
func checkRecovered(t *testing.T, dir string, want map[string]Op) RecoverStats {
	t.Helper()
	st := newMapStore()
	m, stats := openTest(t, dir, Options{Fsync: FsyncNo}, st)
	defer m.Close()
	if len(st.m) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(st.m), len(want))
	}
	for k, w := range want {
		g, ok := st.m[k]
		if !ok || string(g.Value) != string(w.Value) {
			t.Fatalf("key %q: recovered %+v, want %+v", k, g, w)
		}
	}
	return stats
}

// TestCrashBetweenBeginCompactAndCommit covers commit point (1): the journal
// has moved to the new generation but no snapshot anchors it yet. Recovery
// must replay the old snapshot (if any) plus BOTH segments.
func TestCrashBetweenBeginCompactAndCommit(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)

	journal := func(op Op) {
		st.apply(op)
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	journal(setOp("old", "1"))
	journal(setOp("gone", "x"))
	c, err := m.BeginCompact()
	if err != nil {
		t.Fatal(err)
	}
	// Ops landing after the segment switch but before the snapshot commit.
	journal(setOp("new", "2"))
	journal(Op{Kind: KindDelete, Key: "gone"})
	_ = c // crash before Commit
	m.Kill()

	stats := checkRecovered(t, dir, st.m)
	if stats.SnapshotOps != 0 {
		t.Fatalf("no snapshot was committed, yet recovery loaded %d snapshot ops", stats.SnapshotOps)
	}
	if stats.Generation != 2 {
		t.Fatalf("recovered into generation %d, want 2", stats.Generation)
	}
	if stats.ReplayedOps != 4 {
		t.Fatalf("replayed %d ops across the two segments, want 4", stats.ReplayedOps)
	}
}

// TestCrashDuringCommitLeavesTempSnapshot covers commit point (2): the
// snapshot temp file exists but was never renamed. Recovery must ignore the
// orphan and stitch from the previous snapshot + both segments.
func TestCrashDuringCommitLeavesTempSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)

	journal := func(op Op) {
		st.apply(op)
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	journal(setOp("a", "1"))
	if _, err := m.BeginCompact(); err != nil {
		t.Fatal(err)
	}
	journal(setOp("b", "2"))
	// Simulate the crash mid-serialization: a half-written temp with the
	// snapshot's name shape (CreateTemp's suffix) and garbage content.
	orphan := filepath.Join(dir, snapName(2)+".tmp-12345")
	if err := os.WriteFile(orphan, []byte("partial snapshot bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	m.Kill()

	stats := checkRecovered(t, dir, st.m)
	if stats.SnapshotOps != 0 {
		t.Fatalf("orphan temp must not be loaded as a snapshot (got %d ops)", stats.SnapshotOps)
	}
	if stats.ReplayedOps != 2 {
		t.Fatalf("replayed %d ops, want 2", stats.ReplayedOps)
	}
}

// TestCrashAfterSnapshotRenameBeforeGC covers commit point (3): the new
// snapshot landed but superseded files were never removed. Recovery must
// prefer the newest snapshot and skip subsumed segments — a resurrected old
// segment must not replay stale ops over the snapshot.
func TestCrashAfterSnapshotRenameBeforeGC(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)

	journal := func(op Op) {
		st.apply(op)
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	journal(setOp("stale", "old-value"))
	journal(Op{Kind: KindDelete, Key: "stale"})
	journal(setOp("keep", "1"))

	// Preserve generation 1's segment, then compact (which GCs it) and put
	// it back: the directory now looks exactly like a crash after Commit's
	// rename but before removeStale.
	seg1 := filepath.Join(dir, aofName(1))
	saved, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compact(st.emit); err != nil {
		t.Fatal(err)
	}
	journal(setOp("tail", "2"))
	if err := os.WriteFile(seg1, saved, 0o644); err != nil {
		t.Fatal(err)
	}
	m.Kill()

	stats := checkRecovered(t, dir, st.m)
	if stats.SnapshotOps != 1 {
		t.Fatalf("recovered %d snapshot ops, want 1 (only keep is live)", stats.SnapshotOps)
	}
	// Only the post-snapshot segment replays; the resurrected generation 1
	// is subsumed.
	if stats.ReplayedOps != 1 {
		t.Fatalf("replayed %d ops, want 1 (the tail set)", stats.ReplayedOps)
	}
	// And the next open GCs the leftover.
	st2 := newMapStore()
	m2, _ := openTest(t, dir, Options{Fsync: FsyncNo}, st2)
	m2.Close()
	if _, err := os.Stat(seg1); !os.IsNotExist(err) {
		t.Fatalf("subsumed segment not GC'd on reopen: %v", err)
	}
}

// TestCrashTornNewSegmentHeader covers a crash inside BeginCompact's segment
// creation: the new segment exists but its header never finished. Recovery
// truncates the torn header (it is the final segment) and replays everything
// before it; reopening heals the segment in place.
func TestCrashTornNewSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)

	journal := func(op Op) {
		st.apply(op)
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	journal(setOp("a", "1"))
	if _, err := m.BeginCompact(); err != nil {
		t.Fatal(err)
	}
	m.Kill()
	// Tear the fresh segment's header to 3 bytes.
	seg2 := filepath.Join(dir, aofName(2))
	if err := os.Truncate(seg2, 3); err != nil {
		t.Fatal(err)
	}

	stats := checkRecovered(t, dir, st.m)
	if stats.TruncatedBytes != 3 {
		t.Fatalf("truncated %d bytes, want the 3-byte torn header", stats.TruncatedBytes)
	}
	if stats.ReplayedOps != 1 {
		t.Fatalf("replayed %d ops, want 1", stats.ReplayedOps)
	}
}
