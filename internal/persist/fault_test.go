package persist

import (
	"errors"
	"fmt"
	"testing"

	"camp/internal/fault"
)

func faultSetOp(i int) Op {
	return Op{Kind: KindSet, Key: fmt.Sprintf("k%03d", i), Value: []byte(fmt.Sprintf("v%03d", i))}
}

func openWithFS(t *testing.T, dir string, fs fault.FS) (*Manager, map[string]string) {
	t.Helper()
	got := make(map[string]string)
	m, _, err := Open(Options{Dir: dir, Fsync: FsyncAlways, FS: fs}, func(op Op) error {
		switch op.Kind {
		case KindSet, KindSetPrio:
			got[op.Key] = string(op.Value)
		case KindDelete:
			delete(got, op.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, got
}

// ENOSPC mid-AppendBatch with a torn short-write: the acked prefix must
// survive recovery, the torn tail must be truncated, and the un-acked batch
// must be gone — exactly the contract a caller retrying after ENOSPC needs.
func TestENOSPCMidAppendBatchRecoverable(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 7)
	m, _ := openWithFS(t, dir, inj)

	acked := make(map[string]string)
	for i := 0; i < 10; i++ {
		op := faultSetOp(i)
		if err := m.Append(op); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		acked[op.Key] = string(op.Value)
	}

	// The disk fills mid-batch, tearing the write.
	inj.Fail(fault.Rule{Op: fault.OpWrite, Err: fault.ErrNoSpace, TornWrite: true})
	batch := make([]Op, 50)
	for i := range batch {
		batch[i] = faultSetOp(100 + i)
	}
	if err := m.AppendBatch(batch); !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("AppendBatch err = %v, want ENOSPC", err)
	}
	if got := m.Info().AppendErrors; got == 0 {
		t.Fatal("append error not counted")
	}
	inj.Heal()
	m.Kill() // crash: recovery must cope with whatever the torn write left

	m2, got := openWithFS(t, dir, fault.OS())
	defer m2.Close()
	// Every acked op survives. Un-acked batch records that landed before the
	// tear MAY replay (at-least-once on crash, same as kill -9) — but only
	// complete, CRC-clean ones, and only keys from that batch.
	for k, v := range acked {
		if got[k] != v {
			t.Fatalf("acked key %q = %q, want %q", k, got[k], v)
		}
	}
	inBatch := make(map[string]string, len(batch))
	for _, op := range batch {
		inBatch[op.Key] = string(op.Value)
	}
	for k, v := range got {
		if av, ok := acked[k]; ok && av == v {
			continue
		}
		if bv, ok := inBatch[k]; !ok || bv != v {
			t.Fatalf("recovered unexpected key %q = %q", k, v)
		}
	}
	// The journal is clean again: appends after recovery work.
	if err := m2.Append(faultSetOp(999)); err != nil {
		t.Fatal(err)
	}
}

// A failed fsync mid-compaction (settling the old segment) aborts cleanly:
// appends continue on the old segment and a later compaction succeeds.
func TestFsyncFailureBeginCompact(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 7)
	m, _ := openWithFS(t, dir, inj)
	defer m.Close()

	for i := 0; i < 5; i++ {
		if err := m.Append(faultSetOp(i)); err != nil {
			t.Fatal(err)
		}
	}
	inj.Fail(fault.Rule{Op: fault.OpSync, PathContains: "aof-", Count: 1})
	if _, err := m.BeginCompact(); !errors.Is(err, fault.ErrIO) {
		t.Fatalf("BeginCompact err = %v, want EIO", err)
	}
	// Not wedged: the journal still appends and the next compaction works.
	if err := m.Append(faultSetOp(5)); err != nil {
		t.Fatalf("append after failed compaction: %v", err)
	}
	emit := func(write func(Op) error) error {
		for i := 0; i < 6; i++ {
			if err := write(faultSetOp(i)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := m.Compact(emit); err != nil {
		t.Fatalf("compaction after heal: %v", err)
	}
}

// A failed snapshot write during Commit (temp-file sync dies) leaves the
// journal recoverable: the new segment is live, recovery replays from the
// previous snapshot across both segments, and compaction can be retried.
func TestSnapshotFailureMidCommitRecoverable(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 7)
	m, _ := openWithFS(t, dir, inj)

	acked := make(map[string]string)
	emit := func(write func(Op) error) error {
		for k, v := range acked {
			if err := write(Op{Kind: KindSet, Key: k, Value: []byte(v)}); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < 8; i++ {
		op := faultSetOp(i)
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
		acked[op.Key] = string(op.Value)
	}

	inj.Fail(fault.Rule{Op: fault.OpSync, PathContains: ".tmp-", Count: 1})
	c, err := m.BeginCompact()
	if err != nil {
		t.Fatal(err)
	}
	// Mutations race the snapshot in real life; land one on the new segment.
	op := faultSetOp(8)
	if err := m.Append(op); err != nil {
		t.Fatal(err)
	}
	acked[op.Key] = string(op.Value)
	if err := c.Commit(emit); !errors.Is(err, fault.ErrIO) {
		t.Fatalf("Commit err = %v, want EIO", err)
	}

	// Retry works once the disk heals (rules are one-shot here).
	if err := m.Compact(emit); err != nil {
		t.Fatalf("compaction retry: %v", err)
	}
	m.Kill()

	m2, got := openWithFS(t, dir, fault.OS())
	defer m2.Close()
	if len(got) != len(acked) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(acked))
	}
	for k, v := range acked {
		if got[k] != v {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}
}

// Detach drops the journal handle: appends fail fast, NeedsCompaction asks
// for the healing compaction, and a successful compaction reattaches.
func TestDetachThenHealViaCompaction(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 7)
	m, _ := openWithFS(t, dir, inj)
	defer m.Close()

	if err := m.Append(faultSetOp(0)); err != nil {
		t.Fatal(err)
	}
	m.Detach()
	if err := m.Append(faultSetOp(1)); err == nil {
		t.Fatal("append on detached journal succeeded")
	}
	if !m.NeedsCompaction() {
		t.Fatal("detached manager does not request compaction")
	}
	emit := func(write func(Op) error) error { return write(faultSetOp(0)) }
	if err := m.Compact(emit); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(faultSetOp(2)); err != nil {
		t.Fatalf("append after healing compaction: %v", err)
	}
}

// Probe goes through the injected FS: a faulted dir fails the probe, a healed
// one passes, and no probe residue is left behind.
func TestProbeReflectsDiskHealth(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(nil, 7)
	m, _ := openWithFS(t, dir, inj)
	defer m.Close()

	if err := m.Probe(); err != nil {
		t.Fatalf("healthy probe failed: %v", err)
	}
	inj.Fail(fault.Rule{Op: fault.OpSync, PathContains: ".probe"})
	if err := m.Probe(); !errors.Is(err, fault.ErrIO) {
		t.Fatalf("faulted probe err = %v, want EIO", err)
	}
	inj.Heal()
	if err := m.Probe(); err != nil {
		t.Fatalf("post-heal probe failed: %v", err)
	}
	snaps, aofs, err := scanDir(defaultFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = snaps
	_ = aofs
	if _, err := defaultFS.ReadFile(dir + "/.probe"); err == nil {
		t.Fatal("probe file left behind")
	}
}
