package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// LockFileName is the advisory lock file a Manager (or a server owning a
// whole data directory) creates to keep a second process out. The lock is
// held via flock, so it vanishes with the process: a crash never leaves a
// stale lock behind, unlike pid files.
const LockFileName = "LOCK"

// ErrLocked reports that another live process holds the directory lock.
var ErrLocked = errors.New("persist: data directory locked by another process")

// DirLock is an exclusive advisory lock on a data directory, held through an
// open file descriptor. Release it with Release; it is also released
// automatically when the process exits.
type DirLock struct {
	f *os.File
}

// LockDir acquires an exclusive flock on dir's lock file, creating dir and
// the file as needed. It fails fast with ErrLocked when another process holds
// the lock — the second of two servers pointed at the same -data-dir must
// refuse to start rather than interleave journal writes with the first.
// On platforms without flock (see lock_stub.go) the lock file is created but
// provides no mutual exclusion.
func LockDir(dir string) (*DirLock, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create dir: %w", err)
	}
	path := filepath.Join(dir, LockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open lock file: %w", err)
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		if errors.Is(err, ErrLocked) {
			return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
		}
		return nil, fmt.Errorf("persist: lock %s: %w", path, err)
	}
	return &DirLock{f: f}, nil
}

// Release drops the lock. It is idempotent and safe on a nil lock.
func (l *DirLock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	// Closing the descriptor releases the flock.
	return f.Close()
}
