package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// FuzzDecodeRecord ensures the record decoder never panics or over-allocates
// on corrupt input, and that accepted records re-encode byte-identically.
func FuzzDecodeRecord(f *testing.F) {
	for _, op := range []Op{
		{Kind: KindSet, Key: "user:1", Value: []byte("payload"), Flags: 9, Expires: 1700000000, Size: 70, Cost: 1234},
		{Kind: KindSet, Key: "k", Size: 57, Cost: 1},
		{Kind: KindDelete, Key: "gone"},
		{Kind: KindTouch, Key: "ttl", Expires: 42},
		{Kind: KindFlush},
		{Kind: KindFlush, Key: "acme"},
		{Kind: KindSetPrio, Key: "prio", Value: []byte("p"), Size: 60, Cost: 40, Priority: 12, Class: 30},
		{Kind: KindPosition, Pos: Position{RunID: 3, Gen: 2, Off: 150}},
		{Kind: KindScale, Scale: 81},
		{Kind: KindTenant, Key: "acme", Reserve: 4096},
	} {
		f.Add(AppendRecord(nil, op))
	}
	valid := AppendRecord(nil, Op{Kind: KindSet, Key: "seed", Value: []byte("v"), Size: 10, Cost: 2})
	f.Add(valid[:len(valid)-1]) // torn tail
	f.Add(valid[:recordHeaderLen])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge length prefix
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		op, used, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrShortRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if used <= 0 || used > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", used, len(data))
		}
		switch op.Kind {
		case KindPosition, KindScale:
			if op.Key != "" {
				t.Fatalf("decoder accepted keyed op %+v", op)
			}
		case KindFlush:
			// Key optional: empty = global flush, named = tenant flush.
		default:
			if op.Key == "" {
				t.Fatalf("decoder accepted keyless op %+v", op)
			}
		}
		if op.Size < 0 || op.Cost < 0 || op.Reserve < 0 {
			t.Fatalf("decoder accepted invalid op %+v", op)
		}
		switch op.Kind {
		case KindSet, KindDelete, KindTouch, KindFlush, KindSetPrio, KindScale, KindTenant:
		case KindPosition:
			if op.Pos.RunID == 0 || op.Pos.Gen == 0 || op.Pos.Off < SegmentHeaderLen {
				t.Fatalf("decoder accepted invalid position %+v", op.Pos)
			}
		default:
			t.Fatalf("decoder accepted unknown kind %d", op.Kind)
		}
		// Round-trip: re-encoding must reproduce the accepted bytes.
		if got := AppendRecord(nil, op); !bytes.Equal(got, data[:used]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, data[:used])
		}
	})
}

// FuzzStreamFrames drives the replication stream decoder — the follower-side
// companion to FuzzDecodeRecord — over arbitrary bytes: it must reject
// malformed frames (bad kinds, oversized or corrupt records, zero
// generation switches, torn tails) with a classified error, never a panic,
// and every accepted record frame must carry a structurally valid op.
func FuzzStreamFrames(f *testing.F) {
	var valid bytes.Buffer
	sw := NewStreamWriter(bufio.NewWriter(&valid))
	sw.GenSwitch(1)
	sw.Record(AppendRecord(nil, Op{Kind: KindSet, Key: "user:1", Value: []byte("payload"), Flags: 9, Size: 70, Cost: 1234}))
	sw.Ping()
	sw.Record(AppendRecord(nil, Op{Kind: KindDelete, Key: "gone"}))
	sw.GenSwitch(7)
	sw.Flush()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-3])                           // torn mid-frame
	f.Add([]byte{FrameGen, 0, 0, 0, 0, 0, 0, 0, 0})                // generation-switch to 0
	f.Add([]byte{FrameRecord, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge record length
	f.Add([]byte{'Z'})                                             // unknown kind
	f.Add([]byte{FramePing, FramePing, FramePing})
	f.Add([]byte{FrameSkip, 0, 0, 0, 0, 0, 0, 0, 0})    // zero-byte skip
	f.Add([]byte{FrameSkip, 42, 0, 0, 0, 0, 0, 0, 0})   // valid skip of 42
	f.Add([]byte{FrameSkip, 0, 0, 0, 0, 0, 0, 0, 0x80}) // negative skip
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sr := NewStreamReader(bufio.NewReader(bytes.NewReader(data)))
		for {
			frame, err := sr.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					!errors.Is(err, ErrCorruptRecord) && !errors.Is(err, ErrShortRecord) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			switch frame.Kind {
			case FramePing:
			case FrameGen:
				if frame.Gen == 0 {
					t.Fatal("decoder accepted a generation-switch to 0")
				}
			case FrameSkip:
				if frame.Bytes <= 0 {
					t.Fatalf("decoder accepted non-positive skip delta %d", frame.Bytes)
				}
			case FrameRecord:
				op := frame.Op
				keyless := op.Kind == KindPosition || op.Kind == KindScale
				badKey := (keyless && op.Key != "") ||
					(!keyless && op.Kind != KindFlush && op.Key == "")
				if frame.Bytes <= 0 || badKey || op.Size < 0 || op.Cost < 0 {
					t.Fatalf("decoder accepted invalid record frame %+v", frame)
				}
			default:
				t.Fatalf("decoder returned unknown frame kind %q", frame.Kind)
			}
		}
	})
}

// FuzzDecodeSnapshotV2 drives the whole-snapshot reader — header check,
// version gating, record loop — over arbitrary bytes: corrupt input must
// surface as a classified error (never a panic), newer versions must be
// refused with ErrVersion, v1-headed files must never yield v2 record
// kinds, and every applied op must be structurally valid.
func FuzzDecodeSnapshotV2(f *testing.F) {
	snap := func(version uint32, ops ...Op) []byte {
		data := appendFileHeader(nil, snapshotMagic, version)
		for _, op := range ops {
			data = AppendRecord(data, op)
		}
		return data
	}
	f.Add(snap(1,
		Op{Kind: KindSet, Key: "a", Value: []byte("va"), Flags: 3, Size: 20, Cost: 7}))
	f.Add(snap(2,
		Op{Kind: KindScale, Scale: 44},
		Op{Kind: KindSetPrio, Key: "a", Value: []byte("va"), Size: 20, Cost: 7, Priority: 5, Class: 9},
		Op{Kind: KindSet, Key: "b", Value: []byte("vb"), Size: 21, Cost: 1},
		Op{Kind: KindPosition, Pos: Position{RunID: 2, Gen: 1, Off: 99}}))
	f.Add(snap(3, Op{Kind: KindSet, Key: "future", Size: 10, Cost: 1}))
	f.Add(snap(1, Op{Kind: KindSetPrio, Key: "smuggled", Size: 10, Cost: 1, Priority: 9}))
	valid := snap(2, Op{Kind: KindSet, Key: "torn", Value: []byte("v"), Size: 10, Cost: 1})
	f.Add(valid[:len(valid)-2]) // mid-record tear
	f.Add(valid[:fileHeaderLen])
	f.Add([]byte("CAMPSNP1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		version := uint32(0)
		if len(data) >= fileHeaderLen {
			version = binary.LittleEndian.Uint32(data[8:])
		}
		n := 0
		applied, err := ReadSnapshot(bytes.NewReader(data), func(op Op) error {
			if op.Kind == KindSet || op.Kind == KindSetPrio {
				n++
			}
			switch op.Kind {
			case KindSet:
			case KindSetPrio, KindPosition, KindScale, KindTenant:
				if version < 2 {
					t.Fatalf("v%d snapshot yielded a v2 record kind %d", version, op.Kind)
				}
			default:
				t.Fatalf("snapshot reader applied kind %d", op.Kind)
			}
			keyless := op.Kind == KindPosition || op.Kind == KindScale
			if (op.Key == "") != keyless || op.Size < 0 || op.Cost < 0 || op.Reserve < 0 {
				t.Fatalf("snapshot reader applied invalid op %+v", op)
			}
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) && !errors.Is(err, ErrVersion) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if applied != n {
			t.Fatalf("reader reported %d entries, applied %d", applied, n)
		}
	})
}

// FuzzDecodePositionRecord frames arbitrary bytes as a checksummed
// KindPosition payload, so the fuzzer explores the position decoder itself
// rather than bouncing off the CRC: accepted positions must satisfy the
// structural invariants (a real run, a real generation, an offset at or
// past the segment header) and survive a semantic re-encode round trip.
func FuzzDecodePositionRecord(f *testing.F) {
	frame := func(payload []byte) []byte {
		rec := make([]byte, recordHeaderLen, recordHeaderLen+len(payload))
		rec = append(rec, payload...)
		binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
		binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(rec[recordHeaderLen:], crcTable))
		return rec
	}
	for _, pos := range []Position{
		{RunID: 1, Gen: 1, Off: SegmentHeaderLen},
		{RunID: 1<<64 - 1, Gen: 1 << 40, Off: 1 << 50},
		{RunID: 7, Gen: 3, Off: 4096},
	} {
		rec := AppendRecord(nil, Op{Kind: KindPosition, Pos: pos})
		f.Add(rec[recordHeaderLen:]) // the payload alone; the fuzz body frames it
	}
	f.Add([]byte{byte(KindPosition), 0})                          // truncated varints
	f.Add([]byte{byte(KindPosition), 0, 0, 0, 0})                 // run id zero
	f.Add([]byte{byte(KindPosition), 0, 1, 1, 1})                 // offset below header
	f.Add([]byte{byte(KindPosition), 3, 'k', 'e', 'y', 1, 1, 24}) // keyed position
	f.Fuzz(func(t *testing.T, payload []byte) {
		op, used, err := DecodeRecord(frame(payload))
		if err != nil {
			if !errors.Is(err, ErrShortRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if used != recordHeaderLen+len(payload) {
			t.Fatalf("decoder consumed %d of %d bytes", used, recordHeaderLen+len(payload))
		}
		if op.Kind != KindPosition {
			return // the first byte selected another kind; covered elsewhere
		}
		if op.Key != "" || op.Pos.RunID == 0 || op.Pos.Gen == 0 || op.Pos.Off < SegmentHeaderLen {
			t.Fatalf("decoder accepted invalid position op %+v", op)
		}
		// Semantic round trip: canonical re-encode decodes to the same
		// position (byte equality is not required — varints have redundant
		// encodings the checksum cannot rule out).
		re, _, err := DecodeRecord(AppendRecord(nil, op))
		if err != nil || re.Pos != op.Pos {
			t.Fatalf("position round trip: %+v vs %+v (%v)", re.Pos, op.Pos, err)
		}
	})
}
