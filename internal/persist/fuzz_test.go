package persist

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecodeRecord ensures the record decoder never panics or over-allocates
// on corrupt input, and that accepted records re-encode byte-identically.
func FuzzDecodeRecord(f *testing.F) {
	for _, op := range []Op{
		{Kind: KindSet, Key: "user:1", Value: []byte("payload"), Flags: 9, Expires: 1700000000, Size: 70, Cost: 1234},
		{Kind: KindSet, Key: "k", Size: 57, Cost: 1},
		{Kind: KindDelete, Key: "gone"},
		{Kind: KindTouch, Key: "ttl", Expires: 42},
		{Kind: KindFlush},
	} {
		f.Add(AppendRecord(nil, op))
	}
	valid := AppendRecord(nil, Op{Kind: KindSet, Key: "seed", Value: []byte("v"), Size: 10, Cost: 2})
	f.Add(valid[:len(valid)-1]) // torn tail
	f.Add(valid[:recordHeaderLen])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge length prefix
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		op, used, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrShortRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if used <= 0 || used > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", used, len(data))
		}
		if (op.Key == "") != (op.Kind == KindFlush) || op.Size < 0 || op.Cost < 0 {
			t.Fatalf("decoder accepted invalid op %+v", op)
		}
		switch op.Kind {
		case KindSet, KindDelete, KindTouch, KindFlush:
		default:
			t.Fatalf("decoder accepted unknown kind %d", op.Kind)
		}
		// Round-trip: re-encoding must reproduce the accepted bytes.
		if got := AppendRecord(nil, op); !bytes.Equal(got, data[:used]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, data[:used])
		}
	})
}

// FuzzStreamFrames drives the replication stream decoder — the follower-side
// companion to FuzzDecodeRecord — over arbitrary bytes: it must reject
// malformed frames (bad kinds, oversized or corrupt records, zero
// generation switches, torn tails) with a classified error, never a panic,
// and every accepted record frame must carry a structurally valid op.
func FuzzStreamFrames(f *testing.F) {
	var valid bytes.Buffer
	sw := NewStreamWriter(bufio.NewWriter(&valid))
	sw.GenSwitch(1)
	sw.Record(AppendRecord(nil, Op{Kind: KindSet, Key: "user:1", Value: []byte("payload"), Flags: 9, Size: 70, Cost: 1234}))
	sw.Ping()
	sw.Record(AppendRecord(nil, Op{Kind: KindDelete, Key: "gone"}))
	sw.GenSwitch(7)
	sw.Flush()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-3])                           // torn mid-frame
	f.Add([]byte{FrameGen, 0, 0, 0, 0, 0, 0, 0, 0})                // generation-switch to 0
	f.Add([]byte{FrameRecord, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge record length
	f.Add([]byte{'Z'})                                             // unknown kind
	f.Add([]byte{FramePing, FramePing, FramePing})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sr := NewStreamReader(bufio.NewReader(bytes.NewReader(data)))
		for {
			frame, err := sr.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					!errors.Is(err, ErrCorruptRecord) && !errors.Is(err, ErrShortRecord) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			switch frame.Kind {
			case FramePing:
			case FrameGen:
				if frame.Gen == 0 {
					t.Fatal("decoder accepted a generation-switch to 0")
				}
			case FrameRecord:
				op := frame.Op
				if frame.Bytes <= 0 || (op.Key == "") != (op.Kind == KindFlush) || op.Size < 0 || op.Cost < 0 {
					t.Fatalf("decoder accepted invalid record frame %+v", frame)
				}
			default:
				t.Fatalf("decoder returned unknown frame kind %q", frame.Kind)
			}
		}
	})
}
