package persist

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeRecord ensures the record decoder never panics or over-allocates
// on corrupt input, and that accepted records re-encode byte-identically.
func FuzzDecodeRecord(f *testing.F) {
	for _, op := range []Op{
		{Kind: KindSet, Key: "user:1", Value: []byte("payload"), Flags: 9, Expires: 1700000000, Size: 70, Cost: 1234},
		{Kind: KindSet, Key: "k", Size: 57, Cost: 1},
		{Kind: KindDelete, Key: "gone"},
		{Kind: KindTouch, Key: "ttl", Expires: 42},
		{Kind: KindFlush},
	} {
		f.Add(AppendRecord(nil, op))
	}
	valid := AppendRecord(nil, Op{Kind: KindSet, Key: "seed", Value: []byte("v"), Size: 10, Cost: 2})
	f.Add(valid[:len(valid)-1]) // torn tail
	f.Add(valid[:recordHeaderLen])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge length prefix
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		op, used, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrShortRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if used <= 0 || used > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", used, len(data))
		}
		if (op.Key == "") != (op.Kind == KindFlush) || op.Size < 0 || op.Cost < 0 {
			t.Fatalf("decoder accepted invalid op %+v", op)
		}
		switch op.Kind {
		case KindSet, KindDelete, KindTouch, KindFlush:
		default:
			t.Fatalf("decoder accepted unknown kind %d", op.Kind)
		}
		// Round-trip: re-encoding must reproduce the accepted bytes.
		if got := AppendRecord(nil, op); !bytes.Equal(got, data[:used]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, data[:used])
		}
	})
}
