//go:build !unix

package persist

import "os"

// flockExclusive is a no-op on platforms without flock; the lock file still
// exists but provides no mutual exclusion there.
func flockExclusive(f *os.File) error { return nil }
