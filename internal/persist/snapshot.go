package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"camp/internal/fault"
)

// Snapshot format: an 8-byte magic, a uint32 format version, then a stream
// of entry records (see record.go). Unlike the AOF, a snapshot is all or
// nothing: any decode failure rejects the whole file with a clear error —
// loading half a snapshot would silently serve a store missing entries.
//
// Version history:
//
//	v1: KindSet records only — key, value, flags, expiry, size, cost.
//	v2: entries may be KindSetPrio (KindSet plus the policy priority
//	    offset H − L and priority class, so a mid-churn warm start restores
//	    the exact cross-queue eviction schedule), and the stream may carry
//	    KindScale records (the policy's adaptive ratio-integerizer state)
//	    and KindPosition records persisting a follower's replication
//	    position across compaction. v2 streams may also carry KindTenant
//	    records (tenant names and reserved-byte quotas, written ahead of
//	    the entries) — older v2 readers never see them because they reject
//	    unknown kinds, and v2 files without them load every entry into the
//	    default tenant. v1 files are still read bit-for-bit; writers
//	    always emit v2 headers.
const (
	snapshotMagic = "CAMPSNP1"
	// SnapshotVersion is the current snapshot format version. Readers
	// refuse snapshots written by a newer version.
	SnapshotVersion = 2
	// snapshotV2 is the version that introduced the priority, scale and
	// position record kinds. The read gate compares against it — not
	// against the moving SnapshotVersion, which would retroactively
	// outlaw those kinds in v2 files the day v3 ships.
	snapshotV2 = 2
)

// aofMagic / AOFVersion head every append-only log segment.
const (
	aofMagic = "CAMPAOF1"
	// AOFVersion is the current AOF segment format version. v2 segments may
	// contain KindSetPrio and KindPosition records (follower journals);
	// v1 segments are still read. A v1 segment reopened for appending keeps
	// its header but may gain v2 record kinds — readers therefore accept
	// the new kinds regardless of the segment header version.
	AOFVersion = 2
)

// fileHeaderLen is the byte length of a snapshot or AOF header.
const fileHeaderLen = 12

// ErrVersion reports a file written by a newer format version than this
// build understands.
var ErrVersion = errors.New("persist: unsupported format version")

func appendFileHeader(dst []byte, magic string, version uint32) []byte {
	dst = append(dst, magic...)
	return binary.LittleEndian.AppendUint32(dst, version)
}

func checkFileHeader(b []byte, magic string, maxVersion uint32, what string) (uint32, error) {
	if len(b) < fileHeaderLen {
		return 0, fmt.Errorf("%w: %s header truncated", ErrCorruptRecord, what)
	}
	if !bytes.Equal(b[:8], []byte(magic)) {
		return 0, fmt.Errorf("%w: bad %s magic %q", ErrCorruptRecord, what, b[:8])
	}
	v := binary.LittleEndian.Uint32(b[8:])
	if v > maxVersion {
		return 0, fmt.Errorf("%w: %s version %d (max supported %d)", ErrVersion, what, v, maxVersion)
	}
	return v, nil
}

// SnapshotWriter streams KindSet records into a snapshot.
type SnapshotWriter struct {
	w   *bufio.Writer
	buf []byte
	n   int
}

// NewSnapshotWriter writes the snapshot header to w and returns a writer for
// the entry records.
func NewSnapshotWriter(w io.Writer) (*SnapshotWriter, error) {
	sw := &SnapshotWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := sw.w.Write(appendFileHeader(nil, snapshotMagic, SnapshotVersion)); err != nil {
		return nil, fmt.Errorf("persist: snapshot header: %w", err)
	}
	return sw, nil
}

// Write appends one record. Entry ops keep their kind (KindSetPrio when the
// caller exported a priority, KindSet otherwise — a zero Kind becomes
// KindSet) and KindScale/KindPosition/KindTenant records pass through;
// nothing else belongs in a snapshot.
func (sw *SnapshotWriter) Write(op Op) error {
	switch op.Kind {
	case KindSetPrio, KindPosition, KindScale, KindTenant:
	default:
		op.Kind = KindSet
	}
	sw.buf = AppendRecord(sw.buf[:0], op)
	if _, err := sw.w.Write(sw.buf); err != nil {
		return fmt.Errorf("persist: snapshot record: %w", err)
	}
	if op.Kind == KindSet || op.Kind == KindSetPrio {
		sw.n++
	}
	return nil
}

// Len returns the number of entries written so far (metadata records —
// scale, position — are not entries).
func (sw *SnapshotWriter) Len() int { return sw.n }

// Flush drains the buffered writer. The caller owns syncing the underlying
// file.
func (sw *SnapshotWriter) Flush() error { return sw.w.Flush() }

// ReadSnapshot strictly decodes a snapshot stream, calling apply for every
// record, and returns the number of entry records (metadata records — scale,
// position — reach apply but are not counted). Any corruption — bad magic,
// failed CRC, torn record — fails the whole read; see the package comment
// for why snapshots are all-or-nothing.
// The set of record kinds is gated by the file's version: a v1 snapshot is
// read exactly as the v1 code did (KindSet only), a v2 snapshot may also
// carry KindSetPrio entries plus KindScale and KindPosition records (which
// apply sees but which mutate no entry data).
func ReadSnapshot(r io.Reader, apply func(Op) error) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("persist: read snapshot: %w", err)
	}
	version, err := checkFileHeader(data, snapshotMagic, SnapshotVersion, "snapshot")
	if err != nil {
		return 0, err
	}
	data = data[fileHeaderLen:]
	entries, rec := 0, 0
	for len(data) > 0 {
		op, used, err := DecodeRecord(data)
		if err != nil {
			if errors.Is(err, ErrShortRecord) {
				err = fmt.Errorf("%w: snapshot ends mid-record", ErrCorruptRecord)
			}
			return entries, fmt.Errorf("snapshot record %d: %w", rec, err)
		}
		switch op.Kind {
		case KindSet:
		case KindSetPrio, KindPosition, KindScale, KindTenant:
			if version < snapshotV2 {
				return entries, fmt.Errorf("snapshot record %d: %w: kind %d in a v%d snapshot",
					rec, ErrCorruptRecord, op.Kind, version)
			}
		default:
			return entries, fmt.Errorf("snapshot record %d: %w: kind %d", rec, ErrCorruptRecord, op.Kind)
		}
		if err := apply(op); err != nil {
			return entries, err
		}
		data = data[used:]
		rec++
		if op.Kind == KindSet || op.Kind == KindSetPrio {
			entries++
		}
	}
	return entries, nil
}

// defaultFS is the real filesystem, used by the package-level helpers;
// Manager methods go through their Options.FS so faults are injectable.
var defaultFS = fault.OS()

// WriteSnapshotFile writes a snapshot atomically: into a temp file in the
// same directory, fsynced, then renamed over path, then the directory is
// fsynced so the rename survives a crash. emit receives a write callback and
// should call it once per live entry.
func WriteSnapshotFile(path string, emit func(write func(Op) error) error) (n int, err error) {
	return writeSnapshotFileFS(defaultFS, path, emit)
}

func writeSnapshotFileFS(fs fault.FS, path string, emit func(write func(Op) error) error) (n int, err error) {
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("persist: snapshot temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			fs.Remove(tmp.Name())
		}
	}()
	sw, err := NewSnapshotWriter(tmp)
	if err != nil {
		return 0, err
	}
	if err = emit(sw.Write); err != nil {
		return 0, err
	}
	if err = sw.Flush(); err != nil {
		return 0, err
	}
	if err = tmp.Sync(); err != nil {
		return 0, fmt.Errorf("persist: sync snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return 0, fmt.Errorf("persist: close snapshot: %w", err)
	}
	if err = fs.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("persist: rename snapshot: %w", err)
	}
	return sw.Len(), syncDirFS(fs, dir)
}

// LoadSnapshotFile reads the snapshot at path, applying every entry.
func LoadSnapshotFile(path string, apply func(Op) error) (int, error) {
	return loadSnapshotFileFS(defaultFS, path, apply)
}

func loadSnapshotFileFS(fs fault.FS, path string, apply func(Op) error) (int, error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := ReadSnapshot(f, apply)
	if err != nil {
		return n, fmt.Errorf("persist: snapshot %s: %w", filepath.Base(path), err)
	}
	return n, nil
}

func syncDir(dir string) error { return syncDirFS(defaultFS, dir) }

func syncDirFS(fs fault.FS, dir string) error {
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("persist: sync dir: %w", err)
	}
	return nil
}
