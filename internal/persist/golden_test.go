package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// The golden fixtures under testdata/ were written by the version-1 codec
// (before snapshot format v2 added priority offsets and position records)
// and are checked in byte-for-byte. They pin the compatibility contract:
//
//   - v2 code reads v1 files bit-for-bit — every value, flag, expiry and
//     cost decodes exactly as the v1 reader produced it;
//   - v1 readers refuse v2 files with a clear version error (simulated by
//     running today's header check with a v1 ceiling);
//   - writers always emit v2.
//
// Regenerating the fixtures under a new codec would defeat the point; if
// either file ever needs to change, the format has broken compatibility.

// goldenSnapOps is the exact content of testdata/snap-v1.camp.
var goldenSnapOps = []Op{
	{Kind: KindSet, Key: "alpha", Value: []byte("first-value"), Flags: 7, Expires: 1750000000000000000, Size: 72, Cost: 1234},
	{Kind: KindSet, Key: "beta", Value: nil, Flags: 0, Expires: 0, Size: 60, Cost: 1},
	{Kind: KindSet, Key: "gamma", Value: []byte{0x00, 0xff, 0x10, 0x20}, Flags: 4294967295, Expires: 0, Size: 65, Cost: 999999},
}

// goldenAOFOps is the exact op sequence of testdata/aof-v1.log.
var goldenAOFOps = []Op{
	{Kind: KindSet, Key: "alpha", Value: []byte("first-value"), Flags: 7, Expires: 1750000000000000000, Size: 72, Cost: 1234},
	{Kind: KindTouch, Key: "alpha", Expires: 1760000000000000000},
	{Kind: KindSet, Key: "beta", Value: []byte("b"), Size: 61, Cost: 5},
	{Kind: KindDelete, Key: "beta"},
	{Kind: KindFlush},
	{Kind: KindSet, Key: "gamma", Value: []byte{0x00, 0xff}, Flags: 42, Size: 63, Cost: 77},
}

func opsEqual(t *testing.T, what string, got, want []Op) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: decoded %d ops, want %d", what, len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Kind != w.Kind || g.Key != w.Key || !bytes.Equal(g.Value, w.Value) ||
			g.Flags != w.Flags || g.Expires != w.Expires || g.Size != w.Size ||
			g.Cost != w.Cost || g.Priority != w.Priority || g.Class != w.Class ||
			g.Pos != w.Pos || g.Scale != w.Scale {
			t.Fatalf("%s: op %d:\n got %+v\nwant %+v", what, i, g, w)
		}
	}
}

// TestGoldenV1SnapshotReadsBitForBit pins that the v2 reader decodes a
// checked-in v1 snapshot to exactly the ops the v1 writer serialized — and
// that the bytes themselves are what the v1 codec produced (the header is
// version 1, and re-encoding the decoded ops reproduces the file).
func TestGoldenV1SnapshotReadsBitForBit(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "snap-v1.camp"))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != 1 {
		t.Fatalf("fixture header version = %d, want 1 (fixture must stay v1)", v)
	}
	var got []Op
	n, err := ReadSnapshot(bytes.NewReader(data), func(op Op) error {
		got = append(got, op)
		return nil
	})
	if err != nil {
		t.Fatalf("v2 reader refused the v1 snapshot: %v", err)
	}
	if n != len(goldenSnapOps) {
		t.Fatalf("read %d records, want %d", n, len(goldenSnapOps))
	}
	opsEqual(t, "snapshot", got, goldenSnapOps)

	// Bit-for-bit: the v1 record encoding is frozen, so re-encoding the
	// decoded ops must reproduce the fixture's record bytes exactly.
	want := appendFileHeader(nil, snapshotMagic, 1)
	for _, op := range got {
		want = AppendRecord(want, op)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("re-encoded v1 snapshot differs from the checked-in bytes")
	}
}

// TestGoldenV1JournalReplays pins that a checked-in v1 AOF segment replays
// to exactly the op sequence the v1 code journaled, through the same
// recovery entry point the server uses.
func TestGoldenV1JournalReplays(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "aof-v1.log"))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != 1 {
		t.Fatalf("fixture header version = %d, want 1 (fixture must stay v1)", v)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, aofName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []Op
	stats, err := RecoverDir(dir, t.Logf, func(op Op) error {
		got = append(got, op)
		return nil
	})
	if err != nil {
		t.Fatalf("v2 recovery refused the v1 journal: %v", err)
	}
	if stats.TruncatedBytes != 0 {
		t.Fatalf("recovery truncated %d bytes of an intact fixture", stats.TruncatedBytes)
	}
	opsEqual(t, "aof", got, goldenAOFOps)
}

// TestV1ReaderRefusesV2 pins the forward-compatibility contract from the
// other side: a reader whose ceiling is version 1 — today's checkFileHeader
// run exactly as the v1 binary ran it — must refuse a v2 snapshot with
// ErrVersion, and today's reader must likewise refuse files from a future
// version rather than misparse them.
func TestV1ReaderRefusesV2(t *testing.T) {
	// A real v2 snapshot, as today's writer emits it.
	var buf bytes.Buffer
	sw, err := NewSnapshotWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(Op{Kind: KindSetPrio, Key: "k", Value: []byte("v"), Size: 10, Cost: 3, Priority: 7, Class: 12}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := checkFileHeader(buf.Bytes(), snapshotMagic, 1, "snapshot"); !errors.Is(err, ErrVersion) {
		t.Fatalf("v1-ceiling header check accepted a v2 snapshot: %v", err)
	}

	// And the same guard protects today's reader from tomorrow's format.
	future := appendFileHeader(nil, snapshotMagic, SnapshotVersion+1)
	future = AppendRecord(future, Op{Kind: KindSet, Key: "k", Value: []byte("v"), Size: 10, Cost: 1})
	if _, err := ReadSnapshot(bytes.NewReader(future), func(Op) error { return nil }); !errors.Is(err, ErrVersion) {
		t.Fatalf("reader accepted a version-%d snapshot: %v", SnapshotVersion+1, err)
	}
}

// TestV1ReaderSemanticsRejectV2Kinds pins the strict v1 backward-read: a
// file carrying a v1 header must contain only v1 record kinds — a v2 record
// smuggled under a v1 header is corruption, not a silent downgrade.
func TestV1ReaderSemanticsRejectV2Kinds(t *testing.T) {
	data := appendFileHeader(nil, snapshotMagic, 1)
	data = AppendRecord(data, Op{Kind: KindSetPrio, Key: "k", Value: []byte("v"), Size: 10, Cost: 1, Priority: 2, Class: 4})
	if _, err := ReadSnapshot(bytes.NewReader(data), func(Op) error { return nil }); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("v1 snapshot with a v2 record kind read as: %v, want ErrCorruptRecord", err)
	}
	data = appendFileHeader(nil, snapshotMagic, 1)
	data = AppendRecord(data, Op{Kind: KindPosition, Pos: Position{RunID: 1, Gen: 1, Off: SegmentHeaderLen}})
	if _, err := ReadSnapshot(bytes.NewReader(data), func(Op) error { return nil }); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("v1 snapshot with a position record read as: %v, want ErrCorruptRecord", err)
	}
}

// TestWritersAlwaysEmitV2 pins that every snapshot writer — the streaming
// writer, the atomic file writer, and a Manager compaction — stamps the
// current (v2) version, and that v2 content (priorities, positions) round-
// trips through the reader exactly.
func TestWritersAlwaysEmitV2(t *testing.T) {
	ops := []Op{
		{Kind: KindScale, Scale: 99},
		{Kind: KindSetPrio, Key: "a", Value: []byte("va"), Flags: 1, Size: 20, Cost: 9, Priority: 41, Class: 50},
		{Kind: KindSet, Key: "b", Value: []byte("vb"), Size: 21, Cost: 2},
		{Kind: KindPosition, Pos: Position{RunID: 77, Gen: 3, Off: 1234}},
	}
	emit := func(write func(Op) error) error {
		for _, op := range ops {
			if err := write(op); err != nil {
				return err
			}
		}
		return nil
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "snap.camp")
	if _, err := WriteSnapshotFile(path, emit); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != 2 || SnapshotVersion != 2 {
		t.Fatalf("snapshot header version = %d, want 2", v)
	}
	var got []Op
	if _, err := ReadSnapshot(bytes.NewReader(data), func(op Op) error {
		got = append(got, op)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	opsEqual(t, "v2 round trip", got, ops)

	// A Manager compaction writes the same format.
	mdir := t.TempDir()
	m, _, err := Open(Options{Dir: mdir, Fsync: FsyncNo}, func(Op) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Compact(emit); err != nil {
		t.Fatal(err)
	}
	snaps, _, err := scanDir(defaultFS, mdir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no compaction snapshot written: %v %v", snaps, err)
	}
	data, err = os.ReadFile(m.snapPath(snaps[len(snaps)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != SnapshotVersion {
		t.Fatalf("compaction snapshot version = %d, want %d", v, SnapshotVersion)
	}

	// New AOF segments are stamped v2 as well.
	_, aofs, err := scanDir(defaultFS, mdir)
	if err != nil || len(aofs) == 0 {
		t.Fatalf("no aof segment: %v %v", aofs, err)
	}
	data, err = os.ReadFile(m.aofPath(aofs[len(aofs)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != 2 || AOFVersion != 2 {
		t.Fatalf("aof header version = %d, want 2", v)
	}
}

// TestJournalCarriesPositionRecords pins the durable-position journal path
// end to end at the persist layer: position records append (batched with
// their ops), survive recovery, and replay in order.
func TestJournalCarriesPositionRecords(t *testing.T) {
	dir := t.TempDir()
	m, _, err := Open(Options{Dir: dir, Fsync: FsyncAlways}, func(Op) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	pos1 := Position{RunID: 9, Gen: 2, Off: 100}
	pos2 := Position{RunID: 9, Gen: 2, Off: 230}
	if err := m.AppendBatch([]Op{
		{Kind: KindSet, Key: "k1", Value: []byte("v1"), Size: 10, Cost: 1},
		{Kind: KindPosition, Pos: pos1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendBatch([]Op{
		{Kind: KindSet, Key: "k2", Value: []byte("v2"), Size: 10, Cost: 2},
		{Kind: KindPosition, Pos: pos2},
	}); err != nil {
		t.Fatal(err)
	}
	m.Kill()

	var got []Op
	m2, _, err := Open(Options{Dir: dir, Fsync: FsyncAlways}, func(op Op) error {
		got = append(got, op)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	want := []Op{
		{Kind: KindSet, Key: "k1", Value: []byte("v1"), Size: 10, Cost: 1},
		{Kind: KindPosition, Pos: pos1},
		{Kind: KindSet, Key: "k2", Value: []byte("v2"), Size: 10, Cost: 2},
		{Kind: KindPosition, Pos: pos2},
	}
	opsEqual(t, "recovered journal", got, want)
}
