package persist

import (
	"errors"
	"fmt"
	"io"
	"time"

	"camp/internal/fault"
)

// SegmentHeaderLen is the byte length of an AOF segment header — the offset
// of the first record in every segment, and therefore the offset a
// replication position resets to when the stream crosses into a new
// generation.
const SegmentHeaderLen = fileHeaderLen

// Replication-position errors.
var (
	// ErrStalePosition reports a replication position that can no longer be
	// served incrementally — the generation was compacted away, skews past
	// the live journal, or the offset overruns its segment. The follower must
	// fall back to a full resync (snapshot + journal bootstrap).
	ErrStalePosition = errors.New("persist: stale replication position")
	// ErrTailTimeout reports that Next's wait elapsed with no new record; the
	// journal is simply idle.
	ErrTailTimeout = errors.New("persist: tail timeout")
)

// TailEvent is one step of a journal tail: either a complete record (Record
// non-nil, still encoded exactly as on disk) or a generation switch (Record
// nil, the stream moved to segment Gen). Gen/Off are the position after the
// event, so a follower mirroring them can resume with TailFrom later.
type TailEvent struct {
	Record []byte
	Gen    uint64
	Off    int64
}

// TailReader follows one Manager's journal for replication: it reads records
// from the segment files themselves (so it sees exactly the bytes recovery
// would replay), blocks on the manager's append notification when it reaches
// the live tail, and crosses into the next generation when compaction retires
// its segment. While a TailReader is attached, garbage collection retains
// every generation from the reader's position forward, so an attached
// follower is never forced into a full resync by a compaction.
//
// A TailReader is owned by a single goroutine; Close releases it (and its
// retention hold) and is safe to call after the manager has closed.
type TailReader struct {
	m *Manager
	f fault.File

	// gen is also read by the manager's GC under m.mu; the owner goroutine
	// only updates it while holding m.mu.
	gen     uint64
	off     int64 // consumed position (record boundary)
	fileOff int64 // read position (off + buffered bytes)

	buf        []byte
	start, end int
	closed     bool
}

// TailFrom validates a replication position and returns a TailReader that
// resumes exactly there. The position must name a generation the journal
// still has on disk and an offset inside it; anything else — generation zero,
// a generation beyond the live one, an offset before the segment header or
// past its end — is ErrStalePosition, telling the caller to bootstrap with
// FullSync instead. Offsets are trusted to lie on a record boundary (they
// come from a follower's own byte accounting); a mid-record offset surfaces
// as a checksum failure on the first read, never as corruption applied
// downstream.
func (m *Manager) TailFrom(gen uint64, off int64) (*TailReader, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tailFromLocked(gen, off)
}

func (m *Manager) tailFromLocked(gen uint64, off int64) (*TailReader, error) {
	if m.closed {
		return nil, ErrClosed
	}
	if m.opts.DisableAOF {
		return nil, errors.New("persist: journaling disabled")
	}
	if gen == 0 || gen > m.gen {
		return nil, fmt.Errorf("%w: generation %d (journal at %d)", ErrStalePosition, gen, m.gen)
	}
	if off < fileHeaderLen {
		return nil, fmt.Errorf("%w: offset %d before segment header", ErrStalePosition, off)
	}
	f, err := m.fs.Open(m.aofPath(gen))
	if err != nil {
		return nil, fmt.Errorf("%w: generation %d gone", ErrStalePosition, gen)
	}
	limit := int64(0)
	if gen == m.gen {
		limit = m.aofLen
	} else {
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: stat segment: %w", err)
		}
		limit = st.Size()
	}
	if off > limit {
		f.Close()
		return nil, fmt.Errorf("%w: offset %d past segment end %d", ErrStalePosition, off, limit)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: seek segment: %w", err)
	}
	tr := &TailReader{m: m, f: f, gen: gen, off: off, fileOff: off}
	m.tailers[tr] = struct{}{}
	return tr, nil
}

// FullSyncSource is everything a follower bootstrap needs, captured
// atomically: the newest snapshot (nil when none has been written yet) and a
// TailReader positioned at the first journal record past it. The snapshot
// file handle stays readable even if a concurrent compaction supersedes and
// unlinks it; the registered tail holds its segments against GC.
type FullSyncSource struct {
	SnapGen  uint64
	SnapSize int64
	Snapshot fault.File
	Tail     *TailReader
}

// Close releases the snapshot handle and the tail reader.
func (fs *FullSyncSource) Close() {
	if fs.Snapshot != nil {
		fs.Snapshot.Close()
	}
	fs.Tail.Close()
}

// FullSync opens a consistent bootstrap source: the newest on-disk snapshot
// plus the journal from that snapshot's generation forward. Applying the
// snapshot entries and then the tailed records reproduces the primary's store
// — the same stitch recovery performs, streamed instead of replayed locally.
func (m *Manager) FullSync() (*FullSyncSource, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.opts.DisableAOF {
		return nil, errors.New("persist: journaling disabled")
	}
	fs := &FullSyncSource{SnapGen: m.snapGen}
	if m.snapGen > 0 {
		f, err := m.fs.Open(m.snapPath(m.snapGen))
		if err != nil {
			return nil, fmt.Errorf("persist: open snapshot: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: stat snapshot: %w", err)
		}
		fs.Snapshot = f
		fs.SnapSize = st.Size()
	}
	// The first segment the snapshot does not subsume. With no snapshot yet,
	// every retained segment is load-bearing: start from the oldest.
	startGen := m.snapGen
	if startGen == 0 {
		_, aofs, err := scanDir(m.fs, m.opts.Dir)
		if err != nil {
			if fs.Snapshot != nil {
				fs.Snapshot.Close()
			}
			return nil, fmt.Errorf("persist: scan journal: %w", err)
		}
		if len(aofs) == 0 {
			if fs.Snapshot != nil {
				fs.Snapshot.Close()
			}
			return nil, errors.New("persist: no journal segments to sync from")
		}
		startGen = aofs[0]
	}
	tail, err := m.tailFromLocked(startGen, fileHeaderLen)
	if err != nil {
		if fs.Snapshot != nil {
			fs.Snapshot.Close()
		}
		return nil, err
	}
	fs.Tail = tail
	return fs, nil
}

// Gen returns the generation the reader is currently positioned in.
func (tr *TailReader) Gen() uint64 { return tr.gen }

// Off returns the consumed byte offset inside the current segment.
func (tr *TailReader) Off() int64 { return tr.off }

// Close detaches the reader from the manager, releasing its GC retention
// hold. Idempotent.
func (tr *TailReader) Close() {
	if tr.closed {
		return
	}
	tr.closed = true
	tr.m.mu.Lock()
	delete(tr.m.tailers, tr)
	tr.m.mu.Unlock()
	if tr.f != nil {
		tr.f.Close()
		tr.f = nil
	}
}

// outcomes of a tail EOF consultation with the manager.
const (
	eofRetry = iota // more bytes appeared; read again
	eofWait         // journal idle; wait on the returned channel
	eofNext         // crossed into the next generation; event is valid
)

// Next returns the next tail event, blocking up to wait for new records when
// the journal is idle (ErrTailTimeout when it elapses; wait <= 0 never
// blocks). The returned record slice is valid only until the following Next
// call. Errors other than ErrTailTimeout are terminal: the manager closed
// (ErrClosed) or the journal bytes are corrupt.
func (tr *TailReader) Next(wait time.Duration) (TailEvent, error) {
	if tr.closed {
		return TailEvent{}, errors.New("persist: tail reader is closed")
	}
	var deadline time.Time
	if wait > 0 {
		deadline = time.Now().Add(wait)
	}
	for {
		if tr.end > tr.start {
			pending := tr.buf[tr.start:tr.end]
			n, err := CheckRecord(pending)
			if err == nil {
				rec := pending[:n]
				tr.start += n
				tr.off += int64(n)
				return TailEvent{Record: rec, Gen: tr.gen, Off: tr.off}, nil
			}
			if !errors.Is(err, ErrShortRecord) {
				return TailEvent{}, fmt.Errorf("persist: tail generation %d offset %d: %w", tr.gen, tr.off, err)
			}
		}
		n, rerr := tr.fill()
		if n > 0 {
			continue
		}
		if rerr != nil && rerr != io.EOF {
			return TailEvent{}, fmt.Errorf("persist: tail read: %w", rerr)
		}
		ev, outcome, waitCh, err := tr.atEOF()
		switch {
		case err != nil:
			return TailEvent{}, err
		case outcome == eofRetry:
			continue
		case outcome == eofNext:
			return ev, nil
		}
		if wait <= 0 {
			return TailEvent{}, ErrTailTimeout
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return TailEvent{}, ErrTailTimeout
		}
		t := time.NewTimer(remain)
		select {
		case <-waitCh:
			t.Stop()
		case <-t.C:
			return TailEvent{}, ErrTailTimeout
		}
	}
}

// fill reads more segment bytes into the buffer, compacting or growing it as
// needed. Returns the byte count read and any read error (io.EOF at the live
// tail is the normal idle case).
func (tr *TailReader) fill() (int, error) {
	if tr.start == tr.end {
		tr.start, tr.end = 0, 0
	}
	if tr.end == len(tr.buf) {
		switch {
		case tr.start > 0:
			copy(tr.buf, tr.buf[tr.start:tr.end])
			tr.end -= tr.start
			tr.start = 0
		case len(tr.buf) == 0:
			tr.buf = make([]byte, 64<<10)
		default:
			grown := make([]byte, 2*len(tr.buf))
			copy(grown, tr.buf[:tr.end])
			tr.buf = grown
		}
	}
	n, err := tr.f.Read(tr.buf[tr.end:])
	tr.end += n
	tr.fileOff += int64(n)
	return n, err
}

// atEOF decides what an exhausted read means: the live tail (wait for the
// manager's append notification), a lost race with an append (retry), or a
// retired segment (advance into the next generation). Retired segments are
// final — BeginCompact synced and closed them — so a retired segment ending
// mid-record is corruption, not a torn tail.
func (tr *TailReader) atEOF() (ev TailEvent, outcome int, waitCh <-chan struct{}, err error) {
	m := tr.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ev, 0, nil, ErrClosed
	}
	if tr.gen == m.gen {
		if m.aofLen > tr.fileOff {
			return ev, eofRetry, nil, nil
		}
		return ev, eofWait, m.notify, nil
	}
	st, serr := tr.f.Stat()
	if serr != nil {
		return ev, 0, nil, fmt.Errorf("persist: stat retired segment: %w", serr)
	}
	if st.Size() > tr.fileOff {
		return ev, eofRetry, nil, nil
	}
	if tr.end > tr.start {
		return ev, 0, nil, fmt.Errorf("%w: retired segment %d ends mid-record", ErrCorruptRecord, tr.gen)
	}
	next := tr.gen + 1
	f, oerr := m.fs.Open(m.aofPath(next))
	if oerr != nil {
		return ev, 0, nil, fmt.Errorf("%w: segment %d missing after %d", ErrStalePosition, next, tr.gen)
	}
	var hdr [fileHeaderLen]byte
	if _, herr := io.ReadFull(f, hdr[:]); herr != nil {
		f.Close()
		return ev, 0, nil, fmt.Errorf("%w: segment %d header unreadable", ErrCorruptRecord, next)
	}
	if _, herr := checkFileHeader(hdr[:], aofMagic, AOFVersion, "aof"); herr != nil {
		f.Close()
		return ev, 0, nil, herr
	}
	tr.f.Close()
	tr.f = f
	tr.gen = next
	tr.off = fileHeaderLen
	tr.fileOff = fileHeaderLen
	tr.start, tr.end = 0, 0
	return TailEvent{Gen: next, Off: fileHeaderLen}, eofNext, nil, nil
}
