//go:build unix

package persist

import (
	"errors"
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive flock on f, returning
// ErrLocked when another process already holds it.
func flockExclusive(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return ErrLocked
	}
	return err
}
