package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeTestSnapshot(t *testing.T, path string, ops []Op) {
	t.Helper()
	n, err := WriteSnapshotFile(path, func(write func(Op) error) error {
		for _, op := range ops {
			if err := write(op); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ops) {
		t.Fatalf("wrote %d entries, want %d", n, len(ops))
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap-00000001.camp")
	want := []Op{
		{Key: "a", Value: []byte("alpha"), Flags: 1, Size: 61, Cost: 100},
		{Key: "b", Value: []byte("beta"), Size: 60, Cost: 2500},
		{Key: "c", Value: nil, Size: 57, Cost: 1},
	}
	writeTestSnapshot(t, path, want)
	var got []Op
	n, err := LoadSnapshotFile(path, func(op Op) error {
		got = append(got, op)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("loaded %d entries, want %d", n, len(want))
	}
	for i := range want {
		w := want[i]
		w.Kind = KindSet // the writer stamps the kind
		g := got[i]
		if g.Key != w.Key || !bytes.Equal(g.Value, w.Value) || g.Flags != w.Flags ||
			g.Size != w.Size || g.Cost != w.Cost || g.Kind != KindSet {
			t.Fatalf("entry %d: got %+v want %+v", i, g, w)
		}
	}
}

// TestSnapshotRefusesCorruptCRC is the acceptance case: a bit flip inside a
// snapshot must fail the load with a clear error, never serve garbage.
func TestSnapshotRefusesCorruptCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap-00000001.camp")
	writeTestSnapshot(t, path, []Op{
		{Key: "a", Value: []byte("alpha"), Size: 61, Cost: 100},
		{Key: "b", Value: []byte("beta"), Size: 60, Cost: 2500},
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40 // corrupt the second record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	applied := 0
	_, err = LoadSnapshotFile(path, func(Op) error { applied++; return nil })
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCorruptRecord", err)
	}
	if applied > 1 {
		t.Fatalf("applied %d entries from a corrupt snapshot", applied)
	}
}

func TestSnapshotRefusesTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap-00000001.camp")
	writeTestSnapshot(t, path, []Op{{Key: "a", Value: []byte("alpha"), Size: 61, Cost: 100}})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(path, func(Op) error { return nil }); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("truncated snapshot: got %v, want ErrCorruptRecord", err)
	}
}

// TestSnapshotNewerVersion ensures a snapshot from a future format version
// is refused with ErrVersion instead of being misparsed.
func TestSnapshotNewerVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap-00000001.camp")
	writeTestSnapshot(t, path, []Op{{Key: "a", Value: []byte("alpha"), Size: 61, Cost: 100}})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[8:], SnapshotVersion+1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(path, func(Op) error { return nil }); !errors.Is(err, ErrVersion) {
		t.Fatalf("newer snapshot version: got %v, want ErrVersion", err)
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap-00000001.camp")
	if err := os.WriteFile(path, []byte("NOTMAGIC\x01\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(path, func(Op) error { return nil }); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("bad magic: got %v, want ErrCorruptRecord", err)
	}
}
