package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestOpenRefusesLockedDir is the satellite acceptance case: two managers
// pointed at the same data directory must not both come up — the second
// would interleave appends into the first one's journal.
func TestOpenRefusesLockedDir(t *testing.T) {
	dir := t.TempDir()
	m1, _, err := Open(Options{Dir: dir}, newMapStore().apply)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}, newMapStore().apply); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open on a live dir: got %v, want ErrLocked", err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the lock, so a successor can take over.
	m2, _, err := Open(Options{Dir: dir}, newMapStore().apply)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	m2.Close()
}

func TestKillReleasesLock(t *testing.T) {
	dir := t.TempDir()
	m1, _, err := Open(Options{Dir: dir}, newMapStore().apply)
	if err != nil {
		t.Fatal(err)
	}
	m1.Kill()
	m2, _, err := Open(Options{Dir: dir}, newMapStore().apply)
	if err != nil {
		t.Fatalf("Open after Kill: %v", err)
	}
	m2.Close()
}

func TestLockDir(t *testing.T) {
	dir := t.TempDir()
	l1, err := LockDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LockDir(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second LockDir: got %v, want ErrLocked", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatal(err)
	}
	if err := l1.Release(); err != nil {
		t.Fatal("Release must be idempotent")
	}
	l2, err := LockDir(dir)
	if err != nil {
		t.Fatalf("LockDir after Release: %v", err)
	}
	l2.Release()
	var nilLock *DirLock
	if err := nilLock.Release(); err != nil {
		t.Fatal("Release on nil must be a no-op")
	}
}

// TestBeginCommitCompaction drives the two-phase path directly: the segment
// switch happens at Begin, appends land in the new generation, and the
// snapshot committed later anchors recovery.
func TestBeginCommitCompaction(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)
	for i := 0; i < 10; i++ {
		op := Op{Kind: KindSet, Key: fmt.Sprintf("k%d", i), Value: []byte("v"), Size: 10, Cost: 1}
		if err := m.Append(op); err != nil {
			t.Fatal(err)
		}
		if err := st.apply(op); err != nil {
			t.Fatal(err)
		}
	}
	c, err := m.BeginCompact()
	if err != nil {
		t.Fatal(err)
	}
	// State captured at Begin time; mutations after Begin go to the new
	// segment and must survive alongside the snapshot.
	snap := newMapStore()
	for k, op := range st.m {
		snap.m[k] = op
	}
	post := Op{Kind: KindSet, Key: "post", Value: []byte("p"), Size: 10, Cost: 2}
	if err := m.Append(post); err != nil {
		t.Fatal(err)
	}
	if _, err := m.BeginCompact(); !errors.Is(err, errCompacting) {
		t.Fatalf("overlapping BeginCompact: got %v", err)
	}
	if err := c.Commit(snap.emit); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(snap.emit); err == nil {
		t.Fatal("double Commit must fail")
	}
	info := m.Info()
	if info.Generation != 2 || info.SnapshotGen != 2 || info.Compactions != 1 {
		t.Fatalf("post-commit info: %+v", info)
	}
	if _, err := os.Stat(filepath.Join(dir, "aof-00000001.log")); !os.IsNotExist(err) {
		t.Fatal("retired segment survived commit")
	}
	m.Kill()

	st2 := newMapStore()
	m2, stats := openTest(t, dir, Options{}, st2)
	defer m2.Close()
	if stats.SnapshotOps != 10 || stats.ReplayedOps != 1 {
		t.Fatalf("recovery after two-phase compaction: %+v", stats)
	}
	if _, ok := st2.m["post"]; !ok || len(st2.m) != 11 {
		t.Fatalf("recovered %d keys (post present: %v), want 11 with post", len(st2.m), ok)
	}
}

// TestRecoverySurvivesSegmentSwitchWithoutSnapshot simulates a crash between
// BeginCompact and Commit: the journal is on generation N with the newest
// snapshot at N-1 (or absent), and recovery must stitch both segments
// together — and must NOT garbage-collect the pre-switch segment.
func TestRecoverySurvivesSegmentSwitchWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)
	if err := m.Append(Op{Kind: KindSet, Key: "old", Value: []byte("v"), Size: 10, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.BeginCompact(); err != nil {
		t.Fatal(err)
	}
	// Crash before Commit: no snapshot for generation 2.
	if err := m.Append(Op{Kind: KindSet, Key: "new", Value: []byte("v"), Size: 10, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	m.Kill()

	st2 := newMapStore()
	m2, stats := openTest(t, dir, Options{}, st2)
	if stats.ReplayedOps != 2 || len(st2.m) != 2 {
		t.Fatalf("stitched recovery: %+v with %d keys", stats, len(st2.m))
	}
	// Both segments must still be on disk until a snapshot anchors gen 2.
	for _, name := range []string{"aof-00000001.log", "aof-00000002.log"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("load-bearing segment %s was garbage-collected: %v", name, err)
		}
	}
	// A crash loop must not lose data either: kill and recover once more.
	m2.Kill()
	st3 := newMapStore()
	m3, _ := openTest(t, dir, Options{}, st3)
	defer m3.Close()
	if len(st3.m) != 2 {
		t.Fatalf("second stitched recovery lost keys: %d, want 2", len(st3.m))
	}
}

// TestRecoverDir covers the read-only migration path: state is readable
// while leaving every file byte-for-byte untouched, even a torn tail.
func TestRecoverDir(t *testing.T) {
	dir := t.TempDir()
	st := newMapStore()
	m, _ := openTest(t, dir, Options{Fsync: FsyncAlways}, st)
	for i := 0; i < 5; i++ {
		if err := m.Append(Op{Kind: KindSet, Key: fmt.Sprintf("k%d", i), Value: []byte("v"), Size: 10, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record.
	path := filepath.Join(dir, "aof-00000001.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := newMapStore()
	stats, err := RecoverDir(dir, nil, st2.apply)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReplayedOps != 4 || stats.TruncatedBytes == 0 || len(st2.m) != 4 {
		t.Fatalf("read-only recovery: %+v with %d keys", stats, len(st2.m))
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data)-2 {
		t.Fatal("RecoverDir modified the AOF file")
	}
}
