package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"time"
)

func sampleOps() []Op {
	return []Op{
		{Kind: KindSet, Key: "user:42", Value: []byte("profile-bytes"), Flags: 7,
			Expires: time.Date(2026, 7, 28, 0, 0, 0, 0, time.UTC).UnixNano(), Size: 120, Cost: 9000},
		{Kind: KindSet, Key: "k", Value: nil, Size: 57, Cost: 1},
		{Kind: KindDelete, Key: "user:42"},
		{Kind: KindTouch, Key: "k", Expires: 1234567890},
		{Kind: KindTouch, Key: "k"}, // expiry cleared
		{Kind: KindFlush},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	ops := sampleOps()
	for _, op := range ops {
		buf = AppendRecord(buf, op)
	}
	for i, want := range ops {
		got, used, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Key != want.Key || !bytes.Equal(got.Value, want.Value) ||
			got.Flags != want.Flags || got.Expires != want.Expires ||
			got.Size != want.Size || got.Cost != want.Cost {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		buf = buf[used:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after decoding all records", len(buf))
	}
}

func TestDecodeTornRecord(t *testing.T) {
	full := AppendRecord(nil, sampleOps()[0])
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeRecord(full[:cut]); !errors.Is(err, ErrShortRecord) {
			t.Fatalf("cut at %d/%d: got %v, want ErrShortRecord", cut, len(full), err)
		}
	}
}

func TestDecodeCorruptRecord(t *testing.T) {
	full := AppendRecord(nil, sampleOps()[0])
	// Flip one payload byte: the CRC must catch it.
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0xff
	if _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("payload bit flip: got %v, want ErrCorruptRecord", err)
	}
	// A huge length prefix must be rejected, not allocated.
	bad = append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(bad, 1<<31)
	if _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("huge length: got %v, want ErrCorruptRecord", err)
	}
	// Unknown op kind with a valid CRC.
	op := sampleOps()[2]
	raw := AppendRecord(nil, op)
	raw[8] = 200 // op kind byte
	binary.LittleEndian.PutUint32(raw[4:], crcOf(raw[8:]))
	if _, _, err := DecodeRecord(raw); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("unknown kind: got %v, want ErrCorruptRecord", err)
	}
	// Empty key with a valid CRC.
	raw = AppendRecord(nil, Op{Kind: KindDelete, Key: "x"})
	raw[9] = 0 // key length varint
	raw = raw[:len(raw)-1]
	binary.LittleEndian.PutUint32(raw, uint32(len(raw)-recordHeaderLen))
	binary.LittleEndian.PutUint32(raw[4:], crcOf(raw[8:]))
	if _, _, err := DecodeRecord(raw); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("empty key: got %v, want ErrCorruptRecord", err)
	}
}

func crcOf(payload []byte) uint32 {
	return crc32.Checksum(payload, crcTable)
}

func TestExpiresRoundTrip(t *testing.T) {
	if !(Op{}).ExpiresAt().IsZero() {
		t.Fatal("zero Expires should map to zero time")
	}
	now := time.Now()
	op := Op{Expires: ExpiresFrom(now)}
	if !op.ExpiresAt().Equal(now) {
		t.Fatalf("expiry round-trip: got %v want %v", op.ExpiresAt(), now)
	}
	if ExpiresFrom(time.Time{}) != 0 {
		t.Fatal("zero time should map to Expires 0")
	}
}
