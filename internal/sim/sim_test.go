package sim

import (
	"errors"
	"strings"
	"testing"

	"camp/internal/cache"
	"camp/internal/core"
	"camp/internal/trace"
)

func req(key string, size, cost int64) trace.Request {
	return trace.Request{Key: key, Size: size, Cost: cost}
}

// TestColdRequestExclusion verifies the §3 accounting rule: the first
// request to each key is not counted in miss rate or cost-miss ratio.
func TestColdRequestExclusion(t *testing.T) {
	src := trace.NewSliceSource([]trace.Request{
		req("a", 10, 100), // cold miss: excluded
		req("a", 10, 100), // warm hit
		req("b", 10, 50),  // cold miss: excluded
		req("a", 10, 100), // warm hit
		req("b", 10, 50),  // warm hit
	})
	res, err := Run(cache.NewLRU(100), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 5 || res.ColdRequests != 2 {
		t.Fatalf("Requests=%d Cold=%d", res.Requests, res.ColdRequests)
	}
	if res.Misses != 0 || res.Hits != 3 {
		t.Fatalf("Misses=%d Hits=%d, want 0/3", res.Misses, res.Hits)
	}
	if res.MissRate() != 0 {
		t.Fatalf("MissRate = %v, want 0", res.MissRate())
	}
	if res.TotalCost != 250 {
		t.Fatalf("TotalCost = %d, want 250", res.TotalCost)
	}
	if res.CostMissRatio() != 0 {
		t.Fatalf("CostMissRatio = %v, want 0", res.CostMissRatio())
	}
}

// TestMetricsMath checks a scripted trace with known hits and misses.
func TestMetricsMath(t *testing.T) {
	// LRU capacity 20 holds two 10-byte items.
	src := trace.NewSliceSource([]trace.Request{
		req("a", 10, 1), // cold
		req("b", 10, 2), // cold
		req("c", 10, 4), // cold, evicts a
		req("a", 10, 1), // warm MISS (evicts b), cost 1
		req("c", 10, 4), // warm hit
		req("b", 10, 2), // warm MISS (evicts a), cost 2
		req("c", 10, 4), // warm hit
	})
	res, err := Run(cache.NewLRU(20), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 2 || res.Hits != 2 {
		t.Fatalf("Misses=%d Hits=%d, want 2/2", res.Misses, res.Hits)
	}
	if res.MissRate() != 0.5 {
		t.Fatalf("MissRate = %v, want 0.5", res.MissRate())
	}
	if res.MissCost != 3 || res.TotalCost != 11 {
		t.Fatalf("MissCost=%d TotalCost=%d, want 3/11", res.MissCost, res.TotalCost)
	}
	if got, want := res.CostMissRatio(), 3.0/11.0; got != want {
		t.Fatalf("CostMissRatio = %v, want %v", got, want)
	}
	if res.Evictions != 3 {
		t.Fatalf("Evictions = %d, want 3", res.Evictions)
	}
}

func TestEmptyTrace(t *testing.T) {
	res, err := Run(cache.NewLRU(10), trace.NewSliceSource(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 0 || res.MissRate() != 0 || res.CostMissRatio() != 0 {
		t.Fatalf("unexpected metrics on empty trace: %+v", res)
	}
}

func TestRejectedTooLarge(t *testing.T) {
	src := trace.NewSliceSource([]trace.Request{
		req("huge", 1000, 1),
		req("huge", 1000, 1),
	})
	res, err := Run(cache.NewLRU(10), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", res.Rejected)
	}
	if res.Misses != 1 { // second request is warm and misses
		t.Fatalf("Misses = %d, want 1", res.Misses)
	}
}

func TestOccupancyProbe(t *testing.T) {
	// Fill a 30-byte LRU with tf1 keys, then displace them with tf2 keys
	// and watch the fraction fall.
	var reqs []trace.Request
	for _, k := range []string{"tf1-a", "tf1-b", "tf1-c"} {
		reqs = append(reqs, req(k, 10, 1))
	}
	for _, k := range []string{"tf2-a", "tf2-b", "tf2-c"} {
		reqs = append(reqs, req(k, 10, 1))
	}
	res, err := Run(cache.NewLRU(30), trace.NewSliceSource(reqs),
		WithOccupancyProbe(func(key string) bool { return strings.HasPrefix(key, "tf1-") }, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Occupancy) != 6 {
		t.Fatalf("got %d samples, want 6", len(res.Occupancy))
	}
	wantBytes := []int64{10, 20, 30, 20, 10, 0}
	for i, s := range res.Occupancy {
		if s.Bytes != wantBytes[i] {
			t.Fatalf("sample %d: bytes=%d, want %d (samples %+v)", i, s.Bytes, wantBytes[i], res.Occupancy)
		}
		if want := float64(wantBytes[i]) / 30; s.Fraction != want {
			t.Fatalf("sample %d: fraction=%v, want %v", i, s.Fraction, want)
		}
		if s.Requests != int64(i+1) {
			t.Fatalf("sample %d: requests=%d", i, s.Requests)
		}
	}
}

func TestOccupancyProbeWithUpdates(t *testing.T) {
	// The same member key re-inserted with a different size must not
	// double-count.
	reqs := []trace.Request{
		req("tf1-a", 10, 1),
		req("big", 25, 1), // evicts tf1-a (capacity 30)
		req("tf1-a", 20, 1),
	}
	res, err := Run(cache.NewLRU(30), trace.NewSliceSource(reqs),
		WithOccupancyProbe(func(key string) bool { return strings.HasPrefix(key, "tf1-") }, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 0, 20}
	for i, s := range res.Occupancy {
		if s.Bytes != want[i] {
			t.Fatalf("sample %d: bytes=%d, want %d", i, s.Bytes, want[i])
		}
	}
}

func TestGroupByMetrics(t *testing.T) {
	src := trace.NewSliceSource([]trace.Request{
		req("cheap1", 10, 1),
		req("gold1", 10, 100),
		req("cheap1", 10, 1),  // warm hit
		req("gold1", 10, 100), // warm hit
		req("cheap2", 10, 1),  // cold, evicts cheap1 (LRU cap 20)
		req("cheap1", 10, 1),  // warm miss
	})
	group := func(r trace.Request) string {
		if r.Cost >= 100 {
			return "expensive"
		}
		return "cheap"
	}
	res, err := Run(cache.NewLRU(20), src, WithGroupBy(group))
	if err != nil {
		t.Fatal(err)
	}
	cheap := res.Groups["cheap"]
	exp := res.Groups["expensive"]
	if cheap == nil || exp == nil {
		t.Fatalf("missing groups: %+v", res.Groups)
	}
	if cheap.Requests != 2 || cheap.Misses != 1 {
		t.Fatalf("cheap = %+v, want 2 requests 1 miss", cheap)
	}
	if cheap.MissRate() != 0.5 {
		t.Fatalf("cheap miss rate = %v", cheap.MissRate())
	}
	if exp.Requests != 1 || exp.Misses != 0 {
		t.Fatalf("expensive = %+v", exp)
	}
}

type errSource struct{ n int }

func (e *errSource) Next() (trace.Request, bool) {
	if e.n == 0 {
		e.n++
		return req("a", 1, 1), true
	}
	return trace.Request{}, false
}
func (e *errSource) Err() error { return errors.New("boom") }

func TestSourceErrorPropagates(t *testing.T) {
	_, err := Run(cache.NewLRU(10), &errSource{})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestInstrumentationFields checks that CAMP/GDS-specific fields are filled.
func TestInstrumentationFields(t *testing.T) {
	g := trace.NewBGTrace(3, 200, 10000)
	res, err := Run(core.NewCamp(5000), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeapVisits == 0 || res.HeapUpdates == 0 {
		t.Fatalf("CAMP instrumentation missing: %+v", res)
	}
	if res.QueueCount == 0 || res.MaxQueueCount < res.QueueCount {
		t.Fatalf("queue counts missing: %+v", res)
	}
	g2 := trace.NewBGTrace(3, 200, 10000)
	res2, err := Run(core.NewGDS(5000), g2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.HeapVisits == 0 {
		t.Fatal("GDS heap visits missing")
	}
	if res2.QueueCount != 0 {
		t.Fatal("GDS should not report queue counts")
	}
}

// TestAllPoliciesSmoke runs every policy over the same trace and sanity
// checks the aggregate accounting identities.
func TestAllPoliciesSmoke(t *testing.T) {
	pooled, err := cache.NewPooledByCostValues(4000, []int64{1, 100, 10000}, false)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := cache.NewSharded(4000, 4, func(c int64) cache.Policy { return cache.NewLRU(c) })
	if err != nil {
		t.Fatal(err)
	}
	policies := []cache.Policy{
		cache.NewLRU(4000),
		pooled,
		core.NewCamp(4000),
		core.NewCamp(4000, core.WithClassicLUpdate()),
		core.NewGDS(4000),
		core.NewGDS(4000, core.WithTextbookDelete()),
		cache.NewARC(4000),
		cache.NewTwoQ(4000),
		cache.NewLFU(4000),
		cache.NewGDWheel(4000),
		cache.NewAdmission(core.NewCamp(4000)),
		cache.NewTwoLevel(cache.NewLRU(1000), core.NewCamp(3000)),
		sharded,
	}
	for _, p := range policies {
		t.Run(p.Name(), func(t *testing.T) {
			src := trace.NewBGTrace(17, 300, 20000)
			res, err := Run(p, src)
			if err != nil {
				t.Fatal(err)
			}
			if res.Requests != 20000 {
				t.Fatalf("Requests = %d", res.Requests)
			}
			if res.Hits+res.Misses+res.ColdRequests != res.Requests {
				t.Fatalf("accounting mismatch: %+v", res)
			}
			if res.MissRate() < 0 || res.MissRate() > 1 {
				t.Fatalf("MissRate out of range: %v", res.MissRate())
			}
			if res.CostMissRatio() < 0 || res.CostMissRatio() > 1 {
				t.Fatalf("CostMissRatio out of range: %v", res.CostMissRatio())
			}
			if res.FinalUsed > res.Capacity {
				t.Fatalf("FinalUsed %d > Capacity %d", res.FinalUsed, res.Capacity)
			}
		})
	}
}

// TestCampBeatsLRUOnCost is the headline result (Figure 5c): on the skewed
// {1,100,10K} trace, CAMP's cost-miss ratio beats LRU's by a clear margin.
func TestCampBeatsLRUOnCost(t *testing.T) {
	capacity := int64(30000) // ~20% of the unique bytes of this trace

	lruRes, err := Run(cache.NewLRU(capacity), trace.NewBGTrace(23, 500, 100000))
	if err != nil {
		t.Fatal(err)
	}
	campRes, err := Run(core.NewCamp(capacity), trace.NewBGTrace(23, 500, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if campRes.CostMissRatio() >= lruRes.CostMissRatio() {
		t.Fatalf("CAMP cost-miss %.4f should beat LRU %.4f",
			campRes.CostMissRatio(), lruRes.CostMissRatio())
	}
}
