// Package sim drives eviction policies with reference traces and measures
// the paper's metrics (§3): miss rate and cost-miss ratio — both excluding
// cold requests — plus the instrumentation series behind Figures 4, 5b, 6c
// and 6d (visited heap nodes, queue counts, occupancy of a key subset).
//
// The simulator mirrors the paper's setup: a request generator reads a trace
// and issues a Get per row; on a miss it inserts the missing key-value pair,
// which triggers evictions when memory is exhausted.
package sim

import (
	"time"

	"camp/internal/cache"
	"camp/internal/trace"
)

// Result aggregates one simulation run.
type Result struct {
	// Policy is the policy's Name().
	Policy string
	// Capacity is the policy's byte budget.
	Capacity int64

	// Requests counts every trace row processed.
	Requests int64
	// ColdRequests counts first references, excluded from all ratios.
	ColdRequests int64
	// Hits and Misses count warm requests only.
	Hits, Misses int64
	// MissCost and TotalCost sum request costs over warm misses and all
	// warm requests respectively.
	MissCost, TotalCost int64
	// Rejected counts inserts refused by the policy.
	Rejected int64

	// Duration is the wall-clock simulation time.
	Duration time.Duration

	// HeapVisits is the number of heap nodes visited (CAMP/GDS only).
	HeapVisits uint64
	// HeapUpdates is the number of structural heap operations (CAMP/GDS).
	HeapUpdates uint64
	// QueueCount and MaxQueueCount report CAMP's non-empty LRU queues.
	QueueCount, MaxQueueCount int

	// FinalUsed is the occupied byte count at the end of the run.
	FinalUsed int64
	// Evictions is the policy's eviction count.
	Evictions uint64

	// Occupancy holds probe samples when an occupancy probe was set.
	Occupancy []OccupancySample
	// Groups holds per-group metrics when a group function was set.
	Groups map[string]*GroupMetrics
}

// MissRate returns warm misses / warm requests (Figures 5d, 6b, 7, 8b, 9c).
func (r *Result) MissRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Hits+r.Misses)
}

// CostMissRatio returns the cost of warm misses over the cost of all warm
// requests — the paper's primary metric (Figures 5a, 5c, 6a, 8a, 9a).
func (r *Result) CostMissRatio() float64 {
	if r.TotalCost == 0 {
		return 0
	}
	return float64(r.MissCost) / float64(r.TotalCost)
}

// OccupancySample records the bytes held by the probed key subset after a
// given number of requests (Figures 6c and 6d track trace-1 occupancy).
type OccupancySample struct {
	// Requests is the number of requests processed when sampled.
	Requests int64
	// Bytes is the total size of resident probed keys.
	Bytes int64
	// Fraction is Bytes divided by the cache capacity.
	Fraction float64
}

// GroupMetrics aggregates warm-request metrics for one request group.
type GroupMetrics struct {
	Requests  int64
	Misses    int64
	MissCost  int64
	TotalCost int64
}

// MissRate returns the group's warm miss rate.
func (g *GroupMetrics) MissRate() float64 {
	if g.Requests == 0 {
		return 0
	}
	return float64(g.Misses) / float64(g.Requests)
}

// Option configures a simulation run.
type Option func(*runner)

// WithOccupancyProbe samples the resident bytes of keys matched by member
// every interval requests. Used for Figures 6c/6d with member selecting
// trace-file-1 keys.
func WithOccupancyProbe(member func(key string) bool, interval int64) Option {
	return func(r *runner) {
		r.member = member
		r.probeEvery = interval
	}
}

// WithGroupBy collects per-group metrics keyed by group(req), e.g. grouping
// by cost class to show Pooled LRU's near-100% miss rate on the cheap pool.
func WithGroupBy(group func(trace.Request) string) Option {
	return func(r *runner) { r.group = group }
}

type runner struct {
	member     func(string) bool
	probeEvery int64
	group      func(trace.Request) string
}

// Run replays src against p and returns the measured metrics.
func Run(p cache.Policy, src trace.Source, opts ...Option) (*Result, error) {
	var r runner
	for _, o := range opts {
		o(&r)
	}

	res := &Result{Policy: p.Name(), Capacity: p.Capacity()}
	seen := make(map[string]struct{})
	if r.group != nil {
		res.Groups = make(map[string]*GroupMetrics)
	}

	// Occupancy tracking: resident sizes of probed keys, kept in sync via
	// the eviction callback.
	var (
		memberBytes int64
		memberSizes map[string]int64
	)
	if r.member != nil {
		memberSizes = make(map[string]int64)
		p.SetEvictFunc(func(e cache.Entry) {
			if sz, ok := memberSizes[e.Key]; ok {
				memberBytes -= sz
				delete(memberSizes, e.Key)
			}
		})
		defer p.SetEvictFunc(nil)
	}

	start := time.Now()
	for {
		req, ok := src.Next()
		if !ok {
			break
		}
		res.Requests++
		_, warm := seen[req.Key]
		if !warm {
			seen[req.Key] = struct{}{}
			res.ColdRequests++
		}

		hit := p.Get(req.Key)
		if !hit {
			if p.Set(req.Key, req.Size, req.Cost) {
				if r.member != nil && r.member(req.Key) {
					if old, ok := memberSizes[req.Key]; ok {
						memberBytes -= old
					}
					memberSizes[req.Key] = req.Size
					memberBytes += req.Size
				}
			} else {
				res.Rejected++
			}
		}

		if warm {
			res.TotalCost += req.Cost
			if hit {
				res.Hits++
			} else {
				res.Misses++
				res.MissCost += req.Cost
			}
			if r.group != nil {
				g := r.group(req)
				gm := res.Groups[g]
				if gm == nil {
					gm = &GroupMetrics{}
					res.Groups[g] = gm
				}
				gm.Requests++
				gm.TotalCost += req.Cost
				if !hit {
					gm.Misses++
					gm.MissCost += req.Cost
				}
			}
		}

		if r.probeEvery > 0 && res.Requests%r.probeEvery == 0 {
			frac := 0.0
			if cap := p.Capacity(); cap > 0 {
				frac = float64(memberBytes) / float64(cap)
			}
			res.Occupancy = append(res.Occupancy, OccupancySample{
				Requests: res.Requests,
				Bytes:    memberBytes,
				Fraction: frac,
			})
		}
	}
	res.Duration = time.Since(start)
	if err := src.Err(); err != nil {
		return res, err
	}

	res.FinalUsed = p.Used()
	res.Evictions = p.Stats().Evictions
	if hv, ok := p.(cache.HeapVisitor); ok {
		res.HeapVisits = hv.HeapVisits()
	}
	if hu, ok := p.(interface{ HeapUpdates() uint64 }); ok {
		res.HeapUpdates = hu.HeapUpdates()
	}
	if qc, ok := p.(cache.QueueCounter); ok {
		res.QueueCount = qc.QueueCount()
		res.MaxQueueCount = qc.MaxQueueCount()
	}
	return res, nil
}
