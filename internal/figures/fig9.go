package figures

import (
	"errors"
	"fmt"
	"time"

	"camp/internal/kvclient"
	"camp/internal/kvserver"
	"camp/internal/trace"
)

// Fig9Ratios are the cache-size ratios for the implementation experiment;
// §4 exercises small caches where the policies differ most.
var Fig9Ratios = []float64{0.01, 0.05, 0.1, 0.25}

// Fig9All reproduces Figure 9 (a, b and c) by replaying the BG trace with
// synthetic {1,100,10K} costs against real kvserver instances over loopback
// TCP — one running LRU, one running CAMP(p=5) — mirroring the paper's IQ
// Twemcache deployment. It returns the three tables (cost-miss ratio, run
// time, miss rate).
func Fig9All(cfg Config) []*Table {
	requests := cfg.Requests / 4
	if requests > 100000 {
		requests = 100000
	}
	if requests < 1000 {
		requests = 1000
	}
	gen := trace.NewBGTrace(cfg.Seed, cfg.Keys, requests)
	reqs, err := trace.Materialize(gen)
	if err != nil {
		panic("figures: generator cannot fail: " + err.Error())
	}
	unique := trace.UniqueBytes(reqs)

	costMiss := &Table{
		ID:     "fig9a",
		Title:  "Implementation: cost-miss ratio vs cache size ratio (loopback TCP)",
		XLabel: "ratio",
		Series: []string{"lru", "camp(p=5)"},
		Notes:  []string{"paper shape: CAMP far lower at small caches; gap narrows as the cache grows"},
	}
	runtime := &Table{
		ID:     "fig9b",
		Title:  "Implementation: trace run time (ms) vs cache size ratio",
		XLabel: "ratio",
		Series: []string{"lru", "camp(p=5)"},
		Notes: []string{
			"paper shape: CAMP as fast as LRU; both speed up with cache size (fewer set round trips)",
		},
	}
	missRate := &Table{
		ID:     "fig9c",
		Title:  "Implementation: miss rate vs cache size ratio (loopback TCP)",
		XLabel: "ratio",
		Series: []string{"lru", "camp(p=5)"},
		Notes:  []string{"paper shape: miss rate drops with cache size for both policies"},
	}

	for _, ratio := range Fig9Ratios {
		capacity := capacityFor(ratio, unique)
		var cm, rt, mr [2]float64
		for i, policy := range []string{"lru", "camp"} {
			res, err := replayOverServer(policy, capacity, reqs)
			if err != nil {
				panic("figures: fig9 replay: " + err.Error())
			}
			cm[i] = res.costMissRatio
			rt[i] = float64(res.duration.Milliseconds())
			mr[i] = res.missRate
		}
		costMiss.Rows = append(costMiss.Rows, Row{X: ratio, Y: cm[:]})
		runtime.Rows = append(runtime.Rows, Row{X: ratio, Y: rt[:]})
		missRate.Rows = append(missRate.Rows, Row{X: ratio, Y: mr[:]})
	}
	return []*Table{costMiss, runtime, missRate}
}

type fig9Result struct {
	costMissRatio float64
	missRate      float64
	duration      time.Duration
}

// replayOverServer starts an in-process server with the given policy and
// capacity, replays the trace through a TCP client (get; on miss, set), and
// computes the §3 metrics client-side with cold requests excluded.
func replayOverServer(policy string, capacity int64, reqs []trace.Request) (*fig9Result, error) {
	srv, err := kvserver.New(kvserver.Config{
		MemoryBytes:  capacity,
		Policy:       policy,
		ItemOverhead: 1,
		DisableIQ:    true, // costs come from the trace, as in §4's workload
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Close()

	cli, err := kvclient.Dial(srv.Addr())
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	seen := make(map[string]struct{}, len(reqs)/4)
	var (
		warmMisses, warmHits int64
		missCost, totalCost  int64
	)
	value := make([]byte, 0, 1024)
	start := time.Now()
	for _, r := range reqs {
		_, warm := seen[r.Key]
		if !warm {
			seen[r.Key] = struct{}{}
		}
		_, hit, err := cli.Get(r.Key)
		if err != nil {
			return nil, fmt.Errorf("get %s: %w", r.Key, err)
		}
		if !hit {
			if int64(cap(value)) < r.Size {
				value = make([]byte, r.Size)
			}
			payload := value[:r.Size]
			// A SERVER_ERROR (out of memory / too large) matches
			// the simulator's "rejected" outcome; anything else is
			// a real failure.
			if err := cli.Set(r.Key, payload, 0, 0, r.Cost); err != nil && !errors.Is(err, kvclient.ErrServer) {
				return nil, fmt.Errorf("set %s: %w", r.Key, err)
			}
		}
		if warm {
			totalCost += r.Cost
			if hit {
				warmHits++
			} else {
				warmMisses++
				missCost += r.Cost
			}
		}
	}
	elapsed := time.Since(start)

	out := &fig9Result{duration: elapsed}
	if warmHits+warmMisses > 0 {
		out.missRate = float64(warmMisses) / float64(warmHits+warmMisses)
	}
	if totalCost > 0 {
		out.costMissRatio = float64(missCost) / float64(totalCost)
	}
	return out, nil
}
