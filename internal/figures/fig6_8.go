package figures

import (
	"strings"

	"camp/internal/cache"
	"camp/internal/core"
	"camp/internal/sim"
	"camp/internal/trace"
)

// Fig6a reproduces Figure 6a: cost-miss ratio vs cache size ratio under the
// evolving access pattern (back-to-back disjoint traces).
func Fig6a(cfg Config) *Table {
	return fig6ab(cfg, "fig6a", "Evolving workload: cost-miss ratio vs cache size ratio", false)
}

// Fig6b reproduces Figure 6b: miss rate vs cache size ratio (evolving).
func Fig6b(cfg Config) *Table {
	return fig6ab(cfg, "fig6b", "Evolving workload: miss rate vs cache size ratio", true)
}

func fig6ab(cfg Config, id, title string, missRate bool) *Table {
	reqs, unique := cfg.evolvingTrace()
	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "ratio",
		Series: []string{"lru", "pooled-cost", "camp(p=5)"},
		Notes:  []string{"paper shape: trends match the single-trace results of Figure 5"},
	}
	for _, ratio := range cfg.Ratios {
		capacity := capacityFor(ratio, unique)
		policies := []cache.Policy{
			cache.NewLRU(capacity),
			pooledByCost(capacity),
			core.NewCamp(capacity),
		}
		y := make([]float64, 0, len(policies))
		for _, p := range policies {
			res := mustRun(p, reqs)
			if missRate {
				y = append(y, res.MissRate())
			} else {
				y = append(y, res.CostMissRatio())
			}
		}
		t.Rows = append(t.Rows, Row{X: ratio, Y: y})
	}
	return t
}

// Fig6c reproduces Figure 6c: the fraction of cache occupied by trace-1
// items over time, at cache size ratio 0.25.
func Fig6c(cfg Config) *Table {
	return fig6cd(cfg, "fig6c", 0.25)
}

// Fig6d reproduces Figure 6d: the same at cache size ratio 0.75.
func Fig6d(cfg Config) *Table {
	return fig6cd(cfg, "fig6d", 0.75)
}

func fig6cd(cfg Config, id string, ratio float64) *Table {
	reqs, unique := cfg.evolvingTrace()
	capacity := capacityFor(ratio, unique)
	interval := int64(len(reqs)) / 60
	if interval < 1 {
		interval = 1
	}
	isTF1 := func(key string) bool { return strings.HasPrefix(key, "tf1-") }

	t := &Table{
		ID:     id,
		Title:  "Fraction of cache occupied by trace-1 items vs requests (x1000)",
		XLabel: "reqs(K)",
		Series: []string{"lru", "pooled-cost", "camp(p=5)"},
		Notes: []string{
			"paper shape: LRU purges TF1 fastest; CAMP retains only the highest cost-to-size TF1 items",
			"at ratio 0.75 CAMP keeps a small TF1 residue (<~1% of cache) long after the shift",
		},
	}

	run := func(p cache.Policy) []sim.OccupancySample {
		res := mustRun(p, reqs, sim.WithOccupancyProbe(isTF1, interval))
		return res.Occupancy
	}
	lru := run(cache.NewLRU(capacity))
	pooled := run(pooledByCost(capacity))
	camp := run(core.NewCamp(capacity))
	for i := range lru {
		t.Rows = append(t.Rows, Row{
			X: float64(lru[i].Requests) / 1000,
			Y: []float64{lru[i].Fraction, pooled[i].Fraction, camp[i].Fraction},
		})
	}
	return t
}

// Fig7 reproduces Figure 7: miss rate vs cache size with variable-sized
// key-value pairs and constant cost. With cost 1 everywhere the cost-miss
// ratio equals the miss rate, and Pooled LRU collapses to LRU (one pool).
func Fig7(cfg Config) *Table {
	reqs, unique := cfg.variableSizeTrace()
	t := &Table{
		ID:     "fig7",
		Title:  "Variable sizes, constant cost: miss rate vs cache size ratio",
		XLabel: "ratio",
		Series: []string{"lru", "camp(p=5)"},
		Notes:  []string{"paper shape: CAMP keeps small items resident and beats LRU's miss rate"},
	}
	for _, ratio := range cfg.Ratios {
		capacity := capacityFor(ratio, unique)
		lru := mustRun(cache.NewLRU(capacity), reqs)
		camp := mustRun(core.NewCamp(capacity), reqs)
		t.Rows = append(t.Rows, Row{X: ratio, Y: []float64{lru.MissRate(), camp.MissRate()}})
	}
	return t
}

// Fig8a reproduces Figure 8a: cost-miss ratio vs cache size ratio with
// equi-sized pairs and continuously varying costs. Pooled LRU uses the §3.2
// ranges [1,100), [100,10K), [10K,∞) weighted by range floor.
func Fig8a(cfg Config) *Table {
	return fig8ab(cfg, "fig8a", "Equi-size, variable costs: cost-miss ratio vs cache size ratio", false)
}

// Fig8b reproduces Figure 8b: miss rate vs cache size ratio for the same
// workload; CAMP trades a slightly worse miss rate for much better cost.
func Fig8b(cfg Config) *Table {
	return fig8ab(cfg, "fig8b", "Equi-size, variable costs: miss rate vs cache size ratio", true)
}

func fig8ab(cfg Config, id, title string, missRate bool) *Table {
	reqs, unique := cfg.equiSizeTrace()
	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "ratio",
		Series: []string{"lru", "pooled-range", "camp(p=5)"},
	}
	if missRate {
		t.Notes = []string{"paper shape: CAMP's miss rate slightly worse than LRU at small caches (it favors costly items)"}
	} else {
		t.Notes = []string{"paper shape: CAMP best; pooled-range good at small ratios, inferior at large ones"}
	}
	for _, ratio := range cfg.Ratios {
		capacity := capacityFor(ratio, unique)
		policies := []cache.Policy{
			cache.NewLRU(capacity),
			pooledByRange(capacity),
			core.NewCamp(capacity),
		}
		y := make([]float64, 0, len(policies))
		for _, p := range policies {
			res := mustRun(p, reqs)
			if missRate {
				y = append(y, res.MissRate())
			} else {
				y = append(y, res.CostMissRatio())
			}
		}
		t.Rows = append(t.Rows, Row{X: ratio, Y: y})
	}
	return t
}

// Fig8c reproduces Figure 8c: the number of LRU queues vs precision, for the
// equi-size/variable-cost trace against the {1,100,10K} trace. The
// continuous-cost trace has far more queues without rounding; with rounding
// the two converge.
func Fig8c(cfg Config) *Table {
	bg, bgUnique := cfg.bgTrace()
	eq, eqUnique := cfg.equiSizeTrace()
	ratio := 0.4
	if len(cfg.Ratios) > 0 {
		ratio = cfg.Ratios[len(cfg.Ratios)/2]
	}
	t := &Table{
		ID:     "fig8c",
		Title:  "Non-empty LRU queues vs precision: 3-cost trace vs continuous-cost trace",
		XLabel: "precision",
		Series: []string{"three-costs", "continuous-costs"},
		Notes:  []string{"paper shape: continuous costs need many more queues unrounded; counts converge as precision drops"},
	}
	for _, p := range cfg.Precisions {
		bgRes := mustRun(core.NewCamp(capacityFor(ratio, bgUnique), core.WithPrecision(p)), bg)
		eqRes := mustRun(core.NewCamp(capacityFor(ratio, eqUnique), core.WithPrecision(p)), eq)
		t.Rows = append(t.Rows, Row{
			X: float64(p),
			Y: []float64{float64(bgRes.QueueCount), float64(eqRes.QueueCount)},
		})
	}
	return t
}

// Fig5dPools supplements Figure 5d's discussion: per-cost-class miss rates
// under Pooled(cost), showing the cheap pool starving (~100% miss rate).
func Fig5dPools(cfg Config) *Table {
	reqs, unique := cfg.bgTrace()
	t := &Table{
		ID:     "fig5d-pools",
		Title:  "Pooled(cost): per-cost-class miss rate vs cache size ratio",
		XLabel: "ratio",
		Series: []string{"cost=1", "cost=100", "cost=10000"},
		Notes:  []string{"paper: even with a large cache the cheapest pool misses ~100%, the middle ~65%"},
	}
	groupBy := func(r trace.Request) string {
		switch {
		case r.Cost >= 10000:
			return "cost=10000"
		case r.Cost >= 100:
			return "cost=100"
		default:
			return "cost=1"
		}
	}
	for _, ratio := range cfg.Ratios {
		capacity := capacityFor(ratio, unique)
		res := mustRun(pooledByCost(capacity), reqs, sim.WithGroupBy(groupBy))
		row := Row{X: ratio}
		for _, g := range t.Series {
			gm := res.Groups[g]
			if gm == nil {
				row.Y = append(row.Y, 0)
				continue
			}
			row.Y = append(row.Y, gm.MissRate())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
