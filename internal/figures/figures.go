// Package figures regenerates every table and figure of the CAMP paper's
// evaluation (§2 Figure 4, §3 Figures 5-8, §4 Figure 9) as text tables.
// cmd/campsim prints them; the repository-root benchmarks log them.
//
// The workloads are scaled-down but shape-preserving versions of the
// paper's: the defaults replay 400K-request traces over 20K keys instead of
// 4M-request BG traces, which reproduces every qualitative trend in seconds
// on a laptop. Use Config.Scale (or campsim -scale) to grow them.
package figures

import (
	"fmt"
	"strconv"
	"strings"

	"camp/internal/cache"
	"camp/internal/core"
	"camp/internal/sim"
	"camp/internal/trace"
)

// Config controls workload sizes for all figures.
type Config struct {
	// Keys is the number of distinct keys per trace.
	Keys int
	// Requests is the trace length for single-trace figures.
	Requests int64
	// EvolvingTraces and EvolvingRequests control the §3.1 experiment:
	// EvolvingTraces back-to-back traces of EvolvingRequests rows each.
	EvolvingTraces   int
	EvolvingRequests int64
	// Seed makes every figure deterministic.
	Seed int64
	// Ratios is the cache-size-ratio sweep.
	Ratios []float64
	// Precisions is the precision sweep for Figures 5a/5b/8c; 0 is ∞.
	Precisions []uint
}

// Default returns the laptop-scale configuration.
func Default() Config {
	return Config{
		Keys:             20000,
		Requests:         400000,
		EvolvingTraces:   10,
		EvolvingRequests: 150000,
		Seed:             1,
		Ratios:           []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8},
		Precisions:       []uint{1, 2, 3, 4, 5, 6, 7, core.PrecisionInf},
	}
}

// Scale multiplies the workload sizes by f (0.1 for smoke tests, 10 for
// paper scale).
func (c Config) Scale(f float64) Config {
	c.Keys = int(float64(c.Keys) * f)
	if c.Keys < 100 {
		c.Keys = 100
	}
	c.Requests = int64(float64(c.Requests) * f)
	if c.Requests < 1000 {
		c.Requests = 1000
	}
	c.EvolvingRequests = int64(float64(c.EvolvingRequests) * f)
	if c.EvolvingRequests < 1000 {
		c.EvolvingRequests = 1000
	}
	return c
}

// Table is a printable result table for one figure.
type Table struct {
	// ID is the experiment id, e.g. "fig5c".
	ID string
	// Title describes what the paper's figure shows.
	Title string
	// XLabel names the first column.
	XLabel string
	// Series names the remaining columns.
	Series []string
	// Rows holds one x value and one y value per series.
	Rows []Row
	// Notes carries commentary (deviations, reading guidance).
	Notes []string
}

// Row is one table line: an x value and one y value per series.
type Row struct {
	X float64
	Y []float64
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	cols := append([]string{t.XLabel}, t.Series...)
	widths := make([]int, len(cols))
	cells := make([][]string, 0, len(t.Rows)+1)
	cells = append(cells, cols)
	for _, r := range t.Rows {
		row := make([]string, 0, len(cols))
		row = append(row, trimFloat(r.X))
		for _, y := range r.Y {
			row = append(row, trimFloat(y))
		}
		cells = append(cells, row)
	}
	for _, row := range cells {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func trimFloat(f float64) string {
	if f == float64(int64(f)) && f < 1e15 && f > -1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', 5, 64)
}

// bgTrace materializes the §3 default trace once.
func (c Config) bgTrace() ([]trace.Request, int64) {
	reqs, err := trace.Materialize(trace.NewBGTrace(c.Seed, c.Keys, c.Requests))
	if err != nil {
		panic("figures: generator cannot fail: " + err.Error())
	}
	return reqs, trace.UniqueBytes(reqs)
}

func (c Config) variableSizeTrace() ([]trace.Request, int64) {
	reqs, err := trace.Materialize(trace.NewVariableSizeTrace(c.Seed, c.Keys, c.Requests))
	if err != nil {
		panic("figures: generator cannot fail: " + err.Error())
	}
	return reqs, trace.UniqueBytes(reqs)
}

func (c Config) equiSizeTrace() ([]trace.Request, int64) {
	reqs, err := trace.Materialize(trace.NewEquiSizeTrace(c.Seed, c.Keys, c.Requests))
	if err != nil {
		panic("figures: generator cannot fail: " + err.Error())
	}
	return reqs, trace.UniqueBytes(reqs)
}

func (c Config) evolvingTrace() ([]trace.Request, int64) {
	keysEach := c.Keys / c.EvolvingTraces
	if keysEach < 10 {
		keysEach = 10
	}
	srcs := trace.NewEvolvingTraces(c.Seed, c.EvolvingTraces, keysEach, c.EvolvingRequests)
	reqs, err := trace.Materialize(trace.Concat(srcs...))
	if err != nil {
		panic("figures: generator cannot fail: " + err.Error())
	}
	return reqs, trace.UniqueBytes(reqs)
}

// mustRun replays reqs against p.
func mustRun(p cache.Policy, reqs []trace.Request, opts ...sim.Option) *sim.Result {
	res, err := sim.Run(p, trace.NewSliceSource(reqs), opts...)
	if err != nil {
		panic("figures: slice source cannot fail: " + err.Error())
	}
	return res
}

// capacityFor converts a cache-size ratio into bytes.
func capacityFor(ratio float64, uniqueBytes int64) int64 {
	cap := int64(ratio * float64(uniqueBytes))
	if cap < 1 {
		cap = 1
	}
	return cap
}

// pooledByCost builds the paper's cost-proportional pooled LRU for the
// {1,100,10K} trace.
func pooledByCost(capacity int64) cache.Policy {
	p, err := cache.NewPooledByCostValues(capacity, []int64{1, 100, 10000}, false)
	if err != nil {
		panic("figures: static pool config cannot fail: " + err.Error())
	}
	return p
}

// pooledUniform builds the uniform-split pooled LRU.
func pooledUniform(capacity int64) cache.Policy {
	p, err := cache.NewPooledByCostValues(capacity, []int64{1, 100, 10000}, true)
	if err != nil {
		panic("figures: static pool config cannot fail: " + err.Error())
	}
	return p
}

// pooledByRange builds the §3.2 range pools for continuous costs.
func pooledByRange(capacity int64) cache.Policy {
	p, err := cache.NewPooledByRanges(capacity, []int64{1, 100, 10000})
	if err != nil {
		panic("figures: static pool config cannot fail: " + err.Error())
	}
	return p
}
