package figures

import (
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests (~1s total).
func tiny() Config {
	return Config{
		Keys:             800,
		Requests:         40000,
		EvolvingTraces:   4,
		EvolvingRequests: 15000,
		Seed:             1,
		Ratios:           []float64{0.1, 0.3, 0.6},
		Precisions:       []uint{1, 3, 5, 0},
	}
}

func checkTable(t *testing.T, tb *Table, wantRows, wantSeries int) {
	t.Helper()
	if tb.ID == "" || tb.Title == "" || tb.XLabel == "" {
		t.Fatalf("table metadata incomplete: %+v", tb)
	}
	if len(tb.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", tb.ID, len(tb.Series), wantSeries)
	}
	if len(tb.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d", tb.ID, len(tb.Rows), wantRows)
	}
	for i, r := range tb.Rows {
		if len(r.Y) != wantSeries {
			t.Fatalf("%s row %d: %d values, want %d", tb.ID, i, len(r.Y), wantSeries)
		}
	}
	out := tb.Format()
	if !strings.Contains(out, tb.ID) || !strings.Contains(out, tb.XLabel) {
		t.Fatalf("%s: Format output missing headers:\n%s", tb.ID, out)
	}
}

func ratiosInUnitRange(t *testing.T, tb *Table) {
	t.Helper()
	for _, r := range tb.Rows {
		for i, y := range r.Y {
			if y < 0 || y > 1 {
				t.Fatalf("%s: series %s at x=%v out of [0,1]: %v", tb.ID, tb.Series[i], r.X, y)
			}
		}
	}
}

func TestFig4(t *testing.T) {
	tb := Fig4(tiny())
	checkTable(t, tb, 3, 3)
	for _, r := range tb.Rows {
		gdsTextbook, camp := r.Y[0], r.Y[2]
		if camp >= gdsTextbook {
			t.Fatalf("ratio %v: CAMP visits %v not below GDS %v", r.X, camp, gdsTextbook)
		}
	}
	// The textbook GDS series grows with ratio; CAMP's shrinks.
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if last.Y[0] <= first.Y[0] {
		t.Errorf("textbook GDS visits should grow with cache ratio: %v -> %v", first.Y[0], last.Y[0])
	}
	if last.Y[2] >= first.Y[2] {
		t.Errorf("CAMP visits should shrink with cache ratio: %v -> %v", first.Y[2], last.Y[2])
	}
}

func TestFig5a(t *testing.T) {
	tb := Fig5a(tiny())
	checkTable(t, tb, 4, 3)
	ratiosInUnitRange(t, tb)
	// Flatness: max-min across precisions small for each ratio.
	for s := 0; s < 3; s++ {
		min, max := 1.0, 0.0
		for _, r := range tb.Rows {
			if r.Y[s] < min {
				min = r.Y[s]
			}
			if r.Y[s] > max {
				max = r.Y[s]
			}
		}
		if max-min > 0.08 {
			t.Errorf("series %d: cost-miss varies too much across precisions: [%v, %v]", s, min, max)
		}
	}
}

func TestFig5b(t *testing.T) {
	tb := Fig5b(tiny())
	checkTable(t, tb, 4, 3)
	// The paper reports at least five non-empty queues even at the very
	// lowest precision; at this tiny test scale small resident sets can
	// leave a bucket empty, so require >= 3 here (the >= 5 property is
	// checked at default scale by cmd/campsim / EXPERIMENTS.md).
	for _, r := range tb.Rows {
		for i, y := range r.Y {
			if y < 3 {
				t.Errorf("p=%v series %d: %v queues, want >= 3", r.X, i, y)
			}
		}
	}
}

func TestFig5cAnd5d(t *testing.T) {
	c := Fig5c(tiny())
	checkTable(t, c, 3, 4)
	ratiosInUnitRange(t, c)
	d := Fig5d(tiny())
	checkTable(t, d, 3, 4)
	ratiosInUnitRange(t, d)
	// CAMP (last series) must beat LRU (first) on cost-miss at every
	// ratio, and pooled-uniform should track LRU closely.
	for _, r := range c.Rows {
		if r.Y[3] >= r.Y[0] {
			t.Errorf("fig5c ratio %v: CAMP %.4f not below LRU %.4f", r.X, r.Y[3], r.Y[0])
		}
		diff := r.Y[1] - r.Y[0]
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.12 {
			t.Errorf("fig5c ratio %v: pooled-uniform %.4f far from LRU %.4f", r.X, r.Y[1], r.Y[0])
		}
	}
	// Pooled(cost) pays with a worse miss rate than LRU at least at the
	// largest cache (its cheap pool starves).
	last := d.Rows[len(d.Rows)-1]
	if last.Y[2] <= last.Y[0] {
		t.Errorf("fig5d: pooled-cost miss rate %.4f should exceed LRU %.4f at large caches", last.Y[2], last.Y[0])
	}
}

func TestFig5dPools(t *testing.T) {
	tb := Fig5dPools(tiny())
	checkTable(t, tb, 3, 3)
	ratiosInUnitRange(t, tb)
	// The cheapest pool starves even at the largest ratio.
	last := tb.Rows[len(tb.Rows)-1]
	if last.Y[0] < 0.9 {
		t.Errorf("cheap pool miss rate %.3f, want ~1.0", last.Y[0])
	}
	// The expensive pool is comfortable at the largest ratio.
	if last.Y[2] > 0.5 {
		t.Errorf("expensive pool miss rate %.3f, want low", last.Y[2])
	}
}

func TestFig6ab(t *testing.T) {
	a := Fig6a(tiny())
	checkTable(t, a, 3, 3)
	ratiosInUnitRange(t, a)
	b := Fig6b(tiny())
	checkTable(t, b, 3, 3)
	ratiosInUnitRange(t, b)
	// CAMP still wins on cost under the evolving workload where capacity
	// is actually contended (the smallest ratio); at large ratios each
	// trace's working set fits and every policy converges to ~0 misses.
	first := a.Rows[0]
	if first.Y[2] >= first.Y[0] {
		t.Errorf("fig6a ratio %v: CAMP %.4f not below LRU %.4f", first.X, first.Y[2], first.Y[0])
	}
	for _, r := range a.Rows[1:] {
		if r.Y[2] > r.Y[0]+0.01 {
			t.Errorf("fig6a ratio %v: CAMP %.4f far above LRU %.4f", r.X, r.Y[2], r.Y[0])
		}
	}
}

func TestFig6cd(t *testing.T) {
	c := Fig6c(tiny())
	if len(c.Rows) == 0 {
		t.Fatal("fig6c produced no samples")
	}
	checkTable(t, c, len(c.Rows), 3)
	ratiosInUnitRange(t, c)
	// All policies eventually drain TF1 to (near) zero at ratio 0.25.
	last := c.Rows[len(c.Rows)-1]
	for i, name := range c.Series {
		if last.Y[i] > 0.05 {
			t.Errorf("fig6c: %s still holds %.3f of cache for TF1 at the end", name, last.Y[i])
		}
	}
	// LRU drains fastest: find first sample index where each series
	// drops below 10%.
	firstBelow := func(s int) int {
		for i, r := range c.Rows {
			if r.Y[s] < 0.10 {
				return i
			}
		}
		return len(c.Rows)
	}
	if firstBelow(0) > firstBelow(2) {
		t.Errorf("fig6c: LRU should drain TF1 no later than CAMP (lru=%d camp=%d)", firstBelow(0), firstBelow(2))
	}
	d := Fig6d(tiny())
	checkTable(t, d, len(d.Rows), 3)
	ratiosInUnitRange(t, d)
}

func TestFig7(t *testing.T) {
	tb := Fig7(tiny())
	checkTable(t, tb, 3, 2)
	ratiosInUnitRange(t, tb)
	for _, r := range tb.Rows {
		if r.Y[1] >= r.Y[0] {
			t.Errorf("fig7 ratio %v: CAMP miss rate %.4f not below LRU %.4f", r.X, r.Y[1], r.Y[0])
		}
	}
}

func TestFig8(t *testing.T) {
	a := Fig8a(tiny())
	checkTable(t, a, 3, 3)
	ratiosInUnitRange(t, a)
	for _, r := range a.Rows {
		if r.Y[2] >= r.Y[0] {
			t.Errorf("fig8a ratio %v: CAMP cost-miss %.4f not below LRU %.4f", r.X, r.Y[2], r.Y[0])
		}
	}
	b := Fig8b(tiny())
	checkTable(t, b, 3, 3)
	ratiosInUnitRange(t, b)

	c := Fig8c(tiny())
	checkTable(t, c, 4, 2)
	// Without rounding (precision 0 row), the continuous-cost trace has
	// far more queues than the three-cost trace.
	var infRow *Row
	for i := range c.Rows {
		if c.Rows[i].X == 0 {
			infRow = &c.Rows[i]
		}
	}
	if infRow == nil {
		t.Fatal("fig8c missing infinite-precision row")
	}
	if infRow.Y[1] < 1.3*infRow.Y[0] {
		t.Errorf("fig8c: continuous costs should need more queues unrounded: %v vs %v", infRow.Y[1], infRow.Y[0])
	}
	// At p=1 the two series come close together, far below the unrounded
	// counts.
	p1 := c.Rows[0]
	if p1.X != 1 {
		t.Fatalf("first row should be precision 1, got %v", p1.X)
	}
	if p1.Y[1] > 3*p1.Y[0]+10 {
		t.Errorf("fig8c: queue counts should converge at low precision: %v vs %v", p1.Y[1], p1.Y[0])
	}
	if p1.Y[1] >= infRow.Y[1]/4 {
		t.Errorf("fig8c: rounding should slash the continuous trace's queues: p1=%v inf=%v", p1.Y[1], infRow.Y[1])
	}
}

func TestConfigScale(t *testing.T) {
	c := Default().Scale(0.5)
	if c.Keys != 10000 || c.Requests != 200000 {
		t.Fatalf("Scale(0.5) = %+v", c)
	}
	small := Default().Scale(0.000001)
	if small.Keys < 100 || small.Requests < 1000 {
		t.Fatalf("Scale floor broken: %+v", small)
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{in: 3, want: "3"},
		{in: 0.5, want: "0.5"},
		{in: 0.123456789, want: "0.12346"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.in); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
