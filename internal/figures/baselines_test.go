package figures

import "testing"

func TestBaselines(t *testing.T) {
	tb := Baselines(tiny())
	checkTable(t, tb, 3, 8)
	ratiosInUnitRange(t, tb)
	idx := map[string]int{}
	for i, s := range tb.Series {
		idx[s] = i
	}
	for _, r := range tb.Rows {
		lru := r.Y[idx["lru"]]
		camp := r.Y[idx["camp(p=5)"]]
		gds := r.Y[idx["gds"]]
		wheel := r.Y[idx["gdwheel"]]
		// The cost-aware family beats LRU at every ratio.
		if camp >= lru || gds >= lru || wheel >= lru {
			t.Errorf("ratio %v: cost-aware policies should beat LRU: camp=%.4f gds=%.4f wheel=%.4f lru=%.4f",
				r.X, camp, gds, wheel, lru)
		}
		// CAMP tracks GDS closely.
		diff := camp - gds
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05 {
			t.Errorf("ratio %v: CAMP %.4f far from GDS %.4f", r.X, camp, gds)
		}
		// The cost-oblivious adaptives stay near LRU, far from CAMP.
		for _, name := range []string{"arc", "2q", "lfu"} {
			v := r.Y[idx[name]]
			if v < (camp+lru)/2 && lru > 0.3 {
				t.Errorf("ratio %v: %s=%.4f suspiciously close to CAMP — cost-obliviousness check failed",
					r.X, name, v)
			}
		}
	}
}

func TestRDBMS(t *testing.T) {
	tb := RDBMS(tiny())
	checkTable(t, tb, 3, 3)
	ratiosInUnitRange(t, tb)
	for _, r := range tb.Rows {
		lru, camp, gds := r.Y[0], r.Y[1], r.Y[2]
		// CAMP should not lose to LRU under measured-latency costs.
		if camp > lru+0.01 {
			t.Errorf("ratio %v: CAMP %.4f above LRU %.4f", r.X, camp, lru)
		}
		diff := camp - gds
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05 {
			t.Errorf("ratio %v: CAMP %.4f far from GDS %.4f", r.X, camp, gds)
		}
	}
}
