package figures

import "testing"

// TestFig9All exercises the full client/server replay path at reduced scale
// and checks the paper's qualitative claims.
func TestFig9All(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping network replay in -short mode")
	}
	cfg := tiny()
	cfg.Requests = 24000 // fig9 replays Requests/4 rows over TCP
	tables := Fig9All(cfg)
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(tables))
	}
	costMiss, runtime, missRate := tables[0], tables[1], tables[2]
	checkTable(t, costMiss, len(Fig9Ratios), 2)
	checkTable(t, runtime, len(Fig9Ratios), 2)
	checkTable(t, missRate, len(Fig9Ratios), 2)
	ratiosInUnitRange(t, costMiss)
	ratiosInUnitRange(t, missRate)

	// 9a: CAMP's cost-miss ratio beats LRU's at the smallest cache sizes.
	first := costMiss.Rows[0]
	if first.Y[1] >= first.Y[0] {
		t.Errorf("fig9a ratio %v: CAMP %.4f not below LRU %.4f", first.X, first.Y[1], first.Y[0])
	}
	// 9b: CAMP is in the same ballpark as LRU (within 2x) — "as fast as
	// LRU" is the paper's claim; loopback timing is noisy, so be lenient.
	for _, r := range runtime.Rows {
		if r.Y[1] > 2.5*r.Y[0]+50 {
			t.Errorf("fig9b ratio %v: CAMP runtime %vms far above LRU %vms", r.X, r.Y[1], r.Y[0])
		}
	}
	// 9c: both policies' miss rates fall as the cache grows.
	firstMR, lastMR := missRate.Rows[0], missRate.Rows[len(missRate.Rows)-1]
	for i, name := range missRate.Series {
		if lastMR.Y[i] >= firstMR.Y[i] {
			t.Errorf("fig9c: %s miss rate should fall with cache size: %.4f -> %.4f",
				name, firstMR.Y[i], lastMR.Y[i])
		}
	}
}
