package figures

import (
	"fmt"

	"camp/internal/cache"
	"camp/internal/core"
)

// Fig4 reproduces Figure 4: the number of visited heap nodes as a function
// of the cache size ratio, for GDS and CAMP. Two GDS variants are reported:
// the textbook delete path (bubble-to-root + pop), whose visit count grows
// with cache size exactly as in the paper, and this repository's optimized
// replace-with-last delete. CAMP's counts are orders of magnitude lower and
// decrease with cache size.
func Fig4(cfg Config) *Table {
	reqs, unique := cfg.bgTrace()
	t := &Table{
		ID:     "fig4",
		Title:  "Visited heap nodes per 1K requests vs cache size ratio",
		XLabel: "ratio",
		Series: []string{"gds-textbook", "gds-optimized", "camp(p=5)"},
		Notes: []string{
			"paper shape: GDS grows with cache size, CAMP decreases and is far below",
			"gds-optimized shows the replace-with-last delete ablation (flat-to-falling curve)",
		},
	}
	perK := func(visits uint64) float64 {
		return float64(visits) / float64(len(reqs)) * 1000
	}
	for _, ratio := range cfg.Ratios {
		capacity := capacityFor(ratio, unique)
		gdsT := mustRun(core.NewGDS(capacity, core.WithTextbookDelete()), reqs)
		gdsO := mustRun(core.NewGDS(capacity), reqs)
		camp := mustRun(core.NewCamp(capacity), reqs)
		t.Rows = append(t.Rows, Row{
			X: ratio,
			Y: []float64{perK(gdsT.HeapVisits), perK(gdsO.HeapVisits), perK(camp.HeapVisits)},
		})
	}
	return t
}

// Fig5a reproduces Figure 5a: CAMP's cost-miss ratio as a function of the
// precision, for three cache sizes; the last precision column (p=0) is the
// "∞" series, i.e. GDS behavior over integerized ratios.
func Fig5a(cfg Config) *Table {
	reqs, unique := cfg.bgTrace()
	ratios := pickThree(cfg.Ratios)
	t := &Table{
		ID:     "fig5a",
		Title:  "Cost-miss ratio vs precision (CAMP; precision 0 = infinite)",
		XLabel: "precision",
		Notes:  []string{"paper shape: nearly flat in precision; matches the infinite-precision (GDS) row"},
	}
	for _, r := range ratios {
		t.Series = append(t.Series, fmt.Sprintf("ratio=%.2f", r))
	}
	for _, p := range cfg.Precisions {
		row := Row{X: float64(p)}
		for _, r := range ratios {
			capacity := capacityFor(r, unique)
			res := mustRun(core.NewCamp(capacity, core.WithPrecision(p)), reqs)
			row.Y = append(row.Y, res.CostMissRatio())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5b reproduces Figure 5b: the number of non-empty LRU queues at the end
// of the trace, as a function of precision.
func Fig5b(cfg Config) *Table {
	reqs, unique := cfg.bgTrace()
	ratios := pickThree(cfg.Ratios)
	t := &Table{
		ID:     "fig5b",
		Title:  "Non-empty LRU queues vs precision (CAMP; precision 0 = infinite)",
		XLabel: "precision",
		Notes:  []string{"paper shape: grows with precision then saturates; >= 5 queues even at p=1"},
	}
	for _, r := range ratios {
		t.Series = append(t.Series, fmt.Sprintf("ratio=%.2f", r))
	}
	for _, p := range cfg.Precisions {
		row := Row{X: float64(p)}
		for _, r := range ratios {
			capacity := capacityFor(r, unique)
			res := mustRun(core.NewCamp(capacity, core.WithPrecision(p)), reqs)
			row.Y = append(row.Y, float64(res.QueueCount))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5c reproduces Figure 5c: cost-miss ratio vs cache size ratio for LRU,
// Pooled LRU (uniform and cost-proportional splits) and CAMP(p=5).
func Fig5c(cfg Config) *Table {
	return fig5cd(cfg, "fig5c", "Cost-miss ratio vs cache size ratio", false)
}

// Fig5d reproduces Figure 5d: miss rate vs cache size ratio for the same
// policies; Pooled(cost) buys its cost-miss wins with a far worse miss rate.
func Fig5d(cfg Config) *Table {
	return fig5cd(cfg, "fig5d", "Miss rate vs cache size ratio", true)
}

func fig5cd(cfg Config, id, title string, missRate bool) *Table {
	reqs, unique := cfg.bgTrace()
	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "ratio",
		Series: []string{"lru", "pooled-uniform", "pooled-cost", "camp(p=5)"},
	}
	if missRate {
		t.Notes = []string{"paper shape: pooled-cost has a much worse miss rate than its cost-miss ratio suggests"}
	} else {
		t.Notes = []string{"paper shape: CAMP lowest; pooled-cost between CAMP and LRU, approaching CAMP at large caches"}
	}
	for _, ratio := range cfg.Ratios {
		capacity := capacityFor(ratio, unique)
		policies := []cache.Policy{
			cache.NewLRU(capacity),
			pooledUniform(capacity),
			pooledByCost(capacity),
			core.NewCamp(capacity),
		}
		y := make([]float64, 0, len(policies))
		for _, p := range policies {
			res := mustRun(p, reqs)
			if missRate {
				y = append(y, res.MissRate())
			} else {
				y = append(y, res.CostMissRatio())
			}
		}
		t.Rows = append(t.Rows, Row{X: ratio, Y: y})
	}
	return t
}

func pickThree(ratios []float64) []float64 {
	if len(ratios) <= 3 {
		return ratios
	}
	return []float64{ratios[0], ratios[len(ratios)/2], ratios[len(ratios)-1]}
}
