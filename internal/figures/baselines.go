package figures

import (
	"camp/internal/cache"
	"camp/internal/core"
	"camp/internal/trace"
)

// Baselines extends the paper's evaluation with the §5 related-work
// policies (ARC, 2Q, LFU, GD-Wheel) and the §6 admission-control extension,
// all replaying the default BG trace. It answers the natural reviewer
// question the paper leaves open: how close do cost-oblivious adaptive
// policies get, and how much does GD-Wheel's priority rounding give up
// versus CAMP's ratio rounding?
func Baselines(cfg Config) *Table {
	reqs, unique := cfg.bgTrace()
	t := &Table{
		ID:     "ext-baselines",
		Title:  "Extended baselines: cost-miss ratio vs cache size ratio",
		XLabel: "ratio",
		Series: []string{"lru", "arc", "2q", "lfu", "gdwheel", "camp(p=5)", "camp+admit", "gds"},
		Notes: []string{
			"arc/2q/lfu adapt recency-frequency but stay cost-oblivious: they track lru, not camp",
			"gdwheel and camp both approximate gds; camp+admit adds the §6 admission filter",
		},
	}
	mk := []func(int64) cache.Policy{
		func(c int64) cache.Policy { return cache.NewLRU(c) },
		func(c int64) cache.Policy { return cache.NewARC(c) },
		func(c int64) cache.Policy { return cache.NewTwoQ(c) },
		func(c int64) cache.Policy { return cache.NewLFU(c) },
		func(c int64) cache.Policy { return cache.NewGDWheel(c) },
		func(c int64) cache.Policy { return core.NewCamp(c) },
		func(c int64) cache.Policy { return cache.NewAdmission(core.NewCamp(c)) },
		func(c int64) cache.Policy { return core.NewGDS(c) },
	}
	for _, ratio := range cfg.Ratios {
		capacity := capacityFor(ratio, unique)
		row := Row{X: ratio}
		for _, make := range mk {
			res := mustRun(make(capacity), reqs)
			row.Y = append(row.Y, res.CostMissRatio())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RDBMS covers the paper's other cost source: "Cost is either the time
// required to compute the key-value pair by issuing queries to the RDBMS or
// a synthetic value" (§3). Here each key's cost is a measured-latency model
// (per-key base query time plus a size-proportional transfer term), the
// regime the IQ framework produces in deployment.
func RDBMS(cfg Config) *Table {
	gen := trace.NewGenerator(trace.Config{
		Keys:     cfg.Keys,
		Requests: cfg.Requests,
		Seed:     cfg.Seed,
		Cost:     trace.CostRDBMS(2000, 400), // ~1-3ms queries + transfer
	})
	reqs, err := trace.Materialize(gen)
	if err != nil {
		panic("figures: generator cannot fail: " + err.Error())
	}
	unique := trace.UniqueBytes(reqs)
	t := &Table{
		ID:     "ext-rdbms",
		Title:  "RDBMS-latency costs: cost-miss ratio vs cache size ratio",
		XLabel: "ratio",
		Series: []string{"lru", "camp(p=5)", "gds"},
		Notes: []string{
			"measured-latency costs are far less spread than {1,100,10K}, so CAMP's win over LRU narrows but persists",
		},
	}
	for _, ratio := range cfg.Ratios {
		capacity := capacityFor(ratio, unique)
		policies := []cache.Policy{
			cache.NewLRU(capacity),
			core.NewCamp(capacity),
			core.NewGDS(capacity),
		}
		row := Row{X: ratio}
		for _, p := range policies {
			res := mustRun(p, reqs)
			row.Y = append(row.Y, res.CostMissRatio())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
