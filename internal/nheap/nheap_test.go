package nheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intHeap(arity int) *Heap[int] {
	return New(func(a, b int) bool { return a < b }, WithArity[int](arity))
}

func TestPushPopSorted(t *testing.T) {
	for _, arity := range []int{2, 3, 4, 8} {
		h := intHeap(arity)
		in := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0, 5, 3}
		for _, v := range in {
			h.Push(v)
			if bad := h.Verify(); bad != -1 {
				t.Fatalf("arity %d: invariant violated at %d after push", arity, bad)
			}
		}
		want := append([]int(nil), in...)
		sort.Ints(want)
		for i, w := range want {
			if top, ok := h.Peek(); !ok || top != w {
				t.Fatalf("arity %d: Peek #%d = %d, want %d", arity, i, top, w)
			}
			if got := h.Pop(); got != w {
				t.Fatalf("arity %d: Pop #%d = %d, want %d", arity, i, got, w)
			}
		}
		if h.Len() != 0 {
			t.Fatalf("arity %d: Len = %d after draining", arity, h.Len())
		}
	}
}

func TestPeekEmpty(t *testing.T) {
	h := intHeap(8)
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap should report !ok")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	intHeap(8).Pop()
}

func TestBadArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	intHeap(1)
}

// tracked is a heap item that records its own heap slot.
type tracked struct {
	key int
	idx int
}

func trackedHeap(arity int) *Heap[*tracked] {
	return New(
		func(a, b *tracked) bool { return a.key < b.key },
		WithArity[*tracked](arity),
		WithIndexTracking(func(it *tracked, i int) { it.idx = i }),
	)
}

func TestIndexTracking(t *testing.T) {
	h := trackedHeap(4)
	items := make([]*tracked, 50)
	rng := rand.New(rand.NewSource(7))
	for i := range items {
		items[i] = &tracked{key: rng.Intn(100), idx: -1}
		h.Push(items[i])
	}
	checkIdx := func() {
		t.Helper()
		inHeap := 0
		for _, it := range items {
			if it.idx == -1 {
				continue
			}
			inHeap++
			if it.idx < 0 || it.idx >= h.Len() || h.Items()[it.idx] != it {
				t.Fatalf("index tracking broken: item key=%d claims slot %d", it.key, it.idx)
			}
		}
		if inHeap != h.Len() {
			t.Fatalf("tracked %d in-heap items, heap has %d", inHeap, h.Len())
		}
	}
	checkIdx()

	// Mutate keys and Fix.
	for i := 0; i < 200; i++ {
		it := items[rng.Intn(len(items))]
		if it.idx == -1 {
			continue
		}
		it.key = rng.Intn(100)
		h.Fix(it.idx)
		if bad := h.Verify(); bad != -1 {
			t.Fatalf("invariant violated at %d after Fix", bad)
		}
		checkIdx()
	}

	// Remove random items.
	for _, it := range items {
		if it.idx == -1 {
			continue
		}
		h.Remove(it.idx)
		if it.idx != -1 {
			t.Fatalf("removed item still has idx %d", it.idx)
		}
		if bad := h.Verify(); bad != -1 {
			t.Fatalf("invariant violated at %d after Remove", bad)
		}
		checkIdx()
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty after removing everything: %d", h.Len())
	}
}

func TestRemoveViaRoot(t *testing.T) {
	for _, arity := range []int{2, 8} {
		h := trackedHeap(arity)
		items := make([]*tracked, 40)
		rng := rand.New(rand.NewSource(13))
		for i := range items {
			items[i] = &tracked{key: rng.Intn(100), idx: -1}
			h.Push(items[i])
		}
		// Remove every item via the textbook path, in random order.
		for _, it := range items {
			if it.idx == -1 {
				t.Fatal("item lost its slot")
			}
			got := h.RemoveViaRoot(it.idx)
			if got != it {
				t.Fatalf("RemoveViaRoot returned %+v, want %+v", got, it)
			}
			if it.idx != -1 {
				t.Fatalf("removed item still has idx %d", it.idx)
			}
			if bad := h.Verify(); bad != -1 {
				t.Fatalf("invariant violated at %d", bad)
			}
		}
		if h.Len() != 0 {
			t.Fatalf("heap not empty: %d", h.Len())
		}
	}
}

func TestRemoveViaRootCostsMoreVisits(t *testing.T) {
	// The ablation's premise: textbook deletion visits more nodes than
	// replace-with-last for deep items.
	build := func() *Heap[int] {
		h := intHeap(8)
		for i := 0; i < 4096; i++ {
			h.Push(i)
		}
		h.ResetVisits()
		return h
	}
	a := build()
	for i := 0; i < 500; i++ {
		a.Remove(a.Len() - 1) // leaf-ish removals
	}
	cheap := a.Visits()
	b := build()
	for i := 0; i < 500; i++ {
		b.RemoveViaRoot(b.Len() - 1)
	}
	costly := b.Visits()
	if costly <= cheap {
		t.Fatalf("RemoveViaRoot visits (%d) should exceed Remove visits (%d)", costly, cheap)
	}
}

func TestRemoveViaRootOutOfRangePanics(t *testing.T) {
	h := intHeap(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.RemoveViaRoot(0)
}

func TestRemoveOutOfRangePanics(t *testing.T) {
	h := intHeap(8)
	h.Push(1)
	for _, i := range []int{-1, 1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Remove(%d): expected panic", i)
				}
			}()
			h.Remove(i)
		}()
	}
}

func TestFixOutOfRangePanics(t *testing.T) {
	h := intHeap(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Fix(0)
}

func TestVisitsInstrumentation(t *testing.T) {
	h := intHeap(8)
	if h.Visits() != 0 {
		t.Fatal("fresh heap should have zero visits")
	}
	for i := 0; i < 100; i++ {
		h.Push(i)
	}
	pushVisits := h.Visits()
	if pushVisits == 0 {
		t.Fatal("pushes should record visits")
	}
	h.ResetVisits()
	if h.Visits() != 0 {
		t.Fatal("ResetVisits should zero the counter")
	}
	h.Pop()
	if h.Visits() == 0 {
		t.Fatal("pops should record visits")
	}
}

// TestVisitsScaleWithDepth checks the motivation for Figure 4: visiting cost
// grows with heap size, so a heap over thousands of items records far more
// visits per operation than a heap over a handful of queues.
func TestVisitsScaleWithDepth(t *testing.T) {
	perOp := func(n int) float64 {
		h := intHeap(8)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < n; i++ {
			h.Push(rng.Int())
		}
		h.ResetVisits()
		const ops = 1000
		for i := 0; i < ops; i++ {
			h.Pop()
			h.Push(rng.Int())
		}
		return float64(h.Visits()) / ops
	}
	small, large := perOp(16), perOp(1<<16)
	if large <= small {
		t.Fatalf("expected more visits/op on large heap: small=%.1f large=%.1f", small, large)
	}
}

func TestQuickHeapSort(t *testing.T) {
	f := func(xs []int16) bool {
		h := intHeap(8)
		for _, x := range xs {
			h.Push(int(x))
		}
		want := make([]int, len(xs))
		for i, x := range xs {
			want[i] = int(x)
		}
		sort.Ints(want)
		for _, w := range want {
			if h.Pop() != w {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomOps runs a random sequence of push/pop/fix/remove against a
// sorted-slice model.
func TestQuickRandomOps(t *testing.T) {
	for _, arity := range []int{2, 8} {
		rng := rand.New(rand.NewSource(99))
		h := trackedHeap(arity)
		var live []*tracked
		for op := 0; op < 5000; op++ {
			switch r := rng.Intn(10); {
			case r < 4:
				it := &tracked{key: rng.Intn(1000), idx: -1}
				h.Push(it)
				live = append(live, it)
			case r < 6 && len(live) > 0:
				got := h.Pop()
				min := live[0]
				for _, it := range live {
					if it.key < min.key {
						min = it
					}
				}
				if got.key != min.key {
					t.Fatalf("arity %d: Pop key %d, want %d", arity, got.key, min.key)
				}
				live = removeItem(live, got)
			case r < 8 && len(live) > 0:
				it := live[rng.Intn(len(live))]
				it.key = rng.Intn(1000)
				h.Fix(it.idx)
			case len(live) > 0:
				it := live[rng.Intn(len(live))]
				h.Remove(it.idx)
				live = removeItem(live, it)
			}
			if bad := h.Verify(); bad != -1 {
				t.Fatalf("arity %d: invariant broken at %d", arity, bad)
			}
			if h.Len() != len(live) {
				t.Fatalf("arity %d: len %d, model %d", arity, h.Len(), len(live))
			}
		}
	}
}

func removeItem(s []*tracked, it *tracked) []*tracked {
	for i, x := range s {
		if x == it {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
