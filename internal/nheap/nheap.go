// Package nheap implements a d-ary implicit min-heap with position tracking
// and visit instrumentation.
//
// The CAMP paper (§2) uses an 8-ary implicit heap, following Larkin, Sen and
// Tarjan's "A Back-to-Basics Empirical Study of Priority Queues" (ALENEX
// 2014): a wide, array-backed heap has shallow depth and excellent locality.
// The heap records how many nodes each operation touches; this "visited heap
// nodes" counter is the metric reported in Figure 4 of the paper for both
// GDS (one heap node per resident item) and CAMP (one heap node per
// non-empty LRU queue).
package nheap

// DefaultArity is the branching factor used by the paper's implementation.
const DefaultArity = 8

// Heap is a d-ary implicit min-heap. The zero value is not usable; construct
// heaps with New.
type Heap[T any] struct {
	arity  int
	less   func(a, b T) bool
	setIdx func(item T, idx int)
	items  []T
	visits uint64
}

// Option configures a Heap.
type Option[T any] func(*Heap[T])

// WithArity sets the branching factor d (d >= 2). The default is 8.
func WithArity[T any](d int) Option[T] {
	return func(h *Heap[T]) {
		if d < 2 {
			panic("nheap: arity must be >= 2")
		}
		h.arity = d
	}
}

// WithIndexTracking registers a callback invoked whenever an item's slot in
// the heap array changes, and with index -1 when the item leaves the heap.
// It enables O(1) lookup of an item's position for Fix and Remove.
func WithIndexTracking[T any](setIdx func(item T, idx int)) Option[T] {
	return func(h *Heap[T]) { h.setIdx = setIdx }
}

// New returns an empty min-heap ordered by less.
func New[T any](less func(a, b T) bool, opts ...Option[T]) *Heap[T] {
	h := &Heap[T]{arity: DefaultArity, less: less}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Len returns the number of items in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Visits returns the cumulative number of heap nodes visited by all
// operations since the last ResetVisits. A node is "visited" each time an
// operation reads it for a comparison or moves it.
func (h *Heap[T]) Visits() uint64 { return h.visits }

// ResetVisits zeroes the visit counter.
func (h *Heap[T]) ResetVisits() { h.visits = 0 }

// Peek returns the minimum item without removing it.
func (h *Heap[T]) Peek() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	return h.items[0], true
}

// Push inserts x and returns the slot where it settled.
func (h *Heap[T]) Push(x T) int {
	h.items = append(h.items, x)
	i := len(h.items) - 1
	h.place(x, i)
	h.visits++ // the new leaf itself
	return h.up(i)
}

// Pop removes and returns the minimum item. It panics on an empty heap.
func (h *Heap[T]) Pop() T {
	n := len(h.items)
	if n == 0 {
		panic("nheap: Pop from empty heap")
	}
	return h.Remove(0)
}

// Remove deletes and returns the item at slot i.
func (h *Heap[T]) Remove(i int) T {
	n := len(h.items)
	if i < 0 || i >= n {
		panic("nheap: Remove index out of range")
	}
	out := h.items[i]
	h.visits++ // the removed node
	last := h.items[n-1]
	h.items = h.items[:n-1]
	h.place(out, -1)
	if i < n-1 {
		h.items[i] = last
		h.place(last, i)
		if j := h.down(i); j == i {
			h.up(i)
		}
	}
	return out
}

// RemoveViaRoot deletes and returns the item at slot i using the classical
// textbook method: bubble the item up to the root unconditionally, then pop
// the root. It visits Θ(depth(i) + d·depth) nodes where the default Remove
// visits far fewer, and exists as an ablation: the paper's Figure 4 GDS
// curve grows with cache size, which is the signature of a delete path that
// pays full depth on every priority update.
func (h *Heap[T]) RemoveViaRoot(i int) T {
	n := len(h.items)
	if i < 0 || i >= n {
		panic("nheap: RemoveViaRoot index out of range")
	}
	item := h.items[i]
	for i > 0 {
		parent := (i - 1) / h.arity
		h.visits++
		h.items[i] = h.items[parent]
		h.place(h.items[i], i)
		i = parent
	}
	h.items[0] = item
	h.place(item, 0)
	return h.Remove(0)
}

// Fix re-establishes the heap ordering after the item at slot i changed its
// key. It returns the item's new slot.
func (h *Heap[T]) Fix(i int) int {
	if i < 0 || i >= len(h.items) {
		panic("nheap: Fix index out of range")
	}
	h.visits++ // the node being fixed
	if j := h.down(i); j != i {
		return j
	}
	return h.up(i)
}

// Items returns the raw heap slice. It is exposed for tests and diagnostics;
// callers must not mutate it.
func (h *Heap[T]) Items() []T { return h.items }

func (h *Heap[T]) place(x T, i int) {
	if h.setIdx != nil {
		h.setIdx(x, i)
	}
}

func (h *Heap[T]) up(i int) int {
	item := h.items[i]
	for i > 0 {
		parent := (i - 1) / h.arity
		h.visits++ // parent comparison
		if !h.less(item, h.items[parent]) {
			break
		}
		h.items[i] = h.items[parent]
		h.place(h.items[i], i)
		i = parent
	}
	h.items[i] = item
	h.place(item, i)
	return i
}

func (h *Heap[T]) down(i int) int {
	n := len(h.items)
	item := h.items[i]
	for {
		first := i*h.arity + 1
		if first >= n {
			break
		}
		min := first
		last := first + h.arity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			h.visits++ // child comparison
			if h.less(h.items[c], h.items[min]) {
				min = c
			}
		}
		if !h.less(h.items[min], item) {
			break
		}
		h.items[i] = h.items[min]
		h.place(h.items[i], i)
		i = min
	}
	h.items[i] = item
	h.place(item, i)
	return i
}

// Verify checks the heap invariant, returning the first violating index or
// -1 when the heap is valid. It is intended for tests.
func (h *Heap[T]) Verify() int {
	for i := 1; i < len(h.items); i++ {
		parent := (i - 1) / h.arity
		if h.less(h.items[i], h.items[parent]) {
			return i
		}
	}
	return -1
}
