package kvserver

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"camp/internal/kvclient"
)

// dialRaw connects without test-scoped cleanup, for goroutine use.
func dialRaw(s *Server) (*kvclient.Client, error) {
	return kvclient.Dial(s.Addr())
}

func TestAddReplace(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	c := dial(t, s)

	// replace on a missing key fails; add succeeds.
	if ok, err := c.Replace("k", []byte("v0"), 0, 0, 1); err != nil || ok {
		t.Fatalf("Replace(missing) = %v, %v", ok, err)
	}
	if ok, err := c.Add("k", []byte("v1"), 7, 0, 1); err != nil || !ok {
		t.Fatalf("Add(missing) = %v, %v", ok, err)
	}
	// add on an existing key fails; replace succeeds.
	if ok, err := c.Add("k", []byte("v2"), 0, 0, 1); err != nil || ok {
		t.Fatalf("Add(existing) = %v, %v", ok, err)
	}
	if ok, err := c.Replace("k", []byte("v3"), 0, 0, 1); err != nil || !ok {
		t.Fatalf("Replace(existing) = %v, %v", ok, err)
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "v3" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
}

func TestAppendPrepend(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	c := dial(t, s)

	if ok, err := c.Append("k", []byte("x")); err != nil || ok {
		t.Fatalf("Append(missing) = %v, %v", ok, err)
	}
	if err := c.Set("k", []byte("mid"), 9, 0, 42); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Append("k", []byte("-end")); err != nil || !ok {
		t.Fatalf("Append = %v, %v", ok, err)
	}
	if ok, err := c.Prepend("k", []byte("start-")); err != nil || !ok {
		t.Fatalf("Prepend = %v, %v", ok, err)
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "start-mid-end" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	// Flags and cost survive concatenation.
	line, _, err := c.Debug("k")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "cost=42") || !strings.Contains(line, "flags=9") {
		t.Fatalf("metadata lost on append/prepend: %q", line)
	}
}

func TestIncrDecr(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	c := dial(t, s)

	if _, ok, err := c.Incr("counter", 1); err != nil || ok {
		t.Fatalf("Incr(missing) = %v, %v", ok, err)
	}
	if err := c.Set("counter", []byte("10"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Incr("counter", 5); err != nil || !ok || v != 15 {
		t.Fatalf("Incr = %d, %v, %v", v, ok, err)
	}
	if v, ok, err := c.Decr("counter", 3); err != nil || !ok || v != 12 {
		t.Fatalf("Decr = %d, %v, %v", v, ok, err)
	}
	// decr clamps at zero.
	if v, _, err := c.Decr("counter", 100); err != nil || v != 0 {
		t.Fatalf("Decr(clamp) = %d, %v", v, err)
	}
	// Non-numeric values are rejected.
	c.Set("text", []byte("hello"), 0, 0, 1)
	if _, _, err := c.Incr("text", 1); err == nil {
		t.Fatal("Incr on non-numeric value should error")
	}
}

func TestTouch(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	c := dial(t, s)

	if ok, err := c.Touch("k", 100); err != nil || ok {
		t.Fatalf("Touch(missing) = %v, %v", ok, err)
	}
	if err := c.Set("k", []byte("v"), 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Extend the 1s TTL before it fires.
	if ok, err := c.Touch("k", 60); err != nil || !ok {
		t.Fatalf("Touch = %v, %v", ok, err)
	}
	time.Sleep(1200 * time.Millisecond)
	if _, ok, _ := c.Get("k"); !ok {
		t.Fatal("touched key should have outlived its original TTL")
	}
	// Touch with ttl 0 clears the expiry.
	if ok, err := c.Touch("k", 0); err != nil || !ok {
		t.Fatalf("Touch(0) = %v, %v", ok, err)
	}
}

func TestArithMalformed(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, cmd := range []string{
		"incr onlykey\r\n",
		"incr k notanumber\r\n",
		"decr k -5\r\n",
		"touch k\r\n",
		"touch k soon\r\n",
	} {
		fmt.Fprint(conn, cmd)
		buf := make([]byte, 128)
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(buf[:n]), "CLIENT_ERROR") {
			t.Fatalf("cmd %q: response %q", cmd, buf[:n])
		}
	}
}

// TestCmdGetCountsCommands pins memcached's stats semantics: a multiget is
// ONE cmd_get no matter how many keys it names, while get_hits/get_misses
// stay per-key. The old code bumped cmd_get once per key.
func TestCmdGetCountsCommands(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	c := dial(t, s)
	for _, k := range []string{"a", "b", "c"} {
		if err := c.Set(k, []byte("v"), 0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.MultiGet("a", "b", "c", "miss1", "miss2"); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["cmd_get"] != "1" {
		t.Fatalf("cmd_get = %s after one 5-key multiget, want 1", stats["cmd_get"])
	}
	if stats["get_hits"] != "3" || stats["get_misses"] != "2" {
		t.Fatalf("hits/misses = %s/%s, want 3/2", stats["get_hits"], stats["get_misses"])
	}
	// A second command increments it again.
	if _, _, err := c.Get("a"); err != nil {
		t.Fatal(err)
	}
	stats, _ = c.Stats()
	if stats["cmd_get"] != "2" {
		t.Fatalf("cmd_get = %s after two get commands, want 2", stats["cmd_get"])
	}
}

// TestExpiredItemsReclaimed proves expired-but-untouched items stop counting
// against capacity: the incremental sweep each mutation runs reclaims them
// without any access, so curr_items/bytes fall back to the live set and the
// expired_reclaimed stat accounts for every one.
func TestExpiredItemsReclaimed(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20, Shards: 1, DisableIQ: true})
	c := dial(t, s)
	const expiring = 50
	for i := 0; i < expiring; i++ {
		if err := c.Set(fmt.Sprintf("dead%d", i), []byte("xxxxxxxx"), 0, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Set("live", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1100 * time.Millisecond)
	// Only mutations from here on — never touch the dead keys. Each set
	// probes a few random items, so repeated writes to one key drain the
	// whole expired population.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.Set("churn", []byte("w"), 0, 0, 1); err != nil {
			t.Fatal(err)
		}
		stats, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stats["curr_items"] == "2" { // "live" + "churn": every expired item gone
			if stats["evictions"] != "0" {
				t.Fatalf("expired items were evicted (%s), not reclaimed", stats["evictions"])
			}
			reclaimed, _ := strconv.Atoi(stats["expired_reclaimed"])
			if reclaimed < expiring {
				t.Fatalf("expired_reclaimed = %d, want >= %d", reclaimed, expiring)
			}
			return
		}
		if time.Now().After(deadline) {
			stats, _ := c.Stats()
			t.Fatalf("sweep never reclaimed the expired set: curr_items=%s expired_reclaimed=%s",
				stats["curr_items"], stats["expired_reclaimed"])
		}
	}
}

// TestMissTableFullAdmitsFresh pins the incremental IQ miss-table expiry: a
// table full of stale entries admits a fresh miss by probing out a bounded
// handful of them, instead of either a full 64k sweep or dropping the miss.
func TestMissTableFullAdmitsFresh(t *testing.T) {
	s, err := New(Config{MemoryBytes: 1 << 20, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := s.shards[0]
	now := time.Now()
	stale := now.Add(-2 * missTableTTL)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 0; len(sh.missedAt) < missTableMax; i++ {
		sh.missedAt[fmt.Sprintf("old%d", i)] = stale
	}
	sh.recordMissLocked("fresh", now)
	if _, ok := sh.missedAt["fresh"]; !ok {
		t.Fatal("fresh miss dropped by a table full of stale entries")
	}
	// Bounded work: at most missTableProbes stale entries were expired.
	if got := len(sh.missedAt); got < missTableMax-missTableProbes+1 {
		t.Fatalf("table shrank to %d — a full sweep ran instead of bounded probes", got)
	}
	// A table full of RECENT misses still drops the newcomer.
	for k := range sh.missedAt {
		sh.missedAt[k] = now
	}
	for i := 0; len(sh.missedAt) < missTableMax; i++ {
		sh.missedAt[fmt.Sprintf("pad%d", i)] = now
	}
	before := len(sh.missedAt)
	sh.recordMissLocked("dropped", now)
	if _, ok := sh.missedAt["dropped"]; ok {
		t.Fatal("a table full of recent misses should drop new ones")
	}
	if len(sh.missedAt) != before {
		t.Fatalf("recent entries were expired: %d -> %d", before, len(sh.missedAt))
	}
}

func TestFlushAllModes(t *testing.T) {
	for _, cfg := range []Config{
		{MemoryBytes: 1 << 20, Policy: "camp"},
		{MemoryBytes: 1 << 21, Mode: ModeSlab, SlabSize: 1 << 16},
		{MemoryBytes: 1 << 20, Policy: "camp", Mode: ModeBuddy},
	} {
		name := cfg.Policy + "/" + cfg.Mode
		t.Run(name, func(t *testing.T) {
			s := startServer(t, cfg)
			c := dial(t, s)
			for i := 0; i < 20; i++ {
				if err := c.Set(fmt.Sprintf("k%d", i), []byte("v"), 0, 0, 1); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.FlushAll(); err != nil {
				t.Fatal(err)
			}
			stats, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if stats["curr_items"] != "0" {
				t.Fatalf("curr_items = %s after flush", stats["curr_items"])
			}
			// The server is fully usable after a flush.
			if err := c.Set("again", []byte("v"), 0, 0, 1); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := c.Get("again"); !ok {
				t.Fatal("server broken after flush")
			}
		})
	}
}

func TestBuddyModeChurn(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 16, Policy: "camp", Mode: ModeBuddy, ItemOverhead: 1})
	c := dial(t, s)
	// Values of mixed sizes force buddy split/coalesce cycles and
	// policy-driven evictions when the arena fills.
	for i := 0; i < 500; i++ {
		size := 50 + (i%8)*300
		if err := c.Set(fmt.Sprintf("k%d", i%60), make([]byte, size), 0, 0, int64(i%100+1)); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["curr_items"] == "0" {
		t.Fatal("buddy-mode server lost everything")
	}
}

func TestAddRacesOnlyOneWinner(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	const clients = 8
	wins := make(chan bool, clients)
	for i := 0; i < clients; i++ {
		go func(id int) {
			c, err := dialRaw(s)
			if err != nil {
				wins <- false
				return
			}
			defer c.Close()
			ok, err := c.Add("lock", []byte(fmt.Sprint(id)), 0, 0, 1)
			wins <- err == nil && ok
		}(i)
	}
	winners := 0
	for i := 0; i < clients; i++ {
		if <-wins {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("add should have exactly one winner, got %d", winners)
	}
}
