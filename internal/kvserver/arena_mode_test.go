package kvserver

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"camp/internal/kvclient"
	"camp/internal/persist"
)

// arenaCfg is the baseline arena-mode server config the tests here share.
func arenaCfg(mem int64) Config {
	return Config{
		MemoryBytes: mem,
		Policy:      "camp",
		Mode:        ModeArena,
		DisableIQ:   true,
	}
}

// TestArenaModeRoundTrip runs the full verb set against an arena-mode server:
// every path that reads or writes resident bytes must go through the packed
// segments, not the item's (nil) value slice.
func TestArenaModeRoundTrip(t *testing.T) {
	s := startServer(t, arenaCfg(1<<20))
	c := dial(t, s)

	if _, ok, err := c.Get("nope"); err != nil || ok {
		t.Fatalf("Get(miss) = %v, %v", ok, err)
	}
	if err := c.Set("greeting", []byte("hello world"), 42, 0, 10); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("greeting")
	if err != nil || !ok || string(v) != "hello world" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	// Overwrite relocates the record; the old bytes become dead.
	if err := c.Set("greeting", []byte("rewritten"), 7, 0, 10); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ = c.Get("greeting"); !ok || string(v) != "rewritten" {
		t.Fatalf("Get after overwrite = %q, %v", v, ok)
	}
	line, found, err := c.Debug("greeting")
	if err != nil || !found || !strings.Contains(line, "flags=7") {
		t.Fatalf("Debug = %q, %v, %v", line, found, err)
	}

	// add / replace
	if stored, err := c.Add("greeting", []byte("x"), 0, 0, 1); err != nil || stored {
		t.Fatalf("Add(existing) = %v, %v", stored, err)
	}
	if stored, err := c.Add("fresh", []byte("abc"), 0, 0, 1); err != nil || !stored {
		t.Fatalf("Add(fresh) = %v, %v", stored, err)
	}
	if stored, err := c.Replace("fresh", []byte("def"), 0, 0, 1); err != nil || !stored {
		t.Fatalf("Replace = %v, %v", stored, err)
	}

	// append / prepend read the resident bytes from the arena mid-concat.
	if stored, err := c.Append("fresh", []byte("-tail")); err != nil || !stored {
		t.Fatalf("Append = %v, %v", stored, err)
	}
	if stored, err := c.Prepend("fresh", []byte("head-")); err != nil || !stored {
		t.Fatalf("Prepend = %v, %v", stored, err)
	}
	if v, ok, _ = c.Get("fresh"); !ok || string(v) != "head-def-tail" {
		t.Fatalf("Get after concat = %q, %v", v, ok)
	}

	// incr / decr parse the arena bytes and write back a packed record.
	if err := c.Set("ctr", []byte("41"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if n, ok, err := c.Incr("ctr", 1); err != nil || !ok || n != 42 {
		t.Fatalf("Incr = %d, %v, %v", n, ok, err)
	}
	if n, ok, err := c.Decr("ctr", 2); err != nil || !ok || n != 40 {
		t.Fatalf("Decr = %d, %v, %v", n, ok, err)
	}

	// touch rewrites the expiry in place (index and packed header).
	if touched, err := c.Touch("ctr", 3600); err != nil || !touched {
		t.Fatalf("Touch = %v, %v", touched, err)
	}
	if v, ok, _ = c.Get("ctr"); !ok || string(v) != "40" {
		t.Fatalf("Get after touch = %q, %v", v, ok)
	}

	got, err := c.MultiGet("greeting", "fresh", "missing", "ctr")
	if err != nil || len(got) != 3 || string(got["greeting"]) != "rewritten" {
		t.Fatalf("MultiGet = %v, %v", got, err)
	}

	if deleted, err := c.Delete("greeting"); err != nil || !deleted {
		t.Fatalf("Delete = %v, %v", deleted, err)
	}
	if _, ok, _ = c.Get("greeting"); ok {
		t.Fatal("deleted key still readable")
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ = c.Get("fresh"); ok {
		t.Fatal("flushed key still readable")
	}
}

// TestArenaModeChurnCompaction drives enough overwrite churn through small
// segments that the incremental compactor must run, then checks the arena
// gauges and that every surviving key still reads back its last value —
// compaction relocates live records without corrupting them.
func TestArenaModeChurnCompaction(t *testing.T) {
	cfg := arenaCfg(1 << 20)
	cfg.Shards = 1
	cfg.ArenaSegment = 16 << 10
	s := startServer(t, cfg)
	c := dial(t, s)

	const keys = 64
	val := func(i, round int) []byte {
		return []byte(fmt.Sprintf("key%02d-round%03d-%s", i, round, strings.Repeat("x", 480)))
	}
	rounds := 40
	for r := 0; r < rounds; r++ {
		for i := 0; i < keys; i++ {
			if err := c.SetNoreply(fmt.Sprintf("key%02d", i), val(i, r), 0, 0, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Version(); err != nil { // sync point: all noreply sets applied
		t.Fatal(err)
	}

	for i := 0; i < keys; i++ {
		v, ok, err := c.Get(fmt.Sprintf("key%02d", i))
		if err != nil || !ok || string(v) != string(val(i, rounds-1)) {
			t.Fatalf("key%02d after churn: ok=%v err=%v", i, ok, err)
		}
	}

	shards, err := c.StatsShards()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 {
		t.Fatalf("got %d shards, want 1", len(shards))
	}
	as := shards[0]
	if as.ArenaLiveBytes <= 0 || as.ArenaSegments <= 0 {
		t.Fatalf("arena gauges not live: %+v", as)
	}
	if as.ArenaHeldBytes < as.ArenaLiveBytes+as.ArenaDeadBytes {
		t.Fatalf("held %d < live %d + dead %d", as.ArenaHeldBytes, as.ArenaLiveBytes, as.ArenaDeadBytes)
	}
	if as.ArenaCompactions == 0 || as.ArenaRelocatedBytes == 0 {
		t.Fatalf("churn of %d sets never compacted: %+v", rounds*keys, as)
	}

	// The running store-resident total must agree with a from-scratch resum
	// after all that churn (the arbiter trusts the cached figure).
	assertUsedTotals(t, s)
}

// TestArenaModeEviction fills an arena-mode server well past capacity and
// checks the policy keeps evicting packed records to admit new ones.
func TestArenaModeEviction(t *testing.T) {
	cfg := arenaCfg(256 << 10)
	cfg.Shards = 1
	s := startServer(t, cfg)
	c := dial(t, s)

	value := []byte(strings.Repeat("v", 1024))
	const n = 600 // ~600 KiB of 1 KiB values into a 256 KiB shard
	for i := 0; i < n; i++ {
		if err := c.Set(fmt.Sprintf("bulk-%03d", i), value, 0, 0, 1); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if totalEvictions(s) == 0 {
		t.Fatal("no evictions after overfilling the arena")
	}
	// The newest key was just admitted and must be readable.
	if v, ok, err := c.Get(fmt.Sprintf("bulk-%03d", n-1)); err != nil || !ok || len(v) != len(value) {
		t.Fatalf("newest key after eviction churn: ok=%v err=%v", ok, err)
	}
	assertUsedTotals(t, s)
}

// TestArenaModeOversizeValue stores a value larger than the segment size; the
// arena gives it a dedicated segment and it reads back intact.
func TestArenaModeOversizeValue(t *testing.T) {
	cfg := arenaCfg(1 << 20)
	cfg.Shards = 1
	cfg.ArenaSegment = 8 << 10
	s := startServer(t, cfg)
	c := dial(t, s)

	big := []byte(strings.Repeat("B", 64<<10))
	if err := c.Set("big", big, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("big")
	if err != nil || !ok || string(v) != string(big) {
		t.Fatalf("oversize round trip: ok=%v err=%v len=%d", ok, err, len(v))
	}
}

// TestArenaModeWarmRestart pins that arena mode persists and recovers like
// byte mode: the journal carries the record bytes, and a restart rebuilds the
// packed segments with values, flags, expiries and costs intact.
func TestArenaModeWarmRestart(t *testing.T) {
	dir := t.TempDir()
	mk := func(addr string) Config {
		cfg := arenaCfg(4 << 20)
		cfg.Addr = addr
		cfg.Shards = 2
		cfg.Persist = &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf}
		return cfg
	}
	s1 := startServer(t, mk(""))
	c := dial(t, s1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%03d", i)
		val := fmt.Sprintf("v%03d-%d", i, rng.Int63())
		if err := c.Set(key, []byte(val), uint32(i), 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ { // overwrite churn so recovery replays dead records too
		key := fmt.Sprintf("k%03d", i)
		if err := c.Set(key, []byte(fmt.Sprintf("rewrite-%03d", i)), uint32(i), 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Delete("k100"); err != nil {
		t.Fatal(err)
	}
	want := captureState(s1)
	addr := s1.Addr()
	s1.Kill()

	s2 := startServer(t, mk(addr))
	assertStateEqual(t, want, captureState(s2))
	c2 := dial(t, s2)
	if v, ok, err := c2.Get("k012"); err != nil || !ok || string(v) != "rewrite-012" {
		t.Fatalf("recovered read = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := c2.Get("k100"); ok {
		t.Fatal("deleted key resurrected by recovery")
	}
	assertUsedTotals(t, s2)
}

// TestArenaModeTenants pins that multi-tenancy (gated on byte mode before
// the arena landed) runs on arena mode: tenant switching, namespace
// isolation, reserves, and per-tenant accounting.
func TestArenaModeTenants(t *testing.T) {
	cfg := arenaCfg(1 << 20)
	cfg.TenantReserves = map[string]int64{"gold": 256 << 10}
	s := startServer(t, cfg)

	gold, err := kvclient.DialWithTenant(s.Addr(), "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	def := dial(t, s)

	if err := gold.Set("shared", []byte("gold-copy"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := def.Set("shared", []byte("default-copy"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := gold.Get("shared"); !ok || string(v) != "gold-copy" {
		t.Fatalf("gold read = %q, %v", v, ok)
	}
	if v, ok, _ := def.Get("shared"); !ok || string(v) != "default-copy" {
		t.Fatalf("default read = %q, %v", v, ok)
	}
	stats, err := def.StatsTenants()
	if err != nil {
		t.Fatal(err)
	}
	if stats["tenant:gold:bytes"] == "0" || stats["tenant:gold:reserved_bytes"] != fmt.Sprint(256<<10) {
		t.Fatalf("tenant stats: %v", stats)
	}
	assertUsedTotals(t, s)
}

// assertUsedTotals locks every shard and checks the running store-resident
// total the arbiter trusts against a from-scratch walk of the policies.
func assertUsedTotals(t *testing.T, s *Server) {
	t.Helper()
	for i, sh := range s.shards {
		sh.mu.Lock()
		fast, slow := sh.store.usedAll(), sh.store.usedAllSlow()
		sh.mu.Unlock()
		if fast != slow {
			t.Fatalf("shard %d: running used total %d != recomputed %d", i, fast, slow)
		}
	}
}

// TestNegativeExptimeExpiresImmediately is the regression test for the
// immortal-item bug: memcached treats a negative exptime as "already
// expired", but expiryFrom used to collapse every ttl <= 0 into "no expiry",
// so "set ... -1" stored a key that never died. Pinned across modes and for
// touch, which shared the mapping.
func TestNegativeExptimeExpiresImmediately(t *testing.T) {
	for _, mode := range []string{ModeByte, ModeArena} {
		t.Run(mode, func(t *testing.T) {
			cfg := arenaCfg(1 << 20)
			cfg.Mode = mode
			s := startServer(t, cfg)
			c := dial(t, s)

			// A negative exptime stores STORED (memcached semantics) but the
			// item must never be readable.
			if err := c.Set("doomed", []byte("x"), 0, -1, 1); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := c.Get("doomed"); ok {
				t.Fatal("set with exptime -1 produced a readable item")
			}

			// Zero still means immortal.
			if err := c.Set("kept", []byte("y"), 0, 0, 1); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := c.Get("kept"); !ok {
				t.Fatal("set with exptime 0 must stay resident")
			}

			// touch <key> -1 invalidates a live item.
			if touched, err := c.Touch("kept", -1); err != nil || !touched {
				t.Fatalf("Touch(-1) = %v, %v", touched, err)
			}
			if _, ok, _ := c.Get("kept"); ok {
				t.Fatal("touch with exptime -1 left the item readable")
			}
		})
	}
}

// TestNegativeExptimeSurvivesReplayAndReplication pins the durable half of
// the fix: the already-expired deadline rides the KindSet/KindTouch records,
// so neither a warm restart nor a replica resurrects the item.
func TestNegativeExptimeSurvivesReplayAndReplication(t *testing.T) {
	dir := t.TempDir()
	mk := func(addr string) Config {
		return Config{
			Addr:        addr,
			MemoryBytes: 1 << 20,
			Policy:      "camp",
			DisableIQ:   true,
			Persist:     &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf},
		}
	}
	p := startServer(t, mk(""))
	c := dial(t, p)
	if err := c.Set("neg-set", []byte("a"), 0, -1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("touched-dead", []byte("b"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if touched, err := c.Touch("touched-dead", -1); err != nil || !touched {
		t.Fatalf("Touch(-1) = %v, %v", touched, err)
	}
	if err := c.Set("control", []byte("c"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}

	// Replica apply: the follower consumes the same journal records.
	f := startReplica(t, p, Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true})
	waitCaughtUp(t, p, f)
	cf := dial(t, f)
	if _, ok, _ := cf.Get("neg-set"); ok {
		t.Fatal("replica resurrected a set with exptime -1")
	}
	if _, ok, _ := cf.Get("touched-dead"); ok {
		t.Fatal("replica resurrected a touch with exptime -1")
	}
	if v, ok, _ := cf.Get("control"); !ok || string(v) != "c" {
		t.Fatalf("replica control read = %q, %v", v, ok)
	}

	// Journal replay: a warm restart from the same records.
	addr := p.Addr()
	p.Kill()
	p2 := startServer(t, mk(addr))
	c2 := dial(t, p2)
	if _, ok, _ := c2.Get("neg-set"); ok {
		t.Fatal("recovery resurrected a set with exptime -1")
	}
	if _, ok, _ := c2.Get("touched-dead"); ok {
		t.Fatal("recovery resurrected a touch with exptime -1")
	}
	if v, ok, _ := c2.Get("control"); !ok || string(v) != "c" {
		t.Fatalf("recovered control read = %q, %v", v, ok)
	}
}

// TestTouchBadKeyBeforeReplicaGate is the regression test for the touch
// gate-order bug: a NUL-forged key is a client error on any role, but touch
// used to check the replica gate first, leaking the server's role (and a
// different error class) to a malformed command. handleStore and handleArith
// already gated in the right order; touch must match.
func TestTouchBadKeyBeforeReplicaGate(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	f := startReplica(t, p, Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true})
	waitCaughtUp(t, p, f)

	for _, tc := range []struct {
		role string
		srv  *Server
	}{
		{role: "primary", srv: p},
		{role: "replica", srv: f},
	} {
		for _, cmd := range []string{"touch bad\x00key 60", "delete bad\x00key"} {
			conn := rawDial(t, tc.srv)
			got := sendLine(t, conn, cmd)
			conn.Close()
			if got != "CLIENT_ERROR bad key" {
				t.Fatalf("%s %q: got %q, want CLIENT_ERROR bad key", tc.role, cmd, got)
			}
		}
	}

	// A well-formed touch is still refused by the replica gate.
	conn := rawDial(t, f)
	defer conn.Close()
	if got := sendLine(t, conn, "touch realkey 60"); !strings.Contains(got, "read-only") {
		t.Fatalf("replica touch with good key: got %q, want read-only error", got)
	}
}

// TestUsedTotalsInvariantUnderChurn cross-checks the arbiter's running
// store-resident total against a recomputation after a mixed single- and
// multi-tenant workload with evictions — the batched arbiter only walks
// tenants once per batch, so the cached figure must never drift.
func TestUsedTotalsInvariantUnderChurn(t *testing.T) {
	cfg := Config{
		MemoryBytes:    256 << 10,
		Shards:         2,
		Policy:         "camp",
		DisableIQ:      true,
		TenantReserves: map[string]int64{"gold": 64 << 10},
	}
	s := startServer(t, cfg)

	def := dial(t, s)
	gold, err := kvclient.DialWithTenant(s.Addr(), "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	bronze, err := kvclient.DialWithTenant(s.Addr(), "bronze")
	if err != nil {
		t.Fatal(err)
	}
	defer bronze.Close()

	rng := rand.New(rand.NewSource(99))
	clients := []*kvclient.Client{def, gold, bronze}
	value := []byte(strings.Repeat("z", 700))
	for i := 0; i < 1500; i++ {
		c := clients[rng.Intn(len(clients))]
		key := fmt.Sprintf("churn-%03d", rng.Intn(400))
		switch rng.Intn(10) {
		case 0:
			if _, err := c.Delete(key); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, err := c.Touch(key, int64(rng.Intn(3)-1)); err != nil {
				t.Fatal(err)
			}
		default:
			if err := c.Set(key, value[:rng.Intn(len(value))+1], 0, 0, int64(rng.Intn(8)+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if totalEvictions(s) == 0 {
		t.Fatal("churn never triggered the arbiter")
	}
	assertUsedTotals(t, s)

	// flush_all resets the totals with everything else.
	if err := def.FlushAllTenants(); err != nil {
		t.Fatal(err)
	}
	assertUsedTotals(t, s)
	for _, sh := range s.shards {
		sh.mu.Lock()
		used := sh.store.usedAll()
		sh.mu.Unlock()
		if used != 0 {
			t.Fatalf("used total %d after flush_all all, want 0", used)
		}
	}
}

// TestArenaModePrometheusFamilies spot-checks that the arena families carry
// samples on an arena-mode server (the zero-sample rendering on other modes
// is pinned by TestMetricsEndpoint's required-families list).
func TestArenaModePrometheusFamilies(t *testing.T) {
	cfg := arenaCfg(1 << 20)
	cfg.MetricsAddr = "127.0.0.1:0"
	s := startServer(t, cfg)
	c := dial(t, s)
	if err := c.Set("k", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, err %v", resp.StatusCode, err)
	}
	body := string(raw)
	if !strings.Contains(body, `camp_shard_arena_live_bytes{shard="0"}`) {
		t.Fatalf("metrics body lacks arena live-bytes sample:\n%s", body)
	}
	if !strings.Contains(body, `camp_shard_arena_segments{shard="0"}`) {
		t.Fatal("metrics body lacks arena segments sample")
	}
}
