package kvserver

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"camp/internal/alloc"
	"camp/internal/cache"
	"camp/internal/core"
	"camp/internal/persist"
)

// item is one stored key-value pair. Callers hold the server mutex. The key
// is duplicated into the item so hot reads arriving as wire []byte never
// materialize a string: the map lookup converts in place (which Go compiles
// allocation-free) and every downstream consumer — policy bump, VALUE reply
// — reuses this stored string. value and key are never mutated in place, so
// handlers may reference them after the shard lock drops.
// In arena mode value is nil and aref locates the packed record instead;
// arena values ARE relocated by compaction, so arena-mode readers must copy
// what they need before the shard lock drops (see store.itemValue).
type item struct {
	key       string
	value     []byte
	flags     uint32
	expiresAt time.Time // zero means no expiry
	handle    alloc.Handle
	buddyOff  int64
	aref      alloc.Ref
	// cost is the admission cost the policy charged for this entry, kept
	// here so per-tenant cost-saved accounting on the get path needs no
	// policy lookup.
	cost int64
}

// store manages items under one of the four memory-management schemes (the
// paper's §5 malloc/slab/buddy trio plus the Memshare-style packed arena).
type store struct {
	cfg   Config
	items map[string]*item

	// byte, buddy and arena modes. policy is the default tenant's; byte and
	// arena modes may additionally carry one policy per non-default tenant
	// in tens, with the store-level arbiter (makeRoom) enforcing the shared
	// capacity.
	policy  cache.Policy
	evicter cache.Evicter
	tens    map[string]*tenantState

	// totalUsed is the running store-resident byte total across the default
	// policy and every tenant policy — what usedAll() returns. Maintained
	// incrementally (noteUsage) against per-policy cached figures so the
	// arbiter's capacity checks are O(1) instead of O(#tenants) per probe.
	totalUsed int64
	// defUsed caches the default policy's last observed Used().
	defUsed int64

	// slab mode (Twemcache layout: per-class LRU ordering).
	slab     *alloc.SlabAllocator
	classLRU []*cache.LRU

	// buddy mode.
	buddy *alloc.BuddyAllocator

	// arena mode: values live as packed records in per-shard segments; the
	// items map doubles as the hash→(segment,offset) index through each
	// item's aref. The pre-bound callbacks keep the incremental compactor's
	// per-mutation steps allocation-free.
	arena      *alloc.Arena
	arenaAlive func(key []byte, ref alloc.Ref) bool
	arenaMoved func(key []byte, ref alloc.Ref)

	evicted uint64
	// expiredReclaimed counts items removed because their TTL had passed —
	// on access and by the incremental sweep — as opposed to policy
	// evictions.
	expiredReclaimed uint64
	// evictedBase/rejectedBase carry policy-held counts across flush():
	// flush replaces the policy object, so its lifetime stats are folded in
	// here first (slab mode's st.evicted is store-held already).
	evictedBase  uint64
	rejectedBase uint64
}

func newStore(cfg Config) (*store, error) {
	st := &store{cfg: cfg, items: make(map[string]*item)}
	switch cfg.Mode {
	case ModeByte:
		p, err := buildPolicy(cfg, cfg.MemoryBytes)
		if err != nil {
			return nil, err
		}
		st.policy = p
	case ModeBuddy:
		minBlock := cfg.MinBlock
		if minBlock == 0 {
			minBlock = 64
		}
		b, err := alloc.NewBuddyAllocator(cfg.MemoryBytes, minBlock)
		if err != nil {
			return nil, err
		}
		st.buddy = b
		p, err := buildPolicy(cfg, b.ArenaSize())
		if err != nil {
			return nil, err
		}
		st.policy = p
	case ModeArena:
		a, err := alloc.NewArena(cfg.MemoryBytes, cfg.ArenaSegment)
		if err != nil {
			return nil, err
		}
		st.arena = a
		p, err := buildPolicy(cfg, cfg.MemoryBytes)
		if err != nil {
			return nil, err
		}
		st.policy = p
		// Bound once so the per-mutation compaction steps never allocate a
		// closure. After flush() copies a fresh store over this one, the
		// captured pointer's items map and arena still alias the live
		// store's (neither field is ever reassigned), so the bindings stay
		// correct across flushes.
		st.arenaAlive = func(key []byte, ref alloc.Ref) bool {
			it, ok := st.items[string(key)]
			return ok && it.aref == ref
		}
		st.arenaMoved = func(key []byte, ref alloc.Ref) {
			if it, ok := st.items[string(key)]; ok {
				it.aref = ref
			}
		}
	case ModeSlab:
		var opts []alloc.SlabOption
		if cfg.SlabSize > 0 {
			opts = append(opts, alloc.WithSlabSize(cfg.SlabSize))
		}
		a, err := alloc.NewSlabAllocator(cfg.MemoryBytes, opts...)
		if err != nil {
			return nil, err
		}
		st.slab = a
		st.classLRU = make([]*cache.LRU, a.NumClasses())
		for i := range st.classLRU {
			st.classLRU[i] = cache.NewLRU(math.MaxInt64)
		}
	default:
		return nil, fmt.Errorf("%w: unknown mode %q", errBadConfig, cfg.Mode)
	}
	if st.policy != nil {
		ev, ok := st.policy.(cache.Evicter)
		if !ok && (cfg.Mode == ModeBuddy || cfg.Mode == ModeArena) {
			return nil, fmt.Errorf("%w: policy %q cannot drive %s eviction", errBadConfig, cfg.Policy, cfg.Mode)
		}
		st.evicter = ev
		st.policy.SetEvictFunc(st.onPolicyEvict)
	}
	return st, nil
}

func buildPolicy(cfg Config, capacity int64) (cache.Policy, error) {
	switch cfg.Policy {
	case "camp":
		return core.NewCamp(capacity, core.WithPrecision(cfg.Precision)), nil
	case "lru":
		return cache.NewLRU(capacity), nil
	case "gds":
		return core.NewGDS(capacity), nil
	default:
		return nil, fmt.Errorf("%w: unknown policy %q", errBadConfig, cfg.Policy)
	}
}

// onPolicyEvict keeps the item map (and the buddy or packed arena) in sync
// with policy evictions.
func (st *store) onPolicyEvict(e cache.Entry) {
	it, ok := st.items[e.Key]
	if !ok {
		return
	}
	if st.buddy != nil {
		st.buddy.Free(it.buddyOff)
	}
	if st.arena != nil {
		st.arena.Release(it.aref)
	}
	delete(st.items, e.Key)
	st.evicted++
}

func (st *store) itemSize(key string, value []byte) int64 {
	return int64(len(key)) + int64(len(value)) + st.cfg.ItemOverhead
}

// tenantState is one non-default tenant's slice of a shard: its own instance
// of the configured eviction policy (sized to the whole shard — the
// store-level arbiter in makeRoom enforces the real shared limit) plus the
// registry entry carrying its reserve and lifetime counters.
type tenantState struct {
	t       *tenant
	policy  cache.Policy
	evicter cache.Evicter
	// cachedUsed is the policy's last Used() observed by noteUsage, the
	// delta base for the store's running totalUsed.
	cachedUsed int64
}

// ensureTenant creates (or returns) the per-shard policy state for a
// non-default tenant. Byte and arena modes only: the slab and buddy layouts
// refuse the tenant verb at the protocol layer, and under them a restored
// namespaced key is served as a plain key with no isolation. The caller
// holds the shard mutex.
func (st *store) ensureTenant(name string) *tenantState {
	if name == defaultTenantName || st.cfg.tenants == nil || st.slab != nil || st.buddy != nil {
		return nil
	}
	if ts, ok := st.tens[name]; ok {
		return ts
	}
	t, _ := st.cfg.tenants.ensure(name)
	p, err := buildPolicy(st.cfg, st.cfg.MemoryBytes)
	if err != nil {
		// The config was already validated at construction.
		panic("kvserver: tenant policy build failed: " + err.Error())
	}
	p.SetEvictFunc(st.onPolicyEvict)
	ts := &tenantState{t: t, policy: p}
	ts.evicter, _ = p.(cache.Evicter)
	if st.tens == nil {
		st.tens = make(map[string]*tenantState)
	}
	st.tens[name] = ts
	return ts
}

// multiTenant reports whether namespaced keys must be routed to per-tenant
// policies. It is driven by the server-wide registry, not this store's tens
// table: tens is a per-shard cache that flush() rebuilds, and routing off it
// was the flush_all escape — after `*st = *fresh` zeroed tens, every
// namespaced key silently landed in the default policy until restart,
// bypassing reserves, arbitration and per-tenant stats.
func (st *store) multiTenant() bool {
	reg := st.cfg.tenants
	return reg != nil && reg.multi.Load() && st.slab == nil && st.buddy == nil
}

// policyFor routes a stored key to the policy that owns it: the tenant named
// by the key's NUL-delimited prefix, or the default policy for bare keys.
// With no non-default tenant registered anywhere — the single-tenant fast
// path — the byte scan is skipped entirely: no namespaced key can be
// resident then.
func (st *store) policyFor(key string) cache.Policy {
	p, _ := st.stateFor(key)
	return p
}

// stateFor is policyFor plus the owning tenantState (nil for the default
// tenant), the pair noteUsage needs to keep the running total exact.
func (st *store) stateFor(key string) (cache.Policy, *tenantState) {
	if !st.multiTenant() {
		return st.policy, nil
	}
	if i := strings.IndexByte(key, 0); i >= 0 {
		if ts := st.ensureTenant(key[:i]); ts != nil {
			return ts.policy, ts
		}
	}
	return st.policy, nil
}

// noteUsage re-reads one policy's Used() and folds the delta into the
// store's running total. It must be called after every mutation of a
// policy's contents (set, delete, eviction — including evictions the policy
// performed internally during a Set): the absolute re-read makes the resync
// self-healing no matter how many entries one call displaced.
func (st *store) noteUsage(p cache.Policy, ts *tenantState) {
	cached := &st.defUsed
	if ts != nil {
		cached = &ts.cachedUsed
	}
	u := p.Used()
	st.totalUsed += u - *cached
	*cached = u
}

// shardReserve is this shard's slice of a tenant's server-wide reserve: an
// even split with shard 0 absorbing the remainder, mirroring how New splits
// capacity.
func (st *store) shardReserve(total int64) int64 {
	n := int64(st.cfg.Shards)
	if n <= 1 {
		return total
	}
	per := total / n
	if st.cfg.shardSlot == 0 {
		per += total % n
	}
	return per
}

// usedAll is the store-wide resident byte figure the shared capacity bounds.
// It is the running total noteUsage maintains, so the arbiter's inner loops
// read it in O(1) instead of re-summing every tenant policy.
func (st *store) usedAll() int64 {
	if st.policy == nil {
		return 0
	}
	return st.totalUsed
}

// usedAllSlow recomputes the resident total from the policies directly; the
// invariant tests compare it against the running figure.
func (st *store) usedAllSlow() int64 {
	if st.policy == nil {
		return 0
	}
	used := st.policy.Used()
	for _, ts := range st.tens {
		used += ts.policy.Used()
	}
	return used
}

// makeRoom frees shared capacity until an insert of size bytes on behalf of
// requester fits. Victims are chosen Memshare-style by evictArbitratedBatch,
// so a false return means the insert must be rejected (nothing evictable
// without breaking another tenant's reserve).
func (st *store) makeRoom(requester cache.Policy, size int64) bool {
	capacity := st.cfg.MemoryBytes
	if size > capacity {
		return false
	}
	for st.usedAll()+size > capacity {
		if !st.evictArbitratedBatch(requester, st.usedAll()+size-capacity) {
			return false
		}
	}
	return true
}

// evictArbitrated evicts one entry from the tenant whose next victim carries
// the lowest marginal priority; see evictArbitratedBatch.
func (st *store) evictArbitrated(requester cache.Policy) bool {
	return st.evictArbitratedBatch(requester, 1)
}

// evictArbitratedBatch frees up to need bytes from the tenant whose next
// victim carries the lowest marginal priority (the policy's H − L urgency),
// considering only tenants holding more than their reserve slice — plus the
// requester itself, which may always churn its own entries. One tenant's
// pressure can therefore drain the shared pool but never another tenant's
// reserve.
//
// After one walk picks the winner, eviction keeps draining the same policy
// while it stays eligible, its victims stay strictly cheapest (urgency below
// every other candidate's — their urgencies cannot change while only the
// winner is mutated), and bytes are still needed. That amortizes the
// O(#tenants) walk across a batch of victims: a large insert under many
// tenants is O(tenants + victims) instead of the old O(tenants × victims).
// Returns false only when nothing was evictable.
func (st *store) evictArbitratedBatch(requester cache.Policy, need int64) bool {
	var (
		found     bool
		best      cache.Policy
		bestTS    *tenantState
		bestEv    cache.Evicter
		bestUrg   float64
		bestOver  int64
		secondUrg float64
		hasSecond bool
	)
	consider := func(p cache.Policy, ts *tenantState, ev cache.Evicter, reserveTotal int64) {
		if ev == nil || p.Len() == 0 {
			return
		}
		over := p.Used() - st.shardReserve(reserveTotal)
		if over <= 0 && p != requester {
			return // within reserve: protected from other tenants' churn
		}
		urg := 0.0
		if vp, ok := p.(cache.VictimPeeker); ok {
			if _, u, ok := vp.PeekVictim(); ok {
				urg = u
			}
		}
		if !found || urg < bestUrg || (urg == bestUrg && over > bestOver) {
			if found {
				secondUrg, hasSecond = bestUrg, true
			}
			found, best, bestTS, bestEv, bestUrg, bestOver = true, p, ts, ev, urg, over
		} else if !hasSecond || urg < secondUrg {
			secondUrg, hasSecond = urg, true
		}
	}
	var defReserve int64
	if reg := st.cfg.tenants; reg != nil {
		defReserve = reg.def.reserve.Load()
	}
	consider(st.policy, nil, st.evicter, defReserve)
	for _, ts := range st.tens {
		consider(ts.policy, ts, ts.evicter, ts.t.reserve.Load())
	}
	if !found {
		return false
	}
	reserve := st.shardReserve(defReserve)
	if bestTS != nil {
		reserve = st.shardReserve(bestTS.t.reserve.Load())
	}
	evictedAny := false
	for need > 0 {
		if _, ok := bestEv.EvictOne(); !ok {
			break
		}
		evictedAny = true
		before := st.usedAll()
		st.noteUsage(best, bestTS)
		need -= before - st.usedAll()
		if need <= 0 || best.Len() == 0 {
			break
		}
		// Still eligible? The winner may have dropped to (or below) its
		// reserve; from there only the requester itself may keep churning.
		if best != requester && best.Used()-reserve <= 0 {
			break
		}
		// Still strictly cheapest? On a tie or crossover, fall back to the
		// caller's loop for a fresh arbitration walk.
		if hasSecond {
			vp, ok := best.(cache.VictimPeeker)
			if !ok {
				break
			}
			_, urg, ok := vp.PeekVictim()
			if !ok || urg >= secondUrg {
				break
			}
		}
	}
	return evictedAny
}

// flushTenant removes every entry owned by one tenant, leaving other
// tenants' entries, the per-tenant policy objects, and the store's lifetime
// counters untouched. Deletions are not evictions, so eviction stats are
// unaffected too.
func (st *store) flushTenant(name string) {
	if st.slab != nil || st.buddy != nil {
		// Non-byte layouts are single-tenant: only the default name means
		// anything, and flushing it flushes everything, as before.
		if name == defaultTenantName {
			st.flush()
		}
		return
	}
	var p cache.Policy
	if name == defaultTenantName {
		p = st.policy
	} else if ts, ok := st.tens[name]; ok {
		p = ts.policy
	} else {
		return
	}
	keys := make([]string, 0, p.Len())
	if eo, ok := p.(cache.EvictionOrdered); ok {
		eo.VisitEvictionOrder(func(e cache.Entry) bool {
			keys = append(keys, e.Key)
			return true
		})
	}
	for _, k := range keys {
		st.delete(k)
	}
}

// policyLifetime sums lifetime eviction/rejection counts across the default
// policy and every tenant policy.
func (st *store) policyLifetime() (evicted, rejected uint64) {
	if st.policy == nil {
		return 0, 0
	}
	s := st.policy.Stats()
	evicted, rejected = s.Evictions, s.Rejected
	for _, ts := range st.tens {
		ts2 := ts.policy.Stats()
		evicted += ts2.Evictions
		rejected += ts2.Rejected
	}
	return evicted, rejected
}

// visitTenantUsage reports per-tenant residency in this store. The caller
// holds the shard mutex. Non-policy layouts (slab) are single-tenant and
// report everything under the default name.
func (st *store) visitTenantUsage(visit func(name string, used int64, items int, evictions uint64)) {
	if st.policy == nil {
		visit(defaultTenantName, st.used(), st.len(), st.evictions())
		return
	}
	visit(defaultTenantName, st.policy.Used(), st.policy.Len(), st.policy.Stats().Evictions)
	for name, ts := range st.tens {
		visit(name, ts.policy.Used(), ts.policy.Len(), ts.policy.Stats().Evictions)
	}
}

func (st *store) get(key string, now time.Time) (*item, bool) {
	it, ok := st.items[key]
	if !ok {
		return nil, false
	}
	return st.getResident(it, now)
}

// getBytes is get for a key still in its wire []byte form: the map access
// compiles to a no-allocation lookup, and on a hit the item's own key
// string serves the policy bump, so the read path never allocates.
func (st *store) getBytes(key []byte, now time.Time) (*item, bool) {
	it, ok := st.items[string(key)]
	if !ok {
		return nil, false
	}
	return st.getResident(it, now)
}

// getResident finishes a get on a mapped item: lazy expiry, then the
// recency/priority bump in whichever structure owns the key.
func (st *store) getResident(it *item, now time.Time) (*item, bool) {
	if !it.expiresAt.IsZero() && now.After(it.expiresAt) {
		st.delete(it.key)
		st.expiredReclaimed++
		return nil, false
	}
	if st.slab != nil {
		st.classLRU[it.handle.Class()].Get(it.key)
		return it, true
	}
	if !st.policyFor(it.key).Get(it.key) {
		return nil, false
	}
	return it, true
}

// sweepExpired probes up to n items for passed TTLs and reclaims them,
// counting each in expired_reclaimed. Go's randomized map iteration starts
// every call at a fresh bucket, so the few probes each mutation pays walk
// the whole table over time — the memcached/Redis-style incremental sweep
// that stops expired-but-untouched items from pinning capacity (and
// inflating curr_items/bytes) forever. Runs under the already-held shard
// lock; n stays small so no single request stalls.
func (st *store) sweepExpired(now time.Time, n int) {
	for key, it := range st.items {
		if n <= 0 {
			return
		}
		n--
		if !it.expiresAt.IsZero() && now.After(it.expiresAt) {
			st.delete(key)
			st.expiredReclaimed++
		}
	}
}

// expiryFrom converts a memcached relative TTL to an absolute deadline.
// Negative exptime means "already expired" (memcached's invalidation idiom),
// not "no expiry": mapping it to immortal let `set k 0 -1 3` pin an
// unexpirable item and made `touch k -1` immortalize instead of invalidate.
// The deadline lands just behind now, so the entry is born expired and the
// next access or sweep reclaims it — and since journals and replication
// carry this deadline (not the TTL), replay reproduces the invalidation.
func expiryFrom(ttl int64, now time.Time) time.Time {
	if ttl > 0 {
		return now.Add(time.Duration(ttl) * time.Second)
	}
	if ttl < 0 {
		return now.Add(-time.Nanosecond)
	}
	return time.Time{}
}

func (st *store) set(key string, value []byte, flags uint32, ttl, cost int64, now time.Time) bool {
	return st.setAbs(key, value, flags, expiryFrom(ttl, now), cost)
}

// setAbs is set with an absolute expiry, the form recovery needs: journals
// record deadlines, not TTLs, so restarts do not extend item lifetimes.
func (st *store) setAbs(key string, value []byte, flags uint32, expires time.Time, cost int64) bool {
	return st.setAbsPrio(key, value, flags, expires, cost, 0, 0, false)
}

// setAbsPrio is setAbs with an optional pinned eviction-priority offset, the
// form v2 snapshot replay uses: a KindSetPrio record re-enters the policy at
// the exact H − L it held when the snapshot was cut, so a mid-churn warm
// start reproduces the live cross-queue eviction schedule. Policies without
// priority state (and the slab layout, whose class LRUs are pure recency)
// ignore the offset — replay order alone restores them exactly.
func (st *store) setAbsPrio(key string, value []byte, flags uint32, expires time.Time, cost int64, prio, class uint64, hasPrio bool) bool {
	if st.arena != nil {
		return st.setArena(key, value, flags, expires, cost, prio, class, hasPrio)
	}
	it := &item{key: key, value: value, flags: flags, expiresAt: expires, cost: cost}
	size := st.itemSize(key, value)
	switch {
	case st.slab != nil:
		// Slab layout: per-class LRUs are pure recency; replay order alone
		// restores them.
		return st.setSlab(key, it, size, cost)
	case st.buddy != nil:
		return st.setBuddy(key, it, size, cost, prio, class, hasPrio)
	default:
		if !st.policySet(key, size, cost, prio, class, hasPrio) {
			delete(st.items, key) // a failed grow drops the entry
			return false
		}
		st.items[key] = it
		return true
	}
}

// policySet admits through the policy that owns the key, pinning the
// priority offset and class when they were recorded and the policy can
// restore them. On the multi-tenant path the old version is dropped first so
// the arbiter's byte accounting is exact, then makeRoom clears shared
// capacity before the owning policy (whose own capacity is the whole shard)
// admits the entry. Every policy mutation is followed by a noteUsage resync
// so the store's running resident total stays exact.
func (st *store) policySet(key string, size, cost int64, prio, class uint64, hasPrio bool) bool {
	p, ts := st.stateFor(key)
	if st.multiTenant() {
		p.Delete(key)
		st.noteUsage(p, ts)
		if !st.makeRoom(p, size) {
			return false
		}
	}
	ok := false
	if hasPrio {
		if po, isPrio := p.(cache.PriorityOrdered); isPrio {
			ok = po.SetWithPriority(key, size, cost, prio, class)
			st.noteUsage(p, ts)
			return ok
		}
	}
	ok = p.Set(key, size, cost)
	st.noteUsage(p, ts)
	return ok
}

// setArena lands the record's bytes in the packed arena, then admits the key
// through the same policy machinery byte mode uses, so priorities, tenancy
// and persistence behave identically across the two layouts. An overwrite
// updates the resident item struct in place — together with the interned key
// and the arena copy-in, that is what makes the steady-state set path free
// of per-item heap allocations.
func (st *store) setArena(key string, value []byte, flags uint32, expires time.Time, cost int64, prio, class uint64, hasPrio bool) bool {
	size := st.itemSize(key, value)
	if size > st.cfg.MemoryBytes {
		return false
	}
	p, _ := st.stateFor(key)
	ref, ok := st.arenaAppend(p, key, value, flags, expires)
	if !ok {
		return false
	}
	if !st.policySet(key, size, cost, prio, class, hasPrio) {
		// Mirror the byte-mode contract: a refused admission drops the entry
		// entirely — the new bytes and whatever old version remained.
		st.arena.Release(ref)
		if old, exists := st.items[key]; exists {
			st.arena.Release(old.aref)
			delete(st.items, key)
		}
		return false
	}
	// Re-lookup rather than trusting a pre-append snapshot: the append loop's
	// compaction/eviction (or the policy's own internal evictions during
	// admission) may have removed the old version meanwhile.
	if old, exists := st.items[key]; exists {
		st.arena.Release(old.aref)
		old.flags, old.expiresAt, old.cost, old.aref = flags, expires, cost, ref
	} else {
		st.items[key] = &item{key: key, flags: flags, expiresAt: expires, cost: cost, aref: ref}
	}
	st.arenaMaintain()
	return true
}

// arenaAppend copies the record into the arena, clearing space on pressure:
// compaction first (reclaims dead bytes for free), then Memshare-arbitrated
// eviction on requester's behalf. The loop terminates — each CompactForce
// recycles a whole segment or reports false, and each eviction removes one
// resident entry, so a record that fits the budget eventually lands and one
// that cannot fit fails once the arena is drained.
func (st *store) arenaAppend(requester cache.Policy, key string, value []byte, flags uint32, expires time.Time) (alloc.Ref, bool) {
	expNano := expiryNano(expires)
	for {
		ref, err := st.arena.Append(key, value, flags, expNano)
		if err == nil {
			return ref, true
		}
		if st.arena.CompactForce(st.arenaAlive, st.arenaMoved) {
			continue
		}
		if !st.evictArbitrated(requester) {
			return alloc.Ref{}, false
		}
	}
}

// expiryNano converts an absolute expiry to the arena record field: unix
// nanoseconds, zero meaning no expiry.
func expiryNano(expires time.Time) int64 {
	if expires.IsZero() {
		return 0
	}
	return expires.UnixNano()
}

// itemValue returns an item's stored value. The arena-mode slice aliases the
// packed segment and is invalidated by compaction: consume or copy it before
// the shard lock drops.
func (st *store) itemValue(it *item) []byte {
	if st.arena != nil {
		return st.arena.Value(it.aref)
	}
	return it.value
}

// touchResident updates an item's expiry everywhere it lives: the item
// struct and, in arena mode, the packed record itself — so a future
// mmap-style rebuild from the segments sees the touched deadline.
func (st *store) touchResident(it *item, expires time.Time) {
	it.expiresAt = expires
	if st.arena != nil {
		st.arena.TouchExpiry(it.aref, expiryNano(expires))
	}
}

// arenaCompactStride bounds how many record bytes one mutation's incremental
// compaction step may scan, amortizing reclamation across operations the way
// sweepExpired amortizes expiry.
const arenaCompactStride = 32 << 10

// arenaMaintain runs one bounded compaction step when any segment's
// dead-byte ratio has crossed the threshold.
func (st *store) arenaMaintain() {
	if st.arena != nil && st.arena.NeedsCompaction() {
		st.arena.CompactStep(arenaCompactStride, st.arenaAlive, st.arenaMoved)
	}
}

// arenaStats exposes the packed arena's accounting for stats/metrics; the
// zero value reports for non-arena layouts.
func (st *store) arenaStats() alloc.ArenaStats {
	if st.arena == nil {
		return alloc.ArenaStats{}
	}
	return st.arena.Stats()
}

// setBuddy places the value in the buddy arena and charges the policy its
// rounded block size. The pinned priority (v2 snapshot replay) passes
// through to the policy: the buddy layout drives eviction through the same
// CAMP/GDS policy byte mode uses, so its warm starts restore exact
// cross-queue priorities the same way (block-size rounding is
// deterministic, so the pinned class matches the recomputed block).
func (st *store) setBuddy(key string, it *item, size, cost int64, prio, class uint64, hasPrio bool) bool {
	// Replace any previous version first so we never evict ourselves.
	st.deleteBuddy(key)
	blockSize, err := st.buddy.BlockSize(size)
	if err != nil {
		return false
	}
	off, err := st.allocBuddy(size)
	if err != nil {
		return false
	}
	if !st.policySet(key, blockSize, cost, prio, class, hasPrio) {
		st.buddy.Free(off)
		return false
	}
	it.buddyOff = off
	st.items[key] = it
	return true
}

func (st *store) allocBuddy(size int64) (int64, error) {
	for {
		off, err := st.buddy.Alloc(size)
		if err == nil {
			return off, nil
		}
		if !errors.Is(err, alloc.ErrNoMemory) {
			return 0, err
		}
		// The policy picks a victim; its callback frees the block.
		if _, ok := st.evicter.EvictOne(); !ok {
			return 0, err
		}
		st.noteUsage(st.policy, nil)
	}
}

func (st *store) setSlab(key string, it *item, size, cost int64) bool {
	st.deleteSlab(key)
	class, err := st.slab.ClassFor(size)
	if err != nil {
		return false
	}
	h, err := st.allocSlab(key, class, size)
	if err != nil {
		return false
	}
	it.handle = h
	st.items[key] = it
	// Size 0 in the class LRU: the allocator owns space accounting.
	st.classLRU[class].Set(key, 0, cost)
	return true
}

// allocSlab implements Twemcache's §5 strategy: free chunk or new slab
// (inside Alloc), then per-class LRU eviction, then random slab eviction.
func (st *store) allocSlab(key string, class int, size int64) (alloc.Handle, error) {
	for {
		h, err := st.slab.Alloc(key, size)
		if err == nil {
			return h, nil
		}
		if !errors.Is(err, alloc.ErrNoMemory) {
			return alloc.Handle{}, err
		}
		if victim, ok := st.classLRU[class].EvictOne(); ok {
			st.purgeSlabVictim(victim.Key)
			continue
		}
		// No item of this class to evict: random slab eviction.
		owners, ok := st.slab.ReassignRandomSlab(class)
		if !ok {
			return alloc.Handle{}, alloc.ErrNoMemory
		}
		for _, owner := range owners {
			if o, exists := st.items[owner]; exists {
				st.classLRU[o.handle.Class()].Delete(owner)
				delete(st.items, owner)
				st.evicted++
			}
		}
	}
}

// purgeSlabVictim removes a class-LRU victim's chunk and value.
func (st *store) purgeSlabVictim(key string) {
	it, ok := st.items[key]
	if !ok {
		return
	}
	st.slab.Free(it.handle)
	delete(st.items, key)
	st.evicted++
}

func (st *store) delete(key string) bool {
	switch {
	case st.slab != nil:
		return st.deleteSlab(key)
	case st.buddy != nil:
		return st.deleteBuddy(key)
	default:
		p, ts := st.stateFor(key)
		if !p.Delete(key) {
			return false
		}
		st.noteUsage(p, ts)
		if st.arena != nil {
			if it, ok := st.items[key]; ok {
				st.arena.Release(it.aref)
			}
		}
		delete(st.items, key)
		return true
	}
}

func (st *store) deleteSlab(key string) bool {
	it, ok := st.items[key]
	if !ok {
		return false
	}
	st.classLRU[it.handle.Class()].Delete(key)
	st.slab.Free(it.handle)
	delete(st.items, key)
	return true
}

func (st *store) deleteBuddy(key string) bool {
	it, ok := st.items[key]
	if !ok {
		return false
	}
	st.policy.Delete(key)
	st.noteUsage(st.policy, nil)
	st.buddy.Free(it.buddyOff)
	delete(st.items, key)
	return true
}

func (st *store) peek(key string) (*item, cache.Entry, bool) {
	it, ok := st.items[key]
	if !ok {
		return nil, cache.Entry{}, false
	}
	return st.peekResident(it)
}

// peekBytes is peek for a key in wire form (see getBytes).
func (st *store) peekBytes(key []byte) (*item, cache.Entry, bool) {
	it, ok := st.items[string(key)]
	if !ok {
		return nil, cache.Entry{}, false
	}
	return st.peekResident(it)
}

func (st *store) peekResident(it *item) (*item, cache.Entry, bool) {
	if st.slab != nil {
		e, _ := st.classLRU[it.handle.Class()].Peek(it.key)
		e.Size = st.itemSize(it.key, it.value)
		return it, e, true
	}
	e, ok := st.policyFor(it.key).Peek(it.key)
	return it, e, ok
}

func (st *store) flush() {
	fresh, err := newStore(st.cfg)
	if err != nil {
		// The config was already validated at construction.
		panic("kvserver: flush rebuild failed: " + err.Error())
	}
	// Lifetime counters survive the flush, as memcached's stats do. The
	// policy object is being replaced, so its counts fold into the bases.
	evicted, reclaimed := st.evicted, st.expiredReclaimed
	evictedBase, rejectedBase := st.evictedBase, st.rejectedBase
	ev, rej := st.policyLifetime()
	evictedBase += ev
	rejectedBase += rej
	*st = *fresh
	st.evicted, st.expiredReclaimed = evicted, reclaimed
	st.evictedBase, st.rejectedBase = evictedBase, rejectedBase
	// Rebuild the per-tenant policy states eagerly from the registry, which
	// survives the flush: connections still hold their *tenant, and the next
	// namespaced write must land in its tenant's (fresh) policy — with
	// reserves and arbitration intact — not escape into the default one.
	if reg := st.cfg.tenants; reg != nil && st.slab == nil && st.buddy == nil {
		for _, t := range reg.list() {
			if t.name != defaultTenantName {
				st.ensureTenant(t.name)
			}
		}
	}
}

func (st *store) len() int { return len(st.items) }

func (st *store) used() int64 {
	switch {
	case st.slab != nil:
		var total int64
		for _, cs := range st.slab.Stats() {
			total += int64(cs.UsedChunks) * cs.ChunkSize
		}
		return total
	default:
		return st.usedAll()
	}
}

func (st *store) evictions() uint64 {
	if st.policy != nil {
		ev, _ := st.policyLifetime()
		return st.evictedBase + ev
	}
	return st.evicted
}

func (st *store) policyName() string {
	if st.slab != nil {
		return "lru-slab"
	}
	return st.policy.Name()
}

func (st *store) queueCount() int {
	qc, ok := st.policy.(cache.QueueCounter)
	if !ok {
		return -1
	}
	n := qc.QueueCount()
	for _, ts := range st.tens {
		if tq, ok := ts.policy.(cache.QueueCounter); ok {
			n += tq.QueueCount()
		}
	}
	return n
}

// reclaimed returns how many expired items lazy expiry has removed.
func (st *store) reclaimed() uint64 { return st.expiredReclaimed }

// rejected returns how many Set calls the eviction policy refused, so
// operators can watch admission pressure. Slab mode has no admission policy
// of its own and reports 0.
func (st *store) rejected() uint64 {
	if st.policy != nil {
		_, rej := st.policyLifetime()
		return st.rejectedBase + rej
	}
	return st.rejectedBase
}

// restore re-applies one recovered journal op through the configured
// eviction policy, so CAMP's queues and heap are rebuilt with the costs the
// original run learned. Sets the policy now refuses (e.g. the server was
// restarted with less memory) are skipped, mirroring live admission.
func (st *store) restore(op persist.Op) error {
	switch op.Kind {
	case persist.KindSet:
		st.setAbs(op.Key, op.Value, op.Flags, op.ExpiresAt(), op.Cost)
	case persist.KindSetPrio:
		st.setAbsPrio(op.Key, op.Value, op.Flags, op.ExpiresAt(), op.Cost, op.Priority, op.Class, true)
	case persist.KindDelete:
		st.delete(op.Key)
	case persist.KindTouch:
		if it, ok := st.items[op.Key]; ok {
			st.touchResident(it, op.ExpiresAt())
		}
	case persist.KindFlush:
		// Keyless flushes clear the whole store (the only form before
		// multi-tenancy); keyed ones clear one tenant's namespace.
		if op.Key == "" {
			st.flush()
		} else {
			st.flushTenant(op.Key)
		}
	case persist.KindPosition:
		// Replication bookkeeping, not data; the recovery wrapper that
		// cares about positions tracks them before calling restore.
	case persist.KindScale:
		// The scale only ever widens, so installing one source's scale in
		// every policy is safe and keeps tenant replay order-independent.
		if ps, ok := st.policy.(cache.PriorityScaled); ok {
			ps.RestorePriorityScale(op.Scale)
		}
		for _, ts := range st.tens {
			if ps, ok := ts.policy.(cache.PriorityScaled); ok {
				ps.RestorePriorityScale(op.Scale)
			}
		}
	case persist.KindTenant:
		if reg := st.cfg.tenants; reg != nil {
			t, _ := reg.ensure(op.Key)
			t.reserve.Store(op.Reserve)
			st.ensureTenant(op.Key)
		}
	default:
		return fmt.Errorf("kvserver: unknown journal op kind %d", op.Kind)
	}
	return nil
}

// collectOps copies every live entry out as a snapshot op, in
// eviction-priority order whenever the policy can enumerate it, and — for
// the priority policies (CAMP, GDS) — with each entry's exact priority
// offset (H − L) as a KindSetPrio record, so replaying the ops rebuilds not
// just the queues' order but the live cross-queue eviction schedule,
// byte-exact even after eviction churn (snapshot format v2; ROADMAP's
// "exact snapshot priorities"). Pure-recency layouts (LRU, slab classes)
// stay KindSet: their order is their entire state. The caller holds the
// shard mutex only for this copy-out; the returned ops alias the stored
// value slices, which is safe to serialize after unlocking because the
// server never mutates a stored value in place — every rewrite installs a
// fresh slice. Arena-mode values are the exception: the compactor DOES move
// record bytes, so they are copied out here, under the lock.
func (st *store) collectOps() []persist.Op {
	ops := make([]persist.Op, 0, len(st.items))
	add := func(key string, cost int64, prio, class uint64, kind persist.Kind) bool {
		it, ok := st.items[key]
		if !ok {
			return true
		}
		value := it.value
		if st.arena != nil {
			value = append([]byte(nil), st.arena.Value(it.aref)...)
		}
		ops = append(ops, persist.Op{
			Kind:     kind,
			Key:      key,
			Value:    value,
			Flags:    it.flags,
			Expires:  persist.ExpiresFrom(it.expiresAt),
			Size:     st.itemSize(key, value),
			Cost:     cost,
			Priority: prio,
			Class:    class,
		})
		return true
	}
	visit := func(e cache.Entry) bool { return add(e.Key, e.Cost, 0, 0, persist.KindSet) }
	switch {
	case st.slab != nil:
		// Per-class LRU order, classes ascending: each class queue is
		// rebuilt in its original order on load.
		for _, lru := range st.classLRU {
			lru.VisitEvictionOrder(visit)
		}
	default:
		// Tenant identity and quotas go first, so replay re-creates every
		// tenant — including ones with no resident keys — before any entry
		// lands or any keyed flush needs a namespace to clear.
		if reg := st.cfg.tenants; reg != nil {
			for _, t := range reg.list() {
				if t.prefix == "" && t.reserve.Load() == 0 {
					continue // the bare default tenant is implicit
				}
				ops = append(ops, persist.Op{Kind: persist.KindTenant, Key: t.name, Reserve: t.reserve.Load()})
			}
		}
		emitPolicy := func(p cache.Policy) {
			if po, ok := p.(cache.PriorityOrdered); ok {
				// The adaptive scale goes first so replay buckets every
				// subsequent Set with the live workload's learned state.
				if ps, ok := p.(cache.PriorityScaled); ok {
					ops = append(ops, persist.Op{Kind: persist.KindScale, Scale: ps.PriorityScale()})
				}
				po.VisitEvictionPriority(func(e cache.Entry, prio, class uint64) bool {
					return add(e.Key, e.Cost, prio, class, persist.KindSetPrio)
				})
			} else if eo, ok := p.(cache.EvictionOrdered); ok {
				eo.VisitEvictionOrder(visit)
			} else if len(st.tens) == 0 {
				for key := range st.items {
					if _, meta, ok := st.peek(key); ok {
						add(key, meta.Cost, 0, 0, persist.KindSet)
					}
				}
			}
		}
		emitPolicy(st.policy)
		names := make([]string, 0, len(st.tens))
		for name := range st.tens {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			emitPolicy(st.tens[name].policy)
		}
	}
	return ops
}

// collectOpsFiltered is collectOps restricted to a tenant subset, the shape a
// tenant-filtered FULLSYNC bootstrap ships: the subset's entries and
// KindTenant records, plus every KindScale record — the adaptive scale only
// ever widens, so installing the source's scale in all of the follower's
// policies is safe (mirroring restore's KindScale handling) and keeps the
// filter stateless. names must be sorted/deduped (Config validation does).
func (st *store) collectOpsFiltered(names []string) []persist.Op {
	ops := st.collectOps()
	out := ops[:0]
	for _, op := range ops {
		switch op.Kind {
		case persist.KindTenant:
			if tenantInSubset(names, op.Key) {
				out = append(out, op)
			}
		case persist.KindScale:
			out = append(out, op)
		default:
			if keyInAnyTenant(names, op.Key) {
				out = append(out, op)
			}
		}
	}
	return out
}

// emitOps writes the ops collected by collectOps, the shape
// persist.Compaction.Commit and persist.WriteSnapshotFile expect.
func emitOps(ops []persist.Op) func(write func(persist.Op) error) error {
	return func(write func(persist.Op) error) error {
		for _, op := range ops {
			if err := write(op); err != nil {
				return err
			}
		}
		return nil
	}
}
