package kvserver

import (
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"camp/internal/kvclient"
	"camp/internal/persist"
)

// TestFlushAllTenantsKeepsTenantRouting is the regression test for the
// flush_all all isolation escape: the global flush rebuilt each shard's store
// from scratch, and the empty per-store tenant table made every later
// namespaced key route into the default tenant's policy — no reserves, no
// arbitration, wrong accounting — until a restart. Post-flush writes must
// land under their own tenant.
func TestFlushAllTenantsKeepsTenantRouting(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20, Shards: 2})
	gold, err := kvclient.DialWithTenant(s.Addr(), "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	def := dial(t, s)

	if err := gold.Set("pre", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := def.FlushAllTenants(); err != nil {
		t.Fatal(err)
	}

	// The moment of the bug: these namespaced writes used to land in the
	// default policy.
	for i := 0; i < 6; i++ {
		if err := gold.Set(fmt.Sprintf("post%d", i), []byte("gold-v"), 0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := def.StatsTenants()
	if err != nil {
		t.Fatal(err)
	}
	if ts["tenant:gold:items"] != "6" {
		t.Fatalf("gold items after flush_all all = %q, want 6 (keys escaped to another policy)",
			ts["tenant:gold:items"])
	}
	if ts["tenant:default:items"] != "0" || ts["tenant:default:bytes"] != "0" {
		t.Fatalf("default tenant absorbed gold's keys: items=%q bytes=%q",
			ts["tenant:default:items"], ts["tenant:default:bytes"])
	}
	if v, ok, err := gold.Get("post0"); err != nil || !ok || string(v) != "gold-v" {
		t.Fatalf("gold read after flush = %q/%v/%v", v, ok, err)
	}
}

// TestFlushAllTenantsRecoveryReplay covers the replay half of the same bug: a
// journal holding namespaced sets AFTER a keyless KindFlush record must
// rebuild per-tenant state on restart, not funnel those keys into the default
// policy during recovery.
func TestFlushAllTenantsRecoveryReplay(t *testing.T) {
	cfg := Config{
		MemoryBytes: 1 << 20,
		Shards:      2,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncAlways, Logf: t.Logf},
	}
	s1 := startServer(t, cfg)
	gold, err := kvclient.DialWithTenant(s1.Addr(), "gold")
	if err != nil {
		t.Fatal(err)
	}
	silver, err := kvclient.DialWithTenant(s1.Addr(), "silver")
	if err != nil {
		t.Fatal(err)
	}
	def := dial(t, s1)

	if err := gold.Set("a", []byte("old"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := def.FlushAllTenants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("b%d", i)
		if err := gold.Set(k, []byte("g"), 0, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := silver.Set(k, []byte("s"), 0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	wantState := captureState(s1)
	wantNames, _, wantTotals := tenantSnapshot(s1)
	gold.Close()
	silver.Close()
	s1.Kill() // crash: recovery replays KindFlush then the namespaced sets

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	assertStateEqual(t, wantState, captureState(s2))
	gotNames, _, gotTotals := tenantSnapshot(s2)
	if !reflect.DeepEqual(wantNames, gotNames) {
		t.Errorf("tenant set after replay = %v, want %v", gotNames, wantNames)
	}
	if !reflect.DeepEqual(wantTotals.items, gotTotals.items) {
		t.Errorf("per-tenant items after replay = %v, want %v", gotTotals.items, wantTotals.items)
	}
	if !reflect.DeepEqual(wantTotals.used, gotTotals.used) {
		t.Errorf("per-tenant bytes after replay = %v, want %v", gotTotals.used, wantTotals.used)
	}
	if gotTotals.items["default"] != 0 {
		t.Errorf("default tenant holds %d items after replay, want 0", gotTotals.items["default"])
	}
}

// TestMemshareIsolationSurvivesGlobalFlush re-runs the Memshare isolation
// acceptance scenario after a mid-run flush_all all: the reserve arbitration
// must still protect the quiet tenant — before the fix, the flush silently
// disabled per-tenant policies and the churner could evict the quiet
// tenant's whole working set.
func TestMemshareIsolationSurvivesGlobalFlush(t *testing.T) {
	s := startServer(t, Config{
		MemoryBytes:    256 << 10,
		Shards:         1,
		DisableIQ:      true,
		TenantReserves: map[string]int64{"quiet": 96 << 10},
	})
	// Touch both tenants, then pull the rug: the global flush used to zero
	// the per-store tenant tables for good.
	warm, err := kvclient.DialWithTenant(s.Addr(), "churn")
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Set("warmup", []byte("x"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := warm.FlushAllTenants(); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	if rate := memshareQuietHitRate(t, s, true); rate < 0.99 {
		t.Errorf("quiet hit rate after flush_all all = %v, want ~1 (reserve must still hold)", rate)
	}
	ts, err := dial(t, s).StatsTenants()
	if err != nil {
		t.Fatal(err)
	}
	if ev := ts["tenant:quiet:evictions"]; ev != "0" {
		t.Errorf("quiet tenant evictions after flush_all all = %q, want 0", ev)
	}
	if churnEv, _ := strconv.ParseInt(ts["tenant:churn:evictions"], 10, 64); churnEv == 0 {
		t.Error("churner saw no evictions: workload not evict-heavy, test proves nothing")
	}
}

// TestAppendPrependMaxValueRecheck pins the size-gate fix: the handler's
// limit check sees only the appended delta, so the concatenated value must be
// re-checked — an over-limit result answers SERVER_ERROR, stores nothing,
// journals nothing, and the original value survives a warm restart.
func TestAppendPrependMaxValueRecheck(t *testing.T) {
	cfg := Config{
		MemoryBytes:   1 << 20,
		MaxValueBytes: 8,
		Persist:       &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncAlways, Logf: t.Logf},
	}
	s1 := startServer(t, cfg)
	c := dial(t, s1)
	if err := c.Set("k", []byte("12345"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	// The 4-byte delta passes the handler's gate; 5+4 exceeds the limit.
	if ok, err := c.Append("k", []byte("6789")); ok || !errors.Is(err, kvclient.ErrServer) {
		t.Fatalf("oversized append = %v/%v, want SERVER_ERROR", ok, err)
	}
	if ok, err := c.Prepend("k", []byte("0000")); ok || !errors.Is(err, kvclient.ErrServer) {
		t.Fatalf("oversized prepend = %v/%v, want SERVER_ERROR", ok, err)
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || string(v) != "12345" {
		t.Fatalf("value after rejected concat = %q/%v/%v, want 12345", v, ok, err)
	}
	// A fitting append still works.
	if ok, err := c.Append("k", []byte("678")); !ok || err != nil {
		t.Fatalf("fitting append = %v/%v", ok, err)
	}

	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	want := map[string]expectedItem{"k": {value: "12345678", cost: 1}}
	assertStateEqual(t, want, captureState(s2))
}

// TestTouchSweepsExpiredAndSamplesLock pins the touch-path parity fix: touch
// now opportunistically reclaims expired neighbors and feeds the shard's
// lock-hold histogram, like every other mutating verb.
func TestTouchSweepsExpiredAndSamplesLock(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20, Shards: 1})
	c := dial(t, s)
	for i := 0; i < 32; i++ {
		if err := c.Set(fmt.Sprintf("ttl%02d", i), []byte("v"), 0, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Set("durable", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	sh := s.shards[0]
	sh.mu.Lock()
	lockBefore := sh.lockHist.Snapshot().Count
	sh.mu.Unlock()
	time.Sleep(1100 * time.Millisecond)
	for i := 0; i < 16; i++ {
		if ok, err := c.Touch("durable", 60); err != nil || !ok {
			t.Fatalf("touch = %v/%v", ok, err)
		}
	}
	sh.mu.Lock()
	reclaimed := sh.store.reclaimed()
	lockAfter := sh.lockHist.Snapshot().Count
	sh.mu.Unlock()
	if reclaimed == 0 {
		t.Error("touch never swept an expired neighbor")
	}
	if lockAfter <= lockBefore {
		t.Errorf("touch never sampled the lock histogram (%d -> %d)", lockBefore, lockAfter)
	}
}

// TestArithBadKeyBeforeReadOnlyGate pins handler ordering: a malformed
// (NUL-bearing) arith key is a client error on any server, replica or not —
// the key check runs before the read-only gate, matching the store path.
func TestArithBadKeyBeforeReadOnlyGate(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	s.readOnly.Store(true)
	conn := rawDial(t, s)
	defer conn.Close()
	if got := sendLine(t, conn, "incr a\x00b 1"); got != "CLIENT_ERROR bad key" {
		t.Fatalf("NUL-key incr on read-only server = %q, want CLIENT_ERROR bad key", got)
	}
	if got := sendLine(t, conn, "incr ok 1"); !strings.HasPrefix(got, "SERVER_ERROR replica is read-only") {
		t.Fatalf("valid incr on read-only server = %q, want read-only SERVER_ERROR", got)
	}
}
