package kvserver

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"camp/internal/kvclient"
)

// startServer boots a server with the given config and registers cleanup.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dial(t *testing.T, s *Server) *kvclient.Client {
	t.Helper()
	c, err := kvclient.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero memory must error")
	}
	if _, err := New(Config{MemoryBytes: 1 << 20, Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy must error")
	}
	if _, err := New(Config{MemoryBytes: 1 << 20, Mode: "bogus"}); err == nil {
		t.Fatal("unknown mode must error")
	}
	if _, err := New(Config{MemoryBytes: 100, Mode: ModeSlab}); err == nil {
		t.Fatal("slab mode below one slab must error")
	}
}

func TestSetGetDeleteRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{MemoryBytes: 1 << 20, Policy: "camp"},
		{MemoryBytes: 1 << 20, Policy: "lru"},
		{MemoryBytes: 1 << 20, Policy: "gds"},
		{MemoryBytes: 1 << 21, Mode: ModeSlab, SlabSize: 1 << 16},
		{MemoryBytes: 1 << 20, Policy: "camp", Mode: ModeBuddy},
	} {
		name := cfg.Policy + "/" + cfg.Mode
		t.Run(name, func(t *testing.T) {
			s := startServer(t, cfg)
			c := dial(t, s)

			if _, ok, err := c.Get("nope"); err != nil || ok {
				t.Fatalf("Get(miss) = %v, %v", ok, err)
			}
			if err := c.Set("greeting", []byte("hello world"), 42, 0, 10); err != nil {
				t.Fatal(err)
			}
			v, ok, err := c.Get("greeting")
			if err != nil || !ok || string(v) != "hello world" {
				t.Fatalf("Get = %q, %v, %v", v, ok, err)
			}
			line, found, err := c.Debug("greeting")
			if err != nil || !found {
				t.Fatalf("Debug = %v, %v", found, err)
			}
			if !strings.Contains(line, "cost=10") || !strings.Contains(line, "flags=42") {
				t.Fatalf("Debug line = %q", line)
			}
			if ok, err := c.Delete("greeting"); err != nil || !ok {
				t.Fatalf("Delete = %v, %v", ok, err)
			}
			if ok, err := c.Delete("greeting"); err != nil || ok {
				t.Fatalf("second Delete = %v, %v", ok, err)
			}
			if _, ok, _ := c.Get("greeting"); ok {
				t.Fatal("deleted key still readable")
			}
		})
	}
}

func TestMultiGet(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	c := dial(t, s)
	for i := 0; i < 5; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)), 0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.MultiGet("k0", "k2", "missing", "k4")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got["k0"]) != "v0" || string(got["k2"]) != "v2" || string(got["k4"]) != "v4" {
		t.Fatalf("MultiGet = %v", got)
	}
}

// TestIQCostDerivation verifies the §4 IQ behavior: the elapsed time between
// a get miss and the subsequent set becomes the key's cost.
func TestIQCostDerivation(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	c := dial(t, s)
	if _, ok, err := c.Get("slow"); err != nil || ok {
		t.Fatalf("expected miss, got %v %v", ok, err)
	}
	time.Sleep(30 * time.Millisecond) // the "computation"
	if err := c.Set("slow", []byte("result"), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	line, found, err := c.Debug("slow")
	if err != nil || !found {
		t.Fatal(err)
	}
	var cost int64
	for _, f := range strings.Fields(line) {
		if strings.HasPrefix(f, "cost=") {
			fmt.Sscanf(f, "cost=%d", &cost)
		}
	}
	// ~30ms in microseconds, with generous slack for CI jitter.
	if cost < 20000 || cost > 10_000_000 {
		t.Fatalf("IQ-derived cost = %dus, want ~30000", cost)
	}
	// A set without a preceding miss gets the default cost 1.
	if err := c.Set("fast", []byte("x"), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	line, _, err = c.Debug("fast")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "cost=1 ") && !strings.HasSuffix(line, "cost=1 flags=0") && !strings.Contains(line, "cost=1 flags") {
		t.Fatalf("default cost line = %q", line)
	}
}

func TestIQDisabled(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20, DisableIQ: true})
	c := dial(t, s)
	c.Get("k")
	time.Sleep(10 * time.Millisecond)
	if err := c.Set("k", []byte("v"), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	line, _, err := c.Debug("k")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "cost=1 ") && !strings.Contains(line, "cost=1 flags") {
		t.Fatalf("cost should default to 1 with IQ off: %q", line)
	}
}

// TestCostAwareEviction shows the server preferring to keep expensive items
// under CAMP but not under LRU.
func TestCostAwareEviction(t *testing.T) {
	run := func(policy string) bool {
		cfg := Config{MemoryBytes: 4096, Policy: policy, ItemOverhead: 1}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		c, err := kvclient.Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()

		if err := c.Set("gold", make([]byte, 100), 0, 0, 1_000_000); err != nil {
			t.Fatal(err)
		}
		// Cheap churn far beyond capacity.
		for i := 0; i < 200; i++ {
			if err := c.Set(fmt.Sprintf("c%d", i), make([]byte, 100), 0, 0, 1); err != nil {
				t.Fatal(err)
			}
		}
		_, ok, err := c.Get("gold")
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if !run("camp") {
		t.Error("CAMP server should retain the expensive item through cheap churn")
	}
	if run("lru") {
		t.Error("LRU server should have evicted the expensive item")
	}
}

func TestTTLExpiry(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	c := dial(t, s)
	if err := c.Set("ephemeral", []byte("x"), 0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("ephemeral"); !ok {
		t.Fatal("fresh item should be readable")
	}
	time.Sleep(1100 * time.Millisecond)
	if _, ok, _ := c.Get("ephemeral"); ok {
		t.Fatal("expired item should miss")
	}
}

func TestStatsAndFlush(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	c := dial(t, s)
	c.Set("a", []byte("1"), 0, 0, 1)
	c.Get("a")
	c.Get("b")
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["cmd_get"] != "2" || stats["get_hits"] != "1" || stats["get_misses"] != "1" {
		t.Fatalf("stats = %v", stats)
	}
	if stats["curr_items"] != "1" || stats["policy"] != "camp" {
		t.Fatalf("stats = %v", stats)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("a"); ok {
		t.Fatal("flush_all should empty the cache")
	}
	stats, _ = c.Stats()
	if stats["curr_items"] != "0" {
		t.Fatalf("curr_items after flush = %v", stats["curr_items"])
	}
}

func TestVersionAndUnknownCommand(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	c := dial(t, s)
	v, err := c.Version()
	if err != nil || !strings.Contains(v, "camp-kvs") {
		t.Fatalf("Version = %q, %v", v, err)
	}
	// Raw connection for protocol-level checks.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "bogus command\r\n")
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(buf[:n]); got != "ERROR\r\n" {
		t.Fatalf("unknown command response = %q", got)
	}
}

func TestMalformedSet(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	// Commands whose <bytes> field is missing or unparsable leave the stream
	// position unknowable, so the server replies and then closes, as
	// memcached does. Each needs its own connection.
	for _, cmd := range []string{
		"set onlykey\r\n",
		"set k 0 0 -3\r\n",
		"set k 0 0 notanum\r\n",
	} {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(conn, cmd)
		buf := make([]byte, 128)
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(buf[:n]), "CLIENT_ERROR") {
			t.Fatalf("cmd %q: response %q", cmd, buf[:n])
		}
		// The connection must now be closed: the next read reports EOF
		// rather than hanging or echoing payload-parsed-as-commands.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err == nil {
			t.Fatalf("cmd %q: connection should be closed after the error", cmd)
		}
		conn.Close()
	}
	// With a parsable <bytes>, the payload is drained and the connection
	// survives.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "set k notanum 0 5\r\nhello\r\n")
	buf := make([]byte, 128)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf[:n]), "CLIENT_ERROR") {
		t.Fatalf("bad-flags set: response %q", buf[:n])
	}
	fmt.Fprint(conn, "version\r\n")
	n, err = conn.Read(buf)
	if err != nil || !strings.HasPrefix(string(buf[:n]), "VERSION") {
		t.Fatalf("connection unusable after drained malformed set: %q, %v", buf[:n], err)
	}
}

// TestMalformedSetKeepsStreamSync is the protocol-desync regression: a
// malformed storage command whose payload looks like protocol must not have
// that payload parsed as commands. The drained bytes here spell "get good",
// which the old code would have executed, answering the real get twice.
func TestMalformedSetKeepsStreamSync(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprint(conn, "set good 0 0 2\r\nhi\r\n")
	if line, _ := r.ReadString('\n'); line != "STORED\r\n" {
		t.Fatalf("set good = %q", line)
	}
	// Bad flags, valid bytes=10: payload is "get good\r\n".
	fmt.Fprint(conn, "set k nope 0 10\r\nget good\r\n\r\n")
	if line, _ := r.ReadString('\n'); !strings.HasPrefix(line, "CLIENT_ERROR") {
		t.Fatalf("malformed set = %q", line)
	}
	// The very next reply must belong to this get — exactly one VALUE block.
	fmt.Fprint(conn, "get good\r\n")
	if line, _ := r.ReadString('\n'); line != "VALUE good 0 2\r\n" {
		t.Fatalf("get after malformed set = %q", line)
	}
	if line, _ := r.ReadString('\n'); line != "hi\r\n" {
		t.Fatalf("value = %q", line)
	}
	if line, _ := r.ReadString('\n'); line != "END\r\n" {
		t.Fatalf("end = %q", line)
	}
	// And the stream stays aligned for the next command.
	fmt.Fprint(conn, "version\r\n")
	if line, _ := r.ReadString('\n'); !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("version after resync = %q", line)
	}
}

// TestMalformedSetBareLFDrain pins the drain against bare-LF framing: the
// data block of a malformed set terminated with "\n" alone must be drained
// by parsing the terminator, not by assuming two CRLF bytes — a fixed +2
// would eat the first byte of the next command.
func TestMalformedSetBareLFDrain(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprint(conn, "set k nope 0 5\nhello\nversion\n")
	if line, _ := r.ReadString('\n'); !strings.HasPrefix(line, "CLIENT_ERROR") {
		t.Fatalf("malformed LF set = %q", line)
	}
	if line, _ := r.ReadString('\n'); !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("command after LF drain = %q — the drain ate into the next command", line)
	}
}

// TestNoreplyErrorsSuppressed pins memcached's noreply contract: noreply
// suppresses the response even when the command is malformed, so a
// pipelining client never reads a stale error as the answer to its next
// command.
func TestNoreplyErrorsSuppressed(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprint(conn,
		"incr k notanum noreply\r\n"+
			"touch k soon noreply\r\n"+
			"delete a b noreply\r\n"+
			"set k nope 0 2 noreply\r\nhi\r\n"+
			"version\r\n")
	if line, _ := r.ReadString('\n'); !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("first reply after noreply errors = %q, want VERSION", line)
	}
}

// TestLineTooLong pins the oversized-command-line behavior: the server
// reports CLIENT_ERROR line too long and closes, instead of either
// buffering without bound (the old reader) or dropping the connection with
// no explanation.
func TestLineTooLong(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "get %s\r\n", strings.Repeat("k", 10000))
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "CLIENT_ERROR line too long") {
		t.Fatalf("oversized line reply = %q, %v", line, err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("connection should close after an oversized line")
	}
}

// TestFlushPreservesLifetimeStats pins that flush_all does not zero the
// lifetime eviction counter, even though it rebuilds the policy object.
func TestFlushPreservesLifetimeStats(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 4096, Policy: "lru", ItemOverhead: 1})
	c := dial(t, s)
	for i := 0; i < 100; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), make([]byte, 100), 0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	before, _ := strconv.Atoi(stats["evictions"])
	if before == 0 {
		t.Fatal("workload should have caused evictions")
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	stats, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	after, _ := strconv.Atoi(stats["evictions"])
	if after != before {
		t.Fatalf("evictions = %d after flush, want %d preserved", after, before)
	}
}

// TestStrictLineTerminators pins the terminator grammar: "\n" and "\r\n"
// end a line, while extra '\r' bytes are content — the old
// TrimRight("\r\n") reader accepted "foo\r\r\n" and any run of \r/\n after
// a data block as a clean chunk end.
func TestStrictLineTerminators(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})

	// Bare-LF framing works end to end.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprint(conn, "set lf 0 0 2\nok\nget lf\n")
	if line, _ := r.ReadString('\n'); line != "STORED\r\n" {
		t.Fatalf("LF set = %q", line)
	}
	if line, _ := r.ReadString('\n'); line != "VALUE lf 0 2\r\n" {
		t.Fatalf("LF get = %q", line)
	}

	// A data block terminated by "\r\r\n" is a bad chunk: the server
	// reports it and closes, rather than treating the run as clean.
	conn2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprint(conn2, "set k 0 0 3\r\nabc\r\r\n")
	buf := make([]byte, 128)
	n, err := conn2.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(buf[:n]); !strings.HasPrefix(got, "CLIENT_ERROR bad data chunk") {
		t.Fatalf("\\r\\r\\n chunk end = %q", got)
	}
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn2.Read(buf); err == nil {
		t.Fatal("connection should close after a bad data chunk")
	}

	// A command line ending "\r\r\n" keeps its extra '\r' as content: the
	// key becomes "k\r", which simply misses — it is not silently cleaned
	// to "k".
	conn3, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	r3 := bufio.NewReader(conn3)
	fmt.Fprint(conn3, "set k 0 0 1\r\nv\r\nget k\r\r\n")
	if line, _ := r3.ReadString('\n'); line != "STORED\r\n" {
		t.Fatalf("set = %q", line)
	}
	if line, _ := r3.ReadString('\n'); line != "END\r\n" {
		t.Fatalf("get with trailing \\r should miss, got %q", line)
	}
}

func TestOversizedValueRejected(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20, MaxValueBytes: 64})
	c := dial(t, s)
	err := c.Set("big", make([]byte, 128), 0, 0, 1)
	if err == nil {
		t.Fatal("oversized value should be rejected")
	}
	// The connection must remain usable (payload drained).
	if err := c.Set("ok", []byte("x"), 0, 0, 1); err != nil {
		t.Fatalf("connection broken after oversized set: %v", err)
	}
}

func TestClientDisconnectMidCommand(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Announce a 100-byte value but hang up after 10 bytes.
	fmt.Fprintf(conn, "set k 0 0 100\r\n0123456789")
	conn.Close()
	// The server must survive; prove it with a fresh client.
	time.Sleep(20 * time.Millisecond)
	c := dial(t, s)
	if err := c.Set("alive", []byte("yes"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get("alive"); !ok || string(v) != "yes" {
		t.Fatal("server did not survive mid-command disconnect")
	}
}

func TestNoreply(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "set k 0 0 2 7 noreply\r\nhi\r\nget k\r\n")
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := string(buf[:n])
	if strings.Contains(got, "STORED") {
		t.Fatalf("noreply set must not answer: %q", got)
	}
	if !strings.Contains(got, "VALUE k 0 2") {
		t.Fatalf("get after noreply set = %q", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20, Policy: "camp"})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := kvclient.Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-k%d", id, i%20)
				if _, ok, err := c.Get(key); err != nil {
					errs <- err
					return
				} else if !ok {
					if err := c.Set(key, []byte(key), 0, 0, int64(i%100+1)); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSlabCalcificationEndToEnd drives the slab-mode server into
// calcification and verifies random slab eviction rescues it.
func TestSlabCalcificationEndToEnd(t *testing.T) {
	s := startServer(t, Config{
		MemoryBytes:  4 << 14, // 4 slabs of 16 KiB
		Mode:         ModeSlab,
		SlabSize:     1 << 14,
		ItemOverhead: 1,
	})
	c := dial(t, s)
	// Fill all slabs with small items.
	for i := 0; i < 700; i++ {
		if err := c.Set(fmt.Sprintf("small%d", i), make([]byte, 80), 0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	// A large item needs a new class; only random slab eviction can help.
	if err := c.Set("large", make([]byte, 8000), 0, 0, 1); err != nil {
		t.Fatalf("large set should trigger random slab eviction, got %v", err)
	}
	if _, ok, _ := c.Get("large"); !ok {
		t.Fatal("large item should be resident")
	}
}
