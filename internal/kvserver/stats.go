package kvserver

import "sync/atomic"

// counters are the server-wide operation counts. They are atomics rather
// than a mutex-guarded map so the request path never shares a lock across
// shards: a shard only ever touches its own mutex plus these cache-line
// increments.
type counters struct {
	cmdGet, cmdSet, cmdAdd, cmdReplace, cmdAppend, cmdPrepend atomic.Uint64
	cmdIncr, cmdDecr, cmdTouch, cmdDelete                     atomic.Uint64
	getHits, getMisses                                        atomic.Uint64
	setRejected                                               atomic.Uint64
	persistErrors, persistSnapshots                           atomic.Uint64
	replSyncsServed, replFullSyncsServed, replAppliedOps      atomic.Uint64

	// Blast-radius accounting: handler panics recovered (that connection
	// closed, the server survived) and connections refused at the -max-conns
	// accept limit.
	connPanics, acceptRejected atomic.Uint64

	// Connection and socket accounting (memcached's standard identity
	// stats). currConns is signed: it decrements on close.
	currConns                           atomic.Int64
	totalConns, bytesRead, bytesWritten atomic.Uint64
}

// storeCounter maps a storage verb to its counter. Unknown verbs never
// reach it (dispatch filters them).
func (c *counters) storeCounter(cmd storeCmd) *atomic.Uint64 {
	switch cmd {
	case cmdAdd:
		return &c.cmdAdd
	case cmdReplace:
		return &c.cmdReplace
	case cmdAppend:
		return &c.cmdAppend
	case cmdPrepend:
		return &c.cmdPrepend
	}
	return &c.cmdSet
}

// lines renders the counter STAT lines in a stable order.
func (c *counters) lines() []statLine {
	return []statLine{
		{"cmd_get", c.cmdGet.Load()},
		{"cmd_set", c.cmdSet.Load()},
		{"cmd_add", c.cmdAdd.Load()},
		{"cmd_replace", c.cmdReplace.Load()},
		{"cmd_append", c.cmdAppend.Load()},
		{"cmd_prepend", c.cmdPrepend.Load()},
		{"cmd_incr", c.cmdIncr.Load()},
		{"cmd_decr", c.cmdDecr.Load()},
		{"cmd_touch", c.cmdTouch.Load()},
		{"cmd_delete", c.cmdDelete.Load()},
		{"get_hits", c.getHits.Load()},
		{"get_misses", c.getMisses.Load()},
		{"set_rejected", c.setRejected.Load()},
		{"conn_panics", c.connPanics.Load()},
		{"accept_rejected_maxconns", c.acceptRejected.Load()},
	}
}

type statLine struct {
	key string
	val uint64
}
