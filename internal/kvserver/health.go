// Persistence health: the background prober that walks degraded shards back
// to healthy.
//
// A shard degrades (shard.enterDegraded) when a journal append or a snapshot
// cycle fails: it detaches the broken journal handle and keeps serving every
// read and write from memory, with positions frozen and persist_degraded
// raised in stats and metrics. The prober is the only way back. On a jittered
// exponential backoff it re-tests each degraded shard's data directory with a
// real write+fsync+remove through the same (possibly fault-injected)
// filesystem the journal uses; only when the probe passes does it attempt the
// healing compaction — a clean snapshot of the in-memory state onto a fresh
// journal segment, which re-establishes the snapshot+tail recovery invariant
// and clears the degraded flag.
package kvserver

import (
	"math/rand"
	"time"
)

// Default probe backoff bounds (PersistConfig.ProbeMin/ProbeMax override).
const (
	defaultProbeMin = 500 * time.Millisecond
	defaultProbeMax = 10 * time.Second
)

// jitter spreads d uniformly over [d/2, d]: full fixed intervals synchronize
// retries across shards — and across servers restarted by the same incident —
// which is exactly the thundering herd a backoff exists to avoid.
func jitter(rnd *rand.Rand, d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rnd.Int63n(int64(d)/2+1))
}

// wakeProber nudges the prober out of its idle wait when a shard degrades.
// Non-blocking: a pending wakeup is as good as two.
func (s *Server) wakeProber() {
	if s.probeC == nil {
		return
	}
	select {
	case s.probeC <- struct{}{}:
	default:
	}
}

// anyDegraded reports whether at least one shard is serving cache-only.
func (s *Server) anyDegraded() bool {
	for _, sh := range s.shards {
		if sh.degraded.Load() {
			return true
		}
	}
	return false
}

// degradedShards counts shards currently serving cache-only, for the
// persist_degraded stat and the per-shard gauge.
func (s *Server) degradedShards() int64 {
	var n int64
	for _, sh := range s.shards {
		if sh.degraded.Load() {
			n++
		}
	}
	return n
}

// proberLoop runs for the server's whole life when persistence is on. It
// sleeps until a shard degrades, then probes the degraded set on a jittered
// exponential backoff: every heal resets the backoff (a recovering disk
// deserves fast follow-ups for the remaining shards), every round that
// leaves some shard degraded widens it up to the max.
func (s *Server) proberLoop(min, max time.Duration) {
	defer s.wg.Done()
	if min <= 0 {
		min = defaultProbeMin
	}
	if max < min {
		max = defaultProbeMax
		if max < min {
			max = min
		}
	}
	rnd := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := min
	for {
		if !s.anyDegraded() {
			select {
			case <-s.stopBg:
				return
			case <-s.probeC:
			}
			backoff = min
		}
		t := time.NewTimer(jitter(rnd, backoff))
		select {
		case <-s.stopBg:
			t.Stop()
			return
		case <-t.C:
		}
		if healed := s.probeDegraded(); healed > 0 {
			backoff = min
		} else if backoff *= 2; backoff > max {
			backoff = max
		}
	}
}

// probeDegraded re-tests every degraded shard and heals the ones whose disk
// answers: a passing probe is followed by a clean compaction snapshot, which
// reattaches the journal on a fresh segment and clears the degraded flag
// (shard.runCompaction with heal=true). Returns how many shards healed.
func (s *Server) probeDegraded() (healed int) {
	for i, sh := range s.shards {
		if !sh.degraded.Load() || sh.mgr == nil {
			continue
		}
		if err := sh.mgr.Probe(); err != nil {
			s.logf("kvserver: shard %d probe: %v", i, err)
			continue
		}
		if err := sh.runCompaction(true); err != nil {
			s.logf("kvserver: shard %d heal compaction: %v", i, err)
			continue
		}
		s.logf("kvserver: shard %d healed: journaling resumed on a fresh snapshot", i)
		healed++
	}
	return healed
}
