package kvserver

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"camp/internal/persist"
)

// Data-directory layout. The server owns the root (flock on LOCK) and each
// shard persists independently under its own subdirectory:
//
//	data-dir/
//	  LOCK            server-wide flock; a second server refuses to start
//	  shard-000/      shard 0's snap-*.camp, aof-*.log and LOCK
//	  shard-001/      ...
//
// Two older shapes are migrated in place at open:
//
//   - legacy (pre-sharding): snap-*/aof-* files directly in the root;
//   - a different shard count: shard-NNN dirs whose number does not match
//     the configured -shards (the default tracks GOMAXPROCS, so this happens
//     on any core-count change).
//
// Migration recovers every source read-only into the new in-memory shards,
// stages the new layout as shard-NNN.new dirs each holding a generation-1
// snapshot in eviction order, and then swaps: a MIGRATE marker (recording
// the target count) commits the staged set, sources are deleted, staged dirs
// renamed into place, marker removed. A crash before the marker leaves the
// sources untouched (stray .new dirs are discarded); a crash after it is
// finished from the staged dirs at the next open — at no point is the only
// copy of the data mid-write.
const (
	shardDirPrefix = "shard-"
	stageSuffix    = ".new"
	migrateMarker  = "MIGRATE"
)

func shardDirName(i int) string { return fmt.Sprintf("%s%03d", shardDirPrefix, i) }

// openPersistence acquires the root lock, migrates old layouts, and opens
// one persist.Manager per shard, replaying each shard's journal in parallel.
func (s *Server) openPersistence() error {
	p := s.cfg.Persist
	lock, err := persist.LockDir(p.Dir)
	if err != nil {
		return err
	}
	ok := false
	defer func() {
		if !ok {
			for _, sh := range s.shards {
				if sh.mgr != nil {
					sh.mgr.Close()
					sh.mgr = nil
				}
			}
			lock.Release()
		}
	}()
	s.rootLock = lock

	if err := finishMigration(p.Dir, s.logf); err != nil {
		return err
	}
	legacy, err := persist.HasState(p.Dir)
	if err != nil {
		return err
	}
	oldIdx, err := shardDirIndices(p.Dir)
	if err != nil {
		return err
	}
	if legacy || layoutMismatch(oldIdx, len(s.shards)) {
		if err := s.migrate(p.Dir, legacy, oldIdx); err != nil {
			return err
		}
	}

	// Each shard's journal is self-contained, so recovery parallelizes
	// across shards (and across cores) for a faster warm restart.
	var (
		wg   sync.WaitGroup
		recs = make([]persist.RecoverStats, len(s.shards))
		errs = make([]error, len(s.shards))
	)
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			// Replay data ops through the store; track the replication
			// position on the side (last record wins — it names exactly the
			// ops replayed before it). A flush resets it: flushes mark a
			// replica bootstrap whose stream position is not known until
			// the position record that follows the staged entries.
			apply := func(op persist.Op) error {
				switch op.Kind {
				case persist.KindPosition:
					sh.replPos = op.Pos
					return nil
				case persist.KindFlush:
					// Only the keyless (global) flush marks a bootstrap; a
					// keyed tenant flush is an ordinary data op that leaves
					// the stream position meaningful.
					if op.Key == "" {
						sh.replPos = persist.Position{}
					}
				}
				return sh.store.restore(op)
			}
			mgr, rec, err := persist.Open(persist.Options{
				Dir:        filepath.Join(p.Dir, shardDirName(i)),
				Fsync:      p.Fsync,
				DisableAOF: p.DisableAOF,
				AOFLimit:   p.AOFLimit,
				Logf:       p.Logf,
				FS:         p.FS,
			}, apply)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			sh.mgr = mgr
			recs[i] = rec
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var agg persist.RecoverStats
	for _, rec := range recs {
		agg.SnapshotOps += rec.SnapshotOps
		agg.ReplayedOps += rec.ReplayedOps
		agg.TruncatedBytes += rec.TruncatedBytes
		if rec.Generation > agg.Generation {
			agg.Generation = rec.Generation
		}
	}
	s.recovered = agg
	ok = true
	return nil
}

// layoutMismatch reports whether the on-disk shard dirs are anything other
// than absent or exactly shard-000..shard-(n-1).
func layoutMismatch(idx []int, n int) bool {
	if len(idx) == 0 {
		return false
	}
	if len(idx) != n {
		return true
	}
	for i, v := range idx {
		if v != i {
			return true
		}
	}
	return false
}

// migrate rebuilds the data directory for the configured shard count: every
// source (legacy root files and/or old shard dirs) is recovered read-only
// into the new in-memory shards, the new layout is staged and swapped in,
// and the stores are reset so the per-shard manager opens that follow replay
// the staged snapshots — recovery stays a single code path.
func (s *Server) migrate(dir string, legacy bool, oldIdx []int) error {
	s.logf("kvserver: migrating data dir %s to %d shards (legacy=%v, old dirs=%d)",
		dir, len(s.shards), legacy, len(oldIdx))
	var sources []string
	if legacy {
		sources = append(sources, dir)
	}
	for _, i := range oldIdx {
		sources = append(sources, filepath.Join(dir, shardDirName(i)))
	}
	for _, src := range sources {
		// Each source's op stream covers a disjoint key subset, so a flush
		// record in it clears exactly the keys this source has applied so
		// far — tracked here, deleted from whichever new shard they routed
		// to.
		applied := make(map[string]struct{})
		apply := func(op persist.Op) error {
			switch op.Kind {
			case persist.KindFlush:
				for k := range applied {
					if op.Key != "" && !keyInTenant(op.Key, k) {
						continue // tenant-scoped flush leaves other namespaces
					}
					if err := s.shardFor(k).store.restore(persist.Op{Kind: persist.KindDelete, Key: k}); err != nil {
						return err
					}
					delete(applied, k)
				}
				return nil
			case persist.KindTenant:
				// Tenant records have no key to route by: every new shard
				// learns the tenant and its quota, like scale records.
				for _, sh := range s.shards {
					if err := sh.store.restore(op); err != nil {
						return err
					}
				}
				return nil
			case persist.KindScale:
				// Policy-level state with no key to route by: every new
				// shard inherits the source's learned scale (it only
				// widens, so overlapping sources compose).
				for _, sh := range s.shards {
					if err := sh.store.restore(op); err != nil {
						return err
					}
				}
				return nil
			case persist.KindPosition:
				// Positions are byte offsets into the source layout's
				// journals; they do not survive a re-sharding.
				return nil
			case persist.KindSet, persist.KindSetPrio:
				applied[op.Key] = struct{}{}
			case persist.KindDelete:
				delete(applied, op.Key)
			}
			return s.shardFor(op.Key).store.restore(op)
		}
		if _, err := persist.RecoverDir(src, s.cfg.Persist.Logf, apply); err != nil {
			return fmt.Errorf("kvserver: migrate: recover %s: %w", src, err)
		}
	}

	// Stage the new layout: a generation-1 snapshot per shard, written in
	// eviction order so the warm start is order-faithful.
	for i, sh := range s.shards {
		stage := filepath.Join(dir, shardDirName(i)+stageSuffix)
		if err := os.RemoveAll(stage); err != nil {
			return fmt.Errorf("kvserver: migrate: %w", err)
		}
		if err := os.MkdirAll(stage, 0o755); err != nil {
			return fmt.Errorf("kvserver: migrate: %w", err)
		}
		if _, err := persist.WriteSnapshotFile(persist.SnapshotPath(stage, 1), emitOps(sh.store.collectOps())); err != nil {
			return fmt.Errorf("kvserver: migrate: stage shard %d: %w", i, err)
		}
	}
	if err := writeMarker(dir, len(s.shards)); err != nil {
		return err
	}
	if err := swapStaged(dir, len(s.shards)); err != nil {
		return err
	}
	// Reset the in-memory stores; openPersistence's manager opens replay
	// the staged snapshots into them.
	for _, sh := range s.shards {
		sh.store.flush()
	}
	return nil
}

// finishMigration completes or discards the leftovers of an interrupted
// migration. With no MIGRATE marker, staged dirs are an aborted attempt
// whose sources are intact: discard them. With the marker, the staged set is
// complete and authoritative: redo the swap.
func finishMigration(dir string, logf func(format string, args ...any)) error {
	n, ok, err := readMarker(dir)
	if err != nil {
		return err
	}
	if !ok {
		ents, err := os.ReadDir(dir)
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return fmt.Errorf("kvserver: read data dir: %w", err)
		}
		for _, e := range ents {
			if e.IsDir() && strings.HasPrefix(e.Name(), shardDirPrefix) && strings.HasSuffix(e.Name(), stageSuffix) {
				if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
					return fmt.Errorf("kvserver: discard stale staging dir: %w", err)
				}
			}
		}
		return nil
	}
	logf("kvserver: finishing interrupted migration of %s to %d shards", dir, n)
	return swapStaged(dir, n)
}

// swapStaged commits a staged layout of n shards: legacy root files and old
// shard dirs are deleted, staged dirs renamed into place, and the marker
// removed. It is idempotent — a crash at any point is finished by running it
// again — because a final shard-NNN dir is only ever deleted while its .new
// replacement still exists (or its index is beyond n).
func swapStaged(dir string, n int) error {
	if err := removeLegacyFiles(dir); err != nil {
		return err
	}
	idx, err := shardDirIndices(dir)
	if err != nil {
		return err
	}
	// Old source dirs beyond the new count have no staged replacement.
	for _, i := range idx {
		if i >= n {
			if err := os.RemoveAll(filepath.Join(dir, shardDirName(i))); err != nil {
				return fmt.Errorf("kvserver: migrate: remove old shard dir: %w", err)
			}
		}
	}
	for i := 0; i < n; i++ {
		stage := filepath.Join(dir, shardDirName(i)+stageSuffix)
		if _, err := os.Stat(stage); err != nil {
			if os.IsNotExist(err) {
				continue // already swapped in a previous attempt
			}
			return fmt.Errorf("kvserver: migrate: %w", err)
		}
		final := filepath.Join(dir, shardDirName(i))
		if err := os.RemoveAll(final); err != nil {
			return fmt.Errorf("kvserver: migrate: remove old shard dir: %w", err)
		}
		if err := os.Rename(stage, final); err != nil {
			return fmt.Errorf("kvserver: migrate: swap shard dir: %w", err)
		}
	}
	// Persist the renames BEFORE dropping the marker: nothing orders the
	// directory operations until an fsync, and if the marker unlink reached
	// disk while a rename had not, the next open would classify the
	// still-staged dir as an aborted migration and discard it — the only
	// copy of that shard's data.
	if err := persist.SyncDir(dir); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(dir, migrateMarker)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("kvserver: migrate: remove marker: %w", err)
	}
	return persist.SyncDir(dir)
}

// writeMarker atomically creates the MIGRATE marker recording the target
// shard count — the commit point of a migration.
func writeMarker(dir string, n int) error {
	tmp := filepath.Join(dir, migrateMarker+".tmp")
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("shards %d\n", n)), 0o644); err != nil {
		return fmt.Errorf("kvserver: migrate: write marker: %w", err)
	}
	f, err := os.Open(tmp)
	if err == nil {
		err = f.Sync()
		f.Close()
	}
	if err != nil {
		return fmt.Errorf("kvserver: migrate: sync marker: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, migrateMarker)); err != nil {
		return fmt.Errorf("kvserver: migrate: commit marker: %w", err)
	}
	return persist.SyncDir(dir)
}

func readMarker(dir string) (n int, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, migrateMarker))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("kvserver: read migrate marker: %w", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) != 2 || fields[0] != "shards" {
		return 0, false, fmt.Errorf("kvserver: malformed migrate marker %q", data)
	}
	n, perr := strconv.Atoi(fields[1])
	if perr != nil || n < 1 {
		return 0, false, fmt.Errorf("kvserver: malformed migrate marker %q", data)
	}
	return n, true, nil
}

// shardDirIndices lists the shard-NNN directories in dir, ascending.
// Staging dirs (.new) are not included.
func shardDirIndices(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("kvserver: read data dir: %w", err)
	}
	var idx []int
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), shardDirPrefix) {
			continue
		}
		num := strings.TrimPrefix(e.Name(), shardDirPrefix)
		i, err := strconv.Atoi(num)
		if err != nil || i < 0 || shardDirName(i) != e.Name() {
			continue // not one of ours (includes .new staging dirs)
		}
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx, nil
}

// removeLegacyFiles deletes pre-sharding snapshot/AOF files from the root of
// dir. Their content has already been staged into the new shard dirs.
func removeLegacyFiles(dir string) error {
	if err := persist.RemoveState(dir); err != nil {
		return fmt.Errorf("kvserver: migrate: remove legacy files: %w", err)
	}
	return nil
}
