// The optional -metrics-addr HTTP endpoint: Prometheus text exposition at
// /metrics and the net/http/pprof profiling handlers under /debug/pprof/.
//
// The handlers are mounted on a private mux — never http.DefaultServeMux —
// so embedding a Server cannot leak profiling endpoints into an
// application's own HTTP surface, and two Servers in one process (the
// replication tests) don't fight over registration.
package kvserver

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// startMetricsHTTP binds the metrics listener and starts serving. Called
// from Start when Config.MetricsAddr is set; the goroutine exits when
// stopNetwork closes the http.Server.
func (s *Server) startMetricsHTTP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("kvserver: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.registry.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.metricsLn = ln
	s.metricsSrv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.metricsSrv.Serve(ln)
	}()
	return nil
}

// MetricsAddr returns the bound metrics listen address, or "" when the
// endpoint is off (valid after Start).
func (s *Server) MetricsAddr() string {
	if s.metricsLn == nil {
		return ""
	}
	return s.metricsLn.Addr().String()
}
