package kvserver

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"camp/internal/kvclient"
	"camp/internal/persist"
	"camp/internal/trace"
)

// rawDial opens a plain TCP connection to s for hand-rolled protocol lines.
func rawDial(t *testing.T, s *Server) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// sendLine writes one command line and returns the first response line.
func sendLine(t *testing.T, conn net.Conn, cmd string) string {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "%s\r\n", cmd); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(line, "\r\n")
}

// startReplica boots a follower of p and registers cleanup.
func startReplica(t *testing.T, p *Server, cfg Config) *Server {
	t.Helper()
	cfg.ReplicaOf = p.Addr()
	return startServer(t, cfg)
}

// replCaughtUp reports whether every follower shard is connected and its
// position matches the primary's live journal end.
func replCaughtUp(primary, follower *Server) bool {
	for i, sh := range primary.shards {
		if sh.mgr == nil {
			return false
		}
		info := sh.mgr.Info()
		sr := follower.repl.reps[i]
		sr.mu.Lock()
		ok := sr.connected && sr.gen == info.Generation && sr.off == info.AOFSize
		sr.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// waitCaughtUp polls until the follower has replicated the primary's entire
// journal.
func waitCaughtUp(t *testing.T, primary, follower *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !replCaughtUp(primary, follower) {
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up with the primary")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertStateEqual compares two captured server states key by key.
func assertStateEqual(t *testing.T, want, got map[string]expectedItem) {
	t.Helper()
	if len(got) != len(want) {
		var missing, extra []string
		for k := range want {
			if _, ok := got[k]; !ok {
				missing = append(missing, k)
			}
		}
		for k := range got {
			if _, ok := want[k]; !ok {
				extra = append(extra, k)
			}
		}
		sort.Strings(missing)
		sort.Strings(extra)
		t.Fatalf("state size mismatch: got %d items, want %d (missing %v, extra %v)",
			len(got), len(want), missing, extra)
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("key %q missing", key)
		}
		if g != w {
			t.Fatalf("key %q: got %+v, want %+v", key, g, w)
		}
	}
}

// totalEvictions sums policy evictions across a server's shards.
func totalEvictions(s *Server) uint64 {
	var n uint64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.store.evictions()
		sh.mu.Unlock()
	}
	return n
}

// TestFailoverPromoteWarmReplica is the acceptance test: a 4-shard primary
// serves a trace workload under eviction pressure, a follower bootstraps
// mid-workload from snapshot + AOF, the primary is killed, and the promoted
// follower must hold the exact state — value, flags, expiry, cost — and a
// warm hit rate within 1% of the uninterrupted primary's.
//
// The snapshot is taken before eviction begins, so the follower's exactness
// here never depended on snapshot priorities; since snapshot format v2
// (exact priority offsets) mid-churn snapshots are byte-exact too — that
// case is pinned separately by TestReplicaBootstrapMidChurnFidelity.
func TestFailoverPromoteWarmReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("failover e2e is not a short-mode test")
	}
	mkCfg := func(dir string) Config {
		return Config{
			MemoryBytes: 128 << 10, // smaller than the full key population: phase 2 evicts
			Shards:      4,
			Policy:      "camp",
			DisableIQ:   true,
			Persist:     &PersistConfig{Dir: dir, Fsync: persist.FsyncNo, Logf: t.Logf},
		}
	}
	p := startServer(t, mkCfg(t.TempDir()))
	cp := dial(t, p)

	genCfg := trace.Config{
		Keys:     1200,
		Requests: 4000,
		Seed:     11,
		Size:     trace.SizeUniform(60, 140),
		Cost:     trace.CostChoice(1, 100, 10000),
	}
	g := trace.NewGenerator(genCfg)
	send := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			req, ok := g.Next()
			if !ok {
				return
			}
			if err := cp.Set(req.Key, make([]byte, req.Size), 0, 0, req.Cost); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Phase 1 fits in memory, then a snapshot, then the follower attaches:
	// its bootstrap is genuinely snapshot + AOF, with the eviction-heavy
	// rest of the workload streaming live.
	send(500)
	if n := totalEvictions(p); n != 0 {
		t.Fatalf("phase 1 evicted %d items; the snapshot must predate churn", n)
	}
	p.Snapshot()
	f := startReplica(t, p, mkCfg(t.TempDir()))
	send(3500)
	if n := totalEvictions(p); n == 0 {
		t.Fatal("phase 2 never evicted; the workload must churn")
	}
	waitCaughtUp(t, p, f)

	if n := p.counters.replFullSyncsServed.Load(); n != 4 {
		t.Fatalf("primary served %d full syncs, want one per shard (4)", n)
	}
	for i, sr := range f.repl.reps {
		sr.mu.Lock()
		fullSyncs := sr.fullSyncs
		sr.mu.Unlock()
		if fullSyncs != 1 {
			t.Fatalf("shard %d bootstrapped %d times, want 1", i, fullSyncs)
		}
	}

	measure := func(c *kvclient.Client) int {
		hits := 0
		mg := trace.NewGenerator(genCfg) // same seed: the identical reference stream
		for {
			req, ok := mg.Next()
			if !ok {
				return hits
			}
			if _, ok, err := c.Get(req.Key); err != nil {
				t.Fatal(err)
			} else if ok {
				hits++
			}
		}
	}
	hitsBefore := measure(cp)
	if hitsBefore == 0 || hitsBefore == int(genCfg.Requests) {
		t.Fatalf("degenerate warm run: %d/%d hits", hitsBefore, genCfg.Requests)
	}
	want := captureState(p)
	if len(want) == 0 {
		t.Fatal("workload produced no resident items")
	}
	p.Kill() // crash: the replica is now the only live copy

	cf := dial(t, f)
	if err := cf.Set("pre-promote", []byte("x"), 0, 0, 1); err == nil {
		t.Fatal("a replica must reject writes before promotion")
	} else if !errors.Is(err, kvclient.ErrServer) {
		t.Fatalf("replica write rejection: %v", err)
	}
	if err := cf.ReplicaPromote(); err != nil {
		t.Fatal(err)
	}

	assertStateEqual(t, want, captureState(f))
	hitsAfter := measure(cf)
	diff := hitsAfter - hitsBefore
	if diff < 0 {
		diff = -diff
	}
	if diff > int(genCfg.Requests)/100 {
		t.Fatalf("warm hit rate drifted past 1%% across failover: %d hits before, %d after (of %d gets)",
			hitsBefore, hitsAfter, genCfg.Requests)
	}
	// The promoted follower is a primary: writes flow again.
	if err := cf.Set("post-promote", []byte("x"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.ReplicaStatus(); err != nil {
		t.Fatal(err)
	}
}

// TestReplDisconnectReconnect drops every replication connection mid-segment
// and verifies the follower resumes with a partial resync (CONTINUE) — one
// full sync total, state converged.
func TestReplDisconnectReconnect(t *testing.T) {
	cfg := Config{
		MemoryBytes: 4 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	p := startServer(t, cfg)
	cp := dial(t, p)
	// A memory-only replica: replication does not require a local journal.
	f := startReplica(t, p, Config{MemoryBytes: 4 << 20, Shards: 2, Policy: "camp", DisableIQ: true})

	for i := 0; i < 100; i++ {
		if err := cp.Set(fmt.Sprintf("pre-%03d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p, f)
	for _, sr := range f.repl.reps {
		sr.closeConn() // chaos: the stream dies mid-segment
	}
	for i := 0; i < 100; i++ {
		if err := cp.Set(fmt.Sprintf("post-%03d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p, f)
	assertStateEqual(t, captureState(p), captureState(f))
	for i, sr := range f.repl.reps {
		sr.mu.Lock()
		fullSyncs, reconnects := sr.fullSyncs, sr.reconnects
		sr.mu.Unlock()
		if fullSyncs != 1 {
			t.Fatalf("shard %d: %d full syncs after a disconnect, want 1 (CONTINUE must resume)", i, fullSyncs)
		}
		if reconnects == 0 {
			t.Fatalf("shard %d: stream never reconnected", i)
		}
	}
}

// TestReplCompactionGenerationSwitch keeps a follower attached while the
// primary's journal compacts across generations: the stream must follow the
// generation switches without ever falling back to a full resync.
func TestReplCompactionGenerationSwitch(t *testing.T) {
	cfg := Config{
		MemoryBytes: 4 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist: &PersistConfig{
			Dir:      t.TempDir(),
			Fsync:    persist.FsyncNo,
			AOFLimit: 4 << 10, // tiny: compactions fire mid-stream
			Logf:     t.Logf,
		},
	}
	p := startServer(t, cfg)
	cp := dial(t, p)
	f := startReplica(t, p, Config{MemoryBytes: 4 << 20, Shards: 2, Policy: "camp", DisableIQ: true})
	waitCaughtUp(t, p, f)

	val := make([]byte, 256)
	for i := 0; i < 200; i++ {
		if err := cp.Set(fmt.Sprintf("key-%03d", i), val, 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for totalCompactions(p) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("journal never compacted despite the tiny AOF limit")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitCaughtUp(t, p, f)
	assertStateEqual(t, captureState(p), captureState(f))
	crossed := false
	for i, sr := range f.repl.reps {
		sr.mu.Lock()
		gen, fullSyncs := sr.gen, sr.fullSyncs
		sr.mu.Unlock()
		if gen > 1 {
			crossed = true
		}
		if fullSyncs != 1 {
			t.Fatalf("shard %d: %d full syncs under compaction, want 1 (switches must stream)", i, fullSyncs)
		}
	}
	if !crossed {
		t.Fatal("no follower shard crossed a generation despite compactions")
	}
}

// TestReplFollowerTornTailContinues crashes a persisted follower, tears its
// local journal tail, and restarts it: recovery must truncate the torn
// record (pinning the Redis-style aof-load-truncated behavior on the
// follower side) and — because every applied op was journaled atomically
// with a position record — the fresh session resumes with CONTINUE from the
// last intact position, never a full resync, and still converges back to
// equality including writes the primary took while the follower was down.
func TestReplFollowerTornTailContinues(t *testing.T) {
	if testing.Short() {
		t.Skip("torn-tail chaos test is not a short-mode test")
	}
	pCfg := Config{
		MemoryBytes: 4 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	p := startServer(t, pCfg)
	cp := dial(t, p)
	fDir := t.TempDir()
	fCfg := Config{
		MemoryBytes: 4 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: fDir, Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	f := startReplica(t, p, fCfg)

	for i := 0; i < 50; i++ {
		if err := cp.Set(fmt.Sprintf("key-%02d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p, f)
	f.Kill()

	// Tear the follower's journal: a record header promising 100 payload
	// bytes, then only 5 — the shape a crash mid-write leaves.
	shardDir := filepath.Join(fDir, shardDirName(0))
	aofs, err := filepath.Glob(filepath.Join(shardDir, "aof-*.log"))
	if err != nil || len(aofs) == 0 {
		t.Fatalf("no follower journal found: %v (%v)", aofs, err)
	}
	aof, err := os.OpenFile(aofs[len(aofs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aof.Write([]byte{100, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	aof.Close()

	// The primary moves on while the follower is down.
	for i := 0; i < 20; i++ {
		if err := cp.Set(fmt.Sprintf("late-%02d", i), []byte("w"), 0, 0, 7); err != nil {
			t.Fatal(err)
		}
	}

	f2 := startReplica(t, p, fCfg)
	if f2.recovered.TruncatedBytes == 0 {
		t.Fatal("follower recovery never truncated the torn tail")
	}
	if pos := f2.shards[0].replPos; pos.RunID == 0 {
		t.Fatal("no durable replication position recovered from the journal")
	}
	waitCaughtUp(t, p, f2)
	assertStateEqual(t, captureState(p), captureState(f2))
	for i, sr := range f2.repl.reps {
		sr.mu.Lock()
		fullSyncs := sr.fullSyncs
		sr.mu.Unlock()
		if fullSyncs != 0 {
			t.Fatalf("restarted shard %d: %d full syncs, want 0 (durable position must CONTINUE)", i, fullSyncs)
		}
	}
}

// TestReplPrimaryRestartForcesResync pins the run-ID safeguard: replication
// positions are scoped to one journal run, so a follower reconnecting to a
// restarted primary must full-resync even though its (generation, offset)
// still parses and points inside the journal — after a crash-restart the
// tail may have been truncated, and continuing at old byte offsets would
// silently diverge.
func TestReplPrimaryRestartForcesResync(t *testing.T) {
	dir := t.TempDir()
	mk := func(addr string) Config {
		return Config{
			Addr:        addr,
			MemoryBytes: 4 << 20,
			Policy:      "camp",
			DisableIQ:   true,
			Persist:     &PersistConfig{Dir: dir, Fsync: persist.FsyncNo, Logf: t.Logf},
		}
	}
	p1 := startServer(t, mk(""))
	cp1 := dial(t, p1)
	for i := 0; i < 30; i++ {
		if err := cp1.Set(fmt.Sprintf("first-%02d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	f := startReplica(t, p1, Config{MemoryBytes: 4 << 20, Policy: "camp", DisableIQ: true})
	waitCaughtUp(t, p1, f)

	addr := p1.Addr()
	p1.Kill()
	p2 := startServer(t, mk(addr)) // same port and data dir, new journal run
	cp2 := dial(t, p2)
	for i := 0; i < 10; i++ {
		if err := cp2.Set(fmt.Sprintf("second-%02d", i), []byte("w"), 0, 0, 5); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p2, f)
	assertStateEqual(t, captureState(p2), captureState(f))
	for i, sr := range f.repl.reps {
		sr.mu.Lock()
		fullSyncs := sr.fullSyncs
		sr.mu.Unlock()
		if fullSyncs != 2 {
			t.Fatalf("shard %d: %d full syncs, want 2 (a stale run ID must force a resync, not CONTINUE)", i, fullSyncs)
		}
	}
}

// TestReplicaRejectsAllMutations pins the read-only gate across every
// mutating verb — and that reads and stats still flow.
func TestReplicaRejectsAllMutations(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	cp := dial(t, p)
	if err := cp.Set("seed", []byte("42"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	f := startReplica(t, p, Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true})
	waitCaughtUp(t, p, f)

	cf := dial(t, f)
	if v, ok, err := cf.Get("seed"); err != nil || !ok || string(v) != "42" {
		t.Fatalf("replica read: %q, %v, %v", v, ok, err)
	}
	if err := cf.Set("w", []byte("x"), 0, 0, 1); err == nil {
		t.Fatal("set accepted on a replica")
	}
	if _, err := cf.Add("w", []byte("x"), 0, 0, 1); err == nil {
		t.Fatal("add accepted on a replica")
	}
	if _, _, err := cf.Incr("seed", 1); err == nil {
		t.Fatal("incr accepted on a replica")
	}
	if _, err := cf.Touch("seed", 60); err == nil {
		t.Fatal("touch accepted on a replica")
	}
	if _, err := cf.Delete("seed"); err == nil {
		t.Fatal("delete accepted on a replica")
	}
	if err := cf.FlushAll(); err == nil {
		t.Fatal("flush_all accepted on a replica")
	}
	stats, err := cf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["role"] != "replica" {
		t.Fatalf("role = %q, want replica", stats["role"])
	}
	status, err := cf.ReplicaStatus()
	if err != nil {
		t.Fatal(err)
	}
	if status["role"] != "replica" || status["shard0_connected"] != "1" {
		t.Fatalf("replica status: %v", status)
	}
	// The replicated value kept its state after all those rejections.
	if v, ok, err := cf.Get("seed"); err != nil || !ok || string(v) != "42" {
		t.Fatalf("replica read after rejections: %q, %v, %v", v, ok, err)
	}
}

// TestReplHandshakeRejections covers the handshake's refusal paths: shard
// count mismatch, promote on a primary, sync against a journal-less server,
// and sync from a replica (no chaining).
func TestReplHandshakeRejections(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	send := func(s *Server, cmd string) string {
		t.Helper()
		conn := rawDial(t, s)
		defer conn.Close()
		return sendLine(t, conn, cmd)
	}
	if got := send(p, "replconf shards 3"); got != "CLIENT_ERROR shard count mismatch: primary has 2" {
		t.Fatalf("shard mismatch reply: %q", got)
	}
	if got := send(p, "replconf shards 2"); got != "REPLOK 2" {
		t.Fatalf("replconf reply: %q", got)
	}
	if got := send(p, "replica promote"); got != "CLIENT_ERROR not a replica" {
		t.Fatalf("promote-on-primary reply: %q", got)
	}
	if got := send(p, "sync 5 0 0"); got != "CLIENT_ERROR bad sync command" {
		t.Fatalf("out-of-range shard reply: %q", got)
	}

	volatile := startServer(t, Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true})
	if got := send(volatile, "sync 0 0 0"); got != "CLIENT_ERROR primary is not journaling (persistence with AOF required)" {
		t.Fatalf("journal-less sync reply: %q", got)
	}

	f := startReplica(t, p, Config{MemoryBytes: 1 << 20, Shards: 2, Policy: "camp", DisableIQ: true})
	waitCaughtUp(t, p, f)
	if got := send(f, "sync 0 0 0"); got != "CLIENT_ERROR replica cannot serve syncs (chained replication unsupported)" {
		t.Fatalf("chained sync reply: %q", got)
	}
}

// TestDialWithReplicaRoutesReads pins the client's read-from-replica option:
// reads hit the replica, writes the primary, and the admin helpers target
// the replica connection.
func TestDialWithReplicaRoutesReads(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	f := startReplica(t, p, Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true})

	c, err := kvclient.DialWithReplica(p.Addr(), f.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Set("routed", []byte("v"), 0, 0, 3); err != nil {
		t.Fatal(err) // a write through the replica connection would be rejected
	}
	waitCaughtUp(t, p, f)
	if v, ok, err := c.Get("routed"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("read-from-replica get: %q, %v, %v", v, ok, err)
	}
	if hits := f.counters.getHits.Load(); hits != 1 {
		t.Fatalf("replica served %d hits, want 1 (reads must route to it)", hits)
	}
	if hits := p.counters.getHits.Load(); hits != 0 {
		t.Fatalf("primary served %d hits, want 0", hits)
	}
	status, err := c.ReplicaStatus()
	if err != nil {
		t.Fatal(err)
	}
	if status["role"] != "replica" {
		t.Fatalf("ReplicaStatus targeted the wrong server: %v", status)
	}
}

// TestReplicaRandomizedMixConverges replays the randomized mutation mix of
// the crash-recovery acceptance test against a primary with a live follower:
// after catch-up the follower must hold the identical state.
func TestReplicaRandomizedMixConverges(t *testing.T) {
	cfg := Config{
		MemoryBytes: 8 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, AOFLimit: 8 << 10, Logf: t.Logf},
	}
	p := startServer(t, cfg)
	c := dial(t, p)
	f := startReplica(t, p, Config{MemoryBytes: 8 << 20, Shards: 2, Policy: "camp", DisableIQ: true})

	rng := rand.New(rand.NewSource(99))
	keys := make([]string, 150)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	for i := 0; i < 1500; i++ {
		key := keys[rng.Intn(len(keys))]
		switch op := rng.Intn(10); {
		case op < 6:
			val := []byte(fmt.Sprintf("val-%d-%d", i, rng.Int63()))
			ttl := int64(0)
			if rng.Intn(3) == 0 {
				ttl = int64(3600 + rng.Intn(3600))
			}
			if err := c.Set(key, val, uint32(rng.Intn(1<<16)), ttl, int64(1+rng.Intn(10000))); err != nil {
				t.Fatal(err)
			}
		case op < 8:
			if _, err := c.Delete(key); err != nil {
				t.Fatal(err)
			}
		default:
			if _, err := c.Touch(key, int64(1800+rng.Intn(1800))); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitCaughtUp(t, p, f)
	want := captureState(p)
	if len(want) == 0 {
		t.Fatal("mix produced no resident items")
	}
	assertStateEqual(t, want, captureState(f))
}

// FuzzParseSyncReply hardens the follower side of the handshake: arbitrary
// primary responses must parse or be rejected without panicking, and
// accepted replies must satisfy the position invariants (no zero CONTINUE
// generation, no offset inside the segment header, no negative snapshot
// size, no snapshot bytes without a snapshot generation).
func FuzzParseSyncReply(f *testing.F) {
	f.Add([]byte("CONTINUE 3 1234 77"))
	f.Add([]byte("FULLSYNC 2 9999 77"))
	f.Add([]byte("FULLSYNC 0 0 1"))
	f.Add([]byte("CONTINUE 0 12 1"))
	f.Add([]byte("CONTINUE 1 -5 1"))
	f.Add([]byte("CONTINUE 1 12 0"))
	f.Add([]byte("FULLSYNC 1 0 9"))
	f.Add([]byte("CLIENT_ERROR bad sync command"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, line []byte) {
		reply, err := parseSyncReply(line)
		if err != nil {
			return
		}
		if reply.runID == 0 {
			t.Fatalf("accepted zero run id from %q", line)
		}
		switch reply.kind {
		case syncContinue:
			if reply.gen == 0 || reply.off < persist.SegmentHeaderLen {
				t.Fatalf("accepted invalid CONTINUE %+v from %q", reply, line)
			}
		case syncFull:
			if reply.snapSize < 0 || (reply.snapGen == 0) != (reply.snapSize == 0) {
				t.Fatalf("accepted invalid FULLSYNC %+v from %q", reply, line)
			}
		default:
			t.Fatalf("accepted unknown reply kind %q from %q", reply.kind, line)
		}
	})
}

// FuzzParseSyncArgs hardens the primary side: arbitrary sync arguments —
// malformed offsets, generation skews, out-of-range shards — must be
// rejected without panicking.
func FuzzParseSyncArgs(f *testing.F) {
	f.Add([]byte("0"), []byte("1"), []byte("12"), []byte("7"))
	f.Add([]byte("3"), []byte("0"), []byte("0"), []byte("0"))
	f.Add([]byte("0"), []byte("0"), []byte("7"), []byte("1"))
	f.Add([]byte("x"), []byte("-1"), []byte("99999999999999999999"), []byte("?"))
	f.Fuzz(func(t *testing.T, a, b, c, d []byte) {
		idx, gen, off, _, ok := parseSyncArgs([][]byte{a, b, c, d}, 4)
		if !ok {
			return
		}
		if idx < 0 || idx >= 4 || off < 0 || (gen == 0 && off != 0) {
			t.Fatalf("accepted invalid sync args %q %q %q %q -> %d %d %d", a, b, c, d, idx, gen, off)
		}
	})
}

// TestReplicaBootstrapMidChurnFidelity is the replica half of the v2
// fidelity property: a follower that bootstraps via FULLSYNC from a
// snapshot cut mid-churn (non-uniform priority offsets) and then applies
// the streamed journal tail must end with exactly the primary's cross-queue
// eviction order, shard by shard — not just the same keys and values.
func TestReplicaBootstrapMidChurnFidelity(t *testing.T) {
	pCfg := Config{
		MemoryBytes: 48 << 10, // small: the workload must evict
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	p := startServer(t, pCfg)
	cp := dial(t, p)
	rng := rand.New(rand.NewSource(11))
	costs := []int64{1, 1, 40, 40, 900, 20000}
	// Phase 1: get+set churn, so entries enter at many different L values.
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%03d", rng.Intn(600))
		if rng.Intn(4) == 0 {
			if _, _, err := cp.Get(key); err != nil {
				t.Fatal(err)
			}
		} else if err := cp.Set(key, make([]byte, 80), 0, 0, costs[rng.Intn(len(costs))]); err != nil {
			t.Fatal(err)
		}
	}
	for i, sh := range p.shards {
		sh.mu.Lock()
		ev := sh.store.evictions()
		sh.mu.Unlock()
		if ev == 0 {
			t.Fatalf("shard %d: no evictions — mid-churn bootstrap is vacuous", i)
		}
	}
	// The FULLSYNC artifact under test: a snapshot cut in the middle of the
	// churn, with the priority offsets of that instant.
	p.Snapshot()
	// Phase 2: more mutations (no gets — reads are not journaled, so only
	// mutations replicate; they still evict, and those eviction decisions
	// depend on the exact offsets the snapshot carried).
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("key-%03d", rng.Intn(600))
		if err := cp.Set(key, make([]byte, 80), 0, 0, costs[rng.Intn(len(costs))]); err != nil {
			t.Fatal(err)
		}
	}

	f := startReplica(t, p, Config{
		MemoryBytes: 48 << 10,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	waitCaughtUp(t, p, f)
	assertStateEqual(t, captureState(p), captureState(f))
	for i := range p.shards {
		want := shardEvictionOrder(p.shards[i])
		got := shardEvictionOrder(f.shards[i])
		if len(got) != len(want) {
			t.Fatalf("shard %d: follower holds %d entries, primary %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("shard %d: eviction order diverges at %d/%d: follower %q, primary %q",
					i, j, len(want), got[j], want[j])
			}
		}
	}
	for i, sr := range f.repl.reps {
		sr.mu.Lock()
		fullSyncs := sr.fullSyncs
		sr.mu.Unlock()
		if fullSyncs != 1 {
			t.Fatalf("shard %d: %d full syncs, want exactly 1 bootstrap", i, fullSyncs)
		}
	}
}

// TestReplicaRestartContinues is the headline durable-position test: a
// follower killed mid-stream and restarted on its own journal must resume
// with CONTINUE at its persisted position — zero full_syncs in the new
// session, no FULLSYNC served by the primary — and still converge to exact
// equality. Also pins the kvclient status surface for the durable position.
func TestReplicaRestartContinues(t *testing.T) {
	pCfg := Config{
		MemoryBytes: 4 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	p := startServer(t, pCfg)
	cp := dial(t, p)
	for i := 0; i < 60; i++ {
		if err := cp.Set(fmt.Sprintf("key-%03d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	fDir := t.TempDir()
	fCfg := Config{
		MemoryBytes: 4 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: fDir, Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	f1 := startReplica(t, p, fCfg)
	waitCaughtUp(t, p, f1)

	// The client-visible durable-position surface.
	cf, err := kvclient.Dial(f1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	shards, err := cf.ReplicaShards()
	cf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("ReplicaShards returned %d shards, want 2", len(shards))
	}
	for i, st := range shards {
		if !st.Connected || !st.Durable || st.DurableGen == 0 || st.DurableOffset < persist.SegmentHeaderLen || st.RunID == 0 {
			t.Fatalf("shard %d status lacks a durable position: %+v", i, st)
		}
		if st.FullSyncs != 1 {
			t.Fatalf("shard %d: fresh-dir bootstrap should be exactly 1 full sync, got %d", i, st.FullSyncs)
		}
	}

	// Kill mid-stream: a writer keeps mutating while the follower dies.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 200; i++ {
			if err := cp.Set(fmt.Sprintf("late-%03d", i), []byte("w"), 0, 0, 7); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	time.Sleep(2 * time.Millisecond)
	f1.Kill()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	fullSyncsBefore := p.counters.replFullSyncsServed.Load()
	f2 := startReplica(t, p, fCfg)
	for i, sh := range f2.shards {
		if sh.replPos.RunID == 0 {
			t.Fatalf("shard %d: no durable position recovered", i)
		}
	}
	waitCaughtUp(t, p, f2)
	assertStateEqual(t, captureState(p), captureState(f2))
	for i, sr := range f2.repl.reps {
		sr.mu.Lock()
		fullSyncs := sr.fullSyncs
		sr.mu.Unlock()
		if fullSyncs != 0 {
			t.Fatalf("restarted shard %d: %d full syncs, want 0 (CONTINUE from persisted position)", i, fullSyncs)
		}
	}
	if served := p.counters.replFullSyncsServed.Load(); served != fullSyncsBefore {
		t.Fatalf("primary served %d full syncs across the restart, want 0", served-fullSyncsBefore)
	}
}

// tearLastRecord truncates a journal file mid-way through its final record,
// returning the kind of the record it tore. The caller picks the file.
func tearLastRecord(t *testing.T, path string) persist.Kind {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(persist.SegmentHeaderLen)
	lastStart, lastKind := off, persist.Kind(0)
	for off < int64(len(data)) {
		op, used, err := persist.DecodeRecord(data[off:])
		if err != nil {
			t.Fatalf("parsing journal for tear point: %v", err)
		}
		lastStart, lastKind = off, op.Kind
		off += int64(used)
	}
	if lastStart == int64(persist.SegmentHeaderLen) && off == lastStart {
		t.Fatal("journal has no records to tear")
	}
	// Keep a few bytes of the final record so recovery sees a genuine torn
	// record, not a clean boundary.
	if err := os.Truncate(path, lastStart+3); err != nil {
		t.Fatal(err)
	}
	return lastKind
}

// TestReplicaRestartTornPositionContinues is the nastiest torn-tail case:
// the torn record is the position record itself. Recovery truncates it, the
// journal then ends with an applied op whose position record is gone, and
// the follower must CONTINUE from the previous position record — re-applying
// that one op idempotently — rather than full-resync or diverge.
func TestReplicaRestartTornPositionContinues(t *testing.T) {
	pCfg := Config{
		MemoryBytes: 4 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	p := startServer(t, pCfg)
	cp := dial(t, p)
	for i := 0; i < 50; i++ {
		if err := cp.Set(fmt.Sprintf("key-%02d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	fDir := t.TempDir()
	fCfg := Config{
		MemoryBytes: 4 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: fDir, Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	f1 := startReplica(t, p, fCfg)
	waitCaughtUp(t, p, f1)
	f1.Kill()

	// The follower journals [op, position] per applied frame, so the final
	// record is a position record; tear it mid-way.
	aofs, err := filepath.Glob(filepath.Join(fDir, shardDirName(0), "aof-*.log"))
	if err != nil || len(aofs) == 0 {
		t.Fatalf("no follower journal found: %v (%v)", aofs, err)
	}
	if kind := tearLastRecord(t, aofs[len(aofs)-1]); kind != persist.KindPosition {
		t.Fatalf("final journal record is kind %d, want a position record", kind)
	}

	// The primary moves on while the follower is down.
	for i := 0; i < 20; i++ {
		if err := cp.Set(fmt.Sprintf("late-%02d", i), []byte("w"), 0, 0, 7); err != nil {
			t.Fatal(err)
		}
	}

	f2 := startReplica(t, p, fCfg)
	if f2.recovered.TruncatedBytes == 0 {
		t.Fatal("follower recovery never truncated the torn position record")
	}
	if f2.shards[0].replPos.RunID == 0 {
		t.Fatal("no earlier durable position survived the tear")
	}
	waitCaughtUp(t, p, f2)
	assertStateEqual(t, captureState(p), captureState(f2))
	for i, sr := range f2.repl.reps {
		sr.mu.Lock()
		fullSyncs := sr.fullSyncs
		sr.mu.Unlock()
		if fullSyncs != 0 {
			t.Fatalf("restarted shard %d: %d full syncs, want 0", i, fullSyncs)
		}
	}
}

// TestReplicaRestartStaleRunIDResyncsOnce closes the safety half: a durable
// position is scoped to one primary journal run, so a follower restarting
// against a crash-restarted primary (fresh run ID) must NOT trust its
// persisted offsets — exactly one FULLSYNC per shard, then equality.
func TestReplicaRestartStaleRunIDResyncsOnce(t *testing.T) {
	pDir := t.TempDir()
	mkP := func() Config {
		return Config{
			MemoryBytes: 4 << 20,
			Policy:      "camp",
			DisableIQ:   true,
			Persist:     &PersistConfig{Dir: pDir, Fsync: persist.FsyncNo, Logf: t.Logf},
		}
	}
	p1 := startServer(t, mkP())
	cp1 := dial(t, p1)
	for i := 0; i < 40; i++ {
		if err := cp1.Set(fmt.Sprintf("key-%02d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	fDir := t.TempDir()
	fCfg := Config{
		MemoryBytes: 4 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: fDir, Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	f1 := startReplica(t, p1, fCfg)
	waitCaughtUp(t, p1, f1)
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
	staleRun := uint64(0)
	// The persisted position survives the orderly shutdown.
	{
		probe, err := New(fCfg)
		if err != nil {
			t.Fatal(err)
		}
		staleRun = probe.shards[0].replPos.RunID
		probe.Close()
		if staleRun == 0 {
			t.Fatal("orderly shutdown lost the durable position")
		}
	}

	p1.Kill()
	p2 := startServer(t, mkP()) // same data dir, fresh journal run
	cp2 := dial(t, p2)
	for i := 0; i < 15; i++ {
		if err := cp2.Set(fmt.Sprintf("second-%02d", i), []byte("w"), 0, 0, 5); err != nil {
			t.Fatal(err)
		}
	}

	f2 := startReplica(t, p2, fCfg)
	if got := f2.shards[0].replPos.RunID; got != staleRun {
		t.Fatalf("recovered run ID %d, want the stale %d", got, staleRun)
	}
	waitCaughtUp(t, p2, f2)
	assertStateEqual(t, captureState(p2), captureState(f2))
	for i, sr := range f2.repl.reps {
		sr.mu.Lock()
		fullSyncs := sr.fullSyncs
		sr.mu.Unlock()
		if fullSyncs != 1 {
			t.Fatalf("shard %d: %d full syncs, want exactly 1 (stale run ID must resync once)", i, fullSyncs)
		}
	}
}

// TestReplicaWithoutJournalReportsNotDurable pins the status contract: a
// replica with no AOF (no -data-dir here) has nowhere to persist positions,
// so it must report durable 0 — claiming otherwise would promise a cheap
// CONTINUE restart that a journal-less replica can never deliver.
func TestReplicaWithoutJournalReportsNotDurable(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	cp := dial(t, p)
	if err := cp.Set("seed", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	f := startReplica(t, p, Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true})
	waitCaughtUp(t, p, f)
	if pos := f.shards[0].replPos; pos.RunID != 0 {
		t.Fatalf("journal-less replica recorded a durable position %+v", pos)
	}
	cf := dial(t, f)
	shards, err := cf.ReplicaShards()
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range shards {
		if st.Durable || st.DurableGen != 0 || st.DurableOffset != 0 {
			t.Fatalf("shard %d claims a durable position without a journal: %+v", i, st)
		}
		if !st.Connected || st.AppliedOps == 0 {
			t.Fatalf("shard %d should still be streaming: %+v", i, st)
		}
	}
}

// TestReplicaDivergedJournalStopsPersistingPositions pins the gap
// safeguard: once an op+position append fails, the journal may be missing
// an applied op, so later positions must neither advance nor persist — a
// restart must fall back to a full resync rather than CONTINUE past the
// gap into silent divergence. A successful bootstrap (which rewrites the
// journaled state wholesale) heals the flag.
func TestReplicaDivergedJournalStopsPersistingPositions(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	cp := dial(t, p)
	if err := cp.Set("seed", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	fDir := t.TempDir()
	fCfg := Config{
		MemoryBytes: 1 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: fDir, Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	f := startReplica(t, p, fCfg)
	waitCaughtUp(t, p, f)
	sh := f.shards[0]
	sh.mu.Lock()
	before := sh.replPos
	sh.markDivergedLocked()
	sh.mu.Unlock()
	if before.RunID == 0 {
		t.Fatal("no durable position before the simulated gap")
	}
	if err := cp.Set("after-gap", []byte("w"), 0, 0, 2); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, f)
	sh.mu.Lock()
	pos, diverged := sh.replPos, sh.replDiverged
	sh.mu.Unlock()
	if pos.RunID != 0 || !diverged {
		t.Fatalf("position advanced past a journal gap: %+v (diverged=%v)", pos, diverged)
	}
	// A restart now sees no position (the journal's stale records predate
	// the flush a resync writes) — the stream itself keeps applying either
	// way; what matters is that the divergence never reached disk as a
	// trustworthy position. A fresh bootstrap clears the flag.
	f.Kill()
	f2 := startReplica(t, p, fCfg)
	waitCaughtUp(t, p, f2)
	for i, sr := range f2.repl.reps {
		sr.mu.Lock()
		fullSyncs := sr.fullSyncs
		sr.mu.Unlock()
		// The journal still holds position records from before the gap, so
		// the restart may CONTINUE from a pre-gap position (re-applying the
		// tail) or, had the gap been real on disk, resync; either way it
		// must converge — and after a FULLSYNC the flag is clear again.
		_ = fullSyncs
		f2.shards[i].mu.Lock()
		diverged := f2.shards[i].replDiverged
		f2.shards[i].mu.Unlock()
		if diverged {
			t.Fatalf("shard %d still diverged after restart", i)
		}
	}
	assertStateEqual(t, captureState(p), captureState(f2))
}
