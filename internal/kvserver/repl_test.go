package kvserver

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"camp/internal/kvclient"
	"camp/internal/persist"
	"camp/internal/trace"
)

// rawDial opens a plain TCP connection to s for hand-rolled protocol lines.
func rawDial(t *testing.T, s *Server) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// sendLine writes one command line and returns the first response line.
func sendLine(t *testing.T, conn net.Conn, cmd string) string {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "%s\r\n", cmd); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(line, "\r\n")
}

// startReplica boots a follower of p and registers cleanup.
func startReplica(t *testing.T, p *Server, cfg Config) *Server {
	t.Helper()
	cfg.ReplicaOf = p.Addr()
	return startServer(t, cfg)
}

// replCaughtUp reports whether every follower shard is connected and its
// position matches the primary's live journal end.
func replCaughtUp(primary, follower *Server) bool {
	for i, sh := range primary.shards {
		if sh.mgr == nil {
			return false
		}
		info := sh.mgr.Info()
		sr := follower.repl.reps[i]
		sr.mu.Lock()
		ok := sr.connected && sr.gen == info.Generation && sr.off == info.AOFSize
		sr.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// waitCaughtUp polls until the follower has replicated the primary's entire
// journal.
func waitCaughtUp(t *testing.T, primary, follower *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !replCaughtUp(primary, follower) {
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up with the primary")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertStateEqual compares two captured server states key by key.
func assertStateEqual(t *testing.T, want, got map[string]expectedItem) {
	t.Helper()
	if len(got) != len(want) {
		var missing, extra []string
		for k := range want {
			if _, ok := got[k]; !ok {
				missing = append(missing, k)
			}
		}
		for k := range got {
			if _, ok := want[k]; !ok {
				extra = append(extra, k)
			}
		}
		sort.Strings(missing)
		sort.Strings(extra)
		t.Fatalf("state size mismatch: got %d items, want %d (missing %v, extra %v)",
			len(got), len(want), missing, extra)
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("key %q missing", key)
		}
		if g != w {
			t.Fatalf("key %q: got %+v, want %+v", key, g, w)
		}
	}
}

// totalEvictions sums policy evictions across a server's shards.
func totalEvictions(s *Server) uint64 {
	var n uint64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.store.evictions()
		sh.mu.Unlock()
	}
	return n
}

// TestFailoverPromoteWarmReplica is the acceptance test: a 4-shard primary
// serves a trace workload under eviction pressure, a follower bootstraps
// mid-workload from snapshot + AOF, the primary is killed, and the promoted
// follower must hold the exact state — value, flags, expiry, cost — and a
// warm hit rate within 1% of the uninterrupted primary's.
//
// The snapshot is taken before eviction begins: a pre-churn snapshot has
// uniform priority offsets and rebuilds the policy exactly (PR 2's snapshot
// order fidelity), and from there the streamed op feed replays the eviction
// churn deterministically — so the promoted follower's state is not just
// warm but byte-exact. (A snapshot taken mid-churn re-derives cross-queue
// offsets, the ROADMAP "exact snapshot priorities" residual.)
func TestFailoverPromoteWarmReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("failover e2e is not a short-mode test")
	}
	mkCfg := func(dir string) Config {
		return Config{
			MemoryBytes: 128 << 10, // smaller than the full key population: phase 2 evicts
			Shards:      4,
			Policy:      "camp",
			DisableIQ:   true,
			Persist:     &PersistConfig{Dir: dir, Fsync: persist.FsyncNo, Logf: t.Logf},
		}
	}
	p := startServer(t, mkCfg(t.TempDir()))
	cp := dial(t, p)

	genCfg := trace.Config{
		Keys:     1200,
		Requests: 4000,
		Seed:     11,
		Size:     trace.SizeUniform(60, 140),
		Cost:     trace.CostChoice(1, 100, 10000),
	}
	g := trace.NewGenerator(genCfg)
	send := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			req, ok := g.Next()
			if !ok {
				return
			}
			if err := cp.Set(req.Key, make([]byte, req.Size), 0, 0, req.Cost); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Phase 1 fits in memory, then a snapshot, then the follower attaches:
	// its bootstrap is genuinely snapshot + AOF, with the eviction-heavy
	// rest of the workload streaming live.
	send(500)
	if n := totalEvictions(p); n != 0 {
		t.Fatalf("phase 1 evicted %d items; the snapshot must predate churn", n)
	}
	p.Snapshot()
	f := startReplica(t, p, mkCfg(t.TempDir()))
	send(3500)
	if n := totalEvictions(p); n == 0 {
		t.Fatal("phase 2 never evicted; the workload must churn")
	}
	waitCaughtUp(t, p, f)

	if n := p.counters.replFullSyncsServed.Load(); n != 4 {
		t.Fatalf("primary served %d full syncs, want one per shard (4)", n)
	}
	for i, sr := range f.repl.reps {
		sr.mu.Lock()
		fullSyncs := sr.fullSyncs
		sr.mu.Unlock()
		if fullSyncs != 1 {
			t.Fatalf("shard %d bootstrapped %d times, want 1", i, fullSyncs)
		}
	}

	measure := func(c *kvclient.Client) int {
		hits := 0
		mg := trace.NewGenerator(genCfg) // same seed: the identical reference stream
		for {
			req, ok := mg.Next()
			if !ok {
				return hits
			}
			if _, ok, err := c.Get(req.Key); err != nil {
				t.Fatal(err)
			} else if ok {
				hits++
			}
		}
	}
	hitsBefore := measure(cp)
	if hitsBefore == 0 || hitsBefore == int(genCfg.Requests) {
		t.Fatalf("degenerate warm run: %d/%d hits", hitsBefore, genCfg.Requests)
	}
	want := captureState(p)
	if len(want) == 0 {
		t.Fatal("workload produced no resident items")
	}
	p.Kill() // crash: the replica is now the only live copy

	cf := dial(t, f)
	if err := cf.Set("pre-promote", []byte("x"), 0, 0, 1); err == nil {
		t.Fatal("a replica must reject writes before promotion")
	} else if !errors.Is(err, kvclient.ErrServer) {
		t.Fatalf("replica write rejection: %v", err)
	}
	if err := cf.ReplicaPromote(); err != nil {
		t.Fatal(err)
	}

	assertStateEqual(t, want, captureState(f))
	hitsAfter := measure(cf)
	diff := hitsAfter - hitsBefore
	if diff < 0 {
		diff = -diff
	}
	if diff > int(genCfg.Requests)/100 {
		t.Fatalf("warm hit rate drifted past 1%% across failover: %d hits before, %d after (of %d gets)",
			hitsBefore, hitsAfter, genCfg.Requests)
	}
	// The promoted follower is a primary: writes flow again.
	if err := cf.Set("post-promote", []byte("x"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.ReplicaStatus(); err != nil {
		t.Fatal(err)
	}
}

// TestReplDisconnectReconnect drops every replication connection mid-segment
// and verifies the follower resumes with a partial resync (CONTINUE) — one
// full sync total, state converged.
func TestReplDisconnectReconnect(t *testing.T) {
	cfg := Config{
		MemoryBytes: 4 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	p := startServer(t, cfg)
	cp := dial(t, p)
	// A memory-only replica: replication does not require a local journal.
	f := startReplica(t, p, Config{MemoryBytes: 4 << 20, Shards: 2, Policy: "camp", DisableIQ: true})

	for i := 0; i < 100; i++ {
		if err := cp.Set(fmt.Sprintf("pre-%03d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p, f)
	for _, sr := range f.repl.reps {
		sr.closeConn() // chaos: the stream dies mid-segment
	}
	for i := 0; i < 100; i++ {
		if err := cp.Set(fmt.Sprintf("post-%03d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p, f)
	assertStateEqual(t, captureState(p), captureState(f))
	for i, sr := range f.repl.reps {
		sr.mu.Lock()
		fullSyncs, reconnects := sr.fullSyncs, sr.reconnects
		sr.mu.Unlock()
		if fullSyncs != 1 {
			t.Fatalf("shard %d: %d full syncs after a disconnect, want 1 (CONTINUE must resume)", i, fullSyncs)
		}
		if reconnects == 0 {
			t.Fatalf("shard %d: stream never reconnected", i)
		}
	}
}

// TestReplCompactionGenerationSwitch keeps a follower attached while the
// primary's journal compacts across generations: the stream must follow the
// generation switches without ever falling back to a full resync.
func TestReplCompactionGenerationSwitch(t *testing.T) {
	cfg := Config{
		MemoryBytes: 4 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist: &PersistConfig{
			Dir:      t.TempDir(),
			Fsync:    persist.FsyncNo,
			AOFLimit: 4 << 10, // tiny: compactions fire mid-stream
			Logf:     t.Logf,
		},
	}
	p := startServer(t, cfg)
	cp := dial(t, p)
	f := startReplica(t, p, Config{MemoryBytes: 4 << 20, Shards: 2, Policy: "camp", DisableIQ: true})
	waitCaughtUp(t, p, f)

	val := make([]byte, 256)
	for i := 0; i < 200; i++ {
		if err := cp.Set(fmt.Sprintf("key-%03d", i), val, 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for totalCompactions(p) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("journal never compacted despite the tiny AOF limit")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitCaughtUp(t, p, f)
	assertStateEqual(t, captureState(p), captureState(f))
	crossed := false
	for i, sr := range f.repl.reps {
		sr.mu.Lock()
		gen, fullSyncs := sr.gen, sr.fullSyncs
		sr.mu.Unlock()
		if gen > 1 {
			crossed = true
		}
		if fullSyncs != 1 {
			t.Fatalf("shard %d: %d full syncs under compaction, want 1 (switches must stream)", i, fullSyncs)
		}
	}
	if !crossed {
		t.Fatal("no follower shard crossed a generation despite compactions")
	}
}

// TestReplFollowerTornTailResync crashes a persisted follower, tears its
// local journal tail, and restarts it: recovery must truncate the torn
// record (pinning the Redis-style aof-load-truncated behavior on the
// follower side) and the fresh session must full-resync back to equality —
// including writes the primary took while the follower was down.
func TestReplFollowerTornTailResync(t *testing.T) {
	if testing.Short() {
		t.Skip("torn-tail chaos test is not a short-mode test")
	}
	pCfg := Config{
		MemoryBytes: 4 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	p := startServer(t, pCfg)
	cp := dial(t, p)
	fDir := t.TempDir()
	fCfg := Config{
		MemoryBytes: 4 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: fDir, Fsync: persist.FsyncNo, Logf: t.Logf},
	}
	f := startReplica(t, p, fCfg)

	for i := 0; i < 50; i++ {
		if err := cp.Set(fmt.Sprintf("key-%02d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p, f)
	f.Kill()

	// Tear the follower's journal: a record header promising 100 payload
	// bytes, then only 5 — the shape a crash mid-write leaves.
	shardDir := filepath.Join(fDir, shardDirName(0))
	aofs, err := filepath.Glob(filepath.Join(shardDir, "aof-*.log"))
	if err != nil || len(aofs) == 0 {
		t.Fatalf("no follower journal found: %v (%v)", aofs, err)
	}
	aof, err := os.OpenFile(aofs[len(aofs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aof.Write([]byte{100, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	aof.Close()

	// The primary moves on while the follower is down.
	for i := 0; i < 20; i++ {
		if err := cp.Set(fmt.Sprintf("late-%02d", i), []byte("w"), 0, 0, 7); err != nil {
			t.Fatal(err)
		}
	}

	f2 := startReplica(t, p, fCfg)
	if f2.recovered.TruncatedBytes == 0 {
		t.Fatal("follower recovery never truncated the torn tail")
	}
	waitCaughtUp(t, p, f2)
	assertStateEqual(t, captureState(p), captureState(f2))
	for i, sr := range f2.repl.reps {
		sr.mu.Lock()
		fullSyncs := sr.fullSyncs
		sr.mu.Unlock()
		if fullSyncs != 1 {
			t.Fatalf("restarted shard %d: %d full syncs, want 1", i, fullSyncs)
		}
	}
}

// TestReplPrimaryRestartForcesResync pins the run-ID safeguard: replication
// positions are scoped to one journal run, so a follower reconnecting to a
// restarted primary must full-resync even though its (generation, offset)
// still parses and points inside the journal — after a crash-restart the
// tail may have been truncated, and continuing at old byte offsets would
// silently diverge.
func TestReplPrimaryRestartForcesResync(t *testing.T) {
	dir := t.TempDir()
	mk := func(addr string) Config {
		return Config{
			Addr:        addr,
			MemoryBytes: 4 << 20,
			Policy:      "camp",
			DisableIQ:   true,
			Persist:     &PersistConfig{Dir: dir, Fsync: persist.FsyncNo, Logf: t.Logf},
		}
	}
	p1 := startServer(t, mk(""))
	cp1 := dial(t, p1)
	for i := 0; i < 30; i++ {
		if err := cp1.Set(fmt.Sprintf("first-%02d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	f := startReplica(t, p1, Config{MemoryBytes: 4 << 20, Policy: "camp", DisableIQ: true})
	waitCaughtUp(t, p1, f)

	addr := p1.Addr()
	p1.Kill()
	p2 := startServer(t, mk(addr)) // same port and data dir, new journal run
	cp2 := dial(t, p2)
	for i := 0; i < 10; i++ {
		if err := cp2.Set(fmt.Sprintf("second-%02d", i), []byte("w"), 0, 0, 5); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p2, f)
	assertStateEqual(t, captureState(p2), captureState(f))
	for i, sr := range f.repl.reps {
		sr.mu.Lock()
		fullSyncs := sr.fullSyncs
		sr.mu.Unlock()
		if fullSyncs != 2 {
			t.Fatalf("shard %d: %d full syncs, want 2 (a stale run ID must force a resync, not CONTINUE)", i, fullSyncs)
		}
	}
}

// TestReplicaRejectsAllMutations pins the read-only gate across every
// mutating verb — and that reads and stats still flow.
func TestReplicaRejectsAllMutations(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	cp := dial(t, p)
	if err := cp.Set("seed", []byte("42"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	f := startReplica(t, p, Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true})
	waitCaughtUp(t, p, f)

	cf := dial(t, f)
	if v, ok, err := cf.Get("seed"); err != nil || !ok || string(v) != "42" {
		t.Fatalf("replica read: %q, %v, %v", v, ok, err)
	}
	if err := cf.Set("w", []byte("x"), 0, 0, 1); err == nil {
		t.Fatal("set accepted on a replica")
	}
	if _, err := cf.Add("w", []byte("x"), 0, 0, 1); err == nil {
		t.Fatal("add accepted on a replica")
	}
	if _, _, err := cf.Incr("seed", 1); err == nil {
		t.Fatal("incr accepted on a replica")
	}
	if _, err := cf.Touch("seed", 60); err == nil {
		t.Fatal("touch accepted on a replica")
	}
	if _, err := cf.Delete("seed"); err == nil {
		t.Fatal("delete accepted on a replica")
	}
	if err := cf.FlushAll(); err == nil {
		t.Fatal("flush_all accepted on a replica")
	}
	stats, err := cf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["role"] != "replica" {
		t.Fatalf("role = %q, want replica", stats["role"])
	}
	status, err := cf.ReplicaStatus()
	if err != nil {
		t.Fatal(err)
	}
	if status["role"] != "replica" || status["shard0_connected"] != "1" {
		t.Fatalf("replica status: %v", status)
	}
	// The replicated value kept its state after all those rejections.
	if v, ok, err := cf.Get("seed"); err != nil || !ok || string(v) != "42" {
		t.Fatalf("replica read after rejections: %q, %v, %v", v, ok, err)
	}
}

// TestReplHandshakeRejections covers the handshake's refusal paths: shard
// count mismatch, promote on a primary, sync against a journal-less server,
// and sync from a replica (no chaining).
func TestReplHandshakeRejections(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	send := func(s *Server, cmd string) string {
		t.Helper()
		conn := rawDial(t, s)
		defer conn.Close()
		return sendLine(t, conn, cmd)
	}
	if got := send(p, "replconf shards 3"); got != "CLIENT_ERROR shard count mismatch: primary has 2" {
		t.Fatalf("shard mismatch reply: %q", got)
	}
	if got := send(p, "replconf shards 2"); got != "REPLOK 2" {
		t.Fatalf("replconf reply: %q", got)
	}
	if got := send(p, "replica promote"); got != "CLIENT_ERROR not a replica" {
		t.Fatalf("promote-on-primary reply: %q", got)
	}
	if got := send(p, "sync 5 0 0"); got != "CLIENT_ERROR bad sync command" {
		t.Fatalf("out-of-range shard reply: %q", got)
	}

	volatile := startServer(t, Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true})
	if got := send(volatile, "sync 0 0 0"); got != "CLIENT_ERROR primary is not journaling (persistence with AOF required)" {
		t.Fatalf("journal-less sync reply: %q", got)
	}

	f := startReplica(t, p, Config{MemoryBytes: 1 << 20, Shards: 2, Policy: "camp", DisableIQ: true})
	waitCaughtUp(t, p, f)
	if got := send(f, "sync 0 0 0"); got != "CLIENT_ERROR replica cannot serve syncs (chained replication unsupported)" {
		t.Fatalf("chained sync reply: %q", got)
	}
}

// TestDialWithReplicaRoutesReads pins the client's read-from-replica option:
// reads hit the replica, writes the primary, and the admin helpers target
// the replica connection.
func TestDialWithReplicaRoutesReads(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	f := startReplica(t, p, Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true})

	c, err := kvclient.DialWithReplica(p.Addr(), f.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Set("routed", []byte("v"), 0, 0, 3); err != nil {
		t.Fatal(err) // a write through the replica connection would be rejected
	}
	waitCaughtUp(t, p, f)
	if v, ok, err := c.Get("routed"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("read-from-replica get: %q, %v, %v", v, ok, err)
	}
	if hits := f.counters.getHits.Load(); hits != 1 {
		t.Fatalf("replica served %d hits, want 1 (reads must route to it)", hits)
	}
	if hits := p.counters.getHits.Load(); hits != 0 {
		t.Fatalf("primary served %d hits, want 0", hits)
	}
	status, err := c.ReplicaStatus()
	if err != nil {
		t.Fatal(err)
	}
	if status["role"] != "replica" {
		t.Fatalf("ReplicaStatus targeted the wrong server: %v", status)
	}
}

// TestReplicaRandomizedMixConverges replays the randomized mutation mix of
// the crash-recovery acceptance test against a primary with a live follower:
// after catch-up the follower must hold the identical state.
func TestReplicaRandomizedMixConverges(t *testing.T) {
	cfg := Config{
		MemoryBytes: 8 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, AOFLimit: 8 << 10, Logf: t.Logf},
	}
	p := startServer(t, cfg)
	c := dial(t, p)
	f := startReplica(t, p, Config{MemoryBytes: 8 << 20, Shards: 2, Policy: "camp", DisableIQ: true})

	rng := rand.New(rand.NewSource(99))
	keys := make([]string, 150)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	for i := 0; i < 1500; i++ {
		key := keys[rng.Intn(len(keys))]
		switch op := rng.Intn(10); {
		case op < 6:
			val := []byte(fmt.Sprintf("val-%d-%d", i, rng.Int63()))
			ttl := int64(0)
			if rng.Intn(3) == 0 {
				ttl = int64(3600 + rng.Intn(3600))
			}
			if err := c.Set(key, val, uint32(rng.Intn(1<<16)), ttl, int64(1+rng.Intn(10000))); err != nil {
				t.Fatal(err)
			}
		case op < 8:
			if _, err := c.Delete(key); err != nil {
				t.Fatal(err)
			}
		default:
			if _, err := c.Touch(key, int64(1800+rng.Intn(1800))); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitCaughtUp(t, p, f)
	want := captureState(p)
	if len(want) == 0 {
		t.Fatal("mix produced no resident items")
	}
	assertStateEqual(t, want, captureState(f))
}

// FuzzParseSyncReply hardens the follower side of the handshake: arbitrary
// primary responses must parse or be rejected without panicking, and
// accepted replies must satisfy the position invariants (no zero CONTINUE
// generation, no offset inside the segment header, no negative snapshot
// size, no snapshot bytes without a snapshot generation).
func FuzzParseSyncReply(f *testing.F) {
	f.Add([]byte("CONTINUE 3 1234 77"))
	f.Add([]byte("FULLSYNC 2 9999 77"))
	f.Add([]byte("FULLSYNC 0 0 1"))
	f.Add([]byte("CONTINUE 0 12 1"))
	f.Add([]byte("CONTINUE 1 -5 1"))
	f.Add([]byte("CONTINUE 1 12 0"))
	f.Add([]byte("FULLSYNC 1 0 9"))
	f.Add([]byte("CLIENT_ERROR bad sync command"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, line []byte) {
		reply, err := parseSyncReply(line)
		if err != nil {
			return
		}
		if reply.runID == 0 {
			t.Fatalf("accepted zero run id from %q", line)
		}
		switch reply.kind {
		case syncContinue:
			if reply.gen == 0 || reply.off < persist.SegmentHeaderLen {
				t.Fatalf("accepted invalid CONTINUE %+v from %q", reply, line)
			}
		case syncFull:
			if reply.snapSize < 0 || (reply.snapGen == 0) != (reply.snapSize == 0) {
				t.Fatalf("accepted invalid FULLSYNC %+v from %q", reply, line)
			}
		default:
			t.Fatalf("accepted unknown reply kind %q from %q", reply.kind, line)
		}
	})
}

// FuzzParseSyncArgs hardens the primary side: arbitrary sync arguments —
// malformed offsets, generation skews, out-of-range shards — must be
// rejected without panicking.
func FuzzParseSyncArgs(f *testing.F) {
	f.Add([]byte("0"), []byte("1"), []byte("12"), []byte("7"))
	f.Add([]byte("3"), []byte("0"), []byte("0"), []byte("0"))
	f.Add([]byte("0"), []byte("0"), []byte("7"), []byte("1"))
	f.Add([]byte("x"), []byte("-1"), []byte("99999999999999999999"), []byte("?"))
	f.Fuzz(func(t *testing.T, a, b, c, d []byte) {
		idx, gen, off, _, ok := parseSyncArgs([][]byte{a, b, c, d}, 4)
		if !ok {
			return
		}
		if idx < 0 || idx >= 4 || off < 0 || (gen == 0 && off != 0) {
			t.Fatalf("accepted invalid sync args %q %q %q %q -> %d %d %d", a, b, c, d, idx, gen, off)
		}
	})
}
