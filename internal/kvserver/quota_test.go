package kvserver

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"camp/internal/kvclient"
)

// TestTenantQuotaGCRA pins the rate limiter's arithmetic with a synthetic
// clock: at 4 ops/sec (250ms interval, 1s burst) exactly 4 back-to-back ops
// pass from idle, the 5th is denied, and 300ms later one slot has refilled.
func TestTenantQuotaGCRA(t *testing.T) {
	tq := newTenantQuota(TenantQuota{OpsPerSec: 4})
	now := time.Now().UnixNano()
	for i := 0; i < 4; i++ {
		if !tq.allowOp(now) {
			t.Fatalf("op %d denied inside the burst", i)
		}
	}
	if tq.allowOp(now) {
		t.Fatal("5th back-to-back op admitted past the burst")
	}
	if tq.allowOp(now + 200*int64(time.Millisecond)) {
		t.Fatal("op admitted before an interval elapsed")
	}
	if !tq.allowOp(now + 300*int64(time.Millisecond)) {
		t.Fatal("op denied after an interval refilled a slot")
	}

	// A nil quota and a rate-less quota are unlimited.
	var unlimited *tenantQuota
	if !unlimited.allowOp(now) || !unlimited.acquireBytes(1<<30) {
		t.Fatal("nil quota must admit everything")
	}
	if !newTenantQuota(TenantQuota{MaxBytesInFlight: 10}).allowOp(now) {
		t.Fatal("quota without a rate must admit ops")
	}
}

// TestTenantQuotaBytesInFlight pins the payload gauge: acquisitions are
// admitted up to the cap, released bytes free the budget, and a single
// payload larger than the cap can never pass.
func TestTenantQuotaBytesInFlight(t *testing.T) {
	tq := newTenantQuota(TenantQuota{MaxBytesInFlight: 100})
	if !tq.acquireBytes(60) || !tq.acquireBytes(40) {
		t.Fatal("acquisitions within the cap denied")
	}
	if tq.acquireBytes(1) {
		t.Fatal("acquisition past the cap admitted")
	}
	tq.releaseBytes(40)
	if !tq.acquireBytes(40) {
		t.Fatal("released budget not reusable")
	}
	if tq.acquireBytes(101) {
		t.Fatal("payload larger than the cap admitted")
	}
	// Zero-byte ops (deletes, arith) never touch the gauge.
	if !tq.acquireBytes(0) {
		t.Fatal("zero-byte acquisition denied")
	}
}

// TestTenantQuotaConfigValidation pins Config.TenantQuotas and
// Config.ReplicaTenants validation.
func TestTenantQuotaConfigValidation(t *testing.T) {
	for _, q := range []map[string]TenantQuota{
		{"bad name": {OpsPerSec: 1}},
		{"": {OpsPerSec: 1}},
		{"gold": {OpsPerSec: -1}},
		{"gold": {MaxBytesInFlight: -1}},
	} {
		cfg := Config{MemoryBytes: 1 << 20, TenantQuotas: q}
		if _, err := New(cfg); err == nil {
			t.Errorf("TenantQuotas %v: want error", q)
		}
	}
	if _, err := New(Config{MemoryBytes: 1 << 21, Mode: ModeSlab, SlabSize: 1 << 16,
		TenantQuotas: map[string]TenantQuota{"gold": {OpsPerSec: 1}}}); err == nil {
		t.Error("TenantQuotas in slab mode: want error")
	}
	if _, err := New(Config{MemoryBytes: 1 << 20, ReplicaTenants: []string{"a"}}); err == nil {
		t.Error("ReplicaTenants without ReplicaOf: want error")
	}
	if _, err := New(Config{MemoryBytes: 1 << 20, ReplicaOf: "127.0.0.1:1",
		ReplicaTenants: []string{"bad name"}}); err == nil {
		t.Error("ReplicaTenants with invalid name: want error")
	}
}

// TestTenantQuotaShedAndRefill is the end-to-end quota test: a tenant capped
// at 4 ops/sec has its burst admitted and the next mutation shed with
// SERVER_ERROR, other tenants keep writing untouched, the shed count lands in
// stats tenants, and a slot refills after an interval.
func TestTenantQuotaShedAndRefill(t *testing.T) {
	s := startServer(t, Config{
		MemoryBytes:  1 << 20,
		TenantQuotas: map[string]TenantQuota{"gold": {OpsPerSec: 4}},
	})
	gold, err := kvclient.DialWithTenant(s.Addr(), "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	silver, err := kvclient.DialWithTenant(s.Addr(), "silver")
	if err != nil {
		t.Fatal(err)
	}
	defer silver.Close()
	def := dial(t, s)

	for i := 0; i < 4; i++ {
		if err := gold.Set("k"+strconv.Itoa(i), []byte("v"), 0, 0, 1); err != nil {
			t.Fatalf("burst op %d: %v", i, err)
		}
	}
	err = gold.Set("k4", []byte("v"), 0, 0, 1)
	if !errors.Is(err, kvclient.ErrOverQuota) {
		t.Fatalf("5th op = %v, want ErrOverQuota", err)
	}
	if !errors.Is(err, kvclient.ErrServer) {
		t.Fatal("ErrOverQuota must wrap ErrServer")
	}
	// Unlimited tenants never feel gold's storm.
	if err := silver.Set("s", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := def.Set("d", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Reads are not shed by default: an over-quota tenant can still drain
	// its cache.
	if v, ok, err := gold.Get("k0"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("over-quota read = %q/%v/%v, want hit", v, ok, err)
	}

	ts, err := def.StatsTenants()
	if err != nil {
		t.Fatal(err)
	}
	if shed, _ := strconv.Atoi(ts["tenant:gold:quota_shed"]); shed < 1 {
		t.Fatalf("gold quota_shed = %q, want >= 1", ts["tenant:gold:quota_shed"])
	}
	if ts["tenant:silver:quota_shed"] != "0" || ts["tenant:default:quota_shed"] != "0" {
		t.Fatalf("unlimited tenants shed: silver=%q default=%q",
			ts["tenant:silver:quota_shed"], ts["tenant:default:quota_shed"])
	}

	// One 250ms interval refills one slot.
	time.Sleep(300 * time.Millisecond)
	if err := gold.Set("k5", []byte("v"), 0, 0, 1); err != nil {
		t.Fatalf("post-refill op: %v", err)
	}
}

// TestTenantQuotaShedReads pins the opt-in read shedding and that shed
// replies keep the connection usable.
func TestTenantQuotaShedReads(t *testing.T) {
	s := startServer(t, Config{
		MemoryBytes:  1 << 20,
		TenantQuotas: map[string]TenantQuota{"gold": {OpsPerSec: 2, ShedReads: true}},
	})
	conn := rawDial(t, s)
	defer conn.Close()
	if got := sendLine(t, conn, "tenant gold"); got != "TENANT gold" {
		t.Fatalf("tenant switch = %q", got)
	}
	shed := false
	for i := 0; i < 4; i++ {
		got := sendLine(t, conn, "get k")
		if got == "SERVER_ERROR tenant over quota" {
			shed = true
			break
		}
		if got != "END" {
			t.Fatalf("get %d = %q", i, got)
		}
	}
	if !shed {
		t.Fatal("reads never shed despite ShedReads past the burst")
	}
	// The connection survived the shed reply.
	if got := sendLine(t, conn, "tenant"); got != "TENANT gold" {
		t.Fatalf("connection unusable after shed: %q", got)
	}
}
