package kvserver

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"camp/internal/kvclient"
	"camp/internal/persist"
	"camp/internal/trace"
)

// expectedItem mirrors what recovery must reproduce for an acknowledged
// mutation: value, flags, expiry and the learned cost.
type expectedItem struct {
	value   string
	flags   uint32
	expires int64
	cost    int64
}

// captureState snapshots a server's live items, shard by shard.
func captureState(s *Server) map[string]expectedItem {
	out := make(map[string]expectedItem)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for key, it := range sh.store.items {
			_, meta, ok := sh.store.peek(key)
			if !ok {
				continue
			}
			out[key] = expectedItem{
				value:   string(sh.store.itemValue(it)),
				flags:   it.flags,
				expires: persist.ExpiresFrom(it.expiresAt),
				cost:    meta.Cost,
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// totalCompactions sums completed compactions across shards.
func totalCompactions(s *Server) uint64 {
	var n uint64
	for _, sh := range s.shards {
		if sh.mgr != nil {
			n += sh.mgr.Info().Compactions
		}
	}
	return n
}

// TestCrashRecoveryRandomizedMix is the acceptance test: a randomized mix of
// sets (with explicit costs), deletes and touches against an AOF-enabled
// server, a hard stop with no graceful shutdown, and a recovery that must
// reproduce every acknowledged mutation — value, flags, expiry and cost.
func TestCrashRecoveryRandomizedMix(t *testing.T) {
	for _, tc := range []struct {
		name     string
		aofLimit int64
	}{
		{name: "aof-only", aofLimit: 0},
		// A tiny limit forces several snapshot-then-truncate compactions
		// mid-run, so recovery exercises snapshot + journal tail.
		{name: "with-compactions", aofLimit: 4 << 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			pcfg := func() *PersistConfig {
				return &PersistConfig{
					Dir:      dir,
					Fsync:    persist.FsyncAlways,
					AOFLimit: tc.aofLimit,
					Logf:     t.Logf,
				}
			}
			cfg := Config{
				MemoryBytes: 8 << 20, // ample: every acknowledged set stays resident
				Policy:      "camp",
				DisableIQ:   true,
				Persist:     pcfg(),
			}
			s1 := startServer(t, cfg)
			c := dial(t, s1)

			rng := rand.New(rand.NewSource(42))
			keys := make([]string, 200)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%03d", i)
			}
			for i := 0; i < 2000; i++ {
				key := keys[rng.Intn(len(keys))]
				switch op := rng.Intn(10); {
				case op < 6: // set with an explicit cost
					val := []byte(fmt.Sprintf("val-%d-%d", i, rng.Int63()))
					ttl := int64(0)
					if rng.Intn(3) == 0 {
						ttl = int64(3600 + rng.Intn(3600))
					}
					if err := c.Set(key, val, uint32(rng.Intn(1<<16)), ttl, int64(1+rng.Intn(10000))); err != nil {
						t.Fatal(err)
					}
				case op < 8: // delete
					if _, err := c.Delete(key); err != nil {
						t.Fatal(err)
					}
				default: // touch
					if _, err := c.Touch(key, int64(1800+rng.Intn(1800))); err != nil {
						t.Fatal(err)
					}
				}
			}
			want := captureState(s1)
			if len(want) == 0 {
				t.Fatal("test produced no resident items")
			}
			s1.Kill() // crash: no persistence flush, no final snapshot

			cfg.Persist = pcfg()
			s2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			got := captureState(s2)
			if len(got) != len(want) {
				t.Fatalf("recovered %d items, want %d", len(got), len(want))
			}
			for key, w := range want {
				g, ok := got[key]
				if !ok {
					t.Fatalf("key %q lost in recovery", key)
				}
				if g != w {
					t.Fatalf("key %q: recovered %+v, want %+v", key, g, w)
				}
			}
			if tc.aofLimit > 0 && s2.recovered.SnapshotOps == 0 {
				t.Fatal("compaction run recovered nothing from a snapshot")
			}
		})
	}
}

// TestWarmHitRateAfterRecovery replays an internal/trace workload against a
// CAMP server small enough to evict, hard-stops it, and checks the recovered
// server reproduces the pre-restart warm hit rate exactly: journal replay
// rebuilds CAMP's queues and heap in the original order with the original
// costs, and CAMP is deterministic from there.
func TestWarmHitRateAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	pcfg := func() *PersistConfig {
		return &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf}
	}
	cfg := Config{
		MemoryBytes: 64 << 10, // forces eviction: the key population is ~3x larger
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     pcfg(),
	}
	s1 := startServer(t, cfg)
	c := dial(t, s1)

	genCfg := trace.Config{
		Keys:     1000,
		Requests: 3000,
		Seed:     7,
		Size:     trace.SizeUniform(60, 140),
		Cost:     trace.CostChoice(1, 100, 10000),
	}
	// Warm-up phase: sets only, so the journal captures the exact mutation
	// order the policy saw.
	g := trace.NewGenerator(genCfg)
	for {
		req, ok := g.Next()
		if !ok {
			break
		}
		if err := c.Set(req.Key, make([]byte, req.Size), 0, 0, req.Cost); err != nil {
			t.Fatal(err)
		}
	}

	measure := func(c *kvclient.Client) int {
		hits := 0
		g := trace.NewGenerator(genCfg) // same seed: the identical reference stream
		for {
			req, ok := g.Next()
			if !ok {
				break
			}
			if _, ok, err := c.Get(req.Key); err != nil {
				t.Fatal(err)
			} else if ok {
				hits++
			}
		}
		return hits
	}
	hitsBefore := measure(c)
	if hitsBefore == 0 || hitsBefore == int(genCfg.Requests) {
		t.Fatalf("degenerate warm run: %d/%d hits", hitsBefore, genCfg.Requests)
	}
	s1.Kill()

	cfg.Persist = pcfg()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.recovered.ReplayedOps == 0 {
		t.Fatal("recovery replayed no ops")
	}
	hitsAfter := measure(dial(t, s2))
	if hitsAfter != hitsBefore {
		t.Fatalf("warm hit rate changed across recovery: %d hits before, %d after (of %d gets)",
			hitsBefore, hitsAfter, genCfg.Requests)
	}
}

// TestSnapshotOnlyGracefulRestart covers DisableAOF: a graceful Close writes
// a final snapshot, and a restart warm-loads it.
func TestSnapshotOnlyGracefulRestart(t *testing.T) {
	dir := t.TempDir()
	pcfg := func() *PersistConfig {
		return &PersistConfig{Dir: dir, DisableAOF: true, Logf: t.Logf}
	}
	cfg := Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true, Persist: pcfg()}
	s1 := startServer(t, cfg)
	c := dial(t, s1)
	for i := 0; i < 50; i++ {
		if err := c.Set(fmt.Sprintf("k%02d", i), []byte("v"), 0, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.Persist = pcfg()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.recovered.SnapshotOps != 50 {
		t.Fatalf("recovered %d snapshot ops, want 50", s2.recovered.SnapshotOps)
	}
	sh := s2.shardFor("k07")
	sh.mu.Lock()
	_, meta, ok := sh.store.peek("k07")
	sh.mu.Unlock()
	if !ok || meta.Cost != 8 {
		t.Fatalf("k07 after snapshot restart: ok=%v cost=%d, want cost 8", ok, meta.Cost)
	}
}

// TestSnapshotIntervalAndStats drives the background snapshot ticker and the
// new persistence/admission stats lines.
func TestSnapshotIntervalAndStats(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		MemoryBytes: 1 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist: &PersistConfig{
			Dir:              dir,
			Fsync:            persist.FsyncNo,
			SnapshotInterval: 50 * time.Millisecond,
			Logf:             t.Logf,
		},
	}
	s := startServer(t, cfg)
	c := dial(t, s)
	if err := c.Set("a", []byte("v"), 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if totalCompactions(s) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot ticker never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"rejected_sets", "persist_gen", "aof_enabled", "aof_bytes", "persist_compactions"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("stats missing %q: %v", key, stats)
		}
	}
	if stats["aof_enabled"] != "1" {
		t.Fatalf("aof_enabled = %q, want 1", stats["aof_enabled"])
	}
}

// TestRejectedSetsStat proves admission pressure is visible to operators:
// an over-capacity value is refused and counted.
func TestRejectedSetsStat(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 4 << 10, Policy: "camp", DisableIQ: true})
	c := dial(t, s)
	if err := c.Set("huge", make([]byte, 6<<10), 0, 0, 1); err == nil {
		t.Fatal("an over-capacity set must be refused")
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["rejected_sets"] != "1" {
		t.Fatalf("rejected_sets = %q, want 1", stats["rejected_sets"])
	}
}

func TestPersistConfigValidation(t *testing.T) {
	if _, err := New(Config{MemoryBytes: 1 << 20, Persist: &PersistConfig{}}); err == nil {
		t.Fatal("Persist without Dir must error")
	}
	if _, err := New(Config{MemoryBytes: 1 << 20, Persist: &PersistConfig{Dir: t.TempDir(), Fsync: "bogus"}}); err == nil {
		t.Fatal("unknown fsync policy must error")
	}
}

// TestArithPreservesExpiry pins the memcached semantics: incr/decr rewrite
// the payload but keep the item's flags and expiration, in memory and in
// the journal.
func TestArithPreservesExpiry(t *testing.T) {
	dir := t.TempDir()
	pcfg := func() *PersistConfig {
		return &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf}
	}
	cfg := Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true, Persist: pcfg()}
	s1 := startServer(t, cfg)
	c := dial(t, s1)
	if err := c.Set("counter", []byte("41"), 9, 3600, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Incr("counter", 1); err != nil || !ok || v != 42 {
		t.Fatalf("incr: %d, %v, %v", v, ok, err)
	}
	wantExpiry := func(s *Server, when string) {
		t.Helper()
		sh := s.shardFor("counter")
		sh.mu.Lock()
		it, ok := sh.store.items["counter"]
		sh.mu.Unlock()
		if !ok {
			t.Fatalf("%s: counter missing", when)
		}
		if it.expiresAt.IsZero() {
			t.Fatalf("%s: incr cleared the expiration", when)
		}
		if it.flags != 9 {
			t.Fatalf("%s: incr changed flags to %d", when, it.flags)
		}
	}
	wantExpiry(s1, "live")
	s1.Kill()

	cfg.Persist = pcfg()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wantExpiry(s2, "recovered")
}

// TestRejectedReSetJournalsDelete pins journal fidelity on admission
// failure: a rejected re-set drops the live entry (the store tore it down to
// make room), so the journal must record that removal — otherwise recovery
// (and replicas) would resurrect the old value the client saw disappear.
func TestRejectedReSetJournalsDelete(t *testing.T) {
	dir := t.TempDir()
	pcfg := func() *PersistConfig {
		return &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf}
	}
	cfg := Config{MemoryBytes: 8 << 10, Policy: "camp", DisableIQ: true, Persist: pcfg()}
	s1 := startServer(t, cfg)
	c := dial(t, s1)
	if err := c.Set("victim", []byte("small"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	// The oversized rewrite is refused — and the old version is gone.
	if err := c.Set("victim", make([]byte, 12<<10), 0, 0, 1); err == nil {
		t.Fatal("an over-capacity re-set must be refused")
	}
	if _, ok, err := c.Get("victim"); err != nil || ok {
		t.Fatalf("victim still live after rejected re-set: %v, %v", ok, err)
	}
	s1.Kill()

	cfg.Persist = pcfg()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := captureState(s2); len(got) != 0 {
		t.Fatalf("recovery resurrected %d items after a rejected re-set: %v", len(got), got)
	}
}

// TestFlushAllPersists checks flush_all durably empties the store.
func TestFlushAllPersists(t *testing.T) {
	dir := t.TempDir()
	pcfg := func() *PersistConfig {
		return &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf}
	}
	cfg := Config{MemoryBytes: 1 << 20, Policy: "camp", DisableIQ: true, Persist: pcfg()}
	s1 := startServer(t, cfg)
	c := dial(t, s1)
	for i := 0; i < 10; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), []byte("v"), 0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("survivor", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	s1.Kill()

	cfg.Persist = pcfg()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := captureState(s2)
	if len(got) != 1 {
		t.Fatalf("recovered %d items after flush_all, want 1: %v", len(got), got)
	}
	if _, ok := got["survivor"]; !ok {
		t.Fatal("post-flush set lost in recovery")
	}
}
