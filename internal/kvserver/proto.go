package kvserver

import (
	"bufio"
	"net"
	"strconv"
	"sync"

	"camp/internal/proto"
)

// connBufSize sizes the per-connection bufio reader and writer. 16 KiB keeps
// typical multiget responses and pipelined set batches inside one buffer.
const connBufSize = 16 << 10

// maxPooledScratch caps the response scratch a connection returns to the
// pool, so one huge stats or debug reply doesn't pin memory forever.
const maxPooledScratch = 64 << 10

// connState is the pooled per-connection scratch that makes the request loop
// allocation-free: the buffered reader/writer pair, the zero-copy line
// reader, token slots for the in-place tokenizer, the hit list a multiget
// collects under the shard locks, and the append-based response buffer that
// replaces fmt.Fprintf. Everything is reused across commands and, via the
// pool, across connections.
type connState struct {
	r  *bufio.Reader
	w  *bufio.Writer
	lr *proto.LineReader
	// conn is the underlying connection, kept so long-lived handlers (the
	// replication feed) can set write deadlines.
	conn net.Conn

	tokens [][]byte
	hits   []*item
	out    []byte

	// keyBuf holds a storage command's namespaced key across the payload
	// read (which invalidates the tokens); valBuf is the arena-mode payload
	// scratch — the arena copies the bytes into its segment under the shard
	// lock, so neither buffer outlives its command. Both are reused across
	// commands, keeping the set path allocation-free.
	keyBuf []byte
	valBuf []byte

	// Instrumentation scratch dispatch fills per command: the shard the
	// command routed to (-1 when none) so its latency histogram can be
	// charged after the handler returns, and a copy of the key token —
	// taken before a payload read invalidates the tokens — for slowlog
	// recording. Reused across commands, so neither allocates.
	shardIdx int
	slowKey  []byte

	// tenant is the connection's current tenant, resolved once by the
	// tenant verb; nil means the default tenant (the state every
	// connection starts in). nsKey is scratch for building namespaced
	// store keys, so the hot path adds no allocations.
	tenant *tenant
	nsKey  []byte

	// replTenants is the tenant subset a "replconf tenants" announcement
	// scoped this connection's sync feeds to; nil means unfiltered.
	replTenants []string
}

// nsKeyFor maps a wire key into the connection tenant's namespace: bare for
// the default tenant (legacy layouts stay byte-identical), name+NUL-prefixed
// for any other, built in pooled scratch.
func (cs *connState) nsKeyFor(key []byte) []byte {
	t := cs.tenant
	if t == nil || t.prefix == "" {
		return key
	}
	b := append(cs.nsKey[:0], t.prefix...)
	b = append(b, key...)
	cs.nsKey = b
	return b
}

// keyPrefixLen is how many namespace bytes prefix this connection's stored
// keys — what VALUE lines strip so clients see the keys they sent.
func (cs *connState) keyPrefixLen() int {
	if cs.tenant == nil {
		return 0
	}
	return len(cs.tenant.prefix)
}

var connStatePool = sync.Pool{
	New: func() any {
		cs := &connState{
			r:      bufio.NewReaderSize(nil, connBufSize),
			w:      bufio.NewWriterSize(nil, connBufSize),
			tokens: make([][]byte, 0, 32),
			hits:   make([]*item, 0, 32),
			out:    make([]byte, 0, 512),
		}
		cs.lr = proto.NewLineReader(cs.r)
		return cs
	},
}

func getConnState(conn net.Conn) *connState {
	cs := connStatePool.Get().(*connState)
	cs.r.Reset(conn)
	cs.w.Reset(conn)
	cs.conn = conn
	return cs
}

func putConnState(cs *connState) {
	cs.r.Reset(nil)
	cs.w.Reset(nil)
	cs.conn = nil
	// Drop item references so evicted values can be collected while the
	// state sits in the pool.
	hits := cs.hits[:cap(cs.hits)]
	for i := range hits {
		hits[i] = nil
	}
	cs.hits = hits[:0]
	if cap(cs.out) > maxPooledScratch {
		cs.out = make([]byte, 0, 512)
	}
	if cap(cs.keyBuf) > maxPooledScratch {
		cs.keyBuf = nil
	}
	cs.keyBuf = cs.keyBuf[:0]
	if cap(cs.valBuf) > maxPooledScratch {
		cs.valBuf = nil
	}
	cs.valBuf = cs.valBuf[:0]
	cs.tenant = nil
	cs.replTenants = nil
	if cap(cs.nsKey) > maxPooledScratch {
		cs.nsKey = nil
	}
	cs.nsKey = cs.nsKey[:0]
	connStatePool.Put(cs)
}

// appendStat appends one "STAT <name> <value>\r\n" line.
func appendStat(out []byte, name string, v uint64) []byte {
	out = append(out, "STAT "...)
	out = append(out, name...)
	out = append(out, ' ')
	out = strconv.AppendUint(out, v, 10)
	return append(out, '\r', '\n')
}

// appendStatInt is appendStat for signed values.
func appendStatInt(out []byte, name string, v int64) []byte {
	out = append(out, "STAT "...)
	out = append(out, name...)
	out = append(out, ' ')
	out = strconv.AppendInt(out, v, 10)
	return append(out, '\r', '\n')
}

// appendStatStr is appendStat for string values.
func appendStatStr(out []byte, name, v string) []byte {
	out = append(out, "STAT "...)
	out = append(out, name...)
	out = append(out, ' ')
	out = append(out, v...)
	return append(out, '\r', '\n')
}

// appendClientError appends "CLIENT_ERROR <what...>\r\n" built from constant
// pieces, keeping malformed-command replies off the allocator too.
func appendClientError(out []byte, parts ...string) []byte {
	out = append(out, "CLIENT_ERROR"...)
	for _, p := range parts {
		out = append(out, ' ')
		out = append(out, p...)
	}
	return append(out, '\r', '\n')
}
