package kvserver

import (
	"sync/atomic"
	"time"
)

// Per-tenant request quotas (Config.TenantQuotas / campsrv -tenant-quota):
// the shed-on-exceed control a multi-tenant cache needs so one tenant's
// request storm cannot monopolize the server the way reserves already stop
// it monopolizing memory. Two independent limits:
//
//   - ops/sec, enforced with GCRA (the virtual-scheduling form of a token
//     bucket): the entire rate state is one int64 — the theoretical arrival
//     time of the next conforming request — advanced with a CAS loop, so the
//     hot path takes no lock and allocates nothing. A full second of burst
//     is allowed, matching a 1-second token bucket of depth = rate.
//   - bytes in flight, an atomic gauge of mutation payload bytes currently
//     being processed on behalf of the tenant across all connections,
//     acquired before the shard op and released after it.
//
// Over-quota requests are shed with "SERVER_ERROR tenant over quota" after
// the request (including any data block) has been fully consumed, so the
// connection stream stays in sync and the client can retry. Quotas are
// config-only — never journaled or replicated — because they describe the
// deployment, not the data.

// tenantQuota is one tenant's immutable limits plus the mutable rate/gauge
// state. A nil *tenantQuota means unlimited.
type tenantQuota struct {
	// tat is the GCRA theoretical arrival time, ns on the time.Now clock.
	tat atomic.Int64
	// interval is ns between conforming ops (1e9 / ops_per_sec); 0 disables
	// the rate limit.
	interval int64
	// burst is the tolerated scheduling slack in ns: one full second, i.e. a
	// burst of ops_per_sec back-to-back ops from idle.
	burst int64

	// inflight/maxInflight bound concurrently processed mutation payload
	// bytes; maxInflight 0 disables the limit.
	inflight    atomic.Int64
	maxInflight int64

	// shedReads extends the ops/sec limit to the read path; by default only
	// mutations are shed so an over-quota tenant can still drain its cache.
	shedReads bool
}

func newTenantQuota(q TenantQuota) *tenantQuota {
	tq := &tenantQuota{maxInflight: q.MaxBytesInFlight, shedReads: q.ShedReads}
	if q.OpsPerSec > 0 {
		tq.interval = int64(time.Second) / q.OpsPerSec
		tq.burst = int64(time.Second)
	}
	return tq
}

// allowOp admits one request at time now (ns) if the tenant is within its
// ops/sec limit, consuming one slot. Lock-free: a single CAS on the
// theoretical arrival time; contention retries are bounded by the number of
// concurrently admitting connections.
func (tq *tenantQuota) allowOp(now int64) bool {
	if tq == nil || tq.interval == 0 {
		return true
	}
	for {
		tat := tq.tat.Load()
		next := tat
		if next < now {
			next = now
		}
		next += tq.interval
		if next-now > tq.burst {
			return false
		}
		if tq.tat.CompareAndSwap(tat, next) {
			return true
		}
	}
}

// acquireBytes reserves n payload bytes against the in-flight limit; the
// caller must releaseBytes(n) after the shard op when it returns true.
func (tq *tenantQuota) acquireBytes(n int64) bool {
	if tq == nil || tq.maxInflight == 0 || n <= 0 {
		return true
	}
	for {
		cur := tq.inflight.Load()
		if cur+n > tq.maxInflight {
			return false
		}
		if tq.inflight.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

func (tq *tenantQuota) releaseBytes(n int64) {
	if tq == nil || tq.maxInflight == 0 || n <= 0 {
		return
	}
	tq.inflight.Add(-n)
}

// shedOp is the mutation-path quota gate: it admits the request or counts
// the shed and writes the over-quota error (suppressed under noreply, like
// every other error on a noreply mutation). nbytes is the payload size a
// store op carries; 0 for payload-less mutations.
func (s *Server) shedOp(cs *connState, t *tenant, now time.Time, nbytes int64, noreply bool) (shed bool, err error) {
	tq := t.quota
	if tq == nil {
		return false, nil
	}
	if tq.allowOp(now.UnixNano()) && tq.acquireBytes(nbytes) {
		return false, nil
	}
	t.quotaShed.Add(1)
	if noreply {
		return true, nil
	}
	_, err = cs.w.Write(replyOverQuota)
	return true, err
}
