package kvserver

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"camp/internal/metrics"
	"camp/internal/persist"
)

// serverVersion is the identity the version command and the stats
// version line report.
const serverVersion = "camp-kvs/1.0"

// Protocol replies as byte slices: handlers write them straight to the
// connection buffer, so the steady-state reply path performs no formatting
// and no allocation.
var (
	replyStored        = []byte("STORED\r\n")
	replyNotStored     = []byte("NOT_STORED\r\n")
	replyNotFound      = []byte("NOT_FOUND\r\n")
	replyDeleted       = []byte("DELETED\r\n")
	replyTouched       = []byte("TOUCHED\r\n")
	replyOK            = []byte("OK\r\n")
	replyEnd           = []byte("END\r\n")
	replyError         = []byte("ERROR\r\n")
	replyVersion       = []byte("VERSION " + serverVersion + "\r\n")
	replyOOM           = []byte("SERVER_ERROR out of memory storing object\r\n")
	replyTooLarge      = []byte("SERVER_ERROR object too large for cache\r\n")
	replyBadDataChunk  = []byte("CLIENT_ERROR bad data chunk\r\n")
	replyNonNumeric    = []byte("CLIENT_ERROR cannot increment or decrement non-numeric value\r\n")
	replyBadDelta      = []byte("CLIENT_ERROR invalid numeric delta argument\r\n")
	replyBadExptime    = []byte("CLIENT_ERROR invalid exptime argument\r\n")
	replyBadTouch      = []byte("CLIENT_ERROR bad touch command\r\n")
	replyBadDelete     = []byte("CLIENT_ERROR bad delete command\r\n")
	replyGetNoKey      = []byte("CLIENT_ERROR get requires a key\r\n")
	replyLineTooLong   = []byte("CLIENT_ERROR line too long\r\n")
	replyDebugNoKey    = []byte("CLIENT_ERROR debug requires a key\r\n")
	replyReadOnly      = []byte("SERVER_ERROR replica is read-only\r\n")
	replyOverQuota     = []byte("SERVER_ERROR tenant over quota\r\n")
	replyBadReplconf   = []byte("CLIENT_ERROR bad replconf command\r\n")
	replyReplokTenants = []byte("REPLOK tenants\r\n")
	replyBadSync       = []byte("CLIENT_ERROR bad sync command\r\n")
	replyBadReplica    = []byte("CLIENT_ERROR bad replica command (want promote or status)\r\n")
	replyNoJournal     = []byte("CLIENT_ERROR primary is not journaling (persistence with AOF required)\r\n")
	replyNotPrimary    = []byte("CLIENT_ERROR replica cannot serve syncs (chained replication unsupported)\r\n")
	replySyncFailed    = []byte("SERVER_ERROR sync failed\r\n")
	crlf               = []byte("\r\n")
)

// storeCmd enumerates the storage verbs so dispatch resolves the command
// once, from the wire bytes, and the handlers never re-compare strings.
type storeCmd uint8

const (
	cmdSet storeCmd = iota
	cmdAdd
	cmdReplace
	cmdAppend
	cmdPrepend
)

// String returns the protocol verb (a constant, so error formatting stays
// allocation-free).
func (c storeCmd) String() string {
	switch c {
	case cmdSet:
		return "set"
	case cmdAdd:
		return "add"
	case cmdReplace:
		return "replace"
	case cmdAppend:
		return "append"
	case cmdPrepend:
		return "prepend"
	}
	return "store"
}

// shard is one independent slice of the server: its own store (policy,
// allocator, items map), its own IQ miss table, its own mutex, and — when
// persistence is on — its own journal and snapshot generations under
// data-dir/shard-NNN/. Every command touches exactly one shard (flush_all
// and stats walk all of them), so N shards serve N cores without sharing a
// lock: the paper's §4.1 vertical-scaling recipe applied to the network
// server.
type shard struct {
	srv *Server

	mu       sync.Mutex
	store    *store
	missedAt map[string]time.Time

	// replPos is this shard's durable replication position — the primary
	// journal (run, generation, offset) every applied op up to now came
	// from. Guarded by mu so it moves atomically with the ops it describes:
	// the follower writes it together with each applied op (one position
	// record in the same journal batch), compaction snapshots carry the
	// latest one across journal truncation, and recovery seeds it back so a
	// restarted follower resumes with CONTINUE instead of a full resync.
	// Zero (RunID 0) on primaries, on followers that have not yet
	// bootstrapped, and on followers without an AOF to persist it in.
	// It is only ever set after the journal write that records it
	// succeeded: a position the journal does not hold must never be
	// reported (or snapshotted) as durable.
	replPos persist.Position
	// replDiverged marks the local journal as no longer a faithful prefix
	// of the applied stream: an op+position append failed, so an op may be
	// missing from the middle of the journal. From then on positions are
	// neither persisted nor advanced — a restart falls back to one full
	// resync instead of CONTINUE-ing past the gap into silent divergence.
	// A successful FULLSYNC bootstrap (whose flush+entries batch rewrites
	// the journaled state wholesale) heals it. Guarded by mu.
	replDiverged bool

	mgr *persist.Manager // nil without persistence

	// degraded marks this shard as serving cache-only after a persistence
	// failure: the journal handle has been dropped, mutations skip journaling,
	// replication positions freeze, and the background prober (health.go) owns
	// the way back — a successful disk probe followed by a clean compaction
	// snapshot. Atomic so stats and metrics read it without sh.mu.
	degraded atomic.Bool

	// compactMu serializes snapshot cycles on this shard (the background
	// compactor vs. forced Snapshot/flush_all). It is never taken on the
	// request path.
	compactMu sync.Mutex

	// latHist times every command routed to this shard; lockHist samples
	// how long the mutation path holds mu. Embedded (not pointers) and
	// atomic inside, so recording is two adds with no indirection and
	// scrapes never touch mu.
	latHist  metrics.Histogram
	lockHist metrics.Histogram
}

// shardIndex routes a key to its shard with FNV-1a, accepting the key in
// either its wire []byte form or as a string. The hash must be stable
// across restarts — each shard recovers only its own journal, so the routing
// that wrote a key must find it again after a reboot — which rules out the
// seeded maphash the in-process camp.Cache shards with.
func shardIndex[K ~string | ~[]byte](key K, n int) int {
	if n == 1 {
		return 0
	}
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

func (s *Server) shardFor(key string) *shard {
	return s.shards[shardIndex(key, len(s.shards))]
}

// shardForOp routes a key and records the shard index in the connection
// scratch, so dispatch can charge the command to the shard's latency
// histogram after the handler returns.
func (s *Server) shardForOp(key string, cs *connState) *shard {
	i := shardIndex(key, len(s.shards))
	cs.shardIdx = i
	return s.shards[i]
}

// shardForOpBytes is shardForOp for a key still in wire []byte form.
func (s *Server) shardForOpBytes(key []byte, cs *connState) *shard {
	i := shardIndex(key, len(s.shards))
	cs.shardIdx = i
	return s.shards[i]
}

func (s *Server) shardForBytes(key []byte) *shard {
	return s.shards[shardIndex(key, len(s.shards))]
}

// missTableMax bounds the IQ miss table so an attacker cannot balloon it
// with unique keys; missTableProbes is how many entries a full table checks
// for staleness per new miss; missTableTTL is when a pending miss goes
// stale (the matching set never came).
const (
	missTableMax    = 1 << 16
	missTableProbes = 8
	missTableTTL    = time.Minute
)

// recordMissLocked notes a get miss for IQ cost derivation. A full table
// probes a bounded handful of entries for staleness — Go's randomized map
// iteration starts each probe run at a fresh bucket, so successive misses
// walk the whole table incrementally. The previous full-table sweep here
// was O(64k) under sh.mu on the get path: one unlucky get could stall its
// shard for milliseconds. The caller holds sh.mu.
func (sh *shard) recordMissLocked(key string, now time.Time) {
	if len(sh.missedAt) >= missTableMax {
		probes := missTableProbes
		for k, at := range sh.missedAt {
			if probes <= 0 {
				break
			}
			probes--
			if now.Sub(at) > missTableTTL {
				delete(sh.missedAt, k)
			}
		}
		if len(sh.missedAt) >= missTableMax {
			return // still full of recent misses; drop this one
		}
	}
	sh.missedAt[key] = now
}

// costOfLocked returns the stored cost of a resident key, or 0.
func (sh *shard) costOfLocked(key string) int64 {
	if _, meta, ok := sh.store.peek(key); ok {
		return meta.Cost
	}
	return 0
}

// expirySweepProbes is how many items each mutation probes for lazy expiry
// (see store.sweepExpired).
const expirySweepProbes = 4

// storeLocked applies one storage command and returns the protocol reply.
// The key arrives in wire []byte form: the item-map lookup converts in place
// (allocation-free), an overwrite reuses the resident item's interned key
// string, and only a brand-new key materializes one. The caller holds sh.mu.
func (sh *shard) storeLocked(cmd storeCmd, keyBytes []byte, value []byte, flags uint32, ttl, cost int64, now time.Time) []byte {
	sh.store.sweepExpired(now, expirySweepProbes)
	existing, exists := sh.store.items[string(keyBytes)]
	var key string
	if exists {
		key = existing.key
	} else {
		key = string(keyBytes)
	}
	if exists && !existing.expiresAt.IsZero() && now.After(existing.expiresAt) {
		sh.store.delete(key)
		sh.store.expiredReclaimed++
		existing, exists = nil, false
	}
	switch cmd {
	case cmdAdd:
		if exists {
			return replyNotStored
		}
	case cmdReplace:
		if !exists {
			return replyNotStored
		}
	case cmdAppend, cmdPrepend:
		if !exists {
			return replyNotStored
		}
		// Concatenation keeps the existing flags and cost; the payload
		// just grows. itemValue resolves the arena record when one backs
		// the item; the fresh slice is built while the lock pins it.
		old := sh.store.itemValue(existing)
		if cmd == cmdAppend {
			value = append(append(make([]byte, 0, len(old)+len(value)), old...), value...)
		} else {
			value = append(append(make([]byte, 0, len(old)+len(value)), value...), old...)
		}
		flags = existing.flags
		// The handler's size gate saw only the delta; the combined value
		// must honor the limit too. Nothing is journaled and the existing
		// value stays as it was.
		if int64(len(value)) > sh.srv.cfg.MaxValueBytes {
			return replyTooLarge
		}
		if cost == 0 {
			cost = sh.costOfLocked(key)
		}
	}
	if cost == 0 && !sh.srv.cfg.DisableIQ {
		if at, ok := sh.missedAt[key]; ok {
			cost = now.Sub(at).Microseconds()
			if cost < 1 {
				cost = 1
			}
			delete(sh.missedAt, key)
		}
	}
	if cost == 0 {
		cost = 1
	}
	expires := expiryFrom(ttl, now)
	if !sh.store.setAbs(key, value, flags, expires, cost) {
		sh.srv.counters.setRejected.Add(1)
		// A failed set drops any existing version of the key (the store
		// already tore it down to make room); journal that removal, or
		// recovery and replicas would resurrect the old value.
		if exists {
			sh.journalLocked(persist.Op{Kind: persist.KindDelete, Key: key})
		}
		return replyOOM
	}
	sh.journalLocked(persist.Op{
		Kind:    persist.KindSet,
		Key:     key,
		Value:   value,
		Flags:   flags,
		Expires: persist.ExpiresFrom(expires),
		Size:    sh.store.itemSize(key, value),
		Cost:    cost,
	})
	return replyStored
}

// arithLocked applies incr/decr. A nil reply means success and val is the
// new value for the caller to format; otherwise reply is the error. The
// caller holds sh.mu.
func (sh *shard) arithLocked(incr bool, key string, delta uint64, now time.Time) (val uint64, reply []byte) {
	sh.store.sweepExpired(now, expirySweepProbes)
	it, ok := sh.store.get(key, now)
	if !ok {
		return 0, replyNotFound
	}
	cur, perr := strconv.ParseUint(string(sh.store.itemValue(it)), 10, 64)
	if perr != nil {
		return 0, replyNonNumeric
	}
	if incr {
		cur += delta // wraps at 2^64, as memcached does
	} else if cur < delta {
		cur = 0 // decr clamps at zero
	} else {
		cur -= delta
	}
	newVal := strconv.AppendUint(nil, cur, 10)
	cost := sh.costOfLocked(key)
	// Arithmetic keeps the item's flags and expiration, as memcached does;
	// only the payload changes.
	if !sh.store.setAbs(key, newVal, it.flags, it.expiresAt, cost) {
		sh.srv.counters.setRejected.Add(1)
		// The failed rewrite dropped the key (see storeLocked); keep the
		// journal in step.
		sh.journalLocked(persist.Op{Kind: persist.KindDelete, Key: key})
		return 0, replyOOM
	}
	sh.journalLocked(persist.Op{
		Kind:    persist.KindSet,
		Key:     key,
		Value:   newVal,
		Flags:   it.flags,
		Expires: persist.ExpiresFrom(it.expiresAt),
		Size:    sh.store.itemSize(key, newVal),
		Cost:    cost,
	})
	return cur, nil
}

// journalLocked appends one mutation to this shard's AOF. The caller holds
// sh.mu. A journal failure degrades the shard to cache-only operation
// (enterDegraded) instead of failing the client op: the server keeps
// serving, the error surfaces through persist_errors and persist_degraded,
// and the prober re-enters healthy once the disk recovers. An over-limit
// journal schedules an off-lock compaction instead of paying for one inline.
func (sh *shard) journalLocked(op persist.Op) {
	if sh.mgr == nil || sh.degraded.Load() {
		return
	}
	if err := sh.mgr.Append(op); err != nil {
		sh.enterDegraded("journal append", err)
		return
	}
	if sh.mgr.NeedsCompaction() {
		sh.srv.requestCompact(sh)
	}
}

// journalBatchLocked appends a group of mutations as one journal write (one
// fsync under FsyncAlways) — the bulk form of journalLocked a replica's
// bootstrap swap uses. ok reports whether the batch reached the journal
// (vacuously true without one, false while degraded); the replication path
// uses it to stop trusting positions after a failed append. The caller holds
// sh.mu.
func (sh *shard) journalBatchLocked(ops []persist.Op) (ok bool) {
	if sh.mgr == nil {
		return true
	}
	if sh.degraded.Load() {
		return false
	}
	if err := sh.mgr.AppendBatch(ops); err != nil {
		sh.enterDegraded("journal batch", err)
		return false
	}
	if sh.mgr.NeedsCompaction() {
		sh.srv.requestCompact(sh)
	}
	return true
}

// canPersistPosLocked reports whether this shard can durably record
// replication positions: there is a healthy AOF to put them in, and the
// journal is still a faithful prefix of the applied stream. The caller holds
// sh.mu.
func (sh *shard) canPersistPosLocked() bool {
	return sh.mgr != nil && sh.srv.cfg.Persist != nil &&
		!sh.srv.cfg.Persist.DisableAOF && !sh.replDiverged &&
		!sh.degraded.Load()
}

// enterDegraded moves the shard to cache-only operation after a persistence
// failure: the broken journal handle is dropped (so nothing keeps writing
// into a sick disk, and stray appends fail fast instead of blocking),
// mutations stop journaling, replication positions freeze, and the server
// keeps serving all traffic from memory. The background prober owns the way
// back to healthy. Callable with or without sh.mu held — it touches only
// atomics and the manager's own lock.
func (sh *shard) enterDegraded(what string, err error) {
	sh.srv.counters.persistErrors.Add(1)
	if sh.degraded.CompareAndSwap(false, true) {
		sh.srv.logf("kvserver: %s: %v — shard degraded, serving cache-only", what, err)
		if sh.mgr != nil {
			sh.mgr.Detach()
		}
		sh.srv.wakeProber()
		return
	}
	sh.srv.logf("kvserver: %s (already degraded): %v", what, err)
}

// markDivergedLocked records a journal gap: an append on the replication
// apply path failed, so the journal may be missing an applied op. The
// persisted position must not advance past the gap — clear it and stop
// persisting, forcing the next restart into one clean full resync. The
// caller holds sh.mu.
func (sh *shard) markDivergedLocked() {
	sh.replDiverged = true
	sh.replPos = persist.Position{}
}

// compact runs one snapshot-then-truncate cycle on this shard. Degraded
// shards are skipped: the prober owns re-entry to healthy (runCompaction
// with heal=true), and compacting a broken disk from the interval ticker
// would just churn errors.
func (sh *shard) compact() {
	if sh.degraded.Load() {
		return
	}
	sh.runCompaction(false)
}

// runCompaction performs one snapshot-then-truncate cycle. The shard lock is
// held only for the journal segment switch and the entry copy-out;
// serializing and writing the snapshot — the part proportional to the data —
// happens unlocked, so a snapshot never stalls the shard for the duration of
// the disk write, and never stalls the other shards at all.
//
// heal=true is the prober's re-entry path for a degraded shard: the degraded
// flag clears immediately after BeginCompact succeeds, while sh.mu is still
// held, so every mutation applied after the segment switch journals to the
// new segment and the snapshot+tail recovery invariant holds with no gap.
// (Clearing after Commit instead would lose every op applied during the
// unlocked snapshot write.) Any failure — segment switch or snapshot commit —
// degrades the shard (again); a server shutting down (persist.ErrClosed)
// does not.
func (sh *shard) runCompaction(heal bool) error {
	if sh.mgr == nil {
		return nil
	}
	sh.compactMu.Lock()
	defer sh.compactMu.Unlock()
	sh.mu.Lock()
	c, err := sh.mgr.BeginCompact()
	if err != nil {
		sh.mu.Unlock()
		if !errors.Is(err, persist.ErrClosed) {
			sh.enterDegraded("snapshot begin", err)
		}
		return err
	}
	if heal {
		sh.degraded.Store(false)
	}
	ops := sh.store.collectOps()
	// A follower's position must survive the journal truncation this
	// compaction performs — its position records live in the segments being
	// retired — so the snapshot carries the latest one. Read under the same
	// lock as the entry copy-out: the position describes exactly the ops in
	// this snapshot.
	if pos := sh.replPos; pos.RunID != 0 {
		ops = append(ops, persist.Op{Kind: persist.KindPosition, Pos: pos})
	}
	sh.mu.Unlock()
	if err := c.Commit(emitOps(ops)); err != nil {
		if !errors.Is(err, persist.ErrClosed) {
			sh.enterDegraded("snapshot commit", err)
		}
		return err
	}
	sh.srv.counters.persistSnapshots.Add(1)
	return nil
}
