package kvserver

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"camp/internal/persist"
)

// shard is one independent slice of the server: its own store (policy,
// allocator, items map), its own IQ miss table, its own mutex, and — when
// persistence is on — its own journal and snapshot generations under
// data-dir/shard-NNN/. Every command touches exactly one shard (flush_all
// and stats walk all of them), so N shards serve N cores without sharing a
// lock: the paper's §4.1 vertical-scaling recipe applied to the network
// server.
type shard struct {
	srv *Server

	mu       sync.Mutex
	store    *store
	missedAt map[string]time.Time

	mgr *persist.Manager // nil without persistence

	// compactMu serializes snapshot cycles on this shard (the background
	// compactor vs. forced Snapshot/flush_all). It is never taken on the
	// request path.
	compactMu sync.Mutex
}

// shardIndex routes a key to its shard with FNV-1a. The hash must be stable
// across restarts — each shard recovers only its own journal, so the routing
// that wrote a key must find it again after a reboot — which rules out the
// seeded maphash the in-process camp.Cache shards with.
func shardIndex(key string, n int) int {
	if n == 1 {
		return 0
	}
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

func (s *Server) shardFor(key string) *shard {
	return s.shards[shardIndex(key, len(s.shards))]
}

// recordMissLocked notes a get miss for IQ cost derivation, bounding the
// table so an attacker cannot balloon it with unique keys. The caller holds
// sh.mu.
func (sh *shard) recordMissLocked(key string, now time.Time) {
	const maxPending = 1 << 16
	if len(sh.missedAt) >= maxPending {
		for k, at := range sh.missedAt {
			if now.Sub(at) > time.Minute {
				delete(sh.missedAt, k)
			}
		}
		if len(sh.missedAt) >= maxPending {
			return // still full of recent misses; drop this one
		}
	}
	sh.missedAt[key] = now
}

// costOfLocked returns the stored cost of a resident key, or 0.
func (sh *shard) costOfLocked(key string) int64 {
	if _, meta, ok := sh.store.peek(key); ok {
		return meta.Cost
	}
	return 0
}

// storeLocked applies one storage command and returns the protocol reply.
// The caller holds sh.mu.
func (sh *shard) storeLocked(cmd, key string, value []byte, flags uint32, ttl, cost int64, now time.Time) string {
	existing, exists := sh.store.items[key]
	if exists && !existing.expiresAt.IsZero() && now.After(existing.expiresAt) {
		sh.store.delete(key)
		existing, exists = nil, false
	}
	switch cmd {
	case "add":
		if exists {
			return "NOT_STORED\r\n"
		}
	case "replace":
		if !exists {
			return "NOT_STORED\r\n"
		}
	case "append", "prepend":
		if !exists {
			return "NOT_STORED\r\n"
		}
		// Concatenation keeps the existing flags and cost; the payload
		// just grows.
		if cmd == "append" {
			value = append(append(make([]byte, 0, len(existing.value)+len(value)), existing.value...), value...)
		} else {
			value = append(append(make([]byte, 0, len(existing.value)+len(value)), value...), existing.value...)
		}
		flags = existing.flags
		if cost == 0 {
			cost = sh.costOfLocked(key)
		}
	}
	if cost == 0 && !sh.srv.cfg.DisableIQ {
		if at, ok := sh.missedAt[key]; ok {
			cost = now.Sub(at).Microseconds()
			if cost < 1 {
				cost = 1
			}
			delete(sh.missedAt, key)
		}
	}
	if cost == 0 {
		cost = 1
	}
	expires := expiryFrom(ttl, now)
	if !sh.store.setAbs(key, value, flags, expires, cost) {
		sh.srv.counters.setRejected.Add(1)
		return "SERVER_ERROR out of memory storing object\r\n"
	}
	sh.journalLocked(persist.Op{
		Kind:    persist.KindSet,
		Key:     key,
		Value:   value,
		Flags:   flags,
		Expires: persist.ExpiresFrom(expires),
		Size:    sh.store.itemSize(key, value),
		Cost:    cost,
	})
	return "STORED\r\n"
}

// arithLocked applies incr/decr and returns the protocol reply. The caller
// holds sh.mu.
func (sh *shard) arithLocked(cmd, key string, delta uint64, now time.Time) string {
	it, ok := sh.store.get(key, now)
	if !ok {
		return "NOT_FOUND\r\n"
	}
	cur, perr := strconv.ParseUint(string(it.value), 10, 64)
	if perr != nil {
		return "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n"
	}
	if cmd == "incr" {
		cur += delta // wraps at 2^64, as memcached does
	} else if cur < delta {
		cur = 0 // decr clamps at zero
	} else {
		cur -= delta
	}
	newVal := strconv.FormatUint(cur, 10)
	cost := sh.costOfLocked(key)
	// Arithmetic keeps the item's flags and expiration, as memcached does;
	// only the payload changes.
	if !sh.store.setAbs(key, []byte(newVal), it.flags, it.expiresAt, cost) {
		sh.srv.counters.setRejected.Add(1)
		return "SERVER_ERROR out of memory storing object\r\n"
	}
	sh.journalLocked(persist.Op{
		Kind:    persist.KindSet,
		Key:     key,
		Value:   []byte(newVal),
		Flags:   it.flags,
		Expires: persist.ExpiresFrom(it.expiresAt),
		Size:    sh.store.itemSize(key, []byte(newVal)),
		Cost:    cost,
	})
	return newVal + "\r\n"
}

// journalLocked appends one mutation to this shard's AOF. The caller holds
// sh.mu. Journal failures are surfaced through the persist_errors stat
// rather than failing the client op; with a healthy disk they do not happen.
// An over-limit journal schedules an off-lock compaction instead of paying
// for one inline.
func (sh *shard) journalLocked(op persist.Op) {
	if sh.mgr == nil {
		return
	}
	if err := sh.mgr.Append(op); err != nil {
		sh.srv.counters.persistErrors.Add(1)
		sh.srv.logf("kvserver: journal: %v", err)
		return
	}
	if sh.mgr.NeedsCompaction() {
		sh.srv.requestCompact(sh)
	}
}

// compact runs one snapshot-then-truncate cycle on this shard. The shard
// lock is held only for the journal segment switch and the entry copy-out;
// serializing and writing the snapshot — the part proportional to the data —
// happens unlocked, so a snapshot never stalls the shard for the duration of
// the disk write, and never stalls the other shards at all.
func (sh *shard) compact() {
	if sh.mgr == nil {
		return
	}
	sh.compactMu.Lock()
	defer sh.compactMu.Unlock()
	sh.mu.Lock()
	c, err := sh.mgr.BeginCompact()
	if err != nil {
		sh.mu.Unlock()
		if !errors.Is(err, persist.ErrClosed) {
			sh.srv.counters.persistErrors.Add(1)
			sh.srv.logf("kvserver: snapshot: %v", err)
		}
		return
	}
	ops := sh.store.collectOps()
	sh.mu.Unlock()
	if err := c.Commit(emitOps(ops)); err != nil {
		sh.srv.counters.persistErrors.Add(1)
		sh.srv.logf("kvserver: snapshot: %v", err)
		return
	}
	sh.srv.counters.persistSnapshots.Add(1)
}
