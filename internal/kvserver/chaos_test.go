package kvserver

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"camp/internal/fault"
	"camp/internal/persist"
)

// waitDegraded polls until exactly want shards report persist-degraded.
func waitDegraded(t *testing.T, s *Server, want int64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for s.degradedShards() != want {
		if time.Now().After(deadline) {
			t.Fatalf("degraded shards = %d, want %d (after %v)", s.degradedShards(), want, within)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDegradedModeEndToEnd pins the issue's acceptance criterion
// deterministically: with injected fsync (or ENOSPC) faults on every shard,
// the server keeps serving cache-only and reports the degradation; once the
// fault is lifted, the background prober restores healthy operation with a
// clean compaction snapshot, and writes are durable again — including the
// ones taken while degraded, which that snapshot captures.
func TestDegradedModeEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		name string
		rule fault.Rule
	}{
		{name: "fsync-eio", rule: fault.Rule{Op: fault.OpSync, Err: fault.ErrIO}},
		{name: "write-enospc", rule: fault.Rule{Op: fault.OpWrite, Err: fault.ErrNoSpace}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := fault.NewInjector(nil, 42)
			pcfg := func() *PersistConfig {
				return &PersistConfig{
					Dir:      dir,
					Fsync:    persist.FsyncAlways,
					FS:       inj,
					ProbeMin: 5 * time.Millisecond,
					ProbeMax: 50 * time.Millisecond,
					Logf:     t.Logf,
				}
			}
			cfg := Config{MemoryBytes: 8 << 20, Shards: 4, Persist: pcfg()}
			s := startServer(t, cfg)
			c := dial(t, s)

			if err := c.Set("pre", []byte("before-fault"), 1, 0, 10); err != nil {
				t.Fatal(err)
			}

			// Break the disk under every shard, then write enough keys that
			// each shard journals at least once and trips over the fault.
			inj.Fail(tc.rule)
			for i := 0; i < 64; i++ {
				if err := c.Set(fmt.Sprintf("deg:%02d", i), []byte("during-fault"), 2, 0, 5); err != nil {
					t.Fatalf("set during fault must still be served: %v", err)
				}
			}
			waitDegraded(t, s, int64(cfg.Shards), 5*time.Second)

			// Degraded is visible: stats, and the per-shard breakdown.
			stats, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if got := stats["persist_degraded"]; got != strconv.Itoa(cfg.Shards) {
				t.Fatalf("STAT persist_degraded = %q, want %d", got, cfg.Shards)
			}

			// Cache-only service continues: reads hit, writes land.
			if v, ok, err := c.Get("pre"); err != nil || !ok || string(v) != "before-fault" {
				t.Fatalf("degraded read = %q, %v, %v", v, ok, err)
			}
			if err := c.Set("still-writable", []byte("yes"), 0, 0, 1); err != nil {
				t.Fatal(err)
			}

			// Lift the fault; the prober must bring every shard back on its
			// own, via a clean compaction snapshot.
			inj.Heal()
			waitDegraded(t, s, 0, 10*time.Second)
			if got := s.counters.persistErrors.Load(); got == 0 {
				t.Fatal("persist_errors = 0 after an injected fault")
			}

			// Durable again: post-heal writes and the degraded-era state both
			// survive a graceful restart (the heal snapshot captured them).
			if err := c.Set("post", []byte("after-heal"), 3, 0, 7); err != nil {
				t.Fatal(err)
			}
			want := captureState(s)
			if err := s.Close(); err != nil {
				t.Fatalf("Close after heal: %v", err)
			}
			s2, err := New(Config{MemoryBytes: 8 << 20, Shards: 4, Persist: pcfg()})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			assertStateEqual(t, want, captureState(s2))
		})
	}
}

// chaosEnv reads an integer knob for the chaos harness.
func chaosEnv(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// TestChaosPrimaryFollower is the randomized chaos harness ("make chaos"):
// a primary+follower pair driven through seeded schedules of disk faults
// (EIO, ENOSPC, fail-once fsync, torn writes — on both sides) and network
// faults on the replication link (latency, one-way partitions, mid-frame
// truncation, dropped and refused connections), under a randomized client
// workload. Throughout: the primary never stops serving. Afterwards: every
// degraded shard heals on its own, the follower converges byte-exact
// (CONTINUE/FULLSYNC decisions must have stayed correct under every
// partition and truncated stream), and a graceful restart of the primary
// reproduces its full live state.
//
// Skipped unless CAMP_CHAOS is set; CAMP_CHAOS_SEED and CAMP_CHAOS_ROUNDS
// pick the schedule. The harness reports the seed on failure so a run can
// be replayed exactly.
func TestChaosPrimaryFollower(t *testing.T) {
	if os.Getenv("CAMP_CHAOS") == "" {
		t.Skip("chaos harness: set CAMP_CHAOS=1 (or run 'make chaos') to enable")
	}
	seed := chaosEnv("CAMP_CHAOS_SEED", 1)
	rounds := int(chaosEnv("CAMP_CHAOS_ROUNDS", 8))
	t.Logf("chaos: seed=%d rounds=%d (replay: CAMP_CHAOS_SEED=%d)", seed, rounds, seed)
	rnd := rand.New(rand.NewSource(seed))

	const shards = 4
	pcfg := func(dir string, fs fault.FS) *PersistConfig {
		return &PersistConfig{
			Dir:      dir,
			Fsync:    persist.FsyncEverySec,
			AOFLimit: 1 << 20,
			FS:       fs,
			ProbeMin: 5 * time.Millisecond,
			ProbeMax: 100 * time.Millisecond,
			Logf:     t.Logf,
		}
	}
	primDir := t.TempDir()
	primInj := fault.NewInjector(nil, seed)
	primary := startServer(t, Config{
		MemoryBytes: 64 << 20, Shards: shards, Persist: pcfg(primDir, primInj),
	})

	proxy, err := fault.NewProxy("127.0.0.1:0", primary.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	folInj := fault.NewInjector(nil, seed+1)
	folCfg := Config{
		MemoryBytes: 64 << 20, Shards: shards, Persist: pcfg(t.TempDir(), folInj),
	}
	folCfg.ReplicaOf = proxy.Addr()
	follower := startServer(t, folCfg)

	c := dial(t, primary)
	val := func(i, round int) []byte { return []byte(fmt.Sprintf("v%03d.r%02d", i, round)) }

	for round := 0; round < rounds; round++ {
		// Disk fault schedule for this round.
		switch rnd.Intn(6) {
		case 0:
			primInj.Fail(fault.Rule{Op: fault.OpSync, Err: fault.ErrIO, Prob: 0.5})
		case 1:
			primInj.Fail(fault.Rule{Op: fault.OpWrite, Err: fault.ErrNoSpace, After: rnd.Intn(20)})
		case 2:
			primInj.Fail(fault.Rule{Op: fault.OpWrite, TornWrite: true, Count: 1, After: rnd.Intn(10)})
		case 3:
			folInj.Fail(fault.Rule{Op: fault.OpSync, Err: fault.ErrIO, Count: 2})
		case 4:
			folInj.Fail(fault.Rule{Op: fault.OpWrite, Err: fault.ErrNoSpace, Prob: 0.3})
		case 5:
			// Disk behaves this round.
		}
		// Network fault schedule for the replication link.
		switch rnd.Intn(6) {
		case 0:
			proxy.SetLatency(time.Duration(1+rnd.Intn(4)) * time.Millisecond)
		case 1:
			proxy.SetBlackhole(fault.Down, true)
		case 2:
			proxy.SetBlackhole(fault.Up, true)
		case 3:
			proxy.TruncateAfter(fault.Down, int64(rnd.Intn(8192)))
		case 4:
			proxy.DropConns()
		case 5:
			// Network behaves this round.
		}

		// Randomized workload against the primary. Every op must be served —
		// a degraded shard is still a serving shard.
		for i := 0; i < 200; i++ {
			switch r := rnd.Float64(); {
			case r < 0.70:
				k := fmt.Sprintf("chaos:%03d", rnd.Intn(400))
				if err := c.Set(k, val(rnd.Intn(400), round), uint32(round), 0, int64(1+rnd.Intn(100))); err != nil {
					t.Fatalf("round %d: set: %v (seed %d)", round, err, seed)
				}
			case r < 0.85:
				if _, err := c.Delete(fmt.Sprintf("chaos:%03d", rnd.Intn(400))); err != nil {
					t.Fatalf("round %d: delete: %v (seed %d)", round, err, seed)
				}
			default:
				if _, _, err := c.Get(fmt.Sprintf("chaos:%03d", rnd.Intn(400))); err != nil {
					t.Fatalf("round %d: get: %v (seed %d)", round, err, seed)
				}
			}
		}

		// The server (and its stats surface) is alive, degraded or not.
		if _, err := c.Stats(); err != nil {
			t.Fatalf("round %d: stats: %v (seed %d)", round, err, seed)
		}

		// Sometimes heal mid-run so the prober's recovery also runs while
		// chaos continues on the other axis.
		if rnd.Intn(2) == 0 {
			primInj.Heal()
			folInj.Heal()
		}
		if rnd.Intn(2) == 0 {
			proxy.SetLatency(0)
			proxy.SetBlackhole(fault.Both, false)
			proxy.TruncateAfter(fault.Down, -1)
		}
	}

	// End of chaos: lift everything and demand full convergence.
	primInj.Heal()
	folInj.Heal()
	proxy.SetLatency(0)
	proxy.SetBlackhole(fault.Both, false)
	proxy.TruncateAfter(fault.Up, -1)
	proxy.TruncateAfter(fault.Down, -1)
	proxy.SetRefuse(false)
	proxy.DropConns() // force fresh streams through the now-clean link

	waitDegraded(t, primary, 0, 30*time.Second)
	waitDegraded(t, follower, 0, 30*time.Second)
	waitCaughtUp(t, primary, follower)
	assertStateEqual(t, captureState(primary), captureState(follower))

	// Durability: a graceful drain of the primary and a cold restart from
	// its data dir must reproduce the live state exactly.
	want := captureState(primary)
	follower.Close()
	if err := primary.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("primary Shutdown: %v (seed %d)", err, seed)
	}
	re, err := New(Config{MemoryBytes: 64 << 20, Shards: shards, Persist: pcfg(primDir, primInj)})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertStateEqual(t, want, captureState(re))
}
