package kvserver

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"camp/internal/kvclient"
	"camp/internal/metrics"
)

// requiredFamilies are the metric families every server must expose,
// regardless of role or persistence: the CI metrics-gate checks the same
// list against a live scrape.
var requiredFamilies = []string{
	"camp_uptime_seconds",
	"camp_limit_bytes",
	"camp_cmd_total",
	"camp_get_hits_total",
	"camp_get_misses_total",
	"camp_connections_current",
	"camp_connections_total",
	"camp_bytes_read_total",
	"camp_bytes_written_total",
	"camp_latency_seconds",
	"camp_shard_latency_seconds",
	"camp_shard_lock_hold_seconds",
	"camp_shard_items",
	"camp_shard_bytes",
	"camp_shard_evictions_total",
	"camp_shard_rejected_sets_total",
	"camp_shard_expired_reclaimed_total",
	"camp_shard_iq_miss_table",
	"camp_shard_arena_live_bytes",
	"camp_shard_arena_dead_bytes",
	"camp_shard_arena_held_bytes",
	"camp_shard_arena_segments",
	"camp_shard_arena_compactions_total",
	"camp_shard_arena_relocated_bytes_total",
	"camp_shard_journal_generation",
	"camp_shard_journal_bytes",
	"camp_shard_compactions_total",
	"camp_shard_persist_degraded",
	"camp_conn_panics_total",
	"camp_accept_rejected_maxconns_total",
	"camp_persist_errors_total",
	"camp_slowlog_entries",
	"camp_slowlog_threshold_seconds",
	"camp_repl_feed_generation",
	"camp_repl_feed_offset_bytes",
	"camp_repl_feed_lag_bytes",
	"camp_repl_connected",
	"camp_repl_applied_ops_total",
	"camp_repl_lag_seconds",
	"camp_repl_durable_position",
	"camp_tenant_bytes",
	"camp_tenant_items",
	"camp_tenant_evictions_total",
	"camp_tenant_reserved_bytes",
	"camp_tenant_hits_total",
	"camp_tenant_misses_total",
	"camp_tenant_cost_saved_total",
}

// TestMetricsGate is the live-scrape gate `make metrics-gate` runs in CI: a
// server with -metrics-addr must serve syntactically valid Prometheus text
// with every required family, per-verb latency histogram samples, per-shard
// gauges — and a working pprof endpoint, CPU profile included.
func TestMetricsGate(t *testing.T) {
	s := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Shards:      2,
		MetricsAddr: "127.0.0.1:0",
	})
	c := dial(t, s)
	if err := c.Set("gate-key", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("gate-key"); err != nil {
		t.Fatal(err)
	}

	base := "http://" + s.MetricsAddr()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	text := string(body)
	fams, err := metrics.ValidateText(text)
	if err != nil {
		t.Fatalf("/metrics output invalid: %v", err)
	}
	if err := metrics.RequireFamilies(fams, requiredFamilies...); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`camp_cmd_total{verb="set"} 1`,
		`camp_latency_seconds_count{verb="set"} 1`,
		`camp_latency_seconds_count{verb="get"} 1`,
		`camp_latency_seconds_bucket{verb="get",le="+Inf"} 1`,
		`camp_shard_items{shard="0"} `,
		`camp_shard_items{shard="1"} `,
		`camp_connections_current 1`,
		`camp_limit_bytes 1048576`,
		`camp_tenant_bytes{tenant="default"} `,
		`camp_tenant_hits_total{tenant="default"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// pprof: the index must list profiles, and a short CPU profile must
	// stream back non-empty (the gzip'd protobuf always has content).
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(idx), "goroutine") {
		t.Fatalf("pprof index: status %d, body %.80q", resp.StatusCode, idx)
	}
	resp, err = http.Get(base + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(prof) == 0 {
		t.Fatalf("pprof profile: status %d, %d bytes", resp.StatusCode, len(prof))
	}
}

// TestStatsLineSet pins the exact key set of the main stats reply on a
// volatile (non-persist, non-replica) server, so a stat silently vanishing
// or changing name fails loudly. New stats are fine — add them here.
func TestStatsLineSet(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20, Shards: 2})
	c := dial(t, s)
	if err := c.Set("k", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"uptime", "version", "pointer_size",
		"curr_connections", "total_connections", "bytes_read", "bytes_written",
		"cmd_get", "cmd_set", "cmd_add", "cmd_replace", "cmd_append",
		"cmd_prepend", "cmd_incr", "cmd_decr", "cmd_touch", "cmd_delete",
		"get_hits", "get_misses", "set_rejected",
		"conn_panics", "accept_rejected_maxconns",
		"curr_items", "bytes", "limit_maxbytes", "evictions",
		"expired_reclaimed", "iq_miss_table_entries",
		"policy", "mode", "shards", "role", "rejected_sets", "camp_queues",
		"tenants",
	}
	got := make([]string, 0, len(stats))
	for k := range stats {
		got = append(got, k)
	}
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("stats key set changed:\n got %v\nwant %v", got, want)
	}
	if stats["version"] != serverVersion {
		t.Errorf("version = %q, want %q", stats["version"], serverVersion)
	}
	if stats["pointer_size"] != strconv.Itoa(strconv.IntSize) {
		t.Errorf("pointer_size = %q", stats["pointer_size"])
	}
	if stats["curr_connections"] != "1" || stats["total_connections"] != "1" {
		t.Errorf("connection stats = %s/%s, want 1/1",
			stats["curr_connections"], stats["total_connections"])
	}
	for _, k := range []string{"bytes_read", "bytes_written"} {
		if n, _ := strconv.Atoi(stats[k]); n <= 0 {
			t.Errorf("%s = %q, want > 0", k, stats[k])
		}
	}
	if stats["iq_miss_table_entries"] != "0" {
		t.Errorf("iq_miss_table_entries = %q, want 0 (no misses yet)", stats["iq_miss_table_entries"])
	}
	// A get miss must show up in the miss table; the set that resolves it
	// must drain it.
	if _, _, err := c.Get("missed-key"); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.Stats(); st["iq_miss_table_entries"] != "1" {
		t.Errorf("iq_miss_table_entries after miss = %q, want 1", st["iq_miss_table_entries"])
	}
	if err := c.Set("missed-key", []byte("v"), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.Stats(); st["iq_miss_table_entries"] != "0" {
		t.Errorf("iq_miss_table_entries after resolving set = %q, want 0", st["iq_miss_table_entries"])
	}
}

// TestStatsLatencyAndShards exercises the wire commands through the parsed
// client accessors.
func TestStatsLatencyAndShards(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20, Shards: 4, Persist: &PersistConfig{Dir: t.TempDir()}})
	c := dial(t, s)
	const sets = 32
	for i := 0; i < sets; i++ {
		if err := c.Set(fmt.Sprintf("k%03d", i), []byte("value"), 0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Get("k000"); err != nil {
		t.Fatal(err)
	}

	lat, err := c.StatsLatency()
	if err != nil {
		t.Fatal(err)
	}
	for _, verb := range []string{"get", "set", "add", "replace", "append",
		"prepend", "incr", "decr", "touch", "delete", "other"} {
		if _, ok := lat[verb]; !ok {
			t.Errorf("stats latency missing verb %q", verb)
		}
	}
	if lat["set"].Count != sets {
		t.Errorf("set count = %d, want %d", lat["set"].Count, sets)
	}
	if lat["get"].Count != 1 {
		t.Errorf("get count = %d, want 1", lat["get"].Count)
	}
	if lat["set"].P99 < lat["set"].P50 || lat["set"].P50 <= 0 {
		t.Errorf("set quantiles implausible: %+v", lat["set"])
	}
	if lat["set"].Sum <= 0 || lat["set"].Avg <= 0 {
		t.Errorf("set sum/avg implausible: %+v", lat["set"])
	}
	if lat["delete"].Count != 0 {
		t.Errorf("delete count = %d, want 0", lat["delete"].Count)
	}

	shardStats, err := c.StatsShards()
	if err != nil {
		t.Fatal(err)
	}
	if len(shardStats) != 4 {
		t.Fatalf("StatsShards returned %d shards, want 4", len(shardStats))
	}
	var items, ops, lockHolds, journalBytes int64
	for _, ss := range shardStats {
		items += ss.Items
		ops += int64(ss.Ops)
		lockHolds += int64(ss.LockHolds)
		journalBytes += ss.JournalBytes
		if ss.JournalGen == 0 {
			t.Errorf("journal_gen = 0 with persistence on: %+v", ss)
		}
	}
	if items != sets {
		t.Errorf("summed shard items = %d, want %d", items, sets)
	}
	if ops != sets+1 {
		t.Errorf("summed shard ops = %d, want %d", ops, sets+1)
	}
	if lockHolds != sets {
		t.Errorf("summed lock holds = %d, want %d (one per set)", lockHolds, sets)
	}
	if journalBytes <= 0 {
		t.Errorf("summed journal bytes = %d, want > 0", journalBytes)
	}
}

// TestSlowlogEndToEnd drives the slowlog over the wire: threshold 0 records
// every command with verb, key, duration and timestamp; reset clears; a
// raised threshold stops recording.
func TestSlowlogEndToEnd(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	c := dial(t, s)

	// Default threshold (10ms): nothing this fast gets recorded.
	if err := c.Set("fast", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	entries, err := c.Slowlog()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("slowlog not empty at default threshold: %+v", entries)
	}

	// Threshold 0 records everything — the injected "slow" command.
	if err := c.SlowlogSetThreshold(0); err != nil {
		t.Fatal(err)
	}
	before := time.Now()
	if err := c.Set("slow-key", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	entries, err = c.Slowlog()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("slowlog empty at threshold 0")
	}
	e := entries[0]
	if e.Verb != "set" || e.Key != "slow-key" {
		t.Fatalf("entry = %+v, want set slow-key", e)
	}
	if e.Duration <= 0 {
		t.Errorf("duration = %v, want > 0", e.Duration)
	}
	if e.Time.Before(before.Add(-2*time.Second)) || e.Time.After(time.Now().Add(2*time.Second)) {
		t.Errorf("timestamp %v implausible (now %v)", e.Time, time.Now())
	}
	if e.ID == 0 {
		t.Errorf("ID = 0, want monotonic from 1")
	}

	// Raise the threshold before resetting: at threshold 0 the reset
	// command itself would be recorded right after it cleared the ring
	// (commands observe after their handler runs).
	if err := c.SlowlogSetThreshold(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.SlowlogReset(); err != nil {
		t.Fatal(err)
	}
	if entries, err = c.Slowlog(); err != nil || len(entries) != 0 {
		t.Fatalf("after reset: %d entries, err %v", len(entries), err)
	}

	// At the raised threshold fast commands stay unrecorded.
	if err := c.Set("fast2", []byte("v"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if entries, err = c.Slowlog(); err != nil || len(entries) != 0 {
		t.Fatalf("after raising threshold: %d entries, err %v", len(entries), err)
	}

	// Bad subcommands answer CLIENT_ERROR without killing the connection.
	conn := rawDial(t, s)
	defer conn.Close()
	if got := sendLine(t, conn, "slowlog bogus"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("slowlog bogus = %q", got)
	}
}

// TestReplicationLagMetrics checks both sides' replication gauges: the
// primary's per-feed position series and the follower's stream staleness.
func TestReplicationLagMetrics(t *testing.T) {
	pCfg := Config{MemoryBytes: 1 << 20, Persist: &PersistConfig{Dir: t.TempDir()}}
	p := startServer(t, pCfg)
	f := startReplica(t, p, Config{MemoryBytes: 1 << 20, Persist: &PersistConfig{Dir: t.TempDir()}})

	c := dial(t, p)
	for i := 0; i < 10; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), []byte("v"), 0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, p, f)

	var sb strings.Builder
	if err := p.metrics.registry.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	ptext := sb.String()
	if _, err := metrics.ValidateText(ptext); err != nil {
		t.Fatalf("primary registry invalid: %v", err)
	}
	for _, want := range []string{
		`camp_repl_feed_generation{shard="0",feed="1"} `,
		`camp_repl_feed_offset_bytes{shard="0",feed="1"} `,
		`camp_repl_feed_lag_bytes{shard="0",feed="1"} 0`,
	} {
		if !strings.Contains(ptext, want) {
			t.Errorf("primary metrics missing %q:\n%s", want, ptext)
		}
	}

	sb.Reset()
	if err := f.metrics.registry.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	ftext := sb.String()
	if _, err := metrics.ValidateText(ftext); err != nil {
		t.Fatalf("follower registry invalid: %v", err)
	}
	for _, want := range []string{
		`camp_repl_connected{shard="0"} 1`,
		`camp_repl_applied_ops_total{shard="0"} `,
		`camp_repl_lag_seconds{shard="0"} `,
		`camp_repl_durable_position{shard="0"} 1`,
	} {
		if !strings.Contains(ftext, want) {
			t.Errorf("follower metrics missing %q:\n%s", want, ftext)
		}
	}

	// The follower's replica-status lines now carry stream staleness.
	cf := dial(t, f)
	status, err := cf.ReplicaStatus()
	if err != nil {
		t.Fatal(err)
	}
	age, err := strconv.ParseInt(status["shard0_last_frame_age_ms"], 10, 64)
	if err != nil || age < 0 {
		t.Errorf("shard0_last_frame_age_ms = %q (%v), want >= 0", status["shard0_last_frame_age_ms"], err)
	}
}

// TestMetricsStressRace hammers every verb from concurrent clients while
// other goroutines scrape "stats latency" and /metrics. Run under -race it
// is the data-race gate for the whole instrumentation path; the assertions
// pin the accounting identities: mid-run scrapes parse and never go
// backwards, and at quiescence the per-verb histogram totals equal the
// command counters.
func TestMetricsStressRace(t *testing.T) {
	s := startServer(t, Config{
		MemoryBytes: 4 << 20,
		Shards:      4,
		MetricsAddr: "127.0.0.1:0",
	})

	const (
		workers = 8
		iters   = 150
	)
	var workersWg, scrapersWg sync.WaitGroup
	stop := make(chan struct{})

	// Scraper 1: stats latency over the wire, asserting monotonic counts.
	scrapersWg.Add(1)
	go func() {
		defer scrapersWg.Done()
		sc, err := kvclient.Dial(s.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer sc.Close()
		prev := map[string]uint64{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			lat, err := sc.StatsLatency()
			if err != nil {
				t.Error(err)
				return
			}
			for verb, ls := range lat {
				if ls.Count < prev[verb] {
					t.Errorf("verb %s count went backwards: %d -> %d", verb, prev[verb], ls.Count)
					return
				}
				prev[verb] = ls.Count
				if ls.Sum < 0 {
					t.Errorf("verb %s negative sum %v", verb, ls.Sum)
					return
				}
			}
		}
	}()

	// Scraper 2: /metrics, validating the exposition format under load.
	scrapersWg.Add(1)
	go func() {
		defer scrapersWg.Done()
		url := "http://" + s.MetricsAddr() + "/metrics"
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				t.Error(rerr)
				return
			}
			fams, verr := metrics.ValidateText(string(body))
			if verr != nil {
				t.Errorf("mid-run /metrics invalid: %v", verr)
				return
			}
			if err := metrics.RequireFamilies(fams, requiredFamilies...); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Workers: every verb, well-formed commands only (the counter/histogram
	// identity below holds only for commands both sides count).
	for w := 0; w < workers; w++ {
		workersWg.Add(1)
		go func(w int) {
			defer workersWg.Done()
			c, err := kvclient.Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%32)
				if err := c.Set(key, []byte("value"), 0, 0, 1); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := c.Get(key); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Add(key+"-add", []byte("v"), 0, 0, 1); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Replace(key, []byte("v2"), 0, 0, 1); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Append(key, []byte("+")); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Prepend(key, []byte("-")); err != nil {
					t.Error(err)
					return
				}
				if err := c.Set(key+"-n", []byte("5"), 0, 0, 1); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := c.Incr(key+"-n", 1); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := c.Decr(key+"-n", 1); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Touch(key, 60); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Delete(key + "-add"); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	workersWg.Wait()
	close(stop)
	scrapersWg.Wait()

	// Quiescent: histogram totals must equal the command counters.
	c := dial(t, s)
	lat, err := c.StatsLatency()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, verb := range []string{"set", "add", "replace", "append",
		"prepend", "incr", "decr", "touch", "delete"} {
		want, _ := strconv.ParseUint(stats["cmd_"+verb], 10, 64)
		if lat[verb].Count != want {
			t.Errorf("verb %s: histogram %d != counter %d", verb, lat[verb].Count, want)
		}
	}
	// get: the counter counts one per multiget command, exactly as the
	// histogram does — but the scrape connection above also issued none, so
	// plain equality holds.
	wantGets, _ := strconv.ParseUint(stats["cmd_get"], 10, 64)
	if lat["get"].Count != wantGets {
		t.Errorf("get: histogram %d != counter %d", lat["get"].Count, wantGets)
	}
	// Shard histograms partition the same commands: their counts must sum
	// to the per-verb total for shard-routed verbs.
	shardStats, err := c.StatsShards()
	if err != nil {
		t.Fatal(err)
	}
	var shardOps uint64
	for _, ss := range shardStats {
		shardOps += ss.Ops
	}
	var verbOps uint64
	for _, verb := range []string{"get", "set", "add", "replace", "append",
		"prepend", "incr", "decr", "touch", "delete"} {
		verbOps += lat[verb].Count
	}
	if shardOps != verbOps {
		t.Errorf("shard ops %d != keyed-verb ops %d", shardOps, verbOps)
	}
}
