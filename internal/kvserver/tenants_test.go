package kvserver

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"camp/internal/kvclient"
	"camp/internal/trace"
)

// TestTenantVerbProtocol pins the tenant verb grammar: bare tenant echoes
// the current tenant, a valid name switches the connection, bad names answer
// CLIENT_ERROR without killing the connection, and non-byte layouts refuse
// non-default tenants.
func TestTenantVerbProtocol(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	conn := rawDial(t, s)
	defer conn.Close()

	for _, tc := range []struct{ cmd, want string }{
		{"tenant", "TENANT default"},
		{"tenant gold", "TENANT gold"},
		{"tenant", "TENANT gold"},
		{"tenant two args", "CLIENT_ERROR bad tenant name"},
		{"tenant " + strings.Repeat("x", 65), "CLIENT_ERROR bad tenant name"},
		{"tenant a\x01b", "CLIENT_ERROR bad tenant name"},
		{"tenant", "TENANT gold"}, // failed switches leave the tenant alone
		{"tenant default", "TENANT default"},
		{"tenant", "TENANT default"},
	} {
		if got := sendLine(t, conn, tc.cmd); got != tc.want {
			t.Errorf("%q = %q, want %q", tc.cmd, got, tc.want)
		}
	}

	// Keys may not contain NUL (the namespace delimiter): writes answer
	// CLIENT_ERROR, reads treat the key as absent — either way a client can
	// never forge its way into another tenant's namespace.
	if got := sendLine(t, conn, "get a\x00b"); got != "END" {
		t.Errorf("get with NUL key = %q, want END", got)
	}
	if got := sendLine(t, conn, "delete a\x00b"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("delete with NUL key = %q, want CLIENT_ERROR", got)
	}
	// The data block must still be sent — the server drains it to keep the
	// stream aligned, then rejects the key.
	if got := sendLine(t, conn, "set a\x00b 0 0 1\r\nv"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("set with NUL key = %q, want CLIENT_ERROR", got)
	}

	// Slab mode has no per-tenant policies to arbitrate between.
	slab := startServer(t, Config{MemoryBytes: 1 << 21, Mode: ModeSlab, SlabSize: 1 << 16})
	sc := rawDial(t, slab)
	defer sc.Close()
	if got := sendLine(t, sc, "tenant gold"); !strings.HasPrefix(got, "SERVER_ERROR") {
		t.Errorf("tenant on slab mode = %q, want SERVER_ERROR", got)
	}
	if got := sendLine(t, sc, "tenant default"); got != "TENANT default" {
		t.Errorf("tenant default on slab mode = %q", got)
	}
}

// TestTenantConfigValidation pins Config.TenantReserves validation.
func TestTenantConfigValidation(t *testing.T) {
	base := Config{MemoryBytes: 1 << 20}
	bad := []map[string]int64{
		{"bad name": 1 << 10},             // space in name
		{"": 1 << 10},                     // empty name
		{"gold": -1},                      // negative reserve
		{"gold": 1 << 19, "sil": 1 << 20}, // reserves exceed memory
	}
	for _, res := range bad {
		cfg := base
		cfg.TenantReserves = res
		if _, err := New(cfg); err == nil {
			t.Errorf("TenantReserves %v: want error", res)
		}
	}
	cfg := Config{MemoryBytes: 1 << 21, Mode: ModeSlab, SlabSize: 1 << 16,
		TenantReserves: map[string]int64{"gold": 1 << 10}}
	if _, err := New(cfg); err == nil {
		t.Error("TenantReserves in slab mode: want error")
	}

	cfg = base
	cfg.TenantReserves = map[string]int64{"gold": 1 << 18}
	s := startServer(t, cfg)
	c := dial(t, s)
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["tenants"] != "2" {
		t.Errorf("tenants stat = %q, want 2 (default + gold)", stats["tenants"])
	}
	ts, err := c.StatsTenants()
	if err != nil {
		t.Fatal(err)
	}
	if ts["tenant:gold:reserved_bytes"] != strconv.Itoa(1<<18) {
		t.Errorf("gold reserved_bytes = %q, want %d", ts["tenant:gold:reserved_bytes"], 1<<18)
	}
}

// TestTenantNamespaceIsolation drives two tenants through the kvclient: the
// same user key holds independent values per tenant, and every keyed verb
// stays inside the connection's namespace.
func TestTenantNamespaceIsolation(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20, Shards: 2})

	gold := dial(t, s)
	if err := gold.Tenant("gold"); err != nil {
		t.Fatal(err)
	}
	silver, err := kvclient.DialWithTenant(s.Addr(), "silver")
	if err != nil {
		t.Fatal(err)
	}
	defer silver.Close()
	def := dial(t, s)

	for _, tc := range []struct {
		c   *kvclient.Client
		val string
	}{{gold, "gold-v"}, {silver, "silver-v"}, {def, "default-v"}} {
		if err := tc.c.Set("shared-key", []byte(tc.val), 0, 0, 7); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		c    *kvclient.Client
		want string
	}{{gold, "gold-v"}, {silver, "silver-v"}, {def, "default-v"}} {
		v, ok, err := tc.c.Get("shared-key")
		if err != nil || !ok || string(v) != tc.want {
			t.Fatalf("get shared-key = %q/%v/%v, want %q", v, ok, err, tc.want)
		}
	}

	// Delete in one tenant leaves the other two intact.
	if ok, err := gold.Delete("shared-key"); err != nil || !ok {
		t.Fatalf("gold delete = %v/%v", ok, err)
	}
	if _, ok, _ := gold.Get("shared-key"); ok {
		t.Error("gold still sees deleted key")
	}
	for _, tc := range []struct {
		c    *kvclient.Client
		want string
	}{{silver, "silver-v"}, {def, "default-v"}} {
		if v, ok, _ := tc.c.Get("shared-key"); !ok || string(v) != tc.want {
			t.Errorf("after gold delete: got %q/%v, want %q", v, ok, tc.want)
		}
	}

	// Arithmetic and touch stay namespaced too.
	if err := gold.Set("ctr", []byte("5"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := gold.Incr("ctr", 2); err != nil || !ok || v != 7 {
		t.Fatalf("gold incr = %d/%v/%v", v, ok, err)
	}
	if _, ok, _ := silver.Incr("ctr", 2); ok {
		t.Error("silver incr hit gold's counter")
	}
	if ok, _ := silver.Touch("ctr", 60); ok {
		t.Error("silver touch hit gold's counter")
	}

	// Per-tenant read counters moved with the operations above.
	ts, err := def.StatsTenants()
	if err != nil {
		t.Fatal(err)
	}
	if ts["tenant:gold:hits"] == "0" || ts["tenant:gold:bytes"] == "0" {
		t.Errorf("gold counters empty: hits=%q bytes=%q", ts["tenant:gold:hits"], ts["tenant:gold:bytes"])
	}
	if ts["tenant:silver:items"] != "1" {
		t.Errorf("silver items = %q, want 1", ts["tenant:silver:items"])
	}
}

// TestTenantFlushScoping is the flush regression: a bare flush_all clears
// only the connection's tenant — other tenants' entries and everyone's
// lifetime counters survive — and "flush_all all" clears the whole server.
func TestTenantFlushScoping(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20, Shards: 2})

	gold, err := kvclient.DialWithTenant(s.Addr(), "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	silver, err := kvclient.DialWithTenant(s.Addr(), "silver")
	if err != nil {
		t.Fatal(err)
	}
	defer silver.Close()
	def := dial(t, s)

	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		for _, c := range []*kvclient.Client{gold, silver, def} {
			if err := c.Set(k, []byte("v"), 0, 0, 1); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := c.Get(k); err != nil || !ok {
				t.Fatalf("get %s = %v/%v", k, ok, err)
			}
		}
	}
	before, err := def.StatsTenants()
	if err != nil {
		t.Fatal(err)
	}

	// gold's flush touches only gold.
	if err := gold.FlushAll(); err != nil {
		t.Fatal(err)
	}
	after, err := def.StatsTenants()
	if err != nil {
		t.Fatal(err)
	}
	if after["tenant:gold:items"] != "0" || after["tenant:gold:bytes"] != "0" {
		t.Errorf("gold not flushed: items=%q bytes=%q", after["tenant:gold:items"], after["tenant:gold:bytes"])
	}
	for _, tenant := range []string{"silver", "default"} {
		for _, f := range []string{"items", "bytes"} {
			k := "tenant:" + tenant + ":" + f
			if after[k] != before[k] {
				t.Errorf("%s changed across gold flush: %q -> %q", k, before[k], after[k])
			}
		}
	}
	// Lifetime hit counters survive the flush — for gold too.
	for _, tenant := range []string{"gold", "silver", "default"} {
		k := "tenant:" + tenant + ":hits"
		if after[k] != before[k] {
			t.Errorf("%s changed across flush: %q -> %q", k, before[k], after[k])
		}
	}
	if _, ok, _ := gold.Get("k0"); ok {
		t.Error("gold k0 survived gold flush")
	}
	if v, ok, _ := silver.Get("k0"); !ok || string(v) != "v" {
		t.Error("silver k0 lost to gold flush")
	}

	// A default-tenant flush is scoped the same way.
	if err := def.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := def.Get("k0"); ok {
		t.Error("default k0 survived default flush")
	}
	if _, ok, _ := silver.Get("k0"); !ok {
		t.Error("silver k0 lost to default flush")
	}

	// The old permissive grammar is gone; only "flush_all" and
	// "flush_all all" parse.
	conn := rawDial(t, s)
	defer conn.Close()
	if got := sendLine(t, conn, "flush_all 0"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("flush_all 0 = %q, want CLIENT_ERROR", got)
	}

	// flush_all all clears every tenant.
	if err := def.FlushAllTenants(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := silver.Get("k0"); ok {
		t.Error("silver k0 survived flush_all all")
	}
	final, err := def.StatsTenants()
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"gold", "silver", "default"} {
		if v := final["tenant:"+tenant+":bytes"]; v != "0" {
			t.Errorf("%s bytes after flush_all all = %q, want 0", tenant, v)
		}
	}
}

// tenantSnapshot captures the per-tenant accounting a restart or a FULLSYNC
// must reproduce byte-exactly.
func tenantSnapshot(s *Server) (names []string, reserves map[string]int64, totals tenantTotals) {
	reserves = make(map[string]int64)
	for _, tn := range s.tenants.list() {
		names = append(names, tn.name)
		reserves[tn.name] = tn.reserve.Load()
	}
	return names, reserves, s.collectTenantTotals()
}

// TestTenantWarmRestart fills several tenants — one via config reserve, one
// via the verb with keys, one keyless — forces compactions so KindTenant
// records flow through snapshots, then warm-restarts and requires the exact
// same items, tenant set, reserves, and per-tenant byte accounting.
func TestTenantWarmRestart(t *testing.T) {
	cfg := Config{
		MemoryBytes:    1 << 20,
		Shards:         2,
		TenantReserves: map[string]int64{"gold": 1 << 18},
		Persist:        &PersistConfig{Dir: t.TempDir(), AOFLimit: 4 << 10},
	}
	s1 := startServer(t, cfg)

	gold, err := kvclient.DialWithTenant(s1.Addr(), "gold")
	if err != nil {
		t.Fatal(err)
	}
	silver, err := kvclient.DialWithTenant(s1.Addr(), "silver")
	if err != nil {
		t.Fatal(err)
	}
	def := dial(t, s1)
	// A tenant that never stores a key must still survive the restart: its
	// existence and quota ride on KindTenant records alone.
	if err := def.Tenant("keyless"); err != nil {
		t.Fatal(err)
	}
	if err := def.Tenant("default"); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%03d", i)
		val := []byte(strings.Repeat("x", 20+i%64))
		for _, c := range []*kvclient.Client{gold, silver, def} {
			if err := c.Set(k, val, uint32(i), 0, int64(1+i%100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if totalCompactions(s1) == 0 {
		t.Fatal("no compactions: snapshot path not exercised (shrink AOFLimit)")
	}

	wantState := captureState(s1)
	wantNames, wantReserves, wantTotals := tenantSnapshot(s1)
	gold.Close()
	silver.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	assertStateEqual(t, wantState, captureState(s2))
	gotNames, gotReserves, gotTotals := tenantSnapshot(s2)
	if !reflect.DeepEqual(wantNames, gotNames) {
		t.Errorf("tenant set after restart = %v, want %v", gotNames, wantNames)
	}
	if !reflect.DeepEqual(wantReserves, gotReserves) {
		t.Errorf("reserves after restart = %v, want %v", gotReserves, wantReserves)
	}
	if !reflect.DeepEqual(wantTotals.used, gotTotals.used) {
		t.Errorf("per-tenant bytes after restart = %v, want %v", gotTotals.used, wantTotals.used)
	}
	if !reflect.DeepEqual(wantTotals.items, gotTotals.items) {
		t.Errorf("per-tenant items after restart = %v, want %v", gotTotals.items, wantTotals.items)
	}
}

// TestTenantReplicationFullsync starts a replica in the middle of a
// multi-tenant write churn, so the FULLSYNC bootstrap races live streamed
// ops; once caught up, the follower must agree with the primary on every
// item and on every tenant's byte/item accounting.
func TestTenantReplicationFullsync(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Shards:      2,
		Persist:     &PersistConfig{Dir: t.TempDir()},
	})
	gold, err := kvclient.DialWithTenant(p.Addr(), "gold")
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	silver, err := kvclient.DialWithTenant(p.Addr(), "silver")
	if err != nil {
		t.Fatal(err)
	}
	defer silver.Close()
	def := dial(t, p)

	churn := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k := fmt.Sprintf("k%03d", i)
			for _, c := range []*kvclient.Client{gold, silver, def} {
				if err := c.Set(k, []byte(strings.Repeat("v", 10+i%50)), 0, 0, int64(1+i%9)); err != nil {
					t.Fatal(err)
				}
			}
			if i%7 == 0 {
				if _, err := gold.Delete(fmt.Sprintf("k%03d", i/2)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	churn(0, 80)
	f := startReplica(t, p, Config{
		MemoryBytes: 1 << 20,
		Shards:      2,
		Persist:     &PersistConfig{Dir: t.TempDir()},
	})
	churn(80, 200) // keeps writing while the follower bootstraps
	waitCaughtUp(t, p, f)

	assertStateEqual(t, captureState(p), captureState(f))
	wantNames, wantReserves, wantTotals := tenantSnapshot(p)
	gotNames, gotReserves, gotTotals := tenantSnapshot(f)
	if !reflect.DeepEqual(wantNames, gotNames) {
		t.Errorf("follower tenant set = %v, want %v", gotNames, wantNames)
	}
	if !reflect.DeepEqual(wantReserves, gotReserves) {
		t.Errorf("follower reserves = %v, want %v", gotReserves, wantReserves)
	}
	if !reflect.DeepEqual(wantTotals, gotTotals) {
		t.Errorf("follower tenant totals = %+v, want %+v", gotTotals, wantTotals)
	}
}

// memshareQuietHitRate runs the Memshare isolation scenario: a quiet tenant
// with a reserve covering its working set, optionally sharing the server
// with a churner replaying an evict-heavy generated trace. It returns the
// quiet tenant's hit rate over a full read pass after the churn.
func memshareQuietHitRate(t *testing.T, s *Server, withChurn bool) float64 {
	t.Helper()
	const quietKeys = 48
	quiet, err := kvclient.DialWithTenant(s.Addr(), "quiet")
	if err != nil {
		t.Fatal(err)
	}
	defer quiet.Close()
	quietVal := []byte(strings.Repeat("q", 512))
	for i := 0; i < quietKeys; i++ {
		if err := quiet.Set(fmt.Sprintf("q%02d", i), quietVal, 0, 0, 100); err != nil {
			t.Fatal(err)
		}
	}

	if withChurn {
		churn, err := kvclient.DialWithTenant(s.Addr(), "churn")
		if err != nil {
			t.Fatal(err)
		}
		defer churn.Close()
		g := trace.NewGenerator(trace.Config{Keys: 2000, Requests: 6000, Seed: 42})
		for {
			req, ok := g.Next()
			if !ok {
				break
			}
			if _, hit, err := churn.Get(req.Key); err != nil {
				t.Fatal(err)
			} else if !hit {
				if err := churn.Set(req.Key, make([]byte, req.Size), 0, 0, req.Cost); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	var hits int
	for i := 0; i < quietKeys; i++ {
		if _, ok, err := quiet.Get(fmt.Sprintf("q%02d", i)); err != nil {
			t.Fatal(err)
		} else if ok {
			hits++
		}
	}
	return float64(hits) / float64(quietKeys)
}

// TestMemshareIsolation is the arbitration acceptance test: with the quiet
// tenant's working set under its reserve, an evict-heavy churner may consume
// the whole shared pool but the quiet tenant's hit rate stays within 1% of
// a solo run on the same server configuration.
func TestMemshareIsolation(t *testing.T) {
	mkCfg := func() Config {
		return Config{
			MemoryBytes:    256 << 10,
			Shards:         1,
			DisableIQ:      true,
			TenantReserves: map[string]int64{"quiet": 96 << 10},
		}
	}

	solo := memshareQuietHitRate(t, startServer(t, mkCfg()), false)
	shared := startServer(t, mkCfg())
	got := memshareQuietHitRate(t, shared, true)

	if diff := solo - got; diff > 0.01 || diff < -0.01 {
		t.Errorf("quiet hit rate %v vs solo %v: differs by more than 1%%", got, solo)
	}

	ts := map[string]string{}
	{
		c := dial(t, shared)
		var err error
		if ts, err = c.StatsTenants(); err != nil {
			t.Fatal(err)
		}
	}
	churnEv, _ := strconv.ParseInt(ts["tenant:churn:evictions"], 10, 64)
	if churnEv == 0 {
		t.Error("churner saw no evictions: trace not evict-heavy, test proves nothing")
	}
	if ev := ts["tenant:quiet:evictions"]; ev != "0" {
		t.Errorf("quiet tenant evictions = %q, want 0 (working set under reserve)", ev)
	}
	quietBytes, _ := strconv.ParseInt(ts["tenant:quiet:bytes"], 10, 64)
	if quietBytes < 48*512 {
		t.Errorf("quiet bytes = %d, want at least the 24KiB working set", quietBytes)
	}
	churnBytes, _ := strconv.ParseInt(ts["tenant:churn:bytes"], 10, 64)
	if churnBytes <= quietBytes {
		t.Errorf("churn bytes = %d <= quiet bytes %d: shared pool never flowed to the churner",
			churnBytes, quietBytes)
	}
}

// FuzzParseTenantCommand fuzzes the tenant-name validator with arbitrary
// wire tokens: anything accepted must round-trip verbatim, stay within the
// length bound, contain no separator/control bytes — and must produce a
// namespaced key that maps back to exactly that tenant.
func FuzzParseTenantCommand(f *testing.F) {
	f.Add([]byte("gold"))
	f.Add([]byte("default"))
	f.Add([]byte(""))
	f.Add([]byte("a\x00b"))
	f.Add([]byte("with space"))
	f.Add([]byte(strings.Repeat("x", 65)))
	f.Add([]byte{0x7f})
	f.Fuzz(func(t *testing.T, tok []byte) {
		name, ok := parseTenantName(tok)
		if !ok {
			if len(tok) > 0 && len(tok) <= maxTenantNameLen {
				for _, b := range tok {
					if b <= ' ' || b == 0x7f {
						return
					}
				}
				t.Fatalf("rejected clean token %q", tok)
			}
			return
		}
		if name != string(tok) {
			t.Fatalf("accepted name %q != token %q", name, tok)
		}
		if len(name) == 0 || len(name) > maxTenantNameLen {
			t.Fatalf("accepted name %q out of bounds", name)
		}
		for _, b := range []byte(name) {
			if b <= ' ' || b == 0x7f {
				t.Fatalf("accepted name %q contains separator/control byte %#x", name, b)
			}
		}
		if name == defaultTenantName {
			return
		}
		nsKey := name + "\x00" + "user-key"
		if !keyInTenant(name, nsKey) {
			t.Fatalf("tenant %q does not own its own namespaced key", name)
		}
		if keyInTenant(defaultTenantName, nsKey) {
			t.Fatalf("default tenant claims %q's key", name)
		}
	})
}
