package kvserver

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"
	"testing"

	"camp/internal/kvclient"
)

// BenchmarkServerOps measures end-to-end server throughput under parallel
// client load at different shard counts — the tentpole number for the
// sharded kvserver. Each iteration is one pipelined batch per client: a
// 16-key multiget plus 4 noreply sets (20 ops), so the store, not the
// per-op network round trip, is the bottleneck. The ops/s metric counts
// individual operations. On a multi-core machine the 8-shard run should
// beat 1 shard by well over 2x; on a single core the spread collapses to
// lock-contention effects only.
//
// allocs/op is the zero-allocation-protocol gate: it covers both sides of
// the wire (client command building and response parsing, server parse,
// store and reply), so the steady state is just the per-set allocations the
// store itself makes (value buffer, key string, item, policy node). The
// checked-in budget is enforced by `make alloc-gate`.
func BenchmarkServerOps(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchServerOps(b, shards)
		})
	}
}

// BenchmarkServerOpsTenants is the two-tenant variant: half the clients run
// as a reserved "prod" tenant over a fully warmed keyspace, half as a
// best-effort "batch" tenant warmed to only half its keyspace, so the run
// exercises the namespaced hot path and the per-tenant accounting under the
// same pipelined batch workload. Besides ops/s it reports each tenant's
// lifetime hit rate from the server's own counters — the per-tenant figures
// committed in the BENCH report.
func BenchmarkServerOpsTenants(b *testing.B) {
	s, err := New(Config{
		MemoryBytes:    256 << 20,
		Shards:         4,
		Policy:         "camp",
		DisableIQ:      true,
		TenantReserves: map[string]int64{"prod": 64 << 20},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	value := make([]byte, benchValueLen)
	warmTenant := func(name string, keys int) {
		warm, err := kvclient.DialWithTenant(s.Addr(), name)
		if err != nil {
			b.Fatal(err)
		}
		defer warm.Close()
		for i := 0; i < keys; i++ {
			if err := warm.SetNoreply(benchKeySet[i], value, 0, 0, int64(1+i%100)); err != nil {
				b.Fatal(err)
			}
		}
		if err := warm.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := warm.Version(); err != nil {
			b.Fatal(err)
		}
	}
	warmTenant("prod", benchKeys)
	warmTenant("batch", benchKeys/2)

	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	var seed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		name := "prod"
		if n%2 == 0 {
			name = "batch"
		}
		c, err := kvclient.DialWithTenant(s.Addr(), name)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(n))
		batch := make([]string, benchBatchGets)
		var got int
		sink := func(key, value []byte, flags uint32) { got += len(value) }
		for pb.Next() {
			for i := range batch {
				batch[i] = benchKeySet[rng.Intn(benchKeys)]
			}
			if err := c.MultiGetFunc(sink, batch...); err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < benchBatchSets; i++ {
				if err := c.SetNoreply(benchKeySet[rng.Intn(benchKeys)], value, 0, 0, int64(1+rng.Intn(100))); err != nil {
					b.Error(err)
					return
				}
			}
			if err := c.Flush(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	opsPerIter := float64(benchBatchGets + benchBatchSets)
	b.ReportMetric(opsPerIter*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	b.StopTimer()
	lc, err := kvclient.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	ts, err := lc.StatsTenants()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"prod", "batch"} {
		hits, _ := strconv.ParseFloat(ts["tenant:"+name+":hits"], 64)
		misses, _ := strconv.ParseFloat(ts["tenant:"+name+":misses"], 64)
		if hits+misses > 0 {
			b.ReportMetric(hits/(hits+misses), "hitrate_"+name)
		}
	}
}

// BenchmarkServerOpsTenantQuota runs the two-tenant workload with the
// best-effort "batch" tenant capped at 5k ops/sec — far below what the
// workload drives — so its noreply sets are shed silently once the bucket
// drains while "prod" runs unlimited. Besides ops/s
// it reports each tenant's lifetime quota_shed count from the server's own
// counters — benchfmt lifts the quota_shed_<tenant> metrics into the
// committed report's quota_shed section, so the shed volume under a known
// overload is tracked across PRs alongside the throughput cost of the
// quota check itself (compare against BenchmarkServerOpsTenants).
func BenchmarkServerOpsTenantQuota(b *testing.B) {
	s, err := New(Config{
		MemoryBytes:    256 << 20,
		Shards:         4,
		Policy:         "camp",
		DisableIQ:      true,
		TenantReserves: map[string]int64{"prod": 64 << 20},
		TenantQuotas:   map[string]TenantQuota{"batch": {OpsPerSec: 5_000}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	value := make([]byte, benchValueLen)
	warmTenant := func(name string, keys int) {
		warm, err := kvclient.DialWithTenant(s.Addr(), name)
		if err != nil {
			b.Fatal(err)
		}
		defer warm.Close()
		for i := 0; i < keys; i++ {
			if err := warm.SetNoreply(benchKeySet[i], value, 0, 0, int64(1+i%100)); err != nil {
				b.Fatal(err)
			}
		}
		if err := warm.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := warm.Version(); err != nil {
			b.Fatal(err)
		}
	}
	warmTenant("prod", benchKeys)
	// The batch warm-up fits inside the 1s burst, so the measured run starts
	// with a warm keyspace AND a drained bucket — sheds begin immediately.
	warmTenant("batch", benchKeys/2)

	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	var seed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		name := "prod"
		if n%2 == 0 {
			name = "batch"
		}
		c, err := kvclient.DialWithTenant(s.Addr(), name)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(n))
		batch := make([]string, benchBatchGets)
		var got int
		sink := func(key, value []byte, flags uint32) { got += len(value) }
		for pb.Next() {
			for i := range batch {
				batch[i] = benchKeySet[rng.Intn(benchKeys)]
			}
			if err := c.MultiGetFunc(sink, batch...); err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < benchBatchSets; i++ {
				if err := c.SetNoreply(benchKeySet[rng.Intn(benchKeys)], value, 0, 0, int64(1+rng.Intn(100))); err != nil {
					b.Error(err)
					return
				}
			}
			if err := c.Flush(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	opsPerIter := float64(benchBatchGets + benchBatchSets)
	b.ReportMetric(opsPerIter*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	b.StopTimer()
	lc, err := kvclient.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	ts, err := lc.StatsTenants()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"prod", "batch"} {
		shed, _ := strconv.ParseFloat(ts["tenant:"+name+":quota_shed"], 64)
		b.ReportMetric(shed, "quota_shed_"+name)
	}
}

const (
	benchKeys      = 8192
	benchValueLen  = 100
	benchBatchGets = 16
	benchBatchSets = 4
)

// benchKeySet precomputes the keyspace once: key formatting is the
// workload generator's job, not the protocol cost under measurement.
var benchKeySet = func() []string {
	keys := make([]string, benchKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%05d", i)
	}
	return keys
}()

func benchServerOps(b *testing.B, shards int) {
	s, err := New(Config{
		MemoryBytes: 256 << 20,
		Shards:      shards,
		Policy:      "camp",
		DisableIQ:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	value := make([]byte, benchValueLen)
	warm, err := kvclient.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchKeys; i++ {
		if err := warm.SetNoreply(benchKeySet[i], value, 0, 0, int64(1+i%100)); err != nil {
			b.Fatal(err)
		}
	}
	if err := warm.Flush(); err != nil {
		b.Fatal(err)
	}
	// A synchronous command drains the pipeline before timing starts.
	if _, err := warm.Version(); err != nil {
		b.Fatal(err)
	}
	warm.Close()

	b.SetParallelism(8) // 8 concurrent clients per GOMAXPROCS
	b.ReportAllocs()
	b.ResetTimer()
	var seed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		c, err := kvclient.Dial(s.Addr())
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(seed.Add(1)))
		batch := make([]string, benchBatchGets)
		var got int
		sink := func(key, value []byte, flags uint32) { got += len(value) }
		for pb.Next() {
			for i := range batch {
				batch[i] = benchKeySet[rng.Intn(benchKeys)]
			}
			if err := c.MultiGetFunc(sink, batch...); err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < benchBatchSets; i++ {
				if err := c.SetNoreply(benchKeySet[rng.Intn(benchKeys)], value, 0, 0, int64(1+rng.Intn(100))); err != nil {
					b.Error(err)
					return
				}
			}
			if err := c.Flush(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	opsPerIter := float64(benchBatchGets + benchBatchSets)
	b.ReportMetric(opsPerIter*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	b.StopTimer()
	// Server-side latency quantiles for the run, from the per-verb
	// histograms the server kept while the benchmark hammered it. benchfmt
	// lifts the p50/p95/p99 metrics into the committed report's latency
	// section.
	lc, err := kvclient.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	lat, err := lc.StatsLatency()
	if err != nil {
		b.Fatal(err)
	}
	for _, verb := range []string{"get", "set"} {
		ls := lat[verb]
		b.ReportMetric(float64(ls.P50.Microseconds()), "p50_"+verb+"_us")
		b.ReportMetric(float64(ls.P95.Microseconds()), "p95_"+verb+"_us")
		b.ReportMetric(float64(ls.P99.Microseconds()), "p99_"+verb+"_us")
	}
}
