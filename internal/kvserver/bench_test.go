package kvserver

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"
	"testing"

	"camp/internal/kvclient"
)

// BenchmarkServerOps measures end-to-end server throughput under parallel
// client load at different shard counts — the tentpole number for the
// sharded kvserver. Each iteration is one pipelined batch per client: a
// 16-key multiget plus 4 noreply sets (20 ops), so the store, not the
// per-op network round trip, is the bottleneck. The ops/s metric counts
// individual operations. On a multi-core machine the 8-shard run should
// beat 1 shard by well over 2x; on a single core the spread collapses to
// lock-contention effects only.
//
// allocs/op is the zero-allocation-protocol gate: it covers both sides of
// the wire (client command building and response parsing, server parse,
// store and reply), so the steady state is just the per-set allocations the
// store itself makes (value buffer, key string, item, policy node). The
// checked-in budget is enforced by `make alloc-gate`.
func BenchmarkServerOps(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchServerOps(b, shards, ModeByte)
		})
	}
}

// BenchmarkServerOpsArena is the same workload against the packed-arena
// engine. The interesting metric is allocs/op: the arena copies set payloads
// into pooled scratch and packed segments instead of retaining per-item
// slices, so the steady state drops from byte mode's ~20 allocs per 20-op
// batch to the policy-node floor. `make alloc-gate` enforces the arena
// budget separately (ARENA_ALLOCS_BUDGET).
func BenchmarkServerOpsArena(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchServerOps(b, shards, ModeArena)
		})
	}
}

// BenchmarkEvictionManyTenants hammers a deliberately undersized server with
// sets from many tenants at once, so every batch runs the cross-tenant
// arbiter under eviction pressure. Before the batched arbiter this walked
// every tenant per victim and re-summed per-tenant usage per freed byte —
// O(tenants × victims) policy walks per set; now one walk picks a victim run.
// The ops/s here is dominated by that arbitration cost.
func BenchmarkEvictionManyTenants(b *testing.B) {
	for _, tenants := range []int{4, 64} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			benchEvictionTenants(b, tenants)
		})
	}
}

func benchEvictionTenants(b *testing.B, tenants int) {
	s, err := New(Config{
		MemoryBytes: 4 << 20, // far below the working set: every set evicts
		Shards:      1,
		Policy:      "camp",
		DisableIQ:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	value := make([]byte, 4096)
	// Warm every tenant past its share so the arbiter has a full table to
	// walk from the first measured op.
	for t := 0; t < tenants; t++ {
		warm, err := kvclient.DialWithTenant(s.Addr(), fmt.Sprintf("t%03d", t))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2048/tenants+16; i++ {
			if err := warm.SetNoreply(benchKeySet[i], value, 0, 0, int64(1+i%100)); err != nil {
				b.Fatal(err)
			}
		}
		if err := warm.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := warm.Version(); err != nil {
			b.Fatal(err)
		}
		warm.Close()
	}

	b.SetParallelism(4)
	b.ReportAllocs()
	b.ResetTimer()
	var seed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		c, err := kvclient.DialWithTenant(s.Addr(), fmt.Sprintf("t%03d", n%int64(tenants)))
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(n))
		for pb.Next() {
			for i := 0; i < benchBatchSets; i++ {
				if err := c.SetNoreply(benchKeySet[rng.Intn(benchKeys)], value, 0, 0, int64(1+rng.Intn(100))); err != nil {
					b.Error(err)
					return
				}
			}
			if err := c.Flush(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(benchBatchSets)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	b.StopTimer()
	b.ReportMetric(float64(totalEvictions(s)), "evictions")
}

// BenchmarkServerOpsTenants is the two-tenant variant: half the clients run
// as a reserved "prod" tenant over a fully warmed keyspace, half as a
// best-effort "batch" tenant warmed to only half its keyspace, so the run
// exercises the namespaced hot path and the per-tenant accounting under the
// same pipelined batch workload. Besides ops/s it reports each tenant's
// lifetime hit rate from the server's own counters — the per-tenant figures
// committed in the BENCH report.
func BenchmarkServerOpsTenants(b *testing.B) {
	s, err := New(Config{
		MemoryBytes:    256 << 20,
		Shards:         4,
		Policy:         "camp",
		DisableIQ:      true,
		TenantReserves: map[string]int64{"prod": 64 << 20},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	value := make([]byte, benchValueLen)
	warmTenant := func(name string, keys int) {
		warm, err := kvclient.DialWithTenant(s.Addr(), name)
		if err != nil {
			b.Fatal(err)
		}
		defer warm.Close()
		for i := 0; i < keys; i++ {
			if err := warm.SetNoreply(benchKeySet[i], value, 0, 0, int64(1+i%100)); err != nil {
				b.Fatal(err)
			}
		}
		if err := warm.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := warm.Version(); err != nil {
			b.Fatal(err)
		}
	}
	warmTenant("prod", benchKeys)
	warmTenant("batch", benchKeys/2)

	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	var seed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		name := "prod"
		if n%2 == 0 {
			name = "batch"
		}
		c, err := kvclient.DialWithTenant(s.Addr(), name)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(n))
		batch := make([]string, benchBatchGets)
		var got int
		sink := func(key, value []byte, flags uint32) { got += len(value) }
		for pb.Next() {
			for i := range batch {
				batch[i] = benchKeySet[rng.Intn(benchKeys)]
			}
			if err := c.MultiGetFunc(sink, batch...); err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < benchBatchSets; i++ {
				if err := c.SetNoreply(benchKeySet[rng.Intn(benchKeys)], value, 0, 0, int64(1+rng.Intn(100))); err != nil {
					b.Error(err)
					return
				}
			}
			if err := c.Flush(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	opsPerIter := float64(benchBatchGets + benchBatchSets)
	b.ReportMetric(opsPerIter*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	b.StopTimer()
	lc, err := kvclient.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	ts, err := lc.StatsTenants()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"prod", "batch"} {
		hits, _ := strconv.ParseFloat(ts["tenant:"+name+":hits"], 64)
		misses, _ := strconv.ParseFloat(ts["tenant:"+name+":misses"], 64)
		if hits+misses > 0 {
			b.ReportMetric(hits/(hits+misses), "hitrate_"+name)
		}
	}
}

// BenchmarkServerOpsTenantQuota runs the two-tenant workload with the
// best-effort "batch" tenant capped at 5k ops/sec — far below what the
// workload drives — so its noreply sets are shed silently once the bucket
// drains while "prod" runs unlimited. Besides ops/s
// it reports each tenant's lifetime quota_shed count from the server's own
// counters — benchfmt lifts the quota_shed_<tenant> metrics into the
// committed report's quota_shed section, so the shed volume under a known
// overload is tracked across PRs alongside the throughput cost of the
// quota check itself (compare against BenchmarkServerOpsTenants).
func BenchmarkServerOpsTenantQuota(b *testing.B) {
	s, err := New(Config{
		MemoryBytes:    256 << 20,
		Shards:         4,
		Policy:         "camp",
		DisableIQ:      true,
		TenantReserves: map[string]int64{"prod": 64 << 20},
		TenantQuotas:   map[string]TenantQuota{"batch": {OpsPerSec: 5_000}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	value := make([]byte, benchValueLen)
	warmTenant := func(name string, keys int) {
		warm, err := kvclient.DialWithTenant(s.Addr(), name)
		if err != nil {
			b.Fatal(err)
		}
		defer warm.Close()
		for i := 0; i < keys; i++ {
			if err := warm.SetNoreply(benchKeySet[i], value, 0, 0, int64(1+i%100)); err != nil {
				b.Fatal(err)
			}
		}
		if err := warm.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := warm.Version(); err != nil {
			b.Fatal(err)
		}
	}
	warmTenant("prod", benchKeys)
	// The batch warm-up fits inside the 1s burst, so the measured run starts
	// with a warm keyspace AND a drained bucket — sheds begin immediately.
	warmTenant("batch", benchKeys/2)

	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	var seed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		name := "prod"
		if n%2 == 0 {
			name = "batch"
		}
		c, err := kvclient.DialWithTenant(s.Addr(), name)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(n))
		batch := make([]string, benchBatchGets)
		var got int
		sink := func(key, value []byte, flags uint32) { got += len(value) }
		for pb.Next() {
			for i := range batch {
				batch[i] = benchKeySet[rng.Intn(benchKeys)]
			}
			if err := c.MultiGetFunc(sink, batch...); err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < benchBatchSets; i++ {
				if err := c.SetNoreply(benchKeySet[rng.Intn(benchKeys)], value, 0, 0, int64(1+rng.Intn(100))); err != nil {
					b.Error(err)
					return
				}
			}
			if err := c.Flush(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	opsPerIter := float64(benchBatchGets + benchBatchSets)
	b.ReportMetric(opsPerIter*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	b.StopTimer()
	lc, err := kvclient.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	ts, err := lc.StatsTenants()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"prod", "batch"} {
		shed, _ := strconv.ParseFloat(ts["tenant:"+name+":quota_shed"], 64)
		b.ReportMetric(shed, "quota_shed_"+name)
	}
}

const (
	benchKeys      = 8192
	benchValueLen  = 100
	benchBatchGets = 16
	benchBatchSets = 4
)

// benchKeySet precomputes the keyspace once: key formatting is the
// workload generator's job, not the protocol cost under measurement.
var benchKeySet = func() []string {
	keys := make([]string, benchKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%05d", i)
	}
	return keys
}()

func benchServerOps(b *testing.B, shards int, mode string) {
	s, err := New(Config{
		MemoryBytes: 256 << 20,
		Shards:      shards,
		Policy:      "camp",
		Mode:        mode,
		DisableIQ:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	value := make([]byte, benchValueLen)
	warm, err := kvclient.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchKeys; i++ {
		if err := warm.SetNoreply(benchKeySet[i], value, 0, 0, int64(1+i%100)); err != nil {
			b.Fatal(err)
		}
	}
	if err := warm.Flush(); err != nil {
		b.Fatal(err)
	}
	// A synchronous command drains the pipeline before timing starts.
	if _, err := warm.Version(); err != nil {
		b.Fatal(err)
	}
	warm.Close()

	b.SetParallelism(8) // 8 concurrent clients per GOMAXPROCS
	b.ReportAllocs()
	b.ResetTimer()
	var seed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		c, err := kvclient.Dial(s.Addr())
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(seed.Add(1)))
		batch := make([]string, benchBatchGets)
		var got int
		sink := func(key, value []byte, flags uint32) { got += len(value) }
		for pb.Next() {
			for i := range batch {
				batch[i] = benchKeySet[rng.Intn(benchKeys)]
			}
			if err := c.MultiGetFunc(sink, batch...); err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < benchBatchSets; i++ {
				if err := c.SetNoreply(benchKeySet[rng.Intn(benchKeys)], value, 0, 0, int64(1+rng.Intn(100))); err != nil {
					b.Error(err)
					return
				}
			}
			if err := c.Flush(); err != nil {
				b.Error(err)
				return
			}
		}
	})
	opsPerIter := float64(benchBatchGets + benchBatchSets)
	b.ReportMetric(opsPerIter*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	b.StopTimer()
	// Server-side latency quantiles for the run, from the per-verb
	// histograms the server kept while the benchmark hammered it. benchfmt
	// lifts the p50/p95/p99 metrics into the committed report's latency
	// section.
	lc, err := kvclient.Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	lat, err := lc.StatsLatency()
	if err != nil {
		b.Fatal(err)
	}
	for _, verb := range []string{"get", "set"} {
		ls := lat[verb]
		b.ReportMetric(float64(ls.P50.Microseconds()), "p50_"+verb+"_us")
		b.ReportMetric(float64(ls.P95.Microseconds()), "p95_"+verb+"_us")
		b.ReportMetric(float64(ls.P99.Microseconds()), "p99_"+verb+"_us")
	}
}
