package kvserver

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"camp/internal/persist"
)

// TestConnPanicRecovery pins the blast radius of a handler panic: the
// panicking connection dies, the panic is counted, and every other
// connection — and the server — keeps serving.
func TestConnPanicRecovery(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	s.testHookCmd = func(toks [][]byte) {
		if len(toks) >= 2 && string(toks[1]) == "boom" {
			panic("injected handler panic")
		}
	}

	healthy := rawDial(t, s)
	defer healthy.Close()
	if got := sendLine(t, healthy, "version"); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("probe reply = %q", got)
	}

	victim := rawDial(t, s)
	defer victim.Close()
	if _, err := fmt.Fprintf(victim, "get boom\r\n"); err != nil {
		t.Fatal(err)
	}
	victim.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bufio.NewReader(victim).ReadString('\n'); err == nil {
		t.Fatal("panicking connection returned a reply; want close")
	}

	// The healthy connection still round-trips, on the same server.
	if got := sendLine(t, healthy, "version"); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("post-panic version reply = %q", got)
	}
	if got := s.counters.connPanics.Load(); got != 1 {
		t.Fatalf("conn_panics = %d, want 1", got)
	}

	// And brand-new connections are accepted.
	fresh := rawDial(t, s)
	defer fresh.Close()
	if got := sendLine(t, fresh, "version"); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("fresh-conn version reply = %q", got)
	}
}

// TestMaxConnsAcceptLimit exercises the -max-conns accept cap: connections
// over the limit are refused and counted, and closing an admitted
// connection frees its slot.
func TestMaxConnsAcceptLimit(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20, MaxConns: 2})

	// Admit two connections, round-tripping each so the accept loop has
	// registered it before the next dial.
	c1 := rawDial(t, s)
	defer c1.Close()
	sendLine(t, c1, "version")
	c2 := rawDial(t, s)
	defer c2.Close()
	sendLine(t, c2, "version")

	// The third is accepted by the kernel but refused by the server: it is
	// closed before any command is served.
	c3 := rawDial(t, s)
	defer c3.Close()
	c3.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(c3, "version\r\n"); err == nil {
		if _, err := bufio.NewReader(c3).ReadString('\n'); err == nil {
			t.Fatal("over-limit connection was served; want refusal")
		}
	}
	if got := s.counters.acceptRejected.Load(); got == 0 {
		t.Fatal("accept_rejected_maxconns = 0, want > 0")
	}

	// Closing an admitted connection frees its slot; a new dial is served
	// once the handler's cleanup has run (poll: the decrement is
	// asynchronous, and rejected dials back the accept loop off briefly).
	c1.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c4, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c4.SetReadDeadline(time.Now().Add(time.Second))
		fmt.Fprintf(c4, "version\r\n")
		line, err := bufio.NewReader(c4).ReadString('\n')
		c4.Close()
		if err == nil && strings.HasPrefix(line, "VERSION") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("freed connection slot never became usable")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulDrainPipelinedNoreply is the drain regression: a client
// pipelines a burst of noreply writes, the server is told to shut down
// (the SIGTERM path) while they are in flight, and every one of them must
// be processed, acknowledged where a reply was due, durable on disk after
// the final flush — and the connection must close cleanly, with Shutdown
// returning nil (campsrv exit code 0).
func TestGracefulDrainPipelinedNoreply(t *testing.T) {
	dir := t.TempDir()
	pcfg := func() *PersistConfig {
		return &PersistConfig{Dir: dir, Fsync: persist.FsyncEverySec, Logf: t.Logf}
	}
	cfg := Config{MemoryBytes: 8 << 20, Shards: 4, Persist: pcfg()}
	s := startServer(t, cfg)

	conn := rawDial(t, s)
	defer conn.Close()

	const n = 2000
	var pipe bytes.Buffer
	for i := 0; i < n; i++ {
		val := fmt.Sprintf("v%04d", i)
		fmt.Fprintf(&pipe, "set drain:%04d 7 0 %d noreply\r\n%s\r\n", i, len(val), val)
	}
	// A final replied command marks the end of the pipeline: its reply
	// proves every preceding noreply write was dispatched.
	pipe.WriteString("version\r\n")
	if _, err := conn.Write(pipe.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Shut down while the pipeline is in flight. The drain must let the
	// handler finish everything the client already sent. Half-closing the
	// write side afterwards tells the server this client is done, so the
	// drain finishes as soon as the pipeline does instead of waiting out
	// the whole grace window.
	errC := make(chan error, 1)
	go func() { errC <- s.Shutdown(5 * time.Second) }()
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("trailing reply = %q, %v; want VERSION", line, err)
	}
	// ...and then a clean close, not a reset.
	if _, err := r.ReadByte(); err != io.EOF {
		t.Fatalf("post-drain read = %v, want EOF", err)
	}
	if err := <-errC; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Every pipelined write survived the restart.
	s2, err := New(Config{MemoryBytes: 8 << 20, Shards: 4, Persist: pcfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	state := captureState(s2)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("drain:%04d", i)
		it, ok := state[key]
		if !ok {
			t.Fatalf("key %q lost across graceful drain", key)
		}
		if want := fmt.Sprintf("v%04d", i); it.value != want || it.flags != 7 {
			t.Fatalf("key %q = %+v, want value %q flags 7", key, it, want)
		}
	}
}

// TestShutdownIdempotent pins that Shutdown twice — and Close after
// Shutdown — are no-ops, the contract campsrv's signal path relies on.
func TestShutdownIdempotent(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 1 << 20})
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}
