// Server-side metrics: per-verb and per-shard latency histograms, the
// slowlog, and the Prometheus registry behind -metrics-addr.
//
// Everything on the request path is allocation-free: dispatch resolves the
// verb with the same string-switch trick the command dispatch uses, copies
// the key into pooled per-connection scratch before the payload read
// invalidates the tokens, and records wall time with two atomic adds per
// histogram. The scrape paths — "stats latency", "stats shards", "slowlog
// get" and /metrics — copy the atomic state out and may allocate freely.
package kvserver

import (
	"strconv"
	"time"

	"camp/internal/alloc"
	"camp/internal/metrics"
	"camp/internal/persist"
	"camp/internal/proto"
)

// verbID indexes the per-verb latency histograms.
type verbID int8

const (
	verbGet verbID = iota
	verbSet
	verbAdd
	verbReplace
	verbAppend
	verbPrepend
	verbIncr
	verbDecr
	verbTouch
	verbDelete
	verbOther
	numVerbs

	// verbNone marks commands excluded from latency accounting: quit, and
	// the replication handshake verbs whose handlers hold the connection
	// open for the stream's lifetime (their "latency" would be the feed's).
	verbNone verbID = -1
)

// verbNames are the histogram labels, indexed by verbID. They are
// constants, so slowlog entries can retain them without copying.
var verbNames = [numVerbs]string{
	"get", "set", "add", "replace", "append", "prepend",
	"incr", "decr", "touch", "delete", "other",
}

// verbOf maps a command token to its verb. The string conversion in the
// switch compiles allocation-free, exactly like dispatch's.
func verbOf(tok []byte) verbID {
	switch string(tok) {
	case "get", "gets":
		return verbGet
	case "set":
		return verbSet
	case "add":
		return verbAdd
	case "replace":
		return verbReplace
	case "append":
		return verbAppend
	case "prepend":
		return verbPrepend
	case "incr":
		return verbIncr
	case "decr":
		return verbDecr
	case "touch":
		return verbTouch
	case "delete":
		return verbDelete
	case "quit", "replconf", "sync":
		return verbNone
	default:
		return verbOther
	}
}

// DefaultSlowlogThreshold is the slowlog threshold when the config leaves
// it zero.
const DefaultSlowlogThreshold = 10 * time.Millisecond

// srvMetrics is the server's instrumentation state. The histograms are
// embedded (not pointers) so Observe never chases an indirection.
type srvMetrics struct {
	verbs    [numVerbs]metrics.Histogram
	slowlog  metrics.Slowlog
	registry metrics.Registry
}

// observe records one completed command.
func (s *Server) observe(v verbID, shardIdx int, key []byte, d time.Duration, start time.Time) {
	s.metrics.verbs[v].Observe(d)
	if shardIdx >= 0 {
		s.shards[shardIdx].latHist.Observe(d)
	}
	if s.metrics.slowlog.Slow(d) {
		s.metrics.slowlog.Record(verbNames[v], key, d, start)
	}
}

var (
	replyBadStats   = []byte("CLIENT_ERROR bad stats command (want latency, shards or tenants)\r\n")
	replyBadSlowlog = []byte("CLIENT_ERROR bad slowlog command (want get, reset or threshold <ms>)\r\n")
)

// handleStatsLatency renders "stats latency": per-verb observation counts
// and log-bucket quantiles in microseconds. Every verb is always present,
// so the line set is stable for parsers.
func (s *Server) handleStatsLatency(cs *connState) error {
	out := cs.out[:0]
	for v := verbID(0); v < numVerbs; v++ {
		snap := s.metrics.verbs[v].Snapshot()
		name := verbNames[v]
		out = appendStat(out, name+"_count", snap.Count)
		out = appendStat(out, name+"_sum_us", uint64(snap.Sum/1e3))
		out = appendStat(out, name+"_avg_us", uint64(snap.Mean().Microseconds()))
		out = appendStat(out, name+"_p50_us", uint64(snap.Quantile(0.50).Microseconds()))
		out = appendStat(out, name+"_p95_us", uint64(snap.Quantile(0.95).Microseconds()))
		out = appendStat(out, name+"_p99_us", uint64(snap.Quantile(0.99).Microseconds()))
	}
	out = append(out, replyEnd...)
	cs.out = out
	_, err := cs.w.Write(out)
	return err
}

// handleStatsShards renders "stats shards": per-shard occupancy, eviction
// pressure, IQ miss-table size, latency and lock-hold tails, and — with
// persistence — journal generation/size and compaction counts.
func (s *Server) handleStatsShards(cs *connState) error {
	out := cs.out[:0]
	for i, sh := range s.shards {
		sh.mu.Lock()
		items := sh.store.len()
		bytes := sh.store.used()
		evictions := sh.store.evictions()
		rejected := sh.store.rejected()
		reclaimed := sh.store.reclaimed()
		missTable := len(sh.missedAt)
		as := sh.store.arenaStats()
		sh.mu.Unlock()
		lat := sh.latHist.Snapshot()
		lock := sh.lockHist.Snapshot()
		prefix := "shard" + strconv.Itoa(i) + "_"
		out = appendStatInt(out, prefix+"items", int64(items))
		out = appendStatInt(out, prefix+"bytes", bytes)
		out = appendStat(out, prefix+"evictions", evictions)
		out = appendStat(out, prefix+"rejected_sets", rejected)
		out = appendStat(out, prefix+"expired_reclaimed", reclaimed)
		out = appendStatInt(out, prefix+"iq_miss_table", int64(missTable))
		out = appendStat(out, prefix+"ops", lat.Count)
		out = appendStat(out, prefix+"p99_us", uint64(lat.Quantile(0.99).Microseconds()))
		out = appendStat(out, prefix+"lock_holds", lock.Count)
		out = appendStat(out, prefix+"lock_p99_us", uint64(lock.Quantile(0.99).Microseconds()))
		if s.arenaMode {
			out = appendStatInt(out, prefix+"arena_live_bytes", as.LiveBytes)
			out = appendStatInt(out, prefix+"arena_dead_bytes", as.DeadBytes)
			out = appendStatInt(out, prefix+"arena_held_bytes", as.HeldBytes)
			out = appendStatInt(out, prefix+"arena_segments", int64(as.Segments))
			out = appendStat(out, prefix+"arena_compactions", as.Compactions)
			out = appendStat(out, prefix+"arena_relocated_bytes", as.RelocatedBytes)
		}
		if sh.mgr != nil {
			info := sh.mgr.Info()
			out = appendStat(out, prefix+"journal_gen", info.Generation)
			out = appendStatInt(out, prefix+"journal_bytes", info.AOFSize)
			out = appendStat(out, prefix+"compactions", info.Compactions)
			degraded := uint64(0)
			if sh.degraded.Load() {
				degraded = 1
			}
			out = appendStat(out, prefix+"persist_degraded", degraded)
		}
	}
	out = append(out, replyEnd...)
	cs.out = out
	_, err := cs.w.Write(out)
	return err
}

// handleSlowlog serves "slowlog get|reset|threshold <ms>". Entries render
// newest first as
//
//	SLOWLOG <id> <unix> <duration_us> <verb> <key>\r\n
//
// with "-" standing in for an empty key, then END. The threshold changes
// take effect immediately, no restart needed.
func (s *Server) handleSlowlog(args [][]byte, cs *connState) error {
	w := cs.w
	if len(args) == 0 {
		_, err := w.Write(replyBadSlowlog)
		return err
	}
	switch string(args[0]) {
	case "get":
		if len(args) != 1 {
			_, err := w.Write(replyBadSlowlog)
			return err
		}
		out := cs.out[:0]
		for _, e := range s.metrics.slowlog.Entries() {
			out = append(out, "SLOWLOG "...)
			out = strconv.AppendUint(out, e.ID, 10)
			out = append(out, ' ')
			out = strconv.AppendInt(out, e.Unix, 10)
			out = append(out, ' ')
			out = strconv.AppendInt(out, e.Dur.Microseconds(), 10)
			out = append(out, ' ')
			out = append(out, e.Verb...)
			out = append(out, ' ')
			if key := e.Key(); key == "" {
				out = append(out, '-')
			} else {
				out = append(out, key...)
			}
			out = append(out, '\r', '\n')
		}
		out = append(out, replyEnd...)
		cs.out = out
		_, err := w.Write(out)
		return err
	case "reset":
		if len(args) != 1 {
			_, err := w.Write(replyBadSlowlog)
			return err
		}
		s.metrics.slowlog.Reset()
		_, err := w.Write(replyOK)
		return err
	case "threshold":
		if len(args) != 2 {
			_, err := w.Write(replyBadSlowlog)
			return err
		}
		ms, ok := proto.ParseUint(args[1])
		if !ok {
			_, err := w.Write(replyBadSlowlog)
			return err
		}
		s.metrics.slowlog.SetThreshold(time.Duration(ms) * time.Millisecond)
		_, err := w.Write(replyOK)
		return err
	default:
		_, err := w.Write(replyBadSlowlog)
		return err
	}
}

// buildRegistry wires every metric family into the Prometheus registry.
// Families are collected through callbacks at scrape time, so gauges are
// always live; per-shard collectors lock one shard at a time, exactly as
// the stats command does. Replication families are registered
// unconditionally (with no samples when the role doesn't apply), so the
// family set a scraper sees is stable across roles and restarts.
func (s *Server) buildRegistry() {
	r := &s.metrics.registry
	labels := make([]string, len(s.shards))
	for i := range labels {
		labels[i] = strconv.Itoa(i)
	}

	r.Register("camp_uptime_seconds", "Seconds since the server started.", metrics.TypeGauge,
		func(tw *metrics.TextWriter) { tw.Sample("", time.Since(s.started).Seconds()) })
	r.Register("camp_limit_bytes", "Configured cache capacity in bytes.", metrics.TypeGauge,
		func(tw *metrics.TextWriter) { tw.Sample("", float64(s.cfg.MemoryBytes)) })

	r.Register("camp_cmd_total", "Commands processed, by verb.", metrics.TypeCounter,
		func(tw *metrics.TextWriter) {
			for _, c := range s.counters.lines() {
				if verb, ok := cutPrefix(c.key, "cmd_"); ok {
					tw.Sample("", float64(c.val), "verb", verb)
				}
			}
		})
	r.Register("camp_get_hits_total", "Per-key get hits.", metrics.TypeCounter,
		func(tw *metrics.TextWriter) { tw.Sample("", float64(s.counters.getHits.Load())) })
	r.Register("camp_get_misses_total", "Per-key get misses.", metrics.TypeCounter,
		func(tw *metrics.TextWriter) { tw.Sample("", float64(s.counters.getMisses.Load())) })

	// Robustness families, registered unconditionally (PR-6 convention: the
	// family set is identical across roles and configurations).
	r.Register("camp_conn_panics_total", "Handler panics recovered; each closed its connection, the server survived.", metrics.TypeCounter,
		func(tw *metrics.TextWriter) { tw.Sample("", float64(s.counters.connPanics.Load())) })
	r.Register("camp_accept_rejected_maxconns_total", "Connections refused at the -max-conns accept limit.", metrics.TypeCounter,
		func(tw *metrics.TextWriter) { tw.Sample("", float64(s.counters.acceptRejected.Load())) })
	r.Register("camp_persist_errors_total", "Journal and snapshot failures across all shards.", metrics.TypeCounter,
		func(tw *metrics.TextWriter) { tw.Sample("", float64(s.counters.persistErrors.Load())) })
	r.Register("camp_shard_persist_degraded", "Whether the shard serves cache-only after a persistence failure (1) or journals normally (0).", metrics.TypeGauge,
		func(tw *metrics.TextWriter) {
			for i, sh := range s.shards {
				v := 0.0
				if sh.degraded.Load() {
					v = 1
				}
				tw.Sample("", v, "shard", labels[i])
			}
		})

	r.Register("camp_connections_current", "Open client connections.", metrics.TypeGauge,
		func(tw *metrics.TextWriter) { tw.Sample("", float64(s.counters.currConns.Load())) })
	r.Register("camp_connections_total", "Connections accepted since start.", metrics.TypeCounter,
		func(tw *metrics.TextWriter) { tw.Sample("", float64(s.counters.totalConns.Load())) })
	r.Register("camp_bytes_read_total", "Bytes read from client sockets.", metrics.TypeCounter,
		func(tw *metrics.TextWriter) { tw.Sample("", float64(s.counters.bytesRead.Load())) })
	r.Register("camp_bytes_written_total", "Bytes written to client sockets.", metrics.TypeCounter,
		func(tw *metrics.TextWriter) { tw.Sample("", float64(s.counters.bytesWritten.Load())) })

	r.Register("camp_latency_seconds", "Command wall time, by verb.", metrics.TypeHistogram,
		func(tw *metrics.TextWriter) {
			for v := verbID(0); v < numVerbs; v++ {
				tw.Histogram(s.metrics.verbs[v].Snapshot(), "verb", verbNames[v])
			}
		})
	r.Register("camp_shard_latency_seconds", "Command wall time, by shard.", metrics.TypeHistogram,
		func(tw *metrics.TextWriter) {
			for i := range s.shards {
				tw.Histogram(s.shards[i].latHist.Snapshot(), "shard", labels[i])
			}
		})
	r.Register("camp_shard_lock_hold_seconds", "Shard mutex hold time on the mutation path.", metrics.TypeHistogram,
		func(tw *metrics.TextWriter) {
			for i := range s.shards {
				tw.Histogram(s.shards[i].lockHist.Snapshot(), "shard", labels[i])
			}
		})

	shardGauge := func(name, help, typ string, get func(sh *shard) float64) {
		r.Register(name, help, typ, func(tw *metrics.TextWriter) {
			for i, sh := range s.shards {
				sh.mu.Lock()
				v := get(sh)
				sh.mu.Unlock()
				tw.Sample("", v, "shard", labels[i])
			}
		})
	}
	shardGauge("camp_shard_items", "Live items per shard.", metrics.TypeGauge,
		func(sh *shard) float64 { return float64(sh.store.len()) })
	shardGauge("camp_shard_bytes", "Bytes charged per shard.", metrics.TypeGauge,
		func(sh *shard) float64 { return float64(sh.store.used()) })
	shardGauge("camp_shard_evictions_total", "Policy evictions per shard.", metrics.TypeCounter,
		func(sh *shard) float64 { return float64(sh.store.evictions()) })
	shardGauge("camp_shard_rejected_sets_total", "Sets refused by the eviction policy per shard.", metrics.TypeCounter,
		func(sh *shard) float64 { return float64(sh.store.rejected()) })
	shardGauge("camp_shard_expired_reclaimed_total", "Expired items reclaimed lazily per shard.", metrics.TypeCounter,
		func(sh *shard) float64 { return float64(sh.store.reclaimed()) })
	shardGauge("camp_shard_iq_miss_table", "Pending IQ miss-table entries per shard.", metrics.TypeGauge,
		func(sh *shard) float64 { return float64(len(sh.missedAt)) })

	// Packed-arena families, registered unconditionally (the stable-family-set
	// convention); they carry samples only in arena mode.
	arenaGauge := func(name, help, typ string, get func(as alloc.ArenaStats) float64) {
		r.Register(name, help, typ, func(tw *metrics.TextWriter) {
			if !s.arenaMode {
				return
			}
			for i, sh := range s.shards {
				sh.mu.Lock()
				v := get(sh.store.arenaStats())
				sh.mu.Unlock()
				tw.Sample("", v, "shard", labels[i])
			}
		})
	}
	arenaGauge("camp_shard_arena_live_bytes", "Live packed-record bytes per shard arena.", metrics.TypeGauge,
		func(as alloc.ArenaStats) float64 { return float64(as.LiveBytes) })
	arenaGauge("camp_shard_arena_dead_bytes", "Dead (overwritten or deleted) record bytes awaiting compaction per shard arena.", metrics.TypeGauge,
		func(as alloc.ArenaStats) float64 { return float64(as.DeadBytes) })
	arenaGauge("camp_shard_arena_held_bytes", "Segment bytes held from the budget per shard arena.", metrics.TypeGauge,
		func(as alloc.ArenaStats) float64 { return float64(as.HeldBytes) })
	arenaGauge("camp_shard_arena_segments", "Segments held per shard arena.", metrics.TypeGauge,
		func(as alloc.ArenaStats) float64 { return float64(as.Segments) })
	arenaGauge("camp_shard_arena_compactions_total", "Segments fully compacted and recycled per shard arena.", metrics.TypeCounter,
		func(as alloc.ArenaStats) float64 { return float64(as.Compactions) })
	arenaGauge("camp_shard_arena_relocated_bytes_total", "Live record bytes relocated by the compactor per shard arena.", metrics.TypeCounter,
		func(as alloc.ArenaStats) float64 { return float64(as.RelocatedBytes) })

	journalGauge := func(name, help, typ string, get func(info persist.Info) float64) {
		r.Register(name, help, typ, func(tw *metrics.TextWriter) {
			for i, sh := range s.shards {
				if sh.mgr == nil {
					continue
				}
				tw.Sample("", get(sh.mgr.Info()), "shard", labels[i])
			}
		})
	}
	journalGauge("camp_shard_journal_generation", "Current journal generation per shard.", metrics.TypeGauge,
		func(info persist.Info) float64 { return float64(info.Generation) })
	journalGauge("camp_shard_journal_bytes", "Journal segment size per shard.", metrics.TypeGauge,
		func(info persist.Info) float64 { return float64(info.AOFSize) })
	journalGauge("camp_shard_compactions_total", "Snapshot-compaction cycles per shard.", metrics.TypeCounter,
		func(info persist.Info) float64 { return float64(info.Compactions) })

	// Per-tenant families, labeled by tenant name. Residency figures sum
	// across shards (one shard lock at a time); the read counters come from
	// the registry's lifetime atomics. The default tenant is always present,
	// so single-tenant deployments scrape a stable one-series family.
	tenantUsage := func(name, help, typ string, get func(tt tenantTotals, tname string) float64) {
		r.Register(name, help, typ, func(tw *metrics.TextWriter) {
			tt := s.collectTenantTotals()
			for _, t := range s.tenants.list() {
				tw.Sample("", get(tt, t.name), "tenant", t.name)
			}
		})
	}
	tenantUsage("camp_tenant_bytes", "Bytes resident per tenant.", metrics.TypeGauge,
		func(tt tenantTotals, tname string) float64 { return float64(tt.used[tname]) })
	tenantUsage("camp_tenant_items", "Items resident per tenant.", metrics.TypeGauge,
		func(tt tenantTotals, tname string) float64 { return float64(tt.items[tname]) })
	tenantUsage("camp_tenant_evictions_total", "Policy evictions per tenant since its last flush.", metrics.TypeCounter,
		func(tt tenantTotals, tname string) float64 { return float64(tt.evictions[tname]) })
	tenantCounter := func(name, help, typ string, get func(t *tenant) float64) {
		r.Register(name, help, typ, func(tw *metrics.TextWriter) {
			for _, t := range s.tenants.list() {
				tw.Sample("", get(t), "tenant", t.name)
			}
		})
	}
	tenantCounter("camp_tenant_reserved_bytes", "Configured reserved quota per tenant.", metrics.TypeGauge,
		func(t *tenant) float64 { return float64(t.reserve.Load()) })
	tenantCounter("camp_tenant_hits_total", "Get hits per tenant.", metrics.TypeCounter,
		func(t *tenant) float64 { return float64(t.hits.Load()) })
	tenantCounter("camp_tenant_misses_total", "Get misses per tenant.", metrics.TypeCounter,
		func(t *tenant) float64 { return float64(t.misses.Load()) })
	tenantCounter("camp_tenant_cost_saved_total", "Summed cost of get hits per tenant (the CAMP objective).", metrics.TypeCounter,
		func(t *tenant) float64 { return float64(t.costSaved.Load()) })
	tenantCounter("camp_tenant_quota_shed_total", "Requests answered 'tenant over quota' per tenant.", metrics.TypeCounter,
		func(t *tenant) float64 { return float64(t.quotaShed.Load()) })

	r.Register("camp_slowlog_entries", "Slow commands currently retained.", metrics.TypeGauge,
		func(tw *metrics.TextWriter) { tw.Sample("", float64(s.metrics.slowlog.Len())) })
	r.Register("camp_slowlog_threshold_seconds", "Current slowlog threshold.", metrics.TypeGauge,
		func(tw *metrics.TextWriter) { tw.Sample("", s.metrics.slowlog.Threshold().Seconds()) })

	// Primary-side replication: one sample set per live sync feed. The feed
	// label is a per-server-lifetime sequence number, so a reconnecting
	// follower shows up as a new series instead of silently aliasing.
	r.Register("camp_repl_feed_generation", "Journal generation each sync feed is streaming.", metrics.TypeGauge,
		func(tw *metrics.TextWriter) {
			s.eachFeed(func(f *feedStat) {
				tw.Sample("", float64(f.gen.Load()), "shard", labels[f.shard], "feed", f.label)
			})
		})
	r.Register("camp_repl_feed_offset_bytes", "Journal offset each sync feed has reached.", metrics.TypeGauge,
		func(tw *metrics.TextWriter) {
			s.eachFeed(func(f *feedStat) {
				tw.Sample("", float64(f.off.Load()), "shard", labels[f.shard], "feed", f.label)
			})
		})
	r.Register("camp_repl_feed_lag_bytes", "Bytes between each sync feed and its shard's journal head.", metrics.TypeGauge,
		func(tw *metrics.TextWriter) {
			s.eachFeed(func(f *feedStat) {
				tw.Sample("", float64(s.feedLagBytes(f)), "shard", labels[f.shard], "feed", f.label)
			})
		})

	// Follower-side replication: one sample per shard stream when this
	// server is (or was) a replica.
	replGauge := func(name, help, typ string, get func(sr *shardReplica) float64) {
		r.Register(name, help, typ, func(tw *metrics.TextWriter) {
			if s.repl == nil {
				return
			}
			for _, sr := range s.repl.reps {
				tw.Sample("", get(sr), "shard", labels[sr.idx])
			}
		})
	}
	replGauge("camp_repl_connected", "Whether the shard's replication stream is live.", metrics.TypeGauge,
		func(sr *shardReplica) float64 {
			sr.mu.Lock()
			defer sr.mu.Unlock()
			if sr.connected {
				return 1
			}
			return 0
		})
	replGauge("camp_repl_applied_ops_total", "Replicated ops applied per shard.", metrics.TypeCounter,
		func(sr *shardReplica) float64 {
			sr.mu.Lock()
			defer sr.mu.Unlock()
			return float64(sr.applied)
		})
	replGauge("camp_repl_lag_seconds", "Seconds since the shard's stream last delivered a frame or ping.", metrics.TypeGauge,
		func(sr *shardReplica) float64 {
			last := sr.lastFrame.Load()
			if last == 0 {
				return -1 // never connected
			}
			return time.Since(time.Unix(0, last)).Seconds()
		})
	replGauge("camp_repl_durable_position", "Whether a restart would resume with CONTINUE (1) or full resync (0).", metrics.TypeGauge,
		func(sr *shardReplica) float64 {
			sr.sh.mu.Lock()
			defer sr.sh.mu.Unlock()
			if sr.sh.replPos.RunID != 0 {
				return 1
			}
			return 0
		})
}

// cutPrefix is strings.CutPrefix, kept local to avoid importing strings
// into this otherwise byte-oriented package for one call.
func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}
