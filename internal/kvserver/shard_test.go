package kvserver

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"camp/internal/cache"
	"camp/internal/kvclient"
	"camp/internal/persist"
)

func TestShardIndexStableAndSpread(t *testing.T) {
	counts := make([]int, 8)
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("key-%d", i)
		idx := shardIndex(key, 8)
		if idx2 := shardIndex(key, 8); idx2 != idx {
			t.Fatalf("shardIndex not deterministic for %q: %d vs %d", key, idx, idx2)
		}
		counts[idx]++
	}
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d received no keys: %v", i, counts)
		}
	}
	if shardIndex("anything", 1) != 0 {
		t.Fatal("single shard must always route to 0")
	}
}

// TestShardedRoundTrip runs the basic command set against a multi-shard
// server so every handler exercises routing.
func TestShardedRoundTrip(t *testing.T) {
	s := startServer(t, Config{MemoryBytes: 4 << 20, Policy: "camp", Shards: 4})
	c := dial(t, s)
	for i := 0; i < 200; i++ {
		if err := c.Set(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%03d", i)), uint32(i), 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Every shard should own part of the keyspace.
	for i, sh := range s.shards {
		sh.mu.Lock()
		n := sh.store.len()
		sh.mu.Unlock()
		if n == 0 {
			t.Fatalf("shard %d is empty after 200 sets", i)
		}
	}
	got, err := c.MultiGet("k000", "k050", "k100", "k150", "missing")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || string(got["k050"]) != "v050" {
		t.Fatalf("MultiGet across shards = %v", got)
	}
	if ok, err := c.Delete("k100"); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, ok, _ := c.Get("k100"); ok {
		t.Fatal("deleted key still readable")
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["shards"] != "4" {
		t.Fatalf("shards stat = %q, want 4", stats["shards"])
	}
	if stats["curr_items"] != "199" {
		t.Fatalf("curr_items = %q, want 199", stats["curr_items"])
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	stats, _ = c.Stats()
	if stats["curr_items"] != "0" {
		t.Fatalf("curr_items after flush_all = %q", stats["curr_items"])
	}
}

// TestShardedCrashRecovery is the sharded variant of the acceptance test:
// a randomized mutation mix against a 4-shard AOF-enabled server with tiny
// per-shard journals (forcing off-lock compactions mid-run), a hard stop,
// and a recovery that must reproduce every acknowledged mutation exactly.
func TestShardedCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	pcfg := func() *PersistConfig {
		return &PersistConfig{
			Dir:      dir,
			Fsync:    persist.FsyncAlways,
			AOFLimit: 2 << 10,
			Logf:     t.Logf,
		}
	}
	cfg := Config{
		MemoryBytes: 16 << 20,
		Shards:      4,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     pcfg(),
	}
	s1 := startServer(t, cfg)
	c := dial(t, s1)
	rng := rand.New(rand.NewSource(99))
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	for i := 0; i < 3000; i++ {
		key := keys[rng.Intn(len(keys))]
		switch op := rng.Intn(10); {
		case op < 6:
			val := []byte(fmt.Sprintf("val-%d-%d", i, rng.Int63()))
			var ttl int64
			if rng.Intn(3) == 0 {
				ttl = int64(3600 + rng.Intn(3600))
			}
			if err := c.Set(key, val, uint32(rng.Intn(1<<16)), ttl, int64(1+rng.Intn(10000))); err != nil {
				t.Fatal(err)
			}
		case op < 8:
			if _, err := c.Delete(key); err != nil {
				t.Fatal(err)
			}
		default:
			if _, err := c.Touch(key, int64(1800+rng.Intn(1800))); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := captureState(s1)
	if len(want) == 0 {
		t.Fatal("test produced no resident items")
	}
	s1.Kill()

	// Shard dirs must exist, and nothing may sit in the data-dir root.
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, shardDirName(i))); err != nil {
			t.Fatalf("missing shard dir %d: %v", i, err)
		}
	}

	cfg.Persist = pcfg()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := captureState(s2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d items, want %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("key %q lost in recovery", key)
		}
		if g != w {
			t.Fatalf("key %q: recovered %+v, want %+v", key, g, w)
		}
	}
	if s2.recovered.SnapshotOps == 0 {
		t.Fatal("tiny AOF limit run recovered nothing from snapshots")
	}
}

// TestLegacyLayoutMigration seeds a data directory the way the pre-sharding
// server wrote it — snapshot and journal directly in the root — and checks a
// sharded server migrates it in place: all keys present with costs intact,
// journal history (including a flush) honored, root files gone, per-shard
// dirs in service.
func TestLegacyLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	// Build the legacy layout with the persist package directly, exactly as
	// kvserver PR-1 did: one manager over the root dir.
	mgr, _, err := persist.Open(persist.Options{Dir: dir, Fsync: persist.FsyncAlways}, func(persist.Op) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	journal := func(op persist.Op) {
		t.Helper()
		if err := mgr.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	journal(persist.Op{Kind: persist.KindSet, Key: "doomed-a", Value: []byte("x"), Size: 64, Cost: 5})
	journal(persist.Op{Kind: persist.KindSet, Key: "doomed-b", Value: []byte("x"), Size: 64, Cost: 5})
	journal(persist.Op{Kind: persist.KindFlush})
	for i := 0; i < 50; i++ {
		journal(persist.Op{
			Kind:  persist.KindSet,
			Key:   fmt.Sprintf("k%02d", i),
			Value: []byte(fmt.Sprintf("v%02d", i)),
			Flags: uint32(i),
			Size:  64,
			Cost:  int64(i + 1),
		})
	}
	journal(persist.Op{Kind: persist.KindDelete, Key: "k00"})
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		MemoryBytes: 4 << 20,
		Shards:      4,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := captureState(s)
	if len(got) != 49 {
		t.Fatalf("migrated %d items, want 49: %v", len(got), got)
	}
	if _, ok := got["doomed-a"]; ok {
		t.Fatal("migration ignored the journaled flush")
	}
	if it := got["k07"]; it.value != "v07" || it.flags != 7 || it.cost != 8 {
		t.Fatalf("k07 after migration: %+v", it)
	}
	// Root files are gone; per-shard dirs exist.
	if has, err := persist.HasState(dir); err != nil || has {
		t.Fatalf("legacy root files survived migration (has=%v, err=%v)", has, err)
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, shardDirName(i))); err != nil {
			t.Fatalf("missing shard dir %d: %v", i, err)
		}
	}

	// The migrated layout must itself survive a crash cycle.
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	c := dial(t, s)
	if err := c.Set("post-migrate", []byte("p"), 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	s.Kill()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got = captureState(s2)
	if len(got) != 50 {
		t.Fatalf("post-migration crash recovery: %d items, want 50", len(got))
	}
}

// TestReshardMigration restarts the same data dir at different shard counts
// — the default tracks GOMAXPROCS, so growing and shrinking both happen in
// the wild — and checks every item (value, flags, cost) survives each hop.
func TestReshardMigration(t *testing.T) {
	dir := t.TempDir()
	var want map[string]expectedItem
	for hop, shards := range []int{2, 5, 3, 1} {
		cfg := Config{
			MemoryBytes: 8 << 20,
			Shards:      shards,
			Policy:      "camp",
			DisableIQ:   true,
			Persist:     &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf},
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("hop %d (shards=%d): %v", hop, shards, err)
		}
		if hop == 0 {
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			c := dial(t, s)
			for i := 0; i < 120; i++ {
				if err := c.Set(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%03d", i)), uint32(i), 0, int64(i+1)); err != nil {
					t.Fatal(err)
				}
			}
			want = captureState(s)
			if len(want) != 120 {
				t.Fatalf("seeded %d items, want 120", len(want))
			}
		} else {
			got := captureState(s)
			if len(got) != len(want) {
				t.Fatalf("hop %d (shards=%d): %d items, want %d", hop, shards, len(got), len(want))
			}
			for key, w := range want {
				if g, ok := got[key]; !ok || g != w {
					t.Fatalf("hop %d (shards=%d): key %q = %+v, want %+v (present=%v)", hop, shards, key, g, w, ok)
				}
			}
			// The old dirs must be gone: exactly `shards` shard dirs remain.
			idx, err := shardDirIndices(dir)
			if err != nil {
				t.Fatal(err)
			}
			if layoutMismatch(idx, shards) {
				t.Fatalf("hop %d: leftover shard dirs %v for %d shards", hop, idx, shards)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInterruptedMigrationSwap simulates a crash between the MIGRATE marker
// and the staged-directory swap: the next open must adopt the staged
// layout, not the stale sources.
func TestInterruptedMigrationSwap(t *testing.T) {
	dir := t.TempDir()
	// Stale source: an old single-shard dir claiming key "stale".
	staleOps := []persist.Op{{Kind: persist.KindSet, Key: "stale", Value: []byte("old"), Size: 64, Cost: 1}}
	if err := os.MkdirAll(filepath.Join(dir, shardDirName(0)), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteSnapshotFile(persist.SnapshotPath(filepath.Join(dir, shardDirName(0)), 1), emitOps(staleOps)); err != nil {
		t.Fatal(err)
	}
	// Committed staged layout for 2 shards carrying key "fresh" (routed to
	// its real shard so lookups find it after adoption).
	freshOps := []persist.Op{{Kind: persist.KindSet, Key: "fresh", Value: []byte("new"), Flags: 9, Size: 64, Cost: 7}}
	home := shardIndex("fresh", 2)
	for i := 0; i < 2; i++ {
		stage := filepath.Join(dir, shardDirName(i)+stageSuffix)
		if err := os.MkdirAll(stage, 0o755); err != nil {
			t.Fatal(err)
		}
		ops := []persist.Op{}
		if i == home {
			ops = freshOps
		}
		if _, err := persist.WriteSnapshotFile(persist.SnapshotPath(stage, 1), emitOps(ops)); err != nil {
			t.Fatal(err)
		}
	}
	if err := writeMarker(dir, 2); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		MemoryBytes: 1 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := captureState(s)
	if len(got) != 1 {
		t.Fatalf("adopted layout has %d items, want 1: %v", len(got), got)
	}
	if it, ok := got["fresh"]; !ok || it.value != "new" || it.cost != 7 {
		t.Fatalf("staged key after adoption: %+v (present=%v)", it, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, migrateMarker)); !os.IsNotExist(err) {
		t.Fatal("MIGRATE marker survived adoption")
	}
}

// TestAbortedMigrationStagingDiscarded: staged dirs with no MIGRATE marker
// are leftovers of a migration that died before its commit point — the
// sources are intact and must win.
func TestAbortedMigrationStagingDiscarded(t *testing.T) {
	dir := t.TempDir()
	srcOps := []persist.Op{{Kind: persist.KindSet, Key: "kept", Value: []byte("v"), Size: 64, Cost: 2}}
	src := filepath.Join(dir, shardDirName(0))
	if err := os.MkdirAll(src, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteSnapshotFile(persist.SnapshotPath(src, 1), emitOps(srcOps)); err != nil {
		t.Fatal(err)
	}
	stage := filepath.Join(dir, shardDirName(0)+stageSuffix)
	if err := os.MkdirAll(stage, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteSnapshotFile(persist.SnapshotPath(stage, 1), emitOps([]persist.Op{
		{Kind: persist.KindSet, Key: "half-baked", Value: []byte("x"), Size: 64, Cost: 1},
	})); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		MemoryBytes: 1 << 20,
		Shards:      1,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := captureState(s)
	if _, ok := got["kept"]; !ok || len(got) != 1 {
		t.Fatalf("source data lost to an aborted staging: %v", got)
	}
	if _, err := os.Stat(stage); !os.IsNotExist(err) {
		t.Fatal("stale staging dir survived open")
	}
}

// TestServerDataDirLock is the satellite acceptance at the server level: a
// second server on the same -data-dir refuses to start, and an orderly
// shutdown hands the directory over.
func TestServerDataDirLock(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		MemoryBytes: 1 << 20,
		Shards:      2,
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: dir, Logf: t.Logf},
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); !errors.Is(err, persist.ErrLocked) {
		t.Fatalf("second server on a live data dir: got %v, want ErrLocked", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("server after clean shutdown: %v", err)
	}
	s2.Close()
}

// shardEvictionOrder reads a shard's predicted eviction sequence without
// mutating it.
func shardEvictionOrder(sh *shard) []string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	eo := sh.store.policy.(cache.EvictionOrdered)
	var keys []string
	eo.VisitEvictionOrder(func(e cache.Entry) bool {
		keys = append(keys, e.Key)
		return true
	})
	return keys
}

// TestSnapshotOrderFidelity pins the satellite: a snapshot-based warm start
// must rebuild CAMP's queues in the original order, so the recovered
// server's eviction sequence matches the pre-snapshot one exactly. Entries
// share buckets (same cost/size repeats) so within-queue LRU order matters,
// which a random-map-order snapshot would scramble. The workload avoids
// evictions on purpose, pinning the order-only baseline; the post-churn
// case (non-uniform offsets, exact since snapshot format v2) is
// TestSnapshotOrderFidelityMidChurn.
func TestSnapshotOrderFidelity(t *testing.T) {
	dir := t.TempDir()
	pcfg := func() *PersistConfig {
		return &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf}
	}
	cfg := Config{
		MemoryBytes: 8 << 20, // ample: order is decided by priorities, not churn
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     pcfg(),
	}
	s1 := startServer(t, cfg)
	c := dial(t, s1)
	rng := rand.New(rand.NewSource(5))
	costs := []int64{1, 1, 40, 40, 900, 20000} // repeats force shared queues
	for i := 0; i < 400; i++ {
		if err := c.Set(fmt.Sprintf("key-%03d", i), make([]byte, 80), 0, 0, costs[rng.Intn(len(costs))]); err != nil {
			t.Fatal(err)
		}
	}
	// Some re-touches so recency within queues is not just insertion order.
	for i := 0; i < 150; i++ {
		if _, _, err := c.Get(fmt.Sprintf("key-%03d", rng.Intn(400))); err != nil {
			t.Fatal(err)
		}
	}
	s1.Snapshot() // the warm-start artifact under test
	want := make([][]string, len(s1.shards))
	for i, sh := range s1.shards {
		want[i] = shardEvictionOrder(sh)
		if len(want[i]) == 0 {
			t.Fatalf("shard %d is empty", i)
		}
	}
	s1.Kill()

	cfg.Persist = pcfg()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.recovered.SnapshotOps == 0 || s2.recovered.ReplayedOps != 0 {
		t.Fatalf("warm start must come from snapshots alone: %+v", s2.recovered)
	}
	for i, sh := range s2.shards {
		got := shardEvictionOrder(sh)
		if len(got) != len(want[i]) {
			t.Fatalf("shard %d: %d entries after load, want %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("shard %d: eviction order diverges at %d: got %q, want %q",
					i, j, got[j], want[i][j])
			}
		}
	}
}

// TestConcurrentShardStress is the satellite concurrency test: many clients
// hammer a persisted multi-shard server with a mixed workload while tiny
// journals force off-lock compactions underneath. Run under -race in CI.
func TestConcurrentShardStress(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		MemoryBytes: 8 << 20,
		Shards:      8,
		Policy:      "camp",
		Persist: &PersistConfig{
			Dir:      dir,
			Fsync:    persist.FsyncNo,
			AOFLimit: 8 << 10, // compact constantly under load
			Logf:     t.Logf,
		},
	}
	s := startServer(t, cfg)
	const (
		clients = 8
		ops     = 400
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := kvclient.Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k%03d", rng.Intn(200)) // shared keyspace: real contention
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					if _, _, err := c.Get(key); err != nil {
						errs <- fmt.Errorf("get: %w", err)
						return
					}
				case 4, 5, 6:
					if err := c.Set(key, []byte(fmt.Sprintf("v-%d-%d", id, i)), 0, 0, int64(1+rng.Intn(100))); err != nil {
						errs <- fmt.Errorf("set: %w", err)
						return
					}
				case 7:
					if _, err := c.Delete(key); err != nil {
						errs <- fmt.Errorf("delete: %w", err)
						return
					}
				case 8:
					ctr := fmt.Sprintf("ctr%d", rng.Intn(20))
					if _, ok, err := c.Incr(ctr, 1); err != nil {
						errs <- fmt.Errorf("incr: %w", err)
						return
					} else if !ok {
						if err := c.Set(ctr, []byte("0"), 0, 0, 1); err != nil {
							errs <- fmt.Errorf("seed ctr: %w", err)
							return
						}
					}
				default:
					if _, err := c.Touch(key, 3600); err != nil {
						errs <- fmt.Errorf("touch: %w", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The server is consistent and responsive afterwards.
	c := dial(t, s)
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["persist_errors"] != "0" {
		t.Fatalf("persist_errors = %q under stress", stats["persist_errors"])
	}
	if err := c.Set("final", []byte("ok"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get("final"); !ok || string(v) != "ok" {
		t.Fatal("server wedged after stress")
	}
}

// TestShardsConfigValidation pins the Config.Shards bounds.
func TestShardsConfigValidation(t *testing.T) {
	if _, err := New(Config{MemoryBytes: 1 << 20, Shards: -1}); err == nil {
		t.Fatal("negative Shards must error")
	}
	if _, err := New(Config{MemoryBytes: 1 << 20, Shards: MaxShards + 1}); err == nil {
		t.Fatal("excessive Shards must error")
	}
	s, err := New(Config{MemoryBytes: 1 << 20, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.shards); got != 3 {
		t.Fatalf("built %d shards, want 3", got)
	}
	var total int64
	for _, sh := range s.shards {
		total += sh.store.policy.Capacity()
	}
	if total != 1<<20 {
		t.Fatalf("shard capacities sum to %d, want %d", total, 1<<20)
	}
	s.Close()
}

// TestSnapshotOrderFidelityMidChurn is the v2 fidelity property at the
// server level: a randomized trace drives CAMP through heavy eviction churn
// (so the live priority offsets are non-uniform — the state order-only v1
// snapshots could not reproduce), a snapshot is cut mid-churn, the server is
// killed, and the warm restart must reproduce the live cache's full
// cross-queue eviction order exactly, shard by shard — the drain the
// pre-churn TestSnapshotOrderFidelity could not pin.
func TestSnapshotOrderFidelityMidChurn(t *testing.T) {
	for _, policy := range []string{"camp", "gds", "lru"} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			pcfg := func() *PersistConfig {
				return &PersistConfig{Dir: dir, Fsync: persist.FsyncAlways, Logf: t.Logf}
			}
			cfg := Config{
				MemoryBytes: 48 << 10, // small on purpose: the workload must evict
				Shards:      2,
				Policy:      policy,
				DisableIQ:   true,
				Persist:     pcfg(),
			}
			s1 := startServer(t, cfg)
			c := dial(t, s1)
			rng := rand.New(rand.NewSource(7))
			costs := []int64{1, 1, 40, 40, 900, 20000} // repeats force shared queues
			// Mixed churn: sets over a keyspace larger than capacity plus
			// re-reads, so entries are admitted at many different L values
			// and the cross-queue offsets diverge.
			for i := 0; i < 2500; i++ {
				key := fmt.Sprintf("key-%03d", rng.Intn(600))
				if rng.Intn(4) == 0 {
					if _, _, err := c.Get(key); err != nil {
						t.Fatal(err)
					}
				} else if err := c.Set(key, make([]byte, 80), 0, 0, costs[rng.Intn(len(costs))]); err != nil {
					t.Fatal(err)
				}
			}
			for i, sh := range s1.shards {
				sh.mu.Lock()
				ev := sh.store.evictions()
				sh.mu.Unlock()
				if ev == 0 {
					t.Fatalf("shard %d: no evictions — mid-churn fidelity is vacuous", i)
				}
			}
			s1.Snapshot() // the mid-churn warm-start artifact under test
			wantState := captureState(s1)
			want := make([][]string, len(s1.shards))
			for i, sh := range s1.shards {
				want[i] = shardEvictionOrder(sh)
				if len(want[i]) == 0 {
					t.Fatalf("shard %d is empty", i)
				}
			}
			s1.Kill()

			cfg.Persist = pcfg()
			s2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.recovered.SnapshotOps == 0 || s2.recovered.ReplayedOps != 0 {
				t.Fatalf("warm start must come from snapshots alone: %+v", s2.recovered)
			}
			assertStateEqual(t, wantState, captureState(s2))
			for i, sh := range s2.shards {
				got := shardEvictionOrder(sh)
				if len(got) != len(want[i]) {
					t.Fatalf("shard %d: %d entries after load, want %d", i, len(got), len(want[i]))
				}
				for j := range got {
					if got[j] != want[i][j] {
						t.Fatalf("shard %d: eviction order diverges at %d/%d: got %q, want %q",
							i, j, len(got), got[j], want[i][j])
					}
				}
			}
		})
	}
}
