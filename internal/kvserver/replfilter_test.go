package kvserver

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"camp/internal/kvclient"
	"camp/internal/persist"
)

// filterState keeps only the entries of a captured server state that belong
// to one of the named tenants — the state a filtered follower must converge
// to, and nothing more.
func filterState(state map[string]expectedItem, names []string) map[string]expectedItem {
	out := make(map[string]expectedItem)
	for k, v := range state {
		if keyInAnyTenant(names, k) {
			out[k] = v
		}
	}
	return out
}

// multiTenantChurn writes an interleaved workload across tenants a, b and the
// default namespace on the primary's clients.
func multiTenantChurn(t *testing.T, a, b, def *kvclient.Client, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		k := fmt.Sprintf("k%03d", i)
		for _, c := range []*kvclient.Client{a, b, def} {
			if err := c.Set(k, []byte(strings.Repeat("v", 10+i%40)), uint32(i), 0, int64(1+i%9)); err != nil {
				t.Fatal(err)
			}
		}
		if i%9 == 0 {
			if _, err := a.Delete(fmt.Sprintf("k%03d", i/3)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestReplTenantFilteredFollower is the filtered-replication acceptance test:
// a follower announcing "replconf tenants a" bootstraps via a synthesized
// subset snapshot, converges byte-exactly on tenant a's entries and ONLY
// those, survives a mid-stream disconnect with CONTINUE (skip frames keep its
// offsets mirroring the primary's), and after promotion serves exactly the
// subset.
func TestReplTenantFilteredFollower(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 4 << 20,
		Shards:      2,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	a, err := kvclient.DialWithTenant(p.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := kvclient.DialWithTenant(p.Addr(), "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	def := dial(t, p)

	// Data exists before the follower attaches: the bootstrap is a genuine
	// filtered FULLSYNC, not an empty snapshot.
	multiTenantChurn(t, a, b, def, 0, 80)
	f := startReplica(t, p, Config{
		MemoryBytes:    4 << 20,
		Shards:         2,
		Policy:         "camp",
		DisableIQ:      true,
		ReplicaTenants: []string{"a"},
	})
	multiTenantChurn(t, a, b, def, 80, 150)
	waitCaughtUp(t, p, f)

	want := filterState(captureState(p), []string{"a"})
	if len(want) == 0 {
		t.Fatal("tenant a holds no entries; the test is vacuous")
	}
	assertStateEqual(t, want, captureState(f))
	names, _, totals := tenantSnapshot(f)
	if !reflect.DeepEqual(names, []string{"default", "a"}) {
		t.Fatalf("follower tenant set = %v, want [default a] (tenant b must not leak)", names)
	}
	if totals.items["b"] != 0 || totals.items["default"] != 0 {
		t.Fatalf("follower holds foreign entries: %v", totals.items)
	}

	// Chaos: every stream dies mid-segment; more writes to all tenants land
	// while the follower reconnects. CONTINUE must resume — the skip frames
	// kept the follower's offsets at real record boundaries.
	for _, sr := range f.repl.reps {
		sr.closeConn()
	}
	multiTenantChurn(t, a, b, def, 150, 220)
	waitCaughtUp(t, p, f)
	assertStateEqual(t, filterState(captureState(p), []string{"a"}), captureState(f))
	for i, sr := range f.repl.reps {
		sr.mu.Lock()
		fullSyncs, reconnects := sr.fullSyncs, sr.reconnects
		sr.mu.Unlock()
		if fullSyncs != 1 {
			t.Fatalf("shard %d: %d full syncs after disconnect, want 1 (filtered CONTINUE must resume)", i, fullSyncs)
		}
		if reconnects == 0 {
			t.Fatalf("shard %d: stream never reconnected", i)
		}
	}

	// Promote: the filtered replica serves its subset — and only that.
	cf, err := kvclient.DialWithTenant(f.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if err := cf.ReplicaPromote(); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cf.Get("k149"); err != nil || !ok || len(v) == 0 {
		t.Fatalf("promoted follower lost subset entry: %q/%v/%v", v, ok, err)
	}
	fb, err := kvclient.DialWithTenant(f.Addr(), "b")
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if _, ok, _ := fb.Get("k149"); ok {
		t.Fatal("promoted filtered follower serves tenant b's entry")
	}
	if err := cf.Set("post-promote", []byte("x"), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
}

// TestReplTenantFilterMultiNameAndFlush covers a two-tenant subset plus the
// flush interactions: a keyed flush of a subset tenant replicates, a keyed
// flush of an outside tenant is skipped, and a keyless flush_all all clears
// the follower too.
func TestReplTenantFilterMultiNameAndFlush(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 4 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	a, err := kvclient.DialWithTenant(p.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := kvclient.DialWithTenant(p.Addr(), "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := kvclient.DialWithTenant(p.Addr(), "c")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	f := startReplica(t, p, Config{
		MemoryBytes:    4 << 20,
		Policy:         "camp",
		DisableIQ:      true,
		ReplicaTenants: []string{"a", "b"},
	})
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%02d", i)
		for _, cl := range []*kvclient.Client{a, b, c} {
			if err := cl.Set(k, []byte("v"), 0, 0, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitCaughtUp(t, p, f)
	assertStateEqual(t, filterState(captureState(p), []string{"a", "b"}), captureState(f))

	// A bare flush on subset tenant b replicates; one on outside tenant c is
	// skip bytes.
	if err := b.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, f)
	got := captureState(f)
	assertStateEqual(t, filterState(captureState(p), []string{"a", "b"}), got)
	for k := range got {
		if keyInTenant("b", k) {
			t.Fatalf("tenant b entry %q survived its replicated flush", k)
		}
	}

	// flush_all all is keyless and clears every namespace, the subset's too.
	if err := a.FlushAllTenants(); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, f)
	if got := captureState(f); len(got) != 0 {
		t.Fatalf("follower holds %d entries after replicated flush_all all", len(got))
	}
}

// TestReplconfTenantsGrammar pins the handshake surface: valid subsets get
// REPLOK tenants, malformed ones a CLIENT_ERROR that leaves the connection
// usable.
func TestReplconfTenantsGrammar(t *testing.T) {
	p := startServer(t, Config{
		MemoryBytes: 1 << 20,
		Policy:      "camp",
		DisableIQ:   true,
		Persist:     &PersistConfig{Dir: t.TempDir(), Fsync: persist.FsyncNo, Logf: t.Logf},
	})
	conn := rawDial(t, p)
	defer conn.Close()
	for _, tc := range []struct{ cmd, want string }{
		{"replconf tenants a,b", "REPLOK tenants"},
		{"replconf tenants default", "REPLOK tenants"},
		{"replconf tenants a,a,a", "REPLOK tenants"},
		{"replconf tenants ", "CLIENT_ERROR bad replconf command"},
		{"replconf tenants a,,b", "CLIENT_ERROR bad replconf command"},
		{"replconf tenants " + strings.Repeat("x", 65), "CLIENT_ERROR bad replconf command"},
		{"replconf shards 1", "REPLOK 1"},
	} {
		if got := sendLine(t, conn, tc.cmd); got != tc.want {
			t.Errorf("%q = %q, want %q", tc.cmd, got, tc.want)
		}
	}
}

// TestParseReplTenants pins the CSV parser: dedup, sort, and rejection of
// anything parseTenantName would refuse.
func TestParseReplTenants(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"a", []string{"a"}},
		{"b,a", []string{"a", "b"}},
		{"a,b,a", []string{"a", "b"}},
		{"default,gold", []string{"default", "gold"}},
	} {
		got, ok := parseReplTenants([]byte(tc.in))
		if !ok || !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseReplTenants(%q) = %v/%v, want %v", tc.in, got, ok, tc.want)
		}
	}
	for _, in := range []string{"", ",", "a,", ",a", "a,,b", "bad name", "a\x00b"} {
		if got, ok := parseReplTenants([]byte(in)); ok {
			t.Errorf("parseReplTenants(%q) accepted as %v", in, got)
		}
	}
}
