package kvserver

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"camp/internal/persist"
)

// Multi-tenancy: every connection belongs to exactly one tenant (the
// connection-scoped "tenant <name>" verb switches it; legacy clients stay on
// the default tenant). A non-default tenant's keys are stored internally as
// "<name>\x00<userkey>" — the NUL byte cannot appear in a client key or a
// tenant name, so the prefix is unforgeable and unambiguous. Namespacing in
// the key itself means tenant identity rides through journals, snapshots,
// FULLSYNC bootstraps and replication streams with no frame changes, and a
// pre-tenancy journal (all bare keys) loads byte-identically as the default
// tenant.
//
// Isolation is Memshare-style: each tenant may carry a reserved byte quota
// (Config.TenantReserves / campsrv -tenant-reserve / journaled KindTenant
// records), split across shards the same way capacity is. Within a shard,
// each tenant runs its own instance of the configured eviction policy and a
// store-level arbiter enforces the shared capacity: when the pool is
// contended it evicts from the tenant whose next victim carries the lowest
// marginal priority (CAMP/GDS H − L) among tenants above their reserve — so
// one tenant's churn can take the shared pool but never another tenant's
// reserve. Byte mode only; slab and buddy layouts refuse non-default
// tenants.

// defaultTenantName is the tenant every connection starts on. Its keys are
// stored bare, so single-tenant deployments are byte-identical to the
// pre-tenancy layout.
const defaultTenantName = "default"

// maxTenantNameLen bounds tenant names; a name is also a journal record key
// and a stats label, so it stays short.
const maxTenantNameLen = 64

// Tenant protocol replies (see shard.go for the rest of the reply table).
var (
	replyBadTenant  = []byte("CLIENT_ERROR bad tenant name\r\n")
	replyTenantMode = []byte("SERVER_ERROR multi-tenancy requires byte or arena mode\r\n")
	replyBadFlush   = []byte("CLIENT_ERROR bad flush_all command (want flush_all or flush_all all)\r\n")
	replyBadKey     = []byte("CLIENT_ERROR bad key\r\n")
)

// tenant is one registry entry: identity, the namespace prefix its stored
// keys carry, the server-wide reserved quota, and lifetime read counters
// (bumped with atomics on the get path, read by stats and metrics). Entries
// are created once and never removed, so hot paths hold *tenant with no
// registry lock.
type tenant struct {
	name string
	// prefix is name + NUL for non-default tenants, "" for the default.
	prefix string
	// reserve is the server-wide reserved quota in bytes; each shard
	// protects its slice of it (see store.shardReserve).
	reserve atomic.Int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	costSaved atomic.Uint64

	// quota is the optional shed-on-exceed request limit (Config.TenantQuotas
	// / campsrv -tenant-quota). Set once at construction, nil for unlimited
	// tenants, so the hot path pays one nil check. quotaShed counts requests
	// answered "SERVER_ERROR tenant over quota".
	quota     *tenantQuota
	quotaShed atomic.Uint64
}

// tenantRegistry is the server-wide tenant table. The default tenant always
// exists; others are created on first use (tenant verb, config reserve, or
// journal replay) and live for the server's lifetime.
type tenantRegistry struct {
	def *tenant

	// multi is set the first time a non-default tenant is created and never
	// cleared: per-shard stores route keys through it rather than their own
	// (rebuildable, flush-zeroed) tenant tables — see store.multiTenant.
	multi atomic.Bool

	mu     sync.RWMutex
	byName map[string]*tenant
}

func newTenantRegistry() *tenantRegistry {
	def := &tenant{name: defaultTenantName}
	return &tenantRegistry{
		def:    def,
		byName: map[string]*tenant{defaultTenantName: def},
	}
}

// ensure returns the named tenant, creating it if needed; created reports
// whether this call created it (the caller journals new tenants).
func (r *tenantRegistry) ensure(name string) (t *tenant, created bool) {
	if name == defaultTenantName {
		return r.def, false
	}
	r.mu.RLock()
	t = r.byName[name]
	r.mu.RUnlock()
	if t != nil {
		return t, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.byName[name]; t != nil {
		return t, false
	}
	t = &tenant{name: name, prefix: name + "\x00"}
	r.byName[name] = t
	r.multi.Store(true)
	return t, true
}

func (r *tenantRegistry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// list returns every tenant, default first, the rest sorted by name — the
// stable order stats and metrics emit.
func (r *tenantRegistry) list() []*tenant {
	r.mu.RLock()
	out := make([]*tenant, 0, len(r.byName))
	for _, t := range r.byName {
		if t != r.def {
			out = append(out, t)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return append([]*tenant{r.def}, out...)
}

// parseTenantName validates a wire token as a tenant name: printable ASCII
// and non-ASCII bytes, no NUL (the namespace delimiter), no control bytes,
// no spaces, bounded length. Fuzzed by FuzzParseTenantCommand.
func parseTenantName(tok []byte) (string, bool) {
	if len(tok) == 0 || len(tok) > maxTenantNameLen {
		return "", false
	}
	for _, b := range tok {
		if b <= ' ' || b == 0x7f {
			return "", false
		}
	}
	return string(tok), true
}

// tenantOf resolves a connection's tenant; nil connState tenant means the
// default.
func (s *Server) tenantOf(cs *connState) *tenant {
	if cs.tenant != nil {
		return cs.tenant
	}
	return s.tenants.def
}

// tenantOwnsKey reports whether a stored (namespaced) key belongs to t.
func tenantOwnsKey(t *tenant, key string) bool {
	if t.prefix == "" {
		return strings.IndexByte(key, 0) < 0
	}
	return strings.HasPrefix(key, t.prefix)
}

// keyInTenant is tenantOwnsKey by tenant name, for callers holding only a
// journal record's tenant key ("default" means the bare namespace).
func keyInTenant(name, key string) bool {
	if name == defaultTenantName {
		return strings.IndexByte(key, 0) < 0
	}
	return len(key) > len(name) && key[len(name)] == 0 && key[:len(name)] == name
}

// tenantInSubset reports whether name is one of the subset names (a small
// sorted slice; linear scan beats a map at replication-filter sizes).
func tenantInSubset(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// keyInAnyTenant reports whether a stored (namespaced) key belongs to any
// tenant in the subset.
func keyInAnyTenant(names []string, key string) bool {
	for _, n := range names {
		if keyInTenant(n, key) {
			return true
		}
	}
	return false
}

// tenantTotals is the cross-shard aggregate handleStatsTenants and the
// Prometheus collectors share.
type tenantTotals struct {
	used      map[string]int64
	items     map[string]int64
	evictions map[string]uint64
}

// collectTenantTotals sums per-tenant residency across shards, one shard
// lock at a time.
func (s *Server) collectTenantTotals() tenantTotals {
	tt := tenantTotals{
		used:      make(map[string]int64),
		items:     make(map[string]int64),
		evictions: make(map[string]uint64),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.store.visitTenantUsage(func(name string, u int64, n int, ev uint64) {
			tt.used[name] += u
			tt.items[name] += int64(n)
			tt.evictions[name] += ev
		})
		sh.mu.Unlock()
	}
	return tt
}

// handleTenant serves the connection-scoped tenant verb:
//
//	tenant          → TENANT <current>
//	tenant <name>   → switch this connection to <name>, creating it on
//	                  first use; "tenant default" switches back.
//
// Switching is connection state only — it is resolved here, once, into
// connState, so the per-op hot path pays no lookup and no allocation.
func (s *Server) handleTenant(args [][]byte, cs *connState) error {
	w := cs.w
	if len(args) == 0 {
		return s.replyTenant(cs, s.tenantOf(cs).name)
	}
	if len(args) != 1 {
		_, err := w.Write(replyBadTenant)
		return err
	}
	name, ok := parseTenantName(args[0])
	if !ok {
		_, err := w.Write(replyBadTenant)
		return err
	}
	if name == defaultTenantName {
		cs.tenant = nil
		return s.replyTenant(cs, name)
	}
	if s.cfg.Mode != ModeByte && s.cfg.Mode != ModeArena {
		// The slab and buddy layouts have no per-tenant policies to
		// arbitrate between; refuse rather than silently share.
		_, err := w.Write(replyTenantMode)
		return err
	}
	cs.tenant = s.ensureTenantDurable(name)
	return s.replyTenant(cs, name)
}

func (s *Server) replyTenant(cs *connState, name string) error {
	out := append(cs.out[:0], "TENANT "...)
	out = append(out, name...)
	out = append(out, '\r', '\n')
	cs.out = out
	_, err := cs.w.Write(out)
	return err
}

// ensureTenantDurable returns the named tenant, journaling its creation to
// every shard the first time so a warm restart (or a compaction snapshot)
// restores the tenant and its quota even before any of its keys land.
func (s *Server) ensureTenantDurable(name string) *tenant {
	t, created := s.tenants.ensure(name)
	if created {
		s.journalTenant(t)
	}
	return t
}

// journalTenant records t in every shard: the per-shard policy state is
// created eagerly (so arbitration and restore see the tenant immediately)
// and a KindTenant record lands in each journal.
func (s *Server) journalTenant(t *tenant) {
	op := persist.Op{Kind: persist.KindTenant, Key: t.name, Reserve: t.reserve.Load()}
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.store.ensureTenant(t.name)
		sh.journalLocked(op)
		sh.mu.Unlock()
	}
}

// handleStatsTenants serves "stats tenants": per-tenant residency (bytes,
// items, evictions summed across shards, one shard lock at a time), the
// configured reserve, and the lifetime read counters. Lines are emitted in
// registry order (default first, then by name) so tests can pin them.
func (s *Server) handleStatsTenants(cs *connState) error {
	tenants := s.tenants.list()
	tt := s.collectTenantTotals()
	out := cs.out[:0]
	name := make([]byte, 0, 64)
	stat := func(t *tenant, field string, v int64) {
		name = append(name[:0], "tenant:"...)
		name = append(name, t.name...)
		name = append(name, ':')
		name = append(name, field...)
		out = appendStatInt(out, string(name), v)
	}
	for _, t := range tenants {
		stat(t, "bytes", tt.used[t.name])
		stat(t, "reserved_bytes", t.reserve.Load())
		stat(t, "items", tt.items[t.name])
		stat(t, "hits", int64(t.hits.Load()))
		stat(t, "misses", int64(t.misses.Load()))
		stat(t, "cost_saved", int64(t.costSaved.Load()))
		stat(t, "evictions", int64(tt.evictions[t.name]))
		stat(t, "quota_shed", int64(t.quotaShed.Load()))
	}
	out = append(out, replyEnd...)
	cs.out = out
	_, err := cs.w.Write(out)
	return err
}
