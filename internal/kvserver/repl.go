// Per-shard AOF replication.
//
// The primary streams each shard's append-only journal to followers over the
// same TCP port and text protocol the cache speaks, with a minimal
// REPLCONF/SYNC-style handshake:
//
//	follower → primary:  replconf shards <n>\r\n
//	primary → follower:  REPLOK <n>\r\n
//	follower → primary:  replconf tenants <a,b,...>\r\n     (optional)
//	primary → follower:  REPLOK tenants\r\n
//	follower → primary:  sync <shard> <gen> <offset> <runid>\r\n
//	primary → follower:  CONTINUE <gen> <offset> <runid>\r\n
//	                  or FULLSYNC <snapgen> <snapbytes> <runid>\r\n +
//	                     <snapbytes> of raw snapshot file, then the binary
//	                     frame stream
//
// <runid> scopes a position to one journal run (one persist.Manager Open):
// a primary restart may have truncated a torn tail, making old byte offsets
// point into different data, so a position carrying a stale run ID is
// answered with a full resync rather than silently diverging.
//
// "replconf tenants" (Config.ReplicaTenants / campsrv -replica-tenants)
// scopes every subsequent sync on the connection to a tenant subset: the
// primary streams only records whose NUL-delimited key prefix names a subset
// tenant, coalescing the byte lengths of everything it withholds into skip
// frames — so the follower's offsets keep mirroring the primary's file
// positions and disconnect/CONTINUE resume works unchanged. A filtered full
// resync ships a synthesized snapshot holding just the subset's entries and
// their KindTenant/KindScale records. Unfiltered feeds never see a skip
// frame, keeping the stream byte-compatible with pre-filter followers.
//
// "sync <shard> 0 0 0" always requests a full resync. After the reply the
// connection becomes a one-way binary frame feed (internal/persist's
// StreamWriter/StreamReader): journal records byte-identical to the
// primary's segment files, generation switches when compaction retires a
// segment, and pings while the journal is idle. Because the follower applies
// the records through its own configured eviction policy — the same way
// local recovery replays them — CAMP/GDS costs and queue placement
// replicate, not just bytes, and a promoted follower serves with a warm,
// cost-faithful cache.
//
// One replication goroutine runs per shard on the follower (the journals are
// per-shard, so the streams are parallel by construction), each tracking its
// own (generation, offset) position for cheap CONTINUE reconnects. Promotion
// is explicit: "replica promote" stops the streams and lifts the read-only
// gate.
package kvserver

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"camp/internal/persist"
	"camp/internal/proto"
)

// feedStat tracks one live sync feed's stream position for the
// replication-lag gauges. gen and off are atomics: the feed goroutine
// stores them per journal event while scrapes load them.
type feedStat struct {
	shard int
	seq   uint64
	label string // seq preformatted for the Prometheus feed label
	gen   atomic.Uint64
	off   atomic.Int64
}

// registerFeed adds a live feed for shard. The sequence number is unique
// for the server's lifetime, so a reconnecting follower appears as a new
// series instead of silently aliasing the old one.
func (s *Server) registerFeed(shard int) *feedStat {
	s.feedMu.Lock()
	s.feedSeq++
	f := &feedStat{shard: shard, seq: s.feedSeq, label: strconv.FormatUint(s.feedSeq, 10)}
	s.feeds[f] = struct{}{}
	s.feedMu.Unlock()
	return f
}

func (s *Server) unregisterFeed(f *feedStat) {
	s.feedMu.Lock()
	delete(s.feeds, f)
	s.feedMu.Unlock()
}

// eachFeed visits the live feeds in registration order (stable scrape
// output) without holding feedMu during the callbacks.
func (s *Server) eachFeed(fn func(*feedStat)) {
	s.feedMu.Lock()
	feeds := make([]*feedStat, 0, len(s.feeds))
	for f := range s.feeds {
		feeds = append(feeds, f)
	}
	s.feedMu.Unlock()
	sort.Slice(feeds, func(i, j int) bool { return feeds[i].seq < feeds[j].seq })
	for _, f := range feeds {
		fn(f)
	}
}

// feedLagBytes estimates how far a feed trails its shard's journal head.
// Within the head generation it is exact; a feed still draining an older
// generation reports the whole head segment (a lower bound — the retired
// segments' remainders aren't tracked), which is the honest signal that it
// is at least a compaction behind.
func (s *Server) feedLagBytes(f *feedStat) int64 {
	mgr := s.shards[f.shard].mgr
	if mgr == nil {
		return 0
	}
	info := mgr.Info()
	if f.gen.Load() == info.Generation {
		if lag := info.AOFSize - f.off.Load(); lag > 0 {
			return lag
		}
		return 0
	}
	return info.AOFSize
}

const (
	// replTailPoll is how long the primary's feed waits for new journal
	// records before emitting a keepalive ping; the follower's read timeout
	// is a few multiples of it.
	replTailPoll = time.Second
	// replWriteTimeout is the primary feed's idle write timeout: each
	// underlying socket write refreshes it (see idleConn), so a transfer of
	// any size stays alive while bytes move, and a wedged follower stalls
	// the feed (and pins journal segments) for at most this long.
	replWriteTimeout = 30 * time.Second
	// replDialTimeout bounds the follower's dial + handshake.
	replDialTimeout = 5 * time.Second
	// replReadTimeout is the follower's idle read timeout, refreshed per
	// socket read; the primary pings every replTailPoll, so silence this
	// long means a dead peer — while an arbitrarily large record or
	// snapshot keeps streaming as long as chunks keep arriving.
	replReadTimeout = 5 * time.Second
	// replBackoffMin/Max bound the reconnect backoff.
	replBackoffMin = 50 * time.Millisecond
	replBackoffMax = 2 * time.Second
	// replStaleMax is how many consecutive post-handshake stream failures
	// without progress a follower tolerates before abandoning its position
	// and requesting a full resync — self-healing for a position that parses
	// but lands mid-record.
	replStaleMax = 3
)

// idleConn turns absolute socket deadlines into idle timeouts: every Read
// and Write refreshes the matching deadline first, so what bounds a
// replication transfer is progress, not total size — a dead peer still
// fails within the timeout, but a multi-gigabyte snapshot over a slow link
// streams for as long as bytes keep moving. A zero timeout leaves that
// direction unbounded.
type idleConn struct {
	net.Conn
	readTimeout  time.Duration
	writeTimeout time.Duration
}

func (c *idleConn) Read(p []byte) (int, error) {
	if c.readTimeout > 0 {
		if err := c.Conn.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

func (c *idleConn) Write(p []byte) (int, error) {
	if c.writeTimeout > 0 {
		if err := c.Conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}

// ---------------------------------------------------------------------------
// Primary side: replconf / sync handlers.

// handleReplconf validates a follower's topology announcement. Replication
// streams are per-shard, so the shard counts must match exactly; and the
// feed is the journal, so the primary must be journaling at all. The
// optional "replconf tenants <a,b,...>" form scopes every subsequent sync on
// this connection to a tenant subset (see the package comment).
func (s *Server) handleReplconf(args [][]byte, cs *connState) error {
	if len(args) == 2 && string(args[0]) == "tenants" {
		names, ok := parseReplTenants(args[1])
		if !ok {
			_, err := cs.w.Write(replyBadReplconf)
			return err
		}
		cs.replTenants = names
		_, err := cs.w.Write(replyReplokTenants)
		return err
	}
	if len(args) != 2 || string(args[0]) != "shards" {
		_, err := cs.w.Write(replyBadReplconf)
		return err
	}
	n, ok := proto.ParseUint(args[1])
	if !ok {
		_, err := cs.w.Write(replyBadReplconf)
		return err
	}
	if s.cfg.Persist == nil || s.cfg.Persist.DisableAOF {
		_, err := cs.w.Write(replyNoJournal)
		return err
	}
	if int(n) != len(s.shards) {
		cs.out = appendClientError(cs.out[:0], "shard count mismatch: primary has",
			strconv.Itoa(len(s.shards)))
		_, err := cs.w.Write(cs.out)
		return err
	}
	out := append(cs.out[:0], "REPLOK "...)
	out = strconv.AppendInt(out, int64(len(s.shards)), 10)
	out = append(out, '\r', '\n')
	cs.out = out
	_, err := cs.w.Write(out)
	return err
}

// parseReplTenants parses the "replconf tenants" CSV: comma-separated tenant
// names, each valid under parseTenantName ("default" names the bare
// namespace), returned deduped and sorted.
func parseReplTenants(tok []byte) ([]string, bool) {
	if len(tok) == 0 {
		return nil, false
	}
	var names []string
	for len(tok) > 0 {
		part := tok
		if i := bytes.IndexByte(tok, ','); i >= 0 {
			part, tok = tok[:i], tok[i+1:]
			if len(tok) == 0 {
				return nil, false // trailing comma: an empty name, rejected like any other
			}
		} else {
			tok = nil
		}
		name, ok := parseTenantName(part)
		if !ok {
			return nil, false
		}
		names = append(names, name)
	}
	sort.Strings(names)
	out := names[:0]
	for i, name := range names {
		if i > 0 && name == names[i-1] {
			continue
		}
		out = append(out, name)
	}
	return out, true
}

// feedFilter scopes one sync feed to a tenant subset. Records outside the
// subset are withheld; their byte lengths coalesce into pending, flushed as
// one skip frame before the next kept record (and at idle), so the
// follower's offset keeps mirroring the primary's file position and a later
// CONTINUE resumes at a real record boundary.
type feedFilter struct {
	names   []string
	pending int64
}

// keeps decides one journal record's fate on a filtered feed.
func (f *feedFilter) keeps(op persist.Op) bool {
	switch op.Kind {
	case persist.KindPosition:
		// Someone else's replication bookkeeping (a promoted ex-follower's
		// journal); never meaningful downstream.
		return false
	case persist.KindScale:
		// The adaptive scale only ever widens, so it is safe — and needed —
		// in every subset (mirrors restore's KindScale handling).
		return true
	case persist.KindFlush:
		// Keyless flushes clear every namespace, the subset's included.
		return op.Key == "" || tenantInSubset(f.names, op.Key)
	case persist.KindTenant:
		return tenantInSubset(f.names, op.Key)
	default:
		return keyInAnyTenant(f.names, op.Key)
	}
}

// parseSyncArgs parses "sync <shard> <gen> <offset> <runid>" arguments. gen
// 0 with offset 0 requests a full resync; any other malformed shape
// (negative offset, bad integers, shard out of range) is rejected.
func parseSyncArgs(args [][]byte, shards int) (idx int, gen uint64, off int64, runID uint64, ok bool) {
	if len(args) != 4 {
		return 0, 0, 0, 0, false
	}
	i, okIdx := proto.ParseUint(args[0])
	g, okGen := proto.ParseUint(args[1])
	o, okOff := proto.ParseInt(args[2])
	r, okRun := proto.ParseUint(args[3])
	if !okIdx || !okGen || !okOff || !okRun || i >= uint64(shards) || o < 0 {
		return 0, 0, 0, 0, false
	}
	if g == 0 && o != 0 {
		return 0, 0, 0, 0, false
	}
	return int(i), g, o, r, true
}

// handleSync turns the connection into a replication feed for one shard. It
// never returns to the command loop: the stream runs until the follower
// disconnects, the server closes, or the journal errors, and the connection
// closes with it.
func (s *Server) handleSync(args [][]byte, cs *connState) error {
	if s.readOnly.Load() {
		// Chained replication is not supported: a replica's journal lags its
		// own primary, so serving syncs from it would fan out staleness.
		cs.w.Write(replyNotPrimary)
		return errCloseConn
	}
	if s.cfg.Persist == nil || s.cfg.Persist.DisableAOF {
		cs.w.Write(replyNoJournal)
		return errCloseConn
	}
	idx, gen, off, runID, ok := parseSyncArgs(args, len(s.shards))
	if !ok {
		cs.w.Write(replyBadSync)
		return errCloseConn
	}
	mgr := s.shards[idx].mgr
	// All feed writes — reply line, snapshot bytes, frames — go through a
	// deadline-refreshing wrapper: progress, not total transfer size, is
	// what keeps the connection alive, and a wedged follower can stall the
	// feed (and pin journal segments) for at most replWriteTimeout.
	w := cs.w
	if cs.conn != nil {
		w = bufio.NewWriterSize(&idleConn{Conn: cs.conn, writeTimeout: replWriteTimeout}, connBufSize)
	}
	var (
		tr       *persist.TailReader
		announce bool
		filter   *feedFilter
	)
	if len(cs.replTenants) > 0 {
		filter = &feedFilter{names: cs.replTenants}
	}
	// A position from another journal run is meaningless here (a restart may
	// have truncated the tail those offsets were measured against): force a
	// full resync instead of continuing into silent divergence.
	if gen > 0 && runID == mgr.RunID() {
		t, err := mgr.TailFrom(gen, off)
		switch {
		case err == nil:
			tr = t
			out := append(cs.out[:0], "CONTINUE "...)
			out = strconv.AppendUint(out, gen, 10)
			out = append(out, ' ')
			out = strconv.AppendInt(out, off, 10)
			out = append(out, ' ')
			out = strconv.AppendUint(out, mgr.RunID(), 10)
			out = append(out, '\r', '\n')
			cs.out = out
			if _, werr := w.Write(out); werr != nil {
				t.Close()
				return werr
			}
		case !errors.Is(err, persist.ErrStalePosition):
			s.logf("kvserver: sync shard %d: %v", idx, err)
			cs.w.Write(replySyncFailed)
			return errCloseConn
		}
		// A stale position falls through to a full resync, exactly as if the
		// follower had asked for one.
	}
	if tr == nil && filter != nil {
		// A filtered full resync ships a synthesized snapshot of just the
		// subset's live state instead of the on-disk snapshot file (which
		// holds every tenant's data).
		snap, snapGen, t, err := s.fullSyncFiltered(idx, filter.names)
		if err != nil {
			s.logf("kvserver: filtered full sync shard %d: %v", idx, err)
			cs.w.Write(replySyncFailed)
			return errCloseConn
		}
		out := append(cs.out[:0], "FULLSYNC "...)
		out = strconv.AppendUint(out, snapGen, 10)
		out = append(out, ' ')
		out = strconv.AppendInt(out, int64(len(snap)), 10)
		out = append(out, ' ')
		out = strconv.AppendUint(out, mgr.RunID(), 10)
		out = append(out, '\r', '\n')
		cs.out = out
		_, werr := w.Write(out)
		if werr == nil {
			_, werr = w.Write(snap)
		}
		if werr != nil {
			t.Close()
			return werr
		}
		tr = t
		announce = true
		s.counters.replFullSyncsServed.Add(1)
	}
	if tr == nil {
		fs, err := mgr.FullSync()
		if err != nil {
			s.logf("kvserver: full sync shard %d: %v", idx, err)
			cs.w.Write(replySyncFailed)
			return errCloseConn
		}
		out := append(cs.out[:0], "FULLSYNC "...)
		out = strconv.AppendUint(out, fs.SnapGen, 10)
		out = append(out, ' ')
		out = strconv.AppendInt(out, fs.SnapSize, 10)
		out = append(out, ' ')
		out = strconv.AppendUint(out, mgr.RunID(), 10)
		out = append(out, '\r', '\n')
		cs.out = out
		_, werr := w.Write(out)
		if werr == nil && fs.Snapshot != nil {
			_, werr = io.Copy(w, fs.Snapshot)
		}
		if werr != nil {
			fs.Close()
			return werr
		}
		if fs.Snapshot != nil {
			fs.Snapshot.Close()
		}
		tr = fs.Tail
		announce = true // the follower learns its start generation from the first frame
		s.counters.replFullSyncsServed.Add(1)
	}
	defer tr.Close()
	s.counters.replSyncsServed.Add(1)
	s.replFeeds.Add(1)
	defer s.replFeeds.Add(-1)
	feed := s.registerFeed(idx)
	defer s.unregisterFeed(feed)
	err := s.streamJournal(tr, w, announce, feed, filter)
	if err != nil && !errors.Is(err, persist.ErrClosed) {
		s.logf("kvserver: sync feed shard %d ended: %v", idx, err)
	}
	return errCloseConn
}

// fullSyncFiltered builds a filtered full resync: a synthesized in-memory
// snapshot holding only the subset's live ops (their KindTenant records and
// every KindScale record included) plus a journal tail opened at the exact
// head position the snapshot describes. Snapshot and tail are taken under one
// shard-lock hold, so no append or generation switch can slip between them —
// the pair is as atomic as the on-disk FullSync's snapshot+tail. The caller
// must announce the tail's generation and pre-load the feed filter with the
// tail's lead-in offset (streamJournal does both).
func (s *Server) fullSyncFiltered(idx int, names []string) (snap []byte, snapGen uint64, tr *persist.TailReader, err error) {
	sh := s.shards[idx]
	sh.mu.Lock()
	info := sh.mgr.Info()
	tr, err = sh.mgr.TailFrom(info.Generation, info.AOFSize)
	var ops []persist.Op
	if err == nil {
		ops = sh.store.collectOpsFiltered(names)
	}
	sh.mu.Unlock()
	if err != nil {
		return nil, 0, nil, err
	}
	var buf bytes.Buffer
	sw, err := persist.NewSnapshotWriter(&buf)
	if err == nil {
		for _, op := range ops {
			if err = sw.Write(op); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = sw.Flush()
	}
	if err != nil {
		tr.Close()
		return nil, 0, nil, err
	}
	// The buffer always holds at least the snapshot header, so its size is
	// nonzero and pairs with the nonzero generation the way parseSyncReply
	// requires.
	return buf.Bytes(), info.Generation, tr, nil
}

// streamJournal pumps tail events into the connection as stream frames,
// flushing whenever the journal has nothing ready and pinging while it stays
// idle. On a filtered feed, withheld records coalesce into filter.pending and
// go out as one skip frame before the next kept record — and before any idle
// flush or ping, so a quiet filtered feed still converges to the primary's
// exact offset. Returns when the write side fails (follower gone), the
// manager closes, or the journal is corrupt.
func (s *Server) streamJournal(tr *persist.TailReader, w *bufio.Writer, announce bool, feed *feedStat, filter *feedFilter) error {
	sw := persist.NewStreamWriter(w)
	if announce {
		if err := sw.GenSwitch(tr.Gen()); err != nil {
			return err
		}
		if filter != nil && tr.Off() > persist.SegmentHeaderLen {
			// A filtered full resync opens the tail at the journal head, not
			// the segment start; the lead-in bytes the follower will never see
			// become its first skip so its offset lands on the head.
			filter.pending = tr.Off() - persist.SegmentHeaderLen
		}
	}
	flushSkip := func() error {
		if filter == nil || filter.pending == 0 {
			return nil
		}
		delta := filter.pending
		filter.pending = 0
		return sw.Skip(delta)
	}
	feed.gen.Store(tr.Gen())
	feed.off.Store(tr.Off())
	for {
		ev, err := tr.Next(0)
		if errors.Is(err, persist.ErrTailTimeout) {
			if serr := flushSkip(); serr != nil {
				return serr
			}
			if ferr := sw.Flush(); ferr != nil {
				return ferr
			}
			ev, err = tr.Next(replTailPoll)
			if errors.Is(err, persist.ErrTailTimeout) {
				if perr := sw.Ping(); perr != nil {
					return perr
				}
				if ferr := sw.Flush(); ferr != nil {
					return ferr
				}
				continue
			}
		}
		if err != nil {
			return err
		}
		switch {
		case ev.Record == nil:
			// A generation switch resets offsets to the new segment's start;
			// pending skip bytes belonged to the retired generation.
			if filter != nil {
				filter.pending = 0
			}
			err = sw.GenSwitch(ev.Gen)
		case filter != nil:
			op, _, derr := persist.DecodeRecord(ev.Record)
			if derr != nil {
				return derr
			}
			if filter.keeps(op) {
				if err = flushSkip(); err == nil {
					err = sw.Record(ev.Record)
				}
			} else {
				filter.pending += int64(len(ev.Record))
			}
		default:
			err = sw.Record(ev.Record)
		}
		if err != nil {
			return err
		}
		// The TailReader already advanced past the event; publish the new
		// position for the lag gauges (two atomic stores, same goroutine).
		feed.gen.Store(tr.Gen())
		feed.off.Store(tr.Off())
	}
}

// handleReplica serves the replica admin commands: "replica promote" and
// "replica status".
func (s *Server) handleReplica(args [][]byte, cs *connState) error {
	if len(args) != 1 {
		_, err := cs.w.Write(replyBadReplica)
		return err
	}
	switch string(args[0]) {
	case "promote":
		if err := s.Promote(); err != nil {
			cs.out = appendClientError(cs.out[:0], err.Error())
			_, werr := cs.w.Write(cs.out)
			return werr
		}
		_, err := cs.w.Write(replyOK)
		return err
	case "status":
		out := cs.out[:0]
		role := "primary"
		if s.readOnly.Load() {
			role = "replica"
		}
		out = appendStatStr(out, "role", role)
		if s.repl != nil {
			out = appendStatStr(out, "primary_addr", s.repl.primary)
			for _, sr := range s.repl.reps {
				out = sr.appendStatus(out)
			}
		}
		out = append(out, replyEnd...)
		cs.out = out
		_, err := cs.w.Write(out)
		return err
	default:
		_, err := cs.w.Write(replyBadReplica)
		return err
	}
}

// ---------------------------------------------------------------------------
// Follower side.

// Promote stops replication and lifts the read-only gate, making this server
// the new primary. Applied ops are already in the local journal, so the
// promoted server is durable from the first write. It is an error on a
// server that is not (or no longer) a replica.
func (s *Server) Promote() error {
	if s.repl == nil {
		return errors.New("not a replica")
	}
	s.repl.stopAll()
	if !s.readOnly.CompareAndSwap(true, false) {
		return errors.New("already promoted")
	}
	// The positions pointed into the old primary's journal; a primary has
	// none. Clearing them keeps future compaction snapshots free of stale
	// position records (journaled ones are harmless: if this server ever
	// re-follows, the dead run ID forces the full resync it needs anyway).
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.replPos = persist.Position{}
		sh.mu.Unlock()
	}
	s.logf("kvserver: promoted to primary (was replicating %s)", s.repl.primary)
	return nil
}

// replicaSession owns the follower's per-shard replication goroutines.
type replicaSession struct {
	s       *Server
	primary string
	reps    []*shardReplica

	mu      sync.Mutex
	stopped bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

func newReplicaSession(s *Server, primary string) *replicaSession {
	rs := &replicaSession{s: s, primary: primary, stop: make(chan struct{})}
	for i, sh := range s.shards {
		sr := &shardReplica{
			rs: rs, idx: i, sh: sh,
			rnd: rand.New(rand.NewSource(time.Now().UnixNano() + int64(i))),
		}
		// Resume from the position recovery found in the local journal (a
		// restart with a current journal then reconnects with CONTINUE
		// instead of re-bootstrapping). A position scoped to a dead primary
		// run is harmless: the primary answers it with FULLSYNC.
		if pos := sh.replPos; pos.RunID != 0 {
			sr.gen, sr.off, sr.runID = pos.Gen, pos.Off, pos.RunID
		}
		rs.reps = append(rs.reps, sr)
	}
	return rs
}

// start launches one replication goroutine per shard.
func (rs *replicaSession) start() {
	for _, sr := range rs.reps {
		rs.wg.Add(1)
		go func(sr *shardReplica) {
			defer rs.wg.Done()
			sr.run()
		}(sr)
	}
}

// stopAll terminates every stream and waits for the goroutines. Idempotent.
func (rs *replicaSession) stopAll() {
	rs.mu.Lock()
	if rs.stopped {
		rs.mu.Unlock()
		rs.wg.Wait()
		return
	}
	rs.stopped = true
	close(rs.stop)
	for _, sr := range rs.reps {
		sr.closeConn()
	}
	rs.mu.Unlock()
	rs.wg.Wait()
}

func (rs *replicaSession) isStopped() bool {
	select {
	case <-rs.stop:
		return true
	default:
		return false
	}
}

// shardReplica replicates one shard: it tracks the primary-side (generation,
// offset) position, reconnecting with CONTINUE after a drop and falling back
// to a full resync when the position goes stale.
type shardReplica struct {
	rs  *replicaSession
	idx int
	sh  *shard

	mu         sync.Mutex
	conn       net.Conn
	connected  bool
	gen        uint64
	off        int64
	runID      uint64 // journal-run identity the position is scoped to
	fullSyncs  uint64
	reconnects uint64
	applied    uint64

	// staleStreak, batch and rnd are only touched by the run goroutine;
	// batch is the scratch for the op+position journal writes, rnd drives
	// the reconnect-backoff jitter.
	staleStreak int
	batch       []persist.Op
	rnd         *rand.Rand

	// lastFrame is the wall clock (unix nanos) of the newest frame — record,
	// generation switch or ping — this stream delivered; 0 before the first
	// connect. Atomic so the lag gauge reads it without the state mutex.
	lastFrame atomic.Int64
}

func (sr *shardReplica) pos() (gen uint64, off int64, runID uint64) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.gen, sr.off, sr.runID
}

func (sr *shardReplica) setPos(gen uint64, off int64) {
	sr.mu.Lock()
	sr.gen, sr.off = gen, off
	sr.mu.Unlock()
}

// commitSync installs a handshake result: the position and the run ID that
// scopes it, atomically.
func (sr *shardReplica) commitSync(gen uint64, off int64, runID uint64) {
	sr.mu.Lock()
	sr.gen, sr.off, sr.runID = gen, off, runID
	sr.mu.Unlock()
}

func (sr *shardReplica) setConn(c net.Conn) bool {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.rs.isStopped() {
		return false
	}
	sr.conn = c
	return true
}

func (sr *shardReplica) closeConn() {
	sr.mu.Lock()
	if sr.conn != nil {
		sr.conn.Close()
	}
	sr.connected = false
	sr.mu.Unlock()
}

func (sr *shardReplica) setConnected(v bool) {
	sr.mu.Lock()
	sr.connected = v
	sr.mu.Unlock()
}

// appendStatus renders this shard's replication state as STAT lines.
func (sr *shardReplica) appendStatus(out []byte) []byte {
	sh := sr.sh
	sh.mu.Lock()
	durable := sh.replPos
	sh.mu.Unlock()
	sr.mu.Lock()
	defer sr.mu.Unlock()
	prefix := "shard" + strconv.Itoa(sr.idx) + "_"
	conn := uint64(0)
	if sr.connected {
		conn = 1
	}
	out = appendStat(out, prefix+"connected", conn)
	out = appendStat(out, prefix+"gen", sr.gen)
	out = appendStatInt(out, prefix+"offset", sr.off)
	out = appendStat(out, prefix+"run_id", sr.runID)
	// The position a restart would resume from (journaled atomically with
	// the applied ops); durable=0 means none is persisted and a restart
	// would full-resync.
	dur := uint64(0)
	if durable.RunID != 0 {
		dur = 1
	}
	out = appendStat(out, prefix+"durable", dur)
	out = appendStat(out, prefix+"durable_gen", durable.Gen)
	out = appendStatInt(out, prefix+"durable_offset", durable.Off)
	out = appendStat(out, prefix+"full_syncs", sr.fullSyncs)
	out = appendStat(out, prefix+"reconnects", sr.reconnects)
	out = appendStat(out, prefix+"applied_ops", sr.applied)
	// Cache-only operation after a local persistence failure: applied ops
	// are not journaled and the durable position is frozen until the disk
	// heals.
	degraded := uint64(0)
	if sh.degraded.Load() {
		degraded = 1
	}
	out = appendStat(out, prefix+"persist_degraded", degraded)
	// Staleness: time since the stream last delivered a frame or ping
	// (the primary pings every second while idle, so a healthy stream
	// stays near zero). -1 before the first successful handshake.
	ageMS := int64(-1)
	if last := sr.lastFrame.Load(); last != 0 {
		ageMS = time.Since(time.Unix(0, last)).Milliseconds()
	}
	out = appendStatInt(out, prefix+"last_frame_age_ms", ageMS)
	return out
}

// run is the shard's replication loop: connect, sync, apply until the stream
// drops, back off, repeat — until the session stops (server close or
// promotion).
func (sr *shardReplica) run() {
	backoff := replBackoffMin
	for {
		if sr.rs.isStopped() {
			return
		}
		progressed, err := sr.syncOnce()
		sr.setConnected(false)
		if sr.rs.isStopped() {
			return
		}
		if progressed {
			backoff = replBackoffMin
		}
		if err != nil {
			sr.rs.s.logf("kvserver: replica shard %d: %v", sr.idx, err)
		}
		sr.mu.Lock()
		sr.reconnects++
		sr.mu.Unlock()
		// Jittered: after a primary restart every shard stream drops at the
		// same instant, and un-jittered backoff would have all of them (on
		// every follower) redial in lockstep forever.
		t := time.NewTimer(jitter(sr.rnd, backoff))
		select {
		case <-sr.rs.stop:
			t.Stop()
			return
		case <-t.C:
		}
		if backoff *= 2; backoff > replBackoffMax {
			backoff = replBackoffMax
		}
	}
}

// syncOnce runs one connection's lifetime: handshake, resync, then the frame
// apply loop. progressed reports whether the handshake completed and at
// least one frame applied (resetting backoff and the stale streak).
func (sr *shardReplica) syncOnce() (progressed bool, err error) {
	s := sr.rs.s
	conn, err := net.DialTimeout("tcp", sr.rs.primary, replDialTimeout)
	if err != nil {
		return false, err
	}
	if !sr.setConn(conn) {
		conn.Close()
		return false, nil
	}
	defer sr.closeConn()
	// Reads refresh their deadline per socket read: the primary pings every
	// replTailPoll while idle, so silence means a dead peer, while a large
	// record or snapshot streams for as long as chunks keep arriving.
	bw := bufio.NewWriterSize(conn, connBufSize)
	br := bufio.NewReaderSize(&idleConn{Conn: conn, readTimeout: replReadTimeout}, connBufSize)
	lr := proto.NewLineReader(br)

	conn.SetWriteDeadline(time.Now().Add(replDialTimeout))
	fmt.Fprintf(bw, "replconf shards %d\r\n", len(s.shards))
	if err := bw.Flush(); err != nil {
		return false, err
	}
	line, err := lr.ReadLine()
	if err != nil {
		return false, err
	}
	if want := fmt.Sprintf("REPLOK %d", len(s.shards)); string(line) != want {
		return false, fmt.Errorf("handshake rejected: %q", line)
	}
	if rt := s.cfg.ReplicaTenants; len(rt) > 0 {
		fmt.Fprintf(bw, "replconf tenants %s\r\n", strings.Join(rt, ","))
		if err := bw.Flush(); err != nil {
			return false, err
		}
		line, err = lr.ReadLine()
		if err != nil {
			return false, err
		}
		if string(line) != "REPLOK tenants" {
			return false, fmt.Errorf("tenant filter rejected: %q", line)
		}
	}

	gen, off, runID := sr.pos()
	if sr.staleStreak >= replStaleMax {
		// The position keeps failing to stream; abandon it.
		gen, off = 0, 0
	}
	fmt.Fprintf(bw, "sync %d %d %d %d\r\n", sr.idx, gen, off, runID)
	if err := bw.Flush(); err != nil {
		return false, err
	}
	conn.SetWriteDeadline(time.Time{})
	line, err = lr.ReadLine()
	if err != nil {
		return false, err
	}
	reply, err := parseSyncReply(line)
	if err != nil {
		return false, err
	}
	// The run ID commits together with the position it scopes — never
	// before. Committing it early would let a failed bootstrap leave the
	// OLD (gen, off) paired with the NEW run's ID, and the next reconnect
	// could then CONTINUE at offsets measured against a journal this run
	// may have truncated differently: exactly the divergence the run ID
	// exists to prevent.
	switch reply.kind {
	case syncContinue:
		sr.commitSync(reply.gen, reply.off, reply.runID)
		// Re-journal the handshake-confirmed position so the journal's
		// last position record is authoritative even when the recovered
		// one came from a truncated tail.
		sr.persistPos(persist.Position{RunID: reply.runID, Gen: reply.gen, Off: reply.off})
	case syncFull:
		if err := sr.bootstrap(br, reply.snapSize); err != nil {
			return false, fmt.Errorf("bootstrap: %w", err)
		}
		// The start generation arrives as the stream's first frame.
		sr.commitSync(0, 0, reply.runID)
		sr.mu.Lock()
		sr.fullSyncs++
		sr.mu.Unlock()
		sr.staleStreak = 0
	}
	sr.setConnected(true)
	// The handshake reply counts as liveness: the lag clock starts now, not
	// at the first frame.
	sr.lastFrame.Store(time.Now().UnixNano())

	// Registered only now — after the handshake succeeded — so dial and
	// handshake failures (a briefly unreachable primary) never count toward
	// the streak: it measures positions that were accepted but failed to
	// stream, nothing else.
	frames := uint64(0)
	defer func() {
		if frames > 0 {
			sr.staleStreak = 0
		} else if err != nil {
			sr.staleStreak++
		}
	}()
	stream := persist.NewStreamReader(br)
	for {
		frame, err := stream.Next()
		if err != nil {
			return frames > 0, err
		}
		sr.lastFrame.Store(time.Now().UnixNano())
		switch frame.Kind {
		case persist.FrameRecord:
			gen, off, _ := sr.pos()
			if gen == 0 {
				return frames > 0, errors.New("record frame before generation announcement")
			}
			// The position after this op, journaled atomically with it:
			// whatever prefix of the stream a crash preserves, the last
			// position record in the local journal names exactly the ops
			// recovery will replay, so the restart CONTINUEs from there.
			sr.apply(frame.Op, persist.Position{RunID: reply.runID, Gen: gen, Off: off + frame.Bytes})
			sr.mu.Lock()
			sr.off += frame.Bytes
			sr.applied++
			sr.mu.Unlock()
			frames++
		case persist.FrameSkip:
			// Bytes the primary withheld from a filtered feed: advance and
			// persist the position exactly as if the records had streamed, so
			// disconnect/CONTINUE resumes at the primary's real offsets.
			gen, off, _ := sr.pos()
			if gen == 0 {
				return frames > 0, errors.New("skip frame before generation announcement")
			}
			off += frame.Bytes
			sr.setPos(gen, off)
			sr.persistPos(persist.Position{RunID: reply.runID, Gen: gen, Off: off})
			frames++
		case persist.FrameGen:
			sr.setPos(frame.Gen, persist.SegmentHeaderLen)
			sr.persistPos(persist.Position{RunID: reply.runID, Gen: frame.Gen, Off: persist.SegmentHeaderLen})
			frames++
		case persist.FramePing:
			// Liveness — and progress for the stale-position streak: pings
			// mean the handshake accepted the position and the stream is
			// healthy but idle. A truly mid-record position fails on the
			// primary's first record read, before any ping, so counting
			// pings never masks real staleness — while NOT counting them
			// would let idle-period disconnects (a rolling primary restart)
			// pile up the streak and force a pointless full resync.
			frames++
		}
	}
}

// bootstrap applies a streamed full-sync snapshot into a staged store and
// swaps it in atomically under the shard lock. Staging is what makes a torn
// bootstrap safe: a disconnect — or a promotion racing the resync — mid-
// snapshot leaves the shard's previous state untouched instead of flushed
// and half-repopulated. Reads keep serving the old state until the swap; the
// local journal records the flush and the staged entries only after the swap
// commits, so the replica's own recovery can never see the torn middle
// either.
func (sr *shardReplica) bootstrap(r io.Reader, size int64) error {
	sh := sr.sh
	sh.mu.Lock()
	cfg := sh.store.cfg
	sh.mu.Unlock()
	staged, err := newStore(cfg)
	if err != nil {
		return err
	}
	if size > 0 {
		if _, err := persist.ReadSnapshot(io.LimitReader(r, size), staged.restore); err != nil {
			return err
		}
	}
	// One flush record plus every staged entry, journaled as a single batch:
	// one write pass and at most one fsync, instead of a per-entry append
	// (each an fsync under FsyncAlways) with the shard lock held.
	batch := make([]persist.Op, 0, len(staged.items)+1)
	batch = append(batch, persist.Op{Kind: persist.KindFlush})
	batch = append(batch, staged.collectOps()...)
	sh.mu.Lock()
	// Lifetime counters survive the swap, exactly as store.flush keeps them
	// across flush_all.
	old := sh.store
	staged.evicted += old.evicted
	staged.expiredReclaimed += old.expiredReclaimed
	staged.evictedBase += old.evictedBase
	staged.rejectedBase += old.rejectedBase
	oldEv, oldRej := old.policyLifetime()
	staged.evictedBase += oldEv
	staged.rejectedBase += oldRej
	sh.store = staged
	sh.missedAt = make(map[string]time.Time)
	// The old position described the old store; the bootstrap's stream
	// position is unknown until the first generation frame. The flush
	// record leading the batch resets recovery's position tracking the same
	// way, so a crash here resyncs instead of resuming somewhere stale.
	sh.replPos = persist.Position{}
	if sh.journalBatchLocked(batch) {
		// The flush+entries batch rewrote the journaled state wholesale,
		// so any earlier append gap no longer matters: positions are
		// trustworthy again.
		sh.replDiverged = false
	}
	sh.mu.Unlock()
	return nil
}

// apply installs one replicated op: through the store's policy (so costs and
// queue placement replicate) and into the local journal (so the replica's own
// restarts and its post-promotion durability work unchanged) — together with
// the position record that makes the op's stream position durable. Op and
// position go down in one AppendBatch, so the journal can never hold the op
// without the position that accounts for it (a torn tail drops them
// together, or drops only the position — either way the recovered position
// names ops the journal actually holds).
func (sr *shardReplica) apply(op persist.Op, pos persist.Position) {
	sh := sr.sh
	batch := sr.batch[:0]
	if op.Kind != persist.KindPosition {
		// A position record arriving *in* the stream (a promoted
		// ex-follower's journal) is bookkeeping from someone else's
		// replication; only our own position belongs in our journal.
		batch = append(batch, op)
	}
	sh.mu.Lock()
	sh.store.restore(op)
	switch {
	case sh.canPersistPosLocked():
		batch = append(batch, persist.Op{Kind: persist.KindPosition, Pos: pos})
		if sh.journalBatchLocked(batch) {
			sh.replPos = pos
		} else {
			// The journal may now be missing this op: never persist a
			// position past the gap — a CONTINUE from there would
			// silently diverge. One full resync on the next restart
			// instead.
			sh.markDivergedLocked()
		}
	case len(batch) > 0:
		// No durable position (no AOF, or past a gap): keep the
		// best-effort op journaling a replica always did.
		sh.journalBatchLocked(batch)
	}
	sh.mu.Unlock()
	sr.batch = batch
	sr.rs.s.counters.replAppliedOps.Add(1)
}

// persistPos records a position change that carries no op: a generation
// switch, or the handshake's confirmed resume point.
func (sr *shardReplica) persistPos(pos persist.Position) {
	sh := sr.sh
	sr.batch = append(sr.batch[:0], persist.Op{Kind: persist.KindPosition, Pos: pos})
	sh.mu.Lock()
	if sh.canPersistPosLocked() {
		if sh.journalBatchLocked(sr.batch) {
			sh.replPos = pos
		} else {
			sh.markDivergedLocked()
		}
	}
	sh.mu.Unlock()
}

// syncReply is the parsed primary response to a sync command.
const (
	syncContinue = 'C'
	syncFull     = 'F'
)

type syncReply struct {
	kind     byte
	gen      uint64
	off      int64
	snapGen  uint64
	snapSize int64
	runID    uint64
}

// parseSyncReply parses "CONTINUE <gen> <offset> <runid>" or
// "FULLSYNC <snapgen> <snapbytes> <runid>". Anything else — including
// plausible replies with malformed offsets, a zero CONTINUE generation, or
// a zero run ID — is an error; the decoder never panics on hostile input
// (it is fuzzed alongside the frame decoder).
func parseSyncReply(line []byte) (syncReply, error) {
	var toks [5][]byte
	fields := proto.Tokenize(line, toks[:0])
	if len(fields) != 4 {
		return syncReply{}, fmt.Errorf("malformed sync reply %q", line)
	}
	runID, okRun := proto.ParseUint(fields[3])
	if !okRun || runID == 0 {
		return syncReply{}, fmt.Errorf("malformed sync reply run id %q", line)
	}
	switch string(fields[0]) {
	case "CONTINUE":
		gen, okGen := proto.ParseUint(fields[1])
		off, okOff := proto.ParseInt(fields[2])
		if !okGen || gen == 0 || !okOff || off < persist.SegmentHeaderLen {
			return syncReply{}, fmt.Errorf("malformed CONTINUE reply %q", line)
		}
		return syncReply{kind: syncContinue, gen: gen, off: off, runID: runID}, nil
	case "FULLSYNC":
		snapGen, okGen := proto.ParseUint(fields[1])
		size, okSize := proto.ParseInt(fields[2])
		if !okGen || !okSize || size < 0 || (snapGen == 0) != (size == 0) {
			return syncReply{}, fmt.Errorf("malformed FULLSYNC reply %q", line)
		}
		return syncReply{kind: syncFull, snapGen: snapGen, snapSize: size, runID: runID}, nil
	default:
		return syncReply{}, fmt.Errorf("unexpected sync reply %q", line)
	}
}
