// Package kvserver implements a memcached-style key-value server with
// pluggable cost-aware eviction, reproducing the §4 "IQ Twemcache"
// implementation of the CAMP paper.
//
// The server speaks a memcached text protocol subset over TCP:
//
//	set <key> <flags> <exptime> <bytes> [cost] [noreply]\r\n<data>\r\n
//	get <key> [<key> ...]\r\n
//	delete <key> [noreply]\r\n
//	stats\r\n    flush_all\r\n    version\r\n    debug <key>\r\n    quit\r\n
//
// In IQ mode (default) the server timestamps every get miss; when the
// subsequent set for that key arrives without an explicit cost, the elapsed
// time in microseconds becomes the key's cost — exactly how the paper's IQ
// framework derives recomputation costs from iqget/iqset pairs.
//
// Memory management is pluggable per §5: "byte" charges exact sizes to the
// eviction policy; "slab" reproduces Twemcache's slab classes with per-class
// LRU and random slab eviction; "buddy" rounds sizes to power-of-two blocks
// in a buddy arena with the configured policy choosing victims.
//
// With Config.Persist set, mutations are journaled through internal/persist
// and a restart warm-loads the newest snapshot plus the journal tail, so the
// working set and the IQ-learned costs survive crashes and deploys.
package kvserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"camp/internal/core"
	"camp/internal/persist"
)

// Memory-management modes.
const (
	ModeByte  = "byte"
	ModeSlab  = "slab"
	ModeBuddy = "buddy"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the TCP listen address; empty means 127.0.0.1:0.
	Addr string
	// MemoryBytes is the cache capacity.
	MemoryBytes int64
	// Policy selects the eviction algorithm: "camp" (default), "lru" or
	// "gds". Ignored in slab mode, which always uses per-class LRU as
	// Twemcache does.
	Policy string
	// Precision is CAMP's rounding precision (default 5).
	Precision uint
	// Mode selects memory management: ModeByte (default), ModeSlab or
	// ModeBuddy.
	Mode string
	// SlabSize overrides the slab size in slab mode (default 1 MiB).
	SlabSize int64
	// MinBlock overrides the buddy minimum block (default 64).
	MinBlock int64
	// ItemOverhead is charged per item on top of key+value bytes
	// (default 56, approximating Twemcache's item header).
	ItemOverhead int64
	// DisableIQ turns off miss-to-set cost derivation.
	DisableIQ bool
	// MaxValueBytes rejects larger values (default 8 MiB).
	MaxValueBytes int64
	// Persist enables the durability subsystem when non-nil: mutations are
	// journaled to an append-only log and the store warm-restarts from the
	// newest snapshot plus the journal tail, costs included.
	Persist *PersistConfig
}

// PersistConfig configures the internal/persist subsystem for a Server.
type PersistConfig struct {
	// Dir is the data directory (required).
	Dir string
	// DisableAOF turns off per-mutation journaling; durability then comes
	// only from interval and shutdown snapshots.
	DisableAOF bool
	// Fsync is the AOF sync policy: persist.FsyncAlways, FsyncEverySec
	// (default) or FsyncNo.
	Fsync string
	// SnapshotInterval, when positive, snapshots the store periodically in
	// the background (each snapshot also truncates the journal).
	SnapshotInterval time.Duration
	// AOFLimit overrides the journal size that triggers compaction.
	AOFLimit int64
	// Logf receives recovery and background-sync warnings (default: none).
	Logf func(format string, args ...any)
}

// DefaultItemOverhead approximates the per-item header of Twemcache.
const DefaultItemOverhead = 56

// Server is a single-node cost-aware KVS.
type Server struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	store    *store
	missedAt map[string]time.Time
	stats    map[string]uint64

	mgr       *persist.Manager
	recovered persist.RecoverStats
	stopSnap  chan struct{}

	wg     sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// New validates cfg and creates a Server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.MemoryBytes <= 0 {
		return nil, fmt.Errorf("kvserver: MemoryBytes must be positive")
	}
	if cfg.Policy == "" {
		cfg.Policy = "camp"
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeByte
	}
	if cfg.Precision == 0 {
		cfg.Precision = core.DefaultPrecision
	}
	if cfg.ItemOverhead == 0 {
		cfg.ItemOverhead = DefaultItemOverhead
	}
	if cfg.MaxValueBytes == 0 {
		cfg.MaxValueBytes = 8 << 20
	}
	st, err := newStore(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		store:    st,
		missedAt: make(map[string]time.Time),
		stats:    make(map[string]uint64),
		conns:    make(map[net.Conn]struct{}),
	}
	if p := cfg.Persist; p != nil {
		if p.Dir == "" {
			return nil, fmt.Errorf("kvserver: Persist.Dir is required")
		}
		mgr, rec, err := persist.Open(persist.Options{
			Dir:        p.Dir,
			Fsync:      p.Fsync,
			DisableAOF: p.DisableAOF,
			AOFLimit:   p.AOFLimit,
			Logf:       p.Logf,
		}, st.restore)
		if err != nil {
			return nil, fmt.Errorf("kvserver: recover: %w", err)
		}
		s.mgr = mgr
		s.recovered = rec
	}
	return s, nil
}

// Start begins listening and serving connections.
func (s *Server) Start() error {
	addr := s.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("kvserver: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	if s.mgr != nil && s.cfg.Persist.SnapshotInterval > 0 {
		s.stopSnap = make(chan struct{})
		s.wg.Add(1)
		go s.snapshotLoop(s.cfg.Persist.SnapshotInterval)
	}
	return nil
}

func (s *Server) snapshotLoop(every time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stopSnap:
			return
		case <-t.C:
			s.mu.Lock()
			s.compactLocked()
			s.mu.Unlock()
		}
	}
}

// Snapshot forces a snapshot-then-truncate compaction now. It is a no-op
// without persistence.
func (s *Server) Snapshot() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
}

// compactLocked snapshots the live store into the next generation and
// truncates the journal. The caller holds s.mu, which keeps the snapshot
// consistent with the journal order; moving this off the hot path is a
// ROADMAP item.
func (s *Server) compactLocked() {
	if s.mgr == nil {
		return
	}
	if err := s.mgr.Compact(s.store.emitOps); err != nil {
		s.stats["persist_errors"]++
		if s.cfg.Persist.Logf != nil {
			s.cfg.Persist.Logf("kvserver: snapshot: %v", err)
		}
		return
	}
	s.stats["persist_snapshots"]++
}

// journalLocked appends one mutation to the AOF and compacts when the
// journal outgrows its limit. The caller holds s.mu. Journal failures are
// surfaced through the persist_errors stat rather than failing the client
// op; with a healthy disk they do not happen.
func (s *Server) journalLocked(op persist.Op) {
	if s.mgr == nil {
		return
	}
	if err := s.mgr.Append(op); err != nil {
		s.stats["persist_errors"]++
		if s.cfg.Persist.Logf != nil {
			s.cfg.Persist.Logf("kvserver: journal: %v", err)
		}
		return
	}
	if s.mgr.NeedsCompaction() {
		s.compactLocked()
	}
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener, closes live connections, waits for handlers and
// flushes the persistence subsystem: the journal is synced, and when the AOF
// is disabled a final snapshot captures the store.
func (s *Server) Close() error {
	err, wasOpen := s.stopNetwork()
	if !wasOpen {
		return nil
	}
	if s.mgr != nil {
		if s.cfg.Persist.DisableAOF {
			s.mu.Lock()
			s.compactLocked()
			s.mu.Unlock()
		}
		if cerr := s.mgr.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Kill tears the server down without flushing persistence — no final
// journal sync, no shutdown snapshot — simulating a crash for recovery
// tests and demos. Orderly shutdown is Close.
func (s *Server) Kill() {
	_, wasOpen := s.stopNetwork()
	if wasOpen && s.mgr != nil {
		s.mgr.Kill()
	}
}

// stopNetwork closes the listener and live connections and waits for all
// handler goroutines. wasOpen is false if the server was already stopped.
func (s *Server) stopNetwork() (err error, wasOpen bool) {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil, false
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	if s.stopSnap != nil {
		close(s.stopSnap)
	}
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err, true
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		quit, err := s.dispatch(line, r, w)
		if err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// dispatch handles one command line; it returns quit=true for "quit".
func (s *Server) dispatch(line string, r *bufio.Reader, w *bufio.Writer) (quit bool, fatal error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		_, err := w.WriteString("ERROR\r\n")
		return false, err
	}
	switch fields[0] {
	case "get", "gets":
		return false, s.handleGet(fields[1:], w)
	case "set", "add", "replace", "append", "prepend":
		return false, s.handleStore(fields[0], fields[1:], r, w)
	case "incr", "decr":
		return false, s.handleArith(fields[0], fields[1:], w)
	case "touch":
		return false, s.handleTouch(fields[1:], w)
	case "delete":
		return false, s.handleDelete(fields[1:], w)
	case "stats":
		return false, s.handleStats(w)
	case "flush_all":
		s.mu.Lock()
		s.store.flush()
		s.missedAt = make(map[string]time.Time)
		// The journaled flush record makes the emptiness durable even if
		// the compaction below fails; the compaction then truncates the
		// now-superseded journal.
		s.journalLocked(persist.Op{Kind: persist.KindFlush})
		s.compactLocked()
		s.mu.Unlock()
		_, err := w.WriteString("OK\r\n")
		return false, err
	case "version":
		_, err := w.WriteString("VERSION camp-kvs/1.0\r\n")
		return false, err
	case "debug":
		return false, s.handleDebug(fields[1:], w)
	case "quit":
		return true, nil
	default:
		_, err := w.WriteString("ERROR\r\n")
		return false, err
	}
}

func (s *Server) handleGet(keys []string, w *bufio.Writer) error {
	if len(keys) == 0 {
		_, err := w.WriteString("CLIENT_ERROR get requires a key\r\n")
		return err
	}
	s.mu.Lock()
	type hit struct {
		key   string
		flags uint32
		value []byte
	}
	hits := make([]hit, 0, len(keys))
	now := time.Now()
	for _, k := range keys {
		s.stats["cmd_get"]++
		it, ok := s.store.get(k, now)
		if !ok {
			s.stats["get_misses"]++
			if !s.cfg.DisableIQ {
				s.recordMissLocked(k, now)
			}
			continue
		}
		s.stats["get_hits"]++
		hits = append(hits, hit{key: k, flags: it.flags, value: it.value})
	}
	s.mu.Unlock()
	for _, h := range hits {
		if _, err := fmt.Fprintf(w, "VALUE %s %d %d\r\n", h.key, h.flags, len(h.value)); err != nil {
			return err
		}
		if _, err := w.Write(h.value); err != nil {
			return err
		}
		if _, err := w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	_, err := w.WriteString("END\r\n")
	return err
}

// recordMissLocked notes a get miss for IQ cost derivation, bounding the
// table so an attacker cannot balloon it with unique keys.
func (s *Server) recordMissLocked(key string, now time.Time) {
	const maxPending = 1 << 16
	if len(s.missedAt) >= maxPending {
		for k, at := range s.missedAt {
			if now.Sub(at) > time.Minute {
				delete(s.missedAt, k)
			}
		}
		if len(s.missedAt) >= maxPending {
			return // still full of recent misses; drop this one
		}
	}
	s.missedAt[key] = now
}

// handleStore covers set, add, replace, append and prepend:
//
//	<cmd> <key> <flags> <exptime> <bytes> [cost] [noreply]\r\n<data>\r\n
func (s *Server) handleStore(cmd string, args []string, r *bufio.Reader, w *bufio.Writer) error {
	noreply := false
	if len(args) > 0 && args[len(args)-1] == "noreply" {
		noreply = true
		args = args[:len(args)-1]
	}
	if len(args) != 4 && len(args) != 5 {
		_, err := fmt.Fprintf(w, "CLIENT_ERROR bad %s command\r\n", cmd)
		return err
	}
	key := args[0]
	flags, err1 := strconv.ParseUint(args[1], 10, 32)
	ttl, err2 := strconv.ParseInt(args[2], 10, 64)
	nbytes, err3 := strconv.ParseInt(args[3], 10, 64)
	var cost int64
	var err4 error
	if len(args) == 5 {
		cost, err4 = strconv.ParseInt(args[4], 10, 64)
	}
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || nbytes < 0 || cost < 0 {
		_, err := fmt.Fprintf(w, "CLIENT_ERROR bad %s arguments\r\n", cmd)
		return err
	}
	if nbytes > s.cfg.MaxValueBytes {
		// Drain and discard the payload to keep the stream in sync.
		if err := discard(r, nbytes+2); err != nil {
			return err
		}
		if noreply {
			return nil
		}
		_, err := w.WriteString("SERVER_ERROR object too large for cache\r\n")
		return err
	}
	value := make([]byte, nbytes)
	if _, err := io.ReadFull(r, value); err != nil {
		return err
	}
	// Consume the trailing \r\n.
	if crlf, err := readLine(r); err != nil {
		return err
	} else if crlf != "" {
		_, err := w.WriteString("CLIENT_ERROR bad data chunk\r\n")
		return err
	}

	now := time.Now()
	s.mu.Lock()
	s.stats["cmd_"+cmd]++
	reply := s.storeLocked(cmd, key, value, uint32(flags), ttl, cost, now)
	s.mu.Unlock()

	if noreply {
		return nil
	}
	_, err := w.WriteString(reply)
	return err
}

// storeLocked applies one storage command and returns the protocol reply.
// The caller holds s.mu.
func (s *Server) storeLocked(cmd, key string, value []byte, flags uint32, ttl, cost int64, now time.Time) string {
	existing, exists := s.store.items[key]
	if exists && !existing.expiresAt.IsZero() && now.After(existing.expiresAt) {
		s.store.delete(key)
		existing, exists = nil, false
	}
	switch cmd {
	case "add":
		if exists {
			return "NOT_STORED\r\n"
		}
	case "replace":
		if !exists {
			return "NOT_STORED\r\n"
		}
	case "append", "prepend":
		if !exists {
			return "NOT_STORED\r\n"
		}
		// Concatenation keeps the existing flags and cost; the payload
		// just grows.
		if cmd == "append" {
			value = append(append(make([]byte, 0, len(existing.value)+len(value)), existing.value...), value...)
		} else {
			value = append(append(make([]byte, 0, len(existing.value)+len(value)), value...), existing.value...)
		}
		flags = existing.flags
		if cost == 0 {
			cost = s.costOf(key)
		}
	}
	if cost == 0 && !s.cfg.DisableIQ {
		if at, ok := s.missedAt[key]; ok {
			cost = now.Sub(at).Microseconds()
			if cost < 1 {
				cost = 1
			}
			delete(s.missedAt, key)
		}
	}
	if cost == 0 {
		cost = 1
	}
	expires := expiryFrom(ttl, now)
	if !s.store.setAbs(key, value, flags, expires, cost) {
		s.stats["set_rejected"]++
		return "SERVER_ERROR out of memory storing object\r\n"
	}
	s.journalLocked(persist.Op{
		Kind:    persist.KindSet,
		Key:     key,
		Value:   value,
		Flags:   flags,
		Expires: persist.ExpiresFrom(expires),
		Size:    s.store.itemSize(key, value),
		Cost:    cost,
	})
	return "STORED\r\n"
}

// costOf returns the stored cost of a resident key, or 0.
func (s *Server) costOf(key string) int64 {
	if _, meta, ok := s.store.peek(key); ok {
		return meta.Cost
	}
	return 0
}

// handleArith covers incr/decr: <cmd> <key> <delta> [noreply].
func (s *Server) handleArith(cmd string, args []string, w *bufio.Writer) error {
	noreply := false
	if len(args) > 0 && args[len(args)-1] == "noreply" {
		noreply = true
		args = args[:len(args)-1]
	}
	if len(args) != 2 {
		_, err := fmt.Fprintf(w, "CLIENT_ERROR bad %s command\r\n", cmd)
		return err
	}
	delta, err := strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		_, err := w.WriteString("CLIENT_ERROR invalid numeric delta argument\r\n")
		return err
	}
	key := args[0]
	now := time.Now()
	s.mu.Lock()
	s.stats["cmd_"+cmd]++
	it, ok := s.store.get(key, now)
	reply := "NOT_FOUND\r\n"
	if ok {
		cur, perr := strconv.ParseUint(string(it.value), 10, 64)
		if perr != nil {
			reply = "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n"
		} else {
			if cmd == "incr" {
				cur += delta // wraps at 2^64, as memcached does
			} else if cur < delta {
				cur = 0 // decr clamps at zero
			} else {
				cur -= delta
			}
			newVal := strconv.FormatUint(cur, 10)
			cost := s.costOf(key)
			// Arithmetic keeps the item's flags and expiration, as
			// memcached does; only the payload changes.
			if s.store.setAbs(key, []byte(newVal), it.flags, it.expiresAt, cost) {
				reply = newVal + "\r\n"
				s.journalLocked(persist.Op{
					Kind:    persist.KindSet,
					Key:     key,
					Value:   []byte(newVal),
					Flags:   it.flags,
					Expires: persist.ExpiresFrom(it.expiresAt),
					Size:    s.store.itemSize(key, []byte(newVal)),
					Cost:    cost,
				})
			} else {
				s.stats["set_rejected"]++
				reply = "SERVER_ERROR out of memory storing object\r\n"
			}
		}
	}
	s.mu.Unlock()
	if noreply {
		return nil
	}
	_, werr := w.WriteString(reply)
	return werr
}

// handleTouch covers touch <key> <exptime> [noreply].
func (s *Server) handleTouch(args []string, w *bufio.Writer) error {
	noreply := false
	if len(args) > 0 && args[len(args)-1] == "noreply" {
		noreply = true
		args = args[:len(args)-1]
	}
	if len(args) != 2 {
		_, err := w.WriteString("CLIENT_ERROR bad touch command\r\n")
		return err
	}
	ttl, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		_, err := w.WriteString("CLIENT_ERROR invalid exptime argument\r\n")
		return err
	}
	now := time.Now()
	s.mu.Lock()
	s.stats["cmd_touch"]++
	it, ok := s.store.get(args[0], now)
	if ok {
		it.expiresAt = expiryFrom(ttl, now)
		s.journalLocked(persist.Op{
			Kind:    persist.KindTouch,
			Key:     args[0],
			Expires: persist.ExpiresFrom(it.expiresAt),
		})
	}
	s.mu.Unlock()
	if noreply {
		return nil
	}
	reply := "NOT_FOUND\r\n"
	if ok {
		reply = "TOUCHED\r\n"
	}
	_, werr := w.WriteString(reply)
	return werr
}

func (s *Server) handleDelete(args []string, w *bufio.Writer) error {
	noreply := false
	if len(args) > 0 && args[len(args)-1] == "noreply" {
		noreply = true
		args = args[:len(args)-1]
	}
	if len(args) != 1 {
		_, err := w.WriteString("CLIENT_ERROR bad delete command\r\n")
		return err
	}
	s.mu.Lock()
	s.stats["cmd_delete"]++
	ok := s.store.delete(args[0])
	if ok {
		s.journalLocked(persist.Op{Kind: persist.KindDelete, Key: args[0]})
	}
	s.mu.Unlock()
	if noreply {
		return nil
	}
	if ok {
		_, err := w.WriteString("DELETED\r\n")
		return err
	}
	_, err := w.WriteString("NOT_FOUND\r\n")
	return err
}

func (s *Server) handleStats(w *bufio.Writer) error {
	s.mu.Lock()
	lines := make([]string, 0, 16)
	for k, v := range s.stats {
		lines = append(lines, fmt.Sprintf("STAT %s %d\r\n", k, v))
	}
	lines = append(lines, fmt.Sprintf("STAT curr_items %d\r\n", s.store.len()))
	lines = append(lines, fmt.Sprintf("STAT bytes %d\r\n", s.store.used()))
	lines = append(lines, fmt.Sprintf("STAT limit_maxbytes %d\r\n", s.cfg.MemoryBytes))
	lines = append(lines, fmt.Sprintf("STAT evictions %d\r\n", s.store.evictions()))
	lines = append(lines, fmt.Sprintf("STAT policy %s\r\n", s.store.policyName()))
	lines = append(lines, fmt.Sprintf("STAT mode %s\r\n", s.cfg.Mode))
	// Admission pressure: how many stores the eviction policy refused.
	lines = append(lines, fmt.Sprintf("STAT rejected_sets %d\r\n", s.store.rejected()))
	if qc := s.store.queueCount(); qc >= 0 {
		lines = append(lines, fmt.Sprintf("STAT camp_queues %d\r\n", qc))
	}
	if s.mgr != nil {
		info := s.mgr.Info()
		aof := 0
		if info.AOFEnabled {
			aof = 1
		}
		lines = append(lines,
			fmt.Sprintf("STAT persist_gen %d\r\n", info.Generation),
			fmt.Sprintf("STAT aof_enabled %d\r\n", aof),
			fmt.Sprintf("STAT aof_bytes %d\r\n", info.AOFSize),
			fmt.Sprintf("STAT aof_fsync %s\r\n", info.Fsync),
			fmt.Sprintf("STAT persist_compactions %d\r\n", info.Compactions),
			fmt.Sprintf("STAT restored_snapshot_ops %d\r\n", s.recovered.SnapshotOps),
			fmt.Sprintf("STAT restored_aof_ops %d\r\n", s.recovered.ReplayedOps),
			fmt.Sprintf("STAT restored_truncated_bytes %d\r\n", s.recovered.TruncatedBytes),
		)
	}
	s.mu.Unlock()
	for _, l := range lines {
		if _, err := w.WriteString(l); err != nil {
			return err
		}
	}
	_, err := w.WriteString("END\r\n")
	return err
}

func (s *Server) handleDebug(args []string, w *bufio.Writer) error {
	if len(args) != 1 {
		_, err := w.WriteString("CLIENT_ERROR debug requires a key\r\n")
		return err
	}
	s.mu.Lock()
	it, meta, ok := s.store.peek(args[0])
	s.mu.Unlock()
	if !ok {
		_, err := w.WriteString("NOT_FOUND\r\n")
		return err
	}
	_, err := fmt.Fprintf(w, "DEBUG %s size=%d cost=%d flags=%d\r\n", args[0], meta.Size, meta.Cost, it.flags)
	return err
}

// readLine reads a \r\n- or \n-terminated line without the terminator.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func discard(r *bufio.Reader, n int64) error {
	_, err := io.CopyN(io.Discard, r, n)
	return err
}

var errBadConfig = errors.New("kvserver: bad configuration")
