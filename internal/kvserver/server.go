// Package kvserver implements a memcached-style key-value server with
// pluggable cost-aware eviction, reproducing the §4 "IQ Twemcache"
// implementation of the CAMP paper.
//
// The server speaks a memcached text protocol subset over TCP:
//
//	set <key> <flags> <exptime> <bytes> [cost] [noreply]\r\n<data>\r\n
//	get <key> [<key> ...]\r\n
//	delete <key> [noreply]\r\n
//	tenant [<name>]\r\n
//	stats\r\n    flush_all [all]\r\n    version\r\n    debug <key>\r\n    quit\r\n
//
// The server is multi-tenant: "tenant <name>" scopes a connection to a
// namespace, each tenant can reserve memory (Config.TenantReserves), and a
// Memshare-style arbiter shares the rest by marginal eviction priority; see
// tenants.go. Connections that never issue the verb live on the default
// tenant with pre-tenancy semantics, byte for byte.
//
// In IQ mode (default) the server timestamps every get miss; when the
// subsequent set for that key arrives without an explicit cost, the elapsed
// time in microseconds becomes the key's cost — exactly how the paper's IQ
// framework derives recomputation costs from iqget/iqset pairs.
//
// Memory management is pluggable per §5: "byte" charges exact sizes to the
// eviction policy; "slab" reproduces Twemcache's slab classes with per-class
// LRU and random slab eviction; "buddy" rounds sizes to power-of-two blocks
// in a buddy arena with the configured policy choosing victims; "arena"
// packs keys and values into log-structured per-shard segments reclaimed by
// incremental compaction (Memshare-style), driven by the same policies —
// its set path reuses pooled scratch end to end, so steady-state overwrites
// make no per-item heap allocations at all.
//
// The server is sharded for vertical scaling, the §4.1 recipe: keys hash
// across Config.Shards independent shards, each owning its own store,
// mutex, IQ miss table and — with Config.Persist set — its own journal and
// snapshot generations under data-dir/shard-NNN/. Mutations are journaled
// through internal/persist and a restart warm-loads each shard's newest
// snapshot plus journal tail (in parallel), so the working set and the
// IQ-learned costs survive crashes and deploys. Snapshots run off the
// request path: the journal switches segments under the shard lock, but the
// snapshot itself is serialized and written unlocked, so compaction never
// stalls more than the one shard, and only for the in-memory copy-out.
//
// The request loop is allocation-free on the steady state: command lines are
// read with a zero-copy line reader and tokenized in place, integers parse
// straight from the wire bytes, per-connection scratch (token slots, hit
// list, value read buffer) lives in a pooled connection state, and replies
// are built by appending to a reusable buffer — keys only materialize as Go
// strings at the item-map boundary, on writes and IQ miss records.
package kvserver

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"camp/internal/core"
	"camp/internal/fault"
	"camp/internal/persist"
	"camp/internal/proto"
)

// Memory-management modes.
const (
	ModeByte  = "byte"
	ModeSlab  = "slab"
	ModeBuddy = "buddy"
	// ModeArena packs records into per-shard log-structured segments with
	// incremental compaction; see internal/alloc/arena.go.
	ModeArena = "arena"
)

// MaxShards bounds Config.Shards.
const MaxShards = 1024

// Config parameterizes a Server.
type Config struct {
	// Addr is the TCP listen address; empty means 127.0.0.1:0.
	Addr string
	// MemoryBytes is the cache capacity, split evenly across shards.
	MemoryBytes int64
	// Shards is the number of independent stores keys are hashed across
	// (default 1). Each shard has its own lock, eviction state and — with
	// persistence — its own journal, so writes scale across cores. Capacity
	// splits evenly, so each shard holds MemoryBytes/Shards: a single value
	// larger than that slice is rejected even if it fits MaxValueBytes, and
	// slab mode needs at least one whole slab per shard. Size Shards so the
	// per-shard slice stays comfortably above the largest expected value
	// (cmd/campsrv's auto default does this).
	Shards int
	// Policy selects the eviction algorithm: "camp" (default), "lru" or
	// "gds". Ignored in slab mode, which always uses per-class LRU as
	// Twemcache does.
	Policy string
	// Precision is CAMP's rounding precision (default 5).
	Precision uint
	// Mode selects memory management: ModeByte (default), ModeSlab or
	// ModeBuddy.
	Mode string
	// SlabSize overrides the slab size in slab mode (default 1 MiB).
	SlabSize int64
	// MinBlock overrides the buddy minimum block (default 64).
	MinBlock int64
	// ArenaSegment overrides the arena segment size in arena mode (default:
	// one eighth of the per-shard capacity, clamped to [4 KiB, 1 MiB]).
	ArenaSegment int64
	// ItemOverhead is charged per item on top of key+value bytes
	// (default 56, approximating Twemcache's item header).
	ItemOverhead int64
	// DisableIQ turns off miss-to-set cost derivation.
	DisableIQ bool
	// MaxConns caps concurrently served connections. Accepts beyond the cap
	// are refused (closed immediately) and counted in
	// accept_rejected_maxconns, and the accept loop backs off briefly so a
	// reconnect storm burns a bounded accept rate instead of a core.
	// 0 means unlimited.
	MaxConns int
	// MaxValueBytes rejects larger values (default 8 MiB).
	MaxValueBytes int64
	// Persist enables the durability subsystem when non-nil: mutations are
	// journaled per shard to an append-only log and the store warm-restarts
	// from each shard's newest snapshot plus journal tail, costs included.
	Persist *PersistConfig
	// MetricsAddr, when non-empty, starts an HTTP listener on this address
	// serving Prometheus text exposition at /metrics and the net/http/pprof
	// profiling handlers under /debug/pprof/. The listener is private to
	// this server (its own mux, not http.DefaultServeMux) and stops with it.
	MetricsAddr string
	// SlowlogThreshold is the command duration at or above which the
	// slowlog records a command (default 10ms; negative disables the
	// slowlog). Adjustable at runtime with "slowlog threshold <ms>".
	SlowlogThreshold time.Duration
	// ReplicaOf, when non-empty, starts the server as a read-only replica of
	// the primary listening at this address: one replication goroutine per
	// shard bootstraps from the primary's snapshot + journal and then tails
	// its op stream live, applying every mutation through the configured
	// eviction policy so costs and queue placement replicate too. The shard
	// count must match the primary's. The replica serves reads (and rejects
	// mutations) while replicating; "replica promote" makes it the primary.
	ReplicaOf string
	// TenantReserves maps tenant names to reserved bytes (byte mode only).
	// A tenant holding no more than its reserve is never evicted by another
	// tenant's churn; unreserved capacity is a shared pool arbitrated by
	// marginal eviction priority. Reserves must sum to at most MemoryBytes.
	// Values here override quotas recovered from the journal.
	TenantReserves map[string]int64
	// TenantQuotas maps tenant names to shed-on-exceed request limits (byte
	// mode only): an ops/sec rate enforced with a lock-free GCRA bucket and a
	// cap on mutation payload bytes in flight. Over-quota requests answer
	// "SERVER_ERROR tenant over quota" after being fully consumed, so the
	// connection stream stays aligned. Quotas describe the deployment, not
	// the data: they are never journaled or replicated.
	TenantQuotas map[string]TenantQuota
	// ReplicaTenants, with ReplicaOf, restricts replication to a tenant
	// subset: the follower requests the subset during the REPLCONF handshake
	// and the primary filters its per-shard feed by the NUL-delimited key
	// prefix, coalescing the bytes of filtered-out records into skip frames
	// so the follower's offsets keep mirroring the primary's file positions
	// (disconnect/CONTINUE resume works unchanged). FULLSYNC bootstraps ship
	// only the subset's entries plus their KindTenant/KindScale records, and
	// promoting a filtered replica serves only its subset. "default" names
	// the bare namespace. Byte mode only.
	ReplicaTenants []string

	// tenants and shardSlot are threaded through the per-shard Config
	// copies so each store can reach the server's tenant registry and
	// compute its slice of a reserve; set by New, never by callers.
	tenants   *tenantRegistry
	shardSlot int
}

// TenantQuota is one tenant's shed-on-exceed request limits
// (Config.TenantQuotas); zero-valued fields are unlimited.
type TenantQuota struct {
	// OpsPerSec caps the tenant's mutation rate; a burst of one full second
	// (OpsPerSec back-to-back ops from idle) is tolerated.
	OpsPerSec int64
	// MaxBytesInFlight caps the tenant's concurrently processed mutation
	// payload bytes across all its connections.
	MaxBytesInFlight int64
	// ShedReads extends the ops/sec cap to the read path; by default reads
	// are always served so an over-quota tenant can still drain its cache.
	ShedReads bool
}

// PersistConfig configures the internal/persist subsystem for a Server.
type PersistConfig struct {
	// Dir is the data directory (required). The server locks it (flock on
	// unix; platforms without flock get no mutual exclusion), so a second
	// server pointed at the same directory refuses to start.
	Dir string
	// DisableAOF turns off per-mutation journaling; durability then comes
	// only from interval and shutdown snapshots.
	DisableAOF bool
	// Fsync is the AOF sync policy: persist.FsyncAlways, FsyncEverySec
	// (default) or FsyncNo.
	Fsync string
	// SnapshotInterval, when positive, snapshots the shards periodically in
	// the background, one shard at a time (each snapshot also truncates
	// that shard's journal).
	SnapshotInterval time.Duration
	// AOFLimit overrides the per-shard journal size that triggers
	// compaction.
	AOFLimit int64
	// Logf receives recovery and background-sync warnings (default: none).
	Logf func(format string, args ...any)
	// FS routes every journal and snapshot file operation; nil means the
	// real filesystem. Fault-injection tests pass a fault.Injector here to
	// exercise disk-failure degradation end to end.
	FS fault.FS
	// ProbeMin/ProbeMax bound the jittered exponential backoff between
	// disk-health probes while a shard is degraded (defaults 500ms / 10s).
	ProbeMin time.Duration
	ProbeMax time.Duration
}

// DefaultItemOverhead approximates the per-item header of Twemcache.
const DefaultItemOverhead = 56

// Server is a cost-aware KVS sharded across independent stores.
type Server struct {
	cfg Config
	ln  net.Listener

	shards   []*shard
	counters counters

	// tenants is the server-wide tenant registry (tenants.go); the default
	// tenant always exists.
	tenants *tenantRegistry

	// arenaMode caches cfg.Mode == ModeArena for the hot-path branches that
	// must route reads/writes through the packed arena.
	arenaMode bool

	// Instrumentation: per-verb histograms, slowlog and the Prometheus
	// registry (metrics.go); started anchors the uptime stat; metricsLn and
	// metricsSrv are the optional -metrics-addr HTTP endpoint (http.go).
	started    time.Time
	metrics    srvMetrics
	metricsLn  net.Listener
	metricsSrv *http.Server

	// Live sync-feed stream positions, for the replication-lag gauges.
	feedMu  sync.Mutex
	feeds   map[*feedStat]struct{}
	feedSeq uint64

	recovered persist.RecoverStats
	rootLock  *persist.DirLock

	// Replication: repl drives this server's own follower streams (nil on a
	// primary); readOnly gates mutations while replicating; replFeeds counts
	// the sync feeds this server is serving to its followers.
	repl      *replicaSession
	readOnly  atomic.Bool
	replFeeds atomic.Int64

	compactC chan *shard
	probeC   chan struct{}
	stopBg   chan struct{}

	wg     sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// testHookCmd, when non-nil, runs at the top of every dispatched command.
	// Fault tests use it to inject handler panics; it is never set in
	// production, so the request path pays one nil check.
	testHookCmd func(toks [][]byte)
}

// New validates cfg and creates a Server (not yet listening). With
// persistence configured, New locks the data directory, migrates old
// layouts, and warm-restarts every shard before returning.
func New(cfg Config) (*Server, error) {
	if cfg.MemoryBytes <= 0 {
		return nil, fmt.Errorf("kvserver: MemoryBytes must be positive")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 || cfg.Shards > MaxShards {
		return nil, fmt.Errorf("kvserver: Shards must be in [1, %d], got %d", MaxShards, cfg.Shards)
	}
	if cfg.Policy == "" {
		cfg.Policy = "camp"
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeByte
	}
	if cfg.Precision == 0 {
		cfg.Precision = core.DefaultPrecision
	}
	if cfg.ItemOverhead == 0 {
		cfg.ItemOverhead = DefaultItemOverhead
	}
	if cfg.MaxValueBytes == 0 {
		cfg.MaxValueBytes = 8 << 20
	}
	if len(cfg.TenantReserves) > 0 {
		if cfg.Mode != ModeByte && cfg.Mode != ModeArena {
			return nil, fmt.Errorf("%w: tenant reserves require byte or arena mode", errBadConfig)
		}
		var sum int64
		for name, res := range cfg.TenantReserves {
			if _, ok := parseTenantName([]byte(name)); !ok {
				return nil, fmt.Errorf("%w: bad tenant name %q", errBadConfig, name)
			}
			if res < 0 {
				return nil, fmt.Errorf("%w: negative reserve for tenant %q", errBadConfig, name)
			}
			sum += res
		}
		if sum > cfg.MemoryBytes {
			return nil, fmt.Errorf("%w: tenant reserves (%d bytes) exceed MemoryBytes (%d)", errBadConfig, sum, cfg.MemoryBytes)
		}
	}
	if len(cfg.TenantQuotas) > 0 {
		if cfg.Mode != ModeByte && cfg.Mode != ModeArena {
			return nil, fmt.Errorf("%w: tenant quotas require byte or arena mode", errBadConfig)
		}
		for name, q := range cfg.TenantQuotas {
			if _, ok := parseTenantName([]byte(name)); !ok {
				return nil, fmt.Errorf("%w: bad tenant name %q", errBadConfig, name)
			}
			if q.OpsPerSec < 0 || q.MaxBytesInFlight < 0 {
				return nil, fmt.Errorf("%w: negative quota for tenant %q", errBadConfig, name)
			}
		}
	}
	if len(cfg.ReplicaTenants) > 0 {
		if cfg.ReplicaOf == "" {
			return nil, fmt.Errorf("%w: ReplicaTenants requires ReplicaOf", errBadConfig)
		}
		if cfg.Mode != ModeByte && cfg.Mode != ModeArena {
			return nil, fmt.Errorf("%w: tenant-filtered replication requires byte or arena mode", errBadConfig)
		}
		names := append([]string(nil), cfg.ReplicaTenants...)
		sort.Strings(names)
		dedup := names[:0]
		for i, name := range names {
			if _, ok := parseTenantName([]byte(name)); !ok {
				return nil, fmt.Errorf("%w: bad tenant name %q", errBadConfig, name)
			}
			if i > 0 && name == names[i-1] {
				continue
			}
			dedup = append(dedup, name)
		}
		cfg.ReplicaTenants = dedup
	}
	cfg.tenants = newTenantRegistry()
	s := &Server{
		cfg:       cfg,
		tenants:   cfg.tenants,
		arenaMode: cfg.Mode == ModeArena,
		conns:     make(map[net.Conn]struct{}),
		feeds:     make(map[*feedStat]struct{}),
		started:   time.Now(),
	}
	if th := cfg.SlowlogThreshold; th != 0 {
		s.metrics.slowlog.SetThreshold(th)
	} else {
		s.metrics.slowlog.SetThreshold(DefaultSlowlogThreshold)
	}
	// Capacity splits evenly; shard 0 absorbs the remainder, as the root
	// camp.Cache's sharding does.
	per := cfg.MemoryBytes / int64(cfg.Shards)
	rem := cfg.MemoryBytes % int64(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		shardCfg := cfg
		shardCfg.MemoryBytes = per
		if i == 0 {
			shardCfg.MemoryBytes += rem
		}
		shardCfg.shardSlot = i
		st, err := newStore(shardCfg)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, &shard{
			srv:      s,
			store:    st,
			missedAt: make(map[string]time.Time),
		})
	}
	if p := cfg.Persist; p != nil {
		if p.Dir == "" {
			return nil, fmt.Errorf("kvserver: Persist.Dir is required")
		}
		if err := s.openPersistence(); err != nil {
			return nil, fmt.Errorf("kvserver: recover: %w", err)
		}
		// The compactor and the health prober run for the server's whole
		// life (not just while listening): size-triggered and interval
		// snapshots, and degraded-shard recovery, all happen off the
		// request path here.
		s.compactC = make(chan *shard, len(s.shards))
		s.probeC = make(chan struct{}, 1)
		s.stopBg = make(chan struct{})
		s.wg.Add(2)
		go s.compactorLoop(p.SnapshotInterval)
		go s.proberLoop(p.ProbeMin, p.ProbeMax)
	}
	// Configured reserves apply after recovery, so operator flags win over
	// journaled quotas; journaling them back makes a flag-created tenant
	// durable even before its first key.
	for name, res := range cfg.TenantReserves {
		t, _ := s.tenants.ensure(name)
		t.reserve.Store(res)
		s.journalTenant(t)
	}
	// Quotas are deployment config, never journaled: attach them to the
	// registry entries so every connection's resolved *tenant carries its
	// limits and the hot path pays one nil check.
	for name, q := range cfg.TenantQuotas {
		t, _ := s.tenants.ensure(name)
		t.quota = newTenantQuota(q)
	}
	if cfg.ReplicaOf != "" {
		s.readOnly.Store(true)
		s.repl = newReplicaSession(s, cfg.ReplicaOf)
	}
	s.buildRegistry()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Persist != nil && s.cfg.Persist.Logf != nil {
		s.cfg.Persist.Logf(format, args...)
	}
}

// Start begins listening and serving connections.
func (s *Server) Start() error {
	addr := s.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("kvserver: listen: %w", err)
	}
	s.ln = ln
	if s.cfg.MetricsAddr != "" {
		if err := s.startMetricsHTTP(s.cfg.MetricsAddr); err != nil {
			ln.Close()
			s.ln = nil
			return err
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if s.repl != nil {
		s.repl.start()
	}
	return nil
}

// requestCompact schedules an off-lock compaction of sh. Dropping the
// request when the queue is full is fine: the journal keeps growing and the
// next append re-triggers it.
func (s *Server) requestCompact(sh *shard) {
	select {
	case s.compactC <- sh:
	default:
	}
}

// compactorLoop owns every snapshot cycle: size-triggered requests from the
// journal path and the optional interval ticker. Walking the shards one at a
// time bounds any stall to a single shard's copy-out — the disk write
// happens with no lock held at all.
func (s *Server) compactorLoop(interval time.Duration) {
	defer s.wg.Done()
	var tick <-chan time.Time
	if interval > 0 {
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.stopBg:
			return
		case sh := <-s.compactC:
			sh.compact()
		case <-tick:
			for _, sh := range s.shards {
				select {
				case <-s.stopBg:
					return
				default:
				}
				sh.compact()
			}
		}
	}
}

// Snapshot forces a snapshot-then-truncate compaction of every shard now.
// It is a no-op without persistence.
func (s *Server) Snapshot() {
	for _, sh := range s.shards {
		sh.compact()
	}
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener, closes live connections, waits for handlers and
// flushes the persistence subsystem: every shard's journal is synced, and
// when the AOF is disabled a final snapshot captures each shard.
func (s *Server) Close() error {
	err, wasOpen := s.stopNetwork()
	if !wasOpen {
		return nil
	}
	if s.cfg.Persist != nil {
		if s.cfg.Persist.DisableAOF {
			s.Snapshot()
		}
		for _, sh := range s.shards {
			if sh.mgr == nil {
				continue
			}
			if cerr := sh.mgr.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if rerr := s.rootLock.Release(); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}

// Shutdown drains the server gracefully, the SIGTERM path: stop accepting,
// let every live connection finish the pipeline it has in flight (each
// connection keeps dispatching the commands it has already buffered; the
// first socket read past the grace deadline ends its loop cleanly), then
// flush and snapshot the healthy shards. Connections that never read —
// a wedged peer, a replication feed mid-stream — are force-closed shortly
// after the grace window. Degraded shards are skipped by the final snapshot:
// their state is cache-only by contract, and their journals were already
// detached. A second Shutdown (or a Close after it) is a no-op.
func (s *Server) Shutdown(grace time.Duration) error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	deadline := time.Now().Add(grace)
	for c := range s.conns {
		c.SetReadDeadline(deadline)
	}
	s.connMu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	if s.repl != nil {
		s.repl.stopAll()
	}
	if s.stopBg != nil {
		close(s.stopBg)
	}
	if s.metricsSrv != nil {
		s.metricsSrv.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace + time.Second):
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		<-done
	}
	if s.cfg.Persist != nil {
		s.Snapshot()
		for _, sh := range s.shards {
			if sh.mgr == nil {
				continue
			}
			if cerr := sh.mgr.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if rerr := s.rootLock.Release(); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}

// Kill tears the server down without flushing persistence — no final
// journal sync, no shutdown snapshot — simulating a crash for recovery
// tests and demos. Orderly shutdown is Close.
func (s *Server) Kill() {
	_, wasOpen := s.stopNetwork()
	if !wasOpen {
		return
	}
	for _, sh := range s.shards {
		if sh.mgr != nil {
			sh.mgr.Kill()
		}
	}
	// A real crash drops the flock with the process; release it so a
	// recovering server in the same process can take the directory over.
	s.rootLock.Release()
}

// stopNetwork closes the listener and live connections, stops the
// background compactor, and waits for all goroutines. wasOpen is false if
// the server was already stopped.
func (s *Server) stopNetwork() (err error, wasOpen bool) {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil, false
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	if s.repl != nil {
		s.repl.stopAll()
	}
	if s.stopBg != nil {
		close(s.stopBg)
	}
	if s.metricsSrv != nil {
		s.metricsSrv.Close()
	}
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err, true
}

// acceptRejectBackoff bounds the pause after a -max-conns rejection; the
// first rejection waits 1ms, doubling up to this cap while the server stays
// over the limit.
const acceptRejectBackoff = 50 * time.Millisecond

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	rejectPause := time.Millisecond
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if max := s.cfg.MaxConns; max > 0 && s.counters.currConns.Load() >= int64(max) {
			// Over the accept limit: refuse and pause before the next
			// accept. The pause is what contains the blast radius of a
			// reconnect storm — without it a rejected client retrying in a
			// tight loop would spin this goroutine at accept speed.
			s.counters.acceptRejected.Add(1)
			conn.Close()
			time.Sleep(rejectPause)
			if rejectPause *= 2; rejectPause > acceptRejectBackoff {
				rejectPause = acceptRejectBackoff
			}
			continue
		}
		rejectPause = time.Millisecond
		// One wrapper allocation per connection (not per op) buys the
		// bytes_read/bytes_written stats for every byte that crosses the
		// socket, replication feeds included.
		counted := &countedConn{Conn: conn, srv: s}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[counted] = struct{}{}
		s.connMu.Unlock()
		s.counters.totalConns.Add(1)
		// Counted here, not in serveConn: the accept-limit check above must
		// see a connection the instant it is admitted, or a burst of accepts
		// would all pass the check before any handler goroutine ran.
		s.counters.currConns.Add(1)
		s.wg.Add(1)
		go s.serveConn(counted)
	}
}

// countedConn charges socket traffic to the server-wide byte counters.
type countedConn struct {
	net.Conn
	srv *Server
}

func (c *countedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.srv.counters.bytesRead.Add(uint64(n))
	return n, err
}

func (c *countedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.srv.counters.bytesWritten.Add(uint64(n))
	return n, err
}

// errCloseConn makes a handler close the connection after its reply has been
// written: the stream position is no longer trustworthy (e.g. a storage
// command whose payload length never parsed), so resynchronization is
// impossible and continuing would misread payload bytes as commands.
var errCloseConn = errors.New("kvserver: close connection")

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		// Blast-radius containment: a panic anywhere in this connection's
		// command handling closes this connection only. It is counted
		// (conn_panics) and logged with the stack; every other connection —
		// and the server — keeps running.
		if r := recover(); r != nil {
			s.counters.connPanics.Add(1)
			s.logf("kvserver: connection handler panic: %v\n%s", r, debug.Stack())
		}
		s.counters.currConns.Add(-1)
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	cs := getConnState(conn)
	defer putConnState(cs)
	for {
		line, err := cs.lr.ReadLine()
		if err != nil {
			if err == proto.ErrLineTooLong {
				// Tell the client why before dropping it (the old
				// unbounded reader was a memory DoS surface; a command
				// this long is a confused or hostile peer — and if it was
				// a storage command, a data block may follow, so
				// continuing would desync anyway).
				cs.w.Write(replyLineTooLong)
				cs.w.Flush()
			}
			return
		}
		quit, err := s.dispatch(line, cs)
		// Flush even on a fatal error so the final CLIENT_ERROR reaches the
		// client before the close.
		ferr := cs.w.Flush()
		if quit || err != nil || ferr != nil {
			return
		}
	}
}

// dispatch handles one command line; it returns quit=true for "quit" and a
// non-nil error when the connection must close. It wraps dispatchCmd with
// the latency instrumentation: verb resolution, a key copy into pooled
// scratch (the tokens alias the read buffer, which a payload read
// invalidates), and — after the handler returns — per-verb and per-shard
// histogram observations plus the slowlog threshold check. All of it is
// atomic adds and a memcpy into reused scratch, so the request loop stays
// allocation-free.
func (s *Server) dispatch(line []byte, cs *connState) (quit bool, fatal error) {
	cs.tokens = proto.Tokenize(line, cs.tokens[:0])
	toks := cs.tokens
	if len(toks) == 0 {
		_, err := cs.w.Write(replyError)
		return false, err
	}
	v := verbOf(toks[0])
	if v == verbNone {
		return s.dispatchCmd(toks, cs)
	}
	cs.shardIdx = -1
	if len(toks) > 1 {
		cs.slowKey = append(cs.slowKey[:0], toks[1]...)
	} else {
		cs.slowKey = cs.slowKey[:0]
	}
	start := time.Now()
	quit, fatal = s.dispatchCmd(toks, cs)
	s.observe(v, cs.shardIdx, cs.slowKey, time.Since(start), start)
	return quit, fatal
}

// dispatchCmd routes one tokenized command to its handler.
func (s *Server) dispatchCmd(toks [][]byte, cs *connState) (quit bool, fatal error) {
	if s.testHookCmd != nil {
		s.testHookCmd(toks)
	}
	switch string(toks[0]) {
	case "get", "gets":
		return false, s.handleGet(toks[1:], cs)
	case "set":
		return false, s.handleStore(cmdSet, toks[1:], cs)
	case "add":
		return false, s.handleStore(cmdAdd, toks[1:], cs)
	case "replace":
		return false, s.handleStore(cmdReplace, toks[1:], cs)
	case "append":
		return false, s.handleStore(cmdAppend, toks[1:], cs)
	case "prepend":
		return false, s.handleStore(cmdPrepend, toks[1:], cs)
	case "incr":
		return false, s.handleArith(true, toks[1:], cs)
	case "decr":
		return false, s.handleArith(false, toks[1:], cs)
	case "touch":
		return false, s.handleTouch(toks[1:], cs)
	case "delete":
		return false, s.handleDelete(toks[1:], cs)
	case "stats":
		return false, s.handleStats(toks[1:], cs)
	case "slowlog":
		return false, s.handleSlowlog(toks[1:], cs)
	case "tenant":
		return false, s.handleTenant(toks[1:], cs)
	case "flush_all":
		// Bare flush_all scopes to the connection's tenant; the explicit
		// "flush_all all" admin form clears every tenant.
		if rejected, err := s.rejectReadOnly(cs, false); rejected || err != nil {
			return false, err
		}
		switch {
		case len(toks) == 1:
			s.handleFlushAll(s.tenantOf(cs))
		case len(toks) == 2 && string(toks[1]) == "all":
			s.handleFlushAll(nil)
		default:
			_, err := cs.w.Write(replyBadFlush)
			return false, err
		}
		_, err := cs.w.Write(replyOK)
		return false, err
	case "version":
		_, err := cs.w.Write(replyVersion)
		return false, err
	case "debug":
		return false, s.handleDebug(toks[1:], cs)
	case "replconf":
		return false, s.handleReplconf(toks[1:], cs)
	case "sync":
		return false, s.handleSync(toks[1:], cs)
	case "replica":
		return false, s.handleReplica(toks[1:], cs)
	case "quit":
		return true, nil
	default:
		_, err := cs.w.Write(replyError)
		return false, err
	}
}

// rejectReadOnly answers a mutating command on a replica: rejected reports
// whether the caller must stop (the write was refused), and — as with every
// error reply — noreply suppresses the SERVER_ERROR line. The one gate for
// every mutating verb, so the noreply subtlety lives in one place.
func (s *Server) rejectReadOnly(cs *connState, noreply bool) (rejected bool, err error) {
	if !s.readOnly.Load() {
		return false, nil
	}
	if noreply {
		return true, nil
	}
	_, err = cs.w.Write(replyReadOnly)
	return true, err
}

// handleFlushAll empties every shard — all of it when t is nil (the
// "flush_all all" admin form, journaled as the legacy keyless flush record),
// or one tenant's namespace when t names one (journaled keyed, so replicas
// and warm restarts replay the same scoping). Each shard flushes atomically
// under its own lock and journals the record (making the emptiness durable
// even if the compaction below fails); across shards the flush is not a
// single atomic point — a concurrent writer may land a set on an
// already-flushed shard — matching multi-node memcached semantics.
func (s *Server) handleFlushAll(t *tenant) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if t == nil {
			sh.store.flush()
			sh.missedAt = make(map[string]time.Time)
			sh.journalLocked(persist.Op{Kind: persist.KindFlush})
		} else {
			sh.store.flushTenant(t.name)
			for k := range sh.missedAt {
				if tenantOwnsKey(t, k) {
					delete(sh.missedAt, k)
				}
			}
			sh.journalLocked(persist.Op{Kind: persist.KindFlush, Key: t.name})
		}
		sh.mu.Unlock()
		// Compact synchronously (off-lock) so the truncated journal is on
		// disk by the time the client sees OK, as before sharding.
		sh.compact()
	}
}

func (s *Server) handleGet(keys [][]byte, cs *connState) error {
	w := cs.w
	if len(keys) == 0 {
		_, err := w.Write(replyGetNoKey)
		return err
	}
	// One cmd_get per command, as memcached counts it; hits and misses stay
	// per-key. A multiget charges the first key's shard, one histogram
	// observation per command. Keys namespace through the connection's
	// tenant (pooled scratch, no allocation); a key containing the NUL
	// namespace delimiter could forge another tenant's prefix, so it is
	// answered as a miss without touching the store.
	s.counters.cmdGet.Add(1)
	tn := s.tenantOf(cs)
	pfx := cs.keyPrefixLen()
	cs.shardIdx = shardIndex(cs.nsKeyFor(keys[0]), len(s.shards))
	hits := cs.hits[:0]
	now := time.Now()
	if tq := tn.quota; tq != nil && tq.shedReads && !tq.allowOp(now.UnixNano()) {
		tn.quotaShed.Add(1)
		_, err := w.Write(replyOverQuota)
		return err
	}
	if s.arenaMode {
		// Arena values are relocated by the compactor, so the references do
		// NOT survive the shard lock: each hit's whole VALUE block is staged
		// into the pooled reply scratch while the lock is held.
		out := cs.out[:0]
		for _, k := range keys {
			if bytes.IndexByte(k, 0) >= 0 {
				s.counters.getMisses.Add(1)
				tn.misses.Add(1)
				continue
			}
			nk := cs.nsKeyFor(k)
			sh := s.shardForBytes(nk)
			sh.mu.Lock()
			it, ok := sh.store.getBytes(nk, now)
			if !ok {
				if !s.cfg.DisableIQ {
					sh.recordMissLocked(string(nk), now)
				}
				sh.mu.Unlock()
				s.counters.getMisses.Add(1)
				tn.misses.Add(1)
				continue
			}
			value := sh.store.itemValue(it)
			out = append(out, "VALUE "...)
			out = append(out, it.key[pfx:]...)
			out = append(out, ' ')
			out = strconv.AppendUint(out, uint64(it.flags), 10)
			out = append(out, ' ')
			out = strconv.AppendInt(out, int64(len(value)), 10)
			out = append(out, '\r', '\n')
			out = append(out, value...)
			out = append(out, '\r', '\n')
			cost := it.cost
			sh.mu.Unlock()
			s.counters.getHits.Add(1)
			tn.hits.Add(1)
			tn.costSaved.Add(uint64(cost))
		}
		out = append(out, replyEnd...)
		cs.out = out
		_, err := w.Write(out)
		return err
	}
	for _, k := range keys {
		if bytes.IndexByte(k, 0) >= 0 {
			s.counters.getMisses.Add(1)
			tn.misses.Add(1)
			continue
		}
		nk := cs.nsKeyFor(k)
		sh := s.shardForBytes(nk)
		sh.mu.Lock()
		it, ok := sh.store.getBytes(nk, now)
		if !ok {
			if !s.cfg.DisableIQ {
				sh.recordMissLocked(string(nk), now)
			}
			sh.mu.Unlock()
			s.counters.getMisses.Add(1)
			tn.misses.Add(1)
			continue
		}
		// Stored values (and the item's key string) are never mutated in
		// place, so the references stay valid after the lock drops.
		sh.mu.Unlock()
		s.counters.getHits.Add(1)
		tn.hits.Add(1)
		tn.costSaved.Add(uint64(it.cost))
		hits = append(hits, it)
	}
	// Keep the grown slot capacity but drop the item references once the
	// reply is written, so an idle connection never pins evicted values
	// against the GC.
	defer func() {
		for i := range hits {
			hits[i] = nil
		}
		cs.hits = hits[:0]
	}()
	for _, it := range hits {
		out := append(cs.out[:0], "VALUE "...)
		out = append(out, it.key[pfx:]...)
		out = append(out, ' ')
		out = strconv.AppendUint(out, uint64(it.flags), 10)
		out = append(out, ' ')
		out = strconv.AppendInt(out, int64(len(it.value)), 10)
		out = append(out, '\r', '\n')
		cs.out = out
		if _, err := w.Write(out); err != nil {
			return err
		}
		if _, err := w.Write(it.value); err != nil {
			return err
		}
		if _, err := w.Write(crlf); err != nil {
			return err
		}
	}
	_, err := w.Write(replyEnd)
	return err
}

// handleStore covers set, add, replace, append and prepend:
//
//	<cmd> <key> <flags> <exptime> <bytes> [cost] [noreply]\r\n<data>\r\n
//
// Malformed command lines must not desynchronize the stream: the client has
// already committed to sending <bytes>+2 payload bytes, so whenever <bytes>
// parsed, the payload is drained before the error reply — otherwise those
// bytes would be misread as command lines. When <bytes> itself is missing
// or unparsable the payload length is unknown, resynchronization is
// impossible, and the connection closes after the reply, as memcached does.
func (s *Server) handleStore(cmd storeCmd, args [][]byte, cs *connState) error {
	w := cs.w
	noreply := false
	if n := len(args); n > 0 && string(args[n-1]) == "noreply" {
		noreply = true
		args = args[:n-1]
	}
	var nbytes int64 = -1
	if len(args) >= 4 {
		if v, ok := proto.ParseInt(args[3]); ok && v >= 0 {
			nbytes = v
		}
	}
	if len(args) != 4 && len(args) != 5 {
		return s.storeError(cs, cmd, nbytes, noreply, "command")
	}
	if nbytes < 0 {
		return s.storeError(cs, cmd, nbytes, noreply, "arguments")
	}
	flags, okFlags := proto.ParseUint32(args[1])
	ttl, okTTL := proto.ParseInt(args[2])
	var cost int64
	okCost := true
	if len(args) == 5 {
		cost, okCost = proto.ParseInt(args[4])
	}
	if !okFlags || !okTTL || !okCost || cost < 0 {
		return s.storeError(cs, cmd, nbytes, noreply, "arguments")
	}
	if nbytes > s.cfg.MaxValueBytes {
		// Drain and discard the payload to keep the stream in sync.
		badChunk, err := drainData(cs.r, nbytes)
		if err != nil {
			return err
		}
		if !noreply {
			reply := replyTooLarge
			if badChunk {
				reply = replyBadDataChunk
			}
			if _, err := w.Write(reply); err != nil {
				return err
			}
		}
		if badChunk {
			return errCloseConn
		}
		return nil
	}
	if bytes.IndexByte(args[0], 0) >= 0 {
		// A NUL could forge another tenant's namespace prefix.
		return s.storeError(cs, cmd, nbytes, noreply, "key")
	}
	// The tokens alias the read buffer: copy the (namespaced) key into
	// pooled scratch before the payload read below invalidates them. No
	// string is materialized here — storeLocked reuses the resident item's
	// interned key on overwrite, so only brand-new keys pay the allocation.
	cs.keyBuf = append(cs.keyBuf[:0], cs.nsKeyFor(args[0])...)
	var value []byte
	if s.arenaMode {
		// The arena copies the payload into its segment under the shard lock
		// and the journal serializes it before Append returns, so pooled
		// scratch is safe to reuse for the next command — the zero-alloc half
		// of the arena set path.
		if cap(cs.valBuf) < int(nbytes) {
			cs.valBuf = make([]byte, nbytes)
		}
		value = cs.valBuf[:nbytes]
	} else {
		// The other layouts retain the slice in the item, so it must be
		// freshly allocated.
		value = make([]byte, nbytes)
	}
	if _, err := io.ReadFull(cs.r, value); err != nil {
		return err
	}
	if err := readDataTerminator(cs.r); err != nil {
		if err != errBadDataChunk {
			return err
		}
		// The terminator bytes were garbage; the stream position is
		// unknowable, so report (noreply suppresses even this, as
		// memcached's out_string does) and close.
		if !noreply {
			w.Write(replyBadDataChunk)
		}
		return errCloseConn
	}

	// The payload is consumed (stream aligned) before the replica gate and
	// the quota gate, so a rejected or shed write never desynchronizes the
	// connection.
	if rejected, err := s.rejectReadOnly(cs, noreply); rejected || err != nil {
		return err
	}

	now := time.Now()
	tn := s.tenantOf(cs)
	if shed, err := s.shedOp(cs, tn, now, nbytes, noreply); shed || err != nil {
		return err
	}
	s.counters.storeCounter(cmd).Add(1)
	sh := s.shardForOpBytes(cs.keyBuf, cs)
	sh.mu.Lock()
	lockStart := time.Now()
	reply := sh.storeLocked(cmd, cs.keyBuf, value, flags, ttl, cost, now)
	sh.mu.Unlock()
	sh.lockHist.Observe(time.Since(lockStart))
	tn.quota.releaseBytes(nbytes)

	if noreply {
		return nil
	}
	_, err := w.Write(reply)
	return err
}

// storeError reports a malformed storage command. With a parsed <bytes> the
// in-flight payload is drained first so the connection survives; without one
// the connection must close (errCloseConn) because the stream cannot be
// resynchronized. A drained payload whose own terminator is garbage also
// closes the connection, for the same reason.
func (s *Server) storeError(cs *connState, cmd storeCmd, nbytes int64, noreply bool, what string) error {
	badChunk := false
	if nbytes >= 0 {
		var err error
		badChunk, err = drainData(cs.r, nbytes)
		if err != nil {
			return err
		}
	}
	if !noreply {
		cs.out = appendClientError(cs.out[:0], "bad", cmd.String(), what)
		if _, err := cs.w.Write(cs.out); err != nil {
			return err
		}
	}
	if nbytes < 0 || badChunk {
		return errCloseConn
	}
	return nil
}

// drainData discards a data block and its terminator, keeping the stream
// aligned for the next command line. The terminator is parsed, not assumed
// to be two bytes, so bare-LF framing drains correctly too; badChunk
// reports terminator garbage (the caller must close — the stream position
// past it is unknowable).
func drainData(r *bufio.Reader, nbytes int64) (badChunk bool, err error) {
	if err := discard(r, nbytes); err != nil {
		return false, err
	}
	if err := readDataTerminator(r); err != nil {
		if err == errBadDataChunk {
			return true, nil
		}
		return false, err
	}
	return false, nil
}

var errBadDataChunk = errors.New("kvserver: bad data chunk")

// readDataTerminator consumes the terminator after a data block: exactly
// "\r\n", or a bare "\n". Anything else — including the "\r\r\n" a
// TrimRight-based reader used to accept — is errBadDataChunk.
func readDataTerminator(r *bufio.Reader) error {
	b, err := r.ReadByte()
	if err != nil {
		return err
	}
	if b == '\n' {
		return nil
	}
	if b != '\r' {
		return errBadDataChunk
	}
	b, err = r.ReadByte()
	if err != nil {
		return err
	}
	if b != '\n' {
		return errBadDataChunk
	}
	return nil
}

// handleArith covers incr/decr: <cmd> <key> <delta> [noreply].
func (s *Server) handleArith(incr bool, args [][]byte, cs *connState) error {
	w := cs.w
	name := "decr"
	if incr {
		name = "incr"
	}
	noreply := false
	if n := len(args); n > 0 && string(args[n-1]) == "noreply" {
		noreply = true
		args = args[:n-1]
	}
	if len(args) != 2 {
		if noreply {
			return nil
		}
		cs.out = appendClientError(cs.out[:0], "bad", name, "command")
		_, err := w.Write(cs.out)
		return err
	}
	delta, ok := proto.ParseUint(args[1])
	if !ok {
		if noreply {
			return nil
		}
		_, err := w.Write(replyBadDelta)
		return err
	}
	// Key validity before the replica gate, matching handleStore's ordering:
	// a malformed key is a client error on any role.
	if bytes.IndexByte(args[0], 0) >= 0 {
		if noreply {
			return nil
		}
		_, err := w.Write(replyBadKey)
		return err
	}
	if rejected, err := s.rejectReadOnly(cs, noreply); rejected || err != nil {
		return err
	}
	key := string(cs.nsKeyFor(args[0]))
	now := time.Now()
	if shed, err := s.shedOp(cs, s.tenantOf(cs), now, 0, noreply); shed || err != nil {
		return err
	}
	if incr {
		s.counters.cmdIncr.Add(1)
	} else {
		s.counters.cmdDecr.Add(1)
	}
	sh := s.shardForOp(key, cs)
	sh.mu.Lock()
	lockStart := time.Now()
	val, reply := sh.arithLocked(incr, key, delta, now)
	sh.mu.Unlock()
	sh.lockHist.Observe(time.Since(lockStart))
	if noreply {
		return nil
	}
	if reply != nil {
		_, err := w.Write(reply)
		return err
	}
	out := strconv.AppendUint(cs.out[:0], val, 10)
	out = append(out, '\r', '\n')
	cs.out = out
	_, err := w.Write(out)
	return err
}

// handleTouch covers touch <key> <exptime> [noreply].
func (s *Server) handleTouch(args [][]byte, cs *connState) error {
	w := cs.w
	noreply := false
	if n := len(args); n > 0 && string(args[n-1]) == "noreply" {
		noreply = true
		args = args[:n-1]
	}
	if len(args) != 2 {
		if noreply {
			return nil
		}
		_, err := w.Write(replyBadTouch)
		return err
	}
	ttl, ok := proto.ParseInt(args[1])
	if !ok {
		if noreply {
			return nil
		}
		_, err := w.Write(replyBadExptime)
		return err
	}
	// Key validity before the replica gate, matching handleStore/handleArith:
	// a malformed key is a client error on any role. (touch used to gate the
	// other way around, so a replica leaked its role to a NUL-forged key.)
	if bytes.IndexByte(args[0], 0) >= 0 {
		if noreply {
			return nil
		}
		_, err := w.Write(replyBadKey)
		return err
	}
	if rejected, err := s.rejectReadOnly(cs, noreply); rejected || err != nil {
		return err
	}
	key := string(cs.nsKeyFor(args[0]))
	now := time.Now()
	if shed, err := s.shedOp(cs, s.tenantOf(cs), now, 0, noreply); shed || err != nil {
		return err
	}
	s.counters.cmdTouch.Add(1)
	sh := s.shardForOp(key, cs)
	sh.mu.Lock()
	lockStart := time.Now()
	// The incremental expiry sweep every mutating path pays, so a
	// touch-heavy workload reclaims dead items too.
	sh.store.sweepExpired(now, expirySweepProbes)
	it, found := sh.store.get(key, now)
	if found {
		sh.store.touchResident(it, expiryFrom(ttl, now))
		sh.journalLocked(persist.Op{
			Kind:    persist.KindTouch,
			Key:     key,
			Expires: persist.ExpiresFrom(it.expiresAt),
		})
	}
	sh.mu.Unlock()
	sh.lockHist.Observe(time.Since(lockStart))
	if noreply {
		return nil
	}
	reply := replyNotFound
	if found {
		reply = replyTouched
	}
	_, err := w.Write(reply)
	return err
}

func (s *Server) handleDelete(args [][]byte, cs *connState) error {
	w := cs.w
	noreply := false
	if n := len(args); n > 0 && string(args[n-1]) == "noreply" {
		noreply = true
		args = args[:n-1]
	}
	if len(args) != 1 {
		if noreply {
			return nil
		}
		_, err := w.Write(replyBadDelete)
		return err
	}
	// Key validity before the replica gate (same order as handleStore,
	// handleArith and handleTouch): a malformed key is a client error on any
	// role.
	if bytes.IndexByte(args[0], 0) >= 0 {
		if noreply {
			return nil
		}
		_, err := w.Write(replyBadKey)
		return err
	}
	if rejected, err := s.rejectReadOnly(cs, noreply); rejected || err != nil {
		return err
	}
	key := string(cs.nsKeyFor(args[0]))
	if shed, err := s.shedOp(cs, s.tenantOf(cs), time.Now(), 0, noreply); shed || err != nil {
		return err
	}
	s.counters.cmdDelete.Add(1)
	sh := s.shardForOp(key, cs)
	sh.mu.Lock()
	lockStart := time.Now()
	ok := sh.store.delete(key)
	if ok {
		sh.journalLocked(persist.Op{Kind: persist.KindDelete, Key: key})
	}
	sh.mu.Unlock()
	sh.lockHist.Observe(time.Since(lockStart))
	if noreply {
		return nil
	}
	reply := replyNotFound
	if ok {
		reply = replyDeleted
	}
	_, err := w.Write(reply)
	return err
}

func (s *Server) handleStats(args [][]byte, cs *connState) error {
	if len(args) > 0 {
		switch string(args[0]) {
		case "latency":
			return s.handleStatsLatency(cs)
		case "shards":
			return s.handleStatsShards(cs)
		case "tenants":
			return s.handleStatsTenants(cs)
		default:
			_, err := cs.w.Write(replyBadStats)
			return err
		}
	}
	out := cs.out[:0]
	// Identity and connection stats first, as memcached orders them.
	out = appendStatInt(out, "uptime", int64(time.Since(s.started)/time.Second))
	out = appendStatStr(out, "version", serverVersion)
	out = appendStatInt(out, "pointer_size", strconv.IntSize)
	out = appendStatInt(out, "curr_connections", s.counters.currConns.Load())
	out = appendStat(out, "total_connections", s.counters.totalConns.Load())
	out = appendStat(out, "bytes_read", s.counters.bytesRead.Load())
	out = appendStat(out, "bytes_written", s.counters.bytesWritten.Load())
	for _, l := range s.counters.lines() {
		out = appendStat(out, l.key, l.val)
	}
	// Aggregate store-level numbers shard by shard, holding one shard lock
	// at a time: stats never stall the whole keyspace.
	var (
		items     int
		bytes     int64
		evictions uint64
		rejected  uint64
		reclaimed uint64
		missTable int
		queues    = -1
	)
	for _, sh := range s.shards {
		sh.mu.Lock()
		items += sh.store.len()
		bytes += sh.store.used()
		evictions += sh.store.evictions()
		rejected += sh.store.rejected()
		reclaimed += sh.store.reclaimed()
		missTable += len(sh.missedAt)
		if qc := sh.store.queueCount(); qc >= 0 {
			if queues < 0 {
				queues = 0
			}
			queues += qc
		}
		sh.mu.Unlock()
	}
	out = appendStatInt(out, "curr_items", int64(items))
	out = appendStatInt(out, "bytes", bytes)
	out = appendStatInt(out, "limit_maxbytes", s.cfg.MemoryBytes)
	out = appendStat(out, "evictions", evictions)
	// Expired items reclaimed lazily: on access plus the incremental sweep
	// the mutation path runs.
	out = appendStat(out, "expired_reclaimed", reclaimed)
	// Pending IQ miss-table entries: get misses still waiting for the set
	// that would turn the elapsed time into a cost.
	out = appendStatInt(out, "iq_miss_table_entries", int64(missTable))
	out = appendStatStr(out, "policy", s.shards[0].store.policyName())
	out = appendStatStr(out, "mode", s.cfg.Mode)
	out = appendStatInt(out, "shards", int64(len(s.shards)))
	out = appendStatInt(out, "tenants", int64(s.tenants.count()))
	role := "primary"
	if s.readOnly.Load() {
		role = "replica"
	}
	out = appendStatStr(out, "role", role)
	if s.repl != nil {
		connected := int64(0)
		for _, sr := range s.repl.reps {
			sr.mu.Lock()
			if sr.connected {
				connected++
			}
			sr.mu.Unlock()
		}
		out = appendStatInt(out, "repl_connected_shards", connected)
		out = appendStat(out, "repl_applied_ops", s.counters.replAppliedOps.Load())
	}
	// Admission pressure: how many stores the eviction policy refused.
	out = appendStat(out, "rejected_sets", rejected)
	if queues >= 0 {
		out = appendStatInt(out, "camp_queues", int64(queues))
	}
	if s.cfg.Persist != nil {
		var (
			gen         uint64
			aofBytes    int64
			compactions uint64
			fsync       string
			aofEnabled  bool
		)
		for _, sh := range s.shards {
			if sh.mgr == nil {
				continue
			}
			info := sh.mgr.Info()
			if info.Generation > gen {
				gen = info.Generation
			}
			aofBytes += info.AOFSize
			compactions += info.Compactions
			fsync = info.Fsync
			aofEnabled = info.AOFEnabled
		}
		aof := uint64(0)
		if aofEnabled {
			aof = 1
		}
		out = appendStat(out, "repl_syncs_served", s.counters.replSyncsServed.Load())
		out = appendStat(out, "repl_full_syncs_served", s.counters.replFullSyncsServed.Load())
		out = appendStatInt(out, "repl_live_feeds", s.replFeeds.Load())
		out = appendStat(out, "persist_gen", gen)
		out = appendStat(out, "aof_enabled", aof)
		out = appendStatInt(out, "aof_bytes", aofBytes)
		out = appendStatStr(out, "aof_fsync", fsync)
		out = appendStat(out, "persist_compactions", compactions)
		out = appendStat(out, "persist_errors", s.counters.persistErrors.Load())
		out = appendStatInt(out, "persist_degraded", s.degradedShards())
		out = appendStat(out, "persist_snapshots", s.counters.persistSnapshots.Load())
		out = appendStatInt(out, "restored_snapshot_ops", int64(s.recovered.SnapshotOps))
		out = appendStatInt(out, "restored_aof_ops", int64(s.recovered.ReplayedOps))
		out = appendStatInt(out, "restored_truncated_bytes", s.recovered.TruncatedBytes)
	}
	out = append(out, replyEnd...)
	cs.out = out
	_, err := cs.w.Write(out)
	return err
}

func (s *Server) handleDebug(args [][]byte, cs *connState) error {
	w := cs.w
	if len(args) != 1 {
		_, err := w.Write(replyDebugNoKey)
		return err
	}
	if bytes.IndexByte(args[0], 0) >= 0 {
		_, err := w.Write(replyNotFound)
		return err
	}
	key := cs.nsKeyFor(args[0])
	sh := s.shardForBytes(key)
	sh.mu.Lock()
	it, meta, ok := sh.store.peekBytes(key)
	var flags uint32
	if ok {
		flags = it.flags
	}
	sh.mu.Unlock()
	if !ok {
		_, err := w.Write(replyNotFound)
		return err
	}
	out := append(cs.out[:0], "DEBUG "...)
	out = append(out, args[0]...)
	out = append(out, " size="...)
	out = strconv.AppendInt(out, meta.Size, 10)
	out = append(out, " cost="...)
	out = strconv.AppendInt(out, meta.Cost, 10)
	out = append(out, " flags="...)
	out = strconv.AppendUint(out, uint64(flags), 10)
	out = append(out, '\r', '\n')
	cs.out = out
	_, err := w.Write(out)
	return err
}

func discard(r *bufio.Reader, n int64) error {
	_, err := io.CopyN(io.Discard, r, n)
	return err
}

var errBadConfig = errors.New("kvserver: bad configuration")
