// Package kvserver implements a memcached-style key-value server with
// pluggable cost-aware eviction, reproducing the §4 "IQ Twemcache"
// implementation of the CAMP paper.
//
// The server speaks a memcached text protocol subset over TCP:
//
//	set <key> <flags> <exptime> <bytes> [cost] [noreply]\r\n<data>\r\n
//	get <key> [<key> ...]\r\n
//	delete <key> [noreply]\r\n
//	stats\r\n    flush_all\r\n    version\r\n    debug <key>\r\n    quit\r\n
//
// In IQ mode (default) the server timestamps every get miss; when the
// subsequent set for that key arrives without an explicit cost, the elapsed
// time in microseconds becomes the key's cost — exactly how the paper's IQ
// framework derives recomputation costs from iqget/iqset pairs.
//
// Memory management is pluggable per §5: "byte" charges exact sizes to the
// eviction policy; "slab" reproduces Twemcache's slab classes with per-class
// LRU and random slab eviction; "buddy" rounds sizes to power-of-two blocks
// in a buddy arena with the configured policy choosing victims.
//
// The server is sharded for vertical scaling, the §4.1 recipe: keys hash
// across Config.Shards independent shards, each owning its own store,
// mutex, IQ miss table and — with Config.Persist set — its own journal and
// snapshot generations under data-dir/shard-NNN/. Mutations are journaled
// through internal/persist and a restart warm-loads each shard's newest
// snapshot plus journal tail (in parallel), so the working set and the
// IQ-learned costs survive crashes and deploys. Snapshots run off the
// request path: the journal switches segments under the shard lock, but the
// snapshot itself is serialized and written unlocked, so compaction never
// stalls more than the one shard, and only for the in-memory copy-out.
package kvserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"camp/internal/core"
	"camp/internal/persist"
)

// Memory-management modes.
const (
	ModeByte  = "byte"
	ModeSlab  = "slab"
	ModeBuddy = "buddy"
)

// MaxShards bounds Config.Shards.
const MaxShards = 1024

// Config parameterizes a Server.
type Config struct {
	// Addr is the TCP listen address; empty means 127.0.0.1:0.
	Addr string
	// MemoryBytes is the cache capacity, split evenly across shards.
	MemoryBytes int64
	// Shards is the number of independent stores keys are hashed across
	// (default 1). Each shard has its own lock, eviction state and — with
	// persistence — its own journal, so writes scale across cores. Capacity
	// splits evenly, so each shard holds MemoryBytes/Shards: a single value
	// larger than that slice is rejected even if it fits MaxValueBytes, and
	// slab mode needs at least one whole slab per shard. Size Shards so the
	// per-shard slice stays comfortably above the largest expected value
	// (cmd/campsrv's auto default does this).
	Shards int
	// Policy selects the eviction algorithm: "camp" (default), "lru" or
	// "gds". Ignored in slab mode, which always uses per-class LRU as
	// Twemcache does.
	Policy string
	// Precision is CAMP's rounding precision (default 5).
	Precision uint
	// Mode selects memory management: ModeByte (default), ModeSlab or
	// ModeBuddy.
	Mode string
	// SlabSize overrides the slab size in slab mode (default 1 MiB).
	SlabSize int64
	// MinBlock overrides the buddy minimum block (default 64).
	MinBlock int64
	// ItemOverhead is charged per item on top of key+value bytes
	// (default 56, approximating Twemcache's item header).
	ItemOverhead int64
	// DisableIQ turns off miss-to-set cost derivation.
	DisableIQ bool
	// MaxValueBytes rejects larger values (default 8 MiB).
	MaxValueBytes int64
	// Persist enables the durability subsystem when non-nil: mutations are
	// journaled per shard to an append-only log and the store warm-restarts
	// from each shard's newest snapshot plus journal tail, costs included.
	Persist *PersistConfig
}

// PersistConfig configures the internal/persist subsystem for a Server.
type PersistConfig struct {
	// Dir is the data directory (required). The server locks it (flock on
	// unix; platforms without flock get no mutual exclusion), so a second
	// server pointed at the same directory refuses to start.
	Dir string
	// DisableAOF turns off per-mutation journaling; durability then comes
	// only from interval and shutdown snapshots.
	DisableAOF bool
	// Fsync is the AOF sync policy: persist.FsyncAlways, FsyncEverySec
	// (default) or FsyncNo.
	Fsync string
	// SnapshotInterval, when positive, snapshots the shards periodically in
	// the background, one shard at a time (each snapshot also truncates
	// that shard's journal).
	SnapshotInterval time.Duration
	// AOFLimit overrides the per-shard journal size that triggers
	// compaction.
	AOFLimit int64
	// Logf receives recovery and background-sync warnings (default: none).
	Logf func(format string, args ...any)
}

// DefaultItemOverhead approximates the per-item header of Twemcache.
const DefaultItemOverhead = 56

// Server is a cost-aware KVS sharded across independent stores.
type Server struct {
	cfg Config
	ln  net.Listener

	shards   []*shard
	counters counters

	recovered persist.RecoverStats
	rootLock  *persist.DirLock

	compactC chan *shard
	stopBg   chan struct{}

	wg     sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// New validates cfg and creates a Server (not yet listening). With
// persistence configured, New locks the data directory, migrates old
// layouts, and warm-restarts every shard before returning.
func New(cfg Config) (*Server, error) {
	if cfg.MemoryBytes <= 0 {
		return nil, fmt.Errorf("kvserver: MemoryBytes must be positive")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 || cfg.Shards > MaxShards {
		return nil, fmt.Errorf("kvserver: Shards must be in [1, %d], got %d", MaxShards, cfg.Shards)
	}
	if cfg.Policy == "" {
		cfg.Policy = "camp"
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeByte
	}
	if cfg.Precision == 0 {
		cfg.Precision = core.DefaultPrecision
	}
	if cfg.ItemOverhead == 0 {
		cfg.ItemOverhead = DefaultItemOverhead
	}
	if cfg.MaxValueBytes == 0 {
		cfg.MaxValueBytes = 8 << 20
	}
	s := &Server{
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
	}
	// Capacity splits evenly; shard 0 absorbs the remainder, as the root
	// camp.Cache's sharding does.
	per := cfg.MemoryBytes / int64(cfg.Shards)
	rem := cfg.MemoryBytes % int64(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		shardCfg := cfg
		shardCfg.MemoryBytes = per
		if i == 0 {
			shardCfg.MemoryBytes += rem
		}
		st, err := newStore(shardCfg)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, &shard{
			srv:      s,
			store:    st,
			missedAt: make(map[string]time.Time),
		})
	}
	if p := cfg.Persist; p != nil {
		if p.Dir == "" {
			return nil, fmt.Errorf("kvserver: Persist.Dir is required")
		}
		if err := s.openPersistence(); err != nil {
			return nil, fmt.Errorf("kvserver: recover: %w", err)
		}
		// The compactor runs for the server's whole life (not just while
		// listening): size-triggered and interval snapshots both happen off
		// the request path here.
		s.compactC = make(chan *shard, len(s.shards))
		s.stopBg = make(chan struct{})
		s.wg.Add(1)
		go s.compactorLoop(p.SnapshotInterval)
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Persist != nil && s.cfg.Persist.Logf != nil {
		s.cfg.Persist.Logf(format, args...)
	}
}

// Start begins listening and serving connections.
func (s *Server) Start() error {
	addr := s.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("kvserver: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// requestCompact schedules an off-lock compaction of sh. Dropping the
// request when the queue is full is fine: the journal keeps growing and the
// next append re-triggers it.
func (s *Server) requestCompact(sh *shard) {
	select {
	case s.compactC <- sh:
	default:
	}
}

// compactorLoop owns every snapshot cycle: size-triggered requests from the
// journal path and the optional interval ticker. Walking the shards one at a
// time bounds any stall to a single shard's copy-out — the disk write
// happens with no lock held at all.
func (s *Server) compactorLoop(interval time.Duration) {
	defer s.wg.Done()
	var tick <-chan time.Time
	if interval > 0 {
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.stopBg:
			return
		case sh := <-s.compactC:
			sh.compact()
		case <-tick:
			for _, sh := range s.shards {
				select {
				case <-s.stopBg:
					return
				default:
				}
				sh.compact()
			}
		}
	}
}

// Snapshot forces a snapshot-then-truncate compaction of every shard now.
// It is a no-op without persistence.
func (s *Server) Snapshot() {
	for _, sh := range s.shards {
		sh.compact()
	}
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener, closes live connections, waits for handlers and
// flushes the persistence subsystem: every shard's journal is synced, and
// when the AOF is disabled a final snapshot captures each shard.
func (s *Server) Close() error {
	err, wasOpen := s.stopNetwork()
	if !wasOpen {
		return nil
	}
	if s.cfg.Persist != nil {
		if s.cfg.Persist.DisableAOF {
			s.Snapshot()
		}
		for _, sh := range s.shards {
			if sh.mgr == nil {
				continue
			}
			if cerr := sh.mgr.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if rerr := s.rootLock.Release(); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}

// Kill tears the server down without flushing persistence — no final
// journal sync, no shutdown snapshot — simulating a crash for recovery
// tests and demos. Orderly shutdown is Close.
func (s *Server) Kill() {
	_, wasOpen := s.stopNetwork()
	if !wasOpen {
		return
	}
	for _, sh := range s.shards {
		if sh.mgr != nil {
			sh.mgr.Kill()
		}
	}
	// A real crash drops the flock with the process; release it so a
	// recovering server in the same process can take the directory over.
	s.rootLock.Release()
}

// stopNetwork closes the listener and live connections, stops the
// background compactor, and waits for all goroutines. wasOpen is false if
// the server was already stopped.
func (s *Server) stopNetwork() (err error, wasOpen bool) {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil, false
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	if s.stopBg != nil {
		close(s.stopBg)
	}
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err, true
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		quit, err := s.dispatch(line, r, w)
		if err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// dispatch handles one command line; it returns quit=true for "quit".
func (s *Server) dispatch(line string, r *bufio.Reader, w *bufio.Writer) (quit bool, fatal error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		_, err := w.WriteString("ERROR\r\n")
		return false, err
	}
	switch fields[0] {
	case "get", "gets":
		return false, s.handleGet(fields[1:], w)
	case "set", "add", "replace", "append", "prepend":
		return false, s.handleStore(fields[0], fields[1:], r, w)
	case "incr", "decr":
		return false, s.handleArith(fields[0], fields[1:], w)
	case "touch":
		return false, s.handleTouch(fields[1:], w)
	case "delete":
		return false, s.handleDelete(fields[1:], w)
	case "stats":
		return false, s.handleStats(w)
	case "flush_all":
		s.handleFlushAll()
		_, err := w.WriteString("OK\r\n")
		return false, err
	case "version":
		_, err := w.WriteString("VERSION camp-kvs/1.0\r\n")
		return false, err
	case "debug":
		return false, s.handleDebug(fields[1:], w)
	case "quit":
		return true, nil
	default:
		_, err := w.WriteString("ERROR\r\n")
		return false, err
	}
}

// handleFlushAll empties every shard. Each shard flushes atomically under
// its own lock and journals a flush record (making the emptiness durable
// even if the compaction below fails); across shards the flush is not a
// single atomic point — a concurrent writer may land a set on an
// already-flushed shard — matching multi-node memcached semantics.
func (s *Server) handleFlushAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.store.flush()
		sh.missedAt = make(map[string]time.Time)
		sh.journalLocked(persist.Op{Kind: persist.KindFlush})
		sh.mu.Unlock()
		// Compact synchronously (off-lock) so the truncated journal is on
		// disk by the time the client sees OK, as before sharding.
		sh.compact()
	}
}

func (s *Server) handleGet(keys []string, w *bufio.Writer) error {
	if len(keys) == 0 {
		_, err := w.WriteString("CLIENT_ERROR get requires a key\r\n")
		return err
	}
	type hit struct {
		key   string
		flags uint32
		value []byte
	}
	hits := make([]hit, 0, len(keys))
	now := time.Now()
	for _, k := range keys {
		s.counters.cmdGet.Add(1)
		sh := s.shardFor(k)
		sh.mu.Lock()
		it, ok := sh.store.get(k, now)
		if !ok {
			if !s.cfg.DisableIQ {
				sh.recordMissLocked(k, now)
			}
			sh.mu.Unlock()
			s.counters.getMisses.Add(1)
			continue
		}
		// Stored values are never mutated in place, so the reference can
		// be written out after the lock drops.
		h := hit{key: k, flags: it.flags, value: it.value}
		sh.mu.Unlock()
		s.counters.getHits.Add(1)
		hits = append(hits, h)
	}
	for _, h := range hits {
		if _, err := fmt.Fprintf(w, "VALUE %s %d %d\r\n", h.key, h.flags, len(h.value)); err != nil {
			return err
		}
		if _, err := w.Write(h.value); err != nil {
			return err
		}
		if _, err := w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	_, err := w.WriteString("END\r\n")
	return err
}

// handleStore covers set, add, replace, append and prepend:
//
//	<cmd> <key> <flags> <exptime> <bytes> [cost] [noreply]\r\n<data>\r\n
func (s *Server) handleStore(cmd string, args []string, r *bufio.Reader, w *bufio.Writer) error {
	noreply := false
	if len(args) > 0 && args[len(args)-1] == "noreply" {
		noreply = true
		args = args[:len(args)-1]
	}
	if len(args) != 4 && len(args) != 5 {
		_, err := fmt.Fprintf(w, "CLIENT_ERROR bad %s command\r\n", cmd)
		return err
	}
	key := args[0]
	flags, err1 := strconv.ParseUint(args[1], 10, 32)
	ttl, err2 := strconv.ParseInt(args[2], 10, 64)
	nbytes, err3 := strconv.ParseInt(args[3], 10, 64)
	var cost int64
	var err4 error
	if len(args) == 5 {
		cost, err4 = strconv.ParseInt(args[4], 10, 64)
	}
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || nbytes < 0 || cost < 0 {
		_, err := fmt.Fprintf(w, "CLIENT_ERROR bad %s arguments\r\n", cmd)
		return err
	}
	if nbytes > s.cfg.MaxValueBytes {
		// Drain and discard the payload to keep the stream in sync.
		if err := discard(r, nbytes+2); err != nil {
			return err
		}
		if noreply {
			return nil
		}
		_, err := w.WriteString("SERVER_ERROR object too large for cache\r\n")
		return err
	}
	value := make([]byte, nbytes)
	if _, err := io.ReadFull(r, value); err != nil {
		return err
	}
	// Consume the trailing \r\n.
	if crlf, err := readLine(r); err != nil {
		return err
	} else if crlf != "" {
		_, err := w.WriteString("CLIENT_ERROR bad data chunk\r\n")
		return err
	}

	now := time.Now()
	s.counters.cmdCounter(cmd).Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	reply := sh.storeLocked(cmd, key, value, uint32(flags), ttl, cost, now)
	sh.mu.Unlock()

	if noreply {
		return nil
	}
	_, err := w.WriteString(reply)
	return err
}

// handleArith covers incr/decr: <cmd> <key> <delta> [noreply].
func (s *Server) handleArith(cmd string, args []string, w *bufio.Writer) error {
	noreply := false
	if len(args) > 0 && args[len(args)-1] == "noreply" {
		noreply = true
		args = args[:len(args)-1]
	}
	if len(args) != 2 {
		_, err := fmt.Fprintf(w, "CLIENT_ERROR bad %s command\r\n", cmd)
		return err
	}
	delta, err := strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		_, err := w.WriteString("CLIENT_ERROR invalid numeric delta argument\r\n")
		return err
	}
	key := args[0]
	now := time.Now()
	s.counters.cmdCounter(cmd).Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	reply := sh.arithLocked(cmd, key, delta, now)
	sh.mu.Unlock()
	if noreply {
		return nil
	}
	_, werr := w.WriteString(reply)
	return werr
}

// handleTouch covers touch <key> <exptime> [noreply].
func (s *Server) handleTouch(args []string, w *bufio.Writer) error {
	noreply := false
	if len(args) > 0 && args[len(args)-1] == "noreply" {
		noreply = true
		args = args[:len(args)-1]
	}
	if len(args) != 2 {
		_, err := w.WriteString("CLIENT_ERROR bad touch command\r\n")
		return err
	}
	ttl, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		_, err := w.WriteString("CLIENT_ERROR invalid exptime argument\r\n")
		return err
	}
	key := args[0]
	now := time.Now()
	s.counters.cmdTouch.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	it, ok := sh.store.get(key, now)
	if ok {
		it.expiresAt = expiryFrom(ttl, now)
		sh.journalLocked(persist.Op{
			Kind:    persist.KindTouch,
			Key:     key,
			Expires: persist.ExpiresFrom(it.expiresAt),
		})
	}
	sh.mu.Unlock()
	if noreply {
		return nil
	}
	reply := "NOT_FOUND\r\n"
	if ok {
		reply = "TOUCHED\r\n"
	}
	_, werr := w.WriteString(reply)
	return werr
}

func (s *Server) handleDelete(args []string, w *bufio.Writer) error {
	noreply := false
	if len(args) > 0 && args[len(args)-1] == "noreply" {
		noreply = true
		args = args[:len(args)-1]
	}
	if len(args) != 1 {
		_, err := w.WriteString("CLIENT_ERROR bad delete command\r\n")
		return err
	}
	key := args[0]
	s.counters.cmdDelete.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	ok := sh.store.delete(key)
	if ok {
		sh.journalLocked(persist.Op{Kind: persist.KindDelete, Key: key})
	}
	sh.mu.Unlock()
	if noreply {
		return nil
	}
	if ok {
		_, err := w.WriteString("DELETED\r\n")
		return err
	}
	_, err := w.WriteString("NOT_FOUND\r\n")
	return err
}

func (s *Server) handleStats(w *bufio.Writer) error {
	lines := make([]string, 0, 32)
	for _, l := range s.counters.lines() {
		lines = append(lines, fmt.Sprintf("STAT %s %d\r\n", l.key, l.val))
	}
	// Aggregate store-level numbers shard by shard, holding one shard lock
	// at a time: stats never stall the whole keyspace.
	var (
		items     int
		bytes     int64
		evictions uint64
		rejected  uint64
		queues    = -1
	)
	for _, sh := range s.shards {
		sh.mu.Lock()
		items += sh.store.len()
		bytes += sh.store.used()
		evictions += sh.store.evictions()
		rejected += sh.store.rejected()
		if qc := sh.store.queueCount(); qc >= 0 {
			if queues < 0 {
				queues = 0
			}
			queues += qc
		}
		sh.mu.Unlock()
	}
	lines = append(lines,
		fmt.Sprintf("STAT curr_items %d\r\n", items),
		fmt.Sprintf("STAT bytes %d\r\n", bytes),
		fmt.Sprintf("STAT limit_maxbytes %d\r\n", s.cfg.MemoryBytes),
		fmt.Sprintf("STAT evictions %d\r\n", evictions),
		fmt.Sprintf("STAT policy %s\r\n", s.shards[0].store.policyName()),
		fmt.Sprintf("STAT mode %s\r\n", s.cfg.Mode),
		fmt.Sprintf("STAT shards %d\r\n", len(s.shards)),
		// Admission pressure: how many stores the eviction policy refused.
		fmt.Sprintf("STAT rejected_sets %d\r\n", rejected),
	)
	if queues >= 0 {
		lines = append(lines, fmt.Sprintf("STAT camp_queues %d\r\n", queues))
	}
	if s.cfg.Persist != nil {
		var (
			gen         uint64
			aofBytes    int64
			compactions uint64
			fsync       string
			aofEnabled  bool
		)
		for _, sh := range s.shards {
			if sh.mgr == nil {
				continue
			}
			info := sh.mgr.Info()
			if info.Generation > gen {
				gen = info.Generation
			}
			aofBytes += info.AOFSize
			compactions += info.Compactions
			fsync = info.Fsync
			aofEnabled = info.AOFEnabled
		}
		aof := 0
		if aofEnabled {
			aof = 1
		}
		lines = append(lines,
			fmt.Sprintf("STAT persist_gen %d\r\n", gen),
			fmt.Sprintf("STAT aof_enabled %d\r\n", aof),
			fmt.Sprintf("STAT aof_bytes %d\r\n", aofBytes),
			fmt.Sprintf("STAT aof_fsync %s\r\n", fsync),
			fmt.Sprintf("STAT persist_compactions %d\r\n", compactions),
			fmt.Sprintf("STAT persist_errors %d\r\n", s.counters.persistErrors.Load()),
			fmt.Sprintf("STAT persist_snapshots %d\r\n", s.counters.persistSnapshots.Load()),
			fmt.Sprintf("STAT restored_snapshot_ops %d\r\n", s.recovered.SnapshotOps),
			fmt.Sprintf("STAT restored_aof_ops %d\r\n", s.recovered.ReplayedOps),
			fmt.Sprintf("STAT restored_truncated_bytes %d\r\n", s.recovered.TruncatedBytes),
		)
	}
	for _, l := range lines {
		if _, err := w.WriteString(l); err != nil {
			return err
		}
	}
	_, err := w.WriteString("END\r\n")
	return err
}

func (s *Server) handleDebug(args []string, w *bufio.Writer) error {
	if len(args) != 1 {
		_, err := w.WriteString("CLIENT_ERROR debug requires a key\r\n")
		return err
	}
	key := args[0]
	sh := s.shardFor(key)
	sh.mu.Lock()
	it, meta, ok := sh.store.peek(key)
	var flags uint32
	if ok {
		flags = it.flags
	}
	sh.mu.Unlock()
	if !ok {
		_, err := w.WriteString("NOT_FOUND\r\n")
		return err
	}
	_, err := fmt.Fprintf(w, "DEBUG %s size=%d cost=%d flags=%d\r\n", key, meta.Size, meta.Cost, flags)
	return err
}

// readLine reads a \r\n- or \n-terminated line without the terminator.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func discard(r *bufio.Reader, n int64) error {
	_, err := io.CopyN(io.Discard, r, n)
	return err
}

var errBadConfig = errors.New("kvserver: bad configuration")
